package probpref

import "testing"

const serviceQ = `P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`

func TestServiceFacade(t *testing.T) {
	db, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(db, ServiceConfig{Method: MethodAuto, Workers: 2})
	br, err := svc.EvalBatch([]string{serviceQ, serviceQ})
	if err != nil {
		t.Fatal(err)
	}
	if br.Instances <= br.Groups || br.Solved != br.Groups {
		t.Fatalf("batch accounting: %+v", br)
	}
	if br.Results[0].Prob != br.Results[1].Prob {
		t.Fatalf("identical queries disagree: %v != %v", br.Results[0].Prob, br.Results[1].Prob)
	}
	if _, _, err := svc.TopK(serviceQ, 2, 1); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Evals != 2 || st.TopKs != 1 || st.Solves == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEngineCacheFacade(t *testing.T) {
	db, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(serviceQ)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewSolveCache(64)
	eng := &Engine{DB: db, Method: MethodAuto, Cache: cache}
	cold, err := eng.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := eng.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Solves != 0 || warm.CacheHits != cold.Solves {
		t.Fatalf("warm eval: solves=%d hits=%d (cold solves=%d)", warm.Solves, warm.CacheHits, cold.Solves)
	}
	if warm.Prob != cold.Prob {
		t.Fatalf("cached prob %v != %v", warm.Prob, cold.Prob)
	}
	if st := cache.Stats(); st.Hits == 0 || st.Entries == 0 {
		t.Fatalf("cache stats = %+v", st)
	}
}
