package probpref

// One testing.B benchmark per table/figure of the paper's evaluation
// (Section 6), each delegating to the corresponding driver in
// internal/experiment at small scale, plus micro-benchmarks for the
// individual solvers. Run with:
//
//	go test -bench=. -benchmem
//
// Figure drivers are macro-benchmarks: prefer -benchtime=1x for them.

import (
	"fmt"
	"math/rand"
	"testing"

	"probpref/internal/dataset"
	"probpref/internal/experiment"
	"probpref/internal/ppd"
	"probpref/internal/sampling"
	"probpref/internal/solver"
)

func benchFigure(b *testing.B, id string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := experiment.Figures[id](experiment.Small)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig04ExactVsAdaptive regenerates Figure 4 (exact solvers vs
// MIS-AMP-adaptive over Polls).
func BenchmarkFig04ExactVsAdaptive(b *testing.B) { benchFigure(b, "4") }

// BenchmarkFig05GeneralSolver regenerates Figure 5 (general solver vs
// conjunction size on Benchmark-A).
func BenchmarkFig05GeneralSolver(b *testing.B) { benchFigure(b, "5") }

// BenchmarkFig06TwoLabelTimeouts regenerates Figure 6 (two-label solver
// completion heatmap on Benchmark-D).
func BenchmarkFig06TwoLabelTimeouts(b *testing.B) { benchFigure(b, "6") }

// BenchmarkFig07aBipartiteByLabels regenerates Figure 7a.
func BenchmarkFig07aBipartiteByLabels(b *testing.B) { benchFigure(b, "7a") }

// BenchmarkFig07bBipartiteByPatterns regenerates Figure 7b.
func BenchmarkFig07bBipartiteByPatterns(b *testing.B) { benchFigure(b, "7b") }

// BenchmarkFig08TopK regenerates Figure 8 (top-k optimization on Polls).
func BenchmarkFig08TopK(b *testing.B) { benchFigure(b, "8") }

// BenchmarkFig09RareEvent regenerates Figure 9 (RS vs MIS-AMP-lite).
func BenchmarkFig09RareEvent(b *testing.B) { benchFigure(b, "9") }

// BenchmarkFig10aLiteBenchmarkA regenerates Figure 10a.
func BenchmarkFig10aLiteBenchmarkA(b *testing.B) { benchFigure(b, "10a") }

// BenchmarkFig10bLiteBenchmarkC regenerates Figure 10b.
func BenchmarkFig10bLiteBenchmarkC(b *testing.B) { benchFigure(b, "10b") }

// BenchmarkFig11TypicalAtypical regenerates Figure 11.
func BenchmarkFig11TypicalAtypical(b *testing.B) { benchFigure(b, "11") }

// BenchmarkFig12Compensation regenerates Figure 12.
func BenchmarkFig12Compensation(b *testing.B) { benchFigure(b, "12") }

// BenchmarkFig13aAdaptiveOverhead regenerates Figure 13a.
func BenchmarkFig13aAdaptiveOverhead(b *testing.B) { benchFigure(b, "13a") }

// BenchmarkFig13bAdaptiveConvergence regenerates Figure 13b.
func BenchmarkFig13bAdaptiveConvergence(b *testing.B) { benchFigure(b, "13b") }

// BenchmarkFig14MovieLens regenerates Figure 14.
func BenchmarkFig14MovieLens(b *testing.B) { benchFigure(b, "14") }

// BenchmarkFig15SessionScaling regenerates Figure 15.
func BenchmarkFig15SessionScaling(b *testing.B) { benchFigure(b, "15") }

// --- Solver micro-benchmarks (per-inference cost on fixed instances) ---

func BenchmarkSolverTwoLabel(b *testing.B) {
	in := dataset.BenchmarkD(1)[0] // m=20, 2 patterns, 3 items/label
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.TwoLabel(in.Model.Model(), in.Lab, in.Union, solver.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolverBipartite(b *testing.B) {
	in := dataset.BenchmarkCSlice(1, 3, 3, 3)[0] // m=10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Bipartite(in.Model.Model(), in.Lab, in.Union, solver.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolverGeneral(b *testing.B) {
	in := dataset.BenchmarkA(1)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.General(in.Model.Model(), in.Lab, in.Union, solver.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolverRelOrder(b *testing.B) {
	in := dataset.BenchmarkCSlice(1, 1, 2, 3)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.RelOrder(in.Model.Model(), in.Lab, in.Union, solver.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMISAMPLite(b *testing.B) {
	in := dataset.BenchmarkA(1)[0]
	est, err := sampling.NewEstimator(in.Model, in.Lab, in.Union, sampling.Config{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Estimate(5, 100, rng, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMallowsSample(b *testing.B) {
	ml, err := NewMallows(Identity(100), 0.3)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ml.Sample(rng)
	}
}

func BenchmarkAMPSampleAndDensity(b *testing.B) {
	ml, err := NewMallows(Identity(100), 0.3)
	if err != nil {
		b.Fatal(err)
	}
	cons := NewPartialOrder()
	cons.Add(Item(90), Item(5))
	cons.Add(Item(80), Item(10))
	amp, err := NewAMP(ml.Sigma, ml.Phi, cons)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tau, _ := amp.Sample(rng)
		if _, ok := amp.LogDensity(tau); !ok {
			b.Fatal("sample unreachable")
		}
	}
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---

// BenchmarkAblationTrackerDropOn measures the bipartite solver with the
// only-track-uncertain-labels optimization (Algorithm 4 as published).
func BenchmarkAblationTrackerDropOn(b *testing.B) {
	in := dataset.BenchmarkCSlice(1, 3, 4, 3)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Bipartite(in.Model.Model(), in.Lab, in.Union, solver.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTrackerDropOff measures the same solve with the
// optimization disabled; the gap is the value of the pruning.
func BenchmarkAblationTrackerDropOff(b *testing.B) {
	in := dataset.BenchmarkCSlice(1, 3, 4, 3)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Bipartite(in.Model.Model(), in.Lab, in.Union, solver.Options{NoTrackerDrop: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGroupingOn measures query evaluation with
// identical-request session grouping (Section 6.4).
func BenchmarkAblationGroupingOn(b *testing.B) { benchGrouping(b, false) }

// BenchmarkAblationGroupingOff measures the same evaluation solving every
// session independently.
func BenchmarkAblationGroupingOff(b *testing.B) { benchGrouping(b, true) }

func benchGrouping(b *testing.B, disable bool) {
	db, err := dataset.CrowdRank(dataset.CrowdRankConfig{Workers: 60, Movies: 10, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	q, err := ppd.Parse(dataset.CrowdRankQuery)
	if err != nil {
		b.Fatal(err)
	}
	eng := &ppd.Engine{DB: db, Method: ppd.MethodRelOrder, DisableGrouping: disable}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Eval(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationParallelWorkers measures multi-worker group solving.
func BenchmarkAblationParallelWorkers(b *testing.B) {
	db, err := dataset.Polls(dataset.PollsConfig{Candidates: 18, Voters: 80, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	q, err := ppd.Parse(`P(_, _; l; r), C(l, p, M, _, _, _), C(r, p, F, _, _, _)`)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng := &ppd.Engine{DB: db, Method: ppd.MethodTwoLabel, Workers: workers}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Eval(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBipartiteBasic measures the Section 4.3.1 basic
// bipartite solver (no pruning) on the same instance as the tracker-drop
// ablation; together the three benchmarks quantify each optimization layer.
func BenchmarkAblationBipartiteBasic(b *testing.B) {
	in := dataset.BenchmarkCSlice(1, 3, 4, 3)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.BipartiteBasic(in.Model.Model(), in.Lab, in.Union, solver.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
