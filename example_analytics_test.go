package probpref_test

import (
	"fmt"
	"log"

	"probpref"
)

// Compute exact pairwise marginals and the expected Condorcet winner of
// Ann's polling session.
func ExamplePairwiseMatrix() {
	db, err := probpref.Figure1()
	if err != nil {
		log.Fatal(err)
	}
	ann := db.Prefs["P"].Sessions.At(0)
	pm := probpref.PairwiseMatrix(ann.Model.Model())
	fmt.Printf("Pr(Clinton > Trump) = %.4f\n", pm[1][0])
	if w, ok := probpref.CondorcetWinner(pm); ok {
		fmt.Printf("Condorcet winner: %s\n", db.ItemKey(w))
	}
	// Output:
	// Pr(Clinton > Trump) = 0.9494
	// Condorcet winner: Clinton
}

// The exact distribution of the number of sessions preferring some Democrat
// to some Republican.
func ExampleEngine_CountDistribution() {
	db, err := probpref.Figure1()
	if err != nil {
		log.Fatal(err)
	}
	eng := &probpref.Engine{DB: db, Method: probpref.MethodAuto}
	q, err := probpref.ParseQuery(
		`P(_, _; c1; c2), C(c1, D, _, _, _, _), C(c2, R, _, _, _, _)`)
	if err != nil {
		log.Fatal(err)
	}
	dist, err := eng.CountDistribution(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean %.4f stddev %.4f mode %d\n", dist.Mean(), dist.StdDev(), dist.Mode())
	fmt.Printf("Pr(count >= 2) = %.4f\n", dist.Tail(2))
	// Output:
	// mean 2.3061 stddev 0.5074 mode 2
	// Pr(count >= 2) = 0.9777
}

// Evaluate a union of conjunctive queries: either a female candidate beats
// a male one, or a JD-educated Democrat beats a Republican.
func ExampleEngine_EvalUnion() {
	db, err := probpref.Figure1()
	if err != nil {
		log.Fatal(err)
	}
	eng := &probpref.Engine{DB: db, Method: probpref.MethodAuto}
	uq, err := probpref.ParseUnionQuery(
		`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)` +
			` | P(_, _; c1; c2), C(c1, D, _, _, JD, _), C(c2, R, _, _, _, _)`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.EvalUnion(uq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pr = %.4f\n", res.Prob)
	// Output:
	// Pr = 0.9991
}

// Sessions carrying different model families coexist in one preference
// relation: a Generalized Mallows voter joins the Mallows voters of
// Figure 1, and every exact solver still applies.
func ExampleSessionModel() {
	db, err := probpref.Figure1()
	if err != nil {
		log.Fatal(err)
	}
	gm, err := probpref.NewGeneralizedMallows(
		probpref.Ranking{1, 2, 3, 0}, []float64{1, 0.1, 0.9, 0.4})
	if err != nil {
		log.Fatal(err)
	}
	polls := db.Prefs["P"]
	polls.Sessions = probpref.ConcatSessions(polls.Sessions, probpref.SessionSlice{
		{Key: []string{"Eve", "6/5"}, Model: gm},
	})
	eng := &probpref.Engine{DB: db, Method: probpref.MethodAuto}
	q, err := probpref.ParseQuery(
		`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Eval(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sessions evaluated: %d\n", len(res.PerSession))
	fmt.Printf("Eve (Generalized Mallows): %.4f\n", res.PerSession[3].Prob)
	// Output:
	// sessions evaluated: 4
	// Eve (Generalized Mallows): 0.9780
}

// A Generalized Mallows voter is certain about the top of the ballot but
// uncertain about the bottom.
func ExampleNewGeneralizedMallows() {
	gm, err := probpref.NewGeneralizedMallows(
		probpref.Identity(4), []float64{0, 0.1, 0.5, 0.9})
	if err != nil {
		log.Fatal(err)
	}
	top, err := probpref.TopKProb(gm.Model(), 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pr(reference head stays first) = %.4f\n", top)
	fmt.Printf("expected swaps = %.4f\n", probpref.ExpectedDistanceToReference(gm.Model()))
	// Output:
	// Pr(reference head stays first) = 0.6140
	// expected swaps = 2.0310
}
