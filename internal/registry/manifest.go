package registry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Manifest is the startup catalog file of cmd/hardqd: the set of named
// models a daemon serves. The on-disk form is JSON:
//
//	{
//	  "models": [
//	    {"name": "figure1", "dataset": "figure1", "preload": true},
//	    {"name": "polls-small", "dataset": "polls",
//	     "candidates": 10, "voters": 50, "seed": 7}
//	  ]
//	}
//
// See examples/registry/manifest.json for a runnable example.
type Manifest struct {
	// Models lists the specs to register, in file order.
	Models []Spec `json:"models"`
}

// ParseManifest decodes and validates a manifest: every spec must validate
// and names must be unique. Unknown JSON fields are rejected so typos in a
// manifest fail at startup instead of silently taking defaults.
func ParseManifest(r io.Reader) (*Manifest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("registry: parsing manifest: %w", err)
	}
	if len(m.Models) == 0 {
		return nil, fmt.Errorf("registry: manifest lists no models")
	}
	seen := make(map[string]bool, len(m.Models))
	for i, spec := range m.Models {
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("registry: manifest model %d: %w", i+1, err)
		}
		if seen[spec.Name] {
			return nil, fmt.Errorf("registry: manifest model %d: duplicate name %q", i+1, spec.Name)
		}
		seen[spec.Name] = true
	}
	return &m, nil
}

// LoadManifest reads and parses the manifest file at path.
func LoadManifest(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	defer f.Close()
	m, err := ParseManifest(f)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return m, nil
}

// Apply registers every model of the manifest, building the preloaded ones
// eagerly. On error the models registered so far stay in the catalog; the
// error names the failing model.
func (r *Registry) Apply(m *Manifest) error {
	for _, spec := range m.Models {
		if err := r.Register(spec); err != nil {
			return err
		}
	}
	return nil
}
