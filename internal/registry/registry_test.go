package registry

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"probpref/internal/ppd"
)

func figure1Spec(name string) Spec {
	return Spec{Name: name, Dataset: "figure1"}
}

func mustOpen(t *testing.T, r *Registry, name string) *Handle {
	t.Helper()
	h, err := r.Open(name)
	if err != nil {
		t.Fatalf("Open(%q): %v", name, err)
	}
	return h
}

func TestRegisterOpenLazy(t *testing.T) {
	r := New()
	if err := r.Register(figure1Spec("f1")); err != nil {
		t.Fatal(err)
	}
	infos := r.List()
	if len(infos) != 1 || infos[0].Name != "f1" || infos[0].Loaded {
		t.Fatalf("after register: %+v", infos)
	}
	h := mustOpen(t, r, "f1")
	if h.DB() == nil {
		t.Fatal("open handle has nil DB")
	}
	if h.Name() != "f1" {
		t.Fatalf("handle name = %q", h.Name())
	}
	if h.DemoQuery() == "" {
		t.Fatal("figure1 model should carry a demo query")
	}
	in, err := r.Lookup("f1")
	if err != nil {
		t.Fatal(err)
	}
	if !in.Loaded || in.Refs != 1 || in.Items != 4 || in.Sessions == 0 {
		t.Fatalf("open info = %+v", in)
	}
	h.Close()
	h.Close() // idempotent
	if in, _ := r.Lookup("f1"); in.Refs != 0 {
		t.Fatalf("refs after close = %d", in.Refs)
	}
}

func TestPreloadBuildsEagerly(t *testing.T) {
	r := New()
	spec := figure1Spec("f1")
	spec.Preload = true
	if err := r.Register(spec); err != nil {
		t.Fatal(err)
	}
	if in, _ := r.Lookup("f1"); !in.Loaded || in.Refs != 0 {
		t.Fatalf("preloaded info = %+v", in)
	}
}

func TestRegisterValidation(t *testing.T) {
	r := New()
	cases := []Spec{
		{Name: "", Dataset: "figure1"},
		{Name: "bad name", Dataset: "figure1"},
		{Name: "a/b", Dataset: "figure1"},
		{Name: "ok", Dataset: "nope"},
		// Negative generator parameters must fail validation instead of
		// panicking inside a builder (they size slice allocations).
		{Name: "ok", Dataset: "polls", Candidates: -1},
		{Name: "ok", Dataset: "polls", Voters: -2},
		{Name: "ok", Dataset: "movielens", Movies: -1},
		{Name: "ok", Dataset: "crowdrank", Workers: -1},
	}
	for _, spec := range cases {
		if err := r.Register(spec); err == nil {
			t.Errorf("Register(%+v): want error", spec)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("failed registers should not populate the catalog (len=%d)", r.Len())
	}
}

// TestPreloadFailureRegistersNothing: a preload whose build fails must
// leave the catalog untouched — no half-built entry, no rollback window.
func TestPreloadFailureRegistersNothing(t *testing.T) {
	r := New()
	// crowdrank requires a HIT of at least 6 movies; 3 passes validation
	// but fails inside the builder.
	err := r.Register(Spec{Name: "bad", Dataset: "crowdrank", Movies: 3, Preload: true})
	if err == nil {
		t.Fatal("want build error")
	}
	if r.Len() != 0 {
		t.Fatalf("failed preload left %d entries in the catalog", r.Len())
	}
}

func TestRegisterDuplicate(t *testing.T) {
	r := New()
	if err := r.Register(figure1Spec("f1")); err != nil {
		t.Fatal(err)
	}
	err := r.Register(figure1Spec("f1"))
	if !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate register: %v, want ErrExists", err)
	}
}

func TestOpenAndDeleteNotFound(t *testing.T) {
	r := New()
	if _, err := r.Open("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Open(ghost): %v, want ErrNotFound", err)
	}
	if err := r.Delete("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete(ghost): %v, want ErrNotFound", err)
	}
}

// TestDeleteWaitsForHandles is the refcounted-eviction contract: Delete
// hides the model immediately, but the database of an in-flight handle
// survives until the handle closes — only then is the entry unloaded.
func TestDeleteWaitsForHandles(t *testing.T) {
	r := New()
	if err := r.Register(figure1Spec("f1")); err != nil {
		t.Fatal(err)
	}
	h := mustOpen(t, r, "f1")
	if err := r.Delete("f1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Open("f1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Open after delete: %v, want ErrNotFound", err)
	}
	// The in-flight query still works against the old instance.
	db := h.DB()
	if db == nil {
		t.Fatal("handle lost its DB after Delete")
	}
	eng := &ppd.Engine{DB: db}
	q, err := ppd.Parse(h.DemoQuery())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Eval(q); err != nil {
		t.Fatalf("eval on deleted-but-open model: %v", err)
	}
	if h.e.db == nil {
		t.Fatal("entry unloaded while a handle was open")
	}
	h.Close()
	if h.e.db != nil {
		t.Fatal("entry not unloaded after last handle closed")
	}
}

func TestDeleteIdleUnloadsImmediately(t *testing.T) {
	r := New()
	spec := figure1Spec("f1")
	spec.Preload = true
	if err := r.Register(spec); err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	e := r.models["f1"]
	r.mu.Unlock()
	if err := r.Delete("f1"); err != nil {
		t.Fatal(err)
	}
	if e.db != nil {
		t.Fatal("idle delete should unload synchronously")
	}
}

func TestRegisterDB(t *testing.T) {
	r := New()
	if err := r.RegisterDB("inline", nil, ""); err == nil {
		t.Fatal("nil db should be rejected")
	}
	db, _, err := Build(figure1Spec("tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterDB("inline", db, "demo"); err != nil {
		t.Fatal(err)
	}
	in, err := r.Lookup("inline")
	if err != nil {
		t.Fatal(err)
	}
	if !in.Loaded || in.Dataset != "inline" || in.Items != 4 {
		t.Fatalf("inline info = %+v", in)
	}
	h := mustOpen(t, r, "inline")
	defer h.Close()
	if h.DB() != db || h.DemoQuery() != "demo" {
		t.Fatal("inline handle does not expose the registered db/demo")
	}
}

// TestConcurrentOpenBuildsOnce opens one cold model from many goroutines;
// the lazy build must run once and every handle must see the same DB.
func TestConcurrentOpenBuildsOnce(t *testing.T) {
	r := New()
	if err := r.Register(figure1Spec("f1")); err != nil {
		t.Fatal(err)
	}
	const n = 16
	dbs := make([]*ppd.DB, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := r.Open("f1")
			if err != nil {
				t.Error(err)
				return
			}
			dbs[i] = h.DB()
			h.Close()
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if dbs[i] != dbs[0] {
			t.Fatalf("handle %d saw a different DB instance", i)
		}
	}
}

// TestConcurrentRegisterEvictOpen hammers the catalog with racing
// register/open/delete/list cycles; run under -race this is the registry's
// concurrency safety net.
func TestConcurrentRegisterEvictOpen(t *testing.T) {
	r := New()
	const (
		workers = 8
		rounds  = 30
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("m%d", w%4) // contend on 4 names
			for i := 0; i < rounds; i++ {
				switch i % 4 {
				case 0:
					err := r.Register(figure1Spec(name))
					if err != nil && !errors.Is(err, ErrExists) {
						t.Errorf("register: %v", err)
					}
				case 1:
					h, err := r.Open(name)
					if err == nil {
						if h.DB() == nil {
							t.Error("open handle with nil DB")
						}
						h.Close()
					} else if !errors.Is(err, ErrNotFound) {
						t.Errorf("open: %v", err)
					}
				case 2:
					r.List()
					r.Names()
				case 3:
					if err := r.Delete(name); err != nil && !errors.Is(err, ErrNotFound) {
						t.Errorf("delete: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestManifestParse(t *testing.T) {
	good := `{"models": [
		{"name": "f1", "dataset": "figure1", "preload": true},
		{"name": "p1", "dataset": "polls", "candidates": 6, "voters": 4, "seed": 7}
	]}`
	m, err := ParseManifest(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Models) != 2 || m.Models[1].Candidates != 6 {
		t.Fatalf("parsed manifest = %+v", m)
	}

	bad := []string{
		`{}`, // no models
		`{"models": []}`,
		`{"models": [{"name": "f1", "dataset": "nope"}]}`,
		`{"models": [{"name": "f1", "dataset": "figure1"}, {"name": "f1", "dataset": "polls"}]}`,
		`{"models": [{"name": "f1", "dataset": "figure1", "typo_field": 1}]}`,
		`not json`,
	}
	for _, src := range bad {
		if _, err := ParseManifest(strings.NewReader(src)); err == nil {
			t.Errorf("ParseManifest(%q): want error", src)
		}
	}
}

func TestManifestApply(t *testing.T) {
	m, err := ParseManifest(strings.NewReader(
		`{"models": [
			{"name": "f1", "dataset": "figure1", "preload": true},
			{"name": "p1", "dataset": "polls", "candidates": 6, "voters": 4}
		]}`))
	if err != nil {
		t.Fatal(err)
	}
	r := New()
	if err := r.Apply(m); err != nil {
		t.Fatal(err)
	}
	f1, _ := r.Lookup("f1")
	p1, _ := r.Lookup("p1")
	if !f1.Loaded {
		t.Fatalf("preloaded f1 not loaded: %+v", f1)
	}
	if p1.Loaded {
		t.Fatalf("lazy p1 loaded at apply time: %+v", p1)
	}
	h := mustOpen(t, r, "p1")
	defer h.Close()
	if got := h.DB().M(); got != 6 {
		t.Fatalf("polls model has m=%d items, want 6", got)
	}
}

func TestLoadManifestMissingFile(t *testing.T) {
	if _, err := LoadManifest("testdata/does-not-exist.json"); err == nil {
		t.Fatal("want error for missing manifest file")
	}
}
