package registry

import (
	"encoding/json"
	"fmt"

	"probpref/internal/ppd"
	"probpref/internal/wal"
)

// This file wires the write-ahead log of internal/wal into the catalog.
// With a log attached (SetWAL), every Append writes one record — the
// batch in the shared ppd.SessionJSON wire form — and syncs it *before*
// publishing the grown database, so the caller's acknowledgement is
// durable no matter what happens to the best-effort snapshot behind it.
// On the next start, buildLocked replays the log's records for each model
// over its snapshot; the wal_seq stamp inside the snapshot makes that
// idempotent (records at or below it are already included). Once a
// post-ingest snapshot lands durably the covered records are no longer
// needed and whole leading segments are deleted (compactWAL).

// walRecord is the payload of one log record: one accepted ingest batch.
type walRecord struct {
	// Model is the catalog name the batch was appended to.
	Model string `json:"model"`
	// Pref is the p-relation within the model.
	Pref string `json:"pref"`
	// Sessions is the batch, in the shared session wire form.
	Sessions []ppd.SessionJSON `json:"sessions"`
}

// SetWAL attaches an opened log to the catalog and scans it to learn
// which records are not yet covered by a durable snapshot (every record
// still in the log is treated as pending until a snapshot proves
// otherwise — the stamp check happens at replay). Attach the log before
// registering models or serving traffic. A record that decodes to no
// model name is unexpected durable garbage and fails the attach: losing
// it must be an operator decision.
func (r *Registry) SetWAL(l *wal.Log) error {
	pending := make(map[string][]uint64)
	for rec, err := range l.Replay() {
		if err != nil {
			return fmt.Errorf("registry: scanning wal: %w", err)
		}
		var wr walRecord
		if err := json.Unmarshal(rec.Payload, &wr); err != nil || wr.Model == "" {
			return fmt.Errorf("registry: wal record %d does not decode to an ingest batch", rec.Seq)
		}
		pending[wr.Model] = append(pending[wr.Model], rec.Seq)
	}
	r.walMu.Lock()
	r.wal = l
	r.walPending = pending
	r.walMu.Unlock()
	return nil
}

// walLog returns the attached log, or nil.
func (r *Registry) walLog() *wal.Log {
	r.walMu.Lock()
	defer r.walMu.Unlock()
	return r.wal
}

// addPending marks seq as acknowledged but not yet durably snapshotted
// for the model. Seqs arrive in increasing order per model (Append holds
// the entry's buildMu across the log write).
func (r *Registry) addPending(model string, seq uint64) {
	r.walMu.Lock()
	defer r.walMu.Unlock()
	if r.wal != nil {
		r.walPending[model] = append(r.walPending[model], seq)
	}
}

// markDurable drops the model's pending seqs at or below upTo: a snapshot
// including them has landed durably (or replay found them inside the
// snapshot's stamp).
func (r *Registry) markDurable(model string, upTo uint64) {
	r.walMu.Lock()
	defer r.walMu.Unlock()
	r.dropPendingLocked(model, upTo)
}

func (r *Registry) dropPendingLocked(model string, upTo uint64) {
	p := r.walPending[model]
	i := 0
	for i < len(p) && p[i] <= upTo {
		i++
	}
	if i == len(p) {
		delete(r.walPending, model)
	} else if i > 0 {
		r.walPending[model] = p[i:]
	}
}

// dropModelPending forgets every pending seq of a deleted model: its
// records will never be replayed into the catalog again, so they must not
// pin the log. (The records themselves stay until compaction reaches
// them; re-registering the same name before then replays them — see the
// Delete doc.)
func (r *Registry) dropModelPending(model string) {
	r.walMu.Lock()
	delete(r.walPending, model)
	r.walMu.Unlock()
	r.compactWAL()
}

// compactWAL deletes leading log segments every record of which is
// durably covered: the floor is one below the lowest pending seq, or the
// log's last seq when nothing is pending. Best-effort — a failed deletion
// retries at the next compaction.
func (r *Registry) compactWAL() {
	r.walMu.Lock()
	l := r.wal
	floor := uint64(0)
	if l != nil {
		floor = l.LastSeq()
		for _, seqs := range r.walPending {
			if len(seqs) > 0 && seqs[0]-1 < floor {
				floor = seqs[0] - 1
			}
		}
	}
	r.walMu.Unlock()
	if l == nil || floor == 0 {
		return
	}
	if _, err := l.Compact(floor); err != nil {
		r.noteLog("registry: wal compaction: %v", err)
	}
}

// logBatch appends one ingest batch to the log and syncs it per the log's
// policy. Called under the entry's buildMu, which makes the log order the
// apply order for the model. Returns the record's seq (0 with no log).
func (r *Registry) logBatch(name, pref string, sessions []*ppd.Session) (uint64, error) {
	l := r.walLog()
	if l == nil {
		return 0, nil
	}
	sj, err := ppd.SessionsJSON(sessions)
	if err != nil {
		return 0, fmt.Errorf("registry: model %q: batch not loggable: %w", name, err)
	}
	payload, err := json.Marshal(walRecord{Model: name, Pref: pref, Sessions: sj})
	if err != nil {
		return 0, fmt.Errorf("registry: model %q: encoding wal record: %w", name, err)
	}
	seq, err := l.Append(payload)
	if err != nil {
		return 0, fmt.Errorf("registry: model %q: wal append: %w", name, err)
	}
	r.addPending(name, seq)
	return seq, nil
}

// replayWAL applies the log's records for one model over its freshly
// built database. Records at or below the snapshot's wal_seq stamp
// (e.walSeq) are already included and only clear their pending mark;
// later records append in log order. The entry's buildMu must be held.
// Replay failures poison the build (e.buildErr): serving a model known to
// be missing acknowledged batches would silently break the durability
// contract.
func (r *Registry) replayWAL(name string, e *entry) {
	l := r.walLog()
	if l == nil {
		return
	}
	base := e.walSeq
	for rec, err := range l.Replay() {
		if err != nil {
			e.buildErr = fmt.Errorf("registry: model %q: wal replay: %w", name, err)
			return
		}
		var wr walRecord
		if err := json.Unmarshal(rec.Payload, &wr); err != nil || wr.Model == "" {
			e.buildErr = fmt.Errorf("registry: model %q: wal record %d does not decode", name, rec.Seq)
			return
		}
		if wr.Model != name {
			continue
		}
		if rec.Seq <= base {
			r.markDurable(name, rec.Seq)
			continue
		}
		sessions, err := ppd.ParseSessionsJSON(wr.Sessions)
		if err != nil {
			e.buildErr = fmt.Errorf("registry: model %q: wal record %d: %w", name, rec.Seq, err)
			return
		}
		ndb, err := e.db.AppendSessions(wr.Pref, sessions)
		if err != nil {
			e.buildErr = fmt.Errorf("registry: model %q: replaying wal record %d: %w", name, rec.Seq, err)
			return
		}
		e.db = ndb
		e.walSeq = rec.Seq
	}
	e.items, e.sessions = dbSize(e.db)
}

// Checkpoint snapshots every built whole model that still has pending
// (acked but not durably snapshotted) log records, marks them durable,
// and compacts the log. This is the graceful-shutdown path of cmd/hardqd:
// after a clean checkpoint a restart replays nothing. Returns the first
// snapshot error; later models are still attempted.
func (r *Registry) Checkpoint() error {
	r.mu.Lock()
	entries := make(map[string]*entry, len(r.models))
	for name, e := range r.models {
		entries[name] = e
	}
	r.mu.Unlock()

	r.walMu.Lock()
	dirty := make([]string, 0, len(r.walPending))
	for model := range r.walPending {
		dirty = append(dirty, model)
	}
	r.walMu.Unlock()

	var firstErr error
	for _, name := range dirty {
		e, ok := entries[name]
		if !ok {
			continue // deleted since; dropModelPending already ran
		}
		e.buildMu.Lock()
		if e.built && e.buildErr == nil && e.db != nil && e.spec.Partitions == 0 {
			if err := r.writeSnapshot(name, e.db, e.demo, e.walSeq); err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				r.markDurable(name, e.walSeq)
			}
		}
		e.buildMu.Unlock()
	}
	r.compactWAL()
	return firstErr
}

// SnapshotErrors reports how many snapshot writes have failed since the
// catalog was created (surfaced as snapshot_errors in /stats).
func (r *Registry) SnapshotErrors() uint64 {
	return r.snapErrs.Load()
}

// SetLogf directs the catalog's operational warnings (failed snapshot
// writes, failed compactions) to logf; nil silences them.
func (r *Registry) SetLogf(logf func(format string, args ...any)) {
	r.logMu.Lock()
	r.logf = logf
	r.logMu.Unlock()
}

// noteLog emits one operational warning through the configured logger.
func (r *Registry) noteLog(format string, args ...any) {
	r.logMu.Lock()
	logf := r.logf
	r.logMu.Unlock()
	if logf != nil {
		logf(format, args...)
	}
}
