package registry

import (
	"os"
	"path/filepath"
	"testing"

	"probpref/internal/ppd"
	"probpref/internal/store"
)

// TestSnapshotWrittenOnBuild checks that a generator build persists a
// snapshot into the configured directory, atomically named <model>.ppds.
func TestSnapshotWrittenOnBuild(t *testing.T) {
	dir := t.TempDir()
	r := New()
	r.SetSnapshotDir(dir)
	if err := r.Register(Spec{Name: "fig", Dataset: "figure1"}); err != nil {
		t.Fatal(err)
	}
	h, err := r.Open("fig")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	s, err := store.Open(filepath.Join(dir, "fig.ppds"))
	if err != nil {
		t.Fatalf("no snapshot after build: %v", err)
	}
	defer s.Close()
	if s.Sessions() != 3 || s.Demo() != h.DemoQuery() {
		t.Fatalf("snapshot has %d sessions, demo %q", s.Sessions(), s.Demo())
	}
}

// TestSnapshotRestore checks that a model cold-starts from its snapshot
// file instead of its generator: the snapshot is planted with a demo query
// the generator would never produce, and Open must surface it.
func TestSnapshotRestore(t *testing.T) {
	dir := t.TempDir()
	db, _, err := Build(Spec{Name: "x", Dataset: "figure1"})
	if err != nil {
		t.Fatal(err)
	}
	const marker = "P(_, _; Trump; Clinton)"
	if err := store.WriteFile(filepath.Join(dir, "fig.ppds"), db, marker); err != nil {
		t.Fatal(err)
	}

	r := New()
	r.SetSnapshotDir(dir)
	if err := r.Register(Spec{Name: "fig", Dataset: "figure1"}); err != nil {
		t.Fatal(err)
	}
	h, err := r.Open("fig")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if h.DemoQuery() != marker {
		t.Fatalf("demo %q: model was rebuilt, not restored from snapshot", h.DemoQuery())
	}
	if got := h.DB().Prefs["P"].Sessions.Len(); got != 3 {
		t.Fatalf("restored model has %d sessions, want 3", got)
	}
	// A corrupt snapshot must fall back to the generator, not fail the open.
	if err := r.Delete("fig"); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "fig.ppds"))
	if err != nil {
		t.Fatal(err)
	}
	raw[41] ^= 0xFF // inside the section table, covered by the header CRC
	if err := os.WriteFile(filepath.Join(dir, "fig.ppds"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(Spec{Name: "fig", Dataset: "figure1"}); err != nil {
		t.Fatal(err)
	}
	h2, err := r.Open("fig")
	if err != nil {
		t.Fatalf("open with corrupt snapshot: %v", err)
	}
	defer h2.Close()
	if h2.DemoQuery() == marker {
		t.Fatal("corrupt snapshot was trusted")
	}
}

// appendSession builds one extra session compatible with figure1's P.
func appendSession(t *testing.T, db *ppd.DB) *ppd.Session {
	t.Helper()
	base := db.Prefs["P"].Sessions.At(0)
	return &ppd.Session{Key: []string{"Eve", "7/7"}, Model: base.Model}
}

// TestAppendSwapsWithoutDisturbingOpenHandles is the ingest contract: a
// handle opened before Append keeps its session count, a handle opened
// after sees the appended sessions, and the entry's Info tracks the growth.
func TestAppendSwapsWithoutDisturbingOpenHandles(t *testing.T) {
	r := New()
	if err := r.Register(Spec{Name: "fig", Dataset: "figure1"}); err != nil {
		t.Fatal(err)
	}
	before, err := r.Open("fig")
	if err != nil {
		t.Fatal(err)
	}
	defer before.Close()

	total, err := r.Append("fig", "P", []*ppd.Session{appendSession(t, before.DB())})
	if err != nil {
		t.Fatal(err)
	}
	if total != 4 {
		t.Fatalf("append reported %d sessions, want 4", total)
	}
	if got := before.DB().Prefs["P"].Sessions.Len(); got != 3 {
		t.Fatalf("pre-append handle sees %d sessions, want 3", got)
	}
	after, err := r.Open("fig")
	if err != nil {
		t.Fatal(err)
	}
	defer after.Close()
	if got := after.DB().Prefs["P"].Sessions.Len(); got != 4 {
		t.Fatalf("post-append handle sees %d sessions, want 4", got)
	}
	if got := after.DB().Prefs["P"].Sessions.At(3).Key[0]; got != "Eve" {
		t.Fatalf("appended session key %q, want Eve", got)
	}
	in, err := r.Lookup("fig")
	if err != nil {
		t.Fatal(err)
	}
	if in.Sessions != 4 {
		t.Fatalf("Info.Sessions = %d, want 4", in.Sessions)
	}
}

// TestAppendValidates checks the error paths: unknown model, unknown
// p-relation, mismatched session shape. None may alter the model.
func TestAppendValidates(t *testing.T) {
	r := New()
	if err := r.Register(Spec{Name: "fig", Dataset: "figure1"}); err != nil {
		t.Fatal(err)
	}
	h, err := r.Open("fig")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	good := appendSession(t, h.DB())

	if _, err := r.Append("nope", "P", []*ppd.Session{good}); err == nil {
		t.Error("want error for unknown model")
	}
	if _, err := r.Append("fig", "nope", []*ppd.Session{good}); err == nil {
		t.Error("want error for unknown p-relation")
	}
	bad := &ppd.Session{Key: []string{"only-one"}, Model: good.Model}
	if _, err := r.Append("fig", "P", []*ppd.Session{bad}); err == nil {
		t.Error("want error for key arity mismatch")
	}
	in, err := r.Lookup("fig")
	if err != nil {
		t.Fatal(err)
	}
	if in.Sessions != 3 {
		t.Fatalf("failed appends changed the model: %d sessions", in.Sessions)
	}
}

// TestAppendPersistsThroughSnapshot checks that ingested sessions survive a
// restart when a snapshot directory is configured: a second registry over
// the same directory restores the grown model.
func TestAppendPersistsThroughSnapshot(t *testing.T) {
	dir := t.TempDir()
	r := New()
	r.SetSnapshotDir(dir)
	if err := r.Register(Spec{Name: "fig", Dataset: "figure1"}); err != nil {
		t.Fatal(err)
	}
	h, err := r.Open("fig")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Append("fig", "P", []*ppd.Session{appendSession(t, h.DB())}); err != nil {
		t.Fatal(err)
	}
	h.Close()

	r2 := New()
	r2.SetSnapshotDir(dir)
	if err := r2.Register(Spec{Name: "fig", Dataset: "figure1"}); err != nil {
		t.Fatal(err)
	}
	h2, err := r2.Open("fig")
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if got := h2.DB().Prefs["P"].Sessions.Len(); got != 4 {
		t.Fatalf("restarted model has %d sessions, want 4 (ingest lost)", got)
	}
	if got := h2.DB().Prefs["P"].Sessions.At(3).Key[0]; got != "Eve" {
		t.Fatalf("restored appended session key %q, want Eve", got)
	}
}
