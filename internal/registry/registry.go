// Package registry is the model catalog layer of the serving stack: a
// concurrent, named catalog of RIM-PPD models that one daemon serves
// simultaneously. Each model is either a dataset-backed Spec — built lazily
// (or eagerly, see Spec.Preload) from the generators of internal/dataset —
// or a pre-built database registered directly (RegisterDB). Queries open a
// model by name and hold a reference-counted Handle for their duration, so
// Delete can evict a model from the catalog immediately while in-flight
// queries finish against the old instance before its memory is released.
//
// The registry sits below internal/server: the Service routes each request
// to a named model and namespaces its solve-cache keys by that name, and
// cmd/hardqd populates the registry from a startup manifest file (see
// Manifest) or at runtime through the /models endpoints.
package registry

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"

	"probpref/internal/dataset"
	"probpref/internal/ppd"
	"probpref/internal/store"
	"probpref/internal/wal"
)

// Catalog errors. Callers branch on them with errors.Is; the HTTP layer
// maps ErrNotFound to 404 and ErrExists to 409.
var (
	// ErrNotFound reports an Open or Delete of a name the catalog does not
	// hold.
	ErrNotFound = errors.New("registry: model not found")
	// ErrExists reports a Register of a name already in the catalog.
	ErrExists = errors.New("registry: model already registered")
)

// nameRE restricts model names to URL-path-safe tokens so names can appear
// verbatim in /models/{name} routes and in cache-key namespaces.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9._-]+$`)

// Spec describes one named, dataset-backed model: which generator of
// internal/dataset builds it and with which parameters. Fields irrelevant
// to the chosen dataset are ignored, zero-valued fields take the
// generator's defaults. A Spec is the unit of the startup manifest and of
// the POST /models body.
type Spec struct {
	// Name is the catalog name of the model (letters, digits, ".", "_",
	// "-").
	Name string `json:"name"`
	// Dataset names the builder: figure1 | polls | movielens | crowdrank.
	Dataset string `json:"dataset"`
	// Seed is the generator seed (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Candidates is the polls candidate count.
	Candidates int `json:"candidates,omitempty"`
	// Voters is the polls voter count.
	Voters int `json:"voters,omitempty"`
	// Movies is the movielens catalog size (or the crowdrank HIT size).
	Movies int `json:"movies,omitempty"`
	// Workers is the crowdrank worker count.
	Workers int `json:"workers,omitempty"`
	// Preload builds the model at registration time (manifest load,
	// POST /models) instead of on first use.
	Preload bool `json:"preload,omitempty"`
	// Partitions, when positive, restricts the model to one contiguous
	// session slice of the dataset: the sessions in
	// ppd.PartitionRange(n, Partition, Partitions) of each p-relation. This
	// is how a shard serves its share of a model — same dataset spec, a
	// different Partition per shard. 0 means the whole dataset.
	Partitions int `json:"partitions,omitempty"`
	// Partition is the slice index, 0 <= Partition < Partitions.
	Partition int `json:"partition,omitempty"`
}

// Validate checks the spec's name, dataset and generator parameters
// without building anything, so malformed specs fail at registration
// (manifest load, POST /models) instead of panicking inside a builder.
func (s Spec) Validate() error {
	if !nameRE.MatchString(s.Name) {
		return fmt.Errorf("registry: invalid model name %q (want letters, digits, '.', '_', '-')", s.Name)
	}
	if !dataset.Known(s.Dataset) {
		return fmt.Errorf("registry: model %q: unknown dataset %q (want one of %v)", s.Name, s.Dataset, dataset.Names())
	}
	for _, p := range []struct {
		name string
		v    int
	}{
		{"candidates", s.Candidates},
		{"voters", s.Voters},
		{"movies", s.Movies},
		{"workers", s.Workers},
	} {
		if p.v < 0 {
			return fmt.Errorf("registry: model %q: %s must be non-negative, got %d", s.Name, p.name, p.v)
		}
	}
	if s.Partitions < 0 {
		return fmt.Errorf("registry: model %q: partitions must be non-negative, got %d", s.Name, s.Partitions)
	}
	if s.Partitions == 0 && s.Partition != 0 {
		return fmt.Errorf("registry: model %q: partition %d set without partitions", s.Name, s.Partition)
	}
	if s.Partitions > 0 && (s.Partition < 0 || s.Partition >= s.Partitions) {
		return fmt.Errorf("registry: model %q: partition %d out of range [0,%d)", s.Name, s.Partition, s.Partitions)
	}
	return nil
}

// buildConfig translates the spec to the dataset dispatcher's config,
// applying the registry-wide default seed.
func (s Spec) buildConfig() dataset.BuildConfig {
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	return dataset.BuildConfig{
		Name: s.Dataset, Seed: seed,
		Candidates: s.Candidates, Voters: s.Voters,
		Movies: s.Movies, Workers: s.Workers,
	}
}

// Build constructs the database described by spec and returns it with the
// dataset's demo query. It is the stateless builder behind lazy catalog
// loads, exposed for one-shot callers (probpref.OpenDataset, cmd/hardq
// -manifest) that need a dataset without a catalog.
func Build(spec Spec) (*ppd.DB, string, error) {
	if err := spec.Validate(); err != nil {
		return nil, "", err
	}
	return dataset.Build(spec.buildConfig())
}

// Info is one row of the catalog listing (GET /models): the model's spec
// summary plus its load state. Items and Sessions are reported only once
// the model is loaded — listing never forces a build.
type Info struct {
	// Name is the catalog name.
	Name string `json:"name"`
	// Dataset is the builder name, or "inline" for RegisterDB models.
	Dataset string `json:"dataset"`
	// Loaded reports whether the database is currently built and resident.
	Loaded bool `json:"loaded"`
	// Refs counts the open handles (in-flight queries) on the model.
	Refs int `json:"refs"`
	// Items is the item-domain size of a loaded model.
	Items int `json:"items,omitempty"`
	// Sessions is the total session count of a loaded model.
	Sessions int `json:"sessions,omitempty"`
}

// entry is one catalog slot. The registry mutex guards refs/removed and
// the map membership; buildMu serializes the lazy build so concurrent
// Opens of the same cold model build it once.
type entry struct {
	spec Spec

	refs    int
	removed bool

	buildMu  sync.Mutex
	built    bool
	buildErr error
	db       *ppd.DB
	demo     string
	items    int
	sessions int
	// closer releases the entry's backing snapshot (the mmap of an
	// internal/store Store) at unload. Append swaps e.db without touching
	// it: every post-append database layers a RAM tail over the same
	// mapping, so the mapping lives exactly as long as the entry.
	closer io.Closer
	// walSeq is the last write-ahead-log sequence whose batch e.db
	// includes: the snapshot's wal_seq stamp at build, advanced by replay
	// and by each logged Append. Guarded by buildMu.
	walSeq uint64
}

// Registry is the concurrent catalog. The zero value is not usable; call
// New. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	models  map[string]*entry
	snapDir string

	// walMu guards the attached write-ahead log and the pending map
	// (model → sorted seqs acked but not yet durably snapshotted). Lock
	// ordering: r.mu and buildMu may be held when taking walMu, never the
	// reverse.
	walMu      sync.Mutex
	wal        *wal.Log
	walPending map[string][]uint64

	// snapErrs counts failed snapshot writes (snapshot_errors in /stats).
	snapErrs atomic.Uint64

	logMu sync.Mutex
	logf  func(format string, args ...any)

	// appendHook, when non-nil, is called at the named stages of Append
	// ("logged", "published", "snapshotted"). Test-only: the crash-injection
	// harness copies the on-disk state at each stage to simulate a kill
	// there. Set before any concurrent use.
	appendHook func(stage string)
}

// New returns an empty catalog.
func New() *Registry {
	return &Registry{models: make(map[string]*entry)}
}

// SetSnapshotDir points the catalog at a .ppds snapshot directory (see
// internal/store). With a directory set, a model build first tries to mmap
// dir/<name>.ppds — cold-starting without running its generator — and
// every successful generator build or session append writes the snapshot
// back (best-effort, atomically), so the directory behaves as a warm cache
// across daemon restarts. An empty dir disables snapshotting.
func (r *Registry) SetSnapshotDir(dir string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.snapDir = dir
}

// snapshotPath returns the snapshot file for name, or "" when snapshotting
// is off.
func (r *Registry) snapshotPath(name string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.snapDir == "" {
		return ""
	}
	return filepath.Join(r.snapDir, name+".ppds")
}

// buildLocked loads an entry's database — snapshot first, generator
// otherwise — and records the result. For a partitioned spec the snapshot
// must be a partition file of the matching slice (a stale or whole-model
// file under the same name is discarded and the generator rebuilds); a
// generator build constructs the full dataset, persists this slice's
// partition snapshot, and serves the slice. The entry's buildMu must be
// held.
func (r *Registry) buildLocked(name string, e *entry) {
	defer func() { e.built = true }()
	part, parts := e.spec.Partition, e.spec.Partitions
	if path := r.snapshotPath(name); path != "" {
		if s, err := store.Open(path); err == nil {
			pi, pc, ok := s.Partition()
			if parts == 0 && !ok || parts > 0 && ok && pi == part && pc == parts {
				e.db, e.demo, e.closer = s.DB(), s.Demo(), s
				e.walSeq = s.WALSeq()
				e.items, e.sessions = dbSize(e.db)
				r.replayWAL(name, e)
				return
			}
			s.Close() // wrong slice for this spec
		}
	}
	var full *ppd.DB
	full, e.demo, e.buildErr = dataset.Build(e.spec.buildConfig())
	if e.buildErr != nil {
		e.buildErr = fmt.Errorf("registry: building model %q: %w", name, e.buildErr)
		return
	}
	if parts > 0 {
		if path := r.snapshotPath(name); path != "" {
			if err := store.WritePartitionFile(path, full, e.demo, part, parts); err != nil {
				r.noteSnapshotErr(name, err)
			}
		}
		e.db, e.buildErr = ppd.PartitionDB(full, part, parts)
		if e.buildErr != nil {
			e.buildErr = fmt.Errorf("registry: partitioning model %q: %w", name, e.buildErr)
			return
		}
		r.replayWAL(name, e)
	} else {
		e.db = full
		r.replayWAL(name, e)
		if e.buildErr != nil {
			return
		}
		// Snapshot after replay, stamped with the covered seq, so the
		// replayed batches become durably snapshotted in the same pass.
		if err := r.writeSnapshot(name, e.db, e.demo, e.walSeq); err == nil && e.walSeq > 0 {
			r.markDurable(name, e.walSeq)
		}
	}
	e.items, e.sessions = dbSize(e.db)
}

// writeSnapshot persists a model snapshot when a snapshot directory is
// configured, stamped (when walSeq > 0) with the last write-ahead-log
// sequence the database includes. Serving or acking must not fail because
// the cache file cannot be written — with a WAL attached the acked
// batches are already durable, and without one the snapshot was always
// best-effort — so callers treat the error as advisory; it is counted
// (snapshot_errors in /stats) and logged here, never dropped silently.
func (r *Registry) writeSnapshot(name string, db *ppd.DB, demo string, walSeq uint64) error {
	path := r.snapshotPath(name)
	if path == "" {
		return nil
	}
	err := store.WriteFileSeq(path, db, demo, walSeq)
	if err != nil {
		r.noteSnapshotErr(name, err)
	}
	return err
}

// noteSnapshotErr counts and logs one failed snapshot write.
func (r *Registry) noteSnapshotErr(name string, err error) {
	r.snapErrs.Add(1)
	r.noteLog("registry: snapshot %s: %v", name, err)
}

// Register adds a dataset-backed model to the catalog. The database is
// built lazily on first Open unless spec.Preload is set, in which case
// Register builds it *before* touching the catalog — a failing preload
// build registers nothing, and the half-built model is never observable
// (nor can a rollback race with a concurrent re-registration of the name).
func (r *Registry) Register(spec Spec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	e := &entry{spec: spec}
	if spec.Preload {
		e.buildMu.Lock()
		r.buildLocked(spec.Name, e)
		e.buildMu.Unlock()
		if e.buildErr != nil {
			return e.buildErr
		}
	}
	if err := r.add(spec.Name, e); err != nil {
		if e.closer != nil {
			e.closer.Close()
		}
		return err
	}
	return nil
}

// RegisterDB adds a pre-built database under name; its Info reports
// dataset "inline". The db must not be mutated after registration. The
// demoQuery (may be empty) is surfaced through Handle.DemoQuery.
func (r *Registry) RegisterDB(name string, db *ppd.DB, demoQuery string) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("registry: invalid model name %q (want letters, digits, '.', '_', '-')", name)
	}
	if db == nil {
		return fmt.Errorf("registry: model %q: nil database", name)
	}
	e := &entry{spec: Spec{Name: name, Dataset: "inline"}, built: true, db: db, demo: demoQuery}
	e.items, e.sessions = dbSize(db)
	return r.add(name, e)
}

func (r *Registry) add(name string, e *entry) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.models[name]; ok {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	r.models[name] = e
	return nil
}

// Open resolves name and returns a reference-counted handle on the model,
// building the database first if this is a cold dataset-backed model.
// Callers must Close the handle when their query finishes; until then the
// model's database stays resident even if the model is deleted from the
// catalog.
func (r *Registry) Open(name string) (*Handle, error) {
	r.mu.Lock()
	e, ok := r.models[name]
	if !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	e.refs++
	r.mu.Unlock()

	var db *ppd.DB
	var demo string
	err := func() error {
		e.buildMu.Lock()
		defer e.buildMu.Unlock() // defer: a panicking builder must not wedge the entry
		if !e.built {
			r.buildLocked(name, e)
		}
		if e.buildErr == nil {
			// Capture under buildMu: Append swaps e.db for later opens, and
			// this handle must keep answering on the version it opened.
			db, demo = e.db, e.demo
		}
		return e.buildErr
	}()
	if err != nil {
		r.release(e)
		return nil, err
	}
	return &Handle{r: r, e: e, name: name, db: db, demo: demo}, nil
}

// Delete evicts name from the catalog: subsequent Opens fail with
// ErrNotFound immediately, while handles already open keep working until
// closed — only when the last one closes is the database released. A
// model with no open handles is released synchronously. The model's
// pending write-ahead-log records stop pinning the log, but the records
// themselves stay until compaction reaches them: re-registering the same
// name before then replays them into the new model.
func (r *Registry) Delete(name string) error {
	r.mu.Lock()
	e, ok := r.models[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(r.models, name)
	e.removed = true
	if e.refs == 0 {
		unload(e)
	}
	r.mu.Unlock()
	r.dropModelPending(name)
	return nil
}

// release drops one reference and unloads a deleted model when the last
// in-flight query finishes.
func (r *Registry) release(e *entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e.refs--
	if e.removed && e.refs == 0 {
		unload(e)
	}
}

// unload frees the built database of a removed entry. Called with the
// registry mutex held and zero refs, so no handle can observe it (and no
// session of a snapshot-backed database can outlive its mapping).
func unload(e *entry) {
	if e.closer != nil {
		e.closer.Close()
		e.closer = nil
	}
	e.db = nil
	e.built = false
	e.buildErr = nil
}

// Append appends sessions to the p-relation pref of the named model and
// returns the model's new total session count. The append is a swap, not a
// mutation: a new database layering the appended sessions over the current
// one replaces the entry's database, handles opened before the append keep
// answering on the version they captured, and handles opened after see the
// new sessions.
//
// With a write-ahead log attached (SetWAL) the batch is logged and synced
// *before* the swap publishes it, so by the time the caller can
// acknowledge the ingest it is durable; the snapshot rewrite behind it is
// then an optimization that lets replay — and eventually compaction —
// skip the batch. Without a log the snapshot rewrite is the only
// persistence and remains best-effort (its failure is counted and logged,
// not returned). A failed log write rejects the append: nothing was
// published, nothing may be acked.
func (r *Registry) Append(name, pref string, sessions []*ppd.Session) (int, error) {
	h, err := r.Open(name) // holds a ref: a concurrent Delete cannot unload mid-append
	if err != nil {
		return 0, err
	}
	defer h.Close()
	e := h.e
	e.buildMu.Lock()
	defer e.buildMu.Unlock()
	// Validate by building the grown database first: a batch the model
	// rejects must never reach the log, or replay would fail on it forever.
	ndb, err := e.db.AppendSessions(pref, sessions)
	if err != nil {
		return 0, err
	}
	seq, err := r.logBatch(name, pref, sessions)
	if err != nil {
		return 0, err
	}
	if r.appendHook != nil {
		r.appendHook("logged")
	}
	e.db = ndb
	if seq > 0 {
		e.walSeq = seq
	}
	e.items, e.sessions = dbSize(ndb)
	if r.appendHook != nil {
		r.appendHook("published")
	}
	// A partitioned entry serves a slice; persisting it with WriteFile would
	// produce a whole-model snapshot that misdescribes the slice (and would
	// be discarded on restart anyway), so only whole models re-persist.
	if e.spec.Partitions == 0 {
		if err := r.writeSnapshot(name, ndb, e.demo, e.walSeq); err == nil && seq > 0 {
			r.markDurable(name, seq)
			r.compactWAL()
		}
	}
	if r.appendHook != nil {
		r.appendHook("snapshotted")
	}
	return e.sessions, nil
}

// List snapshots the catalog sorted by name.
func (r *Registry) List() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Info, 0, len(r.models))
	for name, e := range r.models {
		out = append(out, r.infoLocked(name, e))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the catalog row for one model.
func (r *Registry) Lookup(name string) (Info, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.models[name]
	if !ok {
		return Info{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return r.infoLocked(name, e), nil
}

// infoLocked snapshots one entry; the registry mutex must be held. The
// loaded fields race benignly with a concurrent first build (buildMu is
// deliberately not taken — listing must never block behind a slow build),
// so a model mid-build may briefly report Loaded=false.
func (r *Registry) infoLocked(name string, e *entry) Info {
	in := Info{Name: name, Dataset: e.spec.Dataset, Refs: e.refs}
	if e.buildMu.TryLock() {
		if e.built && e.buildErr == nil {
			in.Loaded = true
			in.Items = e.items
			in.Sessions = e.sessions
		}
		e.buildMu.Unlock()
	}
	return in
}

// Len returns the number of cataloged models.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.models)
}

// Names returns the sorted catalog names.
func (r *Registry) Names() []string {
	infos := r.List()
	out := make([]string, len(infos))
	for i, in := range infos {
		out[i] = in.Name
	}
	return out
}

// Handle is an open, reference-counted view of one model. It is valid
// until Close; Close is idempotent and safe for concurrent use with the
// accessor methods of other handles (but a single Handle must not be used
// concurrently with its own Close).
type Handle struct {
	r    *Registry
	e    *entry
	name string
	db   *ppd.DB
	demo string

	closeOnce sync.Once
}

// Name returns the catalog name the handle was opened under.
func (h *Handle) Name() string { return h.name }

// DB returns the model's database as of the moment the handle was opened:
// a concurrent Append swaps the entry's database for later opens but never
// changes what an open handle sees. The returned DB must not be used after
// Close.
func (h *Handle) DB() *ppd.DB { return h.db }

// DemoQuery returns the dataset's demo query ("" for inline models).
func (h *Handle) DemoQuery() string { return h.demo }

// Close drops the handle's reference; when the model has been deleted and
// this was the last reference, the database is released.
func (h *Handle) Close() {
	h.closeOnce.Do(func() { h.r.release(h.e) })
}

// dbSize computes the Info size fields of a built database.
func dbSize(db *ppd.DB) (items, sessions int) {
	for _, p := range db.Prefs {
		sessions += p.Sessions.Len()
	}
	return db.M(), sessions
}
