package registry

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"probpref/internal/ppd"
	"probpref/internal/wal"
)

// This file is the crash-injection harness of the durable-ingest path: it
// kills a registry (by copying its on-disk state: WAL directory + snapshot
// directory) at every stage of Append — after the log sync, after the
// publish, after the snapshot — plus torn and bit-flipped WAL tails, and
// proves the recovery contract on restart: every acknowledged batch is
// present, every batch whose log record never completed is absent.

// copyTree copies the file tree rooted at src into dst (which must not
// exist). It is the harness's "kill -9": whatever bytes the OS holds at
// this instant are what the next process gets.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatalf("copying %s: %v", src, err)
	}
}

// diskState is one captured crash point.
type diskState struct {
	walDir, snapDir string
}

// capture snapshots both directories under root/<label>.
func capture(t *testing.T, walDir, snapDir, root, label string) diskState {
	t.Helper()
	st := diskState{
		walDir:  filepath.Join(root, label, "wal"),
		snapDir: filepath.Join(root, label, "snap"),
	}
	copyTree(t, walDir, st.walDir)
	copyTree(t, snapDir, st.snapDir)
	return st
}

// restart plays the recovery path over a captured state: open the WAL
// (repairing a torn tail if the crash left one), attach it to a fresh
// catalog, register the model, and force the build. It returns the
// restarted registry and log; the caller owns closing the log.
func restart(t *testing.T, st diskState) (*Registry, *wal.Log) {
	t.Helper()
	l, err := wal.Open(st.walDir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatalf("reopening wal: %v", err)
	}
	r := New()
	r.SetSnapshotDir(st.snapDir)
	if err := r.SetWAL(l); err != nil {
		t.Fatalf("attaching wal: %v", err)
	}
	if err := r.Register(Spec{Name: "fig", Dataset: "figure1"}); err != nil {
		t.Fatalf("re-registering: %v", err)
	}
	return r, l
}

// sessionKeys opens the model and returns the sorted first key component of
// every session — the observable ingest history.
func sessionKeys(t *testing.T, r *Registry) []string {
	t.Helper()
	h, err := r.Open("fig")
	if err != nil {
		t.Fatalf("open after restart: %v", err)
	}
	defer h.Close()
	ss := h.DB().Prefs["P"].Sessions
	keys := make([]string, 0, ss.Len())
	for i := 0; i < ss.Len(); i++ {
		keys = append(keys, ss.At(i).Key[0])
	}
	sort.Strings(keys)
	return keys
}

// newSession builds one session compatible with figure1's P relation.
func newSession(db *ppd.DB, name string) *ppd.Session {
	base := db.Prefs["P"].Sessions.At(0)
	return &ppd.Session{Key: []string{name, "7/7"}, Model: base.Model}
}

// walGrown is the harness's live fixture: a registry with WAL and snapshot
// directories, the model built, and a capture callback wired into Append.
func walGrown(t *testing.T) (*Registry, *wal.Log, string, string) {
	t.Helper()
	walDir := filepath.Join(t.TempDir(), "wal")
	snapDir := t.TempDir()
	l, err := wal.Open(walDir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	r := New()
	r.SetSnapshotDir(snapDir)
	if err := r.SetWAL(l); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(Spec{Name: "fig", Dataset: "figure1", Preload: true}); err != nil {
		t.Fatal(err)
	}
	return r, l, walDir, snapDir
}

// TestCrashAtEveryAppendStage kills the process at each stage of two
// consecutive ingests and requires every batch whose log record was synced
// (the precondition of the ack) to be present after restart. At "logged"
// the snapshot still predates the batch, so recovery exercises replay; at
// "snapshotted" it exercises the stamp that makes replay idempotent.
func TestCrashAtEveryAppendStage(t *testing.T) {
	r, _, walDir, snapDir := walGrown(t)
	captures := t.TempDir()

	states := make(map[string]diskState)
	var batch string
	r.appendHook = func(stage string) {
		states[batch+"-"+stage] = capture(t, walDir, snapDir, captures, batch+"-"+stage)
	}

	h, err := r.Open("fig")
	if err != nil {
		t.Fatal(err)
	}
	db := h.DB()
	h.Close()
	batch = "eve"
	if _, err := r.Append("fig", "P", []*ppd.Session{newSession(db, "Eve")}); err != nil {
		t.Fatal(err)
	}
	batch = "frank"
	if _, err := r.Append("fig", "P", []*ppd.Session{newSession(db, "Frank")}); err != nil {
		t.Fatal(err)
	}

	want := map[string][]string{
		"eve-logged":        {"Ann", "Bob", "Dave", "Eve"},
		"eve-published":     {"Ann", "Bob", "Dave", "Eve"},
		"eve-snapshotted":   {"Ann", "Bob", "Dave", "Eve"},
		"frank-logged":      {"Ann", "Bob", "Dave", "Eve", "Frank"},
		"frank-published":   {"Ann", "Bob", "Dave", "Eve", "Frank"},
		"frank-snapshotted": {"Ann", "Bob", "Dave", "Eve", "Frank"},
	}
	for label, st := range states {
		r2, l2 := restart(t, st)
		got := sessionKeys(t, r2)
		if fmt.Sprint(got) != fmt.Sprint(want[label]) {
			t.Errorf("crash at %s: restart sees %v, want %v", label, got, want[label])
		}
		l2.Close()
	}
	if len(states) != len(want) {
		t.Fatalf("captured %d crash points, want %d", len(states), len(want))
	}
}

// TestCrashedUnackedBatchAbsent mutates the captured WAL to simulate a
// crash mid-record-write — a truncated tail and a bit-flipped tail — and
// requires the half-written batch to be absent after restart while every
// earlier acked batch survives. The restart must also report the repair.
func TestCrashedUnackedBatchAbsent(t *testing.T) {
	r, _, walDir, snapDir := walGrown(t)
	captures := t.TempDir()

	// Batch 1 (Eve) completes: logged, published, snapshotted. Batch 2
	// (Frank) reaches the log; the capture at "logged" then gets its record
	// damaged to simulate the write never finishing.
	var logged diskState
	h, err := r.Open("fig")
	if err != nil {
		t.Fatal(err)
	}
	db := h.DB()
	h.Close()
	if _, err := r.Append("fig", "P", []*ppd.Session{newSession(db, "Eve")}); err != nil {
		t.Fatal(err)
	}
	r.appendHook = func(stage string) {
		if stage == "logged" {
			logged = capture(t, walDir, snapDir, captures, "frank-logged")
		}
	}
	if _, err := r.Append("fig", "P", []*ppd.Session{newSession(db, "Frank")}); err != nil {
		t.Fatal(err)
	}

	mutations := map[string]func(t *testing.T, seg string){
		"truncated-tail": func(t *testing.T, seg string) {
			fi, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(seg, fi.Size()-5); err != nil {
				t.Fatal(err)
			}
		},
		"bit-flipped-tail": func(t *testing.T, seg string) {
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-1] ^= 0x40
			if err := os.WriteFile(seg, data, 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			st := diskState{
				walDir:  filepath.Join(t.TempDir(), "wal"),
				snapDir: filepath.Join(t.TempDir(), "snap"),
			}
			copyTree(t, logged.walDir, st.walDir)
			copyTree(t, logged.snapDir, st.snapDir)
			segs, err := filepath.Glob(filepath.Join(st.walDir, "wal-*.seg"))
			if err != nil || len(segs) == 0 {
				t.Fatalf("no wal segments: %v", err)
			}
			sort.Strings(segs)
			mutate(t, segs[len(segs)-1])

			r2, l2 := restart(t, st)
			defer l2.Close()
			if n := l2.TornRepairs(); n != 1 {
				t.Errorf("TornRepairs = %d, want 1", n)
			}
			got := sessionKeys(t, r2)
			want := []string{"Ann", "Bob", "Dave", "Eve"}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("restart sees %v, want %v (Frank was never acked)", got, want)
			}
			// The repaired log keeps accepting: the retried batch lands at
			// the sequence the torn record vacated.
			if _, err := r2.Append("fig", "P", []*ppd.Session{newSession(db, "Frank")}); err != nil {
				t.Fatalf("append after repair: %v", err)
			}
			if got := sessionKeys(t, r2); fmt.Sprint(got) != fmt.Sprint([]string{"Ann", "Bob", "Dave", "Eve", "Frank"}) {
				t.Errorf("after retried ingest: %v", got)
			}
		})
	}
}

// TestRestartReplayIsIdempotent restarts twice from the same crash point
// (crash after publish, before snapshot) with a checkpoint in between: the
// second restart finds the batch inside the stamped snapshot and must not
// apply the still-present log record again.
func TestRestartReplayIsIdempotent(t *testing.T) {
	r, _, walDir, snapDir := walGrown(t)
	captures := t.TempDir()

	var published diskState
	r.appendHook = func(stage string) {
		if stage == "published" {
			published = capture(t, walDir, snapDir, captures, "published")
		}
	}
	h, err := r.Open("fig")
	if err != nil {
		t.Fatal(err)
	}
	db := h.DB()
	h.Close()
	if _, err := r.Append("fig", "P", []*ppd.Session{newSession(db, "Eve")}); err != nil {
		t.Fatal(err)
	}

	r2, l2 := restart(t, published)
	want := []string{"Ann", "Bob", "Dave", "Eve"}
	if got := sessionKeys(t, r2); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("first restart sees %v, want %v", got, want)
	}
	// Checkpoint stamps the snapshot with the replayed seq; the record is
	// deliberately NOT compacted away here (it is the only record of the
	// active segment), so the second restart sees snapshot and record.
	if err := r2.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	l2.Close()

	st := diskState{walDir: published.walDir, snapDir: published.snapDir}
	r3, l3 := restart(t, st)
	defer l3.Close()
	if got := sessionKeys(t, r3); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("second restart sees %v, want %v (double replay?)", got, want)
	}
}

// TestCheckpointCompactsLog grows the model across several small segments,
// checkpoints, and requires the sealed, durably-snapshotted segments to be
// deleted while the acked history survives a restart.
func TestCheckpointCompactsLog(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	snapDir := t.TempDir()
	l, err := wal.Open(walDir, wal.Options{Sync: wal.SyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	r := New()
	r.SetSnapshotDir(snapDir)
	if err := r.SetWAL(l); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(Spec{Name: "fig", Dataset: "figure1", Preload: true}); err != nil {
		t.Fatal(err)
	}
	h, err := r.Open("fig")
	if err != nil {
		t.Fatal(err)
	}
	db := h.DB()
	h.Close()
	for i := 0; i < 6; i++ {
		if _, err := r.Append("fig", "P", []*ppd.Session{newSession(db, fmt.Sprintf("G%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	// Every append snapshotted durably, so compaction should have pruned all
	// sealed segments already; at most the active one remains.
	if n := l.Segments(); n != 1 {
		t.Errorf("after snapshotted appends: %d segments, want 1 (compaction lagging)", n)
	}
	if err := r.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	st := diskState{walDir: walDir, snapDir: snapDir}
	// The live log stays open — recovery reads the same bytes a crashed
	// process would have left, which Open on a second handle tolerates only
	// after the first closes; copy instead.
	cp := diskState{
		walDir:  filepath.Join(t.TempDir(), "wal"),
		snapDir: filepath.Join(t.TempDir(), "snap"),
	}
	copyTree(t, st.walDir, cp.walDir)
	copyTree(t, st.snapDir, cp.snapDir)
	r2, l2 := restart(t, cp)
	defer l2.Close()
	keys := sessionKeys(t, r2)
	if len(keys) != 9 {
		t.Fatalf("restart sees %d sessions, want 9: %v", len(keys), keys)
	}
}

// TestSnapshotErrorsSurfaceAndIngestSurvives is the regression test for the
// silent writeSnapshot failure: with an unwritable snapshot location every
// failed write must count (SnapshotErrors) and log, the ingest must still
// be acknowledged, and — with the WAL holding the only durable copy — a
// restart must recover the acked batch from the log alone.
func TestSnapshotErrorsSurfaceAndIngestSurvives(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	// A regular file where the snapshot directory should be: every write
	// under it fails with ENOTDIR, root or not.
	notADir := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := wal.Open(walDir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	r := New()
	r.SetSnapshotDir(notADir)
	var logged []string
	r.SetLogf(func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	})
	if err := r.SetWAL(l); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(Spec{Name: "fig", Dataset: "figure1", Preload: true}); err != nil {
		t.Fatal(err)
	}
	if n := r.SnapshotErrors(); n != 1 {
		t.Fatalf("SnapshotErrors after failed build snapshot = %d, want 1", n)
	}
	h, err := r.Open("fig")
	if err != nil {
		t.Fatal(err)
	}
	db := h.DB()
	h.Close()
	total, err := r.Append("fig", "P", []*ppd.Session{newSession(db, "Eve")})
	if err != nil {
		t.Fatalf("append must still ack when only the snapshot fails: %v", err)
	}
	if total != 4 {
		t.Fatalf("append total = %d, want 4", total)
	}
	if n := r.SnapshotErrors(); n != 2 {
		t.Fatalf("SnapshotErrors after failed append snapshot = %d, want 2", n)
	}
	if len(logged) < 2 || !strings.Contains(logged[0], "snapshot fig") {
		t.Fatalf("snapshot failures not logged: %q", logged)
	}
	if err := r.Checkpoint(); err == nil {
		t.Fatal("Checkpoint with unwritable snapshot dir: want error")
	}

	// Recovery needs only the log: restart with a *writable* snapshot dir
	// and require the acked batch back.
	l.Close()
	st := diskState{walDir: walDir, snapDir: t.TempDir()}
	r2, l2 := restart(t, st)
	defer l2.Close()
	want := []string{"Ann", "Bob", "Dave", "Eve"}
	if got := sessionKeys(t, r2); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("restart from WAL alone sees %v, want %v", got, want)
	}
	if r2.SnapshotErrors() != 0 {
		t.Fatalf("fresh registry inherited snapshot errors")
	}
}

// TestSetWALRejectsForeignLog guards the attach: a log holding records that
// do not decode to ingest batches is someone else's data (or corruption
// below the checksum's reach), and silently compacting it away later would
// destroy it.
func TestSetWALRejectsForeignLog(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	l, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("not an ingest batch")); err != nil {
		t.Fatal(err)
	}
	r := New()
	if err := r.SetWAL(l); err == nil {
		t.Fatal("SetWAL accepted a log of undecodable records")
	}
}

// TestReplayPoisonsBuildOnUndecodableRecord: a record that decodes at
// attach time but fails replay later (here: the model rejects the batch
// because the log belongs to a different model shape) must poison the
// build rather than serve a model missing acked data.
func TestReplayPoisonsBuildOnUndecodableRecord(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	l, err := wal.Open(walDir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	r := New()
	if err := r.SetWAL(l); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(Spec{Name: "fig", Dataset: "figure1", Preload: true}); err != nil {
		t.Fatal(err)
	}
	h, err := r.Open("fig")
	if err != nil {
		t.Fatal(err)
	}
	db := h.DB()
	h.Close()
	if _, err := r.Append("fig", "P", []*ppd.Session{newSession(db, "Eve")}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Restart the log under a model whose relation shapes don't match: the
	// record replays against "polls", whose P has a different key arity.
	l2, err := wal.Open(walDir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	r2 := New()
	if err := r2.SetWAL(l2); err != nil {
		t.Fatal(err)
	}
	if err := r2.Register(Spec{Name: "fig", Dataset: "polls", Voters: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Open("fig"); err == nil {
		t.Fatal("open served a model that failed to replay an acked batch")
	} else if errors.Is(err, ErrNotFound) {
		t.Fatalf("unexpected error class: %v", err)
	}
}
