package doclint

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// linkRE matches inline markdown links/images: [text](target).
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownLinksResolve walks every markdown file of the repository and
// fails on intra-repo links whose target file does not exist. External
// (http/https/mailto) links and pure #anchors are skipped — this is a
// breakage gate for the docs cross-references, not a web crawler.
func TestMarkdownLinksResolve(t *testing.T) {
	root := repoRoot()
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", "node_modules":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found — wrong repo root?")
	}
	for _, file := range files {
		b, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range linkRE.FindAllStringSubmatch(string(b), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			// Strip an anchor suffix; resolve relative to the linking file.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				rel, _ := filepath.Rel(root, file)
				t.Errorf("%s: broken link %q (resolved %s)", rel, m[1], resolved)
			}
		}
	}
}
