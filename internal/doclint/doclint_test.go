// Package doclint is the documentation CI gate: a dependency-free,
// revive-style "exported" lint that fails when an exported identifier of
// the documented packages lacks a doc comment, plus an intra-repo markdown
// link checker (links_test.go). It runs as ordinary `go test` so the docs
// CI job needs no extra tooling.
package doclint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// lintedDirs are the packages whose exported surface must be fully
// documented (repo-root relative). The facade and the serving-path
// packages are the contract; internal/ppd joined when the unified query
// API (Request/Response/Do) made it part of the documented Do path.
var lintedDirs = []string{
	".",
	"internal/ppd",
	"internal/server",
	"internal/registry",
	"internal/dataset",
	"internal/store",
	"internal/cluster",
	"internal/consensus",
	"internal/wal",
}

// repoRoot locates the repository root relative to this package.
func repoRoot() string { return filepath.Join("..", "..") }

// TestExportedIdentifiersDocumented parses every non-test file of the
// linted packages and reports exported declarations — functions, methods,
// types, consts, vars, struct fields and interface methods — that carry no
// doc comment.
func TestExportedIdentifiersDocumented(t *testing.T) {
	for _, dir := range lintedDirs {
		dir := dir
		t.Run(strings.ReplaceAll(dir, "/", "_"), func(t *testing.T) {
			var problems []string
			fset := token.NewFileSet()
			pkgs, err := parser.ParseDir(fset, filepath.Join(repoRoot(), dir), func(fi fs.FileInfo) bool {
				return !strings.HasSuffix(fi.Name(), "_test.go")
			}, parser.ParseComments)
			if err != nil {
				t.Fatalf("parsing %s: %v", dir, err)
			}
			for _, pkg := range pkgs {
				for _, f := range pkg.Files {
					problems = append(problems, lintFile(fset, f)...)
				}
			}
			for _, p := range problems {
				t.Errorf("%s", p)
			}
			if len(problems) > 0 {
				t.Logf("%d exported identifiers without doc comments in %s", len(problems), dir)
			}
		})
	}
}

// lintFile collects doc-comment violations of one file.
func lintFile(fset *token.FileSet, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, what, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil && exportedRecv(d) {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			lintGenDecl(d, report)
		}
	}
	return out
}

// exportedRecv reports whether a function's receiver type (if any) is
// exported; methods on unexported types are internal API.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return !ok || id.IsExported()
}

// lintGenDecl checks type/const/var declarations, including the exported
// fields of exported struct types and the methods of exported interfaces.
// A doc comment on a grouped declaration covers every spec of the group.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
			if !s.Name.IsExported() {
				continue
			}
			switch tt := s.Type.(type) {
			case *ast.StructType:
				for _, fld := range tt.Fields.List {
					for _, n := range fld.Names {
						if n.IsExported() && fld.Doc == nil && fld.Comment == nil {
							report(fld.Pos(), "field", s.Name.Name+"."+n.Name)
						}
					}
				}
			case *ast.InterfaceType:
				for _, m := range tt.Methods.List {
					for _, n := range m.Names {
						if n.IsExported() && m.Doc == nil && m.Comment == nil {
							report(m.Pos(), "interface method", s.Name.Name+"."+n.Name)
						}
					}
				}
			}
		case *ast.ValueSpec:
			for _, n := range s.Names {
				if n.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
					kind := "var"
					if d.Tok == token.CONST {
						kind = "const"
					}
					report(n.Pos(), kind, n.Name)
				}
			}
		}
	}
}
