package doclint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// legacy_callers_test is the unified-API gate: the per-kind entry points
// (Engine.Eval, Service.TopKBatch, ...) are the documented compatibility
// surface, each a thin wrapper over Do, and nothing on the serving path may
// call them — new code speaks ppd.Request / Engine.Do / Service.Do. This
// go-vet-style check parses the serving-path packages and fails on any
// selector call to a legacy name outside the designated compat files.
// (Harness and demo code — internal/experiment, internal/bench, examples —
// intentionally exercises the compatibility surface and is not checked.)

// legacyEntryPoints are the method names of the compatibility surface.
var legacyEntryPoints = map[string]bool{
	"Eval": true, "EvalCtx": true, "EvalModelCtx": true,
	"EvalUnion": true, "EvalUnionCtx": true,
	"CountSession": true, "CountSessionCtx": true,
	"MostProbableSession": true,
	"TopK":                true, "TopKCtx": true, "TopKModelCtx": true,
	"TopKUnion": true, "TopKUnionCtx": true,
	"Aggregate": true, "AggregateCtx": true,
	"CountDistribution": true, "CountDistributionUnion": true, "CountDistributionUnionCtx": true,
	"EvalBatch": true, "EvalBatchCtx": true, "EvalBatchModelCtx": true,
	"TopKBatch": true, "TopKBatchCtx": true, "TopKBatchModelCtx": true,
}

// servingPathDirs are the packages held to the Do-only rule (repo-root
// relative).
var servingPathDirs = []string{
	".",
	"internal/ppd",
	"internal/server",
	"internal/registry",
	"cmd/hardq",
	"cmd/hardqd",
}

// compatFiles may (and do) reference the legacy names: they implement the
// wrappers themselves.
var compatFiles = map[string]bool{
	"internal/ppd/compat.go":    true,
	"internal/server/compat.go": true,
}

// TestNoLegacyEntryPointCallers parses every non-test file of the serving
// path and reports calls to legacy entry points outside the compat files.
func TestNoLegacyEntryPointCallers(t *testing.T) {
	for _, dir := range servingPathDirs {
		dir := dir
		t.Run(strings.ReplaceAll(dir, "/", "_"), func(t *testing.T) {
			fset := token.NewFileSet()
			pkgs, err := parser.ParseDir(fset, filepath.Join(repoRoot(), dir), func(fi fs.FileInfo) bool {
				return !strings.HasSuffix(fi.Name(), "_test.go") && !compatFiles[filepath.ToSlash(filepath.Join(dir, fi.Name()))]
			}, 0)
			if err != nil {
				t.Fatalf("parsing %s: %v", dir, err)
			}
			for _, pkg := range pkgs {
				for _, f := range pkg.Files {
					for _, p := range legacyCalls(fset, f) {
						t.Errorf("%s (use the unified Do path; only the compat wrappers may call legacy entry points)", p)
					}
				}
			}
		})
	}
}

// legacyCalls collects the positions of legacy-entry-point calls in a file.
func legacyCalls(fset *token.FileSet, f *ast.File) []string {
	var out []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !legacyEntryPoints[sel.Sel.Name] {
			return true
		}
		// Package-qualified calls (e.g. strings.X) cannot be methods of the
		// engine or service; only flag selector calls whose receiver is an
		// expression. An identifier receiver that resolves to an import is
		// skipped conservatively by checking the file's import names.
		if id, ok := sel.X.(*ast.Ident); ok && isImportName(f, id.Name) {
			return true
		}
		p := fset.Position(call.Pos())
		out = append(out, fmt.Sprintf("%s:%d: call to legacy entry point %s", p.Filename, p.Line, sel.Sel.Name))
		return true
	})
	return out
}

// isImportName reports whether name is an import (package) name of the file.
func isImportName(f *ast.File, name string) bool {
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		base := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			base = imp.Name.Name
		}
		if base == name {
			return true
		}
	}
	return false
}
