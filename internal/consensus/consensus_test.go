package consensus

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"probpref/internal/rank"
)

func TestParseTargetRoundTrip(t *testing.T) {
	for _, name := range TargetNames() {
		tgt, err := ParseTarget(name)
		if err != nil {
			t.Fatalf("ParseTarget(%q): %v", name, err)
		}
		if tgt.String() != name {
			t.Errorf("ParseTarget(%q).String() = %q", name, tgt.String())
		}
	}
	if tgt, err := ParseTarget("top-k"); err != nil || tgt != TargetTopK {
		t.Errorf("ParseTarget(top-k) = %v, %v", tgt, err)
	}
	if _, err := ParseTarget("kemeny"); err == nil {
		t.Error("ParseTarget(kemeny): want error")
	} else if !strings.Contains(err.Error(), "map | median | topk") {
		t.Errorf("error does not enumerate targets: %v", err)
	}
	if got := TargetNone.String(); got != "none" {
		t.Errorf("TargetNone.String() = %q", got)
	}
	if got := Target(9).String(); got != "target(9)" {
		t.Errorf("Target(9).String() = %q", got)
	}
}

// randomPairwise builds a consistent marginal matrix (pw[a][b]+pw[b][a]=1).
func randomPairwise(m int, rng *rand.Rand) [][]float64 {
	pw := matrix(m)
	for a := 0; a < m; a++ {
		for b := a + 1; b < m; b++ {
			p := rng.Float64()
			pw[a][b], pw[b][a] = p, 1-p
		}
	}
	return pw
}

// bruteMedian evaluates every permutation with ExpectedKendallTau and keeps
// the strictly smallest cost; Heap's order visits the identity first and
// each candidate is compared with <, so ties keep the earliest-visited
// ranking. The branch-and-bound must reproduce the cost bit for bit and an
// equally-minimal ranking.
func bruteMedian(pw [][]float64, m int) (rank.Ranking, float64) {
	best := math.Inf(1)
	var bestTau rank.Ranking
	rank.ForEachPermutation(m, func(tau rank.Ranking) bool {
		if c := rank.ExpectedKendallTau(pw, tau); c < best {
			best = c
			bestTau = append(rank.Ranking(nil), tau...)
		}
		return true
	})
	return bestTau, best
}

// TestMedianExactMatchesBruteForce: for every m up to MaxExactM, the
// branch-and-bound minimum must equal exhaustive enumeration's minimum
// bit for bit (not within epsilon) across many random matrices.
func TestMedianExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for m := 1; m <= MaxExactM; m++ {
		trials := 40
		if m >= 6 {
			trials = 10
		}
		for trial := 0; trial < trials; trial++ {
			pw := randomPairwise(m, rng)
			got := medianExact(pw, m)
			_, wantCost := bruteMedian(pw, m)
			gotCost := rank.ExpectedKendallTau(pw, got)
			if gotCost != wantCost {
				t.Fatalf("m=%d trial %d: B&B cost %v (%v), brute force %v (bitwise)", m, trial, gotCost, got, wantCost)
			}
		}
	}
}

// TestMedianExactTieBreak: with an all-ties matrix (every orientation 0.5)
// the branch-and-bound must return the lexicographically smallest ranking,
// the identity.
func TestMedianExactTieBreak(t *testing.T) {
	const m = 5
	pw := matrix(m)
	for a := 0; a < m; a++ {
		for b := 0; b < m; b++ {
			if a != b {
				pw[a][b] = 0.5
			}
		}
	}
	got := medianExact(pw, m)
	for i, it := range got {
		if int(it) != i {
			t.Fatalf("tie-break ranking %v, want identity", got)
		}
	}
}

// TestMedianLocalSearchDeterministic: the heuristic beyond MaxExactM must
// be a pure function of the matrix and must not worsen the Borda seed.
func TestMedianLocalSearchDeterministic(t *testing.T) {
	const m = 10
	pw := randomPairwise(m, rand.New(rand.NewSource(3)))
	a := medianLocalSearch(pw, m)
	b := medianLocalSearch(pw, m)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("local search not deterministic: %v vs %v", a, b)
		}
	}
	seen := make([]bool, m)
	for _, it := range a {
		seen[it] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("item %d missing from %v", i, a)
		}
	}
	// On a small instance the heuristic should land on the true minimum of
	// a strongly ordered matrix.
	strong := matrix(5)
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			if x < y {
				strong[x][y], strong[y][x] = 0.9, 0.1
			}
		}
	}
	got := medianLocalSearch(strong, 5)
	want := medianExact(strong, 5)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("local search %v, exact %v on a strongly ordered matrix", got, want)
		}
	}
}

func TestSolveValidation(t *testing.T) {
	if _, err := Solve(nil, Params{Target: TargetNone, M: 3}); err == nil {
		t.Error("TargetNone: want error")
	}
	if _, err := Solve(nil, Params{Target: Target(5), M: 3}); err == nil {
		t.Error("out-of-range target: want error")
	}
	if _, err := Solve(nil, Params{Target: TargetMAP, M: 0}); err == nil {
		t.Error("M=0: want error")
	}
	if _, err := Solve(nil, Params{Target: TargetTopK, M: 3}); err == nil {
		t.Error("topk without K: want error")
	}
}

// TestSolveEmptyRows: zero rows are a valid empty answer, not an error —
// the coordinator merges empty partitions through the same path.
func TestSolveEmptyRows(t *testing.T) {
	for _, tgt := range []Target{TargetMAP, TargetMedian, TargetTopK} {
		res, err := Solve(nil, Params{Target: tgt, M: 4, K: 2})
		if err != nil {
			t.Fatalf("%v: %v", tgt, err)
		}
		if res.LiveSessions != 0 || res.Sampled || res.Ranking != nil || res.Items != nil {
			t.Fatalf("%v: empty solve produced %+v", tgt, res)
		}
	}
}

// exactRowFromModel builds the exact Row of a uniform two-ranking session.
func exactRowFromModel(m int, target Target, k int, taus []rank.Ranking) Row {
	row := Row{Session: []string{"s"}}
	switch target {
	case TargetMedian:
		row.Pair = make([]float64, m*m)
	case TargetTopK:
		row.Top = make([]float64, m)
	case TargetMAP:
		row.Mode = make(map[string]float64)
	}
	p := 1.0 / float64(len(taus))
	for _, tau := range taus {
		row.Weight += p
		switch target {
		case TargetMedian:
			for i := 0; i < m; i++ {
				for j := i + 1; j < m; j++ {
					row.Pair[int(tau[i])*m+int(tau[j])] += p
				}
			}
		case TargetTopK:
			for pos := 0; pos < k && pos < m; pos++ {
				row.Top[tau[pos]] += p
			}
		case TargetMAP:
			row.Mode[tau.Key()] += p
		}
	}
	return row
}

// TestSolveMAPTieBreak: equal-probability modes resolve to the smallest
// ranking key, independent of row or map iteration order.
func TestSolveMAPTieBreak(t *testing.T) {
	const m = 3
	taus := []rank.Ranking{{2, 1, 0}, {0, 1, 2}}
	rows := []Row{exactRowFromModel(m, TargetMAP, 0, taus)}
	res, err := Solve(rows, Params{Target: TargetMAP, M: m})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranking.Key() != "0,1,2" {
		t.Fatalf("MAP tie resolved to %v, want 0,1,2", res.Ranking)
	}
	if res.Prob != 0.5 {
		t.Fatalf("MAP prob %v, want 0.5", res.Prob)
	}
}

// TestSolveTopK: membership probabilities fold as means over sessions and
// trim to the k most probable items, ties to the smaller id.
func TestSolveTopK(t *testing.T) {
	const m, k = 3, 1
	rows := []Row{
		exactRowFromModel(m, TargetTopK, k, []rank.Ranking{{0, 1, 2}}),
		exactRowFromModel(m, TargetTopK, k, []rank.Ranking{{1, 0, 2}}),
	}
	res, err := Solve(rows, Params{Target: TargetTopK, M: m, K: k})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != k {
		t.Fatalf("items %v, want %d entries", res.Items, k)
	}
	// Items 0 and 1 each lead in one of two sessions (prob 0.5 each); the
	// tie goes to item 0.
	if res.Items[0].Item != 0 || res.Items[0].Prob != 0.5 {
		t.Fatalf("top item %+v, want item 0 at 0.5", res.Items[0])
	}
}

// TestSolveSampledMergesCounters: sampled totals and the sampled flag fold
// from the rows, and splitting the row list must not change the answer —
// the property the coordinator's concatenate-and-re-solve merge relies on.
func TestSolveSampledMergesCounters(t *testing.T) {
	const m = 3
	rows := []Row{
		{Session: []string{"a"}, Sampled: true, Draws: 100, Accepts: 50,
			PairN: []int64{0, 30, 40, 20, 0, 25, 10, 25, 0}},
		{Session: []string{"b"}, Sampled: true, Draws: 100, Accepts: 20,
			PairN: []int64{0, 10, 15, 10, 0, 12, 5, 8, 0}},
	}
	res, err := Solve(rows, Params{Target: TargetMedian, M: m})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sampled || res.Samples != 200 || res.Accepts != 70 {
		t.Fatalf("sampled fold wrong: %+v", res)
	}
	if res.PairHalf == nil {
		t.Fatal("sampled median answer missing half-widths")
	}
	again, err := Solve(append([]Row(nil), rows...), Params{Target: TargetMedian, M: m})
	if err != nil {
		t.Fatal(err)
	}
	if again.ExpectedTau != res.ExpectedTau || again.Ranking.Key() != res.Ranking.Key() {
		t.Fatalf("re-solve diverged: %+v vs %+v", again, res)
	}
	for a := 0; a < m; a++ {
		for b := 0; b < m; b++ {
			if again.Pairwise[a][b] != res.Pairwise[a][b] {
				t.Fatalf("pairwise[%d][%d] diverged", a, b)
			}
		}
	}
}

func TestParseRankingKey(t *testing.T) {
	tau, err := parseRankingKey("2,0,1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if tau.Key() != "2,0,1" {
		t.Fatalf("round trip %v", tau)
	}
	for _, bad := range []string{"", "0,1", "0,1,3", "0,1,1", "x,1,2", "0,1,2,3"} {
		if _, err := parseRankingKey(bad, 3); err == nil {
			t.Errorf("parseRankingKey(%q): want error", bad)
		}
	}
}
