// Package consensus computes consensus answers over a population of
// probabilistic rankings: the single deterministic ranking (or top-k set)
// that best represents a distribution of possible rankings, following
// Li & Deshpande's "consensus answer" framing — the deterministic answer
// minimizing the expected distance to the random possible answers, with
// Kendall tau as the distance between rankings.
//
// The package is deliberately split from the evaluation engine: the engine
// (internal/ppd) reduces a consensus request to one Row of sufficient
// statistics per live session — exact permutation-enumeration numerators
// for small item counts, rejection-sampling counters otherwise — and Solve
// folds the rows into the answer. Because the fold is a deterministic
// sequential pass in session order and every cross-session quantity is
// either an integer counter or re-derived from the rows centrally, a
// coordinator that concatenates per-partition rows in session order and
// calls the same Solve reproduces a single process byte for byte (see
// internal/cluster's merge).
//
// Three targets are served: the most-probable (MAP) ranking of the
// posterior, the expected-Kendall-tau median ranking, and consensus top-k
// membership probabilities with certainty bands.
package consensus

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"probpref/internal/rank"
)

// Target selects which consensus answer a request asks for.
type Target int

const (
	// TargetNone is the zero value: no target chosen (invalid in a
	// compiled request; Compile rejects it with an enumerating error).
	TargetNone Target = iota
	// TargetMAP asks for the most-probable ranking of the conditioned
	// posterior, with its probability.
	TargetMAP
	// TargetMedian asks for the ranking minimizing the expected Kendall
	// tau distance to the population, with the pairwise-marginal matrix
	// behind it.
	TargetMedian
	// TargetTopK asks for per-item top-k membership probabilities with
	// certainty bands, trimmed to the k most certain members.
	TargetTopK
)

// String returns the canonical target name (the form ParseTarget accepts
// and the HTTP API serves).
func (t Target) String() string {
	switch t {
	case TargetNone:
		return "none"
	case TargetMAP:
		return "map"
	case TargetMedian:
		return "median"
	case TargetTopK:
		return "topk"
	}
	return fmt.Sprintf("target(%d)", int(t))
}

// TargetNames lists the canonical target names ParseTarget accepts, in the
// order the CLIs and the HTTP API document them.
func TargetNames() []string { return []string{"map", "median", "topk"} }

// ParseTarget resolves a target name (as printed by Target.String) to its
// Target; it is the shared parser of the CLI -target flag and the HTTP
// "target" field. The error of an unknown name enumerates the valid names.
func ParseTarget(s string) (Target, error) {
	switch strings.ToLower(s) {
	case "map":
		return TargetMAP, nil
	case "median":
		return TargetMedian, nil
	case "topk", "top-k":
		return TargetTopK, nil
	}
	return 0, fmt.Errorf("unknown consensus target %q (valid: %s)", s, strings.Join(TargetNames(), " | "))
}

// MaxExactM is the largest item count for which exact consensus answers
// enumerate all m! rankings (and the median search runs exhaustive
// branch-and-bound). Beyond it the engine routes to sampling and the
// median solve to deterministic local search.
const MaxExactM = 7

// Row is the sufficient statistic of one live session for one consensus
// target: everything Solve needs, normalized only at fold time so rows
// from different partitions concatenate without any floating-point merge.
// Exact rows carry probability-mass numerators over the session's
// conditioned posterior; sampled rows carry rejection-sampling counters.
// Only the fields of the requested target are populated.
type Row struct {
	// Session holds the session-key attribute values identifying the row.
	Session []string `json:"session"`
	// Sampled marks a rejection-sampling row (counters instead of mass).
	Sampled bool `json:"sampled,omitempty"`
	// Weight is the session's conditioning mass Z_s = sum over matching
	// rankings of Pr(tau); exact rows only, always > 0.
	Weight float64 `json:"weight,omitempty"`
	// Draws counts the Monte Carlo draws of a sampled row.
	Draws int64 `json:"draws,omitempty"`
	// Accepts counts the draws matching the conditioning union; sampled
	// rows with zero accepts are dropped (they carry no information).
	Accepts int64 `json:"accepts,omitempty"`
	// Pair holds the m*m pairwise numerators of a median row:
	// Pair[a*m+b] = Pr(a before b and U) (exact rows).
	Pair []float64 `json:"pair,omitempty"`
	// PairN holds the pairwise accept counters of a sampled median row.
	PairN []int64 `json:"pair_n,omitempty"`
	// Top holds the m top-k membership numerators of a topk row:
	// Top[i] = Pr(item i within the first k positions and U) (exact rows).
	Top []float64 `json:"top,omitempty"`
	// TopN holds the top-k membership counters of a sampled topk row.
	TopN []int64 `json:"top_n,omitempty"`
	// Mode maps ranking keys (rank.Ranking.Key) to their conditioned mass
	// Pr(tau and U) for a MAP row (exact rows).
	Mode map[string]float64 `json:"mode,omitempty"`
	// ModeN maps ranking keys to accept counters of a sampled MAP row.
	ModeN map[string]int64 `json:"mode_n,omitempty"`
}

// Params configures a Solve.
type Params struct {
	// Target selects the consensus answer.
	Target Target
	// M is the item count of the model (ranking length).
	M int
	// K is the top-k cutoff (TargetTopK only).
	K int
	// Z is the normal CI multiplier for sampled certainty bands
	// (0 = 1.96, the 95% band).
	Z float64
}

// Item is one entry of a consensus top-k answer.
type Item struct {
	// Item is the model-internal item id.
	Item rank.Item
	// Prob is the population probability the item ranks within the top k.
	Prob float64
	// Half is the 95% confidence half-width of Prob (0 for exact rows).
	Half float64
}

// Result is a consensus answer. Which sections are populated depends on
// the target: Ranking and Prob for MAP; Ranking, ExpectedTau, Pairwise
// (and PairHalf when sampled) for median; Items for topk.
type Result struct {
	// Target echoes the requested target.
	Target Target
	// Sampled reports whether the rows were rejection-sampled.
	Sampled bool
	// LiveSessions counts the rows (sessions with positive conditioned
	// mass / at least one accepted draw).
	LiveSessions int
	// Samples totals the Monte Carlo draws across rows (sampled only).
	Samples int64
	// Accepts totals the accepted draws across rows (sampled only).
	Accepts int64
	// Ranking is the consensus ranking (MAP and median targets).
	Ranking rank.Ranking
	// ExpectedTau is the expected Kendall tau distance of Ranking to the
	// population (median target).
	ExpectedTau float64
	// Prob is the population probability of Ranking (MAP target).
	Prob float64
	// Pairwise is the m x m population pairwise-marginal matrix:
	// Pairwise[a][b] = Pr(a before b) (median target).
	Pairwise [][]float64
	// PairHalf carries the 95% half-widths of sampled Pairwise entries.
	PairHalf [][]float64
	// Items is the consensus top-k, most certain first (topk target).
	Items []Item
}

// Solve folds per-session rows into the consensus answer. The fold is a
// deterministic sequential pass in row order, so callers on both sides of
// a fan-out/merge boundary must present rows in the same (session) order
// to obtain byte-identical answers. Zero rows yield an empty (but valid)
// Result rather than an error, so a partition without live sessions merges
// cleanly.
func Solve(rows []Row, p Params) (*Result, error) {
	if p.Target < TargetMAP || p.Target > TargetTopK {
		return nil, fmt.Errorf("consensus: unknown target %d (valid: %s)", int(p.Target), strings.Join(TargetNames(), " | "))
	}
	if p.M < 1 {
		return nil, fmt.Errorf("consensus: M must be >= 1, got %d", p.M)
	}
	if p.Target == TargetTopK && p.K < 1 {
		return nil, fmt.Errorf("consensus: target topk requires K >= 1, got %d", p.K)
	}
	z := p.Z
	if z == 0 {
		z = 1.96
	}
	res := &Result{Target: p.Target, LiveSessions: len(rows)}
	for i := range rows {
		r := &rows[i]
		if r.Sampled {
			res.Sampled = true
			res.Samples += r.Draws
			res.Accepts += r.Accepts
		}
	}
	if len(rows) == 0 {
		return res, nil
	}
	switch p.Target {
	case TargetMAP:
		if err := solveMAP(rows, p, res); err != nil {
			return nil, err
		}
	case TargetMedian:
		solveMedian(rows, p, z, res)
	case TargetTopK:
		solveTopK(rows, p, z, res)
	}
	return res, nil
}

// solveMAP scores every ranking observed in any row's mode map — score =
// mean over sessions of the conditioned probability — and returns the
// argmax. Keys are scored in sorted order with a strictly-greater update,
// so ties resolve to the smallest key regardless of map iteration order.
func solveMAP(rows []Row, p Params, res *Result) error {
	seen := make(map[string]bool)
	for i := range rows {
		for k := range rows[i].Mode {
			seen[k] = true
		}
		for k := range rows[i].ModeN {
			seen[k] = true
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	n := float64(len(rows))
	bestKey, bestScore := "", math.Inf(-1)
	for _, key := range keys {
		s := 0.0
		for i := range rows {
			r := &rows[i]
			if r.Sampled {
				if c, ok := r.ModeN[key]; ok {
					s += float64(c) / float64(r.Accepts)
				}
			} else if m, ok := r.Mode[key]; ok {
				s += m / r.Weight
			}
		}
		s /= n
		if s > bestScore {
			bestKey, bestScore = key, s
		}
	}
	tau, err := parseRankingKey(bestKey, p.M)
	if err != nil {
		return err
	}
	res.Ranking = tau
	res.Prob = bestScore
	return nil
}

// solveMedian folds the population pairwise-marginal matrix and minimizes
// the expected Kendall tau over it: exhaustive branch-and-bound up to
// MaxExactM items, deterministic Borda-seeded adjacent-swap local search
// beyond.
func solveMedian(rows []Row, p Params, z float64, res *Result) {
	m := p.M
	pw := matrix(m)
	n := float64(len(rows))
	for a := 0; a < m; a++ {
		for b := 0; b < m; b++ {
			if a == b {
				continue
			}
			s := 0.0
			for i := range rows {
				r := &rows[i]
				if r.Sampled {
					s += float64(r.PairN[a*m+b]) / float64(r.Accepts)
				} else {
					s += r.Pair[a*m+b] / r.Weight
				}
			}
			pw[a][b] = s / n
		}
	}
	res.Pairwise = pw
	if res.Sampled {
		half := matrix(m)
		for a := 0; a < m; a++ {
			for b := 0; b < m; b++ {
				if a == b {
					continue
				}
				v := 0.0
				for i := range rows {
					r := &rows[i]
					acc := float64(r.Accepts)
					ph := float64(r.PairN[a*m+b]) / acc
					v += ph * (1 - ph) / acc
				}
				half[a][b] = z * math.Sqrt(v) / n
			}
		}
		res.PairHalf = half
	}
	var tau rank.Ranking
	if m <= MaxExactM {
		tau = medianExact(pw, m)
	} else {
		tau = medianLocalSearch(pw, m)
	}
	res.Ranking = tau
	res.ExpectedTau = rank.ExpectedKendallTau(pw, tau)
}

// boundSlack absorbs floating-point rounding in the branch-and-bound lower
// bound: a branch is pruned only when its bound beats the incumbent by
// more than the slack, so rounding can never prune the true minimizer and
// the search returns exactly the brute-force answer.
const boundSlack = 1e-9

// medianExact finds the expected-Kendall-tau-minimizing ranking by
// branch-and-bound over prefixes. Candidates extend in ascending item
// order and the incumbent updates only on strictly smaller cost, so the
// result is the lexicographically smallest minimizer; the incremental
// prefix cost adds terms in exactly ExpectedKendallTau's fold order, so
// the reported minimum is bit-identical to evaluating every permutation
// with ExpectedKendallTau and keeping the smallest.
func medianExact(pw [][]float64, m int) rank.Ranking {
	best := math.Inf(1)
	bestTau := make(rank.Ranking, m)
	tau := make(rank.Ranking, 0, m)
	used := make([]bool, m)
	var dfs func(cost float64)
	dfs = func(cost float64) {
		j := len(tau)
		if j == m {
			if cost < best {
				best = cost
				copy(bestTau, tau)
			}
			return
		}
		for e := 0; e < m; e++ {
			if used[e] {
				continue
			}
			// Same addition order as ExpectedKendallTau: position j's
			// terms pw[tau[j]][tau[i]] for i ascending.
			c := cost
			for i := 0; i < j; i++ {
				c += pw[e][tau[i]]
			}
			if bound := c + completionBound(pw, m, used, tau, e); bound > best+boundSlack {
				continue
			}
			used[e] = true
			tau = append(tau, rank.Item(e))
			dfs(c)
			tau = tau[:j]
			used[e] = false
		}
	}
	dfs(0)
	return bestTau
}

// completionBound is an admissible lower bound on the cost still to come
// after placing item e on top of the current prefix: pairs between an
// unplaced item and a placed one are forced (the unplaced item ends up
// after), pairs among unplaced items contribute at least the smaller of
// their two orientations.
func completionBound(pw [][]float64, m int, used []bool, tau rank.Ranking, e int) float64 {
	b := 0.0
	for f := 0; f < m; f++ {
		if used[f] || f == e {
			continue
		}
		for _, p := range tau {
			b += pw[f][p]
		}
		b += pw[f][e]
		for g := f + 1; g < m; g++ {
			if used[g] || g == e {
				continue
			}
			b += math.Min(pw[f][g], pw[g][f])
		}
	}
	return b
}

// medianLocalSearch seeds a ranking by descending Borda score (row sums of
// the pairwise matrix, ties to the smaller item) and improves it with
// deterministic left-to-right adjacent-swap sweeps until a fixpoint. The
// search is a heuristic — the exact minimization is NP-hard in general —
// but fully deterministic, so replicas and coordinators agree exactly.
func medianLocalSearch(pw [][]float64, m int) rank.Ranking {
	type scored struct {
		item  int
		score float64
	}
	sc := make([]scored, m)
	for i := 0; i < m; i++ {
		s := 0.0
		for j := 0; j < m; j++ {
			s += pw[i][j]
		}
		sc[i] = scored{i, s}
	}
	sort.SliceStable(sc, func(a, b int) bool {
		if sc[a].score != sc[b].score {
			return sc[a].score > sc[b].score
		}
		return sc[a].item < sc[b].item
	})
	tau := make(rank.Ranking, m)
	for i, s := range sc {
		tau[i] = rank.Item(s.item)
	}
	for sweep := 0; sweep < m*m; sweep++ {
		improved := false
		for i := 0; i+1 < m; i++ {
			a, b := tau[i], tau[i+1]
			// Current pair cost is Pr(b before a); swapped it is
			// Pr(a before b).
			if pw[a][b] < pw[b][a] {
				tau[i], tau[i+1] = b, a
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return tau
}

// solveTopK folds per-item top-k membership probabilities (with sampled
// certainty bands) and trims to the k most probable members, ties to the
// smaller item id.
func solveTopK(rows []Row, p Params, z float64, res *Result) {
	m := p.M
	n := float64(len(rows))
	items := make([]Item, m)
	for i := 0; i < m; i++ {
		s, v := 0.0, 0.0
		for ri := range rows {
			r := &rows[ri]
			if r.Sampled {
				acc := float64(r.Accepts)
				ph := float64(r.TopN[i]) / acc
				s += ph
				v += ph * (1 - ph) / acc
			} else {
				s += r.Top[i] / r.Weight
			}
		}
		items[i] = Item{Item: rank.Item(i), Prob: s / n}
		if res.Sampled {
			items[i].Half = z * math.Sqrt(v) / n
		}
	}
	sort.SliceStable(items, func(a, b int) bool {
		if items[a].Prob != items[b].Prob {
			return items[a].Prob > items[b].Prob
		}
		return items[a].Item < items[b].Item
	})
	k := p.K
	if k > m {
		k = m
	}
	res.Items = items[:k]
}

// matrix allocates an m x m zero matrix.
func matrix(m int) [][]float64 {
	out := make([][]float64, m)
	for i := range out {
		out[i] = make([]float64, m)
	}
	return out
}

// parseRankingKey parses a rank.Ranking.Key string ("2,0,1") back into the
// ranking, validating it is a permutation of 0..m-1.
func parseRankingKey(key string, m int) (rank.Ranking, error) {
	parts := strings.Split(key, ",")
	if len(parts) != m {
		return nil, fmt.Errorf("consensus: ranking key %q has %d items, want %d", key, len(parts), m)
	}
	tau := make(rank.Ranking, m)
	seen := make([]bool, m)
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v >= m || seen[v] {
			return nil, fmt.Errorf("consensus: ranking key %q is not a permutation of 0..%d", key, m-1)
		}
		seen[v] = true
		tau[i] = rank.Item(v)
	}
	return tau, nil
}
