package sampling

import (
	"math"
	"math/rand"
	"sort"

	"probpref/internal/rank"
	"probpref/internal/rim"
)

// ISAMP estimates E[1(tau |= psi)] for a single sub-ranking psi over
// MAL(sigma, phi) by importance sampling with one AMP proposal centered at
// sigma (Section 5.3): samples always satisfy psi and are re-weighted by
// p(x)/q(x). Unbiased, but inefficient when the posterior is multi-modal
// (Example 5.1).
func ISAMP(ml *rim.Mallows, psi rank.Ranking, n int, rng *rand.Rand) (float64, error) {
	amp, err := rim.NewAMP(ml.Sigma, ml.Phi, rank.ChainOrder(psi))
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		x, logq := amp.Sample(rng)
		sum += math.Exp(ml.LogProb(x) - logq)
	}
	return sum / float64(n), nil
}

// MISAMP estimates E[1(tau |= psi)] for a single sub-ranking by multiple
// importance sampling (Section 5.4): AMP proposals are centered at the
// greedy modals of the posterior (Algorithm 5), n samples are drawn from
// each, and weights follow the balance heuristic (Equation 6). d caps the
// number of modals used (0 means all found, up to 64).
func MISAMP(ml *rim.Mallows, psi rank.Ranking, d, n int, rng *rand.Rand) (float64, error) {
	modals := GreedyModals(psi, ml.Sigma, 64)
	if d > 0 && d < len(modals) {
		// Keep the d modals closest to sigma.
		sort.SliceStable(modals, func(i, j int) bool {
			return rank.KendallTau(modals[i], ml.Sigma) < rank.KendallTau(modals[j], ml.Sigma)
		})
		modals = modals[:d]
	}
	cons := rank.ChainOrder(psi)
	amps := make([]*rim.AMP, len(modals))
	for t, r := range modals {
		a, err := rim.NewAMP(r, ml.Phi, cons)
		if err != nil {
			return 0, err
		}
		amps[t] = a
	}
	return misEstimate(ml, amps, n, rng), nil
}

// misEstimate draws n samples from each proposal and applies the balance
// heuristic with equal sample counts (Equation 6):
//
//	E(f) = 1/(d*n) * sum_{t,j} p(x_tj) / ((1/d) * sum_t' q_t'(x_tj))
//
// with f == 1 because every proposal sample satisfies its conditioning
// sub-ranking and hence the target event.
func misEstimate(ml *rim.Mallows, amps []*rim.AMP, n int, rng *rand.Rand) float64 {
	d := len(amps)
	if d == 0 || n <= 0 {
		return 0
	}
	logD := math.Log(float64(d))
	sum := 0.0
	logqs := make([]float64, d)
	for _, a := range amps {
		for j := 0; j < n; j++ {
			x, _ := a.Sample(rng)
			for t, other := range amps {
				lq, ok := other.LogDensity(x)
				if !ok {
					lq = math.Inf(-1)
				}
				logqs[t] = lq
			}
			logMix := logSumExp(logqs) - logD
			sum += math.Exp(ml.LogProb(x) - logMix)
		}
	}
	return sum / float64(d*n)
}
