package sampling

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"probpref/internal/rank"
	"probpref/internal/rim"
)

// ISAMP estimates E[1(tau |= psi)] for a single sub-ranking psi over
// MAL(sigma, phi) by importance sampling with one AMP proposal centered at
// sigma (Section 5.3): samples always satisfy psi and are re-weighted by
// p(x)/q(x). Unbiased, but inefficient when the posterior is multi-modal
// (Example 5.1).
func ISAMP(ml *rim.Mallows, psi rank.Ranking, n int, rng *rand.Rand) (float64, error) {
	amp, err := rim.NewAMP(ml.Sigma, ml.Phi, rank.ChainOrder(psi))
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		x, logq := amp.Sample(rng)
		sum += math.Exp(ml.LogProb(x) - logq)
	}
	return sum / float64(n), nil
}

// MISAMP estimates E[1(tau |= psi)] for a single sub-ranking by multiple
// importance sampling (Section 5.4): AMP proposals are centered at the
// greedy modals of the posterior (Algorithm 5), n samples are drawn from
// each, and weights follow the balance heuristic (Equation 6). d caps the
// number of modals used (0 means all found, up to 64).
func MISAMP(ml *rim.Mallows, psi rank.Ranking, d, n int, rng *rand.Rand) (float64, error) {
	modals := GreedyModals(psi, ml.Sigma, 64)
	if d > 0 && d < len(modals) {
		// Keep the d modals closest to sigma.
		sort.SliceStable(modals, func(i, j int) bool {
			return rank.KendallTau(modals[i], ml.Sigma) < rank.KendallTau(modals[j], ml.Sigma)
		})
		modals = modals[:d]
	}
	cons := rank.ChainOrder(psi)
	amps := make([]*rim.AMP, len(modals))
	for t, r := range modals {
		a, err := rim.NewAMP(r, ml.Phi, cons)
		if err != nil {
			return 0, err
		}
		amps[t] = a
	}
	return misEstimate(ml, amps, n, rng), nil
}

// misEstimate draws n samples from each proposal and applies the balance
// heuristic with equal sample counts (Equation 6):
//
//	E(f) = 1/(d*n) * sum_{t,j} p(x_tj) / ((1/d) * sum_t' q_t'(x_tj))
//
// with f == 1 because every proposal sample satisfies its conditioning
// sub-ranking and hence the target event.
func misEstimate(ml *rim.Mallows, amps []*rim.AMP, n int, rng *rand.Rand) float64 {
	est, _, _, _ := misEstimateCI(context.Background(), ml, amps, n, 0, rng)
	return est
}

// misEstimateCI is misEstimate with a stratified normal-approximation
// confidence interval and mid-run cancellation. The proposals are the
// strata: with per-proposal sample variances s_t^2 the estimator's variance
// is (1/d^2) * sum_t s_t^2 / n_t, and the half-width is z times its square
// root. When ctx is cancelled mid-run it returns the estimate over the
// samples drawn so far together with ctx's error; drawn reports the total
// number of samples used.
func misEstimateCI(ctx context.Context, ml *rim.Mallows, amps []*rim.AMP, n int, z float64, rng *rand.Rand) (est, halfWidth float64, drawn int, err error) {
	d := len(amps)
	if d == 0 || n <= 0 {
		return 0, 0, 0, nil
	}
	logD := math.Log(float64(d))
	logqs := make([]float64, d)
	done := ctx.Done()
	var variance float64
	sumMeans := 0.0
	strata := 0
sampling:
	for _, a := range amps {
		// Welford's online mean/M2 per stratum.
		mean, m2 := 0.0, 0.0
		nt := 0
		for j := 0; j < n; j++ {
			if done != nil && drawn&127 == 0 {
				if cerr := ctx.Err(); cerr != nil {
					err = context.Cause(ctx)
					if nt > 0 {
						sumMeans += mean
						if nt > 1 {
							variance += m2 / float64(nt-1) / float64(nt)
						}
						strata++
					}
					break sampling
				}
			}
			x, _ := a.Sample(rng)
			for t, other := range amps {
				lq, ok := other.LogDensity(x)
				if !ok {
					lq = math.Inf(-1)
				}
				logqs[t] = lq
			}
			logMix := logSumExp(logqs) - logD
			w := math.Exp(ml.LogProb(x) - logMix)
			nt++
			drawn++
			delta := w - mean
			mean += delta / float64(nt)
			m2 += delta * (w - mean)
		}
		if nt > 0 {
			sumMeans += mean
			if nt > 1 {
				variance += m2 / float64(nt-1) / float64(nt)
			}
			strata++
		}
	}
	if strata == 0 {
		return 0, 0, 0, err
	}
	est = sumMeans / float64(strata)
	if z > 0 {
		halfWidth = z * math.Sqrt(variance) / float64(strata)
	}
	return est, halfWidth, drawn, err
}
