package sampling

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rank"
	"probpref/internal/rim"
	"probpref/internal/solver"
)

// Cross-solver metamorphic suite: on randomized small Mallows models every
// applicable exact method must agree to 1e-9, and the sampling estimators'
// reported confidence half-widths must bracket the exact answer at fixed
// seeds. This is the end-to-end counterpart of the per-solver agreement
// tests in internal/solver — it crosses the exact/approximate boundary that
// package can't (solver must not import sampling).

const exactTol = 1e-9

func metaLabeling(rng *rand.Rand, m, numLabels int) *label.Labeling {
	lab := label.NewLabeling()
	for it := 0; it < m; it++ {
		n := 0
		for l := 0; l < numLabels; l++ {
			if rng.Float64() < 0.5 {
				lab.Add(rank.Item(it), label.Label(l))
				n++
			}
		}
		if n == 0 { // keep every item involved in at least one label
			lab.Add(rank.Item(it), label.Label(rng.Intn(numLabels)))
		}
	}
	return lab
}

func metaSet(rng *rand.Rand, numLabels int) label.Set {
	return label.NewSet(label.Label(rng.Intn(numLabels)))
}

func metaTwoLabelUnion(rng *rand.Rand, z, numLabels int) pattern.Union {
	u := make(pattern.Union, z)
	for i := range u {
		u[i] = pattern.TwoLabel(metaSet(rng, numLabels), metaSet(rng, numLabels))
	}
	return u
}

func metaChainUnion(rng *rand.Rand, numLabels int) pattern.Union {
	// A 3-node chain pattern: not two-label, exercises RelOrder vs General.
	nodes := []pattern.Node{
		{Labels: metaSet(rng, numLabels)},
		{Labels: metaSet(rng, numLabels)},
		{Labels: metaSet(rng, numLabels)},
	}
	g, err := pattern.New(nodes, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		panic(err)
	}
	return pattern.Union{g}
}

func metaMallows(rng *rand.Rand, m int) *rim.Mallows {
	sigma := make(rank.Ranking, m)
	for i, v := range rng.Perm(m) {
		sigma[i] = rank.Item(v)
	}
	ml, err := rim.NewMallows(sigma, 0.3+0.6*rng.Float64())
	if err != nil {
		panic(err)
	}
	return ml
}

// TestMetamorphicExactMethodsAgree checks that on random two-label unions
// every exact method (two-label, bipartite, general, rel-order) matches the
// m! enumerator, and on random chain unions the applicable ones (general,
// rel-order) do.
func TestMetamorphicExactMethodsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7001))
	for trial := 0; trial < 25; trial++ {
		m := 4 + rng.Intn(3)
		ml := metaMallows(rng, m)
		lab := metaLabeling(rng, m, 3)
		mdl := ml.Model()

		u := metaTwoLabelUnion(rng, 1+rng.Intn(2), 3)
		want := solver.Brute(mdl, lab, u)
		got := map[string]func() (float64, error){
			"two-label": func() (float64, error) { return solver.TwoLabel(mdl, lab, u, solver.Options{}) },
			"bipartite": func() (float64, error) { return solver.Bipartite(mdl, lab, u, solver.Options{}) },
			"general":   func() (float64, error) { return solver.General(mdl, lab, u, solver.Options{}) },
			"relorder":  func() (float64, error) { return solver.RelOrder(mdl, lab, u, solver.Options{MaxInvolved: 16}) },
		}
		for name, f := range got {
			p, err := f()
			if err != nil {
				t.Fatalf("trial %d: %s: %v", trial, name, err)
			}
			if math.Abs(p-want) > exactTol {
				t.Fatalf("trial %d: %s = %v, brute = %v (diff %g)", trial, name, p, want, math.Abs(p-want))
			}
		}

		cu := metaChainUnion(rng, 3)
		cwant := solver.Brute(mdl, lab, cu)
		for name, f := range map[string]func() (float64, error){
			"general":  func() (float64, error) { return solver.General(mdl, lab, cu, solver.Options{}) },
			"relorder": func() (float64, error) { return solver.RelOrder(mdl, lab, cu, solver.Options{MaxInvolved: 16}) },
		} {
			p, err := f()
			if err != nil {
				t.Fatalf("trial %d: chain %s: %v", trial, name, err)
			}
			if math.Abs(p-cwant) > exactTol {
				t.Fatalf("trial %d: chain %s = %v, brute = %v", trial, name, p, cwant)
			}
		}
	}
}

// TestMetamorphicRejectionCIBracketsExact checks that at fixed seeds the
// rejection estimator's reported 95% half-width brackets the exact answer.
// The seeds are fixed, so this is deterministic: a failure means either the
// estimator or the interval construction regressed. The interval is given a
// 1.5x slack so a borderline draw inside the nominal 5% miss probability
// does not make the suite flaky across platforms.
func TestMetamorphicRejectionCIBracketsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7002))
	misses := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		m := 4 + rng.Intn(3)
		ml := metaMallows(rng, m)
		lab := metaLabeling(rng, m, 3)
		u := metaTwoLabelUnion(rng, 1+rng.Intn(2), 3)
		want := solver.Brute(ml.Model(), lab, u)

		est, hw := RejectionModelCI(ml, lab, u, 4000, 1.96, rng)
		if hw <= 0 {
			t.Fatalf("trial %d: non-positive half-width %v", trial, hw)
		}
		if math.Abs(est-want) > 1.5*hw {
			misses++
			t.Logf("trial %d: rejection est %v ± %v missed exact %v", trial, est, hw, want)
		}
	}
	if misses > 1 {
		t.Fatalf("rejection CI missed the exact answer in %d/%d trials", misses, trials)
	}
}

// TestMetamorphicMISCIBracketsExact does the same for the MIS-AMP-lite
// estimator's stratified confidence interval. The proposal budget d covers
// the whole candidate pool, so the compensation factors are exactly 1 and
// the balance-heuristic estimator is unbiased — the reported half-width
// then only has to cover sampling noise (with pruned proposals the
// compensation adds a bias the interval deliberately does not model; that
// regime is MethodMISLite's, not this test's).
func TestMetamorphicMISCIBracketsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7003))
	misses := 0
	const trials = 15
	for trial := 0; trial < trials; trial++ {
		m := 4 + rng.Intn(3)
		ml := metaMallows(rng, m)
		lab := metaLabeling(rng, m, 3)
		u := metaTwoLabelUnion(rng, 1, 3)
		want := solver.Brute(ml.Model(), lab, u)

		est, err := NewEstimator(ml, lab, u, Config{MaxModalsPerSub: 128})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		p, hw, drawn, err := est.EstimateCI(context.Background(), 1<<20, 400, rng, true, 1.96)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if want > exactTol && drawn == 0 {
			t.Fatalf("trial %d: no samples drawn for satisfiable union", trial)
		}
		if want <= exactTol {
			if p > 1e-6 {
				t.Fatalf("trial %d: estimate %v for unsatisfiable union", trial, p)
			}
			continue
		}
		if hw <= 0 {
			t.Fatalf("trial %d: non-positive half-width %v (est %v, exact %v)", trial, hw, p, want)
		}
		// 1.5x slack as above: fixed seeds, but keep borderline draws from
		// flaking across platforms.
		if math.Abs(p-want) > 1.5*hw {
			misses++
			t.Logf("trial %d: MIS est %v ± %v missed exact %v", trial, p, hw, want)
		}
	}
	if misses > 1 {
		t.Fatalf("MIS CI missed the exact answer in %d/%d trials", misses, trials)
	}
}

// TestMetamorphicRejectionCtxCancel checks that a cancelled context aborts
// the rejection loop with the cause error.
func TestMetamorphicRejectionCtxCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(7004))
	ml := metaMallows(rng, 6)
	lab := metaLabeling(rng, 6, 3)
	u := metaTwoLabelUnion(rng, 1, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := RejectionModelCICtx(ctx, ml, lab, u, 1000000, 1.96, rng)
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
