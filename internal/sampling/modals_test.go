package sampling

import (
	"math/rand"
	"testing"

	"probpref/internal/rank"
)

// Example 5.2 of the paper: for psi0 = <s3, s1> over sigma = <s1, s2, s3>,
// Algorithm 5 finds exactly the two modals <s3, s1, s2> and <s2, s3, s1>.
func TestGreedyModalsExample52(t *testing.T) {
	sigma := rank.Identity(3) // s1=0, s2=1, s3=2
	psi := rank.Ranking{2, 0} // <s3, s1>
	modals := GreedyModals(psi, sigma, 0)
	if len(modals) != 2 {
		t.Fatalf("got %d modals: %v, want 2", len(modals), modals)
	}
	keys := map[string]bool{}
	for _, m := range modals {
		keys[m.Key()] = true
		if !m.ConsistentWith(psi) {
			t.Fatalf("modal %v violates psi", m)
		}
	}
	if !keys["2,0,1"] || !keys["1,2,0"] {
		t.Fatalf("modals = %v, want {<2,0,1>, <1,2,0>}", modals)
	}
}

// Property: every greedy modal is a full permutation consistent with psi, and
// its distance to sigma is minimal among the frontier (no completion of psi
// found by exhaustive search is strictly closer).
func TestGreedyModalsOptimalOnSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		m := 3 + rng.Intn(3)
		sigma := make(rank.Ranking, m)
		for i, v := range rng.Perm(m) {
			sigma[i] = rank.Item(v)
		}
		// Random sub-ranking over 2..m-1 items.
		k := 2 + rng.Intn(m-1)
		if k > m {
			k = m
		}
		perm := rng.Perm(m)
		psi := make(rank.Ranking, k)
		for i := 0; i < k; i++ {
			psi[i] = rank.Item(perm[i])
		}
		modals := GreedyModals(psi, sigma, 0)
		if len(modals) == 0 {
			t.Fatal("no modals")
		}
		// Exhaustive minimum distance over all consistent completions.
		best := 1 << 30
		rank.ForEachPermutation(m, func(tau rank.Ranking) bool {
			if tau.ConsistentWith(psi) {
				if d := rank.KendallTau(tau, sigma); d < best {
					best = d
				}
			}
			return true
		})
		for _, modal := range modals {
			if !modal.IsPermutation() {
				t.Fatalf("modal %v is not a permutation", modal)
			}
			if !modal.ConsistentWith(psi) {
				t.Fatalf("modal %v inconsistent with %v", modal, psi)
			}
			d := rank.KendallTau(modal, sigma)
			// The greedy heuristic is not guaranteed optimal, but must be
			// within the frontier's own minimum; record gross violations.
			if d < best {
				t.Fatalf("modal closer than exhaustive optimum?!")
			}
		}
		// At least one modal should achieve the greedy-reachable minimum;
		// check greedy distance estimate is an upper bound of the optimum.
		if ApproximateDistance(psi, sigma) < best {
			t.Fatalf("ApproximateDistance below true optimum")
		}
	}
}

func TestApproximateDistanceExample(t *testing.T) {
	sigma := rank.Identity(3)
	psi := rank.Ranking{2, 0}
	// Best completions <2,0,1> and <1,2,0> are both at distance 2.
	if d := ApproximateDistance(psi, sigma); d != 2 {
		t.Fatalf("ApproximateDistance = %d, want 2", d)
	}
	// A consistent sub-ranking has distance equal to its own inversions.
	if d := ApproximateDistance(rank.Ranking{0, 2}, sigma); d != 0 {
		t.Fatalf("ApproximateDistance = %d, want 0", d)
	}
}

// Property: minInsertDistances agrees with brute-force recomputation.
func TestMinInsertDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		m := 3 + rng.Intn(4)
		sigma := make(rank.Ranking, m)
		for i, v := range rng.Perm(m) {
			sigma[i] = rank.Item(v)
		}
		k := 1 + rng.Intn(m-1)
		perm := rng.Perm(m)
		cur := make(rank.Ranking, k)
		for i := 0; i < k; i++ {
			cur[i] = rank.Item(perm[i])
		}
		x := rank.Item(perm[k])
		best, argmin := minInsertDistances(cur, x, sigma)
		wantBest := 1 << 30
		var wantArg []int
		for j := 0; j <= k; j++ {
			d := rank.KendallTauSub(cur.Insert(x, j), sigma)
			if d < wantBest {
				wantBest = d
				wantArg = []int{j}
			} else if d == wantBest {
				wantArg = append(wantArg, j)
			}
		}
		// minInsertDistances returns the delta, which differs from the
		// absolute sub-distance by the constant base; argmins must agree.
		if len(argmin) != len(wantArg) {
			t.Fatalf("trial %d: argmin %v, want %v (best=%d)", trial, argmin, wantArg, best)
		}
		for i := range argmin {
			if argmin[i] != wantArg[i] {
				t.Fatalf("trial %d: argmin %v, want %v", trial, argmin, wantArg)
			}
		}
	}
}

func TestGreedyModalsCap(t *testing.T) {
	sigma := rank.Identity(6)
	psi := rank.Ranking{5, 0}
	modals := GreedyModals(psi, sigma, 2)
	if len(modals) > 2 {
		t.Fatalf("cap exceeded: %d modals", len(modals))
	}
}
