package sampling

import (
	"math"
	"math/rand"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rim"
)

// Rejection estimates Pr(G | sigma, phi, lambda) by drawing n rankings from
// the Mallows model and counting matches. Unbiased but needs EXP(m) samples
// to resolve rare events (Section 5.1).
func Rejection(ml *rim.Mallows, lab *label.Labeling, u pattern.Union, n int, rng *rand.Rand) float64 {
	if n <= 0 {
		return 0
	}
	hits := 0
	for i := 0; i < n; i++ {
		if u.Matches(ml.Sample(rng), lab) {
			hits++
		}
	}
	return float64(hits) / float64(n)
}

// RejectionUntil reproduces the stopping rule of the Figure 9 experiment:
// sample until the running estimate is within relTol relative error of the
// known exact probability (an optimistic stopping condition — a real run
// could not detect convergence), checking every checkEvery samples, up to
// maxN samples. It returns the estimate and the number of samples drawn.
func RejectionUntil(ml *rim.Mallows, lab *label.Labeling, u pattern.Union, truth, relTol float64, checkEvery, maxN int, rng *rand.Rand) (float64, int) {
	if checkEvery <= 0 {
		checkEvery = 1000
	}
	hits, n := 0, 0
	for n < maxN {
		for k := 0; k < checkEvery && n < maxN; k++ {
			n++
			if u.Matches(ml.Sample(rng), lab) {
				hits++
			}
		}
		est := float64(hits) / float64(n)
		if truth > 0 && math.Abs(est-truth) <= relTol*truth {
			return est, n
		}
	}
	return float64(hits) / float64(n), n
}
