package sampling

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rank"
	"probpref/internal/rim"
)

// Config tunes estimator construction.
type Config struct {
	// Limits bounds the pattern decomposition (see pattern.Limits).
	Limits pattern.Limits
	// MaxModalsPerSub caps Algorithm 5 branching per sub-ranking (default 16).
	MaxModalsPerSub int
}

func (c Config) maxModalsPerSub() int {
	if c.MaxModalsPerSub == 0 {
		return 16
	}
	return c.MaxModalsPerSub
}

// Estimator prepares and runs MIS-AMP-lite and MIS-AMP-adaptive (Section
// 5.5) for one labeled Mallows model and one pattern union. Construction
// performs the proposal-distribution overhead work (decomposition into
// sub-rankings, Algorithm 6 distances, Algorithm 5 modals); Estimate runs
// the sampling phase. The two phases are timed separately, which is what
// the Figure 13 experiment reports.
type Estimator struct {
	ML  *rim.Mallows
	Lab *label.Labeling
	U   pattern.Union

	cfg       Config
	subs      []subEntry
	truncated bool
	unsat     bool

	pool       []candidate
	poolSubs   int // number of subs whose modals have been generated
	poolSeen   map[string]bool
	amps       map[string]*rim.AMP
	overhead   time.Duration
	sampleTime time.Duration
}

type subEntry struct {
	psi  rank.Ranking
	dist int // ApproximateDistance to the Mallows center
}

type candidate struct {
	subIdx int
	modal  rank.Ranking
	dist   int // exact Kendall tau distance of the modal to the center
}

// NewEstimator decomposes the union and computes sub-ranking distances.
// An unsatisfiable union yields an estimator that always returns 0.
func NewEstimator(ml *rim.Mallows, lab *label.Labeling, u pattern.Union, cfg Config) (*Estimator, error) {
	start := time.Now()
	e := &Estimator{
		ML: ml, Lab: lab, U: u, cfg: cfg,
		poolSeen: make(map[string]bool),
		amps:     make(map[string]*rim.AMP),
	}
	if ml.Phi <= 0 {
		return nil, fmt.Errorf("sampling: estimator requires phi in (0,1], got %v", ml.Phi)
	}
	dec, err := pattern.Decompose(u, lab, ml.M(), cfg.Limits)
	if err != nil {
		return nil, err
	}
	e.truncated = dec.Truncated
	if len(dec.SubRankings) == 0 {
		e.unsat = true
		e.overhead = time.Since(start)
		return e, nil
	}
	e.subs = make([]subEntry, len(dec.SubRankings))
	for i, psi := range dec.SubRankings {
		e.subs[i] = subEntry{psi: psi, dist: ApproximateDistance(psi, ml.Sigma)}
	}
	sort.SliceStable(e.subs, func(i, j int) bool {
		if e.subs[i].dist != e.subs[j].dist {
			return e.subs[i].dist < e.subs[j].dist
		}
		return e.subs[i].psi.Key() < e.subs[j].psi.Key()
	})
	e.overhead = time.Since(start)
	return e, nil
}

// Truncated reports whether the decomposition hit an enumeration limit, in
// which case compensation numerators are computed over the enumerated subset.
func (e *Estimator) Truncated() bool { return e.truncated }

// NumSubRankings returns the number of sub-rankings in the decomposition.
func (e *Estimator) NumSubRankings() int { return len(e.subs) }

// Overhead returns the accumulated proposal-construction time.
func (e *Estimator) Overhead() time.Duration { return e.overhead }

// SamplingTime returns the accumulated sampling time.
func (e *Estimator) SamplingTime() time.Duration { return e.sampleTime }

// ensurePool extends the modal candidate pool, sub-ranking by sub-ranking in
// ascending distance order, until it holds at least want candidates or every
// sub-ranking has been processed.
func (e *Estimator) ensurePool(want int) {
	start := time.Now()
	for len(e.pool) < want && e.poolSubs < len(e.subs) {
		se := e.subs[e.poolSubs]
		for _, modal := range GreedyModals(se.psi, e.ML.Sigma, e.cfg.maxModalsPerSub()) {
			key := modal.Key() + "|" + se.psi.Key()
			if e.poolSeen[key] {
				continue
			}
			e.poolSeen[key] = true
			e.pool = append(e.pool, candidate{
				subIdx: e.poolSubs,
				modal:  modal,
				dist:   rank.KendallTau(modal, e.ML.Sigma),
			})
		}
		e.poolSubs++
	}
	e.overhead += time.Since(start)
}

// selectProposals returns the d pool candidates whose modals are closest to
// the center, with their AMP samplers (built lazily and cached).
func (e *Estimator) selectProposals(d int) ([]candidate, []*rim.AMP) {
	e.ensurePool(d)
	start := time.Now()
	selected := append([]candidate(nil), e.pool...)
	sort.SliceStable(selected, func(i, j int) bool { return selected[i].dist < selected[j].dist })
	if d < len(selected) {
		selected = selected[:d]
	}
	amps := make([]*rim.AMP, len(selected))
	for i, c := range selected {
		key := c.modal.Key() + "|" + e.subs[c.subIdx].psi.Key()
		a, ok := e.amps[key]
		if !ok {
			a = rim.MustAMP(c.modal, e.ML.Phi, rank.ChainOrder(e.subs[c.subIdx].psi))
			e.amps[key] = a
		}
		amps[i] = a
	}
	e.overhead += time.Since(start)
	return selected, amps
}

// compensation returns the sub-ranking and modal compensation factors
// c_psi and c_r for the given selection (Section 5.5): each is the ratio of
// total phi^distance mass to selected mass, estimating the portion of the
// posterior represented by the pruned proposals.
func (e *Estimator) compensation(selected []candidate) (cPsi, cR float64) {
	phi := e.ML.Phi
	var numPsi, denPsi float64
	selSubs := make(map[int]bool)
	for _, c := range selected {
		selSubs[c.subIdx] = true
	}
	for i, se := range e.subs {
		w := math.Pow(phi, float64(se.dist))
		numPsi += w
		if selSubs[i] {
			denPsi += w
		}
	}
	var numR, denR float64
	selModal := make(map[string]bool)
	for _, c := range selected {
		selModal[c.modal.Key()+"|"+e.subs[c.subIdx].psi.Key()] = true
	}
	for _, c := range e.pool {
		w := math.Pow(phi, float64(c.dist))
		numR += w
		if selModal[c.modal.Key()+"|"+e.subs[c.subIdx].psi.Key()] {
			denR += w
		}
	}
	cPsi, cR = 1, 1
	if denPsi > 0 {
		cPsi = numPsi / denPsi
	}
	if denR > 0 {
		cR = numR / denR
	}
	return cPsi, cR
}

// Estimate runs MIS-AMP-lite with d proposal distributions and n samples per
// proposal. When compensate is true the result is scaled by the compensation
// factors c_psi * c_r for the pruned sub-rankings and modals.
func (e *Estimator) Estimate(d, n int, rng *rand.Rand, compensate bool) (float64, error) {
	return e.EstimateCtx(context.Background(), d, n, rng, compensate)
}

// EstimateCtx is Estimate with mid-run cancellation: the sampling loop
// checks ctx periodically and aborts with its error.
func (e *Estimator) EstimateCtx(ctx context.Context, d, n int, rng *rand.Rand, compensate bool) (float64, error) {
	est, _, _, err := e.EstimateCI(ctx, d, n, rng, compensate, 0)
	return est, err
}

// EstimateCI runs MIS-AMP-lite like Estimate and additionally returns the
// half-width of the stratified normal-approximation confidence interval at
// the given z-score (z = 1.96 for 95%; z <= 0 skips the interval) and the
// number of samples drawn. Compensation scales the half-width along with the
// estimate, so the reported interval stays an interval on the compensated
// answer. A cancellation mid-run returns the partial estimate together with
// ctx's error.
func (e *Estimator) EstimateCI(ctx context.Context, d, n int, rng *rand.Rand, compensate bool, z float64) (est, halfWidth float64, drawn int, err error) {
	if e.unsat || len(e.U) == 0 {
		return 0, 0, 0, nil
	}
	if d <= 0 || n <= 0 {
		return 0, 0, 0, fmt.Errorf("sampling: d and n must be positive (d=%d n=%d)", d, n)
	}
	selected, amps := e.selectProposals(d)
	if len(selected) == 0 {
		return 0, 0, 0, fmt.Errorf("sampling: no proposals available")
	}
	start := time.Now()
	est, halfWidth, drawn, err = misEstimateCI(ctx, e.ML, amps, n, z, rng)
	e.sampleTime += time.Since(start)
	if compensate {
		cPsi, cR := e.compensation(selected)
		est *= cPsi * cR
		halfWidth *= cPsi * cR
	}
	return est, halfWidth, drawn, err
}

// AdaptiveConfig tunes MIS-AMP-adaptive.
type AdaptiveConfig struct {
	// InitD is the starting number of proposals (default 1).
	InitD int
	// DeltaD is the increment per round (default 2).
	DeltaD int
	// MaxD bounds the number of proposals (default 32).
	MaxD int
	// Samples per proposal per round (default 300).
	Samples int
	// Tol is the relative-change convergence threshold (default 0.05).
	Tol float64
	// Compensate enables the compensation factors (default in callers: true).
	Compensate bool
}

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.InitD == 0 {
		c.InitD = 1
	}
	if c.DeltaD == 0 {
		c.DeltaD = 2
	}
	if c.MaxD == 0 {
		c.MaxD = 32
	}
	if c.Samples == 0 {
		c.Samples = 300
	}
	if c.Tol == 0 {
		c.Tol = 0.05
	}
	return c
}

// AdaptiveResult reports an adaptive run.
type AdaptiveResult struct {
	Estimate float64
	D        int       // proposals used in the final round
	Rounds   int       // lite rounds executed
	History  []float64 // estimate after each round
}

// EstimateAdaptive runs MIS-AMP-adaptive: MIS-AMP-lite with an increasing
// number of proposal distributions until the estimate stabilizes (relative
// change below Tol) or the proposal budget is exhausted.
func (e *Estimator) EstimateAdaptive(cfg AdaptiveConfig, rng *rand.Rand) (AdaptiveResult, error) {
	return e.EstimateAdaptiveCtx(context.Background(), cfg, rng)
}

// EstimateAdaptiveCtx is EstimateAdaptive with mid-run cancellation: a done
// ctx aborts between and inside lite rounds with ctx's error.
func (e *Estimator) EstimateAdaptiveCtx(ctx context.Context, cfg AdaptiveConfig, rng *rand.Rand) (AdaptiveResult, error) {
	cfg = cfg.withDefaults()
	var res AdaptiveResult
	if e.unsat || len(e.U) == 0 {
		return res, nil
	}
	prev := math.NaN()
	prevD := -1
	for d := cfg.InitD; d <= cfg.MaxD; d += cfg.DeltaD {
		est, err := e.EstimateCtx(ctx, d, cfg.Samples, rng, cfg.Compensate)
		if err != nil {
			return res, err
		}
		res.Rounds++
		res.History = append(res.History, est)
		res.Estimate = est
		e.ensurePool(d)
		dUsed := d
		if len(e.pool) < d {
			dUsed = len(e.pool)
		}
		res.D = dUsed
		if !math.IsNaN(prev) {
			scale := math.Max(math.Abs(est), math.Abs(prev))
			if scale == 0 || math.Abs(est-prev) <= cfg.Tol*scale {
				return res, nil
			}
		}
		if dUsed == prevD {
			// Pool exhausted: more rounds cannot add proposals.
			return res, nil
		}
		prev, prevD = est, dUsed
	}
	return res, nil
}
