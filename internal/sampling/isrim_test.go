package sampling

import (
	"math"
	"math/rand"
	"testing"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rank"
	"probpref/internal/rim"
	"probpref/internal/solver"
)

// exactSubRankingModel computes Pr(tau consistent with psi) for any RIM by
// enumeration.
func exactSubRankingModel(mdl *rim.Model, psi rank.Ranking) float64 {
	total := 0.0
	rank.ForEachPermutation(mdl.M(), func(tau rank.Ranking) bool {
		if tau.ConsistentWith(psi) {
			total += mdl.Prob(tau)
		}
		return true
	})
	return total
}

func TestISRIMMatchesBruteOnGeneralizedMallows(t *testing.T) {
	gm := rim.MustGeneralizedMallows(rank.Ranking{2, 0, 3, 1, 4}, []float64{1, 0.2, 0.7, 0.4, 0.9})
	psi := rank.Ranking{4, 2}
	truth := exactSubRankingModel(gm.Model(), psi)
	rng := rand.New(rand.NewSource(51))
	est, err := ISRIM(gm.Model(), psi, 60000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-truth) > 0.03*truth {
		t.Fatalf("ISRIM est %v, truth %v", est, truth)
	}
}

func TestISRIMMatchesISAMPOnMallows(t *testing.T) {
	// On a plain Mallows model, the generic estimator targets the same
	// quantity as IS-AMP; both converge to the enumeration truth.
	ml := rim.MustMallows(rank.Identity(5), 0.5)
	psi := rank.Ranking{3, 1}
	truth := exactSubRankingModel(ml.Model(), psi)
	rng := rand.New(rand.NewSource(52))
	est, err := ISRIM(ml.Model(), psi, 60000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-truth) > 0.05*truth {
		t.Fatalf("ISRIM est %v, truth %v", est, truth)
	}
}

func TestISRIMErrors(t *testing.T) {
	ml := rim.MustMallows(rank.Identity(3), 0.5)
	if _, err := ISRIM(ml.Model(), rank.Ranking{2, 0}, 0, nil); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestMISRIMMatchesBruteOnGeneralizedMallows(t *testing.T) {
	gm := rim.MustGeneralizedMallows(rank.Identity(5), []float64{1, 0.3, 0.8, 0.2, 0.6})
	lab := label.NewLabeling()
	lab.Add(0, 0)
	lab.Add(4, 0)
	lab.Add(1, 1)
	lab.Add(3, 2)
	u := pattern.Union{
		pattern.TwoLabel(label.NewSet(0), label.NewSet(1)),
		pattern.TwoLabel(label.NewSet(2), label.NewSet(0)),
	}
	truth := solver.BruteModel(gm.Model(), lab, u)
	rng := rand.New(rand.NewSource(53))
	est, truncated, err := MISRIM(gm.Model(), lab, u, 4000, rng, pattern.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Fatal("decomposition unexpectedly truncated")
	}
	if math.Abs(est-truth) > 0.05*truth {
		t.Fatalf("MISRIM est %v, truth %v", est, truth)
	}
}

func TestMISRIMAgreesWithExactSolverOnGM(t *testing.T) {
	// Generalized Mallows is a RIM, so the two-label solver gives the exact
	// answer; MISRIM must converge to it.
	gm := rim.MustGeneralizedMallows(rank.Identity(6), []float64{1, 0.1, 0.9, 0.3, 0.7, 0.5})
	lab := label.NewLabeling()
	lab.Add(5, 0)
	lab.Add(0, 1)
	u := pattern.Union{pattern.TwoLabel(label.NewSet(0), label.NewSet(1))}
	want, err := solver.TwoLabel(gm.Model(), lab, u, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(54))
	est, _, err := MISRIM(gm.Model(), lab, u, 8000, rng, pattern.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-want) > 0.1*want+0.002 {
		t.Fatalf("MISRIM est %v, exact %v", est, want)
	}
}

func TestMISRIMUnsatisfiableUnion(t *testing.T) {
	gm := rim.MustGeneralizedMallows(rank.Identity(3), []float64{1, 0.5, 0.5})
	lab := label.NewLabeling()
	lab.Add(0, 0) // label 1 unassigned: pattern unsatisfiable
	u := pattern.Union{pattern.TwoLabel(label.NewSet(0), label.NewSet(1))}
	rng := rand.New(rand.NewSource(55))
	est, _, err := MISRIM(gm.Model(), lab, u, 100, rng, pattern.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if est != 0 {
		t.Fatalf("unsatisfiable union estimated at %v", est)
	}
}

func TestMISRIMErrors(t *testing.T) {
	gm := rim.MustGeneralizedMallows(rank.Identity(3), []float64{1, 0.5, 0.5})
	lab := label.NewLabeling()
	lab.Add(0, 0)
	lab.Add(1, 1)
	u := pattern.Union{pattern.TwoLabel(label.NewSet(0), label.NewSet(1))}
	if _, _, err := MISRIM(gm.Model(), lab, u, 0, nil, pattern.Limits{}); err == nil {
		t.Error("n=0 accepted")
	}
}
