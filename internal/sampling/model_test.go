package sampling

import (
	"math"
	"math/rand"
	"testing"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rank"
	"probpref/internal/rim"
	"probpref/internal/solver"
)

// modelFixture builds a labeling and a two-label union over 5 items:
// {a-labeled item preferred to a b-labeled item}.
func modelFixture() (*label.Labeling, pattern.Union) {
	lab := label.NewLabeling()
	lab.Add(0, 0)
	lab.Add(2, 0)
	lab.Add(3, 1)
	lab.Add(4, 1)
	u := pattern.Union{pattern.TwoLabel(label.NewSet(0), label.NewSet(1))}
	return lab, u
}

func TestRejectionModelMatchesBruteForPlackettLuce(t *testing.T) {
	lab, u := modelFixture()
	pl := rim.MustPlackettLuce([]float64{5, 1, 0.5, 2, 3})
	truth := solver.BruteModel(pl, lab, u)
	rng := rand.New(rand.NewSource(11))
	est := RejectionModel(pl, lab, u, 120000, rng)
	if math.Abs(est-truth) > 0.01 {
		t.Fatalf("RejectionModel est %v, brute truth %v", est, truth)
	}
}

func TestRejectionModelMatchesBruteForGeneralizedMallows(t *testing.T) {
	lab, u := modelFixture()
	gm := rim.MustGeneralizedMallows(rank.Identity(5), []float64{1, 0.2, 0.9, 0.4, 0.7})
	truth := solver.BruteModel(gm, lab, u)
	rng := rand.New(rand.NewSource(12))
	est := RejectionModel(gm, lab, u, 120000, rng)
	if math.Abs(est-truth) > 0.01 {
		t.Fatalf("RejectionModel est %v, brute truth %v", est, truth)
	}
}

func TestBruteModelAgreesWithBruteOnRIM(t *testing.T) {
	// For a RIM model, the generic enumerator must agree with the RIM-specific
	// one exactly.
	lab, u := modelFixture()
	ml := rim.MustMallows(rank.Ranking{4, 2, 0, 3, 1}, 0.35)
	got := solver.BruteModel(ml.Model(), lab, u)
	want := solver.Brute(ml.Model(), lab, u)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("BruteModel %v != Brute %v", got, want)
	}
}

func TestGeneralizedMallowsExactSolversApply(t *testing.T) {
	// GeneralizedMallows is a RIM: the exact two-label solver applied to its
	// materialized model must match enumeration.
	lab, u := modelFixture()
	gm := rim.MustGeneralizedMallows(rank.Identity(5), []float64{0.5, 0.1, 1, 0.3, 0.8})
	want := solver.BruteModel(gm, lab, u)
	got, err := solver.TwoLabel(gm.Model(), lab, u, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-10 {
		t.Fatalf("two-label solver on GM model: %v, enumeration %v", got, want)
	}
}

func TestRejectionModelEdgeCases(t *testing.T) {
	lab, u := modelFixture()
	pl := rim.MustPlackettLuce([]float64{1, 1, 1, 1, 1})
	rng := rand.New(rand.NewSource(13))
	if est := RejectionModel(pl, lab, u, 0, rng); est != 0 {
		t.Errorf("n=0: est %v, want 0", est)
	}
	if est := RejectionModel(pl, lab, nil, 1000, rng); est != 0 {
		t.Errorf("empty union: est %v, want 0", est)
	}
}

func TestRejectionModelCI(t *testing.T) {
	lab, u := modelFixture()
	pl := rim.MustPlackettLuce([]float64{5, 1, 0.5, 2, 3})
	truth := solver.BruteModel(pl, lab, u)
	rng := rand.New(rand.NewSource(14))
	misses := 0
	const runs = 40
	for r := 0; r < runs; r++ {
		est, hw := RejectionModelCI(pl, lab, u, 4000, 1.96, rng)
		if hw <= 0 {
			t.Fatalf("half-width %v not positive", hw)
		}
		if math.Abs(est-truth) > hw {
			misses++
		}
	}
	// A 95% interval should cover the truth in all but a few of 40 runs.
	if misses > 6 {
		t.Fatalf("truth outside CI in %d/%d runs", misses, runs)
	}
}

func TestRejectionModelCIDegenerate(t *testing.T) {
	// A union no ranking satisfies: zero hits must still yield a positive,
	// sub-one half-width (continuity floor).
	lab := label.NewLabeling()
	lab.Add(0, 0) // no item carries label 1 => pattern unsatisfiable
	u := pattern.Union{pattern.TwoLabel(label.NewSet(0), label.NewSet(1))}
	pl := rim.MustPlackettLuce([]float64{1, 1, 1})
	rng := rand.New(rand.NewSource(15))
	est, hw := RejectionModelCI(pl, lab, u, 1000, 1.96, rng)
	if est != 0 {
		t.Errorf("est %v, want 0", est)
	}
	if hw <= 0 || hw >= 1 {
		t.Errorf("half-width %v out of (0,1)", hw)
	}
}
