package sampling

import (
	"math"
	"math/rand"
	"testing"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rank"
	"probpref/internal/rim"
	"probpref/internal/solver"
)

// When the proposal budget covers every sub-ranking and every modal, the
// compensation factors are exactly 1 (nothing was pruned) and the MIS
// estimator is unbiased for the full union probability: the mixture of AMP
// proposals covers the entire satisfying set.

func coverageFixture() (*rim.Mallows, *label.Labeling, pattern.Union) {
	ml := rim.MustMallows(rank.Ranking{2, 0, 3, 1, 4}, 0.3)
	lab := label.NewLabeling()
	lab.Add(0, 0)
	lab.Add(4, 0)
	lab.Add(1, 1)
	lab.Add(3, 2)
	u := pattern.Union{
		pattern.TwoLabel(label.NewSet(0), label.NewSet(1)),
		pattern.TwoLabel(label.NewSet(2), label.NewSet(0)),
	}
	return ml, lab, u
}

func TestFullCoverageCompensationIsIdentity(t *testing.T) {
	ml, lab, u := coverageFixture()
	est, err := NewEstimator(ml, lab, u, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Truncated() {
		t.Fatal("fixture unexpectedly truncated")
	}
	const d = 1000 // far above any possible pool size
	rng1 := rand.New(rand.NewSource(31))
	withComp, err := est.Estimate(d, 200, rng1, true)
	if err != nil {
		t.Fatal(err)
	}
	rng2 := rand.New(rand.NewSource(31))
	withoutComp, err := est.Estimate(d, 200, rng2, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(withComp-withoutComp) > 1e-12 {
		t.Fatalf("full coverage: compensation changed the estimate: %v vs %v", withComp, withoutComp)
	}
}

func TestFullCoverageUnbiased(t *testing.T) {
	ml, lab, u := coverageFixture()
	truth := solver.Brute(ml.Model(), lab, u)
	est, err := NewEstimator(ml, lab, u, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Average many independent runs: the mean must converge to the truth
	// (unbiasedness), and each run must already be close (low variance with
	// full proposal coverage).
	const runs, n = 30, 2000
	sum := 0.0
	for r := 0; r < runs; r++ {
		p, err := est.Estimate(1000, n, rand.New(rand.NewSource(int64(100+r))), true)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p-truth) > 0.25*truth {
			t.Fatalf("run %d: estimate %v too far from truth %v", r, p, truth)
		}
		sum += p
	}
	mean := sum / runs
	if math.Abs(mean-truth) > 0.02*truth {
		t.Fatalf("mean of %d runs = %v, truth = %v", runs, mean, truth)
	}
}

func TestPartialCoverageUnderestimatesWithoutCompensation(t *testing.T) {
	// With a single proposal and no compensation, the estimator targets only
	// the probability mass of the covered sub-ranking: it must (statistically)
	// underestimate the union.
	ml, lab, u := coverageFixture()
	truth := solver.Brute(ml.Model(), lab, u)
	est, err := NewEstimator(ml, lab, u, Config{})
	if err != nil {
		t.Fatal(err)
	}
	const runs, n = 20, 2000
	sum := 0.0
	for r := 0; r < runs; r++ {
		p, err := est.Estimate(1, n, rand.New(rand.NewSource(int64(300+r))), false)
		if err != nil {
			t.Fatal(err)
		}
		sum += p
	}
	mean := sum / runs
	if mean >= truth {
		t.Fatalf("single uncompensated proposal mean %v >= truth %v", mean, truth)
	}
}
