package sampling

import (
	"math"
	"math/rand"
	"testing"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rank"
	"probpref/internal/rim"
	"probpref/internal/solver"
)

// exactSubRanking computes Pr(tau consistent with psi) by enumeration.
func exactSubRanking(ml *rim.Mallows, psi rank.Ranking) float64 {
	total := 0.0
	rank.ForEachPermutation(ml.M(), func(tau rank.Ranking) bool {
		if tau.ConsistentWith(psi) {
			total += ml.Prob(tau)
		}
		return true
	})
	return total
}

func TestRejectionConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ml := rim.MustMallows(rank.Identity(5), 0.6)
	lab := label.NewLabeling()
	lab.Add(0, 0)
	lab.Add(3, 1)
	lab.Add(4, 1)
	u := pattern.Union{pattern.TwoLabel(label.NewSet(0), label.NewSet(1))}
	truth := solver.Brute(ml.Model(), lab, u)
	est := Rejection(ml, lab, u, 100000, rng)
	if math.Abs(est-truth) > 0.01 {
		t.Fatalf("rejection est %v, truth %v", est, truth)
	}
}

func TestRejectionUntilStops(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ml := rim.MustMallows(rank.Identity(4), 0.8)
	lab := label.NewLabeling()
	lab.Add(1, 0)
	lab.Add(2, 1)
	u := pattern.Union{pattern.TwoLabel(label.NewSet(0), label.NewSet(1))}
	truth := solver.Brute(ml.Model(), lab, u)
	est, n := RejectionUntil(ml, lab, u, truth, 0.02, 500, 1_000_000, rng)
	if n >= 1_000_000 {
		t.Fatalf("did not stop early (n=%d)", n)
	}
	if math.Abs(est-truth) > 0.03*truth {
		t.Fatalf("est %v vs truth %v after %d samples", est, truth, n)
	}
}

// ISAMP is unbiased for a single sub-ranking with a well-behaved posterior.
func TestISAMPUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ml := rim.MustMallows(rank.Identity(5), 0.5)
	psi := rank.Ranking{3, 1}
	truth := exactSubRanking(ml, psi)
	est, err := ISAMP(ml, psi, 60000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-truth) > 0.05*truth {
		t.Fatalf("ISAMP est %v, truth %v", est, truth)
	}
}

// Examples 5.1/5.2 of the paper: with small phi and psi0 = <s3, s1>, the
// posterior is bimodal. IS-AMP reaches the second modal only through a
// low-probability, huge-weight path, giving it far higher variance than
// MIS-AMP, whose greedy-modal proposals cover both peaks.
func TestMISAMPBeatsISAMPOnBimodal(t *testing.T) {
	phi := 0.001
	ml := rim.MustMallows(rank.Identity(3), phi)
	psi := rank.Ranking{2, 0}
	truth := exactSubRanking(ml, psi)

	const runs, n = 25, 1500
	var isEsts, misEsts []float64
	for r := 0; r < runs; r++ {
		isEst, err := ISAMP(ml, psi, n, rand.New(rand.NewSource(int64(400+r))))
		if err != nil {
			t.Fatal(err)
		}
		misEst, err := MISAMP(ml, psi, 0, n, rand.New(rand.NewSource(int64(800+r))))
		if err != nil {
			t.Fatal(err)
		}
		isEsts = append(isEsts, isEst)
		misEsts = append(misEsts, misEst)
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	std := func(xs []float64) float64 {
		mu, s := mean(xs), 0.0
		for _, x := range xs {
			s += (x - mu) * (x - mu)
		}
		return math.Sqrt(s / float64(len(xs)))
	}
	// MIS-AMP is accurate in every run; IS-AMP has much higher dispersion.
	if math.Abs(mean(misEsts)-truth) > 0.05*truth {
		t.Fatalf("MIS-AMP mean %v, truth %v", mean(misEsts), truth)
	}
	if std(isEsts) < 3*std(misEsts) {
		t.Fatalf("IS-AMP std %v not dominating MIS-AMP std %v (truth %v)",
			std(isEsts), std(misEsts), truth)
	}
}

// buildWorld constructs a deterministic instance whose union components are
// nearly disjoint rare events — the regime the compensation mechanism of
// MIS-AMP-lite is designed for (Section 5.5).
func buildWorld() (*rim.Mallows, *label.Labeling, pattern.Union, float64) {
	ml := rim.MustMallows(rank.Identity(6), 0.3)
	lab := label.NewLabeling()
	lab.Add(5, 0) // singleton labels on individual items
	lab.Add(0, 1)
	lab.Add(4, 2)
	lab.Add(1, 3)
	u := pattern.Union{
		pattern.TwoLabel(label.NewSet(0), label.NewSet(1)), // item5 > item0: rare
		pattern.TwoLabel(label.NewSet(2), label.NewSet(3)), // item4 > item1: rare
	}
	truth := solver.Brute(ml.Model(), lab, u)
	return ml, lab, u, truth
}

// buildOverlapWorld constructs an instance whose union components overlap
// heavily; full proposal coverage must still be exact in expectation.
func buildOverlapWorld() (*rim.Mallows, *label.Labeling, pattern.Union, float64) {
	ml := rim.MustMallows(rank.Identity(6), 0.4)
	lab := label.NewLabeling()
	lab.Add(4, 0)
	lab.Add(5, 0)
	lab.Add(0, 1)
	lab.Add(1, 1)
	lab.Add(2, 2)
	lab.Add(5, 3)
	u := pattern.Union{
		pattern.TwoLabel(label.NewSet(0), label.NewSet(1)), // {4,5} > {0,1}
		pattern.TwoLabel(label.NewSet(3), label.NewSet(2)), // item5 > item2
	}
	truth := solver.Brute(ml.Model(), lab, u)
	return ml, lab, u, truth
}

// With every sub-ranking covered by a proposal, the balance-heuristic
// mixture estimates Pr(G) without double counting, even for heavily
// overlapping unions (compensation factors are 1 at full coverage).
func TestEstimatorOverlapFullCoverage(t *testing.T) {
	ml, lab, u, truth := buildOverlapWorld()
	e, err := NewEstimator(ml, lab, u, Config{MaxModalsPerSub: 64})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	est, err := e.Estimate(1000, 3000, rng, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-truth) > 0.15*truth {
		t.Fatalf("full-coverage est %v, truth %v", est, truth)
	}
}

func TestEstimatorLiteAccuracy(t *testing.T) {
	ml, lab, u, truth := buildWorld()
	e, err := NewEstimator(ml, lab, u, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if e.NumSubRankings() == 0 {
		t.Fatal("no sub-rankings")
	}
	rng := rand.New(rand.NewSource(6))
	est, err := e.Estimate(10, 4000, rng, true)
	if err != nil {
		t.Fatal(err)
	}
	if truth <= 0 {
		t.Fatalf("degenerate truth %v", truth)
	}
	if math.Abs(est-truth) > 0.2*truth {
		t.Fatalf("lite est %v, truth %v (rel err %.2f)", est, truth, math.Abs(est-truth)/truth)
	}
	if e.Overhead() <= 0 {
		t.Fatal("overhead not recorded")
	}
	if e.SamplingTime() <= 0 {
		t.Fatal("sampling time not recorded")
	}
}

// With a single proposal in the rare-event regime (small phi, separated
// posterior peaks — the Benchmark-A/C setting of Figure 12), compensation
// must recover the probability mass of the pruned sub-rankings and modals.
func TestCompensationImproves(t *testing.T) {
	// Two adjacent-swap components, each with a unique greedy modal, in
	// disjoint regions of sigma: with d = 1 only one component is sampled
	// and c_psi = 2 restores the pruned component's mass.
	ml := rim.MustMallows(rank.Identity(6), 0.05)
	lab := label.NewLabeling()
	lab.Add(1, 0)
	lab.Add(0, 1)
	lab.Add(3, 2)
	lab.Add(2, 3)
	u := pattern.Union{
		pattern.TwoLabel(label.NewSet(0), label.NewSet(1)), // item1 > item0
		pattern.TwoLabel(label.NewSet(2), label.NewSet(3)), // item3 > item2
	}
	truth := solver.Brute(ml.Model(), lab, u)
	errWith, errWithout := 0.0, 0.0
	const runs = 12
	for r := 0; r < runs; r++ {
		e, err := NewEstimator(ml, lab, u, Config{})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(100 + r)))
		withC, err := e.Estimate(1, 1500, rng, true)
		if err != nil {
			t.Fatal(err)
		}
		rng2 := rand.New(rand.NewSource(int64(100 + r)))
		withoutC, err := e.Estimate(1, 1500, rng2, false)
		if err != nil {
			t.Fatal(err)
		}
		errWith += math.Abs(withC - truth)
		errWithout += math.Abs(withoutC - truth)
	}
	if errWith >= errWithout {
		t.Fatalf("compensation did not improve: with=%v without=%v (truth=%v)",
			errWith/runs, errWithout/runs, truth)
	}
}

func TestEstimatorAdaptive(t *testing.T) {
	ml, lab, u, truth := buildWorld()
	e, err := NewEstimator(ml, lab, u, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	res, err := e.EstimateAdaptive(AdaptiveConfig{Samples: 3000, Compensate: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 1 || len(res.History) != res.Rounds {
		t.Fatalf("bad diagnostics: %+v", res)
	}
	if math.Abs(res.Estimate-truth) > 0.25*truth {
		t.Fatalf("adaptive est %v, truth %v", res.Estimate, truth)
	}
}

func TestEstimatorUnsatisfiable(t *testing.T) {
	ml := rim.MustMallows(rank.Identity(3), 0.5)
	lab := label.NewLabeling()
	u := pattern.Union{pattern.TwoLabel(label.NewSet(0), label.NewSet(1))}
	e, err := NewEstimator(ml, lab, u, Config{})
	if err != nil {
		t.Fatal(err)
	}
	est, err := e.Estimate(5, 100, rand.New(rand.NewSource(1)), true)
	if err != nil || est != 0 {
		t.Fatalf("est=%v err=%v, want 0", est, err)
	}
	res, err := e.EstimateAdaptive(AdaptiveConfig{}, rand.New(rand.NewSource(1)))
	if err != nil || res.Estimate != 0 {
		t.Fatalf("adaptive est=%v err=%v, want 0", res.Estimate, err)
	}
}

func TestEstimatorRejectsPhiZero(t *testing.T) {
	ml := rim.MustMallows(rank.Identity(3), 0)
	if _, err := NewEstimator(ml, label.NewLabeling(), nil, Config{}); err == nil {
		t.Fatal("expected error for phi=0")
	}
}

func TestEstimatorInvalidArgs(t *testing.T) {
	ml, lab, u, _ := buildWorld()
	e, err := NewEstimator(ml, lab, u, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Estimate(0, 100, rand.New(rand.NewSource(1)), true); err == nil {
		t.Fatal("d=0 must be rejected")
	}
	if _, err := e.Estimate(1, 0, rand.New(rand.NewSource(1)), true); err == nil {
		t.Fatal("n=0 must be rejected")
	}
}

// The mixture estimator must be exact in expectation: with all sub-rankings
// covered by proposals, the estimate converges to Pr(G).
func TestEstimatorFullCoverageUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 5; trial++ {
		m := 4 + rng.Intn(2)
		sigma := make(rank.Ranking, m)
		for i, v := range rng.Perm(m) {
			sigma[i] = rank.Item(v)
		}
		ml := rim.MustMallows(sigma, 0.2+0.5*rng.Float64())
		lab := label.NewLabeling()
		for it := 0; it < m; it++ {
			if rng.Float64() < 0.5 {
				lab.Add(rank.Item(it), label.Label(rng.Intn(3)))
			}
		}
		u := pattern.Union{pattern.TwoLabel(
			label.NewSet(label.Label(rng.Intn(3))),
			label.NewSet(label.Label(rng.Intn(3))))}
		truth := solver.Brute(ml.Model(), lab, u)
		if truth < 1e-6 {
			continue
		}
		e, err := NewEstimator(ml, lab, u, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if e.NumSubRankings() == 0 {
			continue
		}
		est, err := e.Estimate(1000, 2000, rng, true) // d > pool: use all proposals
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est-truth) > 0.25*truth+0.01 {
			t.Fatalf("trial %d: est %v, truth %v", trial, est, truth)
		}
	}
}
