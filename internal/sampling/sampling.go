// Package sampling implements the paper's approximate solvers (Section 5)
// for the labeled RIM pattern-union inference problem over Mallows models:
//
//   - Rejection: plain Monte Carlo over MAL(sigma, phi); the baseline that
//     fails on rare events (Section 5.1, Figure 9).
//   - ISAMP: importance sampling for a single sub-ranking with one AMP
//     proposal centered at sigma (Section 5.3).
//   - MISAMP: multiple importance sampling for a single sub-ranking with
//     AMP proposals centered at the greedy modals (Section 5.4).
//   - Estimator (MIS-AMP-lite / MIS-AMP-adaptive): the full pattern-union
//     estimators with sub-ranking and modal pruning plus compensation
//     factors (Section 5.5).
//
// All estimators work in log space; importance weights use the balance
// heuristic of Veach and Guibas (Equations 5-7).
package sampling

import (
	"math"
)

// logSumExp returns log(sum(exp(xs))) stably, ignoring -Inf entries. Returns
// -Inf when all entries are -Inf.
func logSumExp(xs []float64) float64 {
	max := math.Inf(-1)
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	sum := 0.0
	for _, x := range xs {
		if !math.IsInf(x, -1) {
			sum += math.Exp(x - max)
		}
	}
	return max + math.Log(sum)
}
