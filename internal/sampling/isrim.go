package sampling

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rank"
	"probpref/internal/rim"
)

// ISRIM estimates Pr(tau consistent with psi) for an arbitrary RIM by
// importance sampling with the conditioned-RIM proposal (rim.ConditionedRIM
// — AMP generalized beyond Mallows). The proposal's support is exactly the
// set of rankings consistent with psi, and its exact density makes the
// re-weighted estimate unbiased. This extends the paper's single-sub-ranking
// estimator (Section 5.3) to any RIM, e.g. the Generalized Mallows model.
func ISRIM(model *rim.Model, psi rank.Ranking, n int, rng *rand.Rand) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("sampling: n must be positive (n=%d)", n)
	}
	cond, err := rim.NewConditionedRIM(model, rank.ChainOrder(psi))
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		x, logq, err := cond.Sample(rng)
		if err != nil {
			return 0, err
		}
		sum += math.Exp(model.LogProb(x) - logq)
	}
	return sum / float64(n), nil
}

// MISRIM estimates the pattern-union probability Pr(G) for an arbitrary RIM
// by multiple importance sampling: the union is decomposed into
// sub-rankings (Section 5.2), one conditioned-RIM proposal is built per
// sub-ranking, n samples are drawn from each, and weights follow the
// balance heuristic (Equation 6). When the decomposition is complete (not
// truncated by limits), the proposal mixture covers the entire satisfying
// set and the estimator is unbiased; a truncated decomposition yields a
// lower-bound estimate and is reported through the second return value.
//
// Unlike MIS-AMP-lite, MISRIM does not recenter proposals at posterior
// modals (the greedy-modal machinery is Mallows-specific); it trades some
// variance for applicability to every RIM.
func MISRIM(model *rim.Model, lab *label.Labeling, u pattern.Union, n int, rng *rand.Rand, limits pattern.Limits) (est float64, truncated bool, err error) {
	est, truncated, err = MISRIMCtx(context.Background(), model, lab, u, n, rng, limits)
	return est, truncated, err
}

// MISRIMCtx is MISRIM with mid-run cancellation: the sampling loop checks
// ctx periodically and aborts with its error.
func MISRIMCtx(ctx context.Context, model *rim.Model, lab *label.Labeling, u pattern.Union, n int, rng *rand.Rand, limits pattern.Limits) (est float64, truncated bool, err error) {
	if n <= 0 {
		return 0, false, fmt.Errorf("sampling: n must be positive (n=%d)", n)
	}
	dec, err := pattern.Decompose(u, lab, model.M(), limits)
	if err != nil {
		return 0, false, err
	}
	if len(dec.SubRankings) == 0 {
		return 0, dec.Truncated, nil
	}
	conds := make([]*rim.ConditionedRIM, len(dec.SubRankings))
	for t, psi := range dec.SubRankings {
		conds[t], err = rim.NewConditionedRIM(model, rank.ChainOrder(psi))
		if err != nil {
			return 0, dec.Truncated, err
		}
	}
	d := len(conds)
	logD := math.Log(float64(d))
	logqs := make([]float64, d)
	sum := 0.0
	done := ctx.Done()
	drawn := 0
	for _, c := range conds {
		for j := 0; j < n; j++ {
			if done != nil && drawn&127 == 0 {
				if cerr := ctx.Err(); cerr != nil {
					return 0, dec.Truncated, context.Cause(ctx)
				}
			}
			drawn++
			x, _, err := c.Sample(rng)
			if err != nil {
				return 0, dec.Truncated, err
			}
			for t, other := range conds {
				lq, ok := other.LogDensity(x)
				if !ok {
					lq = math.Inf(-1)
				}
				logqs[t] = lq
			}
			logMix := logSumExp(logqs) - logD
			sum += math.Exp(model.LogProb(x) - logMix)
		}
	}
	return sum / float64(d*n), dec.Truncated, nil
}
