package sampling

import (
	"probpref/internal/rank"
)

// GreedyModals implements Algorithm 5 of the paper: starting from the
// sub-ranking psi, insert every item of sigma not in psi at the positions
// that minimize the Kendall tau distance to sigma, branching on ties. The
// returned full rankings approximate the modals of the Mallows posterior
// conditioned on psi — the consistent completions closest to the center.
//
// maxModals caps the branching (0 means 64); the cap keeps the first
// candidates in deterministic insertion order.
func GreedyModals(psi rank.Ranking, sigma rank.Ranking, maxModals int) []rank.Ranking {
	if maxModals <= 0 {
		maxModals = 64
	}
	inPsi := psi.ItemSet()
	frontier := []rank.Ranking{psi.Clone()}
	for _, x := range sigma {
		if inPsi[x] {
			continue
		}
		var next []rank.Ranking
		seen := make(map[string]bool)
		for _, cur := range frontier {
			_, argmin := minInsertDistances(cur, x, sigma)
			for _, j := range argmin {
				cand := cur.Insert(x, j)
				k := cand.Key()
				if !seen[k] {
					seen[k] = true
					next = append(next, cand)
				}
				if len(next) >= maxModals {
					break
				}
			}
			if len(next) >= maxModals {
				break
			}
		}
		frontier = next
	}
	return frontier
}

// ApproximateDistance implements Algorithm 6 of the paper: complete psi to a
// full ranking by greedily inserting the missing items of sigma at
// distance-minimizing positions (taking the first position on ties), and
// return the Kendall tau distance of the completion to sigma. This estimates
// the distance between the sub-ranking and the Mallows center — the distance
// of the nearest modal contained in psi, whose exact computation is
// intractable.
func ApproximateDistance(psi rank.Ranking, sigma rank.Ranking) int {
	inPsi := psi.ItemSet()
	tau := psi.Clone()
	for _, x := range sigma {
		if inPsi[x] {
			continue
		}
		_, argmin := minInsertDistances(tau, x, sigma)
		tau = tau.Insert(x, argmin[0])
	}
	return rank.KendallTau(tau, sigma)
}

// minInsertDistances returns the minimal Kendall-tau-to-sigma distance over
// all insertion positions of x into cur, and every argmin position. The
// incremental distance of inserting at position j differs from inserting at
// j+1 by whether cur[j] and x agree with sigma, so a single O(k) sweep
// suffices.
func minInsertDistances(cur rank.Ranking, x rank.Item, sigma rank.Ranking) (int, []int) {
	posSigma := make(map[rank.Item]int, len(sigma))
	for p, it := range sigma {
		posSigma[it] = p
	}
	px := posSigma[x]
	// delta[j] = number of disagreements x introduces when inserted at j:
	// items before it that sigma places after x, plus items after it that
	// sigma places before x.
	k := len(cur)
	// Start at j = 0: everything is after x.
	d := 0
	for _, y := range cur {
		if posSigma[y] < px {
			d++
		}
	}
	best := d
	argmin := []int{0}
	for j := 1; j <= k; j++ {
		y := cur[j-1] // item that moves from "after x" to "before x"
		if posSigma[y] < px {
			d--
		} else {
			d++
		}
		if d < best {
			best = d
			argmin = argmin[:0]
			argmin = append(argmin, j)
		} else if d == best {
			argmin = append(argmin, j)
		}
	}
	return best, argmin
}
