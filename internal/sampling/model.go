package sampling

import (
	"context"
	"math"
	"math/rand"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rim"
)

// RejectionModel estimates the pattern-union probability Pr(G) for any
// ranking model by drawing n rankings and counting matches. It is the only
// generally applicable estimator for models that are not RIMs (e.g.
// Plackett-Luce); for Mallows models prefer the MIS-AMP estimators, which
// resolve rare events with far fewer samples.
func RejectionModel(mdl rim.Sampler, lab *label.Labeling, u pattern.Union, n int, rng *rand.Rand) float64 {
	est, _, _ := RejectionModelCICtx(context.Background(), mdl, lab, u, n, 1.96, rng)
	return est
}

// RejectionModelCI estimates Pr(G) as RejectionModel does and returns the
// half-width of the normal-approximation confidence interval at the given
// z-score (z = 1.96 for 95%). The half-width is conservative (Wald interval
// with a half-count continuity floor) so callers can report uncertainty next
// to the point estimate.
func RejectionModelCI(mdl rim.Sampler, lab *label.Labeling, u pattern.Union, n int, z float64, rng *rand.Rand) (est, halfWidth float64) {
	est, halfWidth, _ = RejectionModelCICtx(context.Background(), mdl, lab, u, n, z, rng)
	return est, halfWidth
}

// RejectionModelCICtx is RejectionModelCI with mid-run cancellation: the
// sampling loop checks ctx periodically and returns ctx's error with the
// partial estimate over the samples drawn so far. On success err is nil and
// the estimate covers all n samples.
func RejectionModelCICtx(ctx context.Context, mdl rim.Sampler, lab *label.Labeling, u pattern.Union, n int, z float64, rng *rand.Rand) (est, halfWidth float64, err error) {
	if n <= 0 {
		return 0, 1, nil
	}
	done := ctx.Done()
	hits, drawn := 0, 0
	for i := 0; i < n; i++ {
		if done != nil && i&255 == 0 {
			if cerr := ctx.Err(); cerr != nil {
				err = context.Cause(ctx)
				break
			}
		}
		drawn++
		if u.Matches(mdl.Sample(rng), lab) {
			hits++
		}
	}
	if drawn == 0 {
		return 0, 1, err
	}
	est = float64(hits) / float64(drawn)
	p := est
	if hits == 0 || hits == drawn {
		p = (float64(hits) + 0.5) / (float64(drawn) + 1) // continuity floor
	}
	halfWidth = z * math.Sqrt(p*(1-p)/float64(drawn))
	return est, halfWidth, err
}
