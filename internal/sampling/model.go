package sampling

import (
	"math"
	"math/rand"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rim"
)

// RejectionModel estimates the pattern-union probability Pr(G) for any
// ranking model by drawing n rankings and counting matches. It is the only
// generally applicable estimator for models that are not RIMs (e.g.
// Plackett-Luce); for Mallows models prefer the MIS-AMP estimators, which
// resolve rare events with far fewer samples.
func RejectionModel(mdl rim.Sampler, lab *label.Labeling, u pattern.Union, n int, rng *rand.Rand) float64 {
	if n <= 0 {
		return 0
	}
	hits := 0
	for i := 0; i < n; i++ {
		if u.Matches(mdl.Sample(rng), lab) {
			hits++
		}
	}
	return float64(hits) / float64(n)
}

// RejectionModelCI estimates Pr(G) as RejectionModel does and returns the
// half-width of the normal-approximation confidence interval at the given
// z-score (z = 1.96 for 95%). The half-width is conservative (Wald interval
// with a half-count continuity floor) so callers can report uncertainty next
// to the point estimate.
func RejectionModelCI(mdl rim.Sampler, lab *label.Labeling, u pattern.Union, n int, z float64, rng *rand.Rand) (est, halfWidth float64) {
	if n <= 0 {
		return 0, 1
	}
	hits := 0
	for i := 0; i < n; i++ {
		if u.Matches(mdl.Sample(rng), lab) {
			hits++
		}
	}
	est = float64(hits) / float64(n)
	p := est
	if hits == 0 || hits == n {
		p = (float64(hits) + 0.5) / (float64(n) + 1) // continuity floor
	}
	halfWidth = z * math.Sqrt(p*(1-p)/float64(n))
	return est, halfWidth
}
