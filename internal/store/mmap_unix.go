//go:build unix

package store

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// mmapFile maps path read-only and returns the bytes plus an unmap
// function. When the mapping fails (filesystem without mmap support) it
// falls back to reading the file into memory.
func mmapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, nil, nil
	}
	if size > math.MaxInt {
		return nil, nil, fmt.Errorf("store: %s is %d bytes, too large to map", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		b, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, nil, rerr
		}
		return b, nil, nil
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
