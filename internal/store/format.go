// Package store implements the .ppds columnar snapshot format for RIM-PPD
// models: a versioned, checksummed, mmap-able on-disk layout holding the
// o-relations, the p-relation catalog and every session's RIM
// materialization (reference ranking and packed float64 insertion matrix)
// in columnar sections.
//
// A file is little-endian throughout and laid out as
//
//	[0,8)    magic "PPDSTOR1"
//	[8,12)   version   uint32 (currently 1)
//	[12,16)  flags     uint32 (bit 0: payload is little-endian; always set)
//	[16,24)  file size uint64 (must equal the real size — detects truncation)
//	[24,28)  section count uint32
//	[28,32)  reserved  uint32 (zero)
//	[32,40)  header CRC-64/ECMA over bytes [0,32) and the section table
//	[40,..)  section table: count entries of 32 bytes each
//	         {id uint32, reserved uint32, offset uint64, length uint64, crc64}
//	[..,EOF) section payloads, each starting at an 8-byte-aligned offset and
//	         zero-padded to the next multiple of 8 (the CRC covers only the
//	         declared length)
//
// Version 1 defines exactly five sections, each present exactly once:
//
//	meta    (1): JSON header — item count m, demo query, o-relations,
//	             p-relation names/attrs/session counts
//	sigma   (2): int32 column, m values per session: the reference ranking
//	pi      (3): float64 column, m(m+1)/2 values per session: the insertion
//	             matrix rows Pi[0..m-1] concatenated
//	keyoff  (4): uint32 column, one offset per session-key string plus a
//	             terminator, indexing into keydat
//	keydat  (5): raw bytes of all session-key strings, concatenated
//
// Sessions are stored across p-relations in p-relation name order, then
// session index order, so each p-relation owns a contiguous window of every
// column. The 8-byte alignment lets the reader serve sigma and pi as
// zero-copy views straight over the mapping on little-endian hosts; other
// hosts fall back to a decoded copy.
package store

import (
	"errors"
	"hash/crc64"
)

// Magic is the 8-byte signature opening every .ppds file.
const Magic = "PPDSTOR1"

// Version is the format version this package reads and writes.
const Version = 1

const (
	headerSize = 40
	entrySize  = 32

	// flagLittleEndian marks the payload byte order. Writers always set it;
	// the reader rejects files without it rather than guess.
	flagLittleEndian = 1 << 0
	knownFlags       = flagLittleEndian

	offVersion  = 8
	offFlags    = 12
	offFileSize = 16
	offCount    = 24
	offReserved = 28
	offCRC      = 32
)

// Section ids of format version 1.
const (
	secMeta   = 1
	secSigma  = 2
	secPi     = 3
	secKeyOff = 4
	secKeyDat = 5
	nSections = 5
)

// Decoder hard limits. They bound allocation before any size cross-check,
// so a hostile header can never make Open allocate more than a small
// multiple of the input length.
const (
	maxM        = 1 << 15 // items per model
	maxSessions = 1 << 31 // sessions per file
	maxAttrs    = 1 << 12 // session attributes per p-relation
)

// Typed decode errors. Every failure of Open/OpenBytes wraps exactly one of
// these, so callers (and the corruption tests) can classify with errors.Is.
var (
	// ErrBadMagic reports a file that does not start with Magic.
	ErrBadMagic = errors.New("store: bad magic")
	// ErrVersion reports an unsupported format version or unknown flags.
	ErrVersion = errors.New("store: unsupported version")
	// ErrChecksum reports a header or section CRC mismatch.
	ErrChecksum = errors.New("store: checksum mismatch")
	// ErrTruncated reports a file shorter than its declared sizes.
	ErrTruncated = errors.New("store: truncated file")
	// ErrFormat reports any other structural violation: overlapping or
	// misaligned sections, inconsistent counts, invalid meta, non-stochastic
	// insertion rows.
	ErrFormat = errors.New("store: malformed file")
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// metaJSON is the decoded meta section.
type metaJSON struct {
	// M is the item count; every session model ranges over 0..M-1.
	M int `json:"m"`
	// Demo is the model's demo query, free-form (may be empty).
	Demo string `json:"demo,omitempty"`
	// Items names the item relation among Relations.
	Items string `json:"items"`
	// Relations holds every o-relation, item relation first, rest sorted by
	// name.
	Relations []relationJSON `json:"relations"`
	// Prefs holds every p-relation sorted by name; the order fixes each
	// relation's window in the session columns.
	Prefs []prefJSON `json:"prefs"`
	// Partition, when present, marks a partition file holding the contiguous
	// session range ppd.PartitionRange(total, Index, Count) of every
	// p-relation; each pref then records its full-model session count in
	// Total. Absent (and omitted from the JSON) in whole-model files, so
	// files written before the field existed decode unchanged.
	Partition *partitionJSON `json:"partition,omitempty"`
	// WALSeq, when non-zero, records the last write-ahead-log sequence
	// number whose batch this snapshot includes: replay-on-startup skips
	// records at or below it, so a crash between snapshot write and WAL
	// compaction never applies a batch twice. Absent (and omitted from the
	// JSON) in snapshots written outside a WAL-backed registry, so files
	// written before the field existed decode unchanged.
	WALSeq uint64 `json:"wal_seq,omitempty"`
}

// partitionJSON identifies which slice of the full model a partition file
// holds.
type partitionJSON struct {
	// Index is the partition number, 0 <= Index < Count.
	Index int `json:"index"`
	// Count is the total number of partitions the model was split into.
	Count int `json:"count"`
}

type relationJSON struct {
	Name   string     `json:"name"`
	Attrs  []string   `json:"attrs"`
	Tuples [][]string `json:"tuples"`
}

type prefJSON struct {
	Name         string   `json:"name"`
	SessionAttrs []string `json:"attrs"`
	Sessions     int      `json:"sessions"`
	// Total is the full-model session count of the p-relation; set (non-zero
	// sessions permitting) only in partition files, where Sessions counts
	// just this file's slice and must equal the PartitionRange window of
	// Total.
	Total int `json:"total,omitempty"`
}

// tri returns the number of packed insertion-matrix entries per session,
// 1+2+...+m.
func tri(m int) int { return m * (m + 1) / 2 }

// align8 rounds n up to the next multiple of 8.
func align8(n uint64) uint64 { return (n + 7) &^ 7 }
