package store_test

import (
	"os"
	"path/filepath"
	"testing"

	"probpref/internal/dataset"
	"probpref/internal/store"
)

// Cold-start benchmarks: generator build vs snapshot open for the same
// model. The numbers back the README's cold-start table — regenerate them
// with `go test -bench BenchmarkColdStart ./internal/store`.

func coldStartConfig(b *testing.B) dataset.BuildConfig {
	b.Helper()
	return dataset.BuildConfig{Name: "crowdrank", Workers: 2000, Seed: 7}
}

func BenchmarkColdStartGenerator(b *testing.B) {
	cfg := coldStartConfig(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := dataset.Build(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColdStartSnapshot(b *testing.B) {
	db, demo, err := dataset.Build(coldStartConfig(b))
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "model.ppds")
	if err := store.WriteFile(path, db, demo); err != nil {
		b.Fatal(err)
	}
	if fi, err := os.Stat(path); err == nil {
		b.Logf("snapshot size: %d bytes", fi.Size())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := store.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		if s.Sessions() == 0 {
			b.Fatal("empty store")
		}
		s.Close()
	}
}
