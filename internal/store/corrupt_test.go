package store_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc64"
	"testing"

	"probpref/internal/dataset"
	"probpref/internal/store"
)

// snapshotBytes serializes the Figure 1 database once per test.
func snapshotBytes(t *testing.T) []byte {
	t.Helper()
	db, demo, err := dataset.Build(dataset.BuildConfig{Name: "figure1"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := store.Write(&buf, db, demo); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// mutate returns a copy of b with f applied.
func mutate(b []byte, f func([]byte)) []byte {
	c := bytes.Clone(b)
	f(c)
	return c
}

// wantErr asserts OpenBytes fails with exactly the given typed error.
func wantErr(t *testing.T, what string, data []byte, sentinel error) {
	t.Helper()
	_, err := store.OpenBytes(data)
	if err == nil {
		t.Fatalf("%s: decode succeeded, want %v", what, sentinel)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("%s: got %v, want %v", what, err, sentinel)
	}
}

// sections parses the section table of a valid snapshot: id -> (offset,
// length). Test-side mirror of the reader, kept deliberately dumb.
func sections(t *testing.T, b []byte) map[uint32][2]uint64 {
	t.Helper()
	count := binary.LittleEndian.Uint32(b[24:])
	out := make(map[uint32][2]uint64, count)
	for i := uint32(0); i < count; i++ {
		e := b[40+32*i:]
		out[binary.LittleEndian.Uint32(e)] = [2]uint64{
			binary.LittleEndian.Uint64(e[8:]),
			binary.LittleEndian.Uint64(e[16:]),
		}
	}
	return out
}

func TestCorruptHeader(t *testing.T) {
	b := snapshotBytes(t)

	wantErr(t, "empty", nil, store.ErrTruncated)
	wantErr(t, "half magic", b[:4], store.ErrTruncated)
	wantErr(t, "bad magic", mutate(b, func(c []byte) { c[0] ^= 0xFF }), store.ErrBadMagic)
	wantErr(t, "future version", mutate(b, func(c []byte) {
		binary.LittleEndian.PutUint32(c[8:], 2)
	}), store.ErrVersion)
	wantErr(t, "unknown flag", mutate(b, func(c []byte) {
		binary.LittleEndian.PutUint32(c[12:], binary.LittleEndian.Uint32(c[12:])|0x80)
	}), store.ErrVersion)
	wantErr(t, "big-endian payload", mutate(b, func(c []byte) {
		binary.LittleEndian.PutUint32(c[12:], 0)
	}), store.ErrVersion)
	wantErr(t, "oversized declared size", mutate(b, func(c []byte) {
		binary.LittleEndian.PutUint64(c[16:], uint64(len(c))+8)
	}), store.ErrTruncated)
	wantErr(t, "trailing bytes", append(bytes.Clone(b), 0xAA), store.ErrFormat)
	wantErr(t, "reserved field set", mutate(b, func(c []byte) {
		binary.LittleEndian.PutUint32(c[28:], 1)
	}), store.ErrFormat)
	wantErr(t, "wrong section count", mutate(b, func(c []byte) {
		binary.LittleEndian.PutUint32(c[24:], 7)
	}), store.ErrFormat)
	wantErr(t, "header CRC flipped", mutate(b, func(c []byte) { c[33] ^= 1 }), store.ErrChecksum)
	wantErr(t, "section table bit flipped", mutate(b, func(c []byte) { c[40+17] ^= 1 }), store.ErrChecksum)
}

// TestTruncateEverySectionBoundary cuts the file at the start and end of
// every section (and inside the header): every cut must surface as
// ErrTruncated, never as a panic or a partial decode.
func TestTruncateEverySectionBoundary(t *testing.T) {
	b := snapshotBytes(t)
	cuts := []int{0, 4, 8, 20, 39, 40, 40 + 32}
	for _, s := range sections(t, b) {
		cuts = append(cuts, int(s[0]), int(s[0]+s[1]))
	}
	for _, cut := range cuts {
		if cut >= len(b) {
			continue
		}
		wantErr(t, "truncated", b[:cut], store.ErrTruncated)
	}
}

// TestCorruptSectionPayloads flips one byte in every section: each must be
// caught by that section's checksum.
func TestCorruptSectionPayloads(t *testing.T) {
	b := snapshotBytes(t)
	for id, s := range sections(t, b) {
		if s[1] == 0 {
			continue
		}
		c := mutate(b, func(c []byte) { c[s[0]+s[1]/2] ^= 0x40 })
		wantErr(t, "payload flip", c, store.ErrChecksum)
		_ = id
	}
}

// TestCorruptStructure rewrites section table geometry with a recomputed
// valid header CRC, so the structural checks themselves are exercised
// (rather than the checksum shortcut).
func TestCorruptStructure(t *testing.T) {
	b := snapshotBytes(t)
	// rehdr fixes up the header CRC after a table edit. CRC-64/ECMA is part
	// of the format contract, so the test mirrors it directly.
	rehdr := func(c []byte) {
		h := crc64.New(crc64.MakeTable(crc64.ECMA))
		h.Write(c[:32])
		h.Write(c[40 : 40+5*32])
		binary.LittleEndian.PutUint64(c[32:], h.Sum64())
	}
	wantErr(t, "misaligned section", mutate(b, func(c []byte) {
		off := binary.LittleEndian.Uint64(c[40+8:])
		binary.LittleEndian.PutUint64(c[40+8:], off+4)
		rehdr(c)
	}), store.ErrFormat)
	wantErr(t, "duplicate section id", mutate(b, func(c []byte) {
		binary.LittleEndian.PutUint32(c[40+32:], 1) // second entry claims id 1
		rehdr(c)
	}), store.ErrFormat)
	wantErr(t, "unknown section id", mutate(b, func(c []byte) {
		binary.LittleEndian.PutUint32(c[40:], 9)
		rehdr(c)
	}), store.ErrFormat)
	wantErr(t, "section past EOF", mutate(b, func(c []byte) {
		binary.LittleEndian.PutUint64(c[40+16:], uint64(len(c)))
		rehdr(c)
	}), store.ErrTruncated)
	wantErr(t, "overlapping sections", mutate(b, func(c []byte) {
		// Point section 2 at section 3's window (same offset).
		off3 := binary.LittleEndian.Uint64(c[40+2*32+8:])
		binary.LittleEndian.PutUint64(c[40+32+8:], off3)
		rehdr(c)
	}), store.ErrFormat)
}
