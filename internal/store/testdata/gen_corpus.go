//go:build ignore

// gen_corpus regenerates the committed seed corpus of FuzzStoreOpen:
//
//	go run ./internal/store/testdata/gen_corpus.go
//
// It writes one corpus file per entry into
// internal/store/testdata/fuzz/FuzzStoreOpen, in the native Go fuzzing
// corpus encoding. Entries are a valid Figure 1 snapshot plus targeted
// corruptions of each validation path, so the mutator starts at every
// branch of the decoder.
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"probpref/internal/dataset"
	"probpref/internal/store"
)

func main() {
	dir := filepath.Join("internal", "store", "testdata", "fuzz", "FuzzStoreOpen")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	db, demo, err := dataset.Build(dataset.BuildConfig{Name: "figure1"})
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := store.Write(&buf, db, demo); err != nil {
		log.Fatal(err)
	}
	valid := buf.Bytes()

	var pbuf bytes.Buffer
	if err := store.WritePartition(&pbuf, db, demo, 1, 2); err != nil {
		log.Fatal(err)
	}
	part := pbuf.Bytes()

	mut := func(f func(c []byte)) []byte {
		c := bytes.Clone(valid)
		f(c)
		return c
	}
	// pmut edits the partition file's meta JSON in place (same-length
	// replacement, checksums left stale on purpose — the mutator explores
	// both the checksum and, via further mutation, the structural paths).
	pmut := func(old, new string) []byte {
		c := bytes.Clone(part)
		i := bytes.Index(c, []byte(old))
		if i < 0 {
			log.Fatalf("partition meta does not contain %q", old)
		}
		copy(c[i:], new)
		return c
	}
	entries := map[string][]byte{
		"valid":         valid,
		"empty":         {},
		"magic_only":    []byte(store.Magic),
		"bad_magic":     mut(func(c []byte) { c[0] ^= 0xFF }),
		"bad_version":   mut(func(c []byte) { binary.LittleEndian.PutUint32(c[8:], 99) }),
		"bad_flags":     mut(func(c []byte) { binary.LittleEndian.PutUint32(c[12:], 0xFFFF) }),
		"bad_filesize":  mut(func(c []byte) { binary.LittleEndian.PutUint64(c[16:], 1<<40) }),
		"bad_count":     mut(func(c []byte) { binary.LittleEndian.PutUint32(c[24:], 64) }),
		"bad_crc":       mut(func(c []byte) { c[33] ^= 1 }),
		"bad_table":     mut(func(c []byte) { c[40+8] ^= 1 }),
		"bad_payload":   mut(func(c []byte) { c[len(c)-1] ^= 1 }),
		"truncated_mid": valid[:len(valid)/2],
		"header_only":   valid[:40],

		// Partitioned headers: a valid partition file plus range-boundary
		// corruptions of the partition index, count and full-model total.
		"valid_partition":     part,
		"partition_bad_index": pmut(`"index":1,"count":2`, `"index":7,"count":2`),
		"partition_bad_count": pmut(`"index":1,"count":2`, `"index":1,"count":0`),
		"partition_bad_range": pmut(`"index":1,"count":2`, `"index":0,"count":2`),
		"partition_bad_total": pmut(`"total":3`, `"total":9`),
		"partition_no_header": pmut(`"partition":{`, `"partitioX":{`),
		"partition_truncated": part[:len(part)/2],
	}
	for name, data := range entries {
		path := filepath.Join(dir, name)
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
	}
}
