package store_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"probpref/internal/dataset"
	"probpref/internal/ppd"
	"probpref/internal/store"
)

// fixture is one generator output to round-trip.
type fixture struct {
	name   string
	db     *ppd.DB
	demo   string
	aggRel string // "" = skip the aggregate kind
}

// fixtures builds every dataset generator at a small size.
func fixtures(t *testing.T) []fixture {
	t.Helper()
	cfgs := []dataset.BuildConfig{
		{Name: "figure1"},
		{Name: "polls", Seed: 7, Candidates: 5, Voters: 6},
		{Name: "movielens", Seed: 11, Movies: 8},
		{Name: "crowdrank", Seed: 13, Workers: 4, Movies: 6},
	}
	aggRels := map[string]string{"figure1": "V", "polls": "V", "crowdrank": "V"}
	var out []fixture
	for _, cfg := range cfgs {
		db, demo, err := dataset.Build(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		out = append(out, fixture{name: cfg.Name, db: db, demo: demo, aggRel: aggRels[cfg.Name]})
	}
	return out
}

// reopen serializes db and decodes it back in memory.
func reopen(t *testing.T, db *ppd.DB, demo string) *store.Store {
	t.Helper()
	var buf bytes.Buffer
	if err := store.Write(&buf, db, demo); err != nil {
		t.Fatal(err)
	}
	s, err := store.OpenBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRoundTripColumns checks that every relation, session key, reference
// ranking and insertion-matrix entry survives Write→Open bit-identically.
func TestRoundTripColumns(t *testing.T) {
	for _, fx := range fixtures(t) {
		t.Run(fx.name, func(t *testing.T) {
			s := reopen(t, fx.db, fx.demo)
			got := s.DB()
			if s.Demo() != fx.demo {
				t.Errorf("demo %q, want %q", s.Demo(), fx.demo)
			}
			if got.M() != fx.db.M() {
				t.Fatalf("m = %d, want %d", got.M(), fx.db.M())
			}
			if len(got.Relations) != len(fx.db.Relations) {
				t.Fatalf("relations = %d, want %d", len(got.Relations), len(fx.db.Relations))
			}
			for name, want := range fx.db.Relations {
				gr, ok := got.Relations[name]
				if !ok {
					t.Fatalf("relation %q missing", name)
				}
				wb, _ := json.Marshal(want)
				gb, _ := json.Marshal(gr)
				if !bytes.Equal(wb, gb) {
					t.Errorf("relation %q differs", name)
				}
			}
			if len(got.Prefs) != len(fx.db.Prefs) {
				t.Fatalf("prefs = %d, want %d", len(got.Prefs), len(fx.db.Prefs))
			}
			total := 0
			for name, want := range fx.db.Prefs {
				gp, ok := got.Prefs[name]
				if !ok {
					t.Fatalf("p-relation %q missing", name)
				}
				if gp.Sessions.Len() != want.Sessions.Len() {
					t.Fatalf("%s sessions = %d, want %d", name, gp.Sessions.Len(), want.Sessions.Len())
				}
				total += gp.Sessions.Len()
				for i, ws := range want.Sessions.All() {
					gs := gp.Sessions.At(i)
					if len(gs.Key) != len(ws.Key) {
						t.Fatalf("%s session %d key arity", name, i)
					}
					for a := range ws.Key {
						if gs.Key[a] != ws.Key[a] {
							t.Fatalf("%s session %d key %q, want %q", name, i, gs.Key[a], ws.Key[a])
						}
					}
					wm, gm := ws.Model.Model(), gs.Model.Model()
					for j, it := range wm.Sigma() {
						if gm.Sigma()[j] != it {
							t.Fatalf("%s session %d sigma[%d] = %d, want %d", name, i, j, gm.Sigma()[j], it)
						}
					}
					for j := 0; j < wm.M(); j++ {
						wr, gr := wm.PiRow(j), gm.PiRow(j)
						for k := range wr {
							if math.Float64bits(wr[k]) != math.Float64bits(gr[k]) {
								t.Fatalf("%s session %d Pi[%d][%d] = %x, want %x",
									name, i, j, k, math.Float64bits(gr[k]), math.Float64bits(wr[k]))
							}
						}
					}
					if wm.Rehash() != gm.Rehash() {
						t.Fatalf("%s session %d rehash differs", name, i)
					}
				}
			}
			if s.Sessions() != total {
				t.Errorf("Sessions() = %d, want %d", s.Sessions(), total)
			}
		})
	}
}

// canonResponse projects a Response to a pointer-free form whose JSON
// serialization is injective on the float64 payloads, so byte equality
// means bit-identical answers.
func canonResponse(t *testing.T, r *ppd.Response) []byte {
	t.Helper()
	rows := func(sps []ppd.SessionProb) []map[string]any {
		out := make([]map[string]any, len(sps))
		for i, sp := range sps {
			out[i] = map[string]any{"key": sp.Session.Key, "prob": sp.Prob}
		}
		return out
	}
	m := map[string]any{
		"kind": r.Kind.String(), "prob": r.Prob, "count": r.Count,
		"per": rows(r.PerSession), "top": rows(r.Top),
		"solves": r.Solves, "cacheHits": r.CacheHits,
	}
	if r.Agg != nil {
		m["agg"] = *r.Agg
	}
	if r.Dist != nil {
		m["dist"] = map[string]any{"pmf": r.Dist.PMF, "probs": r.Dist.Probs}
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// kindRequests builds the full Request kind matrix for one fixture.
func kindRequests(fx fixture) []*ppd.Request {
	reqs := []*ppd.Request{
		{Kind: ppd.KindBool, Query: fx.demo},
		{Kind: ppd.KindCount, Query: fx.demo},
		{Kind: ppd.KindTopK, Query: fx.demo, K: 2, BoundEdges: 1},
		{Kind: ppd.KindCountDist, Query: fx.demo},
	}
	if fx.aggRel != "" {
		reqs = append(reqs, &ppd.Request{Kind: ppd.KindAggregate, Query: fx.demo, AggRel: fx.aggRel, AggAttr: "age"})
	}
	return reqs
}

// TestRoundTripResponsesBitIdentical runs the full request kind matrix
// against the RAM-built database and its reopened snapshot: every Response
// must match bit for bit, including per-session rows and solver counts (the
// snapshot must preserve session grouping).
func TestRoundTripResponsesBitIdentical(t *testing.T) {
	ctx := context.Background()
	for _, fx := range fixtures(t) {
		t.Run(fx.name, func(t *testing.T) {
			s := reopen(t, fx.db, fx.demo)
			for _, req := range kindRequests(fx) {
				ram, err := (&ppd.Engine{DB: fx.db, Method: ppd.MethodAuto}).Do(ctx, req)
				if err != nil {
					t.Fatalf("%v on RAM db: %v", req.Kind, err)
				}
				disk, err := (&ppd.Engine{DB: s.DB(), Method: ppd.MethodAuto}).Do(ctx, req)
				if err != nil {
					t.Fatalf("%v on store db: %v", req.Kind, err)
				}
				rb, db := canonResponse(t, ram), canonResponse(t, disk)
				if !bytes.Equal(rb, db) {
					t.Errorf("%v responses differ\n-- ram --\n%s\n-- store --\n%s", req.Kind, rb, db)
				}
			}
		})
	}
}

// TestWriteDeterministic pins snapshot bytes: writing the same database
// twice must produce identical files (the registry rewrites snapshots and
// must not churn them).
func TestWriteDeterministic(t *testing.T) {
	fx := fixtures(t)[0]
	var a, b bytes.Buffer
	if err := store.Write(&a, fx.db, fx.demo); err != nil {
		t.Fatal(err)
	}
	if err := store.Write(&b, fx.db, fx.demo); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two writes of the same database differ")
	}
}

// TestOpenFile exercises the mmap path: WriteFile, Open, answer a query,
// Close.
func TestOpenFile(t *testing.T) {
	fx := fixtures(t)[0]
	path := filepath.Join(t.TempDir(), "fig1.ppds")
	if err := store.WriteFile(path, fx.db, fx.demo); err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := (&ppd.Engine{DB: s.DB(), Method: ppd.MethodAuto}).Do(
		context.Background(), &ppd.Request{Kind: ppd.KindBool, Query: fx.demo})
	if err != nil {
		t.Fatal(err)
	}
	want, err := (&ppd.Engine{DB: fx.db, Method: ppd.MethodAuto}).Do(
		context.Background(), &ppd.Request{Kind: ppd.KindBool, Query: fx.demo})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(resp.Prob) != math.Float64bits(want.Prob) {
		t.Fatalf("prob %v, want %v", resp.Prob, want.Prob)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestWriteFileAtomic checks that a failing Write never leaves anything at
// the target path — neither a new partial file nor a clobbered old one —
// and leaves no temp droppings behind.
func TestWriteFileAtomic(t *testing.T) {
	fx := fixtures(t)[0]
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ppds")

	// A malformed database: a session whose key arity disagrees with the
	// p-relation, smuggled in past validation. Write must reject it.
	bad, _, err := dataset.Build(dataset.BuildConfig{Name: "figure1"})
	if err != nil {
		t.Fatal(err)
	}
	good := bad.Prefs["P"].Sessions.At(0)
	if err := bad.AddPrefRelationUnchecked(&ppd.PrefRelation{
		Name:         "Q",
		SessionAttrs: []string{"a", "b"},
		Sessions:     ppd.SessionSlice{{Key: []string{"only-one"}, Model: good.Model}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := store.WriteFile(path, bad, ""); err == nil {
		t.Fatal("want error writing malformed database")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("failed write left a file at %s", path)
	}

	// With a good snapshot in place, a failing overwrite keeps it intact.
	if err := store.WriteFile(path, fx.db, fx.demo); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WriteFile(path, bad, ""); err == nil {
		t.Fatal("want error overwriting with malformed database")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed overwrite changed the existing snapshot")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != "model.ppds" {
			t.Fatalf("leftover file %q after failed writes", e.Name())
		}
	}
}
