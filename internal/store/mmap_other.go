//go:build !unix

package store

import "os"

// mmapFile reads path into memory on platforms without a POSIX mmap.
func mmapFile(path string) ([]byte, func() error, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return b, nil, nil
}
