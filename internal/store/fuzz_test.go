package store_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"probpref/internal/dataset"
	"probpref/internal/store"
)

// FuzzStoreOpen throws arbitrary bytes at the snapshot decoder. The
// contract under fuzzing: OpenBytes never panics, never allocates
// unboundedly, and every failure classifies as exactly one of the typed
// format errors. When a mutated input does decode, walking every session of
// the resulting database must be safe too — the decoder's structural checks
// (permutation references, monotone key offsets, stochastic rows) are what
// make that true.
//
// The committed corpus under testdata/fuzz/FuzzStoreOpen (regenerate with
// `go run ./internal/store/testdata/gen_corpus.go`) seeds the mutator with
// a valid snapshot and targeted corruptions of each header field; f.Add
// contributes degenerate prefixes.
func FuzzStoreOpen(f *testing.F) {
	db, demo, err := dataset.Build(dataset.BuildConfig{Name: "figure1"})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := store.Write(&buf, db, demo); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add([]byte{})
	f.Add([]byte(store.Magic))
	f.Add(valid[:20])
	f.Add(bytes.Clone(valid))
	short := bytes.Clone(valid)
	binary.LittleEndian.PutUint64(short[16:], 1<<40) // absurd declared size
	f.Add(short)
	// A partitioned header seeds the mutator at the range-boundary checks.
	var pbuf bytes.Buffer
	if err := store.WritePartition(&pbuf, db, demo, 1, 2); err != nil {
		f.Fatal(err)
	}
	f.Add(pbuf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := store.OpenBytes(data)
		if err != nil {
			for _, sentinel := range []error{
				store.ErrBadMagic, store.ErrVersion, store.ErrChecksum,
				store.ErrTruncated, store.ErrFormat,
			} {
				if errors.Is(err, sentinel) {
					return
				}
			}
			t.Fatalf("untyped decode error: %v", err)
		}
		// A successful decode must yield a fully walkable database.
		d := s.DB()
		if d == nil || d.M() < 1 {
			t.Fatal("decoded store has no database")
		}
		for _, p := range d.Prefs {
			for _, sess := range p.Sessions.All() {
				if sess.Model == nil || sess.Model.M() != d.M() {
					t.Fatal("decoded session model inconsistent with catalog")
				}
				_ = sess.Model.Rehash()
				_ = sess.Key
			}
		}
	})
}
