package store_test

import (
	"bytes"
	"encoding/binary"
	"hash/crc64"
	"math"
	"path/filepath"
	"testing"

	"probpref/internal/ppd"
	"probpref/internal/store"
)

// Partitioned-store suite: WritePartition files must reassemble the full
// model bit-identically in partition order, honor their headers, and reject
// range-boundary corruption.

// openPartitionBytes serializes partition part of parts of db and decodes
// it back.
func openPartitionBytes(t *testing.T, db *ppd.DB, demo string, part, parts int) *store.Store {
	t.Helper()
	var buf bytes.Buffer
	if err := store.WritePartition(&buf, db, demo, part, parts); err != nil {
		t.Fatal(err)
	}
	s, err := store.OpenBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// checkSessionsEqual compares two session stores bit for bit: key strings,
// reference rankings, packed insertion matrices and the content hash.
func checkSessionsEqual(t *testing.T, what string, got, want ppd.SessionStore) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d sessions, want %d", what, got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		gs, ws := got.At(i), want.At(i)
		if len(gs.Key) != len(ws.Key) {
			t.Fatalf("%s session %d: key arity %d, want %d", what, i, len(gs.Key), len(ws.Key))
		}
		for a := range ws.Key {
			if gs.Key[a] != ws.Key[a] {
				t.Fatalf("%s session %d: key[%d] = %q, want %q", what, i, a, gs.Key[a], ws.Key[a])
			}
		}
		gm, wm := gs.Model.Model(), ws.Model.Model()
		for j, it := range wm.Sigma() {
			if gm.Sigma()[j] != it {
				t.Fatalf("%s session %d: sigma[%d] = %d, want %d", what, i, j, gm.Sigma()[j], it)
			}
		}
		for j := 0; j < wm.M(); j++ {
			gr, wr := gm.PiRow(j), wm.PiRow(j)
			for k := range wr {
				if math.Float64bits(gr[k]) != math.Float64bits(wr[k]) {
					t.Fatalf("%s session %d: Pi[%d][%d] differs", what, i, j, k)
				}
			}
		}
		if gm.Rehash() != wm.Rehash() {
			t.Fatalf("%s session %d: rehash differs", what, i)
		}
	}
}

// TestPartitionRoundTripReassembly splits every fixture into partition
// files and reassembles them in partition order: the concatenation must
// reproduce every p-relation's sessions bit-identically, and each file's
// header must report its slice.
func TestPartitionRoundTripReassembly(t *testing.T) {
	for _, fx := range fixtures(t) {
		t.Run(fx.name, func(t *testing.T) {
			for _, parts := range []int{1, 2, 3, 5} {
				stores := make([]*store.Store, parts)
				sessions := 0
				for i := 0; i < parts; i++ {
					stores[i] = openPartitionBytes(t, fx.db, fx.demo, i, parts)
					if p, n, ok := stores[i].Partition(); !ok || p != i || n != parts {
						t.Fatalf("parts=%d: header reports (%d, %d, %v), want (%d, %d, true)", parts, p, n, ok, i, parts)
					}
					if stores[i].Demo() != fx.demo {
						t.Fatalf("parts=%d file %d: demo %q, want %q", parts, i, stores[i].Demo(), fx.demo)
					}
					sessions += stores[i].Sessions()
				}
				for name, want := range fx.db.Prefs {
					var all ppd.SessionSlice
					for i := 0; i < parts; i++ {
						p := stores[i].DB().Prefs[name]
						if p == nil {
							t.Fatalf("parts=%d file %d: p-relation %q missing", parts, i, name)
						}
						lo, hi := ppd.PartitionRange(want.Sessions.Len(), i, parts)
						if p.Sessions.Len() != hi-lo {
							t.Fatalf("parts=%d file %d: %q holds %d sessions, range spans %d", parts, i, name, p.Sessions.Len(), hi-lo)
						}
						for _, s := range p.Sessions.All() {
							all = append(all, s)
						}
					}
					checkSessionsEqual(t, name, all, want.Sessions)
				}
				total := 0
				for _, p := range fx.db.Prefs {
					total += p.Sessions.Len()
				}
				if sessions != total {
					t.Fatalf("parts=%d: partition files hold %d sessions, model has %d", parts, sessions, total)
				}
			}
		})
	}
}

// TestPartitionMatchesRangeView checks a partition file equals the
// in-memory PartitionDB view of the same slice.
func TestPartitionMatchesRangeView(t *testing.T) {
	fx := fixtures(t)[1] // polls: several sessions, multiple window sizes
	const parts = 3
	for i := 0; i < parts; i++ {
		s := openPartitionBytes(t, fx.db, fx.demo, i, parts)
		view, err := ppd.PartitionDB(fx.db, i, parts)
		if err != nil {
			t.Fatal(err)
		}
		for name, want := range view.Prefs {
			checkSessionsEqual(t, name, s.DB().Prefs[name].Sessions, want.Sessions)
		}
	}
}

// TestWritePartitionDeterministic pins partition snapshot bytes the same
// way TestWriteDeterministic pins whole-model ones.
func TestWritePartitionDeterministic(t *testing.T) {
	fx := fixtures(t)[0]
	var a, b bytes.Buffer
	if err := store.WritePartition(&a, fx.db, fx.demo, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := store.WritePartition(&b, fx.db, fx.demo, 1, 2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two writes of the same partition differ")
	}
}

// TestWritePartitionErrors checks out-of-range partition arguments fail.
func TestWritePartitionErrors(t *testing.T) {
	fx := fixtures(t)[0]
	var buf bytes.Buffer
	for _, c := range [][2]int{{-1, 2}, {2, 2}, {0, 0}, {0, -1}} {
		if err := store.WritePartition(&buf, fx.db, fx.demo, c[0], c[1]); err == nil {
			t.Errorf("WritePartition(%d, %d) succeeded, want error", c[0], c[1])
		}
	}
}

// TestOpenPartitionRestriction covers the demand-paged shard path: a
// whole-model file opened as one partition must serve exactly the
// PartitionDB slice, and a partition file must refuse a second restriction.
func TestOpenPartitionRestriction(t *testing.T) {
	fx := fixtures(t)[1]
	dir := t.TempDir()
	whole := filepath.Join(dir, "whole.ppds")
	if err := store.WriteFile(whole, fx.db, fx.demo); err != nil {
		t.Fatal(err)
	}
	const parts = 2
	for i := 0; i < parts; i++ {
		s, err := store.OpenPartition(whole, i, parts)
		if err != nil {
			t.Fatal(err)
		}
		if p, n, ok := s.Partition(); !ok || p != i || n != parts {
			t.Fatalf("Partition() = (%d, %d, %v), want (%d, %d, true)", p, n, ok, i, parts)
		}
		view, err := ppd.PartitionDB(fx.db, i, parts)
		if err != nil {
			t.Fatal(err)
		}
		for name, want := range view.Prefs {
			checkSessionsEqual(t, name, s.DB().Prefs[name].Sessions, want.Sessions)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := store.OpenPartition(whole, 2, 2); err == nil {
		t.Fatal("OpenPartition with part out of range succeeded")
	}

	part := filepath.Join(dir, "part.ppds")
	if err := store.WritePartitionFile(part, fx.db, fx.demo, 0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := store.OpenPartition(part, 0, 2); err == nil {
		t.Fatal("OpenPartition of a partition file succeeded, want ErrFormat")
	}
}

// partitionBytes serializes one figure1 partition (3 sessions split 2 ways;
// partition 0 holds 1 session, partition 1 holds 2).
func partitionBytes(t *testing.T, part int) []byte {
	t.Helper()
	fx := fixtures(t)[0]
	var buf bytes.Buffer
	if err := store.WritePartition(&buf, fx.db, fx.demo, part, 2); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// editMeta replaces old with new (same length) inside the meta section's
// JSON and recomputes the meta CRC and header CRC, so the mutation reaches
// the structural validators instead of tripping a checksum.
func editMeta(t *testing.T, b []byte, old, new string) []byte {
	t.Helper()
	if len(old) != len(new) {
		t.Fatalf("editMeta needs same-length strings, got %q -> %q", old, new)
	}
	c := bytes.Clone(b)
	i := bytes.Index(c, []byte(old))
	if i < 0 {
		t.Fatalf("meta does not contain %q", old)
	}
	copy(c[i:], new)
	// Section table entry: {id u32, reserved u32, offset u64, length u64,
	// crc u64}; meta is section id 1.
	table := crc64.MakeTable(crc64.ECMA)
	for e := 0; e < 5; e++ {
		ent := 40 + 32*e
		if binary.LittleEndian.Uint32(c[ent:]) != 1 {
			continue
		}
		off := binary.LittleEndian.Uint64(c[ent+8:])
		n := binary.LittleEndian.Uint64(c[ent+16:])
		binary.LittleEndian.PutUint64(c[ent+24:], crc64.Checksum(c[off:off+n], table))
	}
	h := crc64.New(table)
	h.Write(c[:32])
	h.Write(c[40 : 40+5*32])
	binary.LittleEndian.PutUint64(c[32:], h.Sum64())
	return c
}

// TestCorruptPartitionHeader corrupts partition range boundaries with valid
// checksums: every mutation must be caught structurally as ErrFormat, since
// reassembling from a mis-ranged file would silently drop or duplicate
// sessions.
func TestCorruptPartitionHeader(t *testing.T) {
	b := partitionBytes(t, 0) // index 0 of 2: 1 of figure1's 3 sessions

	wantErr(t, "index out of range", editMeta(t, b,
		`"partition":{"index":0,"count":2}`,
		`"partition":{"index":9,"count":2}`), store.ErrFormat)
	wantErr(t, "count below one", editMeta(t, b,
		`"partition":{"index":0,"count":2}`,
		`"partition":{"index":0,"count":0}`), store.ErrFormat)
	// Index 1 is valid but its range spans 2 sessions while the file holds
	// 1: the range-boundary cross-check must reject it.
	wantErr(t, "range boundary moved", editMeta(t, b,
		`"partition":{"index":0,"count":2}`,
		`"partition":{"index":1,"count":2}`), store.ErrFormat)
	// A corrupted full-model total shifts every range boundary.
	wantErr(t, "total corrupted", editMeta(t, b, `"total":3`, `"total":9`), store.ErrFormat)
	wantErr(t, "negative total", editMeta(t, b, `"total":3`, `"total":-`), store.ErrFormat)

	// The mirrored mutation on partition 1 (2 sessions, range spans 1).
	b1 := partitionBytes(t, 1)
	wantErr(t, "range boundary moved back", editMeta(t, b1,
		`"partition":{"index":1,"count":2}`,
		`"partition":{"index":0,"count":2}`), store.ErrFormat)

	// Control: the CRC-fixup path of editMeta yields a decodable file when
	// the edit itself is a no-op, so the rejections above stem from the
	// mutations, not from broken checksum surgery.
	if _, err := store.OpenBytes(editMeta(t, b, `"index":0`, `"index":0`)); err != nil {
		t.Fatalf("control edit failed to decode: %v", err)
	}
}

// TestPartitionTotalWithoutHeader checks a whole-model file that smuggles a
// partition total is rejected: the field is only meaningful under a
// partition header.
func TestPartitionTotalWithoutHeader(t *testing.T) {
	fx := fixtures(t)[0]
	var buf bytes.Buffer
	if err := store.Write(&buf, fx.db, fx.demo); err != nil {
		t.Fatal(err)
	}
	// Same-length edit: turn the session count key into a total key.
	// Whole-model prefs serialize without Total, so rewrite "sessions":3
	// into "sessions":3,"total"-style is not length-preserving; instead
	// corrupt a partition file by deleting its header marker: flip
	// "partition" to "partitioX" so the JSON field is unknown and the
	// totals become orphaned.
	b := partitionBytes(t, 0)
	wantErr(t, "total without partition header", editMeta(t, b, `"partition":{`, `"partitioX":{`), store.ErrFormat)
	_ = buf
}
