package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"probpref/internal/ppd"
)

// Write serializes db (with its demo query string) to w in the .ppds
// format. It streams the session columns twice — one CRC pass, one output
// pass — so no column is ever materialized in memory, and it validates
// every session (key arity, permutation reference, stochastic insertion
// rows) before emitting the first byte.
func Write(w io.Writer, db *ppd.DB, demo string) error {
	return write(w, db, demo, nil, 0)
}

// WritePartition serializes partition part of parts of db to w: a
// standalone .ppds file holding only the contiguous session range
// ppd.PartitionRange(n, part, parts) of each p-relation, stamped with a
// partition header recording (part, parts) and each p-relation's full
// session count. A shard then maps just its slice of the model; writing all
// parts and concatenating their sessions in partition order reproduces the
// full model bit-identically.
func WritePartition(w io.Writer, db *ppd.DB, demo string, part, parts int) error {
	pdb, ps, err := partitionFor(db, part, parts)
	if err != nil {
		return err
	}
	return write(w, pdb, demo, ps, 0)
}

// partitionFor slices db for WritePartition and records the full-model
// session totals the partition header declares.
func partitionFor(db *ppd.DB, part, parts int) (*ppd.DB, *partSpec, error) {
	pdb, err := ppd.PartitionDB(db, part, parts)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	ps := &partSpec{index: part, count: parts, totals: make(map[string]int, len(db.Prefs))}
	for name, p := range db.Prefs {
		ps.totals[name] = p.Sessions.Len()
	}
	return pdb, ps, nil
}

// partSpec carries WritePartition's header contribution into planLayout.
type partSpec struct {
	index, count int
	totals       map[string]int // p-relation name → full-model session count
}

// write is the shared serialization core of Write and WritePartition.
func write(w io.Writer, db *ppd.DB, demo string, ps *partSpec, walSeq uint64) error {
	l, err := planLayout(db, demo, ps, walSeq)
	if err != nil {
		return err
	}
	emits := []func(io.Writer) error{l.emitMeta, l.emitSigma, l.emitPi, l.emitKeyOff, l.emitKeyDat}

	// Pass 1: section CRCs.
	var crcs [nSections]uint64
	for i, emit := range emits {
		h := crc64.New(crcTable)
		if err := emit(h); err != nil {
			return err
		}
		crcs[i] = h.Sum64()
	}

	// Header and section table.
	tableEnd := uint64(headerSize + nSections*entrySize)
	hdr := make([]byte, tableEnd)
	copy(hdr, Magic)
	binary.LittleEndian.PutUint32(hdr[offVersion:], Version)
	binary.LittleEndian.PutUint32(hdr[offFlags:], flagLittleEndian)
	binary.LittleEndian.PutUint32(hdr[offCount:], nSections)
	cur := align8(tableEnd)
	for i := range emits {
		e := hdr[headerSize+i*entrySize:]
		binary.LittleEndian.PutUint32(e, uint32(i+1)) // ids are 1..nSections in order
		binary.LittleEndian.PutUint64(e[8:], cur)
		binary.LittleEndian.PutUint64(e[16:], l.secLen[i])
		binary.LittleEndian.PutUint64(e[24:], crcs[i])
		cur += align8(l.secLen[i])
	}
	binary.LittleEndian.PutUint64(hdr[offFileSize:], cur)
	h := crc64.New(crcTable)
	h.Write(hdr[:offCRC])
	h.Write(hdr[headerSize:])
	binary.LittleEndian.PutUint64(hdr[offCRC:], h.Sum64())
	if _, err := w.Write(hdr); err != nil {
		return err
	}

	// Pass 2: section payloads with alignment padding.
	var pad [7]byte
	for i, emit := range emits {
		if err := emit(w); err != nil {
			return err
		}
		if n := align8(l.secLen[i]) - l.secLen[i]; n > 0 {
			if _, err := w.Write(pad[:n]); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteFile atomically writes db to path: the snapshot is assembled in a
// temporary file in the same directory, fsynced, and renamed into place, so
// a crashed or failed write never leaves a partial file visible at path.
func WriteFile(path string, db *ppd.DB, demo string) error {
	return writeFileWith(path, func(w io.Writer) error { return Write(w, db, demo) })
}

// WriteFileSeq is WriteFile with the snapshot stamped as covering every
// write-ahead-log record up to and including walSeq (0 writes an unstamped
// file, identical to WriteFile). The registry uses the stamp to make
// replay idempotent and to pick its WAL compaction floor.
func WriteFileSeq(path string, db *ppd.DB, demo string, walSeq uint64) error {
	return writeFileWith(path, func(w io.Writer) error { return write(w, db, demo, nil, walSeq) })
}

// WritePartitionFile atomically writes partition part of parts of db to
// path, with the same temp+fsync+rename discipline as WriteFile.
func WritePartitionFile(path string, db *ppd.DB, demo string, part, parts int) error {
	return writeFileWith(path, func(w io.Writer) error { return WritePartition(w, db, demo, part, parts) })
}

// writeFileWith runs emit against a temporary file and renames it into
// place on success.
func writeFileWith(path string, emit func(io.Writer) error) (err error) {
	f, err := os.CreateTemp(filepath.Dir(path), ".ppds-tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	bw := bufio.NewWriterSize(f, 1<<16)
	if err = emit(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// layout is the write plan: sorted relations, column sizes and the encoded
// meta section, computed by one validating pass over the database.
type layout struct {
	db     *ppd.DB
	meta   []byte
	prefs  []*ppd.PrefRelation // sorted by name; fixes column windows
	m      int
	tri    int
	secLen [nSections]uint64
}

// planLayout validates db and computes the section layout. A non-nil ps
// stamps the meta section with the partition header; a non-zero walSeq
// stamps it with the covered write-ahead-log sequence.
func planLayout(db *ppd.DB, demo string, ps *partSpec, walSeq uint64) (*layout, error) {
	if db == nil || db.ItemRelation == nil {
		return nil, fmt.Errorf("store: nil database")
	}
	m := db.M()
	if m < 1 || m > maxM {
		return nil, fmt.Errorf("store: %d items out of range [1,%d]", m, maxM)
	}
	l := &layout{db: db, m: m, tri: tri(m)}

	mj := metaJSON{M: m, Demo: demo, Items: db.ItemRelation.Name, WALSeq: walSeq}
	if ps != nil {
		mj.Partition = &partitionJSON{Index: ps.index, Count: ps.count}
	}
	relNames := make([]string, 0, len(db.Relations))
	for name := range db.Relations {
		if name != db.ItemRelation.Name {
			relNames = append(relNames, name)
		}
	}
	sort.Strings(relNames)
	for _, r := range append([]*ppd.Relation{db.ItemRelation}, relsByName(db, relNames)...) {
		for i, t := range r.Tuples {
			if len(t) != len(r.Attrs) {
				return nil, fmt.Errorf("store: relation %s tuple %d has %d values, want %d", r.Name, i, len(t), len(r.Attrs))
			}
		}
		mj.Relations = append(mj.Relations, relationJSON{Name: r.Name, Attrs: r.Attrs, Tuples: r.Tuples})
	}

	prefNames := make([]string, 0, len(db.Prefs))
	for name := range db.Prefs {
		prefNames = append(prefNames, name)
	}
	sort.Strings(prefNames)
	var total, totalKeys, keyDat uint64
	for _, name := range prefNames {
		p := db.Prefs[name]
		if len(p.SessionAttrs) > maxAttrs {
			return nil, fmt.Errorf("store: p-relation %q has %d session attributes, max %d", name, len(p.SessionAttrs), maxAttrs)
		}
		n := p.Sessions.Len()
		for i, s := range p.Sessions.All() {
			if len(s.Key) != len(p.SessionAttrs) {
				return nil, fmt.Errorf("store: %s session %d key arity %d, want %d", name, i, len(s.Key), len(p.SessionAttrs))
			}
			if s.Model == nil {
				return nil, fmt.Errorf("store: %s session %d has no model", name, i)
			}
			mdl := s.Model.Model()
			if !mdl.Sigma().IsPermutation() || mdl.M() != m {
				return nil, fmt.Errorf("store: %s session %d reference is not a permutation of 0..%d", name, i, m-1)
			}
			for j := 0; j < m; j++ {
				if len(mdl.PiRow(j)) != j+1 {
					return nil, fmt.Errorf("store: %s session %d Pi row %d has %d entries, want %d", name, i, j, len(mdl.PiRow(j)), j+1)
				}
			}
			for _, k := range s.Key {
				keyDat += uint64(len(k))
			}
		}
		total += uint64(n)
		totalKeys += uint64(n) * uint64(len(p.SessionAttrs))
		l.prefs = append(l.prefs, p)
		pj := prefJSON{Name: p.Name, SessionAttrs: p.SessionAttrs, Sessions: n}
		if ps != nil {
			pj.Total = ps.totals[name]
		}
		mj.Prefs = append(mj.Prefs, pj)
	}
	if total > maxSessions {
		return nil, fmt.Errorf("store: %d sessions exceed the format limit %d", total, uint64(maxSessions))
	}
	if keyDat > 1<<32-1 {
		return nil, fmt.Errorf("store: session keys total %d bytes, max %d", keyDat, uint64(1<<32-1))
	}

	meta, err := json.Marshal(&mj)
	if err != nil {
		return nil, err
	}
	l.meta = meta
	l.secLen[secMeta-1] = uint64(len(meta))
	l.secLen[secSigma-1] = total * uint64(l.m) * 4
	l.secLen[secPi-1] = total * uint64(l.tri) * 8
	l.secLen[secKeyOff-1] = (totalKeys + 1) * 4
	l.secLen[secKeyDat-1] = keyDat
	return l, nil
}

// relsByName resolves a sorted name list against db.Relations.
func relsByName(db *ppd.DB, names []string) []*ppd.Relation {
	out := make([]*ppd.Relation, len(names))
	for i, n := range names {
		out[i] = db.Relations[n]
	}
	return out
}

func (l *layout) emitMeta(w io.Writer) error {
	_, err := w.Write(l.meta)
	return err
}

func (l *layout) emitSigma(w io.Writer) error {
	buf := make([]byte, 4*l.m)
	for _, p := range l.prefs {
		for _, s := range p.Sessions.All() {
			for j, it := range s.Model.Model().Sigma() {
				binary.LittleEndian.PutUint32(buf[4*j:], uint32(int32(it)))
			}
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
	}
	return nil
}

func (l *layout) emitPi(w io.Writer) error {
	buf := make([]byte, 8*l.tri)
	for _, p := range l.prefs {
		for _, s := range p.Sessions.All() {
			mdl := s.Model.Model()
			off := 0
			for j := 0; j < l.m; j++ {
				for _, v := range mdl.PiRow(j) {
					binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
					off += 8
				}
			}
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
	}
	return nil
}

func (l *layout) emitKeyOff(w io.Writer) error {
	var off uint32
	var buf [4]byte
	for _, p := range l.prefs {
		for _, s := range p.Sessions.All() {
			for _, k := range s.Key {
				binary.LittleEndian.PutUint32(buf[:], off)
				if _, err := w.Write(buf[:]); err != nil {
					return err
				}
				off += uint32(len(k))
			}
		}
	}
	binary.LittleEndian.PutUint32(buf[:], off)
	_, err := w.Write(buf[:])
	return err
}

func (l *layout) emitKeyDat(w io.Writer) error {
	for _, p := range l.prefs {
		for _, s := range p.Sessions.All() {
			for _, k := range s.Key {
				if _, err := io.WriteString(w, k); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
