package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc64"
	"iter"
	"math"
	"sort"
	"sync"
	"unsafe"

	"probpref/internal/ppd"
	"probpref/internal/rank"
	"probpref/internal/rim"
)

// Store is an opened .ppds snapshot. Its database serves sessions directly
// from the underlying mapping: the sigma and pi columns are zero-copy views
// on little-endian hosts, and each Session is reconstructed on demand by
// the p-relation's SessionStore. The database — and every Session obtained
// from it — is valid only until Close.
type Store struct {
	db       *ppd.DB
	demo     string
	sessions int
	data     []byte
	unmap    func() error

	// part/parts record which slice of the full model this store serves:
	// stamped from the partition header of a partition file, or by
	// OpenPartition's range restriction. parts == 0 means a whole model.
	part, parts int

	// walSeq is the snapshot's covered write-ahead-log sequence (0 when
	// unstamped); see WriteFileSeq.
	walSeq uint64

	closeOnce sync.Once
	closeErr  error
}

// Open maps the file at path and decodes it, verifying the header and every
// section checksum plus the structural invariants the query engine relies
// on (permutation references, stochastic insertion rows, monotone key
// offsets). On platforms without mmap support the file is read into memory
// instead.
func Open(path string) (*Store, error) {
	data, unmap, err := mmapFile(path)
	if err != nil {
		return nil, err
	}
	s, err := decode(data)
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, err
	}
	s.unmap = unmap
	return s, nil
}

// OpenBytes decodes an in-memory .ppds image with the same verification as
// Open. It never panics on arbitrary input and never allocates more than a
// small multiple of len(data); every failure wraps one of the typed errors.
func OpenBytes(data []byte) (*Store, error) {
	return decode(data)
}

// OpenPartition maps a whole-model file at path and restricts it to
// partition part of parts: the returned store's database serves only the
// sessions in ppd.PartitionRange(n, part, parts) of each p-relation. The
// mapping is demand-paged, so a shard opening its partition this way never
// faults in the other partitions' session columns. The file must not itself
// be a partition file (open that with Open; its header already fixes the
// slice it holds).
func OpenPartition(path string, part, parts int) (*Store, error) {
	s, err := Open(path)
	if err != nil {
		return nil, err
	}
	if _, _, ok := s.Partition(); ok {
		s.Close()
		return nil, fmt.Errorf("%w: OpenPartition of a partition file", ErrFormat)
	}
	pdb, err := ppd.PartitionDB(s.db, part, parts)
	if err != nil {
		s.Close()
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	total := 0
	for _, p := range pdb.Prefs {
		total += p.Sessions.Len()
	}
	s.db, s.sessions, s.part, s.parts = pdb, total, part, parts
	return s, nil
}

// DB returns the snapshot's database. Valid until Close.
func (s *Store) DB() *ppd.DB { return s.db }

// Partition reports which slice of the full model the store serves: the
// partition index and count from a partition file's header or from an
// OpenPartition restriction. ok is false for a whole-model store.
func (s *Store) Partition() (part, parts int, ok bool) {
	return s.part, s.parts, s.parts > 0
}

// Demo returns the demo query recorded in the snapshot (may be empty).
func (s *Store) Demo() string { return s.demo }

// WALSeq returns the last write-ahead-log sequence number the snapshot
// covers, or 0 for snapshots written outside a WAL-backed registry.
func (s *Store) WALSeq() uint64 { return s.walSeq }

// Sessions returns the total session count across all p-relations.
func (s *Store) Sessions() int { return s.sessions }

// Close releases the mapping. After Close the store's database and any
// Session values obtained from it must not be used.
func (s *Store) Close() error {
	s.closeOnce.Do(func() {
		if s.unmap != nil {
			s.closeErr = s.unmap()
			s.unmap = nil
		}
	})
	return s.closeErr
}

// section is one parsed section-table entry.
type section struct {
	id     uint32
	offset uint64
	length uint64
	crc    uint64
}

// decode parses, verifies and wires a .ppds image into a Store.
func decode(data []byte) (*Store, error) {
	if len(data) < len(Magic) {
		return nil, fmt.Errorf("%w: %d bytes, shorter than the magic", ErrTruncated, len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: %q", ErrBadMagic, data[:len(Magic)])
	}
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, shorter than the header", ErrTruncated, len(data))
	}
	if v := binary.LittleEndian.Uint32(data[offVersion:]); v != Version {
		return nil, fmt.Errorf("%w: version %d, support %d", ErrVersion, v, Version)
	}
	flags := binary.LittleEndian.Uint32(data[offFlags:])
	if flags&flagLittleEndian == 0 || flags&^uint32(knownFlags) != 0 {
		return nil, fmt.Errorf("%w: flags %#x", ErrVersion, flags)
	}
	if fileSize := binary.LittleEndian.Uint64(data[offFileSize:]); fileSize != uint64(len(data)) {
		if fileSize > uint64(len(data)) {
			return nil, fmt.Errorf("%w: header declares %d bytes, have %d", ErrTruncated, fileSize, len(data))
		}
		return nil, fmt.Errorf("%w: %d trailing bytes past declared size %d", ErrFormat, uint64(len(data))-fileSize, fileSize)
	}
	if r := binary.LittleEndian.Uint32(data[offReserved:]); r != 0 {
		return nil, fmt.Errorf("%w: reserved header field %#x", ErrFormat, r)
	}
	count := binary.LittleEndian.Uint32(data[offCount:])
	if count != nSections {
		return nil, fmt.Errorf("%w: %d sections, version %d defines %d", ErrFormat, count, Version, nSections)
	}
	tableEnd := uint64(headerSize) + uint64(count)*entrySize
	if tableEnd > uint64(len(data)) {
		return nil, fmt.Errorf("%w: section table extends past end of file", ErrTruncated)
	}

	h := crc64.New(crcTable)
	h.Write(data[:offCRC])
	h.Write(data[headerSize:tableEnd])
	if got, want := h.Sum64(), binary.LittleEndian.Uint64(data[offCRC:]); got != want {
		return nil, fmt.Errorf("%w: header CRC %#x, computed %#x", ErrChecksum, want, got)
	}

	var secs [nSections]section
	var seen [nSections]bool
	for i := uint32(0); i < count; i++ {
		e := data[headerSize+uint64(i)*entrySize:]
		s := section{
			id:     binary.LittleEndian.Uint32(e),
			offset: binary.LittleEndian.Uint64(e[8:]),
			length: binary.LittleEndian.Uint64(e[16:]),
			crc:    binary.LittleEndian.Uint64(e[24:]),
		}
		if s.id < 1 || s.id > nSections {
			return nil, fmt.Errorf("%w: unknown section id %d", ErrFormat, s.id)
		}
		if seen[s.id-1] {
			return nil, fmt.Errorf("%w: duplicate section id %d", ErrFormat, s.id)
		}
		seen[s.id-1] = true
		if s.offset%8 != 0 || s.offset < tableEnd {
			return nil, fmt.Errorf("%w: section %d at misplaced offset %d", ErrFormat, s.id, s.offset)
		}
		if s.length > uint64(len(data)) || s.offset > uint64(len(data))-s.length {
			return nil, fmt.Errorf("%w: section %d extends past end of file", ErrTruncated, s.id)
		}
		secs[s.id-1] = s
	}
	// All five present (count==nSections plus uniqueness implies it, but be
	// explicit) and non-overlapping.
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("%w: missing section id %d", ErrFormat, i+1)
		}
	}
	byOff := secs
	sort.Slice(byOff[:], func(i, j int) bool { return byOff[i].offset < byOff[j].offset })
	for i := 1; i < nSections; i++ {
		if byOff[i].offset < byOff[i-1].offset+byOff[i-1].length {
			return nil, fmt.Errorf("%w: sections %d and %d overlap", ErrFormat, byOff[i-1].id, byOff[i].id)
		}
	}
	for _, s := range secs {
		body := data[s.offset : s.offset+s.length]
		if got := crc64.Checksum(body, crcTable); got != s.crc {
			return nil, fmt.Errorf("%w: section %d CRC %#x, computed %#x", ErrChecksum, s.id, s.crc, got)
		}
	}

	var meta metaJSON
	if err := json.Unmarshal(data[secs[secMeta-1].offset:secs[secMeta-1].offset+secs[secMeta-1].length], &meta); err != nil {
		return nil, fmt.Errorf("%w: meta section: %v", ErrFormat, err)
	}
	return wire(&meta, secs, data)
}

// wire cross-checks the meta header against the column sections and builds
// the snapshot-backed database.
func wire(meta *metaJSON, secs [nSections]section, data []byte) (*Store, error) {
	m := meta.M
	if m < 1 || m > maxM {
		return nil, fmt.Errorf("%w: item count %d out of range [1,%d]", ErrFormat, m, maxM)
	}
	t := tri(m)
	var total, totalKeys uint64
	for _, p := range meta.Prefs {
		if p.Sessions < 0 || uint64(p.Sessions) > maxSessions || len(p.SessionAttrs) > maxAttrs {
			return nil, fmt.Errorf("%w: p-relation %q session/attr counts out of range", ErrFormat, p.Name)
		}
		total += uint64(p.Sessions)
		totalKeys += uint64(p.Sessions) * uint64(len(p.SessionAttrs))
	}
	if meta.Partition == nil {
		for _, p := range meta.Prefs {
			if p.Total != 0 {
				return nil, fmt.Errorf("%w: p-relation %q declares partition total %d without a partition header", ErrFormat, p.Name, p.Total)
			}
		}
	} else {
		pt := meta.Partition
		if pt.Count < 1 || pt.Count > maxSessions || pt.Index < 0 || pt.Index >= pt.Count {
			return nil, fmt.Errorf("%w: partition %d of %d out of range", ErrFormat, pt.Index, pt.Count)
		}
		for _, p := range meta.Prefs {
			if p.Total < 0 || uint64(p.Total) > maxSessions {
				return nil, fmt.Errorf("%w: p-relation %q partition total %d out of range", ErrFormat, p.Name, p.Total)
			}
			// The slice a partition file may hold is fully determined by
			// (Total, Index, Count); a mismatched session count means the
			// range boundary was corrupted and reassembly would drop or
			// duplicate sessions.
			lo, hi := ppd.PartitionRange(p.Total, pt.Index, pt.Count)
			if p.Sessions != hi-lo {
				return nil, fmt.Errorf("%w: p-relation %q holds %d sessions, partition %d/%d of %d spans %d", ErrFormat, p.Name, p.Sessions, pt.Index, pt.Count, p.Total, hi-lo)
			}
		}
	}
	if total > maxSessions {
		return nil, fmt.Errorf("%w: %d sessions exceed the format limit", ErrFormat, total)
	}
	if want, got := total*uint64(m)*4, secs[secSigma-1].length; want != got {
		return nil, fmt.Errorf("%w: sigma section is %d bytes, meta implies %d", ErrFormat, got, want)
	}
	if want, got := total*uint64(t)*8, secs[secPi-1].length; want != got {
		return nil, fmt.Errorf("%w: pi section is %d bytes, meta implies %d", ErrFormat, got, want)
	}
	if want, got := (totalKeys+1)*4, secs[secKeyOff-1].length; want != got {
		return nil, fmt.Errorf("%w: keyoff section is %d bytes, meta implies %d", ErrFormat, got, want)
	}

	body := func(id int) []byte {
		s := secs[id-1]
		return data[s.offset : s.offset+s.length]
	}
	sigma := viewInt32(body(secSigma), int(total)*m)
	pi := viewFloat64(body(secPi), int(total)*t)
	keyOff := viewUint32(body(secKeyOff), int(totalKeys)+1)
	keyDat := body(secKeyDat)

	for i, off := range keyOff {
		if uint64(off) > secs[secKeyDat-1].length || (i > 0 && off < keyOff[i-1]) {
			return nil, fmt.Errorf("%w: key offset %d out of order or out of range", ErrFormat, i)
		}
	}
	if uint64(keyOff[len(keyOff)-1]) != secs[secKeyDat-1].length {
		return nil, fmt.Errorf("%w: key offsets account for %d of %d key bytes", ErrFormat, keyOff[len(keyOff)-1], secs[secKeyDat-1].length)
	}
	if err := verifySessions(sigma, pi, int(total), m); err != nil {
		return nil, err
	}

	// Relations. The item relation must exist and every tuple must match its
	// relation's arity (ppd.NewDB indexes tuples by attribute position).
	var itemRel *ppd.Relation
	rels := make([]*ppd.Relation, 0, len(meta.Relations))
	for _, rj := range meta.Relations {
		r, err := ppd.NewRelation(rj.Name, rj.Attrs, rj.Tuples)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		if rj.Name == meta.Items {
			if itemRel != nil {
				return nil, fmt.Errorf("%w: duplicate item relation %q", ErrFormat, rj.Name)
			}
			if len(rj.Attrs) == 0 {
				return nil, fmt.Errorf("%w: item relation %q has no attributes", ErrFormat, rj.Name)
			}
			itemRel = r
			continue
		}
		rels = append(rels, r)
	}
	if itemRel == nil {
		return nil, fmt.Errorf("%w: item relation %q not among relations", ErrFormat, meta.Items)
	}
	if len(itemRel.Tuples) != m {
		return nil, fmt.Errorf("%w: item relation has %d tuples, meta declares m=%d", ErrFormat, len(itemRel.Tuples), m)
	}
	db, err := ppd.NewDB(itemRel)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	for _, r := range rels {
		if err := db.AddRelation(r); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
	}

	var sessBase, keyBase int
	for _, pj := range meta.Prefs {
		n, attrs := pj.Sessions, len(pj.SessionAttrs)
		ps := &prefStore{
			m: m, tri: t, n: n, attrs: attrs,
			sigma:  sigma[sessBase*m : (sessBase+n)*m],
			pi:     pi[sessBase*t : (sessBase+n)*t],
			keyOff: keyOff[keyBase : keyBase+n*attrs+1],
			keyDat: keyDat,
		}
		sessBase += n
		keyBase += n * attrs
		err := db.AddPrefRelationUnchecked(&ppd.PrefRelation{
			Name:         pj.Name,
			SessionAttrs: pj.SessionAttrs,
			Sessions:     ps,
		})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
	}
	s := &Store{db: db, demo: meta.Demo, sessions: int(total), data: data, walSeq: meta.WALSeq}
	if meta.Partition != nil {
		s.part, s.parts = meta.Partition.Index, meta.Partition.Count
	}
	return s, nil
}

// verifySessions checks the structural invariants the solvers rely on:
// every reference column is a permutation of 0..m-1 and every insertion row
// is non-negative and sums to 1.
func verifySessions(sigma []int32, pi []float64, total, m int) error {
	mark := make([]int, m) // mark[v] == s+1 iff v seen in session s
	for s := 0; s < total; s++ {
		row := sigma[s*m : (s+1)*m]
		for _, v := range row {
			if v < 0 || int(v) >= m || mark[v] == s+1 {
				return fmt.Errorf("%w: session %d reference is not a permutation", ErrFormat, s)
			}
			mark[v] = s + 1
		}
	}
	t := tri(m)
	for s := 0; s < total; s++ {
		rows := pi[s*t : (s+1)*t]
		off := 0
		for j := 0; j < m; j++ {
			sum := 0.0
			for _, p := range rows[off : off+j+1] {
				if p < 0 || math.IsNaN(p) {
					return fmt.Errorf("%w: session %d Pi row %d has invalid entry", ErrFormat, s, j)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-6 {
				return fmt.Errorf("%w: session %d Pi row %d sums to %v", ErrFormat, s, j, sum)
			}
			off += j + 1
		}
	}
	return nil
}

// prefStore serves one p-relation's sessions straight from the snapshot
// columns. Sessions are reconstructed on demand: the key strings are copied
// out of the mapping, the insertion rows stay zero-copy views.
type prefStore struct {
	m, tri, n, attrs int
	sigma            []int32
	pi               []float64
	keyOff           []uint32 // n*attrs+1 entries, global offsets into keyDat
	keyDat           []byte
}

// Len returns the number of sessions.
func (ps *prefStore) Len() int { return ps.n }

// At reconstructs session i from the columns.
func (ps *prefStore) At(i int) *ppd.Session {
	sig := make(rank.Ranking, ps.m)
	for j, v := range ps.sigma[i*ps.m : (i+1)*ps.m] {
		sig[j] = rank.Item(v)
	}
	rows := make([][]float64, ps.m)
	base := i * ps.tri
	off := 0
	for j := 0; j < ps.m; j++ {
		rows[j] = ps.pi[base+off : base+off+j+1 : base+off+j+1]
		off += j + 1
	}
	key := make([]string, ps.attrs)
	kb := i * ps.attrs
	for a := range key {
		key[a] = string(ps.keyDat[ps.keyOff[kb+a]:ps.keyOff[kb+a+1]])
	}
	return &ppd.Session{Key: key, Model: rim.NewUnchecked(sig, rows)}
}

// All iterates the sessions in index order.
func (ps *prefStore) All() iter.Seq2[int, *ppd.Session] {
	return func(yield func(int, *ppd.Session) bool) {
		for i := 0; i < ps.n; i++ {
			if !yield(i, ps.At(i)) {
				return
			}
		}
	}
}

// hostLittleEndian reports whether the running CPU stores integers
// little-endian, i.e. matches the on-disk payload order.
var hostLittleEndian = func() bool {
	var x uint16 = 0x0102
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// viewInt32 returns b's n int32 values: a zero-copy view when the host is
// little-endian and b is 4-byte aligned, a decoded copy otherwise.
func viewInt32(b []byte, n int) []int32 {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// viewUint32 is viewInt32 for uint32 values.
func viewUint32(b []byte, n int) []uint32 {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

// viewFloat64 returns b's n float64 values: a zero-copy view when the host
// is little-endian and b is 8-byte aligned, a decoded copy otherwise.
func viewFloat64(b []byte, n int) []float64 {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
