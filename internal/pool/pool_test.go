package pool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		var seen [50]atomic.Bool
		if err := Run(50, workers, func(i int) error {
			if seen[i].Swap(true) {
				t.Errorf("workers=%d: index %d claimed twice", workers, i)
			}
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range seen {
			if !seen[i].Load() {
				t.Fatalf("workers=%d: index %d never ran", workers, i)
			}
		}
	}
}

func TestRunZeroItems(t *testing.T) {
	if err := Run(0, 4, func(int) error { t.Fatal("work called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestRunFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	err := Run(1000, 4, func(i int) error {
		calls.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Early stop is best-effort (workers may drain a few more items in the
	// window before the failure flag lands), so only the error is asserted.
}

func TestRunRecoversWorkerPanic(t *testing.T) {
	err := Run(10, 4, func(i int) error {
		if i == 5 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil || err.Error() != "pool: work item 5 panicked: kaboom" {
		t.Fatalf("err = %v", err)
	}
}

func TestRunSerialErrorStopsImmediately(t *testing.T) {
	boom := errors.New("boom")
	var calls int
	err := Run(10, 1, func(i int) error {
		calls++
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestRunCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	for _, workers := range []int{1, 4} {
		err := RunCtx(ctx, 10, workers, func(i int) error {
			calls.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
	}
	if calls.Load() != 0 {
		t.Fatalf("pre-cancelled pool ran %d items", calls.Load())
	}
}

func TestRunCtxCancelStopsClaims(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	err := RunCtx(ctx, 1000, 4, func(i int) error {
		if calls.Add(1) == 8 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := calls.Load(); n >= 1000 {
		t.Fatalf("cancel did not stop claims (ran %d items)", n)
	}
}

func TestRunCtxWorkErrorWinsOverCancel(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := RunCtx(ctx, 10, 2, func(i int) error {
		if i == 0 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want work error, got %v", err)
	}
}

func TestRunCtxCancelCause(t *testing.T) {
	cause := errors.New("client went away")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	if err := RunCtx(ctx, 4, 2, func(int) error { return nil }); !errors.Is(err, cause) {
		t.Fatalf("want cause error, got %v", err)
	}
}
