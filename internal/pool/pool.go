// Package pool provides the bounded worker-pool primitive shared by the
// query engine and the service layer.
package pool

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Run invokes work(i) for every i in [0, n) on at most workers goroutines.
// Indices are claimed atomically in order. The first error stops further
// claims (best-effort: in-flight work items finish) and is returned; on
// success Run returns nil after all n items completed. A panic in a worker
// goroutine is recovered and reported as an error, so a panicking work item
// cannot kill the process of a server calling Run off the request goroutine;
// with workers <= 1 the work runs on the caller's goroutine and panics
// propagate normally.
func Run(n, workers int, work func(i int) error) error {
	return RunCtx(context.Background(), n, workers, work)
}

// RunCtx is Run with cancellation: once ctx is done, no further indices are
// claimed and RunCtx returns ctx's error after the in-flight work items
// finish. Work items that should abort mid-item must check ctx themselves;
// RunCtx only guarantees the fan-out stops claiming. When both a work error
// and a context error occur, the work error wins (it happened first or
// carries more information); a pure cancellation returns context.Cause(ctx).
func RunCtx(ctx context.Context, n, workers int, work func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return context.Cause(ctx)
			}
			if err := work(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		firstErr  error
		failed    atomic.Bool
		cancelled atomic.Bool
		next      atomic.Int64
	)
	next.Store(-1)
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if done != nil {
					select {
					case <-done:
						cancelled.Store(true)
						return
					default:
					}
				}
				i := int(next.Add(1))
				if i >= n || failed.Load() {
					return
				}
				if err := safeWork(work, i); err != nil {
					failed.Store(true)
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if cancelled.Load() {
		return context.Cause(ctx)
	}
	return nil
}

// safeWork runs one work item, converting a panic into an error.
func safeWork(work func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pool: work item %d panicked: %v", i, r)
		}
	}()
	return work(i)
}
