package learn

import (
	"fmt"
	"math"
	"math/rand"

	"probpref/internal/rank"
	"probpref/internal/rim"
)

// MixtureConfig tunes FitMixture. The zero value uses the defaults noted on
// each field.
type MixtureConfig struct {
	// MaxIter bounds the EM iterations (default 50).
	MaxIter int
	// Tol stops EM when the per-observation log-likelihood improves by less
	// than Tol (default 1e-6).
	Tol float64
	// Seed drives the deterministic center initialization (default 1).
	Seed int64
	// MinPhi keeps component dispersions away from the degenerate phi = 0,
	// where a component assigns zero likelihood to every ranking but its
	// center and EM responsibilities collapse (default 1e-3).
	MinPhi float64
}

func (c MixtureConfig) withDefaults() MixtureConfig {
	if c.MaxIter == 0 {
		c.MaxIter = 50
	}
	if c.Tol == 0 {
		c.Tol = 1e-6
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MinPhi == 0 {
		c.MinPhi = 1e-3
	}
	return c
}

// MixtureFit is a fitted Mallows mixture with EM diagnostics.
type MixtureFit struct {
	Mixture *rim.Mixture
	// LogLikelihood is the final data log-likelihood.
	LogLikelihood float64
	// Iterations is the number of EM rounds executed.
	Iterations int
	// History records the log-likelihood after every round.
	History []float64
}

// FitMixture fits a k-component Mallows mixture to rankings over m items by
// expectation-maximization: the E-step computes exact component posteriors,
// the M-step refits every component with FitMallows under the posterior
// weights. Centers are initialized from k distinct data points chosen by a
// farthest-point heuristic (k-means++ style) on the Kendall distance.
func FitMixture(data []rank.Ranking, k, m int, cfg MixtureConfig) (*MixtureFit, error) {
	cfg = cfg.withDefaults()
	if k <= 0 {
		return nil, fmt.Errorf("learn: k = %d must be positive", k)
	}
	if len(data) < k {
		return nil, fmt.Errorf("learn: %d rankings for %d components", len(data), k)
	}
	if err := validateData(data, nil, m); err != nil {
		return nil, err
	}

	comps := initComponents(data, k, m, cfg)
	weights := make([]float64, k)
	for c := range weights {
		weights[c] = 1 / float64(k)
	}

	fit := &MixtureFit{}
	prevLL := math.Inf(-1)
	resp := make([][]float64, len(data)) // responsibilities per observation
	for i := range resp {
		resp[i] = make([]float64, k)
	}
	for iter := 0; iter < cfg.MaxIter; iter++ {
		// E-step: resp[i][c] = Pr(component c | tau_i), via log-sum-exp.
		ll := 0.0
		for i, tau := range data {
			maxLog := math.Inf(-1)
			logs := resp[i]
			for c := 0; c < k; c++ {
				logs[c] = math.Log(weights[c]) + comps[c].LogProb(tau)
				if logs[c] > maxLog {
					maxLog = logs[c]
				}
			}
			sum := 0.0
			for c := 0; c < k; c++ {
				logs[c] = math.Exp(logs[c] - maxLog)
				sum += logs[c]
			}
			for c := 0; c < k; c++ {
				logs[c] /= sum
			}
			ll += maxLog + math.Log(sum)
		}
		fit.Iterations = iter + 1
		fit.History = append(fit.History, ll)

		// M-step: refit each component under its responsibilities.
		for c := 0; c < k; c++ {
			w := make([]float64, len(data))
			total := 0.0
			for i := range data {
				w[i] = resp[i][c]
				total += w[i]
			}
			weights[c] = total / float64(len(data))
			if total <= 1e-12 {
				continue // dead component: keep its parameters
			}
			f, err := FitMallows(data, w, m)
			if err != nil {
				return nil, err
			}
			phi := f.Model.Phi
			if phi < cfg.MinPhi {
				phi = cfg.MinPhi
			}
			comps[c], err = rim.NewMallows(f.Model.Sigma, phi)
			if err != nil {
				return nil, err
			}
		}
		normalize(weights)

		if ll-prevLL < cfg.Tol*float64(len(data)) && iter > 0 {
			prevLL = ll
			break
		}
		prevLL = ll
	}

	mix, err := rim.NewMixture(comps, weights)
	if err != nil {
		return nil, err
	}
	fit.Mixture = mix
	fit.LogLikelihood = prevLL
	return fit, nil
}

// initComponents picks k centers by a farthest-point heuristic over the
// data (first center random, each next center the ranking maximizing the
// minimum Kendall distance to the chosen ones) and pairs each with a
// moderate dispersion.
func initComponents(data []rank.Ranking, k, m int, cfg MixtureConfig) []*rim.Mallows {
	rng := rand.New(rand.NewSource(cfg.Seed))
	chosen := []int{rng.Intn(len(data))}
	minDist := make([]int, len(data))
	for i := range minDist {
		minDist[i] = rank.KendallTau(data[i], data[chosen[0]])
	}
	for len(chosen) < k {
		best, bestD := -1, -1
		for i, d := range minDist {
			if d > bestD {
				best, bestD = i, d
			}
		}
		chosen = append(chosen, best)
		for i := range minDist {
			if d := rank.KendallTau(data[i], data[best]); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	comps := make([]*rim.Mallows, k)
	for c, idx := range chosen {
		comps[c] = rim.MustMallows(data[idx], 0.5)
	}
	return comps
}

func normalize(w []float64) {
	total := 0.0
	for _, x := range w {
		total += x
	}
	if total == 0 {
		for i := range w {
			w[i] = 1 / float64(len(w))
		}
		return
	}
	for i := range w {
		w[i] /= total
	}
}

// LogLikelihood returns the data log-likelihood under a mixture.
func LogLikelihood(mix *rim.Mixture, data []rank.Ranking) float64 {
	ll := 0.0
	for _, tau := range data {
		ll += mix.LogProb(tau)
	}
	return ll
}
