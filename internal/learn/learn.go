// Package learn fits Mallows models and Mallows mixtures to observed
// rankings. The paper's data pipelines (Section 6.1) mine Mallows mixtures
// from the MovieLens and CrowdRank rating data with an external tool
// (Stoyanovich et al. [26]); this package implements that learning step
// from scratch so the reproduction is self-contained:
//
//   - FitMallows fits a single Mallows model by (a) a weighted Kemeny
//     approximation for the center — Borda initialization refined by
//     adjacent-swap local search — and (b) exact maximum likelihood for the
//     dispersion: Mallows is a one-parameter exponential family in the
//     Kendall tau distance, so the MLE of phi matches the expected distance
//     to the observed mean distance, solved by bisection.
//   - FitMixture runs expectation-maximization with FitMallows as the
//     weighted M-step and exact component posteriors as the E-step.
//
// All routines are deterministic for a fixed seed.
package learn

import (
	"fmt"
	"math"
	"sort"

	"probpref/internal/rank"
	"probpref/internal/rim"
)

// Fit is a fitted single Mallows model together with fit diagnostics.
type Fit struct {
	Model *rim.Mallows
	// MeanDistance is the (weighted) mean Kendall tau distance of the data
	// to the fitted center.
	MeanDistance float64
	// LogLikelihood is the (weighted) data log-likelihood under the fit.
	LogLikelihood float64
}

// FitMallows fits MAL(sigma, phi) to rankings over m items. weights may be
// nil (uniform); otherwise it must have one non-negative entry per ranking
// with a positive sum. Rankings must all be permutations of 0..m-1.
func FitMallows(data []rank.Ranking, weights []float64, m int) (*Fit, error) {
	if err := validateData(data, weights, m); err != nil {
		return nil, err
	}
	n := pairwiseCounts(data, weights, m)
	center := kemenyLocalSearch(bordaCenter(n, m), n)
	dbar := meanDistance(data, weights, center)
	phi := SolvePhi(m, dbar)
	ml, err := rim.NewMallows(center, phi)
	if err != nil {
		return nil, err
	}
	fit := &Fit{Model: ml, MeanDistance: dbar}
	fit.LogLikelihood = weightedLogLik(ml, data, weights)
	return fit, nil
}

func validateData(data []rank.Ranking, weights []float64, m int) error {
	if len(data) == 0 {
		return fmt.Errorf("learn: no rankings")
	}
	if weights != nil && len(weights) != len(data) {
		return fmt.Errorf("learn: %d weights for %d rankings", len(weights), len(data))
	}
	total := 0.0
	for i, tau := range data {
		if len(tau) != m || !tau.IsPermutation() {
			return fmt.Errorf("learn: ranking %d is not a permutation of 0..%d", i, m-1)
		}
		if weights != nil {
			if weights[i] < 0 || math.IsNaN(weights[i]) {
				return fmt.Errorf("learn: weight %d = %v is invalid", i, weights[i])
			}
			total += weights[i]
		}
	}
	if weights != nil && total <= 0 {
		return fmt.Errorf("learn: weights sum to %v, want positive", total)
	}
	return nil
}

// pairwiseCounts returns n with n[a][b] = total weight of rankings
// preferring a to b.
func pairwiseCounts(data []rank.Ranking, weights []float64, m int) [][]float64 {
	n := make([][]float64, m)
	for i := range n {
		n[i] = make([]float64, m)
	}
	for i, tau := range data {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		if w == 0 {
			continue
		}
		for p := 0; p < len(tau); p++ {
			for q := p + 1; q < len(tau); q++ {
				n[tau[p]][tau[q]] += w
			}
		}
	}
	return n
}

// bordaCenter orders items by descending weighted Borda score (total wins),
// breaking ties by item id. It is the classical O(m log m) Kemeny
// approximation used to seed the local search.
func bordaCenter(n [][]float64, m int) rank.Ranking {
	score := make([]float64, m)
	for a := 0; a < m; a++ {
		for b := 0; b < m; b++ {
			if a != b {
				score[a] += n[a][b]
			}
		}
	}
	center := rank.Identity(m)
	sort.SliceStable(center, func(i, j int) bool {
		return score[center[i]] > score[center[j]]
	})
	return center
}

// kemenyLocalSearch improves the center by adjacent transpositions until no
// swap lowers the weighted Kendall cost. Swapping adjacent items a (before)
// and b changes the cost by n[a][b] - n[b][a]: the rankings preferring a to
// b start disagreeing, those preferring b to a stop.
func kemenyLocalSearch(center rank.Ranking, n [][]float64) rank.Ranking {
	c := center.Clone()
	for improved := true; improved; {
		improved = false
		for p := 0; p+1 < len(c); p++ {
			a, b := c[p], c[p+1]
			if delta := n[a][b] - n[b][a]; delta < 0 {
				c[p], c[p+1] = b, a
				improved = true
			}
		}
	}
	return c
}

// meanDistance returns the weighted mean Kendall tau distance to the center.
func meanDistance(data []rank.Ranking, weights []float64, center rank.Ranking) float64 {
	sum, total := 0.0, 0.0
	for i, tau := range data {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		sum += w * float64(rank.KendallTau(center, tau))
		total += w
	}
	if total == 0 {
		return 0
	}
	return sum / total
}

// ExpectedDistance returns E[dist(sigma, tau)] under MAL(sigma, phi) for m
// items: the sum over insertion steps of the truncated-geometric means
// sum_t t phi^t / sum_t phi^t. It is continuous and strictly increasing in
// phi on (0, 1], from 0 at phi=0 to m(m-1)/4 at phi=1.
func ExpectedDistance(m int, phi float64) float64 {
	if phi <= 0 {
		return 0
	}
	e := 0.0
	for i := 1; i < m; i++ {
		num, den := 0.0, 0.0
		w := 1.0
		for t := 0; t <= i; t++ {
			num += float64(t) * w
			den += w
			w *= phi
		}
		e += num / den
	}
	return e
}

// SolvePhi returns the maximum-likelihood dispersion for m items given the
// observed mean Kendall distance dbar: because Mallows is an exponential
// family with sufficient statistic dist, the MLE solves
// ExpectedDistance(m, phi) = dbar; the root is found by bisection. dbar at
// or above the uniform mean m(m-1)/4 clamps to phi = 1; dbar <= 0 clamps
// to 0.
func SolvePhi(m int, dbar float64) float64 {
	if dbar <= 0 {
		return 0
	}
	if dbar >= float64(m*(m-1))/4 {
		return 1
	}
	lo, hi := 0.0, 1.0
	for iter := 0; iter < 100; iter++ {
		mid := (lo + hi) / 2
		if ExpectedDistance(m, mid) < dbar {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func weightedLogLik(ml *rim.Mallows, data []rank.Ranking, weights []float64) float64 {
	ll := 0.0
	for i, tau := range data {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		if w == 0 {
			continue
		}
		ll += w * ml.LogProb(tau)
	}
	return ll
}
