package learn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"probpref/internal/rank"
	"probpref/internal/rim"
)

func TestFitMallowsValidation(t *testing.T) {
	good := []rank.Ranking{{0, 1, 2}, {1, 0, 2}}
	cases := []struct {
		name    string
		data    []rank.Ranking
		weights []float64
		m       int
	}{
		{"empty", nil, nil, 3},
		{"wrong length", []rank.Ranking{{0, 1}}, nil, 3},
		{"not a permutation", []rank.Ranking{{0, 0, 2}}, nil, 3},
		{"weight arity", good, []float64{1}, 3},
		{"negative weight", good, []float64{1, -1}, 3},
		{"zero weight sum", good, []float64{0, 0}, 3},
	}
	for _, tc := range cases {
		if _, err := FitMallows(tc.data, tc.weights, tc.m); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestFitMallowsRecoversParameters(t *testing.T) {
	truth := rim.MustMallows(rank.Ranking{3, 0, 5, 1, 4, 2, 7, 6}, 0.35)
	rng := rand.New(rand.NewSource(11))
	data := make([]rank.Ranking, 3000)
	for i := range data {
		data[i] = truth.Sample(rng)
	}
	fit, err := FitMallows(data, nil, truth.M())
	if err != nil {
		t.Fatal(err)
	}
	if !fit.Model.Sigma.Equal(truth.Sigma) {
		t.Fatalf("center %v, want %v", fit.Model.Sigma, truth.Sigma)
	}
	if math.Abs(fit.Model.Phi-truth.Phi) > 0.05 {
		t.Fatalf("phi %v, want ~%v", fit.Model.Phi, truth.Phi)
	}
}

func TestFitMallowsDegenerateData(t *testing.T) {
	// All rankings identical: phi must be 0, center the common ranking.
	tau := rank.Ranking{2, 0, 1}
	data := []rank.Ranking{tau, tau.Clone(), tau.Clone()}
	fit, err := FitMallows(data, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !fit.Model.Sigma.Equal(tau) {
		t.Fatalf("center %v, want %v", fit.Model.Sigma, tau)
	}
	if fit.Model.Phi != 0 {
		t.Fatalf("phi %v, want 0", fit.Model.Phi)
	}
	if fit.MeanDistance != 0 {
		t.Fatalf("mean distance %v, want 0", fit.MeanDistance)
	}
}

func TestFitMallowsUniformData(t *testing.T) {
	// Uniform rankings: the fitted phi must approach 1.
	rng := rand.New(rand.NewSource(12))
	uniform := rim.MustMallows(rank.Identity(6), 1)
	data := make([]rank.Ranking, 4000)
	for i := range data {
		data[i] = uniform.Sample(rng)
	}
	fit, err := FitMallows(data, nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Model.Phi < 0.9 {
		t.Fatalf("phi %v, want near 1 for uniform data", fit.Model.Phi)
	}
}

func TestFitMallowsWeighted(t *testing.T) {
	// With all weight on the second half of the data, the fit must ignore
	// the first half.
	a := rim.MustMallows(rank.Ranking{0, 1, 2, 3, 4}, 0.2)
	b := rim.MustMallows(rank.Ranking{4, 3, 2, 1, 0}, 0.2)
	rng := rand.New(rand.NewSource(13))
	var data []rank.Ranking
	var weights []float64
	for i := 0; i < 500; i++ {
		data = append(data, a.Sample(rng))
		weights = append(weights, 0)
	}
	for i := 0; i < 500; i++ {
		data = append(data, b.Sample(rng))
		weights = append(weights, 1)
	}
	fit, err := FitMallows(data, weights, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !fit.Model.Sigma.Equal(b.Sigma) {
		t.Fatalf("weighted center %v, want %v", fit.Model.Sigma, b.Sigma)
	}
}

func TestExpectedDistanceMonotone(t *testing.T) {
	m := 7
	prev := -1.0
	for phi := 0.0; phi <= 1.0001; phi += 0.05 {
		e := ExpectedDistance(m, phi)
		if e < prev {
			t.Fatalf("ExpectedDistance not monotone at phi=%v: %v < %v", phi, e, prev)
		}
		prev = e
	}
	if got, want := ExpectedDistance(m, 1), float64(m*(m-1))/4; math.Abs(got-want) > 1e-9 {
		t.Fatalf("ExpectedDistance(m,1) = %v, want %v", got, want)
	}
	if ExpectedDistance(m, 0) != 0 {
		t.Fatal("ExpectedDistance(m,0) != 0")
	}
}

func TestExpectedDistanceMatchesAnalyticRIM(t *testing.T) {
	// Against enumeration on a small model.
	for _, phi := range []float64{0.2, 0.6, 1} {
		ml := rim.MustMallows(rank.Identity(5), phi)
		want := 0.0
		rank.ForEachPermutation(5, func(tau rank.Ranking) bool {
			want += float64(rank.KendallTau(ml.Sigma, tau)) * ml.Prob(tau)
			return true
		})
		if got := ExpectedDistance(5, phi); math.Abs(got-want) > 1e-9 {
			t.Fatalf("phi=%v: ExpectedDistance %v, enumeration %v", phi, got, want)
		}
	}
}

func TestSolvePhiInvertsExpectedDistance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 3 + rng.Intn(10)
		phi := 0.05 + 0.9*rng.Float64()
		dbar := ExpectedDistance(m, phi)
		return math.Abs(SolvePhi(m, dbar)-phi) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSolvePhiClamps(t *testing.T) {
	if p := SolvePhi(5, -1); p != 0 {
		t.Errorf("SolvePhi(5,-1) = %v, want 0", p)
	}
	if p := SolvePhi(5, 99); p != 1 {
		t.Errorf("SolvePhi(5,99) = %v, want 1", p)
	}
}

func TestKemenyLocalSearchNeverWorseThanBorda(t *testing.T) {
	cost := func(center rank.Ranking, n [][]float64) float64 {
		c := 0.0
		for p := 0; p < len(center); p++ {
			for q := p + 1; q < len(center); q++ {
				c += n[center[q]][center[p]]
			}
		}
		return c
	}
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 30; trial++ {
		m := 4 + rng.Intn(4)
		truth := rim.MustMallows(rank.Identity(m), 0.3+0.6*rng.Float64())
		data := make([]rank.Ranking, 60)
		for i := range data {
			data[i] = truth.Sample(rng)
		}
		n := pairwiseCounts(data, nil, m)
		borda := bordaCenter(n, m)
		refined := kemenyLocalSearch(borda, n)
		if cost(refined, n) > cost(borda, n)+1e-9 {
			t.Fatalf("trial %d: local search worsened cost: %v > %v",
				trial, cost(refined, n), cost(borda, n))
		}
		// Local optimality: no adjacent swap improves.
		for p := 0; p+1 < m; p++ {
			a, b := refined[p], refined[p+1]
			if n[a][b]-n[b][a] < -1e-9 {
				t.Fatalf("trial %d: improving adjacent swap left at %d", trial, p)
			}
		}
	}
}

func TestFitMixtureRecoversComponents(t *testing.T) {
	// Two well-separated components.
	a := rim.MustMallows(rank.Ranking{0, 1, 2, 3, 4, 5}, 0.25)
	b := rim.MustMallows(rank.Ranking{5, 4, 3, 2, 1, 0}, 0.25)
	rng := rand.New(rand.NewSource(15))
	var data []rank.Ranking
	for i := 0; i < 700; i++ {
		data = append(data, a.Sample(rng))
	}
	for i := 0; i < 300; i++ {
		data = append(data, b.Sample(rng))
	}
	fit, err := FitMixture(data, 2, 6, MixtureConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mix := fit.Mixture
	// Identify components by center.
	var ia, ib = -1, -1
	for c, comp := range mix.Components {
		if comp.Sigma.Equal(a.Sigma) {
			ia = c
		}
		if comp.Sigma.Equal(b.Sigma) {
			ib = c
		}
	}
	if ia < 0 || ib < 0 {
		t.Fatalf("centers not recovered: %v, %v", mix.Components[0].Sigma, mix.Components[1].Sigma)
	}
	if math.Abs(mix.Weights[ia]-0.7) > 0.05 || math.Abs(mix.Weights[ib]-0.3) > 0.05 {
		t.Fatalf("weights %v, want ~[0.7 0.3]", mix.Weights)
	}
	if math.Abs(mix.Components[ia].Phi-0.25) > 0.08 || math.Abs(mix.Components[ib].Phi-0.25) > 0.08 {
		t.Fatalf("phis %v / %v, want ~0.25", mix.Components[ia].Phi, mix.Components[ib].Phi)
	}
}

func TestFitMixtureLogLikelihoodNonDecreasing(t *testing.T) {
	a := rim.MustMallows(rank.Ranking{0, 1, 2, 3, 4}, 0.4)
	b := rim.MustMallows(rank.Ranking{4, 3, 2, 1, 0}, 0.4)
	rng := rand.New(rand.NewSource(16))
	var data []rank.Ranking
	for i := 0; i < 200; i++ {
		data = append(data, a.Sample(rng), b.Sample(rng))
	}
	fit, err := FitMixture(data, 2, 5, MixtureConfig{MaxIter: 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(fit.History); i++ {
		// The approximate center search can in principle lose a little; EM
		// with exact M-steps must not lose more than numerical noise.
		if fit.History[i] < fit.History[i-1]-1e-6 {
			t.Fatalf("log-likelihood decreased at round %d: %v -> %v",
				i, fit.History[i-1], fit.History[i])
		}
	}
}

func TestFitMixtureSingleComponentMatchesFitMallows(t *testing.T) {
	truth := rim.MustMallows(rank.Ranking{2, 0, 3, 1}, 0.3)
	rng := rand.New(rand.NewSource(17))
	data := make([]rank.Ranking, 800)
	for i := range data {
		data[i] = truth.Sample(rng)
	}
	single, err := FitMallows(data, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	mixFit, err := FitMixture(data, 1, 4, MixtureConfig{})
	if err != nil {
		t.Fatal(err)
	}
	comp := mixFit.Mixture.Components[0]
	if !comp.Sigma.Equal(single.Model.Sigma) {
		t.Fatalf("k=1 center %v != FitMallows center %v", comp.Sigma, single.Model.Sigma)
	}
	if math.Abs(comp.Phi-single.Model.Phi) > 1e-3 {
		t.Fatalf("k=1 phi %v != FitMallows phi %v", comp.Phi, single.Model.Phi)
	}
}

func TestFitMixtureValidation(t *testing.T) {
	data := []rank.Ranking{{0, 1, 2}, {1, 0, 2}}
	if _, err := FitMixture(data, 0, 3, MixtureConfig{}); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := FitMixture(data, 3, 3, MixtureConfig{}); err == nil {
		t.Error("k > n: want error")
	}
	if _, err := FitMixture([]rank.Ranking{{0, 0, 1}}, 1, 3, MixtureConfig{}); err == nil {
		t.Error("bad ranking: want error")
	}
}

func TestFitMixtureDeterministic(t *testing.T) {
	truth := rim.MustMallows(rank.Identity(5), 0.5)
	rng := rand.New(rand.NewSource(18))
	data := make([]rank.Ranking, 100)
	for i := range data {
		data[i] = truth.Sample(rng)
	}
	f1, err := FitMixture(data, 2, 5, MixtureConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := FitMixture(data, 2, 5, MixtureConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if f1.LogLikelihood != f2.LogLikelihood || f1.Iterations != f2.Iterations {
		t.Fatalf("same seed, different fits: %v/%d vs %v/%d",
			f1.LogLikelihood, f1.Iterations, f2.LogLikelihood, f2.Iterations)
	}
	for c := range f1.Mixture.Components {
		if !f1.Mixture.Components[c].Sigma.Equal(f2.Mixture.Components[c].Sigma) {
			t.Fatal("same seed, different centers")
		}
	}
}

func TestLogLikelihoodHelper(t *testing.T) {
	ml := rim.MustMallows(rank.Identity(4), 0.5)
	mix, err := rim.NewMixture([]*rim.Mallows{ml}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	data := []rank.Ranking{{0, 1, 2, 3}, {1, 0, 2, 3}}
	want := ml.LogProb(data[0]) + ml.LogProb(data[1])
	if got := LogLikelihood(mix, data); math.Abs(got-want) > 1e-12 {
		t.Fatalf("LogLikelihood = %v, want %v", got, want)
	}
}
