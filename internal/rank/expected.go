package rank

// ExpectedKendallTau returns the expected Kendall tau distance between the
// fixed ranking tau and a random ranking R described only by its pairwise
// marginals: pairwise[a][b] = Pr(a before b in R). Kendall tau counts
// discordant pairs, and expectation is linear, so
//
//	E[K(tau, R)] = sum over positions i < j of Pr(tau[j] before tau[i] in R)
//
// The terms are added in a fixed order — j ascending over positions, i
// ascending below it — so two computations of the same inputs are
// bit-identical; internal/consensus's median branch-and-bound accumulates
// its incremental prefix costs in exactly this order to stay bit-for-bit
// comparable with brute-force enumeration. The function only reads its
// arguments (no shared scratch), so concurrent calls are safe.
func ExpectedKendallTau(pairwise [][]float64, tau Ranking) float64 {
	s := 0.0
	for j := 1; j < len(tau); j++ {
		for i := 0; i < j; i++ {
			s += pairwise[tau[j]][tau[i]]
		}
	}
	return s
}
