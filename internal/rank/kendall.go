package rank

// KendallTau returns the Kendall tau distance between two rankings over the
// same item set: the number of item pairs on whose relative order the two
// rankings disagree. It runs in O(m log m) via inversion counting.
func KendallTau(a, b Ranking) int {
	if len(a) != len(b) {
		panic("rank: KendallTau requires rankings of equal length")
	}
	// Map each item to its position in b, then count inversions of the
	// sequence of b-positions read in a-order.
	posB := make(map[Item]int, len(b))
	for p, it := range b {
		posB[it] = p
	}
	seq := make([]int, len(a))
	for i, it := range a {
		p, ok := posB[it]
		if !ok {
			panic("rank: KendallTau requires rankings over the same items")
		}
		seq[i] = p
	}
	return countInversions(seq)
}

// KendallTauSub returns the number of item pairs that appear in both psi and
// sigma and whose relative order disagrees. This is the distance used by
// GreedyModals and ApproximateDistance when comparing a sub-ranking against a
// full reference ranking.
func KendallTauSub(psi, sigma Ranking) int {
	pos := make(map[Item]int, len(sigma))
	for p, it := range sigma {
		pos[it] = p
	}
	seq := make([]int, 0, len(psi))
	for _, it := range psi {
		if p, ok := pos[it]; ok {
			seq = append(seq, p)
		}
	}
	return countInversions(seq)
}

// countInversions counts pairs i<j with seq[i] > seq[j] by merge sort.
func countInversions(seq []int) int {
	if len(seq) < 2 {
		return 0
	}
	buf := make([]int, len(seq))
	work := make([]int, len(seq))
	copy(work, seq)
	return mergeCount(work, buf)
}

func mergeCount(a, buf []int) int {
	n := len(a)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := mergeCount(a[:mid], buf[:mid]) + mergeCount(a[mid:], buf[mid:])
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if a[i] <= a[j] {
			buf[k] = a[i]
			i++
		} else {
			buf[k] = a[j]
			j++
			inv += mid - i
		}
		k++
	}
	for i < mid {
		buf[k] = a[i]
		i++
		k++
	}
	for j < n {
		buf[k] = a[j]
		j++
		k++
	}
	copy(a, buf[:n])
	return inv
}
