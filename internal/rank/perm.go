package rank

// Factorial returns n! as an int. It panics for n > 20 (overflow).
func Factorial(n int) int {
	if n > 20 {
		panic("rank: factorial overflow")
	}
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

// ForEachPermutation invokes fn for every permutation of 0..m-1 (Heap's
// algorithm). The slice passed to fn is reused between invocations; clone it
// if it must be retained. If fn returns false the enumeration stops early.
func ForEachPermutation(m int, fn func(Ranking) bool) {
	perm := Identity(m)
	c := make([]int, m)
	if !fn(perm) {
		return
	}
	i := 0
	for i < m {
		if c[i] < i {
			if i%2 == 0 {
				perm[0], perm[i] = perm[i], perm[0]
			} else {
				perm[c[i]], perm[i] = perm[i], perm[c[i]]
			}
			if !fn(perm) {
				return
			}
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
}

// Binomial returns C(n, k) as an int.
func Binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1
	for i := 1; i <= k; i++ {
		r = r * (n - k + i) / i
	}
	return r
}
