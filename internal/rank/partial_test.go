package rank

import (
	"math/rand"
	"testing"
)

func TestPartialOrderBasics(t *testing.T) {
	po := NewPartialOrder()
	po.Add(0, 1)
	po.Add(1, 2)
	if !po.Has(0, 1) || po.Has(1, 0) {
		t.Fatal("edge membership wrong")
	}
	if got := po.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	items := po.Items()
	if len(items) != 3 || items[0] != 0 || items[2] != 2 {
		t.Fatalf("Items = %v", items)
	}
}

func TestTransitiveClosure(t *testing.T) {
	po := FromPairs([][2]Item{{0, 1}, {1, 2}, {2, 3}})
	tc := po.TransitiveClosure()
	want := [][2]Item{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	got := tc.Edges()
	if len(got) != len(want) {
		t.Fatalf("tc edges = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tc edges = %v, want %v", got, want)
		}
	}
}

func TestHasCycle(t *testing.T) {
	acyclic := FromPairs([][2]Item{{0, 1}, {1, 2}, {0, 2}})
	if acyclic.HasCycle() {
		t.Error("acyclic order flagged as cyclic")
	}
	cyclic := FromPairs([][2]Item{{0, 1}, {1, 2}, {2, 0}})
	if !cyclic.HasCycle() {
		t.Error("cycle not detected")
	}
}

func TestConsistent(t *testing.T) {
	po := FromPairs([][2]Item{{2, 0}})
	if po.Consistent(Ranking{0, 1, 2}) {
		t.Error("<0,1,2> should violate 2>0")
	}
	if !po.Consistent(Ranking{2, 1, 0}) {
		t.Error("<2,1,0> should satisfy 2>0")
	}
	// Unranked items are ignored.
	if !po.Consistent(Ranking{1}) {
		t.Error("ranking without constrained items is vacuously consistent")
	}
}

func TestSubRankings(t *testing.T) {
	// upsilon = {a>c, b>c} over items a=0,b=1,c=2 has exactly two
	// consistent total orders: <0,1,2> and <1,0,2> (paper section 5.2).
	po := FromPairs([][2]Item{{0, 2}, {1, 2}})
	subs, truncated := po.SubRankings(0)
	if truncated {
		t.Fatal("unexpected truncation")
	}
	if len(subs) != 2 {
		t.Fatalf("got %d sub-rankings, want 2: %v", len(subs), subs)
	}
	keys := map[string]bool{subs[0].Key(): true, subs[1].Key(): true}
	if !keys["0,1,2"] || !keys["1,0,2"] {
		t.Fatalf("sub-rankings = %v", subs)
	}
	for _, s := range subs {
		if !po.Consistent(s) {
			t.Fatalf("enumerated sub-ranking %v inconsistent", s)
		}
	}
}

func TestSubRankingsLimit(t *testing.T) {
	po := NewPartialOrder()
	// Five incomparable... partial order needs edges to have items; build a
	// star so that 4 items are free: 0>9 with 1,2,3 unconstrained is not
	// expressible without mentioning them, so use pairs far apart.
	po.Add(0, 9)
	po.Add(1, 8)
	po.Add(2, 7)
	subs, truncated := po.SubRankings(5)
	if !truncated {
		t.Fatal("expected truncation")
	}
	if len(subs) != 5 {
		t.Fatalf("got %d sub-rankings, want 5", len(subs))
	}
}

// Property: every enumerated sub-ranking is consistent, and the count matches
// a brute-force count over all permutations of the involved items.
func TestSubRankingsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(3) // 3..5 items
		po := NewPartialOrder()
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if rng.Float64() < 0.4 {
					po.Add(Item(a), Item(b)) // edges a<b keep it acyclic
				}
			}
		}
		if po.Len() == 0 {
			continue
		}
		items := po.Items()
		subs, truncated := po.SubRankings(0)
		if truncated {
			t.Fatal("unexpected truncation")
		}
		// Brute force over permutations of the involved items.
		count := 0
		ForEachPermutation(len(items), func(p Ranking) bool {
			r := make(Ranking, len(items))
			for i, pi := range p {
				r[i] = items[pi]
			}
			if po.Consistent(r) {
				count++
			}
			return true
		})
		if count != len(subs) {
			t.Fatalf("trial %d: enumeration found %d, brute force %d", trial, len(subs), count)
		}
	}
}

func TestChainOrder(t *testing.T) {
	po := ChainOrder(Ranking{3, 1, 2})
	for _, e := range [][2]Item{{3, 1}, {3, 2}, {1, 2}} {
		if !po.Has(e[0], e[1]) {
			t.Errorf("missing edge %v", e)
		}
	}
	if po.Len() != 3 {
		t.Errorf("Len = %d, want 3", po.Len())
	}
}

func TestMergeClone(t *testing.T) {
	a := FromPairs([][2]Item{{0, 1}})
	b := FromPairs([][2]Item{{1, 2}})
	c := a.Clone()
	c.Merge(b)
	if !c.Has(0, 1) || !c.Has(1, 2) {
		t.Fatal("merge lost edges")
	}
	if a.Has(1, 2) {
		t.Fatal("clone aliases original")
	}
}
