package rank

import (
	"math/rand"
	"sync"
	"testing"
)

// randomPairwise builds an arbitrary m x m marginal matrix with
// pw[a][b] + pw[b][a] = 1, the shape ExpectedKendallTau consumes.
func randomPairwise(m int, rng *rand.Rand) [][]float64 {
	pw := make([][]float64, m)
	for i := range pw {
		pw[i] = make([]float64, m)
	}
	for a := 0; a < m; a++ {
		for b := a + 1; b < m; b++ {
			p := rng.Float64()
			pw[a][b], pw[b][a] = p, 1-p
		}
	}
	return pw
}

// TestExpectedKendallTauBruteForce cross-checks the pairwise-marginal
// formula against the definition: when the marginals come from a single
// concrete ranking sigma (pw[a][b] = 1 iff a before b in sigma), the
// expectation must equal KendallTau(tau, sigma) exactly, for every pair of
// rankings up to m = 7.
func TestExpectedKendallTauBruteForce(t *testing.T) {
	for m := 1; m <= 7; m++ {
		var sigmas []Ranking
		ForEachPermutation(m, func(sigma Ranking) bool {
			sigmas = append(sigmas, append(Ranking(nil), sigma...))
			return true
		})
		// Sample the sigma x tau product for larger m; exhaustive below.
		rng := rand.New(rand.NewSource(int64(m)))
		for si, sigma := range sigmas {
			if m >= 6 && si%17 != 0 {
				continue
			}
			pw := make([][]float64, m)
			for i := range pw {
				pw[i] = make([]float64, m)
			}
			pos := make([]int, m)
			for p, it := range sigma {
				pos[it] = p
			}
			for a := 0; a < m; a++ {
				for b := 0; b < m; b++ {
					if a != b && pos[a] < pos[b] {
						pw[a][b] = 1
					}
				}
			}
			for ti, tau := range sigmas {
				if m >= 6 && (ti+rng.Intn(3))%13 != 0 {
					continue
				}
				got := ExpectedKendallTau(pw, tau)
				want := float64(KendallTau(tau, sigma))
				if got != want {
					t.Fatalf("m=%d sigma=%v tau=%v: formula %v, definition %v", m, sigma, tau, got, want)
				}
			}
		}
	}
}

// TestExpectedKendallTauMatchesMixture checks linearity directly: the
// expectation under a mixture of rankings equals the mixture of exact
// distances, term for term within float tolerance.
func TestExpectedKendallTauMatchesMixture(t *testing.T) {
	const m = 5
	rng := rand.New(rand.NewSource(42))
	var support []Ranking
	ForEachPermutation(m, func(sigma Ranking) bool {
		support = append(support, append(Ranking(nil), sigma...))
		return true
	})
	probs := make([]float64, len(support))
	sum := 0.0
	for i := range probs {
		probs[i] = rng.Float64()
		sum += probs[i]
	}
	for i := range probs {
		probs[i] /= sum
	}
	pw := make([][]float64, m)
	for i := range pw {
		pw[i] = make([]float64, m)
	}
	for si, sigma := range support {
		pos := make([]int, m)
		for p, it := range sigma {
			pos[it] = p
		}
		for a := 0; a < m; a++ {
			for b := 0; b < m; b++ {
				if a != b && pos[a] < pos[b] {
					pw[a][b] += probs[si]
				}
			}
		}
	}
	tau := Ranking{3, 1, 4, 0, 2}
	got := ExpectedKendallTau(pw, tau)
	want := 0.0
	for si, sigma := range support {
		want += probs[si] * float64(KendallTau(tau, sigma))
	}
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("mixture expectation %v, direct %v", got, want)
	}
}

// TestExpectedKendallTauConcurrent drives concurrent evaluations over one
// shared matrix so the race detector can verify the function really is
// scratch-free.
func TestExpectedKendallTauConcurrent(t *testing.T) {
	const m = 6
	pw := randomPairwise(m, rand.New(rand.NewSource(7)))
	tau := Ranking{5, 2, 0, 4, 1, 3}
	want := ExpectedKendallTau(pw, tau)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if got := ExpectedKendallTau(pw, tau); got != want {
					t.Errorf("concurrent evaluation diverged: %v vs %v", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}
