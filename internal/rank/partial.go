package rank

import (
	"fmt"
	"sort"
	"strings"
)

// PartialOrder is a strict partial order over items, represented as a set of
// directed edges a -> b meaning "a is preferred to b". The structure does not
// require the edge set to be transitively closed; use TransitiveClosure when
// closure is needed.
type PartialOrder struct {
	succ map[Item]map[Item]bool
}

// NewPartialOrder returns an empty partial order.
func NewPartialOrder() *PartialOrder {
	return &PartialOrder{succ: make(map[Item]map[Item]bool)}
}

// FromPairs builds a partial order from preference pairs.
func FromPairs(pairs [][2]Item) *PartialOrder {
	po := NewPartialOrder()
	for _, p := range pairs {
		po.Add(p[0], p[1])
	}
	return po
}

// ChainOrder builds the partial order induced by a sub-ranking: each item is
// preferred to every later item (the transitive closure of the chain).
func ChainOrder(psi Ranking) *PartialOrder {
	po := NewPartialOrder()
	for i := 0; i < len(psi); i++ {
		for j := i + 1; j < len(psi); j++ {
			po.Add(psi[i], psi[j])
		}
	}
	return po
}

// Add inserts the preference a -> b. Self-loops are rejected.
func (po *PartialOrder) Add(a, b Item) {
	if a == b {
		panic(fmt.Sprintf("rank: self-loop %d in partial order", int(a)))
	}
	m := po.succ[a]
	if m == nil {
		m = make(map[Item]bool)
		po.succ[a] = m
	}
	m[b] = true
}

// Has reports whether the edge a -> b is present.
func (po *PartialOrder) Has(a, b Item) bool { return po.succ[a][b] }

// Items returns the sorted set of items mentioned by the order (A(upsilon)).
func (po *PartialOrder) Items() []Item {
	set := make(map[Item]bool)
	for a, ss := range po.succ {
		set[a] = true
		for b := range ss {
			set[b] = true
		}
	}
	out := make([]Item, 0, len(set))
	for it := range set {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edges returns all edges in deterministic order.
func (po *PartialOrder) Edges() [][2]Item {
	var out [][2]Item
	for a, ss := range po.succ {
		for b := range ss {
			out = append(out, [2]Item{a, b})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Len returns the number of edges.
func (po *PartialOrder) Len() int {
	n := 0
	for _, ss := range po.succ {
		n += len(ss)
	}
	return n
}

// Clone returns a deep copy.
func (po *PartialOrder) Clone() *PartialOrder {
	c := NewPartialOrder()
	for a, ss := range po.succ {
		for b := range ss {
			c.Add(a, b)
		}
	}
	return c
}

// Merge adds all edges of other into po.
func (po *PartialOrder) Merge(other *PartialOrder) {
	for a, ss := range other.succ {
		for b := range ss {
			po.Add(a, b)
		}
	}
}

// TransitiveClosure returns a new partial order containing every implied
// edge (the paper's tc(upsilon)).
func (po *PartialOrder) TransitiveClosure() *PartialOrder {
	items := po.Items()
	idx := make(map[Item]int, len(items))
	for i, it := range items {
		idx[it] = i
	}
	n := len(items)
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
	}
	for a, ss := range po.succ {
		for b := range ss {
			reach[idx[a]][idx[b]] = true
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !reach[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if reach[k][j] {
					reach[i][j] = true
				}
			}
		}
	}
	out := NewPartialOrder()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if reach[i][j] && i != j {
				out.Add(items[i], items[j])
			}
		}
	}
	return out
}

// HasCycle reports whether the directed graph contains a cycle, in which case
// it is not a valid strict partial order.
func (po *PartialOrder) HasCycle() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[Item]int)
	var visit func(Item) bool
	visit = func(u Item) bool {
		color[u] = gray
		for v := range po.succ[u] {
			switch color[v] {
			case gray:
				return true
			case white:
				if visit(v) {
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for _, it := range po.Items() {
		if color[it] == white && visit(it) {
			return true
		}
	}
	return false
}

// Consistent reports whether ranking tau is consistent with the partial
// order: for every edge a -> b with both items ranked, a precedes b. When tau
// ranks every item of po, this is the paper's "tau in Omega(upsilon)" (for
// full tau) or "sub-ranking consistent with upsilon".
func (po *PartialOrder) Consistent(tau Ranking) bool {
	pos := make(map[Item]int, len(tau))
	for p, it := range tau {
		pos[it] = p
	}
	for a, ss := range po.succ {
		pa, oka := pos[a]
		if !oka {
			continue
		}
		for b := range ss {
			pb, okb := pos[b]
			if okb && pa >= pb {
				return false
			}
		}
	}
	return true
}

// SubRankings enumerates Delta(upsilon): every total order of Items() that is
// consistent with the order. The enumeration is deterministic. If limit > 0,
// at most limit sub-rankings are produced and the boolean result reports
// whether the enumeration was truncated.
func (po *PartialOrder) SubRankings(limit int) ([]Ranking, bool) {
	items := po.Items()
	// Precompute predecessor counts over the given (not necessarily closed)
	// edge set; topological enumeration only needs direct edges.
	preds := make(map[Item]map[Item]bool)
	for _, it := range items {
		preds[it] = make(map[Item]bool)
	}
	for a, ss := range po.succ {
		for b := range ss {
			preds[b][a] = true
		}
	}
	var (
		out       []Ranking
		cur       = make(Ranking, 0, len(items))
		used      = make(map[Item]bool)
		truncated bool
	)
	var rec func()
	rec = func() {
		if truncated {
			return
		}
		if len(cur) == len(items) {
			out = append(out, cur.Clone())
			if limit > 0 && len(out) >= limit {
				truncated = true
			}
			return
		}
		for _, it := range items {
			if used[it] {
				continue
			}
			ready := true
			for p := range preds[it] {
				if !used[p] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			used[it] = true
			cur = append(cur, it)
			rec()
			cur = cur[:len(cur)-1]
			used[it] = false
		}
	}
	rec()
	return out, truncated
}

// String renders the edge set deterministically.
func (po *PartialOrder) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range po.Edges() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d>%d", int(e[0]), int(e[1]))
	}
	b.WriteByte('}')
	return b.String()
}
