package rank

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	r := Identity(4)
	want := Ranking{0, 1, 2, 3}
	if !r.Equal(want) {
		t.Fatalf("Identity(4) = %v, want %v", r, want)
	}
	if !r.IsPermutation() {
		t.Fatal("identity should be a permutation")
	}
}

func TestPositionAndPrefers(t *testing.T) {
	r := Ranking{2, 0, 3, 1}
	if got := r.Position(3); got != 2 {
		t.Errorf("Position(3) = %d, want 2", got)
	}
	if got := r.Position(9); got != -1 {
		t.Errorf("Position(9) = %d, want -1", got)
	}
	if !r.Prefers(2, 1) {
		t.Error("2 should be preferred to 1")
	}
	if r.Prefers(1, 2) {
		t.Error("1 should not be preferred to 2")
	}
	if r.Prefers(2, 9) {
		t.Error("Prefers with unranked item should be false")
	}
}

func TestInsert(t *testing.T) {
	r := Ranking{0, 1}
	cases := []struct {
		j    int
		want Ranking
	}{
		{0, Ranking{5, 0, 1}},
		{1, Ranking{0, 5, 1}},
		{2, Ranking{0, 1, 5}},
	}
	for _, c := range cases {
		got := r.Insert(5, c.j)
		if !got.Equal(c.want) {
			t.Errorf("Insert(5,%d) = %v, want %v", c.j, got, c.want)
		}
	}
	if !r.Equal(Ranking{0, 1}) {
		t.Error("Insert must not modify the receiver")
	}
}

func TestInsertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range insert")
		}
	}()
	Ranking{0}.Insert(1, 5)
}

func TestRemoveRestrict(t *testing.T) {
	r := Ranking{3, 1, 4, 0}
	if got := r.Remove(4); !got.Equal(Ranking{3, 1, 0}) {
		t.Errorf("Remove(4) = %v", got)
	}
	if got := r.Remove(9); !got.Equal(r) {
		t.Errorf("Remove(absent) = %v", got)
	}
	sub := r.Restrict(map[Item]bool{1: true, 0: true})
	if !sub.Equal(Ranking{1, 0}) {
		t.Errorf("Restrict = %v", sub)
	}
}

func TestConsistentWith(t *testing.T) {
	tau := Ranking{2, 0, 3, 1}
	if !tau.ConsistentWith(Ranking{2, 3, 1}) {
		t.Error("tau should be consistent with <2,3,1>")
	}
	if tau.ConsistentWith(Ranking{1, 3}) {
		t.Error("tau should not be consistent with <1,3>")
	}
	// Items absent from tau are skipped.
	if !tau.ConsistentWith(Ranking{2, 9, 1}) {
		t.Error("unranked items must be ignored")
	}
}

func TestKendallTauBasics(t *testing.T) {
	a := Ranking{0, 1, 2, 3}
	if d := KendallTau(a, a); d != 0 {
		t.Errorf("d(a,a) = %d, want 0", d)
	}
	rev := Ranking{3, 2, 1, 0}
	if d := KendallTau(a, rev); d != 6 {
		t.Errorf("d(a,rev) = %d, want 6", d)
	}
	b := Ranking{1, 0, 2, 3}
	if d := KendallTau(a, b); d != 1 {
		t.Errorf("d = %d, want 1", d)
	}
}

func TestKendallTauSub(t *testing.T) {
	sigma := Ranking{0, 1, 2, 3, 4}
	psi := Ranking{3, 1}
	if d := KendallTauSub(psi, sigma); d != 1 {
		t.Errorf("d = %d, want 1", d)
	}
	if d := KendallTauSub(Ranking{1, 3}, sigma); d != 0 {
		t.Errorf("d = %d, want 0", d)
	}
}

// Property: Kendall tau is a metric (symmetry, identity, triangle
// inequality) on random permutations.
func TestKendallTauMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randPerm := func(m int) Ranking {
		p := rng.Perm(m)
		r := make(Ranking, m)
		for i, v := range p {
			r[i] = Item(v)
		}
		return r
	}
	for trial := 0; trial < 200; trial++ {
		m := 2 + rng.Intn(7)
		a, b, c := randPerm(m), randPerm(m), randPerm(m)
		dab, dba := KendallTau(a, b), KendallTau(b, a)
		if dab != dba {
			t.Fatalf("symmetry violated: %d vs %d", dab, dba)
		}
		if (dab == 0) != a.Equal(b) {
			t.Fatalf("identity of indiscernibles violated for %v %v", a, b)
		}
		if KendallTau(a, c) > dab+KendallTau(b, c) {
			t.Fatalf("triangle inequality violated")
		}
		max := m * (m - 1) / 2
		if dab < 0 || dab > max {
			t.Fatalf("distance %d out of range [0,%d]", dab, max)
		}
	}
}

// Property: inversion counting agrees with the quadratic definition.
func TestCountInversionsQuick(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) > 40 {
			raw = raw[:40]
		}
		seq := make([]int, len(raw))
		for i, v := range raw {
			seq[i] = int(v)
		}
		naive := 0
		for i := 0; i < len(seq); i++ {
			for j := i + 1; j < len(seq); j++ {
				if seq[i] > seq[j] {
					naive++
				}
			}
		}
		return countInversions(seq) == naive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachPermutation(t *testing.T) {
	for m := 0; m <= 5; m++ {
		seen := make(map[string]bool)
		count := 0
		ForEachPermutation(m, func(r Ranking) bool {
			if !r.IsPermutation() {
				t.Fatalf("not a permutation: %v", r)
			}
			seen[r.Key()] = true
			count++
			return true
		})
		if m == 0 {
			continue
		}
		if want := Factorial(m); count != want || len(seen) != want {
			t.Fatalf("m=%d: %d perms (%d distinct), want %d", m, count, len(seen), want)
		}
	}
}

func TestForEachPermutationEarlyStop(t *testing.T) {
	count := 0
	ForEachPermutation(4, func(Ranking) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop after %d calls, want 3", count)
	}
}

func TestBinomial(t *testing.T) {
	cases := [][3]int{{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {10, 3, 120}, {4, 5, 0}}
	for _, c := range cases {
		if got := Binomial(c[0], c[1]); got != c[2] {
			t.Errorf("C(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestRankingKeyString(t *testing.T) {
	r := Ranking{2, 0, 1}
	if r.Key() != "2,0,1" {
		t.Errorf("Key = %q", r.Key())
	}
	if r.String() != "<2, 0, 1>" {
		t.Errorf("String = %q", r.String())
	}
}
