// Package rank provides the ranking substrate used throughout probpref:
// permutations (rankings), sub-rankings, partial orders over items, the
// Kendall tau distance, and the insertion algebra that underlies the
// Repeated Insertion Model.
//
// Items are dense integer identifiers. A Ranking places items at 0-based
// positions; position 0 is the highest (most preferred) rank. The paper uses
// 1-based positions; all formulas are translated accordingly.
package rank

import (
	"fmt"
	"strings"
)

// Item identifies an item. Items are small non-negative integers assigned by
// the caller (typically indices into an item catalog).
type Item int

// Ranking is a linear order of items: Ranking[p] is the item at position p,
// with position 0 being the most preferred. A Ranking over a subset of the
// item universe is called a sub-ranking; the type is the same and all methods
// apply.
type Ranking []Item

// Identity returns the ranking <0, 1, ..., m-1>.
func Identity(m int) Ranking {
	r := make(Ranking, m)
	for i := range r {
		r[i] = Item(i)
	}
	return r
}

// Clone returns a copy of r.
func (r Ranking) Clone() Ranking {
	c := make(Ranking, len(r))
	copy(c, r)
	return c
}

// Len returns the number of ranked items.
func (r Ranking) Len() int { return len(r) }

// Position returns the 0-based position of item x, or -1 if x is not ranked.
func (r Ranking) Position(x Item) int {
	for p, it := range r {
		if it == x {
			return p
		}
	}
	return -1
}

// Contains reports whether item x appears in r.
func (r Ranking) Contains(x Item) bool { return r.Position(x) >= 0 }

// Prefers reports whether a is ranked strictly before (preferred to) b.
// Both items must be ranked; otherwise Prefers returns false.
func (r Ranking) Prefers(a, b Item) bool {
	pa, pb := r.Position(a), r.Position(b)
	return pa >= 0 && pb >= 0 && pa < pb
}

// Insert returns a new ranking with item x inserted at position j (0-based,
// 0 <= j <= len(r)). The receiver is not modified.
func (r Ranking) Insert(x Item, j int) Ranking {
	if j < 0 || j > len(r) {
		panic(fmt.Sprintf("rank: insert position %d out of range [0,%d]", j, len(r)))
	}
	out := make(Ranking, 0, len(r)+1)
	out = append(out, r[:j]...)
	out = append(out, x)
	out = append(out, r[j:]...)
	return out
}

// Remove returns a new ranking with item x removed. If x is not present the
// result is a copy of r.
func (r Ranking) Remove(x Item) Ranking {
	out := make(Ranking, 0, len(r))
	for _, it := range r {
		if it != x {
			out = append(out, it)
		}
	}
	return out
}

// Prefix returns the truncated ranking consisting of the first k items
// (the paper's tau^k). It shares storage with r.
func (r Ranking) Prefix(k int) Ranking {
	if k > len(r) {
		k = len(r)
	}
	return r[:k]
}

// Restrict returns the sub-ranking of r over the given item set, preserving
// the relative order of r.
func (r Ranking) Restrict(items map[Item]bool) Ranking {
	out := make(Ranking, 0, len(items))
	for _, it := range r {
		if items[it] {
			out = append(out, it)
		}
	}
	return out
}

// ItemSet returns the set of items in r (the paper's A(psi)).
func (r Ranking) ItemSet() map[Item]bool {
	s := make(map[Item]bool, len(r))
	for _, it := range r {
		s[it] = true
	}
	return s
}

// IsPermutation reports whether r is a permutation of 0..m-1 for m = len(r).
func (r Ranking) IsPermutation() bool {
	seen := make([]bool, len(r))
	for _, it := range r {
		if it < 0 || int(it) >= len(r) || seen[it] {
			return false
		}
		seen[it] = true
	}
	return true
}

// ConsistentWith reports whether r is consistent with the sub-ranking psi:
// every pair of items that are both ranked in r and in psi appears in the
// same relative order. When r ranks all items of psi this is the paper's
// "tau |= psi".
func (r Ranking) ConsistentWith(psi Ranking) bool {
	prev := -1
	for _, it := range psi {
		p := r.Position(it)
		if p < 0 {
			continue
		}
		if p < prev {
			return false
		}
		prev = p
	}
	return true
}

// Equal reports whether two rankings are identical.
func (r Ranking) Equal(o Ranking) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if r[i] != o[i] {
			return false
		}
	}
	return true
}

// Key returns a compact string key identifying the ranking, suitable for use
// as a map key (e.g. for deduplicating sub-rankings).
func (r Ranking) Key() string {
	var b strings.Builder
	b.Grow(len(r) * 3)
	for i, it := range r {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", int(it))
	}
	return b.String()
}

// String renders the ranking as <a, b, c>.
func (r Ranking) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, it := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", int(it))
	}
	b.WriteByte('>')
	return b.String()
}
