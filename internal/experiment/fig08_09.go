package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"probpref/internal/dataset"
	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/ppd"
	"probpref/internal/rank"
	"probpref/internal/rim"
	"probpref/internal/sampling"
	"probpref/internal/solver"
)

// Fig8Query is the self-join star query of the Figure 8 experiment over
// Polls with 16 candidates.
const Fig8Query = `P(_, date; c1; c2), P(_, date; c1; c3), P(_, date; c1; c4), ` +
	`C(c1, p, _, _, _, NE), C(c2, p, _, _, _, MW), date = "5/5", ` +
	`C(c3, _, _, age, _, NE), C(c4, _, M, _, BA, _), age = 50`

// RunFig08 reproduces Figure 8: the Most-Probable-Session top-k
// optimization on Polls with 16 candidates. For k in {1, 10, 100} it
// compares the naive strategy (exact probability for every session) against
// the 1-edge and 2-edge upper-bound strategies, reporting times and
// speedups.
func RunFig08(scale Scale) (*Table, error) {
	voters := 120
	ks := []int{1, 10}
	if scale == Paper {
		voters = 1000
		ks = []int{1, 10, 100}
	}
	db, err := dataset.Polls(dataset.PollsConfig{Candidates: 16, Voters: voters, Seed: 8})
	if err != nil {
		return nil, err
	}
	// Exact probabilities use the general (inclusion-exclusion) solver in
	// all three strategies, mirroring the paper's engine where exact
	// evaluation is the expensive step the bounds avoid.
	eng := &ppd.Engine{DB: db, Method: ppd.MethodGeneral}
	q := ppd.MustParse(Fig8Query)
	t := &Table{
		Title:   "Figure 8: top-k optimization on Polls (16 candidates, self-join query)",
		Columns: []string{"k", "strategy", "time", "exactSolves", "sessionsEvaluated", "speedup"},
	}
	for _, k := range ks {
		var naive time.Duration
		for _, mode := range []struct {
			name  string
			edges int
		}{{"full", 0}, {"1-edge", 1}, {"2-edge", 2}} {
			var diag *ppd.TopKDiag
			var top []ppd.SessionProb
			d, err := timeIt(func() error {
				var e error
				top, diag, e = eng.TopK(q, k, mode.edges)
				return e
			})
			if err != nil {
				return nil, err
			}
			if mode.edges == 0 {
				naive = d
			}
			speedup := "-"
			if mode.edges > 0 && d > 0 {
				speedup = fmt.Sprintf("%.1fx", naive.Seconds()/d.Seconds())
			}
			_ = top
			t.Add(k, mode.name, d, diag.ExactSolves, diag.SessionsEvaluated, speedup)
		}
	}
	t.Notes = append(t.Notes,
		"target shape: 1-edge and 2-edge bound strategies beat full evaluation; speedup shrinks as k grows (paper: 5.2x/8.2x at k=1, 1.6x/2.1x at k=100)")
	return t, nil
}

// RunFig09 reproduces Figure 9: rejection sampling needs exponentially many
// samples for the rare event sigma_m > sigma_1 over MAL(sigma, 0.1), while
// MIS-AMP-lite with one proposal stays fast. RS stops when within 1%
// relative error of the precomputed exact value (the paper's optimistic
// stopping rule).
func RunFig09(scale Scale) (*Table, error) {
	ms := []int{5, 6, 7, 8}
	maxSamples := 2_000_000
	if scale == Paper {
		ms = []int{5, 6, 7, 8, 9, 10}
		maxSamples = 200_000_000
	}
	t := &Table{
		Title:   "Figure 9: rejection sampling vs MIS-AMP-lite for the rare event sigma_m > sigma_1",
		Columns: []string{"m", "truth", "rsTime", "rsSamples", "rsConverged", "liteTime", "liteRelErr"},
	}
	for _, m := range ms {
		ml := rim.MustMallows(rank.Identity(m), 0.1)
		lab := label.NewLabeling()
		lab.Add(rank.Item(m-1), 0)
		lab.Add(rank.Item(0), 1)
		u := pattern.Union{pattern.TwoLabel(label.NewSet(0), label.NewSet(1))}
		truth, err := solver.TwoLabel(ml.Model(), lab, u, solver.Options{})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(int64(m)))
		var est float64
		var n int
		rsTime, _ := timeIt(func() error {
			est, n = sampling.RejectionUntil(ml, lab, u, truth, 0.01, 2000, maxSamples, rng)
			return nil
		})
		converged := relErr(est, truth) <= 0.011
		var liteEst float64
		liteTime, err := timeIt(func() error {
			e, err := sampling.NewEstimator(ml, lab, u, sampling.Config{})
			if err != nil {
				return err
			}
			// The posterior of sigma_m > sigma_1 has m-1 tied modals (the
			// adjacent block <sigma_m, sigma_1> at every offset); a handful
			// of proposals covers them, after which the mixture estimator
			// is unbiased without compensation.
			liteEst, err = e.Estimate(m-1, 2000, rand.New(rand.NewSource(int64(100+m))), false)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Add(m, truth, rsTime, n, converged, liteTime, relErr(liteEst, truth))
	}
	t.Notes = append(t.Notes,
		"target shape: RS samples and time grow exponentially with m; MIS-AMP-lite time is flat with low error")
	return t, nil
}
