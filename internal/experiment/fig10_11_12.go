package experiment

import (
	"fmt"
	"math/rand"

	"probpref/internal/dataset"
	"probpref/internal/sampling"
	"probpref/internal/solver"
)

// liteErrors runs MIS-AMP-lite with each proposal count over the instances
// and returns per-d relative-error statistics against the exact bipartite
// solver.
func liteErrors(insts []dataset.Instance, ds []int, samples int, compensate bool, seed int64) (map[int]*stats, error) {
	out := map[int]*stats{}
	for _, d := range ds {
		out[d] = &stats{}
	}
	for i, in := range insts {
		truth, err := solver.Bipartite(in.Model.Model(), in.Lab, in.Union, solver.Options{})
		if err != nil {
			return nil, err
		}
		if truth == 0 {
			continue
		}
		est, err := sampling.NewEstimator(in.Model, in.Lab, in.Union, sampling.Config{})
		if err != nil {
			return nil, err
		}
		for _, d := range ds {
			rng := rand.New(rand.NewSource(seed + int64(1000*i+d)))
			p, err := est.Estimate(d, samples, rng, compensate)
			if err != nil {
				return nil, err
			}
			out[d].add(relErr(p, truth))
		}
	}
	return out, nil
}

// RunFig10a reproduces Figure 10a: the distribution of MIS-AMP-lite
// relative errors on Benchmark-A as the number of proposal distributions
// grows.
func RunFig10a(scale Scale) (*Table, error) {
	n := 6
	samples := 400
	if scale == Paper {
		n = 33
		samples = 1000
	}
	insts := dataset.BenchmarkA(101)[:n]
	return liteTable("Figure 10a: MIS-AMP-lite relative error vs #proposals (Benchmark-A)",
		insts, samples, 102)
}

// RunFig10b reproduces Figure 10b: the same sweep on the Benchmark-C slice
// with 3 patterns/union, 3 labels/pattern, 3 items/label.
func RunFig10b(scale Scale) (*Table, error) {
	insts := dataset.BenchmarkCSlice(103, 3, 3, 3)
	samples := 400
	if scale != Paper {
		insts = insts[:6]
	} else {
		samples = 1000
	}
	return liteTable("Figure 10b: MIS-AMP-lite relative error vs #proposals (Benchmark-C 3/3/3)",
		insts, samples, 104)
}

func liteTable(title string, insts []dataset.Instance, samples int, seed int64) (*Table, error) {
	ds := []int{1, 2, 5, 10, 20}
	errs, err := liteErrors(insts, ds, samples, true, seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   title,
		Columns: []string{"proposals", "medianRelErr", "meanRelErr", "p90RelErr", "instances"},
	}
	for _, d := range ds {
		st := errs[d]
		t.Add(d, st.median(), st.mean(), st.quantile(0.9), st.n())
	}
	t.Notes = append(t.Notes, "target shape: error decreases with #proposals, plateauing near 20")
	return t, nil
}

// RunFig11 reproduces Figure 11: MIS-AMP-lite accuracy on a typical and an
// atypical Benchmark-A instance, with and without compensation. On the
// typical instance more proposals improve accuracy; on the atypical
// instance compensation does most of the work (11b), and removing it
// restores the monotone improvement (11c).
func RunFig11(scale Scale) (*Table, error) {
	insts := dataset.BenchmarkA(111)
	samples := 500
	runs := 3
	if scale == Paper {
		samples = 1500
		runs = 10
	}
	ds := []int{1, 5, 10, 20}
	// Pick the typical/atypical instances by the raw (uncompensated) d=1
	// error against the exact probability: the atypical instance is the
	// one whose dominant components the single proposal misses, which is
	// exactly where compensation does the work (paper Section 6.3).
	typical, atypical := insts[0], insts[0]
	bestRaw, worstRaw := 1e18, -1.0
	for _, in := range insts[:10] {
		truth, err := solver.Bipartite(in.Model.Model(), in.Lab, in.Union, solver.Options{})
		if err != nil {
			return nil, err
		}
		if truth < 1e-9 {
			continue
		}
		est, err := sampling.NewEstimator(in.Model, in.Lab, in.Union, sampling.Config{})
		if err != nil {
			return nil, err
		}
		without, err := est.Estimate(1, 200, rand.New(rand.NewSource(7)), false)
		if err != nil {
			return nil, err
		}
		raw := relErr(without, truth)
		if raw < bestRaw {
			bestRaw, typical = raw, in
		}
		if raw > worstRaw {
			worstRaw, atypical = raw, in
		}
	}
	t := &Table{
		Title:   "Figure 11: MIS-AMP-lite on a typical vs atypical Benchmark-A instance",
		Columns: []string{"instance", "compensation", "proposals", "meanRelErr"},
	}
	for _, row := range []struct {
		name string
		in   dataset.Instance
		comp bool
	}{
		{"typical", typical, true},
		{"atypical", atypical, true},
		{"atypical", atypical, false},
	} {
		truth, err := solver.Bipartite(row.in.Model.Model(), row.in.Lab, row.in.Union, solver.Options{})
		if err != nil {
			return nil, err
		}
		for _, d := range ds {
			st := &stats{}
			for r := 0; r < runs; r++ {
				est, err := sampling.NewEstimator(row.in.Model, row.in.Lab, row.in.Union, sampling.Config{})
				if err != nil {
					return nil, err
				}
				rng := rand.New(rand.NewSource(int64(1000*r + d)))
				p, err := est.Estimate(d, samples, rng, row.comp)
				if err != nil {
					return nil, err
				}
				st.add(relErr(p, truth))
			}
			t.Add(row.name, row.comp, d, st.mean())
		}
	}
	t.Notes = append(t.Notes,
		"target shape: typical instance improves with proposals; atypical instance relies on compensation (11b); without compensation improvement is monotone again (11c)")
	return t, nil
}

// RunFig12 reproduces Figure 12: the effect of compensation for MIS-AMP-lite
// with one proposal. Two workloads are reported: the random Benchmark-C
// instances, and symmetric multi-component instances (equally-distant
// disjoint rare components, each with a unique modal) — the regime the
// compensation mechanism targets, where a single proposal can only ever see
// one component.
func RunFig12(scale Scale) (*Table, error) {
	n := 20
	samples := 100
	if scale == Paper {
		n = 200
	}
	t := &Table{
		Title:   "Figure 12: compensation effect for MIS-AMP-lite (d=1)",
		Columns: []string{"workload", "instances", "improved", "worsened", "meanRelErrWith", "meanRelErrWithout"},
	}
	row, err := fig12Row("benchmark-C", dataset.BenchmarkC(121), n, samples)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, row)
	row, err = fig12Row("symmetric", dataset.SymmetricUnions(122, 30, 12, 3, 0.1), n, samples)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, row)
	t.Notes = append(t.Notes,
		"target shape (paper): most instances improve; near-100% errors collapse",
		"reproduction finding: on random Benchmark-C instances the nearest sub-ranking dominates the",
		"union probability and the mixture estimator is already unbiased, so compensation overcorrects;",
		"on symmetric multi-component instances compensation restores the pruned components as intended")
	return t, nil
}

func fig12Row(name string, insts []dataset.Instance, n, samples int) ([]string, error) {
	improved, worsened := 0, 0
	withSt, withoutSt := &stats{}, &stats{}
	used := 0
	for i := 0; i < len(insts) && used < n; i++ {
		in := insts[i]
		truth, err := solver.Bipartite(in.Model.Model(), in.Lab, in.Union, solver.Options{})
		if err != nil {
			return nil, err
		}
		if truth < 1e-9 {
			continue
		}
		est, err := sampling.NewEstimator(in.Model, in.Lab, in.Union, sampling.Config{})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(int64(i)))
		with, err := est.Estimate(1, samples, rng, true)
		if err != nil {
			return nil, err
		}
		rng = rand.New(rand.NewSource(int64(i)))
		without, err := est.Estimate(1, samples, rng, false)
		if err != nil {
			return nil, err
		}
		used++
		ew, ewo := relErr(with, truth), relErr(without, truth)
		withSt.add(ew)
		withoutSt.add(ewo)
		if ew < ewo {
			improved++
		} else if ew > ewo {
			worsened++
		}
	}
	return []string{name, fmt.Sprintf("%d", used), fmt.Sprintf("%d", improved),
		fmt.Sprintf("%d", worsened), fmtFloat(withSt.mean()), fmtFloat(withoutSt.mean())}, nil
}
