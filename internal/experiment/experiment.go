// Package experiment reproduces every table and figure of the paper's
// evaluation (Section 6). Each RunFigNN function regenerates the series the
// corresponding figure plots and returns them as a printable table.
//
// Absolute running times differ from the paper (different hardware and
// implementation language); the reproduction targets are the shapes: which
// solver wins, growth rates, crossovers, and speedup factors. EXPERIMENTS.md
// records the measured outcomes next to the paper's.
package experiment

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Scale selects experiment sizes.
type Scale int

const (
	// Small finishes each figure in seconds; used by bench_test.go and CI.
	Small Scale = iota
	// Paper approaches the paper's parameter ranges; minutes per figure.
	Paper
)

// ParseScale converts a flag value.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "small", "":
		return Small, nil
	case "paper", "full":
		return Paper, nil
	}
	return Small, fmt.Errorf("experiment: unknown scale %q (small|paper)", s)
}

// Table is a printable result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmtFloat(v)
		case time.Duration:
			row[i] = fmtDur(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func fmtFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 0.01 && math.Abs(v) < 10000:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.3e", v)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fus", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// timeIt measures f.
func timeIt(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}

// stats summarizes a sample.
type stats struct{ xs []float64 }

func (s *stats) add(x float64) { s.xs = append(s.xs, x) }
func (s *stats) n() int        { return len(s.xs) }

func (s *stats) mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

func (s *stats) quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	xs := append([]float64(nil), s.xs...)
	sort.Float64s(xs)
	idx := q * float64(len(xs)-1)
	lo := int(idx)
	if lo >= len(xs)-1 {
		return xs[len(xs)-1]
	}
	frac := idx - float64(lo)
	return xs[lo]*(1-frac) + xs[lo+1]*frac
}

func (s *stats) median() float64 { return s.quantile(0.5) }

// relErr returns |est-truth|/truth, or |est| when truth is 0.
func relErr(est, truth float64) float64 {
	if truth == 0 {
		return math.Abs(est)
	}
	return math.Abs(est-truth) / truth
}

// Figures maps figure ids to runners.
var Figures = map[string]func(Scale) (*Table, error){
	"4":   RunFig04,
	"5":   RunFig05,
	"6":   RunFig06,
	"7a":  RunFig07a,
	"7b":  RunFig07b,
	"8":   RunFig08,
	"9":   RunFig09,
	"10a": RunFig10a,
	"10b": RunFig10b,
	"11":  RunFig11,
	"12":  RunFig12,
	"13a": RunFig13a,
	"13b": RunFig13b,
	"14":  RunFig14,
	"15":  RunFig15,
}

// FigureIDs lists figure ids in presentation order.
var FigureIDs = []string{"4", "5", "6", "7a", "7b", "8", "9", "10a", "10b", "11", "12", "13a", "13b", "14", "15"}
