package experiment

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"
)

// Every figure driver must run at small scale, produce a non-empty table,
// and print without panicking. This is the integration test for the whole
// reproduction pipeline.
func TestAllFiguresSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("figure drivers are slow; skipped with -short")
	}
	for _, id := range FigureIDs {
		id := id
		t.Run("fig"+id, func(t *testing.T) {
			start := time.Now()
			tab, err := Figures[id](Small)
			if err != nil {
				t.Fatalf("figure %s: %v", id, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("figure %s: empty table", id)
			}
			var buf bytes.Buffer
			tab.Fprint(&buf)
			if !strings.Contains(buf.String(), id) {
				t.Fatalf("figure %s: missing id in rendered title:\n%s", id, buf.String())
			}
			t.Logf("figure %s: %d rows in %v", id, len(tab.Rows), time.Since(start))
		})
	}
}

func TestParseScale(t *testing.T) {
	if s, err := ParseScale("small"); err != nil || s != Small {
		t.Fatal("small")
	}
	if s, err := ParseScale("paper"); err != nil || s != Paper {
		t.Fatal("paper")
	}
	if _, err := ParseScale("bogus"); err == nil {
		t.Fatal("expected error")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{Title: "Figure X", Columns: []string{"a", "b"}}
	tab.Add(1, 2.5)
	tab.Add("x", 150*time.Millisecond)
	tab.Notes = append(tab.Notes, "a note")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"Figure X", "2.5000", "150.00ms", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestStats(t *testing.T) {
	s := &stats{}
	for i := 1; i <= 5; i++ {
		s.add(float64(i))
	}
	if s.mean() != 3 {
		t.Errorf("mean = %v", s.mean())
	}
	if s.median() != 3 {
		t.Errorf("median = %v", s.median())
	}
	if s.quantile(1) != 5 || s.quantile(0) != 1 {
		t.Errorf("quantiles wrong")
	}
}

func TestRelErr(t *testing.T) {
	if relErr(1.1, 1.0) < 0.099 || relErr(1.1, 1.0) > 0.101 {
		t.Fatal("relErr wrong")
	}
	if relErr(0.5, 0) != 0.5 {
		t.Fatal("relErr at zero truth wrong")
	}
}

func TestFmtFloat(t *testing.T) {
	if fmtFloat(0) != "0" {
		t.Fatal("zero")
	}
	if !strings.Contains(fmtFloat(1e-7), "e-") {
		t.Fatal("scientific for tiny")
	}
	if _, err := strconv.ParseFloat(fmtFloat(0.25), 64); err != nil {
		t.Fatal("plain float must parse")
	}
}
