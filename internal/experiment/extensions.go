package experiment

// Extension experiments beyond the paper's figures, registered under ids
// "x1".."x4". They quantify the design choices of the extension subsystems:
// the dedicated pairwise-marginal DP against the two-label solver, the
// mixture learner's parameter recovery, the exact Count-Session
// distribution against Monte Carlo over possible worlds, and inference over
// Generalized Mallows sessions (exact solver vs the generic MISRIM
// estimator).

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"probpref/internal/analytics"
	"probpref/internal/dataset"
	"probpref/internal/label"
	"probpref/internal/learn"
	"probpref/internal/pattern"
	"probpref/internal/ppd"
	"probpref/internal/rank"
	"probpref/internal/rim"
	"probpref/internal/sampling"
	"probpref/internal/solver"
)

// RunExtX1 compares the O(m^2) pairwise-marginal DP with the paper's
// two-label solver computing the same quantity through a singleton-label
// pattern. Both are exact; the gap is the value of specializing.
func RunExtX1(scale Scale) (*Table, error) {
	ms := []int{10, 15, 20, 25}
	if scale == Paper {
		ms = []int{10, 20, 30, 40, 50, 60}
	}
	t := &Table{
		Title:   "x1: pairwise marginal, analytics DP vs two-label solver",
		Columns: []string{"m", "dp_time", "solver_time", "speedup", "max_abs_diff"},
	}
	for _, m := range ms {
		sigma := rank.Identity(m)
		rng := rand.New(rand.NewSource(int64(m)))
		rng.Shuffle(m, func(i, j int) { sigma[i], sigma[j] = sigma[j], sigma[i] })
		mdl := rim.MustMallows(sigma, 0.5).Model()
		pairs := [][2]rank.Item{
			{rank.Item(m - 1), 0}, {0, rank.Item(m - 1)}, {rank.Item(m / 2), rank.Item(m / 3)},
		}
		var dpTime, solverTime time.Duration
		maxDiff := 0.0
		for _, pr := range pairs {
			var pDP float64
			d1, err := timeIt(func() error {
				var err error
				pDP, err = analytics.PairwiseProb(mdl, pr[0], pr[1])
				return err
			})
			if err != nil {
				return nil, err
			}
			lab := label.NewLabeling()
			lab.Add(pr[0], 0)
			lab.Add(pr[1], 1)
			u := pattern.Union{pattern.TwoLabel(label.NewSet(0), label.NewSet(1))}
			var pTL float64
			d2, err := timeIt(func() error {
				var err error
				pTL, err = solver.TwoLabel(mdl, lab, u, solver.Options{})
				return err
			})
			if err != nil {
				return nil, err
			}
			dpTime += d1
			solverTime += d2
			if diff := math.Abs(pDP - pTL); diff > maxDiff {
				maxDiff = diff
			}
		}
		t.Add(m, dpTime, solverTime, float64(solverTime)/float64(dpTime), maxDiff)
	}
	t.Notes = append(t.Notes,
		"both methods are exact; max_abs_diff is floating-point noise",
		"the DP runs in O(m^2) per pair, the solver in O(m^3)")
	return t, nil
}

// RunExtX2 measures mixture learning: rankings drawn from a ground-truth
// Mallows mixture, EM recovery of centers, dispersions and weights.
func RunExtX2(scale Scale) (*Table, error) {
	m, n := 6, 600
	if scale == Paper {
		m, n = 10, 5000
	}
	truth := []struct {
		phi    float64
		weight float64
	}{
		{0.2, 0.5}, {0.3, 0.3}, {0.25, 0.2},
	}
	rng := rand.New(rand.NewSource(99))
	centers := make([]rank.Ranking, len(truth))
	var data []rank.Ranking
	for c := range truth {
		centers[c] = rank.Identity(m)
		rng.Shuffle(m, func(i, j int) { centers[c][i], centers[c][j] = centers[c][j], centers[c][i] })
		ml := rim.MustMallows(centers[c], truth[c].phi)
		for i := 0; i < int(truth[c].weight*float64(n)); i++ {
			data = append(data, ml.Sample(rng))
		}
	}
	fit, err := learn.FitMixture(data, len(truth), m, learn.MixtureConfig{Seed: 3})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "x2: Mallows mixture learning (EM) parameter recovery",
		Columns: []string{"component", "true_w", "learned_w", "true_phi", "learned_phi", "center_dist"},
	}
	used := make([]bool, len(truth))
	for c, comp := range fit.Mixture.Components {
		// Match each learned component to the nearest unused truth center.
		best, bestD := -1, math.MaxInt32
		for tc := range truth {
			if used[tc] {
				continue
			}
			if d := rank.KendallTau(comp.Sigma, centers[tc]); d < bestD {
				best, bestD = tc, d
			}
		}
		used[best] = true
		t.Add(fmt.Sprintf("%d->truth%d", c, best),
			truth[best].weight, fit.Mixture.Weights[c],
			truth[best].phi, comp.Phi, bestD)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d rankings over %d items; EM rounds: %d; log-likelihood %.1f",
			len(data), m, fit.Iterations, fit.LogLikelihood),
		"center_dist is the Kendall distance between learned and true centers (0 = exact)")
	return t, nil
}

// RunExtX3 validates the exact Count-Session distribution against Monte
// Carlo over sampled possible worlds on the Polls database.
func RunExtX3(scale Scale) (*Table, error) {
	voters, worlds := 40, 4000
	if scale == Paper {
		voters, worlds = 200, 50000
	}
	db, err := dataset.Polls(dataset.PollsConfig{Candidates: 12, Voters: voters, Seed: 17})
	if err != nil {
		return nil, err
	}
	q, err := ppd.Parse(`P(_, _; l; r), C(l, p, "M", _, _, _), C(r, p, "F", _, _, _)`)
	if err != nil {
		return nil, err
	}
	eng := &ppd.Engine{DB: db, Method: ppd.MethodAuto}
	dist, err := eng.CountDistribution(q)
	if err != nil {
		return nil, err
	}
	g, err := ppd.NewGrounder(db, q)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(5))
	var mcSum, mcSumSq float64
	tail := 0
	threshold := dist.Quantile(0.9)
	for w := 0; w < worlds; w++ {
		world := db.SampleWorld(rng)
		c, err := g.CountIn(world)
		if err != nil {
			return nil, err
		}
		mcSum += float64(c)
		mcSumSq += float64(c) * float64(c)
		if c >= threshold {
			tail++
		}
	}
	mcMean := mcSum / float64(worlds)
	mcVar := mcSumSq/float64(worlds) - mcMean*mcMean
	mcTail := float64(tail) / float64(worlds)

	t := &Table{
		Title:   "x3: Count-Session distribution, exact vs Monte Carlo worlds",
		Columns: []string{"stat", "exact", "monte_carlo", "rel_err"},
	}
	t.Add("mean", dist.Mean(), mcMean, relErr(mcMean, dist.Mean()))
	t.Add("variance", dist.Variance(), mcVar, relErr(mcVar, dist.Variance()))
	t.Add(fmt.Sprintf("Pr(count>=%d)", threshold), dist.Tail(threshold), mcTail, relErr(mcTail, dist.Tail(threshold)))
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d sessions, %d sampled worlds", dist.N(), worlds))
	return t, nil
}

// RunExtX4 exercises inference beyond plain Mallows: Generalized Mallows
// models (per-step dispersions) answered exactly by the paper's two-label
// solver through the RIM materialization, and approximately by the generic
// MISRIM estimator. The table reports both times and the estimator's
// relative error.
func RunExtX4(scale Scale) (*Table, error) {
	ms := []int{10, 14, 18}
	samples := 400
	if scale == Paper {
		ms = []int{10, 20, 30, 40}
		samples = 2000
	}
	t := &Table{
		Title:   "x4: Generalized Mallows inference, exact solver vs MISRIM",
		Columns: []string{"m", "exact", "exact_time", "misrim", "misrim_time", "rel_err"},
	}
	rng := rand.New(rand.NewSource(44))
	for _, m := range ms {
		sigma := rank.Identity(m)
		rng.Shuffle(m, func(i, j int) { sigma[i], sigma[j] = sigma[j], sigma[i] })
		phis := make([]float64, m)
		for i := range phis {
			phis[i] = 0.1 + 0.8*float64(i)/float64(m) // certain top, noisy bottom
		}
		gm, err := rim.NewGeneralizedMallows(sigma, phis)
		if err != nil {
			return nil, err
		}
		lab := label.NewLabeling()
		lab.Add(sigma[m-1], 0)
		lab.Add(sigma[m-2], 0)
		lab.Add(sigma[0], 1)
		u := pattern.Union{pattern.TwoLabel(label.NewSet(0), label.NewSet(1))}

		var exact float64
		dExact, err := timeIt(func() error {
			var err error
			exact, err = solver.TwoLabel(gm.Model(), lab, u, solver.Options{})
			return err
		})
		if err != nil {
			return nil, err
		}
		var est float64
		dEst, err := timeIt(func() error {
			var err error
			est, _, err = sampling.MISRIM(gm.Model(), lab, u, samples, rng, pattern.Limits{})
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Add(m, exact, dExact, est, dEst, relErr(est, exact))
	}
	t.Notes = append(t.Notes,
		"Generalized Mallows is a RIM, so every exact solver applies unchanged",
		"MISRIM uses one conditioned-RIM proposal per sub-ranking of the union")
	return t, nil
}

func init() {
	Figures["x1"] = RunExtX1
	Figures["x2"] = RunExtX2
	Figures["x3"] = RunExtX3
	Figures["x4"] = RunExtX4
	FigureIDs = append(FigureIDs, "x1", "x2", "x3", "x4")
}
