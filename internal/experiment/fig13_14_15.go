package experiment

import (
	"math/rand"
	"time"

	"probpref/internal/dataset"
	"probpref/internal/pattern"
	"probpref/internal/ppd"
	"probpref/internal/rim"
	"probpref/internal/sampling"
)

// RunFig13a reproduces Figure 13a: the proposal-construction overhead of
// MIS-AMP-adaptive on Benchmark-B, as a function of labels per pattern and
// items per label (m = 100, 3 patterns per union).
func RunFig13a(scale Scale) (*Table, error) {
	perCell := 2
	if scale == Paper {
		perCell = 10
	}
	all := dataset.BenchmarkB(131)
	t := &Table{
		Title:   "Figure 13a: MIS-AMP-adaptive proposal-construction overhead (Benchmark-B, m=100, 3 patterns)",
		Columns: []string{"labels", "items/label", "medianOverhead", "meanOverhead"},
	}
	for _, q := range []int{3, 4, 5} {
		for _, items := range []int{3, 5, 7} {
			st := &stats{}
			count := 0
			for _, in := range all {
				if in.Params["m"] != 100 || in.Params["z"] != 3 ||
					in.Params["q"] != q || in.Params["items"] != items {
					continue
				}
				if count >= perCell {
					break
				}
				count++
				est, err := sampling.NewEstimator(in.Model, in.Lab, in.Union,
					sampling.Config{Limits: decompositionLimits()})
				if err != nil {
					return nil, err
				}
				// Build the proposal pool for 10 proposals; all of this is
				// overhead, none of it sampling.
				if _, err := est.Estimate(10, 1, rand.New(rand.NewSource(int64(count))), true); err != nil {
					// An unsatisfiable instance contributes zero overhead.
					continue
				}
				st.add(est.Overhead().Seconds())
			}
			t.Add(q, items,
				time.Duration(st.median()*float64(time.Second)),
				time.Duration(st.mean()*float64(time.Second)))
		}
	}
	t.Notes = append(t.Notes,
		"target shape: overhead grows sharply with #labels, especially with many items per label")
	return t, nil
}

// RunFig13b reproduces Figure 13b: the sampling (convergence) time of
// MIS-AMP-adaptive on Benchmark-B as m grows (2 patterns per union, 5 items
// per label); query size has little impact once proposals exist.
func RunFig13b(scale Scale) (*Table, error) {
	perCell := 2
	samples := 200
	ms := []int{20, 50, 100}
	if scale == Paper {
		perCell = 3
		samples = 300
		ms = []int{20, 50, 100, 200}
	}
	all := dataset.BenchmarkB(132)
	t := &Table{
		Title:   "Figure 13b: MIS-AMP-adaptive sampling time vs m (Benchmark-B, 2 patterns, 5 items/label)",
		Columns: []string{"labels", "m", "medianSampling", "meanSampling"},
	}
	for _, q := range []int{3, 4, 5} {
		for _, m := range ms {
			st := &stats{}
			count := 0
			for _, in := range all {
				if in.Params["m"] != m || in.Params["z"] != 2 ||
					in.Params["q"] != q || in.Params["items"] != 5 {
					continue
				}
				if count >= perCell {
					break
				}
				count++
				est, err := sampling.NewEstimator(in.Model, in.Lab, in.Union,
					sampling.Config{Limits: decompositionLimits()})
				if err != nil {
					return nil, err
				}
				_, err = est.EstimateAdaptive(sampling.AdaptiveConfig{
					Samples: samples, Compensate: true, MaxD: 9,
				}, rand.New(rand.NewSource(int64(count))))
				if err != nil {
					continue
				}
				st.add(est.SamplingTime().Seconds())
			}
			t.Add(q, m,
				time.Duration(st.median()*float64(time.Second)),
				time.Duration(st.mean()*float64(time.Second)))
		}
	}
	t.Notes = append(t.Notes,
		"target shape: sampling time grows moderately with m; #labels has little impact")
	return t, nil
}

// decompositionLimits bounds the sub-ranking enumeration for the large
// Benchmark-B instances (documented pruning; compensation numerators are
// computed over the enumerated subset).
func decompositionLimits() pattern.Limits {
	return pattern.Limits{MaxEmbeddings: 3000, MaxSubRankings: 3000}
}

// RunFig14 reproduces Figure 14: MIS-AMP-adaptive running time on the
// MovieLens query as the catalog grows from 40 to 200 movies; genre
// diversity grows with the catalog, so the grounded pattern union grows
// from 1 to 14 patterns.
func RunFig14(scale Scale) (*Table, error) {
	ms := []int{40, 80, 120}
	sessionsPerM := 2
	samples := 150
	if scale == Paper {
		ms = []int{40, 80, 120, 160, 200}
		sessionsPerM = 16
		samples = 300
	}
	t := &Table{
		Title:   "Figure 14: MIS-AMP-adaptive runtime on MovieLens vs catalog size",
		Columns: []string{"m", "patterns", "medianTime", "meanTime", "sessions"},
	}
	for _, m := range ms {
		db, err := dataset.MovieLens(dataset.MovieLensConfig{Movies: m, Seed: 14})
		if err != nil {
			return nil, err
		}
		q := ppd.MustParse(dataset.MovieLensQueryText())
		g, err := ppd.NewGrounder(db, q)
		if err != nil {
			return nil, err
		}
		st := &stats{}
		patterns := 0
		count := 0
		for si, s := range g.Pref().Sessions.All() {
			if count >= sessionsPerM {
				break
			}
			gq, err := g.GroundSession(s)
			if err != nil {
				return nil, err
			}
			if len(gq.Union) == 0 {
				continue
			}
			count++
			patterns = len(gq.Union)
			d, err := timeIt(func() error {
				est, err := sampling.NewEstimator(s.Model.(*rim.Mallows), db.Labeling(), gq.Union,
					sampling.Config{Limits: decompLimits14()})
				if err != nil {
					return err
				}
				_, err = est.EstimateAdaptive(sampling.AdaptiveConfig{
					Samples: samples, Compensate: true, MaxD: 9,
				}, rand.New(rand.NewSource(int64(si))))
				return err
			})
			if err != nil {
				return nil, err
			}
			st.add(d.Seconds())
		}
		t.Add(m, patterns,
			time.Duration(st.median()*float64(time.Second)),
			time.Duration(st.mean()*float64(time.Second)),
			st.n())
	}
	t.Notes = append(t.Notes,
		"target shape: time grows with m; pattern count grows 1 -> 14 with genre diversity (paper legend: 1,3,11,12,14)")
	return t, nil
}

func decompLimits14() pattern.Limits {
	return pattern.Limits{MaxEmbeddings: 2000, MaxSubRankings: 2000}
}

// RunFig15 reproduces Figure 15: scalability over sessions on the
// CrowdRank-like workload. The naive strategy solves every session; the
// grouped strategy solves each distinct (model, demographic) request once,
// converging to a constant as sessions grow.
func RunFig15(scale Scale) (*Table, error) {
	counts := []int{10, 50, 200}
	movies := 10
	naiveCap := 200
	if scale == Paper {
		counts = []int{10, 100, 1000, 10000, 200000}
		movies = 20
		naiveCap = 1000
	}
	t := &Table{
		Title:   "Figure 15: session scalability on CrowdRank (naive vs grouped)",
		Columns: []string{"sessions", "groups", "naive", "grouped", "speedup"},
	}
	for _, n := range counts {
		db, err := dataset.CrowdRank(dataset.CrowdRankConfig{Workers: n, Movies: movies, Seed: 15})
		if err != nil {
			return nil, err
		}
		q := ppd.MustParse(dataset.CrowdRankQuery)
		grouped := &ppd.Engine{DB: db, Method: ppd.MethodRelOrder}
		var res *ppd.EvalResult
		groupedTime, err := timeIt(func() error {
			var e error
			res, e = grouped.Eval(q)
			return e
		})
		if err != nil {
			return nil, err
		}
		naiveTime := time.Duration(0)
		speedup := "-"
		if n <= naiveCap {
			naive := &ppd.Engine{DB: db, Method: ppd.MethodRelOrder, DisableGrouping: true}
			naiveTime, err = timeIt(func() error {
				_, e := naive.Eval(q)
				return e
			})
			if err != nil {
				return nil, err
			}
			if groupedTime > 0 {
				speedup = fmtFloat(naiveTime.Seconds()/groupedTime.Seconds()) + "x"
			}
			t.Add(n, res.Solves, naiveTime, groupedTime, speedup)
		} else {
			t.Add(n, res.Solves, "(skipped)", groupedTime, "-")
		}
	}
	t.Notes = append(t.Notes,
		"target shape: naive time linear in sessions; grouped time converges once all distinct requests are seen")
	return t, nil
}
