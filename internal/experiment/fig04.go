package experiment

import (
	"math/rand"
	"time"

	"probpref/internal/dataset"
	"probpref/internal/pattern"
	"probpref/internal/ppd"
	"probpref/internal/rim"
	"probpref/internal/sampling"
	"probpref/internal/solver"
)

// Fig4Query is the two-label query of Figure 4: does any session prefer a
// male candidate to a female candidate of the same party?
const Fig4Query = `P(_, _; l; r), C(l, p, M, _, _, _), C(r, p, F, _, _, _)`

// RunFig04 reproduces Figure 4: the running time of the three exact solvers
// and of MIS-AMP-adaptive on the Polls two-label query, as the number of
// candidates m grows. The paper's ordering — two-label < bipartite <
// general, with MIS-AMP-adaptive the most scalable — is the target shape.
func RunFig04(scale Scale) (*Table, error) {
	ms := []int{20, 24}
	groupsPerM := 4
	if scale == Paper {
		ms = []int{20, 22, 24, 26, 28, 30}
		groupsPerM = 8
	}
	t := &Table{
		Title:   "Figure 4: exact solvers vs MIS-AMP-adaptive on Polls (two-label query)",
		Columns: []string{"m", "solver", "median", "mean", "max", "medianRelErr"},
	}
	for _, m := range ms {
		db, err := dataset.Polls(dataset.PollsConfig{Candidates: m, Voters: 60, Seed: int64(m)})
		if err != nil {
			return nil, err
		}
		groups, err := distinctGroups(db, Fig4Query, groupsPerM)
		if err != nil {
			return nil, err
		}
		times := map[string]*stats{}
		errs := &stats{}
		for name := range map[string]bool{"two-label": true, "bipartite": true, "general": true, "mis-amp-adaptive": true} {
			times[name] = &stats{}
		}
		for gi, g := range groups {
			exact := 0.0
			d, err := timeIt(func() error {
				var e error
				exact, e = solver.TwoLabel(g.model.Model(), db.Labeling(), g.union, solver.Options{})
				return e
			})
			if err != nil {
				return nil, err
			}
			times["two-label"].add(d.Seconds())

			d, err = timeIt(func() error {
				_, e := solver.Bipartite(g.model.Model(), db.Labeling(), g.union, solver.Options{})
				return e
			})
			if err != nil {
				return nil, err
			}
			times["bipartite"].add(d.Seconds())

			d, err = timeIt(func() error {
				_, e := solver.General(g.model.Model(), db.Labeling(), g.union, solver.Options{})
				return e
			})
			if err != nil {
				return nil, err
			}
			times["general"].add(d.Seconds())

			var est sampling.AdaptiveResult
			d, err = timeIt(func() error {
				e, err := sampling.NewEstimator(g.model, db.Labeling(), g.union, sampling.Config{})
				if err != nil {
					return err
				}
				est, err = e.EstimateAdaptive(sampling.AdaptiveConfig{
					Samples: 400, DeltaD: 4, MaxD: 64, Tol: 0.02, Compensate: true,
				}, rand.New(rand.NewSource(int64(gi))))
				return err
			})
			if err != nil {
				return nil, err
			}
			times["mis-amp-adaptive"].add(d.Seconds())
			errs.add(relErr(est.Estimate, exact))
		}
		for _, name := range []string{"two-label", "bipartite", "general", "mis-amp-adaptive"} {
			st := times[name]
			re := "-"
			if name == "mis-amp-adaptive" {
				re = fmtFloat(errs.median())
			}
			t.Add(m, name,
				time.Duration(st.median()*float64(time.Second)),
				time.Duration(st.mean()*float64(time.Second)),
				time.Duration(st.quantile(1)*float64(time.Second)),
				re)
		}
	}
	t.Notes = append(t.Notes,
		"target shape: two-label < bipartite < general; MIS-AMP-adaptive most scalable with low relative error")
	return t, nil
}

type sessionGroup struct {
	model *rim.Mallows
	union pattern.Union
}

// distinctGroups grounds the query over the database's sessions and returns
// up to max distinct (model, union) groups — the unit the solvers actually
// process after identical-request grouping.
func distinctGroups(db *ppd.DB, query string, max int) ([]sessionGroup, error) {
	q, err := ppd.Parse(query)
	if err != nil {
		return nil, err
	}
	g, err := ppd.NewGrounder(db, q)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []sessionGroup
	for _, s := range g.Pref().Sessions.All() {
		gq, err := g.GroundSession(s)
		if err != nil {
			return nil, err
		}
		if len(gq.Union) == 0 {
			continue
		}
		key := ppd.GroupKey(ppd.MethodAuto, s.Model, gq.Union)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, sessionGroup{model: s.Model.(*rim.Mallows), union: gq.Union})
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out, nil
}
