package experiment

import (
	"context"
	"errors"
	"time"

	"probpref/internal/dataset"
	"probpref/internal/pattern"
	"probpref/internal/solver"
)

// RunFig05 reproduces Figure 5: the general solver's per-conjunction cost on
// Benchmark-A grows exponentially with the number of patterns in the
// conjunction. For each union g1 ∪ g2 ∪ g3 the inclusion-exclusion
// expansion solves conjunctions of size 1, 2 and 3; the table reports the
// single-pattern solver time per conjunction size.
func RunFig05(scale Scale) (*Table, error) {
	unions := 3
	if scale == Paper {
		unions = 33
	}
	insts := dataset.BenchmarkA(41)[:unions]
	times := map[int]*stats{1: {}, 2: {}, 3: {}}
	for _, in := range insts {
		for mask := 1; mask < 8; mask++ {
			var members pattern.Union
			for b := 0; b < 3; b++ {
				if mask&(1<<b) != 0 {
					members = append(members, in.Union[b])
				}
			}
			conj := pattern.Conjoin(members...)
			d, err := timeIt(func() error {
				_, e := solver.SinglePattern(in.Model.Model(), in.Lab, conj, solver.Options{})
				return e
			})
			if err != nil {
				return nil, err
			}
			times[len(members)].add(d.Seconds())
		}
	}
	t := &Table{
		Title:   "Figure 5: general solver time vs #patterns in conjunction (Benchmark-A)",
		Columns: []string{"conjPatterns", "median", "mean", "max"},
	}
	for _, z := range []int{1, 2, 3} {
		st := times[z]
		t.Add(z,
			time.Duration(st.median()*float64(time.Second)),
			time.Duration(st.mean()*float64(time.Second)),
			time.Duration(st.quantile(1)*float64(time.Second)))
	}
	t.Notes = append(t.Notes, "target shape: exponential growth with conjunction size")
	return t, nil
}

// RunFig06 reproduces Figure 6: the proportion of Benchmark-D instances the
// two-label solver finishes within the timeout, per (m, patterns-per-union).
// The paper uses a 10-minute budget; the small scale shrinks it
// proportionally, preserving the completion gradient.
func RunFig06(scale Scale) (*Table, error) {
	perCell := 2
	timeout := 300 * time.Millisecond
	ms := []int{20, 30, 40}
	zs := []int{2, 3, 4}
	if scale == Paper {
		perCell = 10
		timeout = 10 * time.Minute
		ms = []int{20, 30, 40, 50, 60}
		zs = []int{2, 3, 4, 5}
	}
	all := dataset.BenchmarkD(42)
	t := &Table{
		Title:   "Figure 6: % Benchmark-D instances finished by the two-label solver in time",
		Columns: []string{"patterns", "m", "finished", "total", "pct"},
	}
	for _, z := range zs {
		for _, m := range ms {
			finished, total := 0, 0
			for _, in := range all {
				if in.Params["m"] != m || in.Params["z"] != z {
					continue
				}
				if total >= perCell*3 { // across the three items/label values
					break
				}
				total++
				ctx, cancel := context.WithTimeout(context.Background(), timeout)
				_, err := solver.TwoLabel(in.Model.Model(), in.Lab, in.Union, solver.Options{Ctx: ctx})
				cancel()
				switch {
				case err == nil:
					finished++
				case errors.Is(err, context.DeadlineExceeded):
				default:
					return nil, err
				}
			}
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(finished) / float64(total)
			}
			t.Add(z, m, finished, total, pct)
		}
	}
	t.Notes = append(t.Notes,
		"target shape: completion rate decreases with both m and #patterns (paper Figure 6 heatmap)")
	return t, nil
}

// RunFig07a reproduces Figure 7a: bipartite solver time vs m and labels per
// pattern, with 3 patterns per union and 3 items per label (Benchmark-C).
func RunFig07a(scale Scale) (*Table, error) {
	return runFig07(scale, true)
}

// RunFig07b reproduces Figure 7b: bipartite solver time vs m and patterns
// per union, with 3 labels per pattern and 3 items per label.
func RunFig07b(scale Scale) (*Table, error) {
	return runFig07(scale, false)
}

func runFig07(scale Scale, byLabels bool) (*Table, error) {
	perCell := 2
	ms := []int{10, 12, 14}
	timeout := 2 * time.Second
	if scale == Paper {
		perCell = 10
		ms = []int{10, 12, 14, 16}
		timeout = 10 * time.Minute
	}
	all := dataset.BenchmarkC(43)
	var varName string
	var varVals []int
	if byLabels {
		varName = "labels"
		varVals = []int{2, 3, 4}
	} else {
		varName = "patterns"
		varVals = []int{1, 2, 3}
	}
	title := "Figure 7a: bipartite solver time vs m and labels/pattern (3 patterns, 3 items/label)"
	if !byLabels {
		title = "Figure 7b: bipartite solver time vs m and patterns/union (3 labels, 3 items/label)"
	}
	t := &Table{
		Title:   title,
		Columns: []string{varName, "m", "median", "mean", "timeouts"},
	}
	for _, v := range varVals {
		for _, m := range ms {
			st := &stats{}
			timeouts := 0
			count := 0
			for _, in := range all {
				if in.Params["m"] != m || in.Params["items"] != 3 {
					continue
				}
				if byLabels {
					if in.Params["q"] != v || in.Params["z"] != 3 {
						continue
					}
				} else {
					if in.Params["z"] != v || in.Params["q"] != 3 {
						continue
					}
				}
				if count >= perCell {
					break
				}
				count++
				ctx, cancel := context.WithTimeout(context.Background(), timeout)
				d, err := timeIt(func() error {
					_, e := solver.Bipartite(in.Model.Model(), in.Lab, in.Union, solver.Options{Ctx: ctx})
					return e
				})
				cancel()
				switch {
				case err == nil:
					st.add(d.Seconds())
				case errors.Is(err, context.DeadlineExceeded):
					timeouts++
				default:
					return nil, err
				}
			}
			t.Add(v, m,
				time.Duration(st.median()*float64(time.Second)),
				time.Duration(st.mean()*float64(time.Second)),
				timeouts)
		}
	}
	t.Notes = append(t.Notes, "target shape: steep growth with m and with the varied parameter")
	return t, nil
}
