package pattern

import (
	"strings"
	"testing"

	"probpref/internal/label"
	"probpref/internal/rank"
)

func twoLabelUnionFixture() (Union, *label.Labeling) {
	lab := label.NewLabeling()
	lab.Add(0, 0)
	lab.Add(1, 1)
	lab.Add(2, 2)
	u := Union{
		TwoLabel(label.NewSet(0), label.NewSet(1)),
		TwoLabel(label.NewSet(2), label.NewSet(0)),
	}
	return u, lab
}

func TestMergeDeduplicates(t *testing.T) {
	u1, _ := twoLabelUnionFixture()
	u2 := Union{u1[0], TwoLabel(label.NewSet(1), label.NewSet(2))}
	merged := Merge(u1, u2)
	if len(merged) != 3 {
		t.Fatalf("merged has %d patterns, want 3", len(merged))
	}
	// First-seen order preserved.
	if merged[0].Key() != u1[0].Key() || merged[2].Key() != u2[1].Key() {
		t.Fatal("merge did not preserve first-seen order")
	}
	if got := Merge(); len(got) != 0 {
		t.Fatalf("Merge() = %v, want empty", got)
	}
	if got := Merge(u1, u1, u1); len(got) != len(u1) {
		t.Fatalf("self-merge has %d patterns, want %d", len(got), len(u1))
	}
}

func TestMergeSemantics(t *testing.T) {
	u1, lab := twoLabelUnionFixture()
	u2 := Union{u1[1], TwoLabel(label.NewSet(1), label.NewSet(2))}
	merged := Merge(u1, u2)
	rank.ForEachPermutation(3, func(tau rank.Ranking) bool {
		want := u1.Matches(tau, lab) || u2.Matches(tau, lab)
		if got := merged.Matches(tau, lab); got != want {
			t.Fatalf("tau=%v: merged=%v, disjunction=%v", tau, got, want)
		}
		return true
	})
}

func TestUnionMaxNodes(t *testing.T) {
	u, _ := twoLabelUnionFixture()
	if got := u.MaxNodes(); got != 2 {
		t.Fatalf("MaxNodes = %d, want 2", got)
	}
	big := MustNew([]Node{
		{Labels: label.NewSet(0)},
		{Labels: label.NewSet(1)},
		{Labels: label.NewSet(2)},
	}, [][2]int{{0, 1}, {0, 2}})
	if got := append(u, big).MaxNodes(); got != 3 {
		t.Fatalf("MaxNodes = %d, want 3", got)
	}
	if got := (Union{}).MaxNodes(); got != 0 {
		t.Fatalf("empty MaxNodes = %d, want 0", got)
	}
}

func TestUnionClassification(t *testing.T) {
	u, _ := twoLabelUnionFixture()
	if !u.AllTwoLabel() || !u.AllBipartite() {
		t.Fatal("two-label union misclassified")
	}
	chain := MustNew([]Node{
		{Labels: label.NewSet(0)},
		{Labels: label.NewSet(1)},
		{Labels: label.NewSet(2)},
	}, [][2]int{{0, 1}, {1, 2}})
	mixed := append(u, chain)
	if mixed.AllTwoLabel() {
		t.Fatal("chain counted as two-label")
	}
	if mixed.AllBipartite() {
		t.Fatal("chain counted as bipartite")
	}
}

func TestPatternString(t *testing.T) {
	u, _ := twoLabelUnionFixture()
	s := u[0].String()
	for _, want := range []string{"pattern{", "0>1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestUnionMatchesConstraints(t *testing.T) {
	// Constraint semantics on a union: satisfied when any member's min/max
	// relaxation holds.
	lab := label.NewLabeling()
	lab.Add(0, 0)
	lab.Add(1, 1)
	lab.Add(2, 2)
	u := Union{
		TwoLabel(label.NewSet(0), label.NewSet(1)), // alpha(0) < beta(1)
		TwoLabel(label.NewSet(2), label.NewSet(1)), // alpha(2) < beta(1)
	}
	rank.ForEachPermutation(3, func(tau rank.Ranking) bool {
		want := tau.Prefers(0, 1) || tau.Prefers(2, 1)
		if got := u.MatchesConstraints(tau, lab); got != want {
			t.Fatalf("tau=%v: constraints=%v, want %v", tau, got, want)
		}
		return true
	})
	// For two-label singleton patterns, constraint semantics coincide with
	// matching semantics.
	rank.ForEachPermutation(3, func(tau rank.Ranking) bool {
		if u.MatchesConstraints(tau, lab) != u.Matches(tau, lab) {
			t.Fatalf("tau=%v: constraint and match semantics diverge on singleton two-label", tau)
		}
		return true
	})
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on a cyclic pattern")
		}
	}()
	MustNew([]Node{{Labels: label.NewSet(0)}, {Labels: label.NewSet(1)}},
		[][2]int{{0, 1}, {1, 0}})
}
