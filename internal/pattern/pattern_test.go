package pattern

import (
	"math/rand"
	"testing"

	"probpref/internal/label"
	"probpref/internal/rank"
)

// testWorld is a reusable fixture: m items with random small label sets.
type testWorld struct {
	m   int
	lab *label.Labeling
}

func randomWorld(rng *rand.Rand, m, numLabels int) *testWorld {
	lab := label.NewLabeling()
	for it := 0; it < m; it++ {
		for l := 0; l < numLabels; l++ {
			if rng.Float64() < 0.4 {
				lab.Add(rank.Item(it), label.Label(l))
			}
		}
	}
	return &testWorld{m: m, lab: lab}
}

// randomPattern builds a random DAG pattern over numLabels labels with q
// nodes. Edges only go from lower to higher node index, guaranteeing
// acyclicity.
func randomPattern(rng *rand.Rand, q, numLabels int) *Pattern {
	nodes := make([]Node, q)
	for i := range nodes {
		n := 1 + rng.Intn(2)
		ls := make([]label.Label, n)
		for j := range ls {
			ls[j] = label.Label(rng.Intn(numLabels))
		}
		nodes[i].Labels = label.NewSet(ls...)
	}
	var edges [][2]int
	for a := 0; a < q; a++ {
		for b := a + 1; b < q; b++ {
			if rng.Float64() < 0.5 {
				edges = append(edges, [2]int{a, b})
			}
		}
	}
	return MustNew(nodes, edges)
}

// matchByEnumeration is an oracle: try every node->position assignment.
func matchByEnumeration(g *Pattern, tau rank.Ranking, lab *label.Labeling) bool {
	q := g.NumNodes()
	assign := make([]int, q)
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == q {
			for _, e := range g.Edges() {
				if assign[e[0]] >= assign[e[1]] {
					return false
				}
			}
			return true
		}
		for p := 0; p < len(tau); p++ {
			if !lab.HasAll(tau[p], g.Node(v).Labels) {
				continue
			}
			assign[v] = p
			if rec(v + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]Node{{}}, [][2]int{{0, 1}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := New([]Node{{}}, [][2]int{{0, 0}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := New([]Node{{}, {}}, [][2]int{{0, 1}, {1, 0}}); err == nil {
		t.Error("cycle accepted")
	}
}

// Example 2.3 of the paper: tau = <Trump, Clinton, Sanders, Rubio> with
// pattern F > M matches via Clinton (pos 2) > Sanders (pos 3).
func TestMatchesExample23(t *testing.T) {
	const (
		trump   = rank.Item(0)
		clinton = rank.Item(1)
		sanders = rank.Item(2)
		rubio   = rank.Item(3)
		female  = label.Label(0)
		male    = label.Label(1)
	)
	lab := label.NewLabeling()
	lab.Add(trump, male)
	lab.Add(clinton, female)
	lab.Add(sanders, male)
	lab.Add(rubio, male)
	g := TwoLabel(label.NewSet(female), label.NewSet(male))
	tau := rank.Ranking{trump, clinton, sanders, rubio}
	if !g.Matches(tau, lab) {
		t.Fatal("pattern F > M should match")
	}
	emb, ok := g.GreedyEmbedding(tau, lab)
	if !ok || emb[0] != 1 || emb[1] != 2 {
		t.Fatalf("greedy embedding = %v (ok=%v), want [1 2]", emb, ok)
	}
	// The reverse pattern M > F also matches (Trump before Clinton).
	if !TwoLabel(label.NewSet(male), label.NewSet(female)).Matches(tau, lab) {
		t.Fatal("pattern M > F should match via Trump > Clinton")
	}
}

// Property: greedy matching agrees with exhaustive embedding enumeration.
func TestMatchesAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		m := 3 + rng.Intn(4)
		w := randomWorld(rng, m, 4)
		g := randomPattern(rng, 1+rng.Intn(4), 4)
		tau := make(rank.Ranking, m)
		for i, v := range rng.Perm(m) {
			tau[i] = rank.Item(v)
		}
		want := matchByEnumeration(g, tau, w.lab)
		if got := g.Matches(tau, w.lab); got != want {
			t.Fatalf("trial %d: Matches=%v enumeration=%v\npattern=%v tau=%v",
				trial, got, want, g, tau)
		}
	}
}

func TestTransitiveClosure(t *testing.T) {
	g := MustNew(
		[]Node{{Labels: label.NewSet(0)}, {Labels: label.NewSet(1)}, {Labels: label.NewSet(2)}},
		[][2]int{{0, 1}, {1, 2}},
	)
	tc := g.TransitiveClosure()
	if len(tc.Edges()) != 3 {
		t.Fatalf("tc has %d edges, want 3", len(tc.Edges()))
	}
	found := false
	for _, e := range tc.Edges() {
		if e == ([2]int{0, 2}) {
			found = true
		}
	}
	if !found {
		t.Fatal("implied edge 0->2 missing")
	}
}

func TestClassification(t *testing.T) {
	two := TwoLabel(label.NewSet(0), label.NewSet(1))
	if !two.IsTwoLabel() || !two.IsBipartite() {
		t.Error("two-label pattern misclassified")
	}
	star := MustNew(
		[]Node{{Labels: label.NewSet(0)}, {Labels: label.NewSet(1)}, {Labels: label.NewSet(2)}},
		[][2]int{{0, 1}, {0, 2}},
	)
	if star.IsTwoLabel() || !star.IsBipartite() {
		t.Error("star pattern misclassified")
	}
	chain := MustNew(
		[]Node{{Labels: label.NewSet(0)}, {Labels: label.NewSet(1)}, {Labels: label.NewSet(2)}},
		[][2]int{{0, 1}, {1, 2}},
	)
	if chain.IsBipartite() {
		t.Error("chain misclassified as bipartite")
	}
}

// Conjunction semantics: tau |= Conjoin(g1, g2) iff tau |= g1 and tau |= g2.
func TestConjoinSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 300; trial++ {
		m := 3 + rng.Intn(4)
		w := randomWorld(rng, m, 4)
		g1 := randomPattern(rng, 1+rng.Intn(3), 4)
		g2 := randomPattern(rng, 1+rng.Intn(3), 4)
		conj := Conjoin(g1, g2)
		tau := make(rank.Ranking, m)
		for i, v := range rng.Perm(m) {
			tau[i] = rank.Item(v)
		}
		want := g1.Matches(tau, w.lab) && g2.Matches(tau, w.lab)
		if got := conj.Matches(tau, w.lab); got != want {
			t.Fatalf("trial %d: conjoin=%v, want %v", trial, got, want)
		}
	}
}

func TestUnionKeyCanonical(t *testing.T) {
	a := TwoLabel(label.NewSet(0), label.NewSet(1))
	b := TwoLabel(label.NewSet(2), label.NewSet(3))
	u1, u2 := Union{a, b}, Union{b, a}
	if u1.Key() != u2.Key() {
		t.Fatal("union key must be order-insensitive")
	}
	ua, ub := Union{a}, Union{b}
	if ua.Key() == ub.Key() {
		t.Fatal("distinct unions share a key")
	}
}

func TestMinMaxPos(t *testing.T) {
	lab := label.NewLabeling()
	lab.Add(0, 5)
	lab.Add(2, 5)
	tau := rank.Ranking{1, 0, 2}
	if got := MinPos(tau, lab, label.NewSet(5)); got != 1 {
		t.Errorf("MinPos = %d, want 1", got)
	}
	if got := MaxPos(tau, lab, label.NewSet(5)); got != 2 {
		t.Errorf("MaxPos = %d, want 2", got)
	}
	if got := MinPos(tau, lab, label.NewSet(9)); got != 3 {
		t.Errorf("MinPos(absent) = %d, want len", got)
	}
	if got := MaxPos(tau, lab, label.NewSet(9)); got != -1 {
		t.Errorf("MaxPos(absent) = %d, want -1", got)
	}
}

// Example 4.4 of the paper: the constraint relaxation of a chain pattern can
// hold while the pattern itself does not.
func TestMatchesConstraintsExample44(t *testing.T) {
	const (
		a  = rank.Item(0)
		b1 = rank.Item(1)
		b2 = rank.Item(2)
		c  = rank.Item(3)
		la = label.Label(0)
		lb = label.Label(1)
		lc = label.Label(2)
	)
	lab := label.NewLabeling()
	lab.Add(a, la)
	lab.Add(b1, lb)
	lab.Add(b2, lb)
	lab.Add(c, lc)
	chain := MustNew(
		[]Node{{Labels: label.NewSet(la)}, {Labels: label.NewSet(lb)}, {Labels: label.NewSet(lc)}},
		[][2]int{{0, 1}, {1, 2}},
	)
	// tau = <b1, a, c, b2>: satisfies all tc constraints but not the chain.
	tau := rank.Ranking{b1, a, c, b2}
	closure := chain.TransitiveClosure()
	if !closure.MatchesConstraints(tau, lab) {
		t.Fatal("constraint relaxation should hold")
	}
	if chain.Matches(tau, lab) {
		t.Fatal("chain pattern should not match")
	}
}

// Property: for bipartite patterns, constraint semantics coincides with
// embedding semantics.
func TestBipartiteConstraintEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 400; trial++ {
		m := 3 + rng.Intn(4)
		w := randomWorld(rng, m, 4)
		// Build a random bipartite pattern: sources then sinks.
		nl := 1 + rng.Intn(2)
		nr := 1 + rng.Intn(2)
		nodes := make([]Node, nl+nr)
		for i := range nodes {
			nodes[i].Labels = label.NewSet(label.Label(rng.Intn(4)))
		}
		var edges [][2]int
		for i := 0; i < nl; i++ {
			for j := nl; j < nl+nr; j++ {
				if rng.Float64() < 0.6 {
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		if len(edges) == 0 {
			continue
		}
		g := MustNew(nodes, edges)
		tau := make(rank.Ranking, m)
		for i, v := range rng.Perm(m) {
			tau[i] = rank.Item(v)
		}
		if g.Matches(tau, w.lab) != g.MatchesConstraints(tau, w.lab) {
			t.Fatalf("trial %d: bipartite mismatch for %v on %v", trial, g, tau)
		}
	}
}

// Property: constraint semantics of the transitive closure is an upper bound
// on embedding semantics for arbitrary patterns.
func TestConstraintsUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 400; trial++ {
		m := 3 + rng.Intn(4)
		w := randomWorld(rng, m, 4)
		g := randomPattern(rng, 2+rng.Intn(3), 4)
		tau := make(rank.Ranking, m)
		for i, v := range rng.Perm(m) {
			tau[i] = rank.Item(v)
		}
		if g.Matches(tau, w.lab) && !g.TransitiveClosure().MatchesConstraints(tau, w.lab) {
			t.Fatalf("trial %d: match without constraint satisfaction", trial)
		}
	}
}
