package pattern

import (
	"math/rand"
	"testing"

	"probpref/internal/label"
	"probpref/internal/rank"
)

func TestEase(t *testing.T) {
	lab := label.NewLabeling()
	lab.Add(0, 0) // label 0 on top item
	lab.Add(3, 1) // label 1 on bottom item
	lab.Add(1, 1)
	sigma := rank.Identity(4)
	g := TwoLabel(label.NewSet(0), label.NewSet(1))
	// alpha(l0)=0, beta(l1)=3 -> ease 3 (easy).
	if got := Ease(g, g.Edges()[0], sigma, lab); got != 3 {
		t.Fatalf("ease = %d, want 3", got)
	}
	rev := TwoLabel(label.NewSet(1), label.NewSet(0))
	// alpha(l1)=1, beta(l0)=0 -> ease -1 (hard).
	if got := Ease(rev, rev.Edges()[0], sigma, lab); got != -1 {
		t.Fatalf("ease = %d, want -1", got)
	}
}

// BoundPattern with k=1 must produce a two-label pattern; with k=2 a
// pattern with two constraint edges.
func TestBoundPatternShape(t *testing.T) {
	lab := label.NewLabeling()
	lab.Add(0, 0)
	lab.Add(1, 1)
	lab.Add(2, 2)
	chain := MustNew(
		[]Node{{Labels: label.NewSet(0)}, {Labels: label.NewSet(1)}, {Labels: label.NewSet(2)}},
		[][2]int{{0, 1}, {1, 2}},
	)
	sigma := rank.Identity(3)
	b1 := BoundPattern(chain, sigma, lab, 1)
	if !b1.IsTwoLabel() {
		t.Fatalf("k=1 bound is not two-label: %v", b1)
	}
	b2 := BoundPattern(chain, sigma, lab, 2)
	if len(b2.Edges()) != 2 {
		t.Fatalf("k=2 bound has %d edges", len(b2.Edges()))
	}
}

// Property: the bound pattern (constraint semantics) is implied by the
// original pattern (embedding semantics) on every ranking — the foundation
// of the top-k optimization (Pr(G') >= Pr(G)).
func TestBoundDominates(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		m := 3 + rng.Intn(4)
		w := randomWorld(rng, m, 4)
		g := randomPattern(rng, 2+rng.Intn(3), 4)
		if len(g.Edges()) == 0 {
			continue
		}
		sigma := make(rank.Ranking, m)
		for i, v := range rng.Perm(m) {
			sigma[i] = rank.Item(v)
		}
		for _, k := range []int{1, 2} {
			bound := BoundPattern(g, sigma, w.lab, k)
			rank.ForEachPermutation(m, func(tau rank.Ranking) bool {
				tr := make(rank.Ranking, m)
				for i, v := range tau {
					tr[i] = rank.Item(v)
				}
				if g.Matches(tr, w.lab) && !bound.MatchesConstraints(tr, w.lab) {
					t.Fatalf("trial %d k=%d: bound violated\n g=%v\n bound=%v\n tau=%v",
						trial, k, g, bound, tr)
				}
				return true
			})
		}
	}
}

func TestBoundUnion(t *testing.T) {
	lab := label.NewLabeling()
	lab.Add(0, 0)
	lab.Add(1, 1)
	u := Union{
		TwoLabel(label.NewSet(0), label.NewSet(1)),
		TwoLabel(label.NewSet(1), label.NewSet(0)),
	}
	b := BoundUnion(u, rank.Identity(2), lab, 1)
	if len(b) != 2 || !b.AllTwoLabel() {
		t.Fatalf("BoundUnion = %v", b)
	}
}
