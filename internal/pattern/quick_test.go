package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"

	"probpref/internal/label"
	"probpref/internal/rank"
)

// Property: matching is monotone under insertion — if a ranking matches a
// pattern, any ranking obtained by inserting one more item still matches
// (relative order of existing items is preserved and candidates only grow).
// This property underpins the absorbing-accept optimization of the
// relative-order solver.
func TestMatchingMonotoneUnderInsertion(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 300; trial++ {
		m := 3 + rng.Intn(4)
		w := randomWorld(rng, m+1, 4)
		g := randomPattern(rng, 1+rng.Intn(3), 4)
		tau := make(rank.Ranking, m)
		for i, v := range rng.Perm(m) {
			tau[i] = rank.Item(v)
		}
		if !g.Matches(tau, w.lab) {
			continue
		}
		ext := tau.Insert(rank.Item(m), rng.Intn(m+1))
		if !g.Matches(ext, w.lab) {
			t.Fatalf("trial %d: match lost after insertion\n g=%v\n tau=%v ext=%v",
				trial, g, tau, ext)
		}
	}
}

// Property (testing/quick): union matching equals the disjunction of member
// matching.
func TestUnionMatchesQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	w := randomWorld(rng, 5, 4)
	g1 := randomPattern(rng, 2, 4)
	g2 := randomPattern(rng, 2, 4)
	u := Union{g1, g2}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tau := make(rank.Ranking, 5)
		for i, v := range r.Perm(5) {
			tau[i] = rank.Item(v)
		}
		return u.Matches(tau, w.lab) == (g1.Matches(tau, w.lab) || g2.Matches(tau, w.lab))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: transitive closure never changes matching semantics.
func TestClosureSemanticsInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 200; trial++ {
		m := 3 + rng.Intn(4)
		w := randomWorld(rng, m, 4)
		g := randomPattern(rng, 2+rng.Intn(3), 4)
		tc := g.TransitiveClosure()
		tau := make(rank.Ranking, m)
		for i, v := range rng.Perm(m) {
			tau[i] = rank.Item(v)
		}
		if g.Matches(tau, w.lab) != tc.Matches(tau, w.lab) {
			t.Fatalf("trial %d: closure changed semantics for %v on %v", trial, g, tau)
		}
	}
}

// Property: the pattern key is a faithful identity — equal keys imply equal
// structure, and key generation is deterministic.
func TestPatternKeyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < 100; trial++ {
		g := randomPattern(rng, 1+rng.Intn(4), 4)
		if g.Key() != g.Key() {
			t.Fatal("key not deterministic")
		}
		clone := MustNew(
			append([]Node(nil), mustNodes(g)...),
			append([][2]int(nil), g.Edges()...),
		)
		if clone.Key() != g.Key() {
			t.Fatalf("clone key differs: %q vs %q", clone.Key(), g.Key())
		}
	}
}

func mustNodes(g *Pattern) []Node {
	nodes := make([]Node, g.NumNodes())
	for i := range nodes {
		nodes[i] = g.Node(i)
	}
	return nodes
}

// Property: a pattern with an unmatchable node matches nothing.
func TestUnmatchableNode(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	w := randomWorld(rng, 5, 3)
	nodes := []Node{
		{Labels: label.NewSet(9)}, // label 9 exists on no item
		{Labels: label.NewSet(0)},
	}
	g := MustNew(nodes, [][2]int{{0, 1}})
	rank.ForEachPermutation(5, func(tau rank.Ranking) bool {
		if g.Matches(tau, w.lab) {
			t.Fatalf("pattern with unmatchable node matched %v", tau)
		}
		return true
	})
}
