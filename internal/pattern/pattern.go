// Package pattern implements label patterns — partial orders over sets of
// labels — and pattern unions, the core objects of the paper's inference
// problem: given a labeled RIM model and a union G = g1 ∪ ... ∪ gz, compute
// the marginal probability that a random ranking matches at least one gi.
//
// A pattern is a DAG whose nodes carry label sets. A ranking tau matches a
// pattern (w.r.t. a labeling lambda) when there is an embedding delta mapping
// every node to a position such that the item at that position carries all of
// the node's labels and every edge (u, v) maps to strictly increasing
// positions. Non-adjacent nodes may share a position.
package pattern

import (
	"fmt"
	"sort"
	"strings"

	"probpref/internal/label"
)

// Node is a pattern node: the matched item must carry every label in Labels.
// An empty label set matches any item.
type Node struct {
	Labels label.Set
}

// Pattern is a directed acyclic graph over nodes, where an edge (u, v) means
// "the item matching u is preferred to the item matching v".
type Pattern struct {
	nodes []Node
	edges [][2]int // node indices, u -> v
	preds [][]int  // per node, predecessor indices (computed at construction)
	topo  []int    // topological node order (computed at construction)
}

// New constructs a pattern and validates acyclicity.
func New(nodes []Node, edges [][2]int) (*Pattern, error) {
	p := &Pattern{nodes: append([]Node(nil), nodes...), edges: append([][2]int(nil), edges...)}
	for _, e := range p.edges {
		if e[0] < 0 || e[0] >= len(nodes) || e[1] < 0 || e[1] >= len(nodes) {
			return nil, fmt.Errorf("pattern: edge %v out of range", e)
		}
		if e[0] == e[1] {
			return nil, fmt.Errorf("pattern: self-loop on node %d", e[0])
		}
	}
	if p.hasCycle() {
		return nil, fmt.Errorf("pattern: cycle detected")
	}
	p.normalize()
	p.precompute()
	return p, nil
}

// precompute derives the predecessor lists and topological order once at
// construction; Matches sits in solver inner loops and must not rebuild
// them per call.
func (p *Pattern) precompute() {
	p.preds = make([][]int, len(p.nodes))
	indeg := make([]int, len(p.nodes))
	adj := make([][]int, len(p.nodes))
	for _, e := range p.edges {
		p.preds[e[1]] = append(p.preds[e[1]], e[0])
		indeg[e[1]]++
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	queue := make([]int, 0, len(p.nodes))
	for u := range p.nodes {
		if indeg[u] == 0 {
			queue = append(queue, u)
		}
	}
	p.topo = make([]int, 0, len(p.nodes))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		p.topo = append(p.topo, u)
		for _, v := range adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
}

// MustNew is New but panics on error.
func MustNew(nodes []Node, edges [][2]int) *Pattern {
	p, err := New(nodes, edges)
	if err != nil {
		panic(err)
	}
	return p
}

// TwoLabel builds the two-label pattern {l > r}.
func TwoLabel(l, r label.Set) *Pattern {
	return MustNew([]Node{{Labels: l}, {Labels: r}}, [][2]int{{0, 1}})
}

// normalize sorts and deduplicates the edge list.
func (p *Pattern) normalize() {
	sort.Slice(p.edges, func(i, j int) bool {
		if p.edges[i][0] != p.edges[j][0] {
			return p.edges[i][0] < p.edges[j][0]
		}
		return p.edges[i][1] < p.edges[j][1]
	})
	out := p.edges[:0]
	for i, e := range p.edges {
		if i == 0 || e != p.edges[i-1] {
			out = append(out, e)
		}
	}
	p.edges = out
}

func (p *Pattern) hasCycle() bool {
	adj := make([][]int, len(p.nodes))
	for _, e := range p.edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(p.nodes))
	var visit func(int) bool
	visit = func(u int) bool {
		color[u] = gray
		for _, v := range adj[u] {
			if color[v] == gray || (color[v] == white && visit(v)) {
				return true
			}
		}
		color[u] = black
		return false
	}
	for u := range p.nodes {
		if color[u] == white && visit(u) {
			return true
		}
	}
	return false
}

// NumNodes returns the number of nodes (the paper's q).
func (p *Pattern) NumNodes() int { return len(p.nodes) }

// Node returns node i.
func (p *Pattern) Node(i int) Node { return p.nodes[i] }

// Edges returns the edge list in canonical order (shared; do not modify).
func (p *Pattern) Edges() [][2]int { return p.edges }

// Preds returns, per node, the list of predecessor node indices (shared;
// do not modify).
func (p *Pattern) Preds() [][]int { return p.preds }

// TopoOrder returns a topological order of the node indices (shared; do not
// modify).
func (p *Pattern) TopoOrder() []int { return p.topo }

// TransitiveClosure returns a pattern with every implied edge added.
func (p *Pattern) TransitiveClosure() *Pattern {
	n := len(p.nodes)
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
	}
	for _, e := range p.edges {
		reach[e[0]][e[1]] = true
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !reach[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if reach[k][j] {
					reach[i][j] = true
				}
			}
		}
	}
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if reach[i][j] {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return MustNew(p.nodes, edges)
}

// IsTwoLabel reports whether the pattern is a two-label pattern {l > r}.
func (p *Pattern) IsTwoLabel() bool {
	return len(p.nodes) == 2 && len(p.edges) == 1
}

// IsBipartite reports whether every node is a pure source or a pure sink
// (no node has both incoming and outgoing edges). Isolated nodes count as
// sources. For bipartite patterns the min/max position semantics of the
// bipartite solver coincides with embedding semantics.
func (p *Pattern) IsBipartite() bool {
	hasIn := make([]bool, len(p.nodes))
	hasOut := make([]bool, len(p.nodes))
	for _, e := range p.edges {
		hasOut[e[0]] = true
		hasIn[e[1]] = true
	}
	for i := range p.nodes {
		if hasIn[i] && hasOut[i] {
			return false
		}
	}
	return true
}

// Conjoin returns the conjunction of patterns: a pattern containing all
// nodes and edges of each operand (disjoint union of the DAGs, per the
// inclusion-exclusion construction of Section 4.1). Identical operand
// patterns are conjoined as-is; the result is satisfied exactly when every
// operand is satisfied.
func Conjoin(patterns ...*Pattern) *Pattern {
	var nodes []Node
	var edges [][2]int
	for _, g := range patterns {
		base := len(nodes)
		nodes = append(nodes, g.nodes...)
		for _, e := range g.edges {
			edges = append(edges, [2]int{e[0] + base, e[1] + base})
		}
	}
	return MustNew(nodes, edges)
}

// Key returns a canonical string identifying the pattern (for grouping and
// deduplication).
func (p *Pattern) Key() string {
	var b strings.Builder
	for i, n := range p.nodes {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(n.Labels.Key())
	}
	b.WriteByte('|')
	for i, e := range p.edges {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%d>%d", e[0], e[1])
	}
	return b.String()
}

// String renders the pattern for debugging.
func (p *Pattern) String() string {
	var b strings.Builder
	b.WriteString("pattern{")
	for i, n := range p.nodes {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "n%d[%s]", i, n.Labels.Key())
	}
	b.WriteString(" |")
	for _, e := range p.edges {
		fmt.Fprintf(&b, " %d>%d", e[0], e[1])
	}
	b.WriteByte('}')
	return b.String()
}

// Union is a union of patterns; a ranking matches the union when it matches
// at least one member.
type Union []*Pattern

// Key returns a canonical key for the union (member order-insensitive).
func (u Union) Key() string {
	keys := make([]string, len(u))
	for i, g := range u {
		keys[i] = g.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "||")
}

// Merge returns the deduplicated union of the given unions: one pattern per
// distinct canonical key, in first-seen order. Rankings match the merged
// union exactly when they match at least one of the inputs, so Merge is the
// pattern-level counterpart of a union of conjunctive queries.
func Merge(unions ...Union) Union {
	var out Union
	seen := make(map[string]bool)
	for _, u := range unions {
		for _, g := range u {
			k := g.Key()
			if !seen[k] {
				seen[k] = true
				out = append(out, g)
			}
		}
	}
	return out
}

// MaxNodes returns the largest node count among members.
func (u Union) MaxNodes() int {
	q := 0
	for _, g := range u {
		if g.NumNodes() > q {
			q = g.NumNodes()
		}
	}
	return q
}

// AllTwoLabel reports whether every member is a two-label pattern.
func (u Union) AllTwoLabel() bool {
	for _, g := range u {
		if !g.IsTwoLabel() {
			return false
		}
	}
	return true
}

// AllBipartite reports whether every member is bipartite.
func (u Union) AllBipartite() bool {
	for _, g := range u {
		if !g.IsBipartite() {
			return false
		}
	}
	return true
}
