package pattern

import (
	"probpref/internal/label"
	"probpref/internal/rank"
)

// Matches reports whether (tau, lambda) |= g: there exists an embedding of
// the pattern nodes into positions of tau such that labels and edges match
// (Section 2.3).
//
// The test computes the greedy earliest embedding: processing nodes in
// topological order, each node takes the earliest position whose item carries
// the node's labels and that lies strictly after every predecessor's
// position. By a standard exchange argument the greedy positions are a lower
// bound on any valid embedding, so an embedding exists iff the greedy
// embedding completes. Runs in O(q * m).
func (p *Pattern) Matches(tau rank.Ranking, lab *label.Labeling) bool {
	// Allocation-free variant of GreedyEmbedding for the solver inner loops:
	// same greedy earliest embedding, positions kept in a stack buffer.
	var buf [16]int
	pos := buf[:]
	if len(p.nodes) > len(buf) {
		pos = make([]int, len(p.nodes))
	}
	for _, v := range p.topo {
		lowest := 0
		for _, u := range p.preds[v] {
			if pos[u]+1 > lowest {
				lowest = pos[u] + 1
			}
		}
		found := -1
		for q := lowest; q < len(tau); q++ {
			if lab.HasAll(tau[q], p.nodes[v].Labels) {
				found = q
				break
			}
		}
		if found < 0 {
			return false
		}
		pos[v] = found
	}
	return true
}

// GreedyEmbedding returns the earliest embedding positions (0-based, indexed
// by node), or ok=false when no embedding exists.
func (p *Pattern) GreedyEmbedding(tau rank.Ranking, lab *label.Labeling) ([]int, bool) {
	preds := p.Preds()
	pos := make([]int, len(p.nodes))
	for _, v := range p.TopoOrder() {
		lowest := 0 // earliest admissible position
		for _, u := range preds[v] {
			if pos[u]+1 > lowest {
				lowest = pos[u] + 1
			}
		}
		found := -1
		for q := lowest; q < len(tau); q++ {
			if lab.HasAll(tau[q], p.nodes[v].Labels) {
				found = q
				break
			}
		}
		if found < 0 {
			return nil, false
		}
		pos[v] = found
	}
	return pos, true
}

// Matches reports whether tau matches at least one pattern of the union.
func (u Union) Matches(tau rank.Ranking, lab *label.Labeling) bool {
	for _, g := range u {
		if g.Matches(tau, lab) {
			return true
		}
	}
	return false
}

// MinPos returns alpha(labels | tau): the minimum (0-based) position of an
// item of tau carrying all the given labels, or len(tau) when none does.
func MinPos(tau rank.Ranking, lab *label.Labeling, labels label.Set) int {
	for q, it := range tau {
		if lab.HasAll(it, labels) {
			return q
		}
	}
	return len(tau)
}

// MaxPos returns beta(labels | tau): the maximum position of an item of tau
// carrying all the given labels, or -1 when none does.
func MaxPos(tau rank.Ranking, lab *label.Labeling, labels label.Set) int {
	for q := len(tau) - 1; q >= 0; q-- {
		if lab.HasAll(tau[q], labels) {
			return q
		}
	}
	return -1
}

// MatchesConstraints reports whether tau satisfies the min/max position
// relaxation of the pattern: for every edge (u, v), alpha(u) < beta(v), and
// every isolated node has at least one matching item. For bipartite patterns
// this coincides with Matches; for general patterns it is an upper bound
// (Section 4.3.2, Example 4.4).
func (p *Pattern) MatchesConstraints(tau rank.Ranking, lab *label.Labeling) bool {
	touched := make([]bool, len(p.nodes))
	for _, e := range p.edges {
		touched[e[0]], touched[e[1]] = true, true
		a := MinPos(tau, lab, p.nodes[e[0]].Labels)
		b := MaxPos(tau, lab, p.nodes[e[1]].Labels)
		if a >= b || a >= len(tau) || b < 0 {
			return false
		}
	}
	for i, n := range p.nodes {
		if !touched[i] && MinPos(tau, lab, n.Labels) >= len(tau) {
			return false
		}
	}
	return true
}

// MatchesConstraints reports whether tau satisfies the constraint relaxation
// of at least one member.
func (u Union) MatchesConstraints(tau rank.Ranking, lab *label.Labeling) bool {
	for _, g := range u {
		if g.MatchesConstraints(tau, lab) {
			return true
		}
	}
	return false
}
