package pattern

import (
	"fmt"

	"probpref/internal/label"
	"probpref/internal/rank"
)

// Limits bounds the decomposition enumeration. Zero values mean the
// corresponding default.
type Limits struct {
	// MaxEmbeddings caps the number of node->item assignments enumerated per
	// pattern (default 100000).
	MaxEmbeddings int
	// MaxSubRankings caps the total number of distinct sub-rankings produced
	// (default 100000).
	MaxSubRankings int
}

func (l Limits) withDefaults() Limits {
	if l.MaxEmbeddings == 0 {
		l.MaxEmbeddings = 100000
	}
	if l.MaxSubRankings == 0 {
		l.MaxSubRankings = 100000
	}
	return l
}

// Decomposition is the result of decomposing a pattern union with respect to
// a labeling: first into item-level partial orders (one per embedding of a
// member pattern, Section 5.2), then into the union of sub-rankings
// consistent with those partial orders (Figure 3). A ranking matches the
// union iff it is consistent with at least one sub-ranking.
type Decomposition struct {
	// PartialOrders is Delta(g, lambda) unioned over members, deduplicated.
	PartialOrders []*rank.PartialOrder
	// SubRankings is the union of Delta(upsilon) over the partial orders,
	// deduplicated. Each sub-ranking is a total order over its item set.
	SubRankings []rank.Ranking
	// Truncated reports whether any enumeration limit was hit, in which case
	// the decomposition is a subset of the full one.
	Truncated bool
}

// Decompose computes the sub-ranking decomposition of a pattern union over
// items 0..m-1 labeled by lab.
func Decompose(u Union, lab *label.Labeling, m int, limits Limits) (*Decomposition, error) {
	limits = limits.withDefaults()
	d := &Decomposition{}
	seenPO := make(map[string]bool)
	seenSub := make(map[string]bool)
	for _, g := range u {
		pos, truncated, err := embeddingsOf(g, lab, m, limits.MaxEmbeddings)
		if err != nil {
			return nil, err
		}
		if truncated {
			d.Truncated = true
		}
		for _, po := range pos {
			key := po.String()
			if seenPO[key] {
				continue
			}
			seenPO[key] = true
			d.PartialOrders = append(d.PartialOrders, po)
			subs, subTrunc := po.SubRankings(limits.MaxSubRankings - len(d.SubRankings) + 1)
			if subTrunc {
				d.Truncated = true
			}
			for _, s := range subs {
				k := s.Key()
				if seenSub[k] {
					continue
				}
				if len(d.SubRankings) >= limits.MaxSubRankings {
					d.Truncated = true
					break
				}
				seenSub[k] = true
				d.SubRankings = append(d.SubRankings, s)
			}
		}
	}
	return d, nil
}

// embeddingsOf enumerates Delta(g, lambda): for every assignment of nodes to
// items with matching labels, the induced item-level partial order
// {item(u) > item(v) : (u,v) edge}. Assignments mapping both endpoints of an
// edge to the same item, and assignments inducing a cyclic order, are
// skipped. Deduplication happens at the caller.
func embeddingsOf(g *Pattern, lab *label.Labeling, m int, maxEmb int) ([]*rank.PartialOrder, bool, error) {
	q := g.NumNodes()
	candidates := make([][]rank.Item, q)
	for v := 0; v < q; v++ {
		candidates[v] = lab.ItemsWith(g.Node(v).Labels, m)
		if len(candidates[v]) == 0 {
			return nil, false, nil // node unmatched: no embeddings
		}
	}
	truncated := false
	var out []*rank.PartialOrder
	assign := make([]rank.Item, q)
	count := 0
	var rec func(v int) error
	rec = func(v int) error {
		if count > maxEmb {
			truncated = true
			return nil
		}
		if v == q {
			count++
			po := rank.NewPartialOrder()
			valid := true
			for _, e := range g.Edges() {
				a, b := assign[e[0]], assign[e[1]]
				if a == b {
					valid = false
					break
				}
				po.Add(a, b)
			}
			if valid && !po.HasCycle() {
				out = append(out, po)
			}
			return nil
		}
		for _, it := range candidates[v] {
			assign[v] = it
			if err := rec(v + 1); err != nil {
				return err
			}
			if truncated {
				return nil
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, truncated, err
	}
	return out, truncated, nil
}

// NumEmbeddings returns the number of label-respecting node->item
// assignments of g (before edge/cycle filtering), capped at limit.
func NumEmbeddings(g *Pattern, lab *label.Labeling, m int, limit int) int {
	total := 1
	for v := 0; v < g.NumNodes(); v++ {
		c := len(lab.ItemsWith(g.Node(v).Labels, m))
		if c == 0 {
			return 0
		}
		if total > limit/c {
			return limit
		}
		total *= c
	}
	return total
}

// InvolvedItems returns the sorted set of items that can match at least one
// node of at least one member of the union. Only these items are relevant to
// whether a ranking matches the union.
func InvolvedItems(u Union, lab *label.Labeling, m int) []rank.Item {
	seen := make(map[rank.Item]bool)
	var out []rank.Item
	for _, g := range u {
		for v := 0; v < g.NumNodes(); v++ {
			for _, it := range lab.ItemsWith(g.Node(v).Labels, m) {
				if !seen[it] {
					seen[it] = true
					out = append(out, it)
				}
			}
		}
	}
	// Sort ascending.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Validate checks that a decomposition is usable for sampling: it must be
// non-empty.
func (d *Decomposition) Validate() error {
	if len(d.SubRankings) == 0 {
		return fmt.Errorf("pattern: decomposition has no sub-rankings (pattern unsatisfiable)")
	}
	return nil
}
