package pattern

import (
	"sort"

	"probpref/internal/label"
	"probpref/internal/rank"
)

// Ease estimates how easy the edge (u, v) of pattern g is to satisfy by a
// random permutation from a Mallows model centered at sigma (Section 3.2):
//
//	ease(l, l' | sigma) = beta(l' | sigma) - alpha(l | sigma)
//
// Larger values are easier. Edges whose endpoint labels have no items get
// the most negative ease so they are selected first (they make the pattern
// unsatisfiable, which is the tightest possible bound).
func Ease(g *Pattern, edge [2]int, sigma rank.Ranking, lab *label.Labeling) int {
	a := MinPos(sigma, lab, g.Node(edge[0]).Labels)
	b := MaxPos(sigma, lab, g.Node(edge[1]).Labels)
	return b - a
}

// BoundPattern builds the upper-bound pattern for g used by the top-k
// optimization (Section 4.3.2): take the transitive closure of g, rank the
// closure edges by ease with respect to sigma, and keep the k hardest
// (smallest-ease) edges. The resulting pattern must be evaluated under
// constraint (min/max) semantics, under which it is an upper bound of g:
// any ranking matching g satisfies all closure constraints, hence the
// selected subset.
func BoundPattern(g *Pattern, sigma rank.Ranking, lab *label.Labeling, k int) *Pattern {
	tc := g.TransitiveClosure()
	edges := append([][2]int(nil), tc.Edges()...)
	if len(edges) == 0 {
		return g
	}
	sort.SliceStable(edges, func(i, j int) bool {
		return Ease(tc, edges[i], sigma, lab) < Ease(tc, edges[j], sigma, lab)
	})
	if k > len(edges) {
		k = len(edges)
	}
	selected := edges[:k]
	// Rebuild with only the nodes referenced by the selected edges.
	remap := make(map[int]int)
	var nodes []Node
	mapped := make([][2]int, 0, len(selected))
	for _, e := range selected {
		for _, v := range [2]int{e[0], e[1]} {
			if _, ok := remap[v]; !ok {
				remap[v] = len(nodes)
				nodes = append(nodes, tc.Node(v))
			}
		}
		mapped = append(mapped, [2]int{remap[e[0]], remap[e[1]]})
	}
	return MustNew(nodes, mapped)
}

// BoundUnion applies BoundPattern to every member. With k = 1 the result is
// a union of two-label patterns; with larger k a union of constraint
// patterns for the bipartite solver (Section 3.2).
func BoundUnion(u Union, sigma rank.Ranking, lab *label.Labeling, k int) Union {
	out := make(Union, len(u))
	for i, g := range u {
		out[i] = BoundPattern(g, sigma, lab, k)
	}
	return out
}
