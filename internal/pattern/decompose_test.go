package pattern

import (
	"math/rand"
	"testing"

	"probpref/internal/label"
	"probpref/internal/rank"
)

// Figure 3 of the paper: a union of two patterns decomposes into three
// partial orders and six sub-rankings. We reconstruct the figure: items
// 1,2,3,4 (0-based 0..3); g1 has nodes {1} > {2,3} meaning one node matched
// by item 1 preferred to a node matched by items 2 or 3, and {1} > {4}...
// The figure is abstract; here we verify the counts on an equivalent
// concrete instance: g1 = A>B with A={0}, B={1,2} plus A>C with C={3};
// g2 = D>C with D={0,1}.
func TestDecomposeCounts(t *testing.T) {
	const (
		lA = label.Label(0)
		lB = label.Label(1)
		lC = label.Label(2)
		lD = label.Label(3)
	)
	lab := label.NewLabeling()
	lab.Add(0, lA)
	lab.Add(1, lB)
	lab.Add(2, lB)
	lab.Add(3, lC)
	lab.Add(0, lD)
	lab.Add(1, lD)
	g1 := MustNew(
		[]Node{{Labels: label.NewSet(lA)}, {Labels: label.NewSet(lB)}, {Labels: label.NewSet(lC)}},
		[][2]int{{0, 1}, {0, 2}},
	)
	g2 := TwoLabel(label.NewSet(lD), label.NewSet(lC))
	d, err := Decompose(Union{g1, g2}, lab, 4, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	// g1 embeddings: A->0, B->{1,2}, C->3 => 2 partial orders
	// g2 embeddings: D->{0,1}, C->3 => 2 partial orders, one ({0>3}) is new,
	// the other {1>3}. Total distinct: 4.
	if len(d.PartialOrders) != 4 {
		t.Fatalf("got %d partial orders: %v", len(d.PartialOrders), d.PartialOrders)
	}
	if d.Truncated {
		t.Fatal("unexpected truncation")
	}
	if len(d.SubRankings) == 0 {
		t.Fatal("no sub-rankings")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property (Section 5.2): tau |= G iff tau is consistent with at least one
// sub-ranking of the decomposition.
func TestDecompositionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		m := 3 + rng.Intn(3)
		w := randomWorld(rng, m, 3)
		u := Union{randomPattern(rng, 1+rng.Intn(3), 3)}
		if rng.Float64() < 0.5 {
			u = append(u, randomPattern(rng, 1+rng.Intn(2), 3))
		}
		d, err := Decompose(u, w.lab, m, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if d.Truncated {
			t.Fatal("unexpected truncation on tiny instance")
		}
		rank.ForEachPermutation(m, func(tau rank.Ranking) bool {
			matches := u.Matches(tau, w.lab)
			viaSub := false
			for _, psi := range d.SubRankings {
				if tau.ConsistentWith(psi) {
					viaSub = true
					break
				}
			}
			if matches != viaSub {
				t.Fatalf("trial %d: tau=%v matches=%v viaSub=%v (union %v)",
					trial, tau, matches, viaSub, u)
			}
			return true
		})
	}
}

func TestDecomposeTruncation(t *testing.T) {
	lab := label.NewLabeling()
	for i := 0; i < 8; i++ {
		lab.Add(rank.Item(i), 0)
		lab.Add(rank.Item(i), 1)
	}
	g := TwoLabel(label.NewSet(0), label.NewSet(1))
	d, err := Decompose(Union{g}, lab, 8, Limits{MaxSubRankings: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Truncated {
		t.Fatal("expected truncation")
	}
	if len(d.SubRankings) > 5 {
		t.Fatalf("limit exceeded: %d", len(d.SubRankings))
	}
}

func TestDecomposeUnsatisfiable(t *testing.T) {
	lab := label.NewLabeling()
	lab.Add(0, 0)
	g := TwoLabel(label.NewSet(0), label.NewSet(7))
	d, err := Decompose(Union{g}, lab, 2, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.SubRankings) != 0 {
		t.Fatal("unsatisfiable pattern should yield no sub-rankings")
	}
	if d.Validate() == nil {
		t.Fatal("Validate should fail on empty decomposition")
	}
}

// An edge whose two endpoints can only map to the same item yields no
// embedding (positions must be strictly increasing).
func TestDecomposeSameItemEdge(t *testing.T) {
	lab := label.NewLabeling()
	lab.Add(0, 0)
	lab.Add(0, 1)
	g := TwoLabel(label.NewSet(0), label.NewSet(1))
	d, err := Decompose(Union{g}, lab, 1, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.PartialOrders) != 0 {
		t.Fatalf("expected no valid embeddings, got %v", d.PartialOrders)
	}
}

func TestInvolvedItems(t *testing.T) {
	lab := label.NewLabeling()
	lab.Add(0, 0)
	lab.Add(2, 0)
	lab.Add(3, 1)
	u := Union{TwoLabel(label.NewSet(0), label.NewSet(1))}
	got := InvolvedItems(u, lab, 5)
	want := []rank.Item{0, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("InvolvedItems = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("InvolvedItems = %v, want %v", got, want)
		}
	}
}

func TestNumEmbeddings(t *testing.T) {
	lab := label.NewLabeling()
	for i := 0; i < 4; i++ {
		lab.Add(rank.Item(i), 0)
	}
	lab.Add(0, 1)
	lab.Add(1, 1)
	g := TwoLabel(label.NewSet(0), label.NewSet(1))
	if got := NumEmbeddings(g, lab, 4, 1000); got != 8 {
		t.Fatalf("NumEmbeddings = %d, want 8", got)
	}
	if got := NumEmbeddings(g, lab, 4, 3); got != 3 {
		t.Fatalf("capped NumEmbeddings = %d, want 3", got)
	}
	empty := TwoLabel(label.NewSet(7), label.NewSet(0))
	if got := NumEmbeddings(empty, lab, 4, 1000); got != 0 {
		t.Fatalf("NumEmbeddings with unmatched node = %d, want 0", got)
	}
}
