package solver

import (
	"fmt"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rim"
)

// TwoLabel implements Algorithm 3 of the paper: exact inference for a union
// of two-label patterns G = U_i {l_i > r_i}. It computes the complementary
// event by dynamic programming over RIM insertions: states track the minimum
// position of each L-type label set (alpha) and the maximum position of each
// R-type label set (beta); a state violates pattern i while alpha(l_i) >=
// beta(r_i), and only violating states are kept. The answer is one minus the
// surviving probability mass. Complexity O(m^(2z+1)).
//
// States are vectors of one position word per tracker slot (absent = -1),
// held in the packed layer representation of state.go and expanded through
// the shared (and, for large layers, parallel) driver of layer.go.
func TwoLabel(model *rim.Model, lab *label.Labeling, u pattern.Union, opts Options) (float64, error) {
	if !u.AllTwoLabel() {
		return 0, fmt.Errorf("%w: TwoLabel requires two-label patterns", ErrShape)
	}
	if len(u) == 0 {
		return 0, nil
	}
	ctx := opts.ctx()
	ar := getArena()
	defer putArena(ar)

	// Deduplicate trackers: one slot per distinct (label set, role). Linear
	// scan over the few slots — no Key-string allocation.
	slotLabels := ar.sets.take(2 * len(u))[:0]
	slotIsMin := ar.bools.take(2 * len(u))[:0]
	slot := func(ls label.Set, isMin bool) int {
		for s, sl := range slotLabels {
			if slotIsMin[s] == isMin && sl.Equal(ls) {
				return s
			}
		}
		slotLabels = append(slotLabels, ls)
		slotIsMin = append(slotIsMin, isMin)
		return len(slotLabels) - 1
	}
	type pat struct{ l, r int } // slot indices
	pats := make([]pat, len(u))
	for i, g := range u {
		e := g.Edges()[0]
		pats[i] = pat{
			l: slot(g.Node(e[0]).Labels, true),
			r: slot(g.Node(e[1]).Labels, false),
		}
	}
	n := len(slotLabels)
	m := model.M()

	// Per insertion step, which slots does the inserted item feed? One
	// labeling lookup per item, two passes over a single backing array, all
	// bump-allocated from the pooled arena.
	sigma := model.Sigma()
	itemSets := ar.sets.take(m)
	for i := range itemSets {
		itemSets[i] = lab.Of(sigma[i])
	}
	matches := ar.intSlices.take(m)
	nFeed := 0
	for i := 0; i < m; i++ {
		for s := 0; s < n; s++ {
			if slotLabels[s].SubsetOf(itemSets[i]) {
				nFeed++
			}
		}
	}
	feedBacking := ar.ints.take(nFeed)[:0]
	for i := 0; i < m; i++ {
		lo := len(feedBacking)
		for s := 0; s < n; s++ {
			if slotLabels[s].SubsetOf(itemSets[i]) {
				feedBacking = append(feedBacking, s)
			}
		}
		matches[i] = feedBacking[lo:len(feedBacking):len(feedBacking)]
	}

	const absent = int16(-1)
	cur, nxt := &ar.layers[0], &ar.layers[1]
	cur.reset(n, 1)
	init := ar.workspaces(1, n, n)[0].next
	for i := range init {
		init[i] = absent
	}
	cur.addWords(init, 1)

	// The expand closure is built once; the step loop only rebinds the
	// per-step variables it captures.
	var (
		piRow []float64
		feed  []int
		steps int
	)
	packed := n <= packedWords
	piPrefix := ar.prefix(m + 2)
	expand := func(ws *workspace, vals []int16, q float64, em *emitter) {
		next := ws.next
		pats := pats
		if len(feed) == 0 {
			// The inserted item feeds no tracker, so the successor depends
			// on the insertion point j only through which positions shift —
			// constant between consecutive tracked positions. Merge each
			// such gap into one emission weighted by the gap's insertion
			// mass (same state set as per-slot expansion; relorder's gap
			// optimization applied to tracker vectors).
			if cap(ws.gaps) < n {
				ws.gaps = make([]int16, n)
			}
			gaps := ws.gaps[:0]
			for _, v := range vals {
				if v == absent {
					continue
				}
				at := len(gaps)
				for at > 0 && gaps[at-1] >= v {
					if gaps[at-1] == v {
						at = -1
						break
					}
					at--
				}
				if at < 0 {
					continue // duplicate
				}
				gaps = append(gaps, 0)
				copy(gaps[at+1:], gaps[at:])
				gaps[at] = v
			}
			lo := 0
			for g := 0; g <= len(gaps); g++ {
				hi := steps - 1
				if g < len(gaps) {
					hi = int(gaps[g])
				}
				if lo > hi {
					continue
				}
				jj := int16(lo)
				for s, v := range vals {
					if v != absent && v >= jj {
						v++
					}
					next[s] = v
				}
				satisfied := false
				for _, p := range pats {
					a, b := next[p.l], next[p.r]
					if a != absent && b != absent && a < b {
						satisfied = true
						break
					}
				}
				lo = hi + 1
				if satisfied {
					continue
				}
				w := q * (piPrefix[hi+1] - piPrefix[jj])
				if packed {
					em.emit64(packWords(next), w)
				} else {
					em.emit(next, w)
				}
			}
			return
		}
		for j := 0; j < steps; j++ {
			jj := int16(j)
			// Copy the state, shifting positions at or after the insertion
			// point, in one pass.
			for s, v := range vals {
				if v != absent && v >= jj {
					v++
				}
				next[s] = v
			}
			// Apply the inserted item's label memberships.
			for _, s := range feed {
				if slotIsMin[s] {
					if next[s] == absent || jj < next[s] {
						next[s] = jj
					}
				} else {
					if next[s] == absent || jj > next[s] {
						next[s] = jj
					}
				}
			}
			// Prune states that satisfy some pattern: they match G forever.
			satisfied := false
			for _, p := range pats {
				a, b := next[p.l], next[p.r]
				if a != absent && b != absent && a < b {
					satisfied = true
					break
				}
			}
			if satisfied {
				continue
			}
			if packed {
				em.emit64(packWords(next), q*piRow[j])
			} else {
				em.emit(next, q*piRow[j])
			}
		}
	}
	for i := 0; i < m; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		piRow, feed, steps = model.PiRow(i), matches[i], i+1
		if len(feed) == 0 {
			// Prefix sums of the insertion row for gap merging.
			piPrefix[0] = 0
			for j := 0; j < steps; j++ {
				piPrefix[j+1] = piPrefix[j] + piRow[j]
			}
		}
		if _, err := runStep(ctx, ar, cur, nxt, n, opts, 0, expand); err != nil {
			return 0, err
		}
		opts.note(nxt.len())
		if err := opts.checkStates(nxt.len()); err != nil {
			return 0, err
		}
		cur, nxt = nxt, cur
	}
	violate := 0.0
	for _, q := range cur.vals {
		violate += q
	}
	p := 1 - violate
	if p < 0 {
		p = 0
	}
	return p, nil
}
