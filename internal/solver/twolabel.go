package solver

import (
	"fmt"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rim"
)

// TwoLabel implements Algorithm 3 of the paper: exact inference for a union
// of two-label patterns G = U_i {l_i > r_i}. It computes the complementary
// event by dynamic programming over RIM insertions: states track the minimum
// position of each L-type label set (alpha) and the maximum position of each
// R-type label set (beta); a state violates pattern i while alpha(l_i) >=
// beta(r_i), and only violating states are kept. The answer is one minus the
// surviving probability mass. Complexity O(m^(2z+1)).
func TwoLabel(model *rim.Model, lab *label.Labeling, u pattern.Union, opts Options) (float64, error) {
	if !u.AllTwoLabel() {
		return 0, fmt.Errorf("%w: TwoLabel requires two-label patterns", ErrShape)
	}
	if len(u) == 0 {
		return 0, nil
	}
	ctx := opts.ctx()

	// Deduplicate trackers: one slot per distinct (label set, role).
	type role struct {
		key   string
		isMin bool
	}
	slotOf := make(map[role]int)
	var slotLabels []label.Set
	var slotIsMin []bool
	slot := func(ls label.Set, isMin bool) int {
		r := role{ls.Key(), isMin}
		if s, ok := slotOf[r]; ok {
			return s
		}
		s := len(slotLabels)
		slotOf[r] = s
		slotLabels = append(slotLabels, ls)
		slotIsMin = append(slotIsMin, isMin)
		return s
	}
	type pat struct{ l, r int } // slot indices
	pats := make([]pat, len(u))
	for i, g := range u {
		e := g.Edges()[0]
		pats[i] = pat{
			l: slot(g.Node(e[0]).Labels, true),
			r: slot(g.Node(e[1]).Labels, false),
		}
	}
	n := len(slotLabels)
	m := model.M()

	// Per insertion step, which slots does the inserted item feed?
	matches := make([][]int, m)
	for i := 0; i < m; i++ {
		it := model.Sigma()[i]
		for s := 0; s < n; s++ {
			if lab.HasAll(it, slotLabels[s]) {
				matches[i] = append(matches[i], s)
			}
		}
	}

	const absent = int16(-1)
	enc := func(vals []int16) string {
		b := make([]byte, 2*len(vals))
		for i, v := range vals {
			b[2*i] = byte(v)
			b[2*i+1] = byte(v >> 8)
		}
		return string(b)
	}
	dec := func(key string, vals []int16) {
		for i := range vals {
			vals[i] = int16(key[2*i]) | int16(key[2*i+1])<<8
		}
	}

	satisfied := func(vals []int16) bool {
		for _, p := range pats {
			a, b := vals[p.l], vals[p.r]
			if a != absent && b != absent && a < b {
				return true
			}
		}
		return false
	}

	init := make([]int16, n)
	for i := range init {
		init[i] = absent
	}
	cur := newLayer(1)
	cur.add(enc(init), 1)
	vals := make([]int16, n)
	next := make([]int16, n)
	checkEvery := 0
	for i := 0; i < m; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		nxt := newLayer(cur.len())
		for ki, key := range cur.keys {
			q := cur.vals[ki]
			if checkEvery++; checkEvery&1023 == 0 {
				if err := ctx.Err(); err != nil {
					return 0, err
				}
			}
			dec(key, vals)
			for j := 0; j <= i; j++ {
				jj := int16(j)
				copy(next, vals)
				// Shift positions at or after the insertion point.
				for s := 0; s < n; s++ {
					if next[s] != absent && next[s] >= jj {
						next[s]++
					}
				}
				// Apply the inserted item's label memberships.
				for _, s := range matches[i] {
					if slotIsMin[s] {
						if next[s] == absent || jj < next[s] {
							next[s] = jj
						}
					} else {
						if next[s] == absent || jj > next[s] {
							next[s] = jj
						}
					}
				}
				if satisfied(next) {
					continue // pruned: this state satisfies G forever
				}
				nxt.add(enc(next), q*model.Pi(i, j))
			}
		}
		opts.note(nxt.len())
		if err := opts.checkStates(nxt.len()); err != nil {
			return 0, err
		}
		cur = nxt
	}
	violate := 0.0
	for _, q := range cur.vals {
		violate += q
	}
	p := 1 - violate
	if p < 0 {
		p = 0
	}
	return p, nil
}
