package solver

import (
	"fmt"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rank"
	"probpref/internal/rim"
)

// TwoLabel implements Algorithm 3 of the paper: exact inference for a union
// of two-label patterns G = U_i {l_i > r_i}. It computes the complementary
// event by dynamic programming over RIM insertions: states track the minimum
// position of each L-type label set (alpha) and the maximum position of each
// R-type label set (beta); a state violates pattern i while alpha(l_i) >=
// beta(r_i), and only violating states are kept. The answer is one minus the
// surviving probability mass. Complexity O(m^(2z+1)).
//
// States are vectors of one position word per tracker slot (absent = -1),
// held in the packed layer representation of state.go and expanded through
// the shared (and, for large layers, parallel) driver of layer.go. The
// solver is split into a session-independent compile half (tracker slots,
// pattern slot pairs, per-step feed lists) and an executor that only reads
// the session's Pi rows; see plan.go.
func TwoLabel(model *rim.Model, lab *label.Labeling, u pattern.Union, opts Options) (float64, error) {
	if len(u) == 0 {
		return 0, nil
	}
	ar := getArena()
	defer putArena(ar)
	var pl twoLabelPlan
	if err := compileTwoLabel(&pl, planAlloc{ar}, model.Sigma(), lab, u); err != nil {
		return 0, err
	}
	return runTwoLabel(ar, &pl, model, opts)
}

// twoLabelPlan is the session-independent compilation of a two-label union:
// everything the executor needs except the Pi rows.
type twoLabelPlan struct {
	m, n       int
	patL, patR []int  // per pattern, alpha/beta tracker slot indices
	slotIsMin  []bool // per slot, role (min = alpha, max = beta)
	feeds      [][]int // per insertion step, slots fed by the inserted item
}

func compileTwoLabel(pl *twoLabelPlan, a planAlloc, sigma rank.Ranking, lab *label.Labeling, u pattern.Union) error {
	if !u.AllTwoLabel() {
		return fmt.Errorf("%w: TwoLabel requires two-label patterns", ErrShape)
	}
	// Deduplicate trackers: one slot per distinct (label set, role). Linear
	// scan over the few slots — no Key-string allocation.
	slotLabels := a.sets(2 * len(u))[:0]
	slotIsMin := a.bools(2 * len(u))[:0]
	slot := func(ls label.Set, isMin bool) int {
		for s, sl := range slotLabels {
			if slotIsMin[s] == isMin && sl.Equal(ls) {
				return s
			}
		}
		slotLabels = append(slotLabels, ls)
		slotIsMin = append(slotIsMin, isMin)
		return len(slotLabels) - 1
	}
	patL := a.ints(len(u))
	patR := a.ints(len(u))
	for i, g := range u {
		e := g.Edges()[0]
		patL[i] = slot(g.Node(e[0]).Labels, true)
		patR[i] = slot(g.Node(e[1]).Labels, false)
	}
	n := len(slotLabels)
	m := len(sigma)

	// Per insertion step, which slots does the inserted item feed? One
	// labeling lookup per item, two passes over a single backing array.
	itemSets := a.sets(m)
	for i := range itemSets {
		itemSets[i] = lab.Of(sigma[i])
	}
	feeds := a.intSlices(m)
	nFeed := 0
	for i := 0; i < m; i++ {
		for s := 0; s < n; s++ {
			if slotLabels[s].SubsetOf(itemSets[i]) {
				nFeed++
			}
		}
	}
	feedBacking := a.ints(nFeed)[:0]
	for i := 0; i < m; i++ {
		lo := len(feedBacking)
		for s := 0; s < n; s++ {
			if slotLabels[s].SubsetOf(itemSets[i]) {
				feedBacking = append(feedBacking, s)
			}
		}
		feeds[i] = feedBacking[lo:len(feedBacking):len(feedBacking)]
	}
	pl.m, pl.n = m, n
	pl.patL, pl.patR = patL, patR
	pl.slotIsMin = slotIsMin
	pl.feeds = feeds
	return nil
}

// runTwoLabel executes a compiled two-label plan against one session. The
// layer walk is structural — which successors are emitted depends only on
// the plan, never on the Pi values — so the batched executor below can walk
// the identical layers with a mass vector per state.
func runTwoLabel(ar *arena, pl *twoLabelPlan, model *rim.Model, opts Options) (float64, error) {
	ctx := opts.ctx()
	n, m := pl.n, pl.m
	patL, patR, slotIsMin := pl.patL, pl.patR, pl.slotIsMin

	const absent = int16(-1)
	cur, nxt := &ar.layers[0], &ar.layers[1]
	cur.reset(n, 1)
	init := ar.workspaces(1, n, n)[0].next
	for i := range init {
		init[i] = absent
	}
	cur.addWords(init, 1)

	// The expand closure is built once; the step loop only rebinds the
	// per-step variables it captures.
	var (
		piRow []float64
		feed  []int
		steps int
	)
	packed := n <= packedWords
	piPrefix := ar.prefix(m + 2)
	expand := func(ws *workspace, vals []int16, q float64, em *emitter) {
		next := ws.next
		if len(feed) == 0 {
			// The inserted item feeds no tracker, so the successor depends
			// on the insertion point j only through which positions shift —
			// constant between consecutive tracked positions. Merge each
			// such gap into one emission weighted by the gap's insertion
			// mass (same state set as per-slot expansion; relorder's gap
			// optimization applied to tracker vectors).
			if cap(ws.gaps) < n {
				ws.gaps = make([]int16, n)
			}
			gaps := ws.gaps[:0]
			for _, v := range vals {
				if v == absent {
					continue
				}
				at := len(gaps)
				for at > 0 && gaps[at-1] >= v {
					if gaps[at-1] == v {
						at = -1
						break
					}
					at--
				}
				if at < 0 {
					continue // duplicate
				}
				gaps = append(gaps, 0)
				copy(gaps[at+1:], gaps[at:])
				gaps[at] = v
			}
			lo := 0
			for g := 0; g <= len(gaps); g++ {
				hi := steps - 1
				if g < len(gaps) {
					hi = int(gaps[g])
				}
				if lo > hi {
					continue
				}
				jj := int16(lo)
				for s, v := range vals {
					if v != absent && v >= jj {
						v++
					}
					next[s] = v
				}
				satisfied := false
				for pi := range patL {
					a, b := next[patL[pi]], next[patR[pi]]
					if a != absent && b != absent && a < b {
						satisfied = true
						break
					}
				}
				lo = hi + 1
				if satisfied {
					continue
				}
				w := q * (piPrefix[hi+1] - piPrefix[jj])
				if packed {
					em.emit64(packWords(next), w)
				} else {
					em.emit(next, w)
				}
			}
			return
		}
		for j := 0; j < steps; j++ {
			jj := int16(j)
			// Copy the state, shifting positions at or after the insertion
			// point, in one pass.
			for s, v := range vals {
				if v != absent && v >= jj {
					v++
				}
				next[s] = v
			}
			// Apply the inserted item's label memberships.
			for _, s := range feed {
				if slotIsMin[s] {
					if next[s] == absent || jj < next[s] {
						next[s] = jj
					}
				} else {
					if next[s] == absent || jj > next[s] {
						next[s] = jj
					}
				}
			}
			// Prune states that satisfy some pattern: they match G forever.
			satisfied := false
			for pi := range patL {
				a, b := next[patL[pi]], next[patR[pi]]
				if a != absent && b != absent && a < b {
					satisfied = true
					break
				}
			}
			if satisfied {
				continue
			}
			if packed {
				em.emit64(packWords(next), q*piRow[j])
			} else {
				em.emit(next, q*piRow[j])
			}
		}
	}
	for i := 0; i < m; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		piRow, feed, steps = model.PiRow(i), pl.feeds[i], i+1
		if len(feed) == 0 {
			// Prefix sums of the insertion row for gap merging.
			piPrefix[0] = 0
			for j := 0; j < steps; j++ {
				piPrefix[j+1] = piPrefix[j] + piRow[j]
			}
		}
		if _, err := runStep(ctx, ar, cur, nxt, n, opts, 0, expand); err != nil {
			return 0, err
		}
		opts.note(nxt.len())
		if err := opts.checkStates(nxt.len()); err != nil {
			return 0, err
		}
		cur, nxt = nxt, cur
	}
	violate := 0.0
	for _, q := range cur.vals {
		violate += q
	}
	p := 1 - violate
	if p < 0 {
		p = 0
	}
	return p, nil
}

// runTwoLabelVec executes a compiled two-label plan against many sessions in
// one batched layer walk: the same structural walk as runTwoLabel with a
// per-lane mass vector per state. Per-step weights are gathered lane-major
// into j-major matrices (wj[j*S+l] = Pi_l(i, j), prefix sums likewise) so
// the per-lane arithmetic reproduces the scalar executor's bits exactly.
func runTwoLabelVec(ar *arena, pl *twoLabelPlan, models []*rim.Model, opts Options, out []float64) error {
	ctx := opts.ctx()
	n, m, S := pl.n, pl.m, len(models)
	patL, patR, slotIsMin := pl.patL, pl.patR, pl.slotIsMin

	const absent = int16(-1)
	cur, nxt := &ar.layers[0], &ar.layers[1]
	cur.resetStride(n, 1, S)
	init := ar.workspaces(1, n, n)[0].next
	for i := range init {
		init[i] = absent
	}
	for l, w := 0, cur.valsAt(cur.slotWords(init)); l < S; l++ {
		w[l] = 1
	}

	var (
		feed  []int
		steps int
		wj    []float64 // j-major per-lane weights for feed steps
		pp    []float64 // j-major per-lane Pi prefix sums for gap steps
	)
	packed := n <= packedWords
	wbuf := ar.floats(S * (m + 2))
	expand := func(ws *workspace, vals []int16, q []float64, em *vecEmitter) {
		next := ws.next
		if len(feed) == 0 {
			if cap(ws.gaps) < n {
				ws.gaps = make([]int16, n)
			}
			gaps := ws.gaps[:0]
			for _, v := range vals {
				if v == absent {
					continue
				}
				at := len(gaps)
				for at > 0 && gaps[at-1] >= v {
					if gaps[at-1] == v {
						at = -1
						break
					}
					at--
				}
				if at < 0 {
					continue // duplicate
				}
				gaps = append(gaps, 0)
				copy(gaps[at+1:], gaps[at:])
				gaps[at] = v
			}
			lo := 0
			for g := 0; g <= len(gaps); g++ {
				hi := steps - 1
				if g < len(gaps) {
					hi = int(gaps[g])
				}
				if lo > hi {
					continue
				}
				jj := int16(lo)
				for s, v := range vals {
					if v != absent && v >= jj {
						v++
					}
					next[s] = v
				}
				satisfied := false
				for pi := range patL {
					a, b := next[patL[pi]], next[patR[pi]]
					if a != absent && b != absent && a < b {
						satisfied = true
						break
					}
				}
				lo = hi + 1
				if satisfied {
					continue
				}
				var dst []float64
				if packed {
					dst = em.window64(packWords(next))
				} else {
					dst = em.window(next)
				}
				hiRow, loRow := pp[(hi+1)*S:(hi+2)*S], pp[int(jj)*S:(int(jj)+1)*S]
				for l, ql := range q {
					dst[l] += ql * (hiRow[l] - loRow[l])
				}
			}
			return
		}
		for j := 0; j < steps; j++ {
			jj := int16(j)
			for s, v := range vals {
				if v != absent && v >= jj {
					v++
				}
				next[s] = v
			}
			for _, s := range feed {
				if slotIsMin[s] {
					if next[s] == absent || jj < next[s] {
						next[s] = jj
					}
				} else {
					if next[s] == absent || jj > next[s] {
						next[s] = jj
					}
				}
			}
			satisfied := false
			for pi := range patL {
				a, b := next[patL[pi]], next[patR[pi]]
				if a != absent && b != absent && a < b {
					satisfied = true
					break
				}
			}
			if satisfied {
				continue
			}
			var dst []float64
			if packed {
				dst = em.window64(packWords(next))
			} else {
				dst = em.window(next)
			}
			wrow := wj[j*S : (j+1)*S]
			for l, ql := range q {
				dst[l] += ql * wrow[l]
			}
		}
	}
	for i := 0; i < m; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		feed, steps = pl.feeds[i], i+1
		if len(feed) == 0 {
			pp = wbuf[:(steps+1)*S]
			clear(pp[:S])
			for l := 0; l < S; l++ {
				row := models[l].PiRow(i)
				for j := 0; j < steps; j++ {
					pp[(j+1)*S+l] = pp[j*S+l] + row[j]
				}
			}
		} else {
			wj = wbuf[:steps*S]
			for l := 0; l < S; l++ {
				row := models[l].PiRow(i)
				for j := 0; j < steps; j++ {
					wj[j*S+l] = row[j]
				}
			}
		}
		if err := runStepVec(ctx, ar, cur, nxt, n, S, opts, nil, expand); err != nil {
			return err
		}
		opts.note(nxt.len())
		if err := opts.checkStates(nxt.len()); err != nil {
			return err
		}
		cur, nxt = nxt, cur
	}
	clear(out)
	nStates := cur.len()
	for ki := 0; ki < nStates; ki++ {
		for l, q := range cur.valsAt(ki) {
			out[l] += q
		}
	}
	for l, violate := range out {
		p := 1 - violate
		if p < 0 {
			p = 0
		}
		out[l] = p
	}
	return nil
}
