package solver

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rank"
	"probpref/internal/rim"
)

const tol = 1e-9

// randWorld builds a random labeling over m items and numLabels labels.
func randWorld(rng *rand.Rand, m, numLabels int) *label.Labeling {
	lab := label.NewLabeling()
	for it := 0; it < m; it++ {
		for l := 0; l < numLabels; l++ {
			if rng.Float64() < 0.4 {
				lab.Add(rank.Item(it), label.Label(l))
			}
		}
	}
	return lab
}

// randModel builds a random RIM model (not necessarily Mallows).
func randModel(rng *rand.Rand, m int) *rim.Model {
	pi := make([][]float64, m)
	for i := 0; i < m; i++ {
		row := make([]float64, i+1)
		sum := 0.0
		for j := range row {
			row[j] = rng.Float64() + 0.05
			sum += row[j]
		}
		for j := range row {
			row[j] /= sum
		}
		pi[i] = row
	}
	sigma := make(rank.Ranking, m)
	for i, v := range rng.Perm(m) {
		sigma[i] = rank.Item(v)
	}
	return rim.MustNew(sigma, pi)
}

func randSet(rng *rand.Rand, numLabels int) label.Set {
	n := 1 + rng.Intn(2)
	ls := make([]label.Label, n)
	for i := range ls {
		ls[i] = label.Label(rng.Intn(numLabels))
	}
	return label.NewSet(ls...)
}

func randTwoLabelUnion(rng *rand.Rand, z, numLabels int) pattern.Union {
	u := make(pattern.Union, z)
	for i := range u {
		u[i] = pattern.TwoLabel(randSet(rng, numLabels), randSet(rng, numLabels))
	}
	return u
}

func randBipartiteUnion(rng *rand.Rand, z, numLabels int) pattern.Union {
	u := make(pattern.Union, z)
	for i := range u {
		nl, nr := 1+rng.Intn(2), 1+rng.Intn(2)
		nodes := make([]pattern.Node, nl+nr)
		for k := range nodes {
			nodes[k].Labels = randSet(rng, numLabels)
		}
		var edges [][2]int
		for a := 0; a < nl; a++ {
			for b := nl; b < nl+nr; b++ {
				if rng.Float64() < 0.7 {
					edges = append(edges, [2]int{a, b})
				}
			}
		}
		if len(edges) == 0 {
			edges = append(edges, [2]int{0, nl})
		}
		u[i] = pattern.MustNew(nodes, edges)
	}
	return u
}

func randDAGUnion(rng *rand.Rand, z, numLabels int) pattern.Union {
	u := make(pattern.Union, z)
	for i := range u {
		q := 2 + rng.Intn(3)
		nodes := make([]pattern.Node, q)
		for k := range nodes {
			nodes[k].Labels = randSet(rng, numLabels)
		}
		var edges [][2]int
		for a := 0; a < q; a++ {
			for b := a + 1; b < q; b++ {
				if rng.Float64() < 0.5 {
					edges = append(edges, [2]int{a, b})
				}
			}
		}
		u[i] = pattern.MustNew(nodes, edges)
	}
	return u
}

func TestTwoLabelAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 150; trial++ {
		m := 3 + rng.Intn(4)
		lab := randWorld(rng, m, 4)
		model := randModel(rng, m)
		u := randTwoLabelUnion(rng, 1+rng.Intn(3), 4)
		want := Brute(model, lab, u)
		got, err := TwoLabel(model, lab, u, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > tol {
			t.Fatalf("trial %d: TwoLabel=%v brute=%v (m=%d, union=%v)", trial, got, want, m, u)
		}
	}
}

func TestTwoLabelRejectsNonTwoLabel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	model := randModel(rng, 3)
	u := randBipartiteUnion(rng, 1, 3)
	for !u[0].IsTwoLabel() {
		u = randBipartiteUnion(rng, 1, 3)
	}
	star := pattern.MustNew(
		[]pattern.Node{{Labels: label.NewSet(0)}, {Labels: label.NewSet(1)}, {Labels: label.NewSet(2)}},
		[][2]int{{0, 1}, {0, 2}},
	)
	if _, err := TwoLabel(model, randWorld(rng, 3, 3), pattern.Union{star}, Options{}); err == nil {
		t.Fatal("expected ErrShape")
	}
}

func TestBipartiteAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 150; trial++ {
		m := 3 + rng.Intn(4)
		lab := randWorld(rng, m, 4)
		model := randModel(rng, m)
		u := randBipartiteUnion(rng, 1+rng.Intn(3), 4)
		want := Brute(model, lab, u)
		got, err := Bipartite(model, lab, u, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > tol {
			t.Fatalf("trial %d: Bipartite=%v brute=%v (m=%d, union=%v)", trial, got, want, m, u)
		}
	}
}

// Bipartite on two-label unions must agree with TwoLabel (two-label is a
// special case, as the paper notes).
func TestBipartiteEqualsTwoLabel(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 80; trial++ {
		m := 3 + rng.Intn(4)
		lab := randWorld(rng, m, 4)
		model := randModel(rng, m)
		u := randTwoLabelUnion(rng, 1+rng.Intn(3), 4)
		a, err := TwoLabel(model, lab, u, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Bipartite(model, lab, u, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > tol {
			t.Fatalf("trial %d: TwoLabel=%v Bipartite=%v", trial, a, b)
		}
	}
}

// On non-bipartite patterns, Bipartite computes the constraint relaxation:
// it must agree with BruteConstraints and upper-bound the true probability.
func TestBipartiteConstraintSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 100; trial++ {
		m := 3 + rng.Intn(3)
		lab := randWorld(rng, m, 3)
		model := randModel(rng, m)
		u := randDAGUnion(rng, 1+rng.Intn(2), 3)
		want := BruteConstraints(model, lab, u)
		got, err := Bipartite(model, lab, u, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > tol {
			t.Fatalf("trial %d: Bipartite=%v bruteConstraints=%v union=%v", trial, got, want, u)
		}
		exact := Brute(model, lab, u)
		if got < exact-tol {
			t.Fatalf("trial %d: constraint relaxation %v below exact %v", trial, got, exact)
		}
	}
}

func TestRelOrderAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for trial := 0; trial < 150; trial++ {
		m := 3 + rng.Intn(4)
		lab := randWorld(rng, m, 3)
		model := randModel(rng, m)
		u := randDAGUnion(rng, 1+rng.Intn(2), 3)
		want := Brute(model, lab, u)
		got, err := RelOrder(model, lab, u, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > tol {
			t.Fatalf("trial %d: RelOrder=%v brute=%v (m=%d union=%v)", trial, got, want, m, u)
		}
	}
}

func TestGeneralAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	for trial := 0; trial < 100; trial++ {
		m := 3 + rng.Intn(3)
		lab := randWorld(rng, m, 3)
		model := randModel(rng, m)
		var u pattern.Union
		switch trial % 3 {
		case 0:
			u = randTwoLabelUnion(rng, 1+rng.Intn(3), 3)
		case 1:
			u = randBipartiteUnion(rng, 1+rng.Intn(2), 3)
		default:
			u = randDAGUnion(rng, 1+rng.Intn(2), 3)
		}
		want := Brute(model, lab, u)
		var st Stats
		got, err := General(model, lab, u, Options{Stats: &st})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > tol {
			t.Fatalf("trial %d: General=%v brute=%v union=%v", trial, got, want, u)
		}
		if st.Subproblems == 0 {
			t.Fatal("stats not collected")
		}
	}
}

// Example 4.1 of the paper: Pr(g1 ∪ g2) = Pr(g1) + Pr(g2) - Pr(g1 ∧ g2).
func TestGeneralInclusionExclusionIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	m := 5
	lab := randWorld(rng, m, 4)
	model := randModel(rng, m)
	g1 := pattern.TwoLabel(label.NewSet(0), label.NewSet(1))
	g2 := pattern.TwoLabel(label.NewSet(2), label.NewSet(3))
	p1 := Brute(model, lab, pattern.Union{g1})
	p2 := Brute(model, lab, pattern.Union{g2})
	p12 := Brute(model, lab, pattern.Union{pattern.Conjoin(g1, g2)})
	got, err := General(model, lab, pattern.Union{g1, g2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := p1 + p2 - p12; math.Abs(got-want) > tol {
		t.Fatalf("General=%v, identity gives %v", got, want)
	}
}

func TestAutoDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(108))
	m := 5
	lab := randWorld(rng, m, 4)
	model := randModel(rng, m)
	for trial := 0; trial < 60; trial++ {
		var u pattern.Union
		switch trial % 3 {
		case 0:
			u = randTwoLabelUnion(rng, 1+rng.Intn(2), 4)
		case 1:
			u = randBipartiteUnion(rng, 1+rng.Intn(2), 4)
		default:
			u = randDAGUnion(rng, 1, 4)
		}
		want := Brute(model, lab, u)
		got, err := Auto(model, lab, u, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > tol {
			t.Fatalf("trial %d: Auto=%v brute=%v", trial, got, want)
		}
	}
}

func TestEmptyUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	model := randModel(rng, 3)
	lab := randWorld(rng, 3, 2)
	for name, f := range map[string]func() (float64, error){
		"auto":    func() (float64, error) { return Auto(model, lab, nil, Options{}) },
		"general": func() (float64, error) { return General(model, lab, nil, Options{}) },
	} {
		p, err := f()
		if err != nil || p != 0 {
			t.Fatalf("%s: p=%v err=%v, want 0", name, p, err)
		}
	}
}

func TestUnsatisfiablePattern(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	model := randModel(rng, 4)
	lab := label.NewLabeling() // no labels at all
	u := pattern.Union{pattern.TwoLabel(label.NewSet(0), label.NewSet(1))}
	for name, f := range map[string]func() (float64, error){
		"twolabel":  func() (float64, error) { return TwoLabel(model, lab, u, Options{}) },
		"bipartite": func() (float64, error) { return Bipartite(model, lab, u, Options{}) },
		"relorder":  func() (float64, error) { return RelOrder(model, lab, u, Options{}) },
		"general":   func() (float64, error) { return General(model, lab, u, Options{}) },
	} {
		p, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p != 0 {
			t.Fatalf("%s: p=%v, want 0 for unsatisfiable pattern", name, p)
		}
	}
}

// A pattern guaranteed to hold (label on every item preferred to label on
// every item, with both labels everywhere) must give probability ~1... more
// simply: l > r where the first sigma item is the only l and the last is the
// only r under the identity insertion (phi=0) model.
func TestCertainPattern(t *testing.T) {
	sigma := rank.Identity(4)
	ml := rim.MustMallows(sigma, 0) // always returns sigma
	lab := label.NewLabeling()
	lab.Add(0, 0) // item 0 (position 0) has label 0
	lab.Add(3, 1) // item 3 (position 3) has label 1
	u := pattern.Union{pattern.TwoLabel(label.NewSet(0), label.NewSet(1))}
	for name, f := range map[string]func() (float64, error){
		"twolabel":  func() (float64, error) { return TwoLabel(ml.Model(), lab, u, Options{}) },
		"bipartite": func() (float64, error) { return Bipartite(ml.Model(), lab, u, Options{}) },
		"relorder":  func() (float64, error) { return RelOrder(ml.Model(), lab, u, Options{}) },
	} {
		p, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(p-1) > tol {
			t.Fatalf("%s: p=%v, want 1", name, p)
		}
	}
}

func TestContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	model := randModel(rng, 8)
	lab := randWorld(rng, 8, 4)
	u := randTwoLabelUnion(rng, 3, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TwoLabel(model, lab, u, Options{Ctx: ctx}); err == nil {
		t.Fatal("expected context error")
	}
	if _, err := Bipartite(model, lab, u, Options{Ctx: ctx}); err == nil {
		t.Fatal("expected context error")
	}
	if _, err := RelOrder(model, lab, u, Options{Ctx: ctx}); err == nil {
		t.Fatal("expected context error")
	}
}

func TestMaxStates(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	model := randModel(rng, 8)
	lab := randWorld(rng, 8, 4)
	u := randTwoLabelUnion(rng, 3, 4)
	if _, err := TwoLabel(model, lab, u, Options{MaxStates: 1}); err == nil {
		t.Fatal("expected ErrTooLarge")
	}
}

func TestRelOrderInvolvedLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	model := randModel(rng, 8)
	lab := label.NewLabeling()
	for i := 0; i < 8; i++ {
		lab.Add(rank.Item(i), 0)
		lab.Add(rank.Item(i), 1)
	}
	u := pattern.Union{pattern.TwoLabel(label.NewSet(0), label.NewSet(1))}
	if _, err := RelOrder(model, lab, u, Options{MaxInvolved: 4}); err == nil {
		t.Fatal("expected ErrTooLarge for 8 involved items with limit 4")
	}
}

// Stats must report effort for the DP solvers.
func TestStatsCollected(t *testing.T) {
	rng := rand.New(rand.NewSource(114))
	model := randModel(rng, 5)
	lab := randWorld(rng, 5, 3)
	u := randTwoLabelUnion(rng, 2, 3)
	var st Stats
	if _, err := TwoLabel(model, lab, u, Options{Stats: &st}); err != nil {
		t.Fatal(err)
	}
	if st.PeakStates == 0 || st.TotalStates == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}
