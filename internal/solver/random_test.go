package solver

import (
	"math"
	"math/rand"
	"testing"

	"probpref/internal/pattern"
)

// Randomized cross-solver agreement: every exact solver must compute the
// same probability on any instance of the pattern family it supports.
// The per-solver tests in solver_test.go check each solver against the m!
// enumerator on its own; the tests here check the solvers against each
// other — including on instances too large to enumerate — and check
// structural properties of the probabilities.

func TestRandomTwoLabelCrossSolverAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 30; trial++ {
		m := 4 + rng.Intn(3) // 4..6: brute-checkable
		mdl := randModel(rng, m)
		lab := randWorld(rng, m, 3)
		u := randTwoLabelUnion(rng, 1+rng.Intn(2), 3)

		want := Brute(mdl, lab, u)
		two, err := TwoLabel(mdl, lab, u, Options{})
		if err != nil {
			t.Fatalf("trial %d: two-label: %v", trial, err)
		}
		bip, err := Bipartite(mdl, lab, u, Options{})
		if err != nil {
			t.Fatalf("trial %d: bipartite: %v", trial, err)
		}
		gen, err := General(mdl, lab, u, Options{})
		if err != nil {
			t.Fatalf("trial %d: general: %v", trial, err)
		}
		rel, err := RelOrder(mdl, lab, u, Options{MaxInvolved: 16})
		if err != nil {
			t.Fatalf("trial %d: relorder: %v", trial, err)
		}
		for name, got := range map[string]float64{
			"two-label": two, "bipartite": bip, "general": gen, "relorder": rel,
		} {
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: %s = %v, brute = %v", trial, name, got, want)
			}
		}
	}
}

func TestRandomTwoLabelAgreementLargerM(t *testing.T) {
	// Beyond brute range: solvers must still agree with each other.
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 10; trial++ {
		m := 9 + rng.Intn(4) // 9..12
		mdl := randModel(rng, m)
		lab := randWorld(rng, m, 3)
		u := randTwoLabelUnion(rng, 2, 3)

		two, err := TwoLabel(mdl, lab, u, Options{})
		if err != nil {
			t.Fatal(err)
		}
		bip, err := Bipartite(mdl, lab, u, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(two-bip) > 1e-9 {
			t.Fatalf("trial %d (m=%d): two-label %v != bipartite %v", trial, m, two, bip)
		}
	}
}

func TestRandomBipartiteCrossSolverAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 25; trial++ {
		m := 4 + rng.Intn(3)
		mdl := randModel(rng, m)
		lab := randWorld(rng, m, 4)
		u := randBipartiteUnion(rng, 1+rng.Intn(2), 4)

		want := Brute(mdl, lab, u)
		bip, err := Bipartite(mdl, lab, u, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		basic, err := BipartiteBasic(mdl, lab, u, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		gen, err := General(mdl, lab, u, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for name, got := range map[string]float64{
			"bipartite": bip, "bipartite-basic": basic, "general": gen,
		} {
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: %s = %v, brute = %v", trial, name, got, want)
			}
		}
	}
}

func TestRandomDAGCrossSolverAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 20; trial++ {
		m := 4 + rng.Intn(2) // 4..5
		mdl := randModel(rng, m)
		lab := randWorld(rng, m, 3)
		u := randDAGUnion(rng, 1+rng.Intn(2), 3)

		want := Brute(mdl, lab, u)
		rel, err := RelOrder(mdl, lab, u, Options{MaxInvolved: 16})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		gen, err := General(mdl, lab, u, Options{MaxInvolved: 16})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(rel-want) > 1e-9 {
			t.Fatalf("trial %d: relorder %v, brute %v", trial, rel, want)
		}
		if math.Abs(gen-want) > 1e-9 {
			t.Fatalf("trial %d: general %v, brute %v", trial, gen, want)
		}
	}
}

func TestRandomAutoAlwaysAgreesWithBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for trial := 0; trial < 20; trial++ {
		m := 4 + rng.Intn(3)
		mdl := randModel(rng, m)
		lab := randWorld(rng, m, 3)
		var u pattern.Union
		switch trial % 3 {
		case 0:
			u = randTwoLabelUnion(rng, 2, 3)
		case 1:
			u = randBipartiteUnion(rng, 2, 3)
		default:
			u = randDAGUnion(rng, 1, 3)
		}
		want := Brute(mdl, lab, u)
		got, err := Auto(mdl, lab, u, Options{MaxInvolved: 16})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: auto %v, brute %v", trial, got, want)
		}
	}
}

// Probabilities are monotone under union growth: adding a pattern can only
// increase the marginal probability.
func TestRandomUnionMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	for trial := 0; trial < 20; trial++ {
		m := 5 + rng.Intn(3)
		mdl := randModel(rng, m)
		lab := randWorld(rng, m, 3)
		u := randBipartiteUnion(rng, 3, 3)
		prev := 0.0
		for z := 1; z <= len(u); z++ {
			p, err := Bipartite(mdl, lab, u[:z], Options{})
			if err != nil {
				t.Fatal(err)
			}
			if p < prev-1e-9 {
				t.Fatalf("trial %d: Pr shrank from %v to %v when adding pattern %d", trial, prev, p, z)
			}
			if p < -1e-12 || p > 1+1e-9 {
				t.Fatalf("trial %d: Pr out of range: %v", trial, p)
			}
			prev = p
		}
	}
}

// Merged unions (the UCQ path) solve to the same probability as the
// concatenated union with duplicates.
func TestRandomMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 15; trial++ {
		m := 4 + rng.Intn(3)
		mdl := randModel(rng, m)
		lab := randWorld(rng, m, 3)
		u1 := randBipartiteUnion(rng, 2, 3)
		u2 := append(pattern.Union{u1[0]}, randBipartiteUnion(rng, 1, 3)...)
		merged := pattern.Merge(u1, u2)
		concat := append(append(pattern.Union{}, u1...), u2...)

		pm, err := Bipartite(mdl, lab, merged, Options{})
		if err != nil {
			t.Fatal(err)
		}
		pc, err := Bipartite(mdl, lab, concat, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pm-pc) > 1e-9 {
			t.Fatalf("trial %d: merged %v != concatenated %v", trial, pm, pc)
		}
		if len(merged) >= len(concat) {
			t.Fatalf("trial %d: merge did not deduplicate (%d >= %d)", trial, len(merged), len(concat))
		}
	}
}
