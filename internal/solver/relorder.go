package solver

import (
	"fmt"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rank"
	"probpref/internal/rim"
)

// RelOrder computes Pr(G) exactly for an arbitrary pattern union by dynamic
// programming over the positions of the involved items — the items that can
// match at least one pattern node. Whether a ranking matches the union
// depends only on the relative order of these items, so states are
// (position vector of inserted involved items); inserting a non-involved
// item only shifts positions, and all insertion slots inside the same gap
// between involved items are merged. A state whose arrangement already
// matches the union is absorbed into the answer immediately (matching is
// monotone under insertion).
//
// A state is the position-sorted list of inserted involved items, one word
// per entry ((item index << 11) | position) whenever the item index fits 5
// bits and positions fit 11, two words otherwise; layers use the packed
// representation of state.go, so early layers (up to four inserted involved
// items) key as a single uint64. Union matching is precompiled to bitmask
// probes over the patterns' cached topological orders (see matches below).
//
// This solver substitutes for the LTM engine of Cohen et al. in the general
// solver (DESIGN.md, substitution S1). It is exponential in the number of
// involved items (O(C(m, t) * t!) states in the worst case) and rejects
// instances with more than Options.MaxInvolved involved items.
func RelOrder(model *rim.Model, lab *label.Labeling, u pattern.Union, opts Options) (float64, error) {
	if len(u) == 0 {
		return 0, nil
	}
	ctx := opts.ctx()
	m := model.M()
	for _, g := range u {
		if g.NumNodes() == 0 {
			return 1, nil
		}
	}
	involved := pattern.InvolvedItems(u, lab, m)
	t := len(involved)
	if t > opts.maxInvolved() {
		return 0, fmt.Errorf("%w: %d involved items (limit %d)", ErrTooLarge, t, opts.maxInvolved())
	}
	tIdx := make(map[rank.Item]int, t)
	for i, it := range involved {
		tIdx[it] = i
	}

	// Entry codec: one word packs (item index, position) when the index fits
	// 5 bits and positions fit 11 — every realistic instance. The generic
	// two-word form handles the rest.
	oneWord := t <= 32 && m <= 2047
	entryWords := 1
	if !oneWord {
		entryWords = 2
	}
	getEntry := func(w []int16, e int) (int, int16) {
		if oneWord {
			v := uint16(w[e])
			return int(v >> 11), int16(v & 0x7ff)
		}
		return int(w[2*e]), w[2*e+1]
	}

	// Matching is precompiled to integer operations: for every pattern node,
	// a bitmask over involved-item indices of the items that can satisfy it
	// (node labels ⊆ item labels). An arrangement matches a pattern iff the
	// greedy earliest embedding — the exact algorithm of pattern.Matches,
	// over the cached topological order and predecessor lists — completes,
	// tested with bit probes instead of label-set subset checks.
	maxNodes := 0
	for _, g := range u {
		if g.NumNodes() > maxNodes {
			maxNodes = g.NumNodes()
		}
	}
	useMasks := t <= 64 && maxNodes <= 16
	type relPat struct {
		topo  []int
		preds [][]int
		can   []uint64 // per node, bitmask over involved item indices
	}
	var relPats []relPat
	if useMasks {
		relPats = make([]relPat, len(u))
		for gi, g := range u {
			can := make([]uint64, g.NumNodes())
			for v := range can {
				nl := g.Node(v).Labels
				for ii, it := range involved {
					if nl.SubsetOf(lab.Of(it)) {
						can[v] |= 1 << uint(ii)
					}
				}
			}
			relPats[gi] = relPat{topo: g.TopoOrder(), preds: g.Preds(), can: can}
		}
	}
	// matches reports whether the arrangement encoded by the k-entry word
	// vector (already position-sorted) matches the union.
	matches := func(ws *workspace, w []int16, k int) bool {
		if !useMasks {
			// Oversized instance (reachable through General's conjunctions,
			// whose node counts sum across patterns): fall back to the
			// generic matcher, memoized per arrangement in the per-worker
			// cache so each distinct item order runs one greedy embedding.
			// Byte keys hold item indices; memoization is skipped on the
			// (factorially intractable anyway) t > 255 instances where an
			// index would not fit a byte.
			memo := t <= 255
			var kb []byte
			if memo {
				if cap(ws.kb) < k {
					ws.kb = make([]byte, t)
				}
				kb = ws.kb[:k]
				for e := 0; e < k; e++ {
					idx, _ := getEntry(w, e)
					kb[e] = byte(idx)
				}
				if v, ok := ws.match[string(kb)]; ok {
					return v
				}
			}
			if cap(ws.rank) < k {
				ws.rank = make(rank.Ranking, t)
			}
			mini := ws.rank[:k]
			for e := 0; e < k; e++ {
				idx, _ := getEntry(w, e)
				mini[e] = involved[idx]
			}
			v := u.Matches(mini, lab)
			if memo {
				if ws.match == nil {
					ws.match = make(map[string]bool)
				}
				ws.match[string(kb)] = v
			}
			return v
		}
		if cap(ws.bits) < k {
			ws.bits = make([]uint64, t)
		}
		bits := ws.bits[:k] // bit of the item at each position
		if oneWord {
			for e := 0; e < k; e++ {
				bits[e] = 1 << (uint16(w[e]) >> 11)
			}
		} else {
			for e := 0; e < k; e++ {
				bits[e] = 1 << uint(w[2*e])
			}
		}
		for gi := range relPats {
			rp := &relPats[gi]
			var pos [16]int
			ok := true
			for _, v := range rp.topo {
				lowest := 0
				for _, pu := range rp.preds[v] {
					if pos[pu]+1 > lowest {
						lowest = pos[pu] + 1
					}
				}
				found := -1
				cv := rp.can[v]
				for q := lowest; q < k; q++ {
					if cv&bits[q] != 0 {
						found = q
						break
					}
				}
				if found < 0 {
					ok = false
					break
				}
				pos[v] = found
			}
			if ok {
				return true
			}
		}
		return false
	}

	ar := getArena()
	defer putArena(ar)
	cur, nxt := &ar.layers[0], &ar.layers[1]
	cur.reset(0, 1)
	cur.addWords(nil, 1)
	prob := 0.0
	piPrefix := ar.prefix(m + 2)
	ins := 0 // involved items inserted so far

	// The expand closures are built once; the step loop only rebinds the
	// per-step variables they capture. The one-word codec gets dedicated
	// closures operating on raw words — this loop is the solver's entire
	// hot path.
	var (
		piRow []float64
		stepI int // insertion step i
		k     int // entries per current state
		dstK  int // entries per successor state
		xIdx  int // involved index of the inserted item
	)
	expandInvolvedFast := func(ws *workspace, key []int16, q float64, em *emitter) {
		ne := ws.next
		for j := 0; j <= stepI; j++ {
			p := q * piRow[j]
			if p == 0 {
				continue
			}
			jj := uint16(j)
			xw := int16(uint16(xIdx)<<11 | jj)
			out := 0
			inserted := false
			for e := 0; e < k; e++ {
				v := uint16(key[e])
				pos := v & 0x7ff
				if pos >= jj {
					pos++
				}
				if !inserted && pos > jj {
					ne[out] = xw
					out++
					inserted = true
				}
				ne[out] = int16(v&0xf800 | pos)
				out++
			}
			if !inserted {
				ne[out] = xw
			}
			if matches(ws, ne, dstK) {
				em.absorb(p)
				continue
			}
			em.emit(ne, p)
		}
	}
	expandGapFast := func(ws *workspace, key []int16, q float64, em *emitter) {
		ne := ws.next
		lo := 0
		for g := 0; g <= k; g++ {
			hi := stepI
			if g < k {
				hi = int(uint16(key[g]) & 0x7ff)
			}
			if lo > hi {
				continue
			}
			if w := piPrefix[hi+1] - piPrefix[lo]; w > 0 {
				copy(ne, key[:k])
				for e := g; e < k; e++ {
					ne[e]++ // position occupies the low bits; +1 cannot carry
				}
				em.emit(ne, q*w)
			}
			if g < k {
				lo = int(uint16(key[g])&0x7ff) + 1
			}
		}
	}
	// Generic two-word variants for oversized instances.
	expandInvolvedWide := func(ws *workspace, key []int16, q float64, em *emitter) {
		ne := ws.next
		for j := 0; j <= stepI; j++ {
			p := q * piRow[j]
			if p == 0 {
				continue
			}
			jj := int16(j)
			out := 0
			inserted := false
			for e := 0; e < k; e++ {
				idx, pos := int(key[2*e]), key[2*e+1]
				if pos >= jj {
					pos++
				}
				if !inserted && pos > jj {
					ne[2*out], ne[2*out+1] = int16(xIdx), jj
					out++
					inserted = true
				}
				ne[2*out], ne[2*out+1] = int16(idx), pos
				out++
			}
			if !inserted {
				ne[2*out], ne[2*out+1] = int16(xIdx), jj
			}
			if matches(ws, ne, dstK) {
				em.absorb(p)
				continue
			}
			em.emit(ne, p)
		}
	}
	expandGapWide := func(ws *workspace, key []int16, q float64, em *emitter) {
		ne := ws.next
		lo := 0
		for g := 0; g <= k; g++ {
			hi := stepI
			if g < k {
				hi = int(key[2*g+1])
			}
			if lo > hi {
				continue
			}
			if w := piPrefix[hi+1] - piPrefix[lo]; w > 0 {
				copy(ne, key[:2*k])
				for e := g; e < k; e++ {
					ne[2*e+1]++
				}
				em.emit(ne, q*w)
			}
			if g < k {
				lo = int(key[2*g+1]) + 1
			}
		}
	}
	expandInvolved, expandGap := expandInvolvedWide, expandGapWide
	if oneWord {
		expandInvolved, expandGap = expandInvolvedFast, expandGapFast
	}

	for i := 0; i < m; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		x := model.Sigma()[i]
		var isInvolved bool
		xIdx, isInvolved = tIdx[x]
		piRow, stepI, k = model.PiRow(i), i, ins
		expand := expandGap
		dstK = k
		if isInvolved {
			dstK = k + 1
			expand = expandInvolved
		} else {
			// Prefix sums of the insertion row for gap merging.
			piPrefix[0] = 0
			for j := 0; j <= i; j++ {
				piPrefix[j+1] = piPrefix[j] + piRow[j]
			}
		}
		var err error
		prob, err = runStep(ctx, ar, cur, nxt, dstK*entryWords, opts, prob, expand)
		if err != nil {
			return 0, err
		}
		if isInvolved {
			ins++
		}
		opts.note(nxt.len())
		if err := opts.checkStates(nxt.len()); err != nil {
			return 0, err
		}
		cur, nxt = nxt, cur
	}
	return prob, nil
}
