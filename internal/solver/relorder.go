package solver

import (
	"fmt"
	"strconv"
	"strings"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rank"
	"probpref/internal/rim"
)

// RelOrder computes Pr(G) exactly for an arbitrary pattern union by dynamic
// programming over the positions of the involved items — the items that can
// match at least one pattern node. Whether a ranking matches the union
// depends only on the relative order of these items, so states are
// (position vector of inserted involved items); inserting a non-involved
// item only shifts positions, and all insertion slots inside the same gap
// between involved items are merged. A state whose arrangement already
// matches the union is absorbed into the answer immediately (matching is
// monotone under insertion).
//
// A state is the position-sorted list of inserted involved items, one word
// per entry ((item index << 11) | position) whenever the item index fits 5
// bits and positions fit 11, two words otherwise; layers use the packed
// representation of state.go, so early layers (up to four inserted involved
// items) key as a single uint64. Union matching is precompiled to bitmask
// probes over the patterns' cached topological orders (see relPlan.matches).
// The solver is split into a session-independent compile half (involved-item
// schedule, match masks, activation step) and an executor that only reads
// the session's Pi rows; see plan.go.
//
// This solver substitutes for the LTM engine of Cohen et al. in the general
// solver (DESIGN.md, substitution S1). It is exponential in the number of
// involved items (O(C(m, t) * t!) states in the worst case) and rejects
// instances with more than Options.MaxInvolved involved items.
func RelOrder(model *rim.Model, lab *label.Labeling, u pattern.Union, opts Options) (float64, error) {
	if len(u) == 0 {
		return 0, nil
	}
	ar := getArena()
	defer putArena(ar)
	var pl relPlan
	if err := compileRelOrder(&pl, planAlloc{ar}, model.Sigma(), lab, u, opts.maxInvolved()); err != nil {
		return 0, err
	}
	if pl.constOne {
		return 1, nil
	}
	return runRelOrder(ar, &pl, model, opts)
}

// relPat is one pattern's compiled matcher: cached topological order and
// predecessor lists plus, per node, the bitmask over involved-item indices
// of the items that can satisfy it.
type relPat struct {
	topo  []int
	preds [][]int
	can   []uint64
}

// relPlan is the session-independent compilation of a union for RelOrder:
// the involved items, the per-step insertion schedule, the entry codec
// choice and the precompiled matchers.
type relPlan struct {
	m, t       int
	involved   []rank.Item
	u          pattern.Union
	lab        *label.Labeling
	oneWord    bool
	entryWords int
	useMasks   bool
	relPats    []relPat
	stepInv    []bool // per step, is the inserted item involved?
	stepIdx    []int  // per step, involved index of the inserted item
	// activation is the earliest insertion step whose successor states could
	// possibly match some pattern (a conservative, purely structural bound:
	// every node has at least one inserted candidate item and enough
	// involved items are inserted to realize the pattern's longest path).
	// Before this step the walk performs no absorption and never consults
	// the union, which is what makes walk prefixes shareable across plans
	// with the same insertion schedule. m when no pattern can ever match; 0
	// when the bound is unavailable (mask-free fallback matcher).
	activation int
	constOne   bool // some pattern has no nodes: probability is 1
}

func compileRelOrder(pl *relPlan, a planAlloc, sigma rank.Ranking, lab *label.Labeling, u pattern.Union, maxInvolved int) error {
	m := len(sigma)
	for _, g := range u {
		if g.NumNodes() == 0 {
			pl.constOne = true
			return nil
		}
	}
	involved := pattern.InvolvedItems(u, lab, m)
	t := len(involved)
	if t > maxInvolved {
		return fmt.Errorf("%w: %d involved items (limit %d)", ErrTooLarge, t, maxInvolved)
	}
	tIdx := make(map[rank.Item]int, t)
	for i, it := range involved {
		tIdx[it] = i
	}
	stepInv := a.bools(m)
	stepIdx := a.ints(m)
	for i := 0; i < m; i++ {
		xIdx, ok := tIdx[sigma[i]]
		stepInv[i], stepIdx[i] = ok, xIdx
	}

	// Entry codec: one word packs (item index, position) when the index fits
	// 5 bits and positions fit 11 — every realistic instance. The generic
	// two-word form handles the rest.
	oneWord := t <= 32 && m <= 2047
	entryWords := 1
	if !oneWord {
		entryWords = 2
	}

	// Matching is precompiled to integer operations: for every pattern node,
	// a bitmask over involved-item indices of the items that can satisfy it
	// (node labels ⊆ item labels). An arrangement matches a pattern iff the
	// greedy earliest embedding — the exact algorithm of pattern.Matches,
	// over the cached topological order and predecessor lists — completes,
	// tested with bit probes instead of label-set subset checks.
	maxNodes := 0
	for _, g := range u {
		if g.NumNodes() > maxNodes {
			maxNodes = g.NumNodes()
		}
	}
	useMasks := t <= 64 && maxNodes <= 16
	var relPats []relPat
	if useMasks {
		relPats = make([]relPat, len(u))
		for gi, g := range u {
			can := make([]uint64, g.NumNodes())
			for v := range can {
				nl := g.Node(v).Labels
				for ii, it := range involved {
					if nl.SubsetOf(lab.Of(it)) {
						can[v] |= 1 << uint(ii)
					}
				}
			}
			relPats[gi] = relPat{topo: g.TopoOrder(), preds: g.Preds(), can: can}
		}
	}

	pl.m, pl.t = m, t
	pl.involved = involved
	pl.u, pl.lab = u, lab
	pl.oneWord, pl.entryWords = oneWord, entryWords
	pl.useMasks = useMasks
	pl.relPats = relPats
	pl.stepInv, pl.stepIdx = stepInv, stepIdx
	pl.activation = pl.computeActivation()
	return nil
}

// computeActivation finds the earliest step whose successors could match
// some pattern. For each pattern: positions strictly increase along edges,
// so a longest path of L edges needs L+1 inserted involved items, and every
// node needs at least one inserted candidate item. The minimum over
// patterns of the first step satisfying both is a sound lower bound on the
// first absorption; requires the mask matcher (returns 0 — no usable bound —
// for the generic fallback).
func (pl *relPlan) computeActivation() int {
	if !pl.useMasks {
		return 0
	}
	act := pl.m
	depth := make([]int, 16)
	for gi := range pl.relPats {
		rp := &pl.relPats[gi]
		long := 0
		for _, v := range rp.topo {
			d := 0
			for _, pu := range rp.preds[v] {
				if depth[pu]+1 > d {
					d = depth[pu] + 1
				}
			}
			depth[v] = d
			if d > long {
				long = d
			}
		}
		need := long + 1
		var mask uint64
		ins := 0
		for i := 0; i < pl.m && i < act; i++ {
			if pl.stepInv[i] {
				mask |= 1 << uint(pl.stepIdx[i])
				ins++
			}
			if ins < need {
				continue
			}
			ok := true
			for _, cv := range rp.can {
				if cv&mask == 0 {
					ok = false
					break
				}
			}
			if ok {
				act = i
				break
			}
		}
	}
	return act
}

// scheduleKey fingerprints the plan's walk schedule: two relorder plans over
// the same reference ranking and the same involved items expand identical
// layers at every step before their activation (the walk never consults the
// union until then), so plans with equal keys can share a walk prefix.
func (pl *relPlan) scheduleKey(sigma rank.Ranking) string {
	var b strings.Builder
	b.WriteString(sigma.Key())
	b.WriteString("|inv:")
	for _, it := range pl.involved {
		b.WriteString(strconv.Itoa(int(it)))
		b.WriteByte(',')
	}
	return b.String()
}

func (pl *relPlan) entry(w []int16, e int) (int, int16) {
	if pl.oneWord {
		v := uint16(w[e])
		return int(v >> 11), int16(v & 0x7ff)
	}
	return int(w[2*e]), w[2*e+1]
}

// matches reports whether the arrangement encoded by the k-entry word
// vector (already position-sorted) matches the union.
func (pl *relPlan) matches(ws *workspace, w []int16, k int) bool {
	if !pl.useMasks {
		// Oversized instance (reachable through General's conjunctions,
		// whose node counts sum across patterns): fall back to the
		// generic matcher, memoized per arrangement in the per-worker
		// cache so each distinct item order runs one greedy embedding.
		// Byte keys hold item indices; memoization is skipped on the
		// (factorially intractable anyway) t > 255 instances where an
		// index would not fit a byte.
		memo := pl.t <= 255
		var kb []byte
		if memo {
			if cap(ws.kb) < k {
				ws.kb = make([]byte, pl.t)
			}
			kb = ws.kb[:k]
			for e := 0; e < k; e++ {
				idx, _ := pl.entry(w, e)
				kb[e] = byte(idx)
			}
			if v, ok := ws.match[string(kb)]; ok {
				return v
			}
		}
		if cap(ws.rank) < k {
			ws.rank = make(rank.Ranking, pl.t)
		}
		mini := ws.rank[:k]
		for e := 0; e < k; e++ {
			idx, _ := pl.entry(w, e)
			mini[e] = pl.involved[idx]
		}
		v := pl.u.Matches(mini, pl.lab)
		if memo {
			if ws.match == nil {
				ws.match = make(map[string]bool)
			}
			ws.match[string(kb)] = v
		}
		return v
	}
	if cap(ws.bits) < k {
		ws.bits = make([]uint64, pl.t)
	}
	bits := ws.bits[:k] // bit of the item at each position
	if pl.oneWord {
		for e := 0; e < k; e++ {
			bits[e] = 1 << (uint16(w[e]) >> 11)
		}
	} else {
		for e := 0; e < k; e++ {
			bits[e] = 1 << uint(w[2*e])
		}
	}
	for gi := range pl.relPats {
		rp := &pl.relPats[gi]
		var pos [16]int
		ok := true
		for _, v := range rp.topo {
			lowest := 0
			for _, pu := range rp.preds[v] {
				if pos[pu]+1 > lowest {
					lowest = pos[pu] + 1
				}
			}
			found := -1
			cv := rp.can[v]
			for q := lowest; q < k; q++ {
				if cv&bits[q] != 0 {
					found = q
					break
				}
			}
			if found < 0 {
				ok = false
				break
			}
			pos[v] = found
		}
		if ok {
			return true
		}
	}
	return false
}

// runRelOrder executes a compiled relorder plan against one session. The
// layer walk is structural: gap emissions happen even when a gap's
// insertion mass is zero and involved-step successors are emitted (or
// absorbed) regardless of their mass — zero contributions are bitwise
// neutral, and the Pi-independent walk is what the batched executor relies
// on.
func runRelOrder(ar *arena, pl *relPlan, model *rim.Model, opts Options) (float64, error) {
	ctx := opts.ctx()
	m := pl.m
	entryWords := pl.entryWords

	cur, nxt := &ar.layers[0], &ar.layers[1]
	cur.reset(0, 1)
	cur.addWords(nil, 1)
	prob := 0.0
	piPrefix := ar.prefix(m + 2)
	ins := 0 // involved items inserted so far

	// The expand closures are built once; the step loop only rebinds the
	// per-step variables they capture. The one-word codec gets dedicated
	// closures operating on raw words — this loop is the solver's entire
	// hot path.
	var (
		piRow []float64
		stepI int // insertion step i
		k     int // entries per current state
		dstK  int // entries per successor state
		xIdx  int // involved index of the inserted item
	)
	expandInvolvedFast := func(ws *workspace, key []int16, q float64, em *emitter) {
		ne := ws.next
		for j := 0; j <= stepI; j++ {
			p := q * piRow[j]
			jj := uint16(j)
			xw := int16(uint16(xIdx)<<11 | jj)
			out := 0
			inserted := false
			for e := 0; e < k; e++ {
				v := uint16(key[e])
				pos := v & 0x7ff
				if pos >= jj {
					pos++
				}
				if !inserted && pos > jj {
					ne[out] = xw
					out++
					inserted = true
				}
				ne[out] = int16(v&0xf800 | pos)
				out++
			}
			if !inserted {
				ne[out] = xw
			}
			if pl.matches(ws, ne, dstK) {
				em.absorb(p)
				continue
			}
			em.emit(ne, p)
		}
	}
	expandGapFast := func(ws *workspace, key []int16, q float64, em *emitter) {
		ne := ws.next
		lo := 0
		for g := 0; g <= k; g++ {
			hi := stepI
			if g < k {
				hi = int(uint16(key[g]) & 0x7ff)
			}
			if lo > hi {
				continue
			}
			copy(ne, key[:k])
			for e := g; e < k; e++ {
				ne[e]++ // position occupies the low bits; +1 cannot carry
			}
			em.emit(ne, q*(piPrefix[hi+1]-piPrefix[lo]))
			if g < k {
				lo = int(uint16(key[g])&0x7ff) + 1
			}
		}
	}
	// Generic two-word variants for oversized instances.
	expandInvolvedWide := func(ws *workspace, key []int16, q float64, em *emitter) {
		ne := ws.next
		for j := 0; j <= stepI; j++ {
			p := q * piRow[j]
			jj := int16(j)
			out := 0
			inserted := false
			for e := 0; e < k; e++ {
				idx, pos := int(key[2*e]), key[2*e+1]
				if pos >= jj {
					pos++
				}
				if !inserted && pos > jj {
					ne[2*out], ne[2*out+1] = int16(xIdx), jj
					out++
					inserted = true
				}
				ne[2*out], ne[2*out+1] = int16(idx), pos
				out++
			}
			if !inserted {
				ne[2*out], ne[2*out+1] = int16(xIdx), jj
			}
			if pl.matches(ws, ne, dstK) {
				em.absorb(p)
				continue
			}
			em.emit(ne, p)
		}
	}
	expandGapWide := func(ws *workspace, key []int16, q float64, em *emitter) {
		ne := ws.next
		lo := 0
		for g := 0; g <= k; g++ {
			hi := stepI
			if g < k {
				hi = int(key[2*g+1])
			}
			if lo > hi {
				continue
			}
			copy(ne, key[:2*k])
			for e := g; e < k; e++ {
				ne[2*e+1]++
			}
			em.emit(ne, q*(piPrefix[hi+1]-piPrefix[lo]))
			if g < k {
				lo = int(key[2*g+1]) + 1
			}
		}
	}
	expandInvolved, expandGap := expandInvolvedWide, expandGapWide
	if pl.oneWord {
		expandInvolved, expandGap = expandInvolvedFast, expandGapFast
	}

	for i := 0; i < m; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		isInvolved := pl.stepInv[i]
		xIdx = pl.stepIdx[i]
		piRow, stepI, k = model.PiRow(i), i, ins
		expand := expandGap
		dstK = k
		if isInvolved {
			dstK = k + 1
			expand = expandInvolved
		} else {
			// Prefix sums of the insertion row for gap merging.
			piPrefix[0] = 0
			for j := 0; j <= i; j++ {
				piPrefix[j+1] = piPrefix[j] + piRow[j]
			}
		}
		var err error
		prob, err = runStep(ctx, ar, cur, nxt, dstK*entryWords, opts, prob, expand)
		if err != nil {
			return 0, err
		}
		if isInvolved {
			ins++
		}
		opts.note(nxt.len())
		if err := opts.checkStates(nxt.len()); err != nil {
			return 0, err
		}
		cur, nxt = nxt, cur
	}
	return prob, nil
}

// runRelOrderVec executes a compiled relorder plan against many sessions in
// one batched layer walk.
func runRelOrderVec(ar *arena, pl *relPlan, models []*rim.Model, opts Options, out []float64) error {
	cur, nxt := &ar.layers[0], &ar.layers[1]
	cur.resetStride(0, 1, len(models))
	for l, w := 0, cur.valsAt(cur.slotWords(nil)); l < len(models); l++ {
		w[l] = 1
	}
	clear(out)
	_, err := relOrderVecWalk(ar, pl, models, opts, cur, nxt, 0, pl.m, false, out)
	return err
}

// relOrderVecWalk drives the batched layer walk over insertion steps
// [from, to), starting from cur (already loaded) and ping-ponging with nxt.
// probs accumulates each lane's absorbed mass. When noMatch is set the
// matcher is skipped entirely — callers only set it for step ranges below
// the plan's activation step, where no arrangement can match, so skipping
// changes no emission and no bit of any lane. Returns the final current
// layer.
func relOrderVecWalk(ar *arena, pl *relPlan, models []*rim.Model, opts Options, cur, nxt *layerTable, from, to int, noMatch bool, probs []float64) (*layerTable, error) {
	ctx := opts.ctx()
	S := len(models)
	entryWords := pl.entryWords
	ins := 0
	for i := 0; i < from; i++ {
		if pl.stepInv[i] {
			ins++
		}
	}
	wbuf := ar.floats(S * (pl.m + 2))
	var (
		wj    []float64 // j-major per-lane weights (involved steps)
		pp    []float64 // j-major per-lane Pi prefix sums (gap steps)
		stepI int
		k     int
		dstK  int
		xIdx  int
	)
	expandInvolvedFast := func(ws *workspace, key []int16, q []float64, em *vecEmitter) {
		ne := ws.next
		for j := 0; j <= stepI; j++ {
			jj := uint16(j)
			xw := int16(uint16(xIdx)<<11 | jj)
			out := 0
			inserted := false
			for e := 0; e < k; e++ {
				v := uint16(key[e])
				pos := v & 0x7ff
				if pos >= jj {
					pos++
				}
				if !inserted && pos > jj {
					ne[out] = xw
					out++
					inserted = true
				}
				ne[out] = int16(v&0xf800 | pos)
				out++
			}
			if !inserted {
				ne[out] = xw
			}
			wrow := wj[j*S : (j+1)*S]
			if !noMatch && pl.matches(ws, ne, dstK) {
				aw := em.absorbWindow()
				for l, ql := range q {
					aw[l] += ql * wrow[l]
				}
				continue
			}
			dst := em.window(ne)
			for l, ql := range q {
				dst[l] += ql * wrow[l]
			}
		}
	}
	expandGapFast := func(ws *workspace, key []int16, q []float64, em *vecEmitter) {
		ne := ws.next
		lo := 0
		for g := 0; g <= k; g++ {
			hi := stepI
			if g < k {
				hi = int(uint16(key[g]) & 0x7ff)
			}
			if lo > hi {
				continue
			}
			copy(ne, key[:k])
			for e := g; e < k; e++ {
				ne[e]++
			}
			dst := em.window(ne)
			hiRow, loRow := pp[(hi+1)*S:(hi+2)*S], pp[lo*S:(lo+1)*S]
			for l, ql := range q {
				dst[l] += ql * (hiRow[l] - loRow[l])
			}
			if g < k {
				lo = int(uint16(key[g])&0x7ff) + 1
			}
		}
	}
	expandInvolvedWide := func(ws *workspace, key []int16, q []float64, em *vecEmitter) {
		ne := ws.next
		for j := 0; j <= stepI; j++ {
			jj := int16(j)
			out := 0
			inserted := false
			for e := 0; e < k; e++ {
				idx, pos := int(key[2*e]), key[2*e+1]
				if pos >= jj {
					pos++
				}
				if !inserted && pos > jj {
					ne[2*out], ne[2*out+1] = int16(xIdx), jj
					out++
					inserted = true
				}
				ne[2*out], ne[2*out+1] = int16(idx), pos
				out++
			}
			if !inserted {
				ne[2*out], ne[2*out+1] = int16(xIdx), jj
			}
			wrow := wj[j*S : (j+1)*S]
			if !noMatch && pl.matches(ws, ne, dstK) {
				aw := em.absorbWindow()
				for l, ql := range q {
					aw[l] += ql * wrow[l]
				}
				continue
			}
			dst := em.window(ne)
			for l, ql := range q {
				dst[l] += ql * wrow[l]
			}
		}
	}
	expandGapWide := func(ws *workspace, key []int16, q []float64, em *vecEmitter) {
		ne := ws.next
		lo := 0
		for g := 0; g <= k; g++ {
			hi := stepI
			if g < k {
				hi = int(key[2*g+1])
			}
			if lo > hi {
				continue
			}
			copy(ne, key[:2*k])
			for e := g; e < k; e++ {
				ne[2*e+1]++
			}
			dst := em.window(ne)
			hiRow, loRow := pp[(hi+1)*S:(hi+2)*S], pp[lo*S:(lo+1)*S]
			for l, ql := range q {
				dst[l] += ql * (hiRow[l] - loRow[l])
			}
			if g < k {
				lo = int(key[2*g+1]) + 1
			}
		}
	}
	expandInvolved, expandGap := expandInvolvedWide, expandGapWide
	if pl.oneWord {
		expandInvolved, expandGap = expandInvolvedFast, expandGapFast
	}

	for i := from; i < to; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		isInvolved := pl.stepInv[i]
		xIdx = pl.stepIdx[i]
		stepI, k = i, ins
		expand := expandGap
		dstK = k
		if isInvolved {
			dstK = k + 1
			expand = expandInvolved
			wj = wbuf[:(i+1)*S]
			for l := 0; l < S; l++ {
				row := models[l].PiRow(i)
				for j := 0; j <= i; j++ {
					wj[j*S+l] = row[j]
				}
			}
		} else {
			pp = wbuf[:(i+2)*S]
			clear(pp[:S])
			for l := 0; l < S; l++ {
				row := models[l].PiRow(i)
				for j := 0; j <= i; j++ {
					pp[(j+1)*S+l] = pp[j*S+l] + row[j]
				}
			}
		}
		if err := runStepVec(ctx, ar, cur, nxt, dstK*entryWords, S, opts, probs, expand); err != nil {
			return nil, err
		}
		if isInvolved {
			ins++
		}
		opts.note(nxt.len())
		if err := opts.checkStates(nxt.len()); err != nil {
			return nil, err
		}
		cur, nxt = nxt, cur
	}
	return cur, nil
}

// solveSharedRelOrder solves several relorder plans with identical walk
// schedules (same reference ranking, same involved items — the caller
// groups by scheduleKey) against the same session list: one matcher-free
// batched walk up to the earliest activation step across the plans, a
// snapshot of the layer there, then a separate continuation walk per plan.
// Every plan must use the mask matcher (the generic fallback's per-worker
// memo is keyed by arrangement only and must not be shared across unions).
// outs[i] is bit-identical to SolveSessions on plans[i] alone: the shared
// prefix emits exactly what each plan's own walk emits (no arrangement can
// match before activation, so the skipped matcher changes nothing), and the
// snapshot restore reproduces the layer's insertion order and bits.
func solveSharedRelOrder(plans []*relPlan, models []*rim.Model, opts Options, outs [][]float64) error {
	d := plans[0].m
	for _, pl := range plans {
		if pl.activation < d {
			d = pl.activation
		}
	}
	ar := getArena()
	defer putArena(ar)
	S := len(models)
	cur, nxt := &ar.layers[0], &ar.layers[1]
	cur.resetStride(0, 1, S)
	for l, w := 0, cur.valsAt(cur.slotWords(nil)); l < S; l++ {
		w[l] = 1
	}
	fin, err := relOrderVecWalk(ar, plans[0], models, opts, cur, nxt, 0, d, true, nil)
	if err != nil {
		return err
	}
	snap := snapshotLayer(fin)
	for pi, pl := range plans {
		clear(outs[pi])
		start := &ar.layers[0]
		snap.restore(start)
		if _, err := relOrderVecWalk(ar, pl, models, opts, start, &ar.layers[1], d, pl.m, false, outs[pi]); err != nil {
			return err
		}
	}
	return nil
}
