package solver

import (
	"fmt"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rank"
	"probpref/internal/rim"
)

// RelOrder computes Pr(G) exactly for an arbitrary pattern union by dynamic
// programming over the positions of the involved items — the items that can
// match at least one pattern node. Whether a ranking matches the union
// depends only on the relative order of these items, so states are
// (position vector of inserted involved items); inserting a non-involved
// item only shifts positions, and all insertion slots inside the same gap
// between involved items are merged. A state whose arrangement already
// matches the union is absorbed into the answer immediately (matching is
// monotone under insertion).
//
// This solver substitutes for the LTM engine of Cohen et al. in the general
// solver (DESIGN.md, substitution S1). It is exponential in the number of
// involved items (O(C(m, t) * t!) states in the worst case) and rejects
// instances with more than Options.MaxInvolved involved items.
func RelOrder(model *rim.Model, lab *label.Labeling, u pattern.Union, opts Options) (float64, error) {
	if len(u) == 0 {
		return 0, nil
	}
	ctx := opts.ctx()
	m := model.M()
	for _, g := range u {
		if g.NumNodes() == 0 {
			return 1, nil
		}
	}
	involved := pattern.InvolvedItems(u, lab, m)
	if len(involved) > opts.maxInvolved() {
		return 0, fmt.Errorf("%w: %d involved items (limit %d)", ErrTooLarge, len(involved), opts.maxInvolved())
	}
	tIdx := make(map[rank.Item]int, len(involved))
	for i, it := range involved {
		tIdx[it] = i
	}

	// State encoding: entries sorted by position; 3 bytes per entry
	// (involved-item index, position lo, position hi).
	type entry struct {
		item rank.Item
		pos  int16
	}
	enc := func(es []entry) string {
		b := make([]byte, 3*len(es))
		for i, e := range es {
			b[3*i] = byte(tIdx[e.item])
			b[3*i+1] = byte(uint16(e.pos))
			b[3*i+2] = byte(uint16(e.pos) >> 8)
		}
		return string(b)
	}
	dec := func(key string) []entry {
		es := make([]entry, len(key)/3)
		for i := range es {
			es[i] = entry{
				item: involved[key[3*i]],
				pos:  int16(uint16(key[3*i+1]) | uint16(key[3*i+2])<<8),
			}
		}
		return es
	}

	matchCache := make(map[string]bool)
	matches := func(es []entry) bool {
		kb := make([]byte, len(es))
		for i, e := range es {
			kb[i] = byte(tIdx[e.item])
		}
		k := string(kb)
		if v, ok := matchCache[k]; ok {
			return v
		}
		mini := make(rank.Ranking, len(es))
		for i, e := range es {
			mini[i] = e.item
		}
		v := u.Matches(mini, lab)
		matchCache[k] = v
		return v
	}

	cur := newLayer(1)
	cur.add("", 1)
	prob := 0.0
	piPrefix := make([]float64, m+2)

	for i := 0; i < m; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		x := model.Sigma()[i]
		_, isInvolved := tIdx[x]
		nxt := newLayer(cur.len())
		// Prefix sums of the insertion row for gap merging.
		piPrefix[0] = 0
		for j := 0; j <= i; j++ {
			piPrefix[j+1] = piPrefix[j] + model.Pi(i, j)
		}
		rangeWeight := func(lo, hi int) float64 { return piPrefix[hi+1] - piPrefix[lo] }

		for ki, key := range cur.keys {
			q := cur.vals[ki]
			es := dec(key)
			if isInvolved {
				for j := 0; j <= i; j++ {
					ne := make([]entry, 0, len(es)+1)
					inserted := false
					for _, e := range es {
						p := e.pos
						if p >= int16(j) {
							p++
						}
						if !inserted && p > int16(j) {
							ne = append(ne, entry{item: x, pos: int16(j)})
							inserted = true
						}
						ne = append(ne, entry{item: e.item, pos: p})
					}
					if !inserted {
						ne = append(ne, entry{item: x, pos: int16(j)})
					}
					p := q * model.Pi(i, j)
					if p == 0 {
						continue
					}
					if matches(ne) {
						prob += p
						continue
					}
					nxt.add(enc(ne), p)
				}
				continue
			}
			// Non-involved item: merge insertion slots per gap.
			// Gap g in [0, len(es)]: positions in (es[g-1].pos, es[g].pos]
			// shift entries g..end by one.
			lo := 0
			for g := 0; g <= len(es); g++ {
				hi := i
				if g < len(es) {
					hi = int(es[g].pos)
				}
				if lo > hi {
					continue
				}
				w := rangeWeight(lo, hi)
				if w > 0 {
					ne := make([]entry, len(es))
					copy(ne, es)
					for k := g; k < len(ne); k++ {
						ne[k].pos++
					}
					nxt.add(enc(ne), q*w)
				}
				if g < len(es) {
					lo = int(es[g].pos) + 1
				}
			}
		}
		opts.note(nxt.len())
		if err := opts.checkStates(nxt.len()); err != nil {
			return 0, err
		}
		cur = nxt
	}
	return prob, nil
}
