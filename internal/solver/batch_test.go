package solver

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rank"
	"probpref/internal/rim"
)

// Equivalence suite for the compile-once / solve-many layer: SolveSessions
// must reproduce N independent single-session solves bit-for-bit for every
// DP solver, across worker counts and GOMAXPROCS, and the shared-prefix
// relorder path must match the unshared batched path exactly. The batched
// executors rely on the layer walk being structural (independent of the
// sessions' Pi values), so the session models here deliberately include
// exact-zero insertion probabilities — the lanes where zero-mass emissions
// happen must still see the very same walk.

// randSessionModels builds n RIM models sharing sigma, differing only in
// Pi. Roughly a quarter of the insertion probabilities are exactly zero.
func randSessionModels(rng *rand.Rand, sigma rank.Ranking, n int) []*rim.Model {
	models := make([]*rim.Model, n)
	m := len(sigma)
	for s := range models {
		pi := make([][]float64, m)
		for i := 0; i < m; i++ {
			row := make([]float64, i+1)
			sum := 0.0
			for j := range row {
				if rng.Float64() < 0.25 {
					row[j] = 0
				} else {
					row[j] = rng.Float64() + 0.05
				}
				sum += row[j]
			}
			if sum == 0 {
				row[rng.Intn(len(row))] = 1
				sum = 1
			}
			for j := range row {
				row[j] /= sum
			}
			pi[i] = row
		}
		models[s] = rim.MustNew(sigma, pi)
	}
	return models
}

type batchCase struct {
	name   string
	algo   Algo
	lab    *label.Labeling
	u      pattern.Union
	models []*rim.Model
	single func(*rim.Model, *label.Labeling, pattern.Union, Options) (float64, error)
}

func batchCases(t *testing.T, seed int64, lanes int) []batchCase {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var cases []batchCase
	for trial := 0; trial < 3; trial++ {
		m := 6 + rng.Intn(4)
		sigma := make(rank.Ranking, m)
		for i, v := range rng.Perm(m) {
			sigma[i] = rank.Item(v)
		}
		models := randSessionModels(rng, sigma, lanes)
		lab := randWorld(rng, m, 4)
		two := randTwoLabelUnion(rng, 2, 4)
		bip := randBipartiteUnion(rng, 2, 4)
		dag := randDAGUnion(rng, 1, 3)
		cases = append(cases,
			batchCase{"twolabel", AlgoTwoLabel, lab, two, models, TwoLabel},
			batchCase{"bipartite", AlgoBipartite, lab, bip, models, Bipartite},
			batchCase{"bipartite-basic", AlgoBipartiteBasic, lab, bip, models, BipartiteBasic},
			batchCase{"relorder", AlgoRelOrder, lab, dag, models, RelOrder},
		)
	}
	return cases
}

// Plan.Solve must be bit-identical to the public compile-and-run solvers:
// the split into compile and execute halves moves no float operation.
func TestPlanSolveMatchesPublicSolvers(t *testing.T) {
	opts := Options{MaxInvolved: 16}
	for _, c := range batchCases(t, 601, 4) {
		p, err := CompilePlan(c.algo, c.models[0].Sigma(), c.lab, c.u, opts)
		if err != nil {
			t.Fatalf("%s: compile: %v", c.name, err)
		}
		for li, mdl := range c.models {
			want, err := c.single(mdl, c.lab, c.u, opts)
			if err != nil {
				t.Fatalf("%s: single: %v", c.name, err)
			}
			got, err := p.Solve(mdl, opts)
			if err != nil {
				t.Fatalf("%s: plan solve: %v", c.name, err)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s lane %d: plan solve %v differs from public solver %v",
					c.name, li, got, want)
			}
		}
	}
}

// SolveSessions must reproduce N independent single-session solves
// bit-for-bit under the same expansion configuration — the chunk schedule is
// a function of the layer's state count, which the batched and single walks
// share, so sequential batched solves match sequential singles and chunked
// batched solves match chunked singles at every worker count. (Chunked and
// sequential folds associate floats differently, so bits are only promised
// within a configuration; the scalar determinism suite bounds the drift
// across configurations.)
func TestSolveSessionsMatchesSingleSolvesBitwise(t *testing.T) {
	opts := Options{MaxInvolved: 16}
	cases := batchCases(t, 602, 7)
	plans := make([]*Plan, len(cases))
	for i, c := range cases {
		p, err := CompilePlan(c.algo, c.models[0].Sigma(), c.lab, c.u, opts)
		if err != nil {
			t.Fatalf("%s: compile: %v", c.name, err)
		}
		plans[i] = p
	}
	check := func(label string) {
		for i, c := range cases {
			out, err := SolveSessions(plans[i], c.models, opts)
			if err != nil {
				t.Fatalf("%s (%s): %v", c.name, label, err)
			}
			for li, mdl := range c.models {
				want, err := c.single(mdl, c.lab, c.u, opts)
				if err != nil {
					t.Fatalf("%s (%s): single: %v", c.name, label, err)
				}
				if math.Float64bits(out[li]) != math.Float64bits(want) {
					t.Fatalf("%s (%s) lane %d: batched %v differs from single %v",
						c.name, label, li, out[li], want)
				}
			}
		}
	}
	check("sequential")
	for _, workers := range []int{1, 2, 3, 4, 8} {
		func() {
			defer forceParallel(workers)()
			check("workers=" + string(rune('0'+workers)))
		}()
	}
}

// SolveSessions results must not depend on GOMAXPROCS.
func TestSolveSessionsGOMAXPROCSInvariance(t *testing.T) {
	opts := Options{MaxInvolved: 16}
	cases := batchCases(t, 603, 5)
	plans := make([]*Plan, len(cases))
	for i, c := range cases {
		p, err := CompilePlan(c.algo, c.models[0].Sigma(), c.lab, c.u, opts)
		if err != nil {
			t.Fatalf("%s: compile: %v", c.name, err)
		}
		plans[i] = p
	}
	savedT, savedC := parallelThreshold, expandChunk
	parallelThreshold, expandChunk = 1, 3
	defer func() { parallelThreshold, expandChunk = savedT, savedC }()
	saved := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(saved)

	base := make([][]uint64, len(cases))
	for i, c := range cases {
		out, err := SolveSessions(plans[i], c.models, opts)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		bits := make([]uint64, len(out))
		for li, v := range out {
			bits[li] = math.Float64bits(v)
		}
		base[i] = bits
	}
	for _, procs := range []int{2, 4} {
		runtime.GOMAXPROCS(procs)
		for i, c := range cases {
			out, err := SolveSessions(plans[i], c.models, opts)
			if err != nil {
				t.Fatalf("%s (GOMAXPROCS=%d): %v", c.name, procs, err)
			}
			for li, v := range out {
				if math.Float64bits(v) != base[i][li] {
					t.Fatalf("%s lane %d: GOMAXPROCS=%d differs from 1",
						c.name, li, procs)
				}
			}
		}
	}
}

// sharedPrefixFixture builds several relorder plans over the same reference
// ranking and involved items (same node labels, different edge structure) so
// they carry the same non-empty SharedKey, plus session models.
func sharedPrefixFixture(t *testing.T, seed int64, lanes int) ([]*Plan, []*rim.Model, *label.Labeling) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := 8
	sigma := make(rank.Ranking, m)
	for i, v := range rng.Perm(m) {
		sigma[i] = rank.Item(v)
	}
	models := randSessionModels(rng, sigma, lanes)
	lab := randWorld(rng, m, 3)
	mkNodes := func() []pattern.Node {
		nodes := make([]pattern.Node, 4)
		for i := range nodes {
			nodes[i].Labels = label.NewSet(label.Label(i % 3))
		}
		return nodes
	}
	edgeSets := [][][2]int{
		{{0, 1}, {1, 2}, {2, 3}},
		{{0, 1}, {0, 2}, {0, 3}},
		{{0, 3}, {1, 3}, {2, 3}},
		{{0, 2}, {1, 3}},
	}
	plans := make([]*Plan, 0, len(edgeSets))
	opts := Options{MaxInvolved: 16}
	for _, es := range edgeSets {
		u := pattern.Union{pattern.MustNew(mkNodes(), es)}
		p, err := CompilePlan(AlgoRelOrder, sigma, lab, u, opts)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		plans = append(plans, p)
	}
	key := plans[0].SharedKey()
	if key == "" {
		t.Fatal("fixture plans are not shareable (empty SharedKey)")
	}
	for i, p := range plans[1:] {
		if p.SharedKey() != key {
			t.Fatalf("fixture plan %d has SharedKey %q, want %q", i+1, p.SharedKey(), key)
		}
	}
	return plans, models, lab
}

// SolveSessionsShared must match per-plan SolveSessions bit-for-bit: the
// shared matcher-free walk prefix and the snapshot/restore of the layer at
// the activation depth change no emission and no fold order.
func TestSolveSessionsSharedMatchesIndependentBitwise(t *testing.T) {
	plans, models, _ := sharedPrefixFixture(t, 604, 6)
	opts := Options{MaxInvolved: 16}
	check := func(label string) {
		outs, err := SolveSessionsShared(plans, models, opts)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		for i, p := range plans {
			want, err := SolveSessions(p, models, opts)
			if err != nil {
				t.Fatalf("%s: plan %d: %v", label, i, err)
			}
			for li, v := range outs[i] {
				if math.Float64bits(v) != math.Float64bits(want[li]) {
					t.Fatalf("%s: plan %d lane %d: shared %v differs from independent %v",
						label, i, li, v, want[li])
				}
			}
		}
	}
	check("sequential")
	for _, workers := range []int{1, 3, 8} {
		func() {
			defer forceParallel(workers)()
			check("workers=" + string(rune('0'+workers)))
		}()
	}
}

// The shared result must also agree with the single-session public solver —
// guarding against the shared and unshared batched paths being consistently
// wrong together.
func TestSolveSessionsSharedMatchesScalarSolver(t *testing.T) {
	plans, models, lab := sharedPrefixFixture(t, 605, 3)
	opts := Options{MaxInvolved: 16}
	outs, err := SolveSessionsShared(plans, models, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range plans {
		for li, mdl := range models {
			want, err := RelOrder(mdl, lab, p.rel.u, opts)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(outs[i][li]) != math.Float64bits(want) {
				t.Fatalf("plan %d lane %d: shared %v, scalar %v", i, li, outs[i][li], want)
			}
		}
	}
}

// Arena lifecycle under early exits (run with -race): solves aborted by
// context cancellation or MaxStates must still return their pooled arenas —
// the pool must not grow without bound across many aborted solves — and an
// aborted solve must leak no state into the next borrower of its arena.
func TestArenaReturnedOnEarlyExitPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	m := 11
	mdl := randModel(rng, m)
	lab := randWorld(rng, m, 4)
	u := randBipartiteUnion(rng, 3, 4)
	opts := Options{MaxInvolved: 16}

	want, err := Bipartite(mdl, lab, u, opts)
	if err != nil {
		t.Fatal(err)
	}

	restore := forceParallel(3)
	defer restore()
	const goroutines, iters = 4, 60
	start := arenaNews.Load()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				switch it % 3 {
				case 0: // cancelled mid-solve by a racing goroutine
					ctx, cancel := context.WithCancel(context.Background())
					go func() {
						time.Sleep(time.Duration(it%5) * 10 * time.Microsecond)
						cancel()
					}()
					_, _ = Bipartite(mdl, lab, u, Options{Ctx: ctx, MaxInvolved: 16})
					cancel()
				case 1: // aborted by the state-count limit (BipartiteBasic has
					// no pruning, so its layers are guaranteed to exceed 2)
					_, err := BipartiteBasic(mdl, lab, u, Options{MaxStates: 2, MaxInvolved: 16})
					if err == nil {
						t.Errorf("MaxStates=2 solve unexpectedly succeeded")
					}
				default: // a full solve interleaved between aborts must be exact
					got, err := Bipartite(mdl, lab, u, opts)
					if err != nil {
						t.Errorf("interleaved solve: %v", err)
					} else if math.Float64bits(got) != math.Float64bits(want) {
						t.Errorf("interleaved solve differs after aborts: %v vs %v", got, want)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Every solve borrows and returns one arena; the pool services
	// goroutines concurrent solves from a handful of fresh allocations.
	// sync.Pool may discard arenas under GC pressure and deliberately drops
	// a random fraction of puts in race mode, so allow generous slack —
	// leaked arenas would show up as one new allocation per aborted solve,
	// exceeding half the solve count easily.
	grown := arenaNews.Load() - start
	if grown > goroutines*iters/2 {
		t.Fatalf("arena pool grew by %d across %d solves: early-exit paths are leaking arenas",
			grown, goroutines*iters)
	}

	// No cross-borrower leakage: a fresh solve after all the aborts must
	// reproduce the pristine bits.
	got, err := Bipartite(mdl, lab, u, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("solve after aborted borrowers differs: %v vs %v", got, want)
	}
}

// Cancelling a batched multi-session solve must likewise return arenas and
// leave no residue in later solves.
func TestSolveSessionsCancelledMidSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(607))
	m := 10
	sigma := make(rank.Ranking, m)
	for i, v := range rng.Perm(m) {
		sigma[i] = rank.Item(v)
	}
	models := randSessionModels(rng, sigma, 16)
	lab := randWorld(rng, m, 4)
	u := randTwoLabelUnion(rng, 3, 4)
	p, err := CompilePlan(AlgoTwoLabel, sigma, lab, u, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := SolveSessions(p, models, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const iters = 50
	start := arenaNews.Load()
	for it := 0; it < iters; it++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := SolveSessions(p, models, Options{Ctx: ctx}); err == nil {
			t.Fatal("cancelled batched solve returned no error")
		}
	}
	// A leak is one arena per cancelled solve; race mode's random put drops
	// stay well under half that.
	if grown := arenaNews.Load() - start; grown > iters/2 {
		t.Fatalf("arena pool grew by %d across cancelled batched solves", grown)
	}
	got, err := SolveSessions(p, models, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for li := range want {
		if math.Float64bits(got[li]) != math.Float64bits(want[li]) {
			t.Fatalf("lane %d differs after cancelled solves: %v vs %v", li, got[li], want[li])
		}
	}
}
