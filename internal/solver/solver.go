// Package solver implements the exact solvers of the paper for the labeled
// RIM pattern-union inference problem (Equation 2): given RIM_L(sigma, Pi,
// lambda) and a pattern union G = g1 ∪ ... ∪ gz, compute Pr(G | sigma, Pi,
// lambda), the probability that a random ranking matches at least one
// pattern.
//
// Solvers:
//
//   - Brute: enumerates all m! rankings; ground truth for tests (m <= 8).
//   - TwoLabel: Algorithm 3, for unions of two-label patterns; O(m^(2z+1)).
//   - Bipartite: Algorithm 4, for unions of bipartite patterns (and, under
//     constraint semantics, for the upper-bound patterns of the top-k
//     optimization); O(m^(qz)).
//   - General: inclusion-exclusion over pattern conjunctions (Equation 3);
//     the paper's baseline.
//   - RelOrder: exact inference for arbitrary DAG patterns by dynamic
//     programming over the relative order of the items involved in the
//     union; substitutes for the LTM engine of Cohen et al. (see DESIGN.md,
//     substitution S1).
package solver

import (
	"context"
	"errors"
	"fmt"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rim"
)

// ErrShape is returned when a solver is given a union outside the pattern
// family it supports.
var ErrShape = errors.New("solver: pattern union has unsupported shape")

// ErrTooLarge is returned when a state-space bound would be exceeded.
var ErrTooLarge = errors.New("solver: state space exceeds configured limit")

// Options tunes a solver invocation. The zero value is ready to use.
type Options struct {
	// Ctx cancels long-running solves; nil means context.Background().
	Ctx context.Context
	// MaxStates aborts with ErrTooLarge when a DP layer would exceed this
	// many states. 0 means no bound.
	MaxStates int
	// MaxInvolved bounds the number of involved items RelOrder will track
	// (default 12).
	MaxInvolved int
	// NoTrackerDrop disables the bipartite solver's
	// only-track-uncertain-labels optimization (ablation; results are
	// unchanged, state spaces grow).
	NoTrackerDrop bool
	// Stats, when non-nil, receives execution statistics.
	Stats *Stats
}

// Stats reports solver effort. Under parallel layer expansion the counters
// are accumulated per worker chunk and reduced on the solving goroutine at
// merge time, so a Stats attached to a single solve is never written
// concurrently; one Stats must still not be shared across concurrent
// solves.
type Stats struct {
	// PeakStates is the largest DP layer encountered.
	PeakStates int
	// TotalStates is the sum of DP layer sizes across steps.
	TotalStates int
	// Transitions counts generated successor states (emitted or absorbed)
	// across all expansion steps — the work unit the planner's cost model
	// predicts.
	Transitions int
	// Subproblems counts single-pattern solves (General solver).
	Subproblems int
}

func (o Options) ctx() context.Context {
	if o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

func (o Options) maxInvolved() int {
	if o.MaxInvolved == 0 {
		return 12
	}
	return o.MaxInvolved
}

// MaxInvolvedLimit returns the effective involved-items bound RelOrder will
// enforce (MaxInvolved, or its default); cost-based planners use it to
// predict whether RelOrder would accept an instance.
func (o Options) MaxInvolvedLimit() int { return o.maxInvolved() }

func (o Options) note(layer int) {
	if o.Stats == nil {
		return
	}
	o.Stats.TotalStates += layer
	if layer > o.Stats.PeakStates {
		o.Stats.PeakStates = layer
	}
}

func (o Options) checkStates(layer int) error {
	if o.MaxStates > 0 && layer > o.MaxStates {
		return fmt.Errorf("%w: %d states (limit %d)", ErrTooLarge, layer, o.MaxStates)
	}
	return nil
}

// Auto dispatches to the most specific exact solver that supports the union:
// TwoLabel for two-label unions, Bipartite for bipartite unions, RelOrder
// otherwise.
func Auto(model *rim.Model, lab *label.Labeling, u pattern.Union, opts Options) (float64, error) {
	switch {
	case len(u) == 0:
		return 0, nil
	case u.AllTwoLabel():
		return TwoLabel(model, lab, u, opts)
	case u.AllBipartite():
		return Bipartite(model, lab, u, opts)
	default:
		return RelOrder(model, lab, u, opts)
	}
}

// The DP layer representation shared by the solvers lives in state.go
// (packed integer state keys over an insertion-ordered open-addressing
// table) and layer.go (pooled arenas plus the sequential/parallel
// expansion driver). Insertion order is deterministic by induction (the
// initial layer has one state, and each expansion step visits states and
// insertion slots in a fixed order), so every solver's answer is
// bit-for-bit reproducible — the property the unified query API's
// equivalence suite and the cross-layer caches rely on — and the parallel
// driver's ordered chunk merge preserves exactly the sequential fold (see
// runStep).
