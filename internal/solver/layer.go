package solver

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"probpref/internal/label"
	"probpref/internal/rank"
)

// This file implements the shared layer-expansion driver: every DP solver's
// insertion step is "for each state of the current layer, in order, emit
// weighted successors (and absorb finished mass)". runStep executes that
// fold sequentially for small layers and in parallel for large ones, with a
// chunked schedule whose result is bit-for-bit identical to the sequential
// fold at every worker count — see the determinism argument on runStep. All
// buffers (the ping-pong layers, per-worker scratch, per-chunk sublayers)
// live in a pooled arena so steady-state solves allocate nothing in the
// inner loop.

// Deterministic parallel-expansion schedule. Probability mass is folded in
// a fixed tree: per-chunk left folds whose subtotals merge in chunk order.
// Both the chunk boundaries (fixed size, contiguous) and the choice of
// chunked-vs-direct fold (source layer size against parallelThreshold) are
// functions of the layer alone — never of GOMAXPROCS or worker count — so
// every bit of every result is identical no matter how many workers
// execute the chunks, including one.
var (
	// parallelThreshold is the source-layer size at which expansion
	// switches from the direct sequential fold to the chunked fold. The
	// switch changes float association, so it must depend only on layer
	// size; it is set high enough that sub-threshold solves (where chunk
	// bookkeeping would cost more than it buys) keep the cheapest path.
	// Tests lower it to force chunking on small instances.
	parallelThreshold = 16384
	// expandChunk is the number of source states per chunk.
	expandChunk = 512
	// testWorkers, when positive, overrides the worker count (tests force
	// multi-worker expansion on single-CPU machines).
	testWorkers = 0
)

func expandWorkers() int {
	if testWorkers > 0 {
		return testWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// workspace is per-worker scratch: decode/successor buffers plus solver
// scratch that must not be shared across workers. Workers keep their
// workspace across chunks and steps of a solve.
type workspace struct {
	dec  []int16      // decode buffer for packed source keys
	next []int16      // successor word buffer
	bits []uint64     // RelOrder per-position item bitmasks
	gaps []int16      // sorted tracked-position thresholds for gap merging
	rank rank.Ranking // RelOrder's generic-matcher fallback buffer
	kb   []byte       // arrangement-key buffer for the fallback memo
	// match memoizes the generic-matcher fallback per arrangement of
	// involved items. Per-worker: workers may recompute what another worker
	// cached, but the predicate is pure, so results are unaffected. Cleared
	// per solve (keys are solve-specific item indices).
	match map[string]bool
}

// ensure sizes the word buffers for a step expanding srcWords-wide states
// into dstWords-wide successors.
func (ws *workspace) ensure(srcWords, dstWords int) {
	if cap(ws.dec) < srcWords {
		ws.dec = make([]int16, srcWords)
	}
	ws.dec = ws.dec[:srcWords]
	if cap(ws.next) < dstWords {
		ws.next = make([]int16, dstWords)
	}
	ws.next = ws.next[:dstWords]
}

// chunkBuf holds one parallel chunk's output: the successor sublayer, the
// absorbed contributions in emission order (recorded individually so the
// merge can replay the sequential fold exactly), and the transition count.
type chunkBuf struct {
	l           layerTable
	absorbed    []float64
	transitions int
}

// bump is a typed bump allocator for per-solve setup scratch: take carves
// zeroed windows off one backing slice, and reset recycles the whole
// backing for the next solve. When the backing runs out it is abandoned to
// the garbage collector and replaced (earlier takes keep referencing the
// old memory), so steady-state solves of similar shape allocate nothing.
type bump[T any] struct {
	buf []T
	off int
}

func (b *bump[T]) reset() { b.off = 0 }

// take returns a zeroed window of n elements.
func (b *bump[T]) take(n int) []T {
	if b.off+n > len(b.buf) {
		b.buf = make([]T, 2*len(b.buf)+n)
		b.off = 0
	}
	s := b.buf[b.off : b.off+n : b.off+n]
	b.off += n
	clear(s)
	return s
}

// arena bundles every buffer a solve needs: the ping-pong layers, the
// sequential workspace, per-worker workspaces, per-chunk sublayers, float
// scratch and the setup bump allocators. Arenas are pooled; a steady-state
// solve reuses a previous solve's buffers end to end.
type arena struct {
	layers   [2]layerTable
	ws       []workspace
	chunks   []chunkBuf
	piPrefix []float64
	vecw     []float64 // batched per-step weight matrix / prefix sums

	ints      bump[int]
	bools     bump[bool]
	sets      bump[label.Set]
	u64s      bump[uint64]
	intSlices bump[[]int]
}

// arenaNews counts arenas allocated by the pool. Every solve entry point
// borrows with getArena and returns with a deferred putArena, so the count
// must stay bounded even when solves exit early (ctx cancellation mid-layer,
// MaxStates, shape errors); the arena-lifecycle regression test asserts it.
var arenaNews atomic.Int64

var arenaPool = sync.Pool{New: func() any { arenaNews.Add(1); return new(arena) }}

// getArena fetches a recycled arena with fresh setup bumps and cleared
// per-worker memo caches.
func getArena() *arena {
	ar := arenaPool.Get().(*arena)
	ar.ints.reset()
	ar.bools.reset()
	ar.sets.reset()
	ar.u64s.reset()
	ar.intSlices.reset()
	for i := range ar.ws {
		clear(ar.ws[i].match)
	}
	return ar
}

func putArena(ar *arena) { arenaPool.Put(ar) }

// workspaces returns n per-worker workspaces sized for the step.
func (ar *arena) workspaces(n, srcWords, dstWords int) []workspace {
	for len(ar.ws) < n {
		ar.ws = append(ar.ws, workspace{})
	}
	ws := ar.ws[:n]
	for i := range ws {
		ws[i].ensure(srcWords, dstWords)
	}
	return ws
}

// emitter receives one chunk's successors. In sequential mode it targets
// the next layer directly and folds absorbed mass inline; in parallel mode
// it targets the chunk sublayer and records absorbed contributions for the
// ordered merge.
type emitter struct {
	dst         *layerTable
	seq         bool
	prob        float64   // sequential absorbed fold
	absorbed    []float64 // parallel absorbed recording
	transitions int
}

// emit folds mass p into the successor state with word vector w.
func (e *emitter) emit(w []int16, p float64) {
	e.dst.addWords(w, p)
	e.transitions++
}

// emit64 folds mass p into the successor with pre-packed key k. Only valid
// when the destination layer is packed (dstWords <= packedWords); solvers
// that pack inline use it to skip the addWords dispatch.
func (e *emitter) emit64(k uint64, p float64) {
	e.dst.add64(k, p)
	e.transitions++
}

// absorb removes mass p from the DP: the state has satisfied the union
// (or is otherwise finished) and its probability goes straight to the
// answer.
func (e *emitter) absorb(p float64) {
	e.transitions++
	if e.seq {
		e.prob += p
		return
	}
	e.absorbed = append(e.absorbed, p)
}

// expandFn expands one source state: decode key (srcWords wide, read-only),
// generate successors into em using ws scratch. It must be pure given
// (key, q) — workers run it concurrently on disjoint states.
type expandFn func(ws *workspace, key []int16, q float64, em *emitter)

// runStep expands every state of cur into nxt (reset to dstWords-wide
// states) and returns the running absorbed probability: probIn with every
// absorbed contribution folded in, in source order. Layers at or above
// parallelThreshold expand through the chunked fold: the source is split
// into fixed-size contiguous chunks, each chunk fills a private sublayer
// (successor mass folded within the chunk), and the sublayers merge in
// chunk order, folding each chunk's per-state subtotal into the merged
// layer. The resulting float association — per-chunk left folds combined
// left-to-right — is fully determined by the layer size and the chunk
// constants, so results are bit-for-bit reproducible and independent of
// worker count and GOMAXPROCS; the workers only decide who computes which
// chunk, never how the numbers combine. (The path choice itself is also
// size-gated, never worker-gated: a 1-core machine runs the same chunked
// fold for large layers that a 64-core machine does.) Absorbed
// contributions are recorded individually per chunk and replayed in order
// at merge time, giving them the exact sequential ((probIn+a1)+a2)+...
// association on every path. Stats are accumulated per-chunk and reduced
// at merge time on the calling goroutine, never incremented from workers.
func runStep(ctx context.Context, ar *arena, cur, nxt *layerTable, dstWords int, opts Options, probIn float64, fn expandFn) (float64, error) {
	n := cur.len()
	nxt.reset(dstWords, n)
	if n < parallelThreshold {
		ws := &ar.workspaces(1, cur.words, dstWords)[0]
		em := emitter{dst: nxt, seq: true, prob: probIn}
		for i := 0; i < n; i++ {
			if i&1023 == 1023 {
				if err := ctx.Err(); err != nil {
					return 0, err
				}
			}
			fn(ws, cur.key(i, ws.dec), cur.vals[i], &em)
		}
		if opts.Stats != nil {
			opts.Stats.Transitions += em.transitions
		}
		return em.prob, nil
	}

	nChunks := (n + expandChunk - 1) / expandChunk
	workers := expandWorkers()
	if workers > nChunks {
		workers = nChunks
	}
	for len(ar.chunks) < nChunks {
		ar.chunks = append(ar.chunks, chunkBuf{})
	}
	wss := ar.workspaces(workers, cur.words, dstWords)
	var (
		wg       sync.WaitGroup
		nextC    atomic.Int64
		stopped  atomic.Bool
		hintPerC = 2 * expandChunk
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(ws *workspace) {
			defer wg.Done()
			for {
				c := int(nextC.Add(1)) - 1
				if c >= nChunks || stopped.Load() {
					return
				}
				if ctx.Err() != nil {
					stopped.Store(true)
					return
				}
				cb := &ar.chunks[c]
				cb.l.reset(dstWords, hintPerC)
				em := emitter{dst: &cb.l, absorbed: cb.absorbed[:0]}
				lo := c * expandChunk
				hi := lo + expandChunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(ws, cur.key(i, ws.dec), cur.vals[i], &em)
				}
				cb.absorbed = em.absorbed
				cb.transitions = em.transitions
			}
		}(&wss[w])
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	prob := probIn
	for c := 0; c < nChunks; c++ {
		cb := &ar.chunks[c]
		for _, a := range cb.absorbed {
			prob += a
		}
		nxt.mergeFrom(&cb.l)
		if opts.Stats != nil {
			opts.Stats.Transitions += cb.transitions
		}
	}
	return prob, nil
}

// piRow exposes the arena's prefix-sum buffer sized for row length n.
func (ar *arena) prefix(n int) []float64 {
	if cap(ar.piPrefix) < n {
		ar.piPrefix = make([]float64, n)
	}
	return ar.piPrefix[:n]
}

// floats exposes the arena's batched weight buffer sized for n values
// (contents undefined; callers overwrite before reading).
func (ar *arena) floats(n int) []float64 {
	if cap(ar.vecw) < n {
		ar.vecw = make([]float64, n)
	}
	return ar.vecw[:n]
}

// vecEmitter is the batched counterpart of emitter: successors carry one
// mass value per session lane, and the expansion folds dst[l] += q[l]*w[l]
// into the successor's value window. The window methods return the window
// so the solver's expand closure performs the per-lane multiply-accumulate
// itself — the fold into each lane happens at exactly the points, and in
// exactly the order, that the scalar emitter folds the single session's
// mass, which is what makes every lane of a batched solve bit-identical to
// its single-session solve.
type vecEmitter struct {
	dst         *layerTable
	lanes       int
	seq         bool
	probs       []float64 // sequential absorbed fold, one accumulator per lane
	absorbed    []float64 // parallel absorbed recording, lanes values per event
	transitions int
}

// window returns the successor state's per-lane value window, appending a
// zeroed window on first touch.
func (e *vecEmitter) window(w []int16) []float64 {
	e.transitions++
	i := e.dst.slotWords(w)
	return e.dst.vals[i*e.lanes : (i+1)*e.lanes]
}

// window64 is window for a pre-packed key (destination layer packed).
func (e *vecEmitter) window64(k uint64) []float64 {
	e.transitions++
	i := e.dst.slot64(k)
	return e.dst.vals[i*e.lanes : (i+1)*e.lanes]
}

// absorbWindow returns the per-lane accumulator for absorbed mass: the
// running answer vector in sequential mode, or a fresh per-event record in
// parallel mode (replayed in chunk order at merge time, reproducing the
// sequential fold per lane).
func (e *vecEmitter) absorbWindow() []float64 {
	e.transitions++
	if e.seq {
		return e.probs
	}
	n := len(e.absorbed)
	for s := 0; s < e.lanes; s++ {
		e.absorbed = append(e.absorbed, 0)
	}
	return e.absorbed[n : n+e.lanes]
}

// expandVecFn is the batched expandFn: one source state with a per-lane
// mass vector q (read-only). It must be pure given (key, q).
type expandVecFn func(ws *workspace, key []int16, q []float64, em *vecEmitter)

// runStepVec drives one batched insertion step: identical chunk schedule,
// merge order and fold points as runStep (the schedule is gated on the
// source layer's state count, not state count x lanes), but every state
// carries a lanes-wide mass vector and absorbed mass folds into the probs
// vector. Per lane, the float operations and their association are exactly
// runStep's, so lane l of the batched walk is bit-for-bit the single-session
// walk of session l.
func runStepVec(ctx context.Context, ar *arena, cur, nxt *layerTable, dstWords, lanes int, opts Options, probs []float64, fn expandVecFn) error {
	n := cur.len()
	nxt.resetStride(dstWords, n, lanes)
	if n < parallelThreshold {
		ws := &ar.workspaces(1, cur.words, dstWords)[0]
		em := vecEmitter{dst: nxt, lanes: lanes, seq: true, probs: probs}
		for i := 0; i < n; i++ {
			if i&1023 == 1023 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			fn(ws, cur.key(i, ws.dec), cur.valsAt(i), &em)
		}
		if opts.Stats != nil {
			opts.Stats.Transitions += em.transitions
		}
		return nil
	}

	nChunks := (n + expandChunk - 1) / expandChunk
	workers := expandWorkers()
	if workers > nChunks {
		workers = nChunks
	}
	for len(ar.chunks) < nChunks {
		ar.chunks = append(ar.chunks, chunkBuf{})
	}
	wss := ar.workspaces(workers, cur.words, dstWords)
	var (
		wg       sync.WaitGroup
		nextC    atomic.Int64
		stopped  atomic.Bool
		hintPerC = 2 * expandChunk
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(ws *workspace) {
			defer wg.Done()
			for {
				c := int(nextC.Add(1)) - 1
				if c >= nChunks || stopped.Load() {
					return
				}
				if ctx.Err() != nil {
					stopped.Store(true)
					return
				}
				cb := &ar.chunks[c]
				cb.l.resetStride(dstWords, hintPerC, lanes)
				em := vecEmitter{dst: &cb.l, lanes: lanes, absorbed: cb.absorbed[:0]}
				lo := c * expandChunk
				hi := lo + expandChunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(ws, cur.key(i, ws.dec), cur.valsAt(i), &em)
				}
				cb.absorbed = em.absorbed
				cb.transitions = em.transitions
			}
		}(&wss[w])
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for c := 0; c < nChunks; c++ {
		cb := &ar.chunks[c]
		for off := 0; off < len(cb.absorbed); off += lanes {
			for l, a := range cb.absorbed[off : off+lanes] {
				probs[l] += a
			}
		}
		nxt.mergeFromVec(&cb.l)
		if opts.Stats != nil {
			opts.Stats.Transitions += cb.transitions
		}
	}
	return nil
}
