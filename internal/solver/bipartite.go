package solver

import (
	"fmt"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rank"
	"probpref/internal/rim"
)

// Bipartite implements Algorithm 4 of the paper: exact inference for a union
// of bipartite patterns. Each edge (l, r) is the constraint alpha(l) <
// beta(r) on the minimum position of items carrying l and the maximum
// position of items carrying r; for bipartite patterns satisfying all edge
// constraints is equivalent to matching the pattern. States track Min/Max
// positions per (label set, role); edges and patterns move monotonically
// through the situations {uncertain, satisfied, violated}, and the solver
// only tracks labels appearing in uncertain edges of uncertain patterns
// (the paper's pruning optimization). Complexity O(m^(qz)).
//
// A state is a word vector: the satisfied-constraint bits and dead-pattern
// bits packed 16 per word, followed by one position word per tracker slot.
// Narrow unions (header + slots within four words) therefore pack into a
// single uint64 layer key; wider ones use the arena-backed fallback of
// state.go. Setup scratch comes from the pooled arena's bump allocators —
// small unions solve in a few microseconds, so even setup must not churn
// the heap. The solver is split into a session-independent compile half
// (constraint tables, census matrices, per-step feed lists) and an executor
// that only reads the session's Pi rows; see plan.go.
//
// The solver accepts any DAG pattern and evaluates it under constraint
// semantics; for non-bipartite patterns the result is the upper bound used
// by the Most-Probable-Session optimization (Section 4.3.2), not the exact
// match probability.
func Bipartite(model *rim.Model, lab *label.Labeling, u pattern.Union, opts Options) (float64, error) {
	if len(u) == 0 {
		return 0, nil
	}
	ar := getArena()
	defer putArena(ar)
	var pl bipPlan
	if err := compileBipartite(&pl, planAlloc{ar}, model.Sigma(), lab, u); err != nil {
		return 0, err
	}
	if pl.constOne {
		return 1, nil // some pattern is empty: it matches every ranking
	}
	return runBipartite(ar, &pl, model, opts)
}

// bipPlan is the session-independent compilation of a bipartite union:
// tracker slots, the constraint tables, the item-census matrices and the
// per-step feed lists — everything the executor needs except the Pi rows.
type bipPlan struct {
	m, nPats     int
	nSlots, nSets int
	slotIsMin    []bool
	consEdge     []bool
	consL, consR []int
	consSet      []int
	slotCensus   []int
	patBits      [][]int
	match        []bool // step-major: match[i*nSets+si]
	remaining    []int  // step-major suffix counts: remaining[i*nSets+si]
	slotMatch    [][]int
	satW, deadW  int
	hw, words    int
	allSat       []uint64
	allDead      uint32
	constOne     bool // some pattern is empty: probability is 1
}

func compileBipartite(pl *bipPlan, a planAlloc, sigma rank.Ranking, lab *label.Labeling, u pattern.Union) error {
	if len(u) > 32 {
		return fmt.Errorf("%w: Bipartite supports at most 32 patterns", ErrShape)
	}
	m := len(sigma)

	// One labeling lookup per item; all setup label tests run on the slices.
	itemSets := a.sets(m)
	for i := range itemSets {
		itemSets[i] = lab.Of(sigma[i])
	}

	// Setup scratch is sized exactly and bump-allocated: for a
	// 21-transition solve the DP is trivial and heap churn would dominate.
	totalEdges, totalNodes, maxQ := 0, 0, 0
	for _, g := range u {
		totalEdges += len(g.Edges())
		totalNodes += g.NumNodes()
		if g.NumNodes() > maxQ {
			maxQ = g.NumNodes()
		}
	}
	maxCons := totalEdges + totalNodes
	maxSets := 2*totalEdges + 2*totalNodes

	// Trackers: one per distinct (label set, role). Role min tracks alpha,
	// role max tracks beta. Linear scan over the few slots — no Key-string
	// allocation.
	// Mutated setup state lives in one struct so the helper closures box a
	// single pointer instead of one heap cell per captured variable.
	var sc struct {
		slotLabels []label.Set
		slotIsMin  []bool
		setList    []label.Set
	}
	sc.slotLabels = a.sets(2*totalEdges + totalNodes)[:0]
	sc.slotIsMin = a.bools(2*totalEdges + totalNodes)[:0]
	slot := func(ls label.Set, isMin bool) int {
		for s, sl := range sc.slotLabels {
			if sc.slotIsMin[s] == isMin && sl.Equal(ls) {
				return s
			}
		}
		sc.slotLabels = append(sc.slotLabels, ls)
		sc.slotIsMin = append(sc.slotIsMin, isMin)
		return len(sc.slotLabels) - 1
	}

	// Constraints: edges (alpha(u) < beta(v)) and existence constraints for
	// isolated nodes. Each gets a global bit; the parallel slices hold, per
	// constraint, its kind, its alpha/beta slots (edges) and its label-set
	// census index (existence).
	consEdge := a.bools(maxCons)[:0]
	consL := a.ints(maxCons)[:0]
	consR := a.ints(maxCons)[:0]
	consSet := a.ints(maxCons)[:0]
	sc.setList = a.sets(maxSets)[:0]
	censusIdx := func(ls label.Set) int {
		for i, sl := range sc.setList {
			if sl.Equal(ls) {
				return i
			}
		}
		sc.setList = append(sc.setList, ls)
		return len(sc.setList) - 1
	}
	patBits := a.intSlices(len(u)) // per pattern, constraint indices
	bitsBacking := a.ints(maxCons)[:0]
	touched := a.bools(maxQ)
	for pi, g := range u {
		tch := touched[:g.NumNodes()]
		for v := range tch {
			tch[v] = false
		}
		biLo := len(bitsBacking)
		for _, e := range g.Edges() {
			tch[e[0]], tch[e[1]] = true, true
			consEdge = append(consEdge, true)
			consL = append(consL, slot(g.Node(e[0]).Labels, true))
			consR = append(consR, slot(g.Node(e[1]).Labels, false))
			consSet = append(consSet, 0)
			bitsBacking = append(bitsBacking, len(consEdge)-1)
		}
		for v := 0; v < g.NumNodes(); v++ {
			if !tch[v] {
				consEdge = append(consEdge, false)
				consL = append(consL, 0)
				consR = append(consR, 0)
				consSet = append(consSet, censusIdx(g.Node(v).Labels))
				bitsBacking = append(bitsBacking, len(consEdge)-1)
			}
		}
		patBits[pi] = bitsBacking[biLo:len(bitsBacking):len(bitsBacking)]
		if len(patBits[pi]) == 0 {
			pl.constOne = true // empty pattern matches every ranking
			return nil
		}
	}
	nCons := len(consEdge)
	if nCons > 64 {
		return fmt.Errorf("%w: union has %d constraints (max 64)", ErrShape, nCons)
	}
	slotLabels := sc.slotLabels
	nSlots := len(slotLabels)
	if nSlots > 64 {
		return fmt.Errorf("%w: union has %d tracked label roles (max 64)", ErrShape, nSlots)
	}

	// Census: intern every slot label set, then test each (set, item) pair
	// exactly once into one matrix; the suffix counts, the per-step feed
	// lists and the per-step existence matches all derive from it.
	for s := 0; s < nSlots; s++ {
		censusIdx(slotLabels[s])
	}
	setList := sc.setList
	nSets := len(setList)
	slotCensus := a.ints(nSlots)
	for s := 0; s < nSlots; s++ {
		slotCensus[s] = censusIdx(slotLabels[s])
	}
	// Both matrices are step-major so the solve loop rebinds one row per
	// step instead of copying: match[i*nSets+si] reports setList[si] ⊆
	// labels(sigma[i]); remaining[i*nSets+si] counts items of sigma[i..m-1]
	// matching setList[si].
	match := a.bools(m * nSets)
	for si, ls := range setList {
		for i := 0; i < m; i++ {
			match[i*nSets+si] = ls.SubsetOf(itemSets[i])
		}
	}
	remaining := a.ints((m + 1) * nSets)
	for i := m - 1; i >= 0; i-- {
		prev := remaining[(i+1)*nSets : (i+2)*nSets]
		row := remaining[i*nSets : (i+1)*nSets]
		mrow := match[i*nSets : (i+1)*nSets]
		for si := range row {
			row[si] = prev[si]
			if mrow[si] {
				row[si]++
			}
		}
	}

	// Per step: which slots does the inserted item feed? Two passes over a
	// single backing array.
	slotMatch := a.intSlices(m)
	nFeed := 0
	for s := 0; s < nSlots; s++ {
		nFeed += remaining[slotCensus[s]]
	}
	feedBacking := a.ints(nFeed)[:0]
	for i := 0; i < m; i++ {
		lo := len(feedBacking)
		for s := 0; s < nSlots; s++ {
			if match[i*nSets+slotCensus[s]] {
				feedBacking = append(feedBacking, s)
			}
		}
		slotMatch[i] = feedBacking[lo:len(feedBacking):len(feedBacking)]
	}

	// State layout: satW words of satisfied-constraint bits, deadW words of
	// dead-pattern bits, then nSlots position words.
	satW := (nCons + 15) / 16
	deadW := (len(u) + 15) / 16
	hw := satW + deadW

	allSat := a.u64s(len(u))
	for pi, bits := range patBits {
		for _, b := range bits {
			allSat[pi] |= 1 << uint(b)
		}
	}

	pl.m, pl.nPats = m, len(u)
	pl.nSlots, pl.nSets = nSlots, nSets
	pl.slotIsMin = sc.slotIsMin
	pl.consEdge, pl.consL, pl.consR, pl.consSet = consEdge, consL, consR, consSet
	pl.slotCensus = slotCensus
	pl.patBits = patBits
	pl.match, pl.remaining = match, remaining
	pl.slotMatch = slotMatch
	pl.satW, pl.deadW, pl.hw, pl.words = satW, deadW, hw, hw+nSlots
	pl.allSat = allSat
	pl.allDead = uint32(1)<<uint(len(u)) - 1
	return nil
}

const (
	bipAbsent  = int16(-1)
	bipDropped = int16(-2)
)

func (pl *bipPlan) packHeader(dst []int16, sat uint64, dead uint32) {
	for k := 0; k < pl.satW; k++ {
		dst[k] = int16(uint16(sat >> (16 * uint(k))))
	}
	for k := 0; k < pl.deadW; k++ {
		dst[pl.satW+k] = int16(uint16(dead >> (16 * uint(k))))
	}
}

func (pl *bipPlan) unpackHeader(src []int16) (sat uint64, dead uint32) {
	for k := 0; k < pl.satW; k++ {
		sat |= uint64(uint16(src[k])) << (16 * uint(k))
	}
	for k := 0; k < pl.deadW; k++ {
		dead |= uint32(uint16(src[pl.satW+k])) << (16 * uint(k))
	}
	return sat, dead
}

// runBipartite executes a compiled bipartite plan against one session. The
// layer walk is structural: the constraint re-evaluation, absorption,
// dead-state and tracker-drop decisions all depend on the state and plan
// alone, never on the Pi values, and successors are emitted even with zero
// mass — adding a zero contribution is bitwise neutral (all mass is
// non-negative, so x + 0.0 == x exactly), and keeping the walk
// Pi-independent is what lets the batched executor walk identical layers
// for every session lane.
func runBipartite(ar *arena, pl *bipPlan, model *rim.Model, opts Options) (float64, error) {
	ctx := opts.ctx()
	m, hw, words := pl.m, pl.hw, pl.words
	nSlots := pl.nSlots
	slotIsMin := pl.slotIsMin
	consEdge, consL, consR, consSet := pl.consEdge, pl.consL, pl.consR, pl.consSet
	slotCensus, patBits := pl.slotCensus, pl.patBits
	allSat, allDead := pl.allSat, pl.allDead
	nPats := pl.nPats

	cur, nxt := &ar.layers[0], &ar.layers[1]
	cur.reset(words, 1)
	init := ar.workspaces(1, words, words)[0].next
	pl.packHeader(init, 0, 0)
	for s := 0; s < nSlots; s++ {
		init[hw+s] = bipAbsent
	}
	cur.addWords(init, 1)

	prob := 0.0
	// The expand closure is built once; the step loop only rebinds the
	// per-step state, held in one struct so the closure boxes a single
	// pointer.
	var stp struct {
		piRow       []float64
		feed        []int
		steps       int
		itemMatches []bool // match row of the inserted item
		remNow      []int  // remaining row after this step
	}
	expand := func(ws *workspace, key []int16, q float64, em *emitter) {
		sat, dead := pl.unpackHeader(key)
		vals := key[hw:]
		next := ws.next[hw:]
		itemMatches, remNow := stp.itemMatches, stp.remNow
		piRow, feed, steps := stp.piRow, stp.feed, stp.steps
		for j := 0; j < steps; j++ {
			jj := int16(j)
			for s, v := range vals {
				if v >= 0 && v >= jj {
					v++
				}
				next[s] = v
			}
			for _, s := range feed {
				if next[s] == bipDropped {
					continue
				}
				if slotIsMin[s] {
					if next[s] == bipAbsent || jj < next[s] {
						next[s] = jj
					}
				} else {
					if next[s] == bipAbsent || jj > next[s] {
						next[s] = jj
					}
				}
			}
			nSat, nDead := sat, dead
			// Re-evaluate uncertain constraints of alive patterns.
			for pi, bits := range patBits {
				if nDead&(1<<uint(pi)) != 0 {
					continue
				}
				for _, bi := range bits {
					if nSat&(1<<uint(bi)) != 0 {
						continue
					}
					if !consEdge[bi] {
						if itemMatches[consSet[bi]] {
							nSat |= 1 << uint(bi)
						} else if remNow[consSet[bi]] == 0 {
							nDead |= 1 << uint(pi)
							break
						}
						continue
					}
					va, vb := next[consL[bi]], next[consR[bi]]
					remL := remNow[slotCensus[consL[bi]]]
					remR := remNow[slotCensus[consR[bi]]]
					switch {
					case va >= 0 && vb >= 0 && va < vb:
						nSat |= 1 << uint(bi)
					case va < 0 && remL == 0, vb < 0 && remR == 0,
						va >= 0 && vb >= 0 && remL == 0 && remR == 0:
						nDead |= 1 << uint(pi)
					}
					if nDead&(1<<uint(pi)) != 0 {
						break
					}
				}
			}
			p := q * piRow[j]
			done := false
			for pi := 0; pi < nPats; pi++ {
				if nDead&(1<<uint(pi)) == 0 && nSat&allSat[pi] == allSat[pi] {
					em.absorb(p)
					done = true
					break
				}
			}
			if done {
				continue
			}
			if nDead == allDead {
				continue
			}
			// Drop trackers not used by any uncertain edge of an alive
			// pattern (the paper's onlyTrackLabelsFor).
			if !opts.NoTrackerDrop {
				var live [64]bool
				for pi, bits := range patBits {
					if nDead&(1<<uint(pi)) != 0 {
						continue
					}
					for _, bi := range bits {
						if nSat&(1<<uint(bi)) != 0 || !consEdge[bi] {
							continue
						}
						live[consL[bi]] = true
						live[consR[bi]] = true
					}
				}
				for s := range next {
					if !live[s] {
						next[s] = bipDropped
					}
				}
			}
			pl.packHeader(ws.next, nSat, nDead)
			em.emit(ws.next, p)
		}
	}
	for i := 0; i < m; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		stp.piRow, stp.feed, stp.steps = model.PiRow(i), pl.slotMatch[i], i+1
		stp.itemMatches = pl.match[i*pl.nSets : (i+1)*pl.nSets]
		stp.remNow = pl.remaining[(i+1)*pl.nSets : (i+2)*pl.nSets]
		var err error
		prob, err = runStep(ctx, ar, cur, nxt, words, opts, prob, expand)
		if err != nil {
			return 0, err
		}
		opts.note(nxt.len())
		if err := opts.checkStates(nxt.len()); err != nil {
			return 0, err
		}
		cur, nxt = nxt, cur
	}
	return prob, nil
}

// runBipartiteVec executes a compiled bipartite plan against many sessions
// in one batched layer walk; out accumulates each lane's absorbed mass and
// holds the per-session answers on return.
func runBipartiteVec(ar *arena, pl *bipPlan, models []*rim.Model, opts Options, out []float64) error {
	ctx := opts.ctx()
	m, hw, words, S := pl.m, pl.hw, pl.words, len(models)
	nSlots := pl.nSlots
	slotIsMin := pl.slotIsMin
	consEdge, consL, consR, consSet := pl.consEdge, pl.consL, pl.consR, pl.consSet
	slotCensus, patBits := pl.slotCensus, pl.patBits
	allSat, allDead := pl.allSat, pl.allDead
	nPats := pl.nPats

	cur, nxt := &ar.layers[0], &ar.layers[1]
	cur.resetStride(words, 1, S)
	init := ar.workspaces(1, words, words)[0].next
	pl.packHeader(init, 0, 0)
	for s := 0; s < nSlots; s++ {
		init[hw+s] = bipAbsent
	}
	for l, w := 0, cur.valsAt(cur.slotWords(init)); l < S; l++ {
		w[l] = 1
	}
	clear(out)

	wbuf := ar.floats(S * (m + 1))
	var stp struct {
		wj          []float64 // j-major per-lane weights
		feed        []int
		steps       int
		itemMatches []bool
		remNow      []int
	}
	expand := func(ws *workspace, key []int16, q []float64, em *vecEmitter) {
		sat, dead := pl.unpackHeader(key)
		vals := key[hw:]
		next := ws.next[hw:]
		itemMatches, remNow := stp.itemMatches, stp.remNow
		wj, feed, steps := stp.wj, stp.feed, stp.steps
		for j := 0; j < steps; j++ {
			jj := int16(j)
			for s, v := range vals {
				if v >= 0 && v >= jj {
					v++
				}
				next[s] = v
			}
			for _, s := range feed {
				if next[s] == bipDropped {
					continue
				}
				if slotIsMin[s] {
					if next[s] == bipAbsent || jj < next[s] {
						next[s] = jj
					}
				} else {
					if next[s] == bipAbsent || jj > next[s] {
						next[s] = jj
					}
				}
			}
			nSat, nDead := sat, dead
			for pi, bits := range patBits {
				if nDead&(1<<uint(pi)) != 0 {
					continue
				}
				for _, bi := range bits {
					if nSat&(1<<uint(bi)) != 0 {
						continue
					}
					if !consEdge[bi] {
						if itemMatches[consSet[bi]] {
							nSat |= 1 << uint(bi)
						} else if remNow[consSet[bi]] == 0 {
							nDead |= 1 << uint(pi)
							break
						}
						continue
					}
					va, vb := next[consL[bi]], next[consR[bi]]
					remL := remNow[slotCensus[consL[bi]]]
					remR := remNow[slotCensus[consR[bi]]]
					switch {
					case va >= 0 && vb >= 0 && va < vb:
						nSat |= 1 << uint(bi)
					case va < 0 && remL == 0, vb < 0 && remR == 0,
						va >= 0 && vb >= 0 && remL == 0 && remR == 0:
						nDead |= 1 << uint(pi)
					}
					if nDead&(1<<uint(pi)) != 0 {
						break
					}
				}
			}
			wrow := wj[j*S : (j+1)*S]
			done := false
			for pi := 0; pi < nPats; pi++ {
				if nDead&(1<<uint(pi)) == 0 && nSat&allSat[pi] == allSat[pi] {
					aw := em.absorbWindow()
					for l, ql := range q {
						aw[l] += ql * wrow[l]
					}
					done = true
					break
				}
			}
			if done {
				continue
			}
			if nDead == allDead {
				continue
			}
			if !opts.NoTrackerDrop {
				var live [64]bool
				for pi, bits := range patBits {
					if nDead&(1<<uint(pi)) != 0 {
						continue
					}
					for _, bi := range bits {
						if nSat&(1<<uint(bi)) != 0 || !consEdge[bi] {
							continue
						}
						live[consL[bi]] = true
						live[consR[bi]] = true
					}
				}
				for s := range next {
					if !live[s] {
						next[s] = bipDropped
					}
				}
			}
			pl.packHeader(ws.next, nSat, nDead)
			dst := em.window(ws.next)
			for l, ql := range q {
				dst[l] += ql * wrow[l]
			}
		}
	}
	for i := 0; i < m; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		steps := i + 1
		wj := wbuf[:steps*S]
		for l := 0; l < S; l++ {
			row := models[l].PiRow(i)
			for j := 0; j < steps; j++ {
				wj[j*S+l] = row[j]
			}
		}
		stp.wj, stp.feed, stp.steps = wj, pl.slotMatch[i], steps
		stp.itemMatches = pl.match[i*pl.nSets : (i+1)*pl.nSets]
		stp.remNow = pl.remaining[(i+1)*pl.nSets : (i+2)*pl.nSets]
		if err := runStepVec(ctx, ar, cur, nxt, words, S, opts, out, expand); err != nil {
			return err
		}
		opts.note(nxt.len())
		if err := opts.checkStates(nxt.len()); err != nil {
			return err
		}
		cur, nxt = nxt, cur
	}
	return nil
}
