package solver

import (
	"fmt"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rim"
)

// Bipartite implements Algorithm 4 of the paper: exact inference for a union
// of bipartite patterns. Each edge (l, r) is the constraint alpha(l) <
// beta(r) on the minimum position of items carrying l and the maximum
// position of items carrying r; for bipartite patterns satisfying all edge
// constraints is equivalent to matching the pattern. States track Min/Max
// positions per (label set, role); edges and patterns move monotonically
// through the situations {uncertain, satisfied, violated}, and the solver
// only tracks labels appearing in uncertain edges of uncertain patterns
// (the paper's pruning optimization). Complexity O(m^(qz)).
//
// A state is a word vector: the satisfied-constraint bits and dead-pattern
// bits packed 16 per word, followed by one position word per tracker slot.
// Narrow unions (header + slots within four words) therefore pack into a
// single uint64 layer key; wider ones use the arena-backed fallback of
// state.go. Setup scratch comes from the pooled arena's bump allocators —
// small unions solve in a few microseconds, so even setup must not churn
// the heap.
//
// The solver accepts any DAG pattern and evaluates it under constraint
// semantics; for non-bipartite patterns the result is the upper bound used
// by the Most-Probable-Session optimization (Section 4.3.2), not the exact
// match probability.
func Bipartite(model *rim.Model, lab *label.Labeling, u pattern.Union, opts Options) (float64, error) {
	if len(u) == 0 {
		return 0, nil
	}
	if len(u) > 32 {
		return 0, fmt.Errorf("%w: Bipartite supports at most 32 patterns", ErrShape)
	}
	ctx := opts.ctx()
	m := model.M()
	ar := getArena()
	defer putArena(ar)

	// One labeling lookup per item; all setup label tests run on the slices.
	sigma := model.Sigma()
	itemSets := ar.sets.take(m)
	for i := range itemSets {
		itemSets[i] = lab.Of(sigma[i])
	}

	// Setup scratch is sized exactly and bump-allocated: for a
	// 21-transition solve the DP is trivial and heap churn would dominate.
	totalEdges, totalNodes, maxQ := 0, 0, 0
	for _, g := range u {
		totalEdges += len(g.Edges())
		totalNodes += g.NumNodes()
		if g.NumNodes() > maxQ {
			maxQ = g.NumNodes()
		}
	}
	maxCons := totalEdges + totalNodes
	maxSets := 2*totalEdges + 2*totalNodes

	// Trackers: one per distinct (label set, role). Role min tracks alpha,
	// role max tracks beta. Linear scan over the few slots — no Key-string
	// allocation.
	// Mutated setup state lives in one struct so the helper closures box a
	// single pointer instead of one heap cell per captured variable.
	var sc struct {
		slotLabels []label.Set
		slotIsMin  []bool
		setList    []label.Set
	}
	sc.slotLabels = ar.sets.take(2*totalEdges + totalNodes)[:0]
	sc.slotIsMin = ar.bools.take(2*totalEdges + totalNodes)[:0]
	slot := func(ls label.Set, isMin bool) int {
		for s, sl := range sc.slotLabels {
			if sc.slotIsMin[s] == isMin && sl.Equal(ls) {
				return s
			}
		}
		sc.slotLabels = append(sc.slotLabels, ls)
		sc.slotIsMin = append(sc.slotIsMin, isMin)
		return len(sc.slotLabels) - 1
	}

	// Constraints: edges (alpha(u) < beta(v)) and existence constraints for
	// isolated nodes. Each gets a global bit; the parallel slices hold, per
	// constraint, its kind, its alpha/beta slots (edges) and its label-set
	// census index (existence).
	consEdge := ar.bools.take(maxCons)[:0]
	consL := ar.ints.take(maxCons)[:0]
	consR := ar.ints.take(maxCons)[:0]
	consSet := ar.ints.take(maxCons)[:0]
	sc.setList = ar.sets.take(maxSets)[:0]
	censusIdx := func(ls label.Set) int {
		for i, sl := range sc.setList {
			if sl.Equal(ls) {
				return i
			}
		}
		sc.setList = append(sc.setList, ls)
		return len(sc.setList) - 1
	}
	patBits := ar.intSlices.take(len(u)) // per pattern, constraint indices
	bitsBacking := ar.ints.take(maxCons)[:0]
	touched := ar.bools.take(maxQ)
	for pi, g := range u {
		tch := touched[:g.NumNodes()]
		for v := range tch {
			tch[v] = false
		}
		biLo := len(bitsBacking)
		for _, e := range g.Edges() {
			tch[e[0]], tch[e[1]] = true, true
			consEdge = append(consEdge, true)
			consL = append(consL, slot(g.Node(e[0]).Labels, true))
			consR = append(consR, slot(g.Node(e[1]).Labels, false))
			consSet = append(consSet, 0)
			bitsBacking = append(bitsBacking, len(consEdge)-1)
		}
		for v := 0; v < g.NumNodes(); v++ {
			if !tch[v] {
				consEdge = append(consEdge, false)
				consL = append(consL, 0)
				consR = append(consR, 0)
				consSet = append(consSet, censusIdx(g.Node(v).Labels))
				bitsBacking = append(bitsBacking, len(consEdge)-1)
			}
		}
		patBits[pi] = bitsBacking[biLo:len(bitsBacking):len(bitsBacking)]
		if len(patBits[pi]) == 0 {
			return 1, nil // empty pattern matches every ranking
		}
	}
	nCons := len(consEdge)
	if nCons > 64 {
		return 0, fmt.Errorf("%w: union has %d constraints (max 64)", ErrShape, nCons)
	}
	slotLabels, slotIsMin := sc.slotLabels, sc.slotIsMin
	nSlots := len(slotLabels)
	if nSlots > 64 {
		return 0, fmt.Errorf("%w: union has %d tracked label roles (max 64)", ErrShape, nSlots)
	}

	// Census: intern every slot label set, then test each (set, item) pair
	// exactly once into one matrix; the suffix counts, the per-step feed
	// lists and the per-step existence matches all derive from it.
	for s := 0; s < nSlots; s++ {
		censusIdx(slotLabels[s])
	}
	setList := sc.setList
	nSets := len(setList)
	slotCensus := ar.ints.take(nSlots)
	for s := 0; s < nSlots; s++ {
		slotCensus[s] = censusIdx(slotLabels[s])
	}
	// Both matrices are step-major so the solve loop rebinds one row per
	// step instead of copying: match[i*nSets+si] reports setList[si] ⊆
	// labels(sigma[i]); remaining[i*nSets+si] counts items of sigma[i..m-1]
	// matching setList[si].
	match := ar.bools.take(m * nSets)
	for si, ls := range setList {
		for i := 0; i < m; i++ {
			match[i*nSets+si] = ls.SubsetOf(itemSets[i])
		}
	}
	remaining := ar.ints.take((m + 1) * nSets)
	for i := m - 1; i >= 0; i-- {
		prev := remaining[(i+1)*nSets : (i+2)*nSets]
		row := remaining[i*nSets : (i+1)*nSets]
		mrow := match[i*nSets : (i+1)*nSets]
		for si := range row {
			row[si] = prev[si]
			if mrow[si] {
				row[si]++
			}
		}
	}

	// Per step: which slots does the inserted item feed? Two passes over a
	// single backing array.
	slotMatch := ar.intSlices.take(m)
	nFeed := 0
	for s := 0; s < nSlots; s++ {
		nFeed += remaining[slotCensus[s]]
	}
	feedBacking := ar.ints.take(nFeed)[:0]
	for i := 0; i < m; i++ {
		lo := len(feedBacking)
		for s := 0; s < nSlots; s++ {
			if match[i*nSets+slotCensus[s]] {
				feedBacking = append(feedBacking, s)
			}
		}
		slotMatch[i] = feedBacking[lo:len(feedBacking):len(feedBacking)]
	}

	const (
		absent  = int16(-1)
		dropped = int16(-2)
	)
	// State layout: satW words of satisfied-constraint bits, deadW words of
	// dead-pattern bits, then nSlots position words.
	satW := (nCons + 15) / 16
	deadW := (len(u) + 15) / 16
	hw := satW + deadW
	words := hw + nSlots
	packHeader := func(dst []int16, sat uint64, dead uint32) {
		for k := 0; k < satW; k++ {
			dst[k] = int16(uint16(sat >> (16 * uint(k))))
		}
		for k := 0; k < deadW; k++ {
			dst[satW+k] = int16(uint16(dead >> (16 * uint(k))))
		}
	}
	unpackHeader := func(src []int16) (sat uint64, dead uint32) {
		for k := 0; k < satW; k++ {
			sat |= uint64(uint16(src[k])) << (16 * uint(k))
		}
		for k := 0; k < deadW; k++ {
			dead |= uint32(uint16(src[satW+k])) << (16 * uint(k))
		}
		return sat, dead
	}

	allSat := ar.u64s.take(len(u))
	for pi, bits := range patBits {
		for _, b := range bits {
			allSat[pi] |= 1 << uint(b)
		}
	}
	allDead := uint32(1)<<uint(len(u)) - 1

	cur, nxt := &ar.layers[0], &ar.layers[1]
	cur.reset(words, 1)
	init := ar.workspaces(1, words, words)[0].next
	packHeader(init, 0, 0)
	for s := 0; s < nSlots; s++ {
		init[hw+s] = absent
	}
	cur.addWords(init, 1)

	prob := 0.0
	// The expand closure is built once; the step loop only rebinds the
	// per-step state, held in one struct so the closure boxes a single
	// pointer.
	var stp struct {
		piRow       []float64
		feed        []int
		steps       int
		itemMatches []bool // match row of the inserted item
		remNow      []int  // remaining row after this step
	}
	expand := func(ws *workspace, key []int16, q float64, em *emitter) {
		sat, dead := unpackHeader(key)
		vals := key[hw:]
		next := ws.next[hw:]
		itemMatches, remNow := stp.itemMatches, stp.remNow
		piRow, feed, steps := stp.piRow, stp.feed, stp.steps
		for j := 0; j < steps; j++ {
			jj := int16(j)
			for s, v := range vals {
				if v >= 0 && v >= jj {
					v++
				}
				next[s] = v
			}
			for _, s := range feed {
				if next[s] == dropped {
					continue
				}
				if slotIsMin[s] {
					if next[s] == absent || jj < next[s] {
						next[s] = jj
					}
				} else {
					if next[s] == absent || jj > next[s] {
						next[s] = jj
					}
				}
			}
			nSat, nDead := sat, dead
			// Re-evaluate uncertain constraints of alive patterns.
			for pi, bits := range patBits {
				if nDead&(1<<uint(pi)) != 0 {
					continue
				}
				for _, bi := range bits {
					if nSat&(1<<uint(bi)) != 0 {
						continue
					}
					if !consEdge[bi] {
						if itemMatches[consSet[bi]] {
							nSat |= 1 << uint(bi)
						} else if remNow[consSet[bi]] == 0 {
							nDead |= 1 << uint(pi)
							break
						}
						continue
					}
					va, vb := next[consL[bi]], next[consR[bi]]
					remL := remNow[slotCensus[consL[bi]]]
					remR := remNow[slotCensus[consR[bi]]]
					switch {
					case va >= 0 && vb >= 0 && va < vb:
						nSat |= 1 << uint(bi)
					case va < 0 && remL == 0, vb < 0 && remR == 0,
						va >= 0 && vb >= 0 && remL == 0 && remR == 0:
						nDead |= 1 << uint(pi)
					}
					if nDead&(1<<uint(pi)) != 0 {
						break
					}
				}
			}
			p := q * piRow[j]
			if p == 0 {
				continue
			}
			done := false
			for pi := range u {
				if nDead&(1<<uint(pi)) == 0 && nSat&allSat[pi] == allSat[pi] {
					em.absorb(p)
					done = true
					break
				}
			}
			if done {
				continue
			}
			if nDead == allDead {
				continue
			}
			// Drop trackers not used by any uncertain edge of an alive
			// pattern (the paper's onlyTrackLabelsFor).
			if !opts.NoTrackerDrop {
				var live [64]bool
				for pi, bits := range patBits {
					if nDead&(1<<uint(pi)) != 0 {
						continue
					}
					for _, bi := range bits {
						if nSat&(1<<uint(bi)) != 0 || !consEdge[bi] {
							continue
						}
						live[consL[bi]] = true
						live[consR[bi]] = true
					}
				}
				for s := range next {
					if !live[s] {
						next[s] = dropped
					}
				}
			}
			packHeader(ws.next, nSat, nDead)
			em.emit(ws.next, p)
		}
	}
	for i := 0; i < m; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		stp.piRow, stp.feed, stp.steps = model.PiRow(i), slotMatch[i], i+1
		stp.itemMatches = match[i*nSets : (i+1)*nSets]
		stp.remNow = remaining[(i+1)*nSets : (i+2)*nSets]
		var err error
		prob, err = runStep(ctx, ar, cur, nxt, words, opts, prob, expand)
		if err != nil {
			return 0, err
		}
		opts.note(nxt.len())
		if err := opts.checkStates(nxt.len()); err != nil {
			return 0, err
		}
		cur, nxt = nxt, cur
	}
	return prob, nil
}
