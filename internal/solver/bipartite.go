package solver

import (
	"fmt"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rim"
)

// Bipartite implements Algorithm 4 of the paper: exact inference for a union
// of bipartite patterns. Each edge (l, r) is the constraint alpha(l) <
// beta(r) on the minimum position of items carrying l and the maximum
// position of items carrying r; for bipartite patterns satisfying all edge
// constraints is equivalent to matching the pattern. States track Min/Max
// positions per (label set, role); edges and patterns move monotonically
// through the situations {uncertain, satisfied, violated}, and the solver
// only tracks labels appearing in uncertain edges of uncertain patterns
// (the paper's pruning optimization). Complexity O(m^(qz)).
//
// The solver accepts any DAG pattern and evaluates it under constraint
// semantics; for non-bipartite patterns the result is the upper bound used
// by the Most-Probable-Session optimization (Section 4.3.2), not the exact
// match probability.
func Bipartite(model *rim.Model, lab *label.Labeling, u pattern.Union, opts Options) (float64, error) {
	if len(u) == 0 {
		return 0, nil
	}
	if len(u) > 32 {
		return 0, fmt.Errorf("%w: Bipartite supports at most 32 patterns", ErrShape)
	}
	ctx := opts.ctx()
	m := model.M()

	// Trackers: one per distinct (label set, role). Role min tracks alpha,
	// role max tracks beta.
	type roleKey struct {
		key   string
		isMin bool
	}
	slotOf := make(map[roleKey]int)
	var slotLabels []label.Set
	var slotIsMin []bool
	slot := func(ls label.Set, isMin bool) int {
		rk := roleKey{ls.Key(), isMin}
		if s, ok := slotOf[rk]; ok {
			return s
		}
		s := len(slotLabels)
		slotOf[rk] = s
		slotLabels = append(slotLabels, ls)
		slotIsMin = append(slotIsMin, isMin)
		return s
	}

	// Constraints: edges (alpha(u) < beta(v)) and existence constraints for
	// isolated nodes. Each gets a global bit.
	type constraint struct {
		isEdge   bool
		lSlot    int       // edge: alpha slot
		rSlot    int       // edge: beta slot
		existSet label.Set // existence: required labels
		setIdx   int       // index into label-set census (for remaining counts)
	}
	var cons []constraint
	setIdxOf := make(map[string]int)
	var setList []label.Set
	censusIdx := func(ls label.Set) int {
		if i, ok := setIdxOf[ls.Key()]; ok {
			return i
		}
		i := len(setList)
		setIdxOf[ls.Key()] = i
		setList = append(setList, ls)
		return i
	}
	patBits := make([][]int, len(u)) // per pattern, constraint indices
	for pi, g := range u {
		touched := make([]bool, g.NumNodes())
		for _, e := range g.Edges() {
			touched[e[0]], touched[e[1]] = true, true
			c := constraint{
				isEdge: true,
				lSlot:  slot(g.Node(e[0]).Labels, true),
				rSlot:  slot(g.Node(e[1]).Labels, false),
			}
			cons = append(cons, c)
			patBits[pi] = append(patBits[pi], len(cons)-1)
		}
		for v := 0; v < g.NumNodes(); v++ {
			if !touched[v] {
				c := constraint{existSet: g.Node(v).Labels, setIdx: censusIdx(g.Node(v).Labels)}
				cons = append(cons, c)
				patBits[pi] = append(patBits[pi], len(cons)-1)
			}
		}
		if len(patBits[pi]) == 0 {
			return 1, nil // empty pattern matches every ranking
		}
	}
	if len(cons) > 64 {
		return 0, fmt.Errorf("%w: union has %d constraints (max 64)", ErrShape, len(cons))
	}
	nSlots := len(slotLabels)
	if nSlots > 64 {
		return 0, fmt.Errorf("%w: union has %d tracked label roles (max 64)", ErrShape, nSlots)
	}

	// Census: remaining[s][i] = number of items sigma[i..m-1] matching set s.
	// Slots and existence sets share the census via setIdx.
	for s := 0; s < nSlots; s++ {
		censusIdx(slotLabels[s])
	}
	remaining := make([][]int, len(setList))
	for si, ls := range setList {
		row := make([]int, m+1)
		for i := m - 1; i >= 0; i-- {
			row[i] = row[i+1]
			if lab.HasAll(model.Sigma()[i], ls) {
				row[i]++
			}
		}
		remaining[si] = row
	}
	slotCensus := make([]int, nSlots)
	for s := 0; s < nSlots; s++ {
		slotCensus[s] = setIdxOf[slotLabels[s].Key()]
	}

	// Per step: which slots does the inserted item feed, and which existence
	// constraints does it satisfy?
	slotMatch := make([][]int, m)
	for i := 0; i < m; i++ {
		it := model.Sigma()[i]
		for s := 0; s < nSlots; s++ {
			if lab.HasAll(it, slotLabels[s]) {
				slotMatch[i] = append(slotMatch[i], s)
			}
		}
	}

	const (
		absent  = int16(-1)
		dropped = int16(-2)
	)
	type header struct {
		sat  uint64
		dead uint32
	}
	enc := func(h header, vals []int16) string {
		b := make([]byte, 12+2*len(vals))
		for k := 0; k < 8; k++ {
			b[k] = byte(h.sat >> (8 * k))
		}
		for k := 0; k < 4; k++ {
			b[8+k] = byte(h.dead >> (8 * k))
		}
		for i, v := range vals {
			b[12+2*i] = byte(v)
			b[13+2*i] = byte(uint16(v) >> 8)
		}
		return string(b)
	}
	dec := func(key string, vals []int16) header {
		var h header
		for k := 0; k < 8; k++ {
			h.sat |= uint64(key[k]) << (8 * k)
		}
		for k := 0; k < 4; k++ {
			h.dead |= uint32(key[8+k]) << (8 * k)
		}
		for i := range vals {
			vals[i] = int16(uint16(key[12+2*i]) | uint16(key[13+2*i])<<8)
		}
		return h
	}

	allSat := make([]uint64, len(u))
	for pi, bits := range patBits {
		for _, b := range bits {
			allSat[pi] |= 1 << uint(b)
		}
	}
	allDead := uint32(1)<<uint(len(u)) - 1

	init := make([]int16, nSlots)
	for i := range init {
		init[i] = absent
	}
	cur := newLayer(1)
	cur.add(enc(header{}, init), 1)
	prob := 0.0
	vals := make([]int16, nSlots)
	next := make([]int16, nSlots)

	checkEvery := 0
	for i := 0; i < m; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		nxt := newLayer(cur.len())
		rem := func(setIdx int) int { return remaining[setIdx][i+1] }
		itemMatchesSet := make(map[int]bool)
		for si, ls := range setList {
			if lab.HasAll(model.Sigma()[i], ls) {
				itemMatchesSet[si] = true
			}
		}
		for ki, key := range cur.keys {
			q := cur.vals[ki]
			if checkEvery++; checkEvery&1023 == 0 {
				if err := ctx.Err(); err != nil {
					return 0, err
				}
			}
			h := dec(key, vals)
			for j := 0; j <= i; j++ {
				jj := int16(j)
				copy(next, vals)
				for s := 0; s < nSlots; s++ {
					if next[s] >= 0 && next[s] >= jj {
						next[s]++
					}
				}
				for _, s := range slotMatch[i] {
					if next[s] == dropped {
						continue
					}
					if slotIsMin[s] {
						if next[s] == absent || jj < next[s] {
							next[s] = jj
						}
					} else {
						if next[s] == absent || jj > next[s] {
							next[s] = jj
						}
					}
				}
				nh := h
				// Re-evaluate uncertain constraints of alive patterns.
				for pi, bits := range patBits {
					if nh.dead&(1<<uint(pi)) != 0 {
						continue
					}
					for _, bi := range bits {
						if nh.sat&(1<<uint(bi)) != 0 {
							continue
						}
						c := cons[bi]
						if !c.isEdge {
							if itemMatchesSet[c.setIdx] {
								nh.sat |= 1 << uint(bi)
							} else if rem(c.setIdx) == 0 {
								nh.dead |= 1 << uint(pi)
								break
							}
							continue
						}
						va, vb := next[c.lSlot], next[c.rSlot]
						remL, remR := rem(slotCensus[c.lSlot]), rem(slotCensus[c.rSlot])
						switch {
						case va >= 0 && vb >= 0 && va < vb:
							nh.sat |= 1 << uint(bi)
						case va < 0 && remL == 0, vb < 0 && remR == 0,
							va >= 0 && vb >= 0 && remL == 0 && remR == 0:
							nh.dead |= 1 << uint(pi)
						}
						if nh.dead&(1<<uint(pi)) != 0 {
							break
						}
					}
				}
				p := q * model.Pi(i, j)
				if p == 0 {
					continue
				}
				done := false
				for pi := range u {
					if nh.dead&(1<<uint(pi)) == 0 && nh.sat&allSat[pi] == allSat[pi] {
						prob += p
						done = true
						break
					}
				}
				if done {
					continue
				}
				if nh.dead == allDead {
					continue
				}
				// Drop trackers not used by any uncertain edge of an alive
				// pattern (the paper's onlyTrackLabelsFor).
				if !opts.NoTrackerDrop {
					var live [64]bool
					for pi, bits := range patBits {
						if nh.dead&(1<<uint(pi)) != 0 {
							continue
						}
						for _, bi := range bits {
							if nh.sat&(1<<uint(bi)) != 0 || !cons[bi].isEdge {
								continue
							}
							live[cons[bi].lSlot] = true
							live[cons[bi].rSlot] = true
						}
					}
					for s := 0; s < nSlots; s++ {
						if !live[s] {
							next[s] = dropped
						}
					}
				}
				nxt.add(enc(nh, next), p)
			}
		}
		opts.note(nxt.len())
		if err := opts.checkStates(nxt.len()); err != nil {
			return 0, err
		}
		cur = nxt
	}
	return prob, nil
}
