package solver

import (
	"fmt"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rank"
	"probpref/internal/rim"
)

// BipartiteBasic is the basic version of the bipartite solver described in
// Section 4.3.1 of the paper: a dynamic program that tracks the minimum
// positions of all L-type label sets and the maximum positions of all
// R-type label sets through the whole insertion process, then enumerates
// the final states and sums the probability of those satisfying at least
// one pattern. It performs no satisfied/violated pruning and no tracker
// dropping, so its state space is the full O(m^(qz)); it exists as the
// ablation baseline for the optimized Bipartite solver. States are one
// position word per tracker slot in the packed layer representation of
// state.go.
func BipartiteBasic(model *rim.Model, lab *label.Labeling, u pattern.Union, opts Options) (float64, error) {
	if len(u) == 0 {
		return 0, nil
	}
	ar := getArena()
	defer putArena(ar)
	var pl basicPlan
	if err := compileBipartiteBasic(&pl, planAlloc{ar}, model.Sigma(), lab, u); err != nil {
		return 0, err
	}
	if pl.constOne {
		return 1, nil
	}
	return runBipartiteBasic(ar, &pl, model, opts)
}

// basicPlan is the session-independent compilation of a union for the basic
// bipartite solver: tracker slots, per-pattern edge slot pairs, resolved
// existence slots and per-step feed lists.
type basicPlan struct {
	m, n      int
	slotIsMin []bool
	patEdgeL  [][]int // per pattern, alpha slot of each edge
	patEdgeR  [][]int // per pattern, beta slot of each edge
	patExist  [][]int // per pattern, min-position slots of isolated nodes
	slotMatch [][]int
	constOne  bool
}

func compileBipartiteBasic(pl *basicPlan, a planAlloc, sigma rank.Ranking, lab *label.Labeling, u pattern.Union) error {
	m := len(sigma)
	var slotLabels []label.Set
	var slotIsMin []bool
	slot := func(ls label.Set, isMin bool) int {
		for s, sl := range slotLabels {
			if slotIsMin[s] == isMin && sl.Equal(ls) {
				return s
			}
		}
		slotLabels = append(slotLabels, ls)
		slotIsMin = append(slotIsMin, isMin)
		return len(slotLabels) - 1
	}
	patEdgeL := a.intSlices(len(u))
	patEdgeR := a.intSlices(len(u))
	patExist := a.intSlices(len(u))
	nEdges, nNodes := 0, 0
	for _, g := range u {
		nEdges += len(g.Edges())
		nNodes += g.NumNodes()
	}
	edgeBacking := a.ints(2 * nEdges)[:0]
	existBacking := a.ints(nNodes)[:0]
	for pi, g := range u {
		touched := make([]bool, g.NumNodes())
		lLo := len(edgeBacking)
		for _, e := range g.Edges() {
			touched[e[0]], touched[e[1]] = true, true
			edgeBacking = append(edgeBacking, slot(g.Node(e[0]).Labels, true))
		}
		patEdgeL[pi] = edgeBacking[lLo:len(edgeBacking):len(edgeBacking)]
		rLo := len(edgeBacking)
		for _, e := range g.Edges() {
			edgeBacking = append(edgeBacking, slot(g.Node(e[1]).Labels, false))
		}
		patEdgeR[pi] = edgeBacking[rLo:len(edgeBacking):len(edgeBacking)]
		eLo := len(existBacking)
		for v := 0; v < g.NumNodes(); v++ {
			if !touched[v] {
				// Track existence through a min-position slot.
				existBacking = append(existBacking, slot(g.Node(v).Labels, true))
			}
		}
		patExist[pi] = existBacking[eLo:len(existBacking):len(existBacking)]
		if len(patEdgeL[pi]) == 0 && len(patExist[pi]) == 0 {
			pl.constOne = true
			return nil
		}
	}
	n := len(slotLabels)
	if n > 64 {
		return fmt.Errorf("%w: %d tracked label roles (max 64)", ErrShape, n)
	}

	slotMatch := a.intSlices(m)
	nFeed := 0
	for i := 0; i < m; i++ {
		for s := 0; s < n; s++ {
			if lab.HasAll(sigma[i], slotLabels[s]) {
				nFeed++
			}
		}
	}
	feedBacking := a.ints(nFeed)[:0]
	for i := 0; i < m; i++ {
		lo := len(feedBacking)
		for s := 0; s < n; s++ {
			if lab.HasAll(sigma[i], slotLabels[s]) {
				feedBacking = append(feedBacking, s)
			}
		}
		slotMatch[i] = feedBacking[lo:len(feedBacking):len(feedBacking)]
	}
	pl.m, pl.n = m, n
	pl.slotIsMin = slotIsMin
	pl.patEdgeL, pl.patEdgeR, pl.patExist = patEdgeL, patEdgeR, patExist
	pl.slotMatch = slotMatch
	return nil
}

// satisfiedAt reports whether the final state vals satisfies some pattern:
// every edge has alpha(l) < beta(r) and every isolated node is present.
func (pl *basicPlan) satisfiedAt(vals []int16) bool {
	for pi := range pl.patEdgeL {
		ok := true
		for ei, l := range pl.patEdgeL[pi] {
			r := pl.patEdgeR[pi][ei]
			if vals[l] < 0 || vals[r] < 0 || vals[l] >= vals[r] {
				ok = false
				break
			}
		}
		if ok {
			for _, s := range pl.patExist[pi] {
				if vals[s] < 0 {
					ok = false
					break
				}
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func runBipartiteBasic(ar *arena, pl *basicPlan, model *rim.Model, opts Options) (float64, error) {
	ctx := opts.ctx()
	n, m := pl.n, pl.m
	slotIsMin := pl.slotIsMin

	const absent = int16(-1)
	cur, nxt := &ar.layers[0], &ar.layers[1]
	cur.reset(n, 1)
	init := ar.workspaces(1, n, n)[0].next
	for i := range init {
		init[i] = absent
	}
	cur.addWords(init, 1)

	var (
		piRow []float64
		feed  []int
		steps int
	)
	expand := func(ws *workspace, vals []int16, q float64, em *emitter) {
		next := ws.next
		for j := 0; j < steps; j++ {
			jj := int16(j)
			for s, v := range vals {
				if v >= 0 && v >= jj {
					v++
				}
				next[s] = v
			}
			for _, s := range feed {
				if slotIsMin[s] {
					if next[s] == absent || jj < next[s] {
						next[s] = jj
					}
				} else {
					if next[s] == absent || jj > next[s] {
						next[s] = jj
					}
				}
			}
			em.emit(next, q*piRow[j])
		}
	}
	for i := 0; i < m; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		piRow, feed, steps = model.PiRow(i), pl.slotMatch[i], i+1
		if _, err := runStep(ctx, ar, cur, nxt, n, opts, 0, expand); err != nil {
			return 0, err
		}
		opts.note(nxt.len())
		if err := opts.checkStates(nxt.len()); err != nil {
			return 0, err
		}
		cur, nxt = nxt, cur
	}

	// Enumerate the final states: satisfied iff some pattern has every edge
	// alpha(l) < beta(r) and every isolated node present.
	prob := 0.0
	dec := ar.workspaces(1, n, n)[0].dec
	for ki := 0; ki < cur.len(); ki++ {
		if pl.satisfiedAt(cur.key(ki, dec)) {
			prob += cur.vals[ki]
		}
	}
	return prob, nil
}

// runBipartiteBasicVec is the batched executor: identical structural walk,
// per-lane mass vectors, per-lane final-state enumeration in the same
// insertion order as the scalar executor.
func runBipartiteBasicVec(ar *arena, pl *basicPlan, models []*rim.Model, opts Options, out []float64) error {
	ctx := opts.ctx()
	n, m, S := pl.n, pl.m, len(models)
	slotIsMin := pl.slotIsMin

	const absent = int16(-1)
	cur, nxt := &ar.layers[0], &ar.layers[1]
	cur.resetStride(n, 1, S)
	init := ar.workspaces(1, n, n)[0].next
	for i := range init {
		init[i] = absent
	}
	for l, w := 0, cur.valsAt(cur.slotWords(init)); l < S; l++ {
		w[l] = 1
	}

	wbuf := ar.floats(S * m)
	var (
		wj    []float64
		feed  []int
		steps int
	)
	expand := func(ws *workspace, vals []int16, q []float64, em *vecEmitter) {
		next := ws.next
		for j := 0; j < steps; j++ {
			jj := int16(j)
			for s, v := range vals {
				if v >= 0 && v >= jj {
					v++
				}
				next[s] = v
			}
			for _, s := range feed {
				if slotIsMin[s] {
					if next[s] == absent || jj < next[s] {
						next[s] = jj
					}
				} else {
					if next[s] == absent || jj > next[s] {
						next[s] = jj
					}
				}
			}
			dst := em.window(next)
			wrow := wj[j*S : (j+1)*S]
			for l, ql := range q {
				dst[l] += ql * wrow[l]
			}
		}
	}
	for i := 0; i < m; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		steps = i + 1
		wj = wbuf[:steps*S]
		for l := 0; l < S; l++ {
			row := models[l].PiRow(i)
			for j := 0; j < steps; j++ {
				wj[j*S+l] = row[j]
			}
		}
		feed = pl.slotMatch[i]
		if err := runStepVec(ctx, ar, cur, nxt, n, S, opts, nil, expand); err != nil {
			return err
		}
		opts.note(nxt.len())
		if err := opts.checkStates(nxt.len()); err != nil {
			return err
		}
		cur, nxt = nxt, cur
	}

	clear(out)
	dec := ar.workspaces(1, n, n)[0].dec
	nStates := cur.len()
	for ki := 0; ki < nStates; ki++ {
		if pl.satisfiedAt(cur.key(ki, dec)) {
			for l, q := range cur.valsAt(ki) {
				out[l] += q
			}
		}
	}
	return nil
}
