package solver

import (
	"fmt"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rim"
)

// BipartiteBasic is the basic version of the bipartite solver described in
// Section 4.3.1 of the paper: a dynamic program that tracks the minimum
// positions of all L-type label sets and the maximum positions of all
// R-type label sets through the whole insertion process, then enumerates
// the final states and sums the probability of those satisfying at least
// one pattern. It performs no satisfied/violated pruning and no tracker
// dropping, so its state space is the full O(m^(qz)); it exists as the
// ablation baseline for the optimized Bipartite solver. States are one
// position word per tracker slot in the packed layer representation of
// state.go.
func BipartiteBasic(model *rim.Model, lab *label.Labeling, u pattern.Union, opts Options) (float64, error) {
	if len(u) == 0 {
		return 0, nil
	}
	ctx := opts.ctx()
	m := model.M()

	var slotLabels []label.Set
	var slotIsMin []bool
	slot := func(ls label.Set, isMin bool) int {
		for s, sl := range slotLabels {
			if slotIsMin[s] == isMin && sl.Equal(ls) {
				return s
			}
		}
		slotLabels = append(slotLabels, ls)
		slotIsMin = append(slotIsMin, isMin)
		return len(slotLabels) - 1
	}
	type edge struct{ l, r int }
	patEdges := make([][]edge, len(u))
	patExists := make([][]label.Set, len(u))
	for pi, g := range u {
		touched := make([]bool, g.NumNodes())
		for _, e := range g.Edges() {
			touched[e[0]], touched[e[1]] = true, true
			patEdges[pi] = append(patEdges[pi], edge{
				l: slot(g.Node(e[0]).Labels, true),
				r: slot(g.Node(e[1]).Labels, false),
			})
		}
		for v := 0; v < g.NumNodes(); v++ {
			if !touched[v] {
				patExists[pi] = append(patExists[pi], g.Node(v).Labels)
				// Track existence through a min-position slot.
				slot(g.Node(v).Labels, true)
			}
		}
		if len(patEdges[pi]) == 0 && len(patExists[pi]) == 0 {
			return 1, nil
		}
	}
	n := len(slotLabels)
	if n > 64 {
		return 0, fmt.Errorf("%w: %d tracked label roles (max 64)", ErrShape, n)
	}

	slotMatch := make([][]int, m)
	for i := 0; i < m; i++ {
		it := model.Sigma()[i]
		for s := 0; s < n; s++ {
			if lab.HasAll(it, slotLabels[s]) {
				slotMatch[i] = append(slotMatch[i], s)
			}
		}
	}

	const absent = int16(-1)
	ar := getArena()
	defer putArena(ar)
	cur, nxt := &ar.layers[0], &ar.layers[1]
	cur.reset(n, 1)
	init := ar.workspaces(1, n, n)[0].next
	for i := range init {
		init[i] = absent
	}
	cur.addWords(init, 1)

	var (
		piRow []float64
		feed  []int
		steps int
	)
	expand := func(ws *workspace, vals []int16, q float64, em *emitter) {
		next := ws.next
		for j := 0; j < steps; j++ {
			jj := int16(j)
			for s, v := range vals {
				if v >= 0 && v >= jj {
					v++
				}
				next[s] = v
			}
			for _, s := range feed {
				if slotIsMin[s] {
					if next[s] == absent || jj < next[s] {
						next[s] = jj
					}
				} else {
					if next[s] == absent || jj > next[s] {
						next[s] = jj
					}
				}
			}
			em.emit(next, q*piRow[j])
		}
	}
	for i := 0; i < m; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		piRow, feed, steps = model.PiRow(i), slotMatch[i], i+1
		if _, err := runStep(ctx, ar, cur, nxt, n, opts, 0, expand); err != nil {
			return 0, err
		}
		opts.note(nxt.len())
		if err := opts.checkStates(nxt.len()); err != nil {
			return 0, err
		}
		cur, nxt = nxt, cur
	}

	// Enumerate the final states: satisfied iff some pattern has every edge
	// alpha(l) < beta(r) and every isolated node present.
	prob := 0.0
	existSlot := func(ls label.Set) int { return slot(ls, true) }
	dec := ar.workspaces(1, n, n)[0].dec
	for ki := 0; ki < cur.len(); ki++ {
		q := cur.vals[ki]
		vals := cur.key(ki, dec)
		for pi := range u {
			ok := true
			for _, e := range patEdges[pi] {
				if vals[e.l] < 0 || vals[e.r] < 0 || vals[e.l] >= vals[e.r] {
					ok = false
					break
				}
			}
			if ok {
				for _, ls := range patExists[pi] {
					if vals[existSlot(ls)] < 0 {
						ok = false
						break
					}
				}
			}
			if ok {
				prob += q
				break
			}
		}
	}
	return prob, nil
}
