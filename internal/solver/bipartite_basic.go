package solver

import (
	"fmt"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rim"
)

// BipartiteBasic is the basic version of the bipartite solver described in
// Section 4.3.1 of the paper: a dynamic program that tracks the minimum
// positions of all L-type label sets and the maximum positions of all
// R-type label sets through the whole insertion process, then enumerates
// the final states and sums the probability of those satisfying at least
// one pattern. It performs no satisfied/violated pruning and no tracker
// dropping, so its state space is the full O(m^(qz)); it exists as the
// ablation baseline for the optimized Bipartite solver.
func BipartiteBasic(model *rim.Model, lab *label.Labeling, u pattern.Union, opts Options) (float64, error) {
	if len(u) == 0 {
		return 0, nil
	}
	ctx := opts.ctx()
	m := model.M()

	type roleKey struct {
		key   string
		isMin bool
	}
	slotOf := make(map[roleKey]int)
	var slotLabels []label.Set
	var slotIsMin []bool
	slot := func(ls label.Set, isMin bool) int {
		rk := roleKey{ls.Key(), isMin}
		if s, ok := slotOf[rk]; ok {
			return s
		}
		s := len(slotLabels)
		slotOf[rk] = s
		slotLabels = append(slotLabels, ls)
		slotIsMin = append(slotIsMin, isMin)
		return s
	}
	type edge struct{ l, r int }
	patEdges := make([][]edge, len(u))
	patExists := make([][]label.Set, len(u))
	for pi, g := range u {
		touched := make([]bool, g.NumNodes())
		for _, e := range g.Edges() {
			touched[e[0]], touched[e[1]] = true, true
			patEdges[pi] = append(patEdges[pi], edge{
				l: slot(g.Node(e[0]).Labels, true),
				r: slot(g.Node(e[1]).Labels, false),
			})
		}
		for v := 0; v < g.NumNodes(); v++ {
			if !touched[v] {
				patExists[pi] = append(patExists[pi], g.Node(v).Labels)
				// Track existence through a min-position slot.
				slot(g.Node(v).Labels, true)
			}
		}
		if len(patEdges[pi]) == 0 && len(patExists[pi]) == 0 {
			return 1, nil
		}
	}
	n := len(slotLabels)
	if n > 64 {
		return 0, fmt.Errorf("%w: %d tracked label roles (max 64)", ErrShape, n)
	}

	slotMatch := make([][]int, m)
	for i := 0; i < m; i++ {
		it := model.Sigma()[i]
		for s := 0; s < n; s++ {
			if lab.HasAll(it, slotLabels[s]) {
				slotMatch[i] = append(slotMatch[i], s)
			}
		}
	}

	const absent = int16(-1)
	enc := func(vals []int16) string {
		b := make([]byte, 2*len(vals))
		for i, v := range vals {
			b[2*i] = byte(uint16(v))
			b[2*i+1] = byte(uint16(v) >> 8)
		}
		return string(b)
	}
	dec := func(key string, vals []int16) {
		for i := range vals {
			vals[i] = int16(uint16(key[2*i]) | uint16(key[2*i+1])<<8)
		}
	}

	init := make([]int16, n)
	for i := range init {
		init[i] = absent
	}
	cur := newLayer(1)
	cur.add(enc(init), 1)
	vals := make([]int16, n)
	next := make([]int16, n)
	for i := 0; i < m; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		nxt := newLayer(cur.len())
		for ki, key := range cur.keys {
			q := cur.vals[ki]
			dec(key, vals)
			for j := 0; j <= i; j++ {
				jj := int16(j)
				copy(next, vals)
				for s := 0; s < n; s++ {
					if next[s] >= 0 && next[s] >= jj {
						next[s]++
					}
				}
				for _, s := range slotMatch[i] {
					if slotIsMin[s] {
						if next[s] == absent || jj < next[s] {
							next[s] = jj
						}
					} else {
						if next[s] == absent || jj > next[s] {
							next[s] = jj
						}
					}
				}
				nxt.add(enc(next), q*model.Pi(i, j))
			}
		}
		opts.note(nxt.len())
		if err := opts.checkStates(nxt.len()); err != nil {
			return 0, err
		}
		cur = nxt
	}

	// Enumerate the final states: satisfied iff some pattern has every edge
	// alpha(l) < beta(r) and every isolated node present.
	prob := 0.0
	existSlot := func(ls label.Set) int { return slotOf[roleKey{ls.Key(), true}] }
	for ki, key := range cur.keys {
		q := cur.vals[ki]
		dec(key, vals)
		for pi := range u {
			ok := true
			for _, e := range patEdges[pi] {
				if vals[e.l] < 0 || vals[e.r] < 0 || vals[e.l] >= vals[e.r] {
					ok = false
					break
				}
			}
			if ok {
				for _, ls := range patExists[pi] {
					if vals[existSlot(ls)] < 0 {
						ok = false
						break
					}
				}
			}
			if ok {
				prob += q
				break
			}
		}
	}
	return prob, nil
}
