package solver

// This file implements the packed DP state representation shared by every
// exact solver: a state is a fixed-width vector of int16 words (tracker
// positions, packed constraint bits, or (item, position) entries depending
// on the solver), and a DP layer is an insertion-ordered open-addressing
// table from state vectors to probability mass. Narrow states — at most
// packedWords words, which covers the benchmark fixtures and most serving
// traffic — pack into a single uint64 key, so the hot path hashes and
// compares one machine word instead of allocating a string per successor
// the way the previous map[string]int layer did. Wider states fall back to
// a flat []int16 arena (still allocation-free in steady state: the arena is
// one slice shared by all states of the layer).

// packedWords is the widest state (in int16 words) that packs into a
// single uint64 key.
const packedWords = 4

// packWords packs at most packedWords int16 words into one uint64,
// little-endian. Unused high bits are zero for every key of a given width,
// so keys of the same layer never collide across widths.
func packWords(w []int16) uint64 {
	var k uint64
	for i, v := range w {
		k |= uint64(uint16(v)) << (16 * uint(i))
	}
	return k
}

// unpackWords writes the packed key's words back into buf.
func unpackWords(k uint64, buf []int16) {
	for j := range buf {
		buf[j] = int16(uint16(k >> (16 * uint(j))))
	}
}

// hash64 is the SplitMix64 finalizer: a fast, well-mixing hash for packed
// state keys. The hash only chooses probe slots — insertion order, and
// with it every solver result bit, is hash-independent.
func hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// hashWords hashes a wide state vector: FNV-1a over the words, finalized by
// hash64 to spread entropy into the high bits the table mask uses.
func hashWords(w []int16) uint64 {
	h := uint64(1469598103934665603)
	for _, v := range w {
		h ^= uint64(uint16(v))
		h *= 1099511628211
	}
	return hash64(h)
}

// layerTable is an insertion-ordered DP layer: states map to accumulated
// probability mass, and iteration follows first-insertion order. The
// solvers fold probability mass state by state and several source states
// can merge into one successor; insertion order makes that fold — and with
// it the last bits of every solver's answer — deterministic. The table is
// open-addressing with linear probing over uint32 slots (index+1, 0 =
// empty), specialized to integer keys: packed layers compare uint64s, wide
// layers compare []int16 windows of a shared arena. All backing slices are
// retained across reset so a recycled layer adds states without
// allocating.
type layerTable struct {
	words  int  // int16 words per state key
	packed bool // words <= packedWords: keys stored as uint64
	// stride is the number of float64 values per state: 1 for single-session
	// layers (vals[i] is state i's mass), S for batched multi-session layers
	// (vals[i*stride:(i+1)*stride] is state i's per-session mass vector).
	stride int
	// tab slots hold generation<<32 | state-index+1. A slot whose
	// generation differs from gen is empty: reset just bumps gen instead of
	// clearing the table, so recycling a layer is O(1) regardless of the
	// previous layer's size.
	tab    []uint64
	gen    uint64
	keys64 []uint64  // packed keys, insertion order
	keysW  []int16   // wide-key arena: state i is keysW[i*words:(i+1)*words]
	vals   []float64 // probability mass, insertion order, stride per state
}

// reset reconfigures the layer for single-session states (stride 1).
func (l *layerTable) reset(words, hint int) { l.resetStride(words, hint, 1) }

// resetStride reconfigures the layer for a new width and value stride,
// keeping capacity. The table is sized for about hint states before the
// first growth.
func (l *layerTable) resetStride(words, hint, stride int) {
	l.words = words
	l.packed = words <= packedWords
	l.stride = stride
	l.gen += 1 << 32
	if l.gen == 0 { // generation counter wrapped: stale slots could alias
		clear(l.tab)
		l.gen = 1 << 32
	}
	need := 2 * hint
	sz := 16
	for sz < need {
		sz <<= 1
	}
	if cap(l.tab) >= sz {
		l.tab = l.tab[:sz]
	} else {
		l.tab = make([]uint64, sz)
		l.gen = 1 << 32 // fresh zeroed table: restart generations
	}
	l.keys64 = l.keys64[:0]
	l.keysW = l.keysW[:0]
	l.vals = l.vals[:0]
}

// len returns the number of states in the layer.
func (l *layerTable) len() int {
	if l.stride > 1 {
		return len(l.vals) / l.stride
	}
	return len(l.vals)
}

// valsAt returns state i's value window (one float for stride-1 layers, one
// per session lane for strided layers).
func (l *layerTable) valsAt(i int) []float64 {
	if l.stride > 1 {
		return l.vals[i*l.stride : (i+1)*l.stride]
	}
	return l.vals[i : i+1]
}

// keyW returns the wide key of state i as a window into the arena.
func (l *layerTable) keyW(i int) []int16 {
	return l.keysW[i*l.words : (i+1)*l.words]
}

// key decodes state i into buf (packed layers) or returns the arena window
// directly (wide layers). The result is only valid until the layer is
// reset; callers must not mutate it.
func (l *layerTable) key(i int, buf []int16) []int16 {
	if l.packed {
		buf = buf[:l.words]
		unpackWords(l.keys64[i], buf)
		return buf
	}
	return l.keyW(i)
}

// genMask selects a slot's generation bits.
const genMask = ^uint64(0xFFFFFFFF)

// slot64 returns the value-window index of the packed state k, appending a
// zeroed window on first touch. It is the strided counterpart of add64:
// batched solvers fold per-lane mass into the returned window themselves.
func (l *layerTable) slot64(k uint64) int {
	if l.len() >= len(l.tab)-len(l.tab)/4 {
		l.grow()
	}
	mask := uint32(len(l.tab) - 1)
	i := uint32(hash64(k)) & mask
	for {
		e := l.tab[i]
		if e&genMask != l.gen {
			idx := l.len()
			l.tab[i] = l.gen | uint64(idx+1)
			l.keys64 = append(l.keys64, k)
			for s := 0; s < l.stride; s++ {
				l.vals = append(l.vals, 0)
			}
			return idx
		}
		if idx := uint32(e) - 1; l.keys64[idx] == k {
			return int(idx)
		}
		i = (i + 1) & mask
	}
}

// slotWords returns the value-window index of the state with word vector w,
// appending a zeroed window on first touch. Packed layers delegate to
// slot64.
func (l *layerTable) slotWords(w []int16) int {
	if l.packed {
		return l.slot64(packWords(w))
	}
	if l.len() >= len(l.tab)-len(l.tab)/4 {
		l.grow()
	}
	mask := uint32(len(l.tab) - 1)
	i := uint32(hashWords(w)) & mask
	for {
		e := l.tab[i]
		if e&genMask != l.gen {
			idx := l.len()
			l.tab[i] = l.gen | uint64(idx+1)
			l.keysW = append(l.keysW, w...)
			for s := 0; s < l.stride; s++ {
				l.vals = append(l.vals, 0)
			}
			return idx
		}
		if idx := uint32(e) - 1; wordsEqual(l.keyW(int(idx)), w) {
			return int(idx)
		}
		i = (i + 1) & mask
	}
}

// add64 folds mass p into the packed state k, appending it on first touch.
// Only valid on stride-1 layers; strided layers use slot64.
func (l *layerTable) add64(k uint64, p float64) {
	if len(l.vals) >= len(l.tab)-len(l.tab)/4 {
		l.grow()
	}
	mask := uint32(len(l.tab) - 1)
	i := uint32(hash64(k)) & mask
	for {
		e := l.tab[i]
		if e&genMask != l.gen {
			l.tab[i] = l.gen | uint64(len(l.vals)+1)
			l.keys64 = append(l.keys64, k)
			l.vals = append(l.vals, p)
			return
		}
		if idx := uint32(e) - 1; l.keys64[idx] == k {
			l.vals[idx] += p
			return
		}
		i = (i + 1) & mask
	}
}

// addWords folds mass p into the state with word vector w, appending it on
// first touch. Packed layers delegate to add64.
func (l *layerTable) addWords(w []int16, p float64) {
	if l.packed {
		l.add64(packWords(w), p)
		return
	}
	if len(l.vals) >= len(l.tab)-len(l.tab)/4 {
		l.grow()
	}
	mask := uint32(len(l.tab) - 1)
	i := uint32(hashWords(w)) & mask
	for {
		e := l.tab[i]
		if e&genMask != l.gen {
			l.tab[i] = l.gen | uint64(len(l.vals)+1)
			l.keysW = append(l.keysW, w...)
			l.vals = append(l.vals, p)
			return
		}
		if idx := uint32(e) - 1; wordsEqual(l.keyW(int(idx)), w) {
			l.vals[idx] += p
			return
		}
		i = (i + 1) & mask
	}
}

func wordsEqual(a, b []int16) bool {
	for i, v := range a {
		if b[i] != v {
			return false
		}
	}
	return true
}

// grow doubles the probe table and re-seats every state; key storage and
// insertion order are untouched. The resized table is cleared (a fresh or
// zeroed array) so it only contains current-generation entries — stale
// generations never mix with re-seated slots.
func (l *layerTable) grow() {
	sz := 2 * len(l.tab)
	if cap(l.tab) >= sz {
		l.tab = l.tab[:sz]
		clear(l.tab)
	} else {
		l.tab = make([]uint64, sz)
	}
	mask := uint32(sz - 1)
	n := l.len()
	for idx := 0; idx < n; idx++ {
		var h uint64
		if l.packed {
			h = hash64(l.keys64[idx])
		} else {
			h = hashWords(l.keyW(idx))
		}
		i := uint32(h) & mask
		for l.tab[i] != 0 {
			i = (i + 1) & mask
		}
		l.tab[i] = l.gen | uint64(idx+1)
	}
}

// mergeFrom folds every state of src into l in src's insertion order.
// Because parallel expansion splits the source layer into contiguous
// chunks, merging the chunk sublayers in chunk order reproduces the
// sequential first-touch order exactly — the merged layer's state order is
// identical to a sequential expansion's. The merged values use the chunked
// association (per-chunk subtotals folded in chunk order), which is fixed
// by the deterministic chunk boundaries; see runStep.
func (l *layerTable) mergeFrom(src *layerTable) {
	if src.packed {
		for i, k := range src.keys64 {
			l.add64(k, src.vals[i])
		}
		return
	}
	for i := range src.vals {
		l.addWords(src.keyW(i), src.vals[i])
	}
}

// mergeFromVec is the strided counterpart of mergeFrom: every state of src
// folds its per-lane value window into l element-wise, in src's insertion
// order. Both layers must share the same stride. The per-lane fold order is
// identical to mergeFrom's scalar fold order, so each session lane of a
// batched solve reproduces the single-session bits exactly.
func (l *layerTable) mergeFromVec(src *layerTable) {
	n := src.len()
	for i := 0; i < n; i++ {
		var idx int
		if src.packed {
			idx = l.slot64(src.keys64[i])
		} else {
			idx = l.slotWords(src.keyW(i))
		}
		dst := l.vals[idx*l.stride : (idx+1)*l.stride]
		for s, v := range src.vals[i*src.stride : (i+1)*src.stride] {
			dst[s] += v
		}
	}
}
