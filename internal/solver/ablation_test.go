package solver

import (
	"math"
	"math/rand"
	"testing"
)

// The tracker-dropping optimization must not change results, only shrink
// state spaces.
func TestBipartiteTrackerDropAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	for trial := 0; trial < 60; trial++ {
		m := 4 + rng.Intn(3)
		lab := randWorld(rng, m, 4)
		model := randModel(rng, m)
		u := randBipartiteUnion(rng, 1+rng.Intn(3), 4)

		var withDrop, noDrop Stats
		a, err := Bipartite(model, lab, u, Options{Stats: &withDrop})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Bipartite(model, lab, u, Options{NoTrackerDrop: true, Stats: &noDrop})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("trial %d: drop=%v nodrop=%v", trial, a, b)
		}
		if withDrop.TotalStates > noDrop.TotalStates {
			t.Fatalf("trial %d: dropping increased states (%d > %d)",
				trial, withDrop.TotalStates, noDrop.TotalStates)
		}
	}
}

// On larger instances, dropping must strictly shrink the DP.
func TestBipartiteTrackerDropShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	m := 10
	lab := randWorld(rng, m, 6)
	model := randModel(rng, m)
	u := randBipartiteUnion(rng, 3, 6)
	var withDrop, noDrop Stats
	if _, err := Bipartite(model, lab, u, Options{Stats: &withDrop}); err != nil {
		t.Fatal(err)
	}
	if _, err := Bipartite(model, lab, u, Options{NoTrackerDrop: true, Stats: &noDrop}); err != nil {
		t.Fatal(err)
	}
	if withDrop.TotalStates >= noDrop.TotalStates {
		t.Skipf("instance did not exercise dropping (%d vs %d)", withDrop.TotalStates, noDrop.TotalStates)
	}
}

// The basic bipartite solver (Section 4.3.1, no pruning) must agree with
// both the optimized solver and brute force.
func TestBipartiteBasicAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 80; trial++ {
		m := 3 + rng.Intn(4)
		lab := randWorld(rng, m, 4)
		model := randModel(rng, m)
		u := randBipartiteUnion(rng, 1+rng.Intn(3), 4)
		want := Brute(model, lab, u)
		basic, err := BipartiteBasic(model, lab, u, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(basic-want) > 1e-9 {
			t.Fatalf("trial %d: basic=%v brute=%v", trial, basic, want)
		}
		opt, err := Bipartite(model, lab, u, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(basic-opt) > 1e-9 {
			t.Fatalf("trial %d: basic=%v optimized=%v", trial, basic, opt)
		}
	}
}

// The optimized solver must explore no more states than the basic version.
func TestBipartiteOptimizedSmaller(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	m := 9
	lab := randWorld(rng, m, 5)
	model := randModel(rng, m)
	u := randBipartiteUnion(rng, 2, 5)
	var basic, opt Stats
	if _, err := BipartiteBasic(model, lab, u, Options{Stats: &basic}); err != nil {
		t.Fatal(err)
	}
	if _, err := Bipartite(model, lab, u, Options{Stats: &opt}); err != nil {
		t.Fatal(err)
	}
	if opt.TotalStates > basic.TotalStates {
		t.Fatalf("optimized explored more states: %d vs %d", opt.TotalStates, basic.TotalStates)
	}
}
