package solver

import (
	"fmt"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rim"
)

// General implements the paper's general solver (Section 4.1, Equation 3):
// inclusion-exclusion over all non-empty subsets of the union, where the
// conjunction of a subset is the pattern containing all nodes and edges of
// its members. Each conjunction is solved by the most specific
// single-pattern solver available: Bipartite when the conjunction is
// bipartite, RelOrder otherwise (DESIGN.md, substitution S1). Complexity is
// dominated by the largest conjunction, O((2m)^(qz)) in the paper's terms.
func General(model *rim.Model, lab *label.Labeling, u pattern.Union, opts Options) (float64, error) {
	if len(u) == 0 {
		return 0, nil
	}
	// Deduplicate identical members: Pr(g ∪ g) = Pr(g).
	seen := make(map[string]bool)
	dedup := make(pattern.Union, 0, len(u))
	for _, g := range u {
		k := g.Key()
		if !seen[k] {
			seen[k] = true
			dedup = append(dedup, g)
		}
	}
	u = dedup
	if len(u) > 16 {
		return 0, fmt.Errorf("%w: inclusion-exclusion over %d patterns (max 16)", ErrShape, len(u))
	}
	ctx := opts.ctx()
	total := 0.0
	// Conjoin-input scratch, allocated once and resliced per mask: the loop
	// runs up to 2^16 times and must not re-grow a nil slice each pass.
	members := make([]*pattern.Pattern, 0, len(u))
	for mask := 1; mask < 1<<uint(len(u)); mask++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		members = members[:0]
		for i := range u {
			if mask&(1<<uint(i)) != 0 {
				members = append(members, u[i])
			}
		}
		conj := pattern.Conjoin(members...)
		p, err := SinglePattern(model, lab, conj, opts)
		if err != nil {
			return 0, fmt.Errorf("conjunction of %d patterns: %w", len(members), err)
		}
		if opts.Stats != nil {
			opts.Stats.Subproblems++
		}
		if popcount(mask)%2 == 1 {
			total += p
		} else {
			total -= p
		}
	}
	if total < 0 {
		total = 0
	}
	if total > 1 {
		total = 1
	}
	return total, nil
}

// SinglePattern computes the exact marginal probability of one pattern,
// dispatching to Bipartite for bipartite patterns (where constraint
// semantics is exact) and to RelOrder otherwise.
func SinglePattern(model *rim.Model, lab *label.Labeling, g *pattern.Pattern, opts Options) (float64, error) {
	if g.IsBipartite() {
		return Bipartite(model, lab, pattern.Union{g}, opts)
	}
	return RelOrder(model, lab, pattern.Union{g}, opts)
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
