package solver

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rim"
)

// Determinism suite for the packed-state DP core: every solver must return
// bit-for-bit identical float64s across repeated runs, across sequential
// vs parallel layer expansion, and across worker counts / GOMAXPROCS
// values. The unified query API's equivalence suite and the cross-query
// solve cache rely on this.

// forceParallel lowers the expansion thresholds so even tiny layers take
// the chunked parallel path with the given worker count, returning a
// restore function. Tests using it must not run in parallel with each
// other (they mutate package globals); none of them call t.Parallel.
func forceParallel(workers int) func() {
	savedT, savedC, savedW := parallelThreshold, expandChunk, testWorkers
	parallelThreshold, expandChunk, testWorkers = 1, 3, workers
	return func() {
		parallelThreshold, expandChunk, testWorkers = savedT, savedC, savedW
	}
}

// solverSuite returns named solver invocations over one random instance
// set per supported family.
type detCase struct {
	name  string
	solve func() (float64, error)
}

func detCases(t *testing.T, seed int64) []detCase {
	rng := rand.New(rand.NewSource(seed))
	var cases []detCase
	add := func(name string, mdl *rim.Model, lab *label.Labeling, u pattern.Union,
		f func(*rim.Model, *label.Labeling, pattern.Union, Options) (float64, error)) {
		cases = append(cases, detCase{name, func() (float64, error) {
			return f(mdl, lab, u, Options{MaxInvolved: 16})
		}})
	}
	for trial := 0; trial < 6; trial++ {
		m := 6 + rng.Intn(4)
		mdl := randModel(rng, m)
		lab := randWorld(rng, m, 4)
		two := randTwoLabelUnion(rng, 2, 4)
		bip := randBipartiteUnion(rng, 2, 4)
		dag := randDAGUnion(rng, 1, 3)
		add("twolabel", mdl, lab, two, TwoLabel)
		add("bipartite", mdl, lab, bip, Bipartite)
		add("bipartite-basic", mdl, lab, bip, BipartiteBasic)
		add("relorder", mdl, lab, dag, RelOrder)
		add("general", mdl, lab, dag, General)
	}
	return cases
}

// Bit-for-bit reproducibility across runs of the same solver.
func TestSolversBitwiseDeterministicAcrossRuns(t *testing.T) {
	for _, c := range detCases(t, 501) {
		a, err := c.solve()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for run := 0; run < 3; run++ {
			b, err := c.solve()
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("%s: run %d differs: %x vs %x (%v vs %v)",
					c.name, run, math.Float64bits(a), math.Float64bits(b), a, b)
			}
		}
	}
}

// The chunked fold must produce identical bits at every worker count —
// the workers only decide who computes which chunk, never how the numbers
// combine — and must agree with the direct sequential fold to within
// float-association noise.
func TestChunkedExpansionWorkerCountInvariant(t *testing.T) {
	cases := detCases(t, 502)
	seq := make([]float64, len(cases))
	for i, c := range cases {
		p, err := c.solve()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		seq[i] = p
	}
	var oneWorker []uint64
	for _, workers := range []int{1, 2, 3, 4, 8} {
		restore := forceParallel(workers)
		for i, c := range cases {
			p, err := c.solve()
			if err != nil {
				restore()
				t.Fatalf("%s (workers=%d): %v", c.name, workers, err)
			}
			if workers == 1 {
				oneWorker = append(oneWorker, math.Float64bits(p))
			} else if got := math.Float64bits(p); got != oneWorker[i] {
				restore()
				t.Fatalf("%s: %d workers differ from 1 worker: %x vs %x",
					c.name, workers, got, oneWorker[i])
			}
			if math.Abs(p-seq[i]) > 1e-12 {
				restore()
				t.Fatalf("%s: chunked fold drifts from sequential: %v vs %v", c.name, p, seq[i])
			}
		}
		restore()
	}
}

// Results must not depend on GOMAXPROCS: the chunk schedule is fixed, so
// raising the real worker pool must reproduce the single-proc bits.
func TestGOMAXPROCSInvariance(t *testing.T) {
	savedT, savedC := parallelThreshold, expandChunk
	parallelThreshold, expandChunk = 1, 3
	defer func() { parallelThreshold, expandChunk = savedT, savedC }()
	saved := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(saved)

	cases := detCases(t, 503)
	single := make([]uint64, len(cases))
	for i, c := range cases {
		p, err := c.solve()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		single[i] = math.Float64bits(p)
	}
	for _, procs := range []int{2, 4} {
		runtime.GOMAXPROCS(procs)
		for i, c := range cases {
			p, err := c.solve()
			if err != nil {
				t.Fatalf("%s (GOMAXPROCS=%d): %v", c.name, procs, err)
			}
			if got := math.Float64bits(p); got != single[i] {
				t.Fatalf("%s: GOMAXPROCS=%d differs from 1: %x vs %x",
					c.name, procs, got, single[i])
			}
		}
	}
}

// RelOrder's generic-matcher fallback (patterns too wide for the bitmask
// matcher, reachable through General's conjunctions) must agree with brute
// force and stay deterministic, sequentially and chunked.
func TestRelOrderWideMatcherFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(506))
	m := 5
	mdl := randModel(rng, m)
	lab := randWorld(rng, m, 3)
	// 17 nodes exceeds the bitmask matcher's 16-node bound; non-adjacent
	// nodes may share positions, so the pattern is satisfiable on 5 items.
	nodes := make([]pattern.Node, 17)
	for i := range nodes {
		nodes[i].Labels = label.NewSet(label.Label(i % 3))
	}
	u := pattern.Union{pattern.MustNew(nodes, [][2]int{{0, 5}, {5, 11}, {3, 16}})}
	want := Brute(mdl, lab, u)
	got, err := RelOrder(mdl, lab, u, Options{MaxInvolved: 16})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("fallback matcher: RelOrder=%v brute=%v", got, want)
	}
	restore := forceParallel(4)
	defer restore()
	chunked, err := RelOrder(mdl, lab, u, Options{MaxInvolved: 16})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(chunked-want) > 1e-9 {
		t.Fatalf("fallback matcher (chunked): RelOrder=%v brute=%v", chunked, want)
	}
	again, err := RelOrder(mdl, lab, u, Options{MaxInvolved: 16})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(chunked) != math.Float64bits(again) {
		t.Fatalf("fallback matcher not deterministic: %x vs %x",
			math.Float64bits(chunked), math.Float64bits(again))
	}
}

// Options.Stats under parallel expansion: per-chunk counters reduce on the
// solving goroutine (run with -race), and the reduced totals match the
// sequential counts exactly.
func TestStatsDeterministicUnderParallelExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(504))
	m := 8
	mdl := randModel(rng, m)
	lab := randWorld(rng, m, 4)
	u := randTwoLabelUnion(rng, 2, 4)

	var seqStats Stats
	if _, err := TwoLabel(mdl, lab, u, Options{Stats: &seqStats}); err != nil {
		t.Fatal(err)
	}
	if seqStats.Transitions == 0 || seqStats.PeakStates == 0 {
		t.Fatalf("sequential stats not populated: %+v", seqStats)
	}
	restore := forceParallel(4)
	defer restore()
	var parStats Stats
	if _, err := TwoLabel(mdl, lab, u, Options{Stats: &parStats}); err != nil {
		t.Fatal(err)
	}
	if parStats != seqStats {
		t.Fatalf("parallel stats differ from sequential: %+v vs %+v", parStats, seqStats)
	}
}

// The shared arena pool must be safe under concurrent solves (run with
// -race): many goroutines solving simultaneously, each with forced
// parallel expansion, must all produce the sequential bits.
func TestArenaPoolConcurrentSolvesRace(t *testing.T) {
	cases := detCases(t, 505)
	restoreBase := forceParallel(1)
	want := make([]uint64, len(cases))
	for i, c := range cases {
		p, err := c.solve()
		if err != nil {
			restoreBase()
			t.Fatalf("%s: %v", c.name, err)
		}
		want[i] = math.Float64bits(p)
	}
	restoreBase()
	restore := forceParallel(3)
	defer restore()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, c := range cases {
				p, err := c.solve()
				if err != nil {
					errs <- err
					return
				}
				if math.Float64bits(p) != want[i] {
					t.Errorf("%s: concurrent solve differs", c.name)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
