package solver

import (
	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rank"
	"probpref/internal/rim"
)

// BruteModel computes the exact pattern-union probability for any ranking
// model by enumerating every ranking of the universe and summing the
// probabilities of the matching ones. O(m! * m^2): ground truth for models
// outside the RIM family (e.g. Plackett-Luce) on tiny universes (m <= 8).
func BruteModel(mdl rim.Sampler, lab *label.Labeling, u pattern.Union) float64 {
	total := 0.0
	rank.ForEachPermutation(mdl.M(), func(tau rank.Ranking) bool {
		if u.Matches(tau, lab) {
			total += mdl.Prob(tau)
		}
		return true
	})
	return total
}
