package solver

import (
	"math/rand"
	"testing"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rank"
	"probpref/internal/rim"
)

// Allocation-aware solver microbenchmarks. The fixtures mirror the shapes
// of the internal/bench registry cases (which cannot be imported here —
// internal/dataset depends on this package); the per-op alloc counts are
// the interesting number: after the first iteration warms the arena pool,
// the DP inner loop must not allocate, so allocs/op stays flat at the
// small per-solve setup count no matter how many transitions a solve
// expands.

// benchTwoLabel builds an m-item Mallows model with z two-label patterns,
// `items` items per label (the Benchmark-D shape).
func benchTwoLabel(m, z, items int) (*rim.Model, *label.Labeling, pattern.Union) {
	rng := rand.New(rand.NewSource(1))
	perm := make(rank.Ranking, m)
	for i, v := range rng.Perm(m) {
		perm[i] = rank.Item(v)
	}
	ml := rim.MustMallows(perm, 0.5)
	lab := label.NewLabeling()
	var next label.Label
	attach := func() label.Set {
		l := next
		next++
		for _, it := range rng.Perm(m)[:items] {
			lab.Add(rank.Item(it), l)
		}
		return label.NewSet(l)
	}
	var u pattern.Union
	for p := 0; p < z; p++ {
		u = append(u, pattern.TwoLabel(attach(), attach()))
	}
	return ml.Model(), lab, u
}

// benchDAG builds an m-item Mallows model with z patterns of q nodes each
// sharing one random edge structure (the Benchmark-B/C shape).
func benchDAG(m, z, q, items int, bipartite bool) (*rim.Model, *label.Labeling, pattern.Union) {
	rng := rand.New(rand.NewSource(1))
	perm := make(rank.Ranking, m)
	for i, v := range rng.Perm(m) {
		perm[i] = rank.Item(v)
	}
	ml := rim.MustMallows(perm, 0.1)
	lab := label.NewLabeling()
	var next label.Label
	var edges [][2]int
	if bipartite {
		nl := 1 + q/2
		for a := 0; a < nl; a++ {
			for b := nl; b < q; b++ {
				if rng.Float64() < 0.6 {
					edges = append(edges, [2]int{a, b})
				}
			}
		}
		if len(edges) == 0 {
			edges = append(edges, [2]int{0, nl})
		}
	} else {
		for a := 0; a < q; a++ {
			for b := a + 1; b < q; b++ {
				if rng.Float64() < 0.5 {
					edges = append(edges, [2]int{a, b})
				}
			}
		}
		if len(edges) == 0 {
			edges = append(edges, [2]int{0, q - 1})
		}
	}
	var u pattern.Union
	for p := 0; p < z; p++ {
		nodes := make([]pattern.Node, q)
		for v := 0; v < q; v++ {
			l := next
			next++
			for _, it := range rng.Perm(m)[:items] {
				lab.Add(rank.Item(it), l)
			}
			nodes[v] = pattern.Node{Labels: label.NewSet(l)}
		}
		u = append(u, pattern.MustNew(nodes, edges))
	}
	return ml.Model(), lab, u
}

func benchSolve(b *testing.B, f func(*rim.Model, *label.Labeling, pattern.Union, Options) (float64, error),
	mdl *rim.Model, lab *label.Labeling, u pattern.Union) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f(mdl, lab, u, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwoLabel(b *testing.B) {
	mdl, lab, u := benchTwoLabel(20, 2, 3)
	benchSolve(b, TwoLabel, mdl, lab, u)
}

func BenchmarkBipartite(b *testing.B) {
	mdl, lab, u := benchDAG(10, 3, 3, 3, true)
	benchSolve(b, Bipartite, mdl, lab, u)
}

func BenchmarkBipartiteBasic(b *testing.B) {
	mdl, lab, u := benchDAG(10, 2, 3, 3, true)
	benchSolve(b, BipartiteBasic, mdl, lab, u)
}

func BenchmarkRelOrder(b *testing.B) {
	mdl, lab, u := benchDAG(10, 1, 2, 3, false)
	benchSolve(b, RelOrder, mdl, lab, u)
}

func BenchmarkGeneral(b *testing.B) {
	mdl, lab, u := benchDAG(8, 2, 3, 2, false)
	benchSolve(b, General, mdl, lab, u)
}

// Layer add/merge microbenchmarks: the DP inner-loop primitives. Both must
// report 0 allocs/op — every buffer is recycled across resets.

func BenchmarkLayerAddPacked(b *testing.B) {
	const states = 4096
	var l layerTable
	var w [4]int16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.reset(4, states)
		for s := 0; s < states; s++ {
			w[0], w[1] = int16(s), int16(s>>4)
			w[2], w[3] = int16(s&15), -1
			l.addWords(w[:], 1.0/states)
		}
		if l.len() == 0 {
			b.Fatal("empty layer")
		}
	}
}

func BenchmarkLayerAddWide(b *testing.B) {
	const states = 4096
	var l layerTable
	var w [9]int16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.reset(9, states)
		for s := 0; s < states; s++ {
			for k := range w {
				w[k] = int16(s >> uint(k&3))
			}
			l.addWords(w[:], 1.0/states)
		}
		if l.len() == 0 {
			b.Fatal("empty layer")
		}
	}
}

func BenchmarkLayerMerge(b *testing.B) {
	const states = 4096
	var src, dst layerTable
	src.reset(4, states)
	var w [4]int16
	for s := 0; s < states; s++ {
		w[0], w[1], w[2] = int16(s), int16(s>>4), int16(s&7)
		src.addWords(w[:], 1.0/states)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.reset(4, states)
		dst.mergeFrom(&src)
		if dst.len() != src.len() {
			b.Fatalf("merge lost states: %d != %d", dst.len(), src.len())
		}
	}
}

// The layer primitives must be allocation-free in steady state: after a
// warm-up pass sizes the backing arrays, add and merge allocate nothing.
func TestLayerOpsAllocFree(t *testing.T) {
	const states = 2048
	var l, src, dst layerTable
	var w [4]int16
	fill := func(l *layerTable) {
		l.reset(4, states)
		for s := 0; s < states; s++ {
			w[0], w[1], w[2] = int16(s), int16(s>>3), int16(s&31)
			l.addWords(w[:], 0.5)
		}
	}
	fill(&l) // warm up
	if n := testing.AllocsPerRun(10, func() { fill(&l) }); n != 0 {
		t.Fatalf("layer add allocates %v allocs/op in steady state, want 0", n)
	}
	fill(&src)
	dst.reset(4, states)
	dst.mergeFrom(&src) // warm up
	if n := testing.AllocsPerRun(10, func() {
		dst.reset(4, states)
		dst.mergeFrom(&src)
	}); n != 0 {
		t.Fatalf("layer merge allocates %v allocs/op in steady state, want 0", n)
	}
}

// Steady-state solves must not allocate per transition: growing the
// instance by orders of magnitude in expansion work must not grow
// allocations with it (the per-solve setup is the only allocating part).
func TestSolveAllocsIndependentOfWork(t *testing.T) {
	smallM, smallL, smallU := benchTwoLabel(10, 2, 3)
	bigM, bigL, bigU := benchTwoLabel(30, 2, 3)
	solve := func(mdl *rim.Model, lab *label.Labeling, u pattern.Union) func() {
		return func() {
			if _, err := TwoLabel(mdl, lab, u, Options{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	solve(smallM, smallL, smallU)() // warm the arena pool
	solve(bigM, bigL, bigU)()
	small := testing.AllocsPerRun(5, solve(smallM, smallL, smallU))
	big := testing.AllocsPerRun(5, solve(bigM, bigL, bigU))
	// The big instance does ~100x (hundreds of thousands) more transitions;
	// if the inner loop allocated per transition, big would exceed small by
	// orders of magnitude. A slack of 64 absorbs GC timing flushing the
	// arena pool mid-measurement while still failing on any per-transition
	// allocation.
	if big > small+64 {
		t.Fatalf("allocations scale with solve size: small=%v big=%v", small, big)
	}
}
