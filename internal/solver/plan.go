package solver

import (
	"fmt"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rank"
	"probpref/internal/rim"
)

// This file implements the compile-once / solve-many layer: a Plan is the
// session-independent compilation of a pattern union against a reference
// ranking and labeling — the tracker/constraint tables, item bitmasks, the
// per-step feed and gap schedule, the state width, everything the DP layer
// walk needs except the sessions' insertion probabilities. A Plan compiled
// once serves any number of sessions sharing the reference ranking: Solve
// runs the single-session executor, SolveSessions drives many sessions' Pi
// rows through one layer walk with a per-lane mass vector per state, and
// SolveSessionsShared additionally shares the walk prefix between plans
// whose absorption cannot trigger before a known insertion step.
//
// Each of the four DP solvers is split into a compile half (compileTwoLabel,
// compileBipartite, compileBipartiteBasic, compileRelOrder) and execute
// halves; the public single-shot entry points (TwoLabel, Bipartite, ...)
// compile into the pooled arena and run immediately, staying allocation-free
// in steady state, while CompilePlan compiles onto the heap so the plan can
// outlive the solve in a cache.

// planAlloc selects where compiled-plan setup memory comes from: the pooled
// solve arena for the compile-and-run-once path, or the heap (nil arena) for
// plans that outlive the solve in a cache.
type planAlloc struct{ ar *arena }

func (a planAlloc) ints(n int) []int {
	if a.ar != nil {
		return a.ar.ints.take(n)
	}
	return make([]int, n)
}

func (a planAlloc) bools(n int) []bool {
	if a.ar != nil {
		return a.ar.bools.take(n)
	}
	return make([]bool, n)
}

func (a planAlloc) sets(n int) []label.Set {
	if a.ar != nil {
		return a.ar.sets.take(n)
	}
	return make([]label.Set, n)
}

func (a planAlloc) u64s(n int) []uint64 {
	if a.ar != nil {
		return a.ar.u64s.take(n)
	}
	return make([]uint64, n)
}

func (a planAlloc) intSlices(n int) [][]int {
	if a.ar != nil {
		return a.ar.intSlices.take(n)
	}
	return make([][]int, n)
}

// Algo identifies one of the exact DP solvers a Plan can compile to.
type Algo int

const (
	AlgoTwoLabel Algo = iota
	AlgoBipartite
	AlgoBipartiteBasic
	AlgoRelOrder
)

func (a Algo) String() string {
	switch a {
	case AlgoTwoLabel:
		return "twolabel"
	case AlgoBipartite:
		return "bipartite"
	case AlgoBipartiteBasic:
		return "bipartite-basic"
	case AlgoRelOrder:
		return "relorder"
	}
	return fmt.Sprintf("algo(%d)", int(a))
}

// AlgoFor returns the algorithm Auto dispatches to for the union: the most
// specific exact solver supporting its shape.
func AlgoFor(u pattern.Union) Algo {
	switch {
	case u.AllTwoLabel():
		return AlgoTwoLabel
	case u.AllBipartite():
		return AlgoBipartite
	default:
		return AlgoRelOrder
	}
}

// Plan is a compiled union: everything session-independent about solving
// one pattern union with one exact solver against sessions sharing a
// reference ranking. Plans are immutable after CompilePlan and safe for
// concurrent use by any number of solves.
type Plan struct {
	algo     Algo
	m        int
	sigma    rank.Ranking
	isConst  bool
	constVal float64

	two   *twoLabelPlan
	bip   *bipPlan
	basic *basicPlan
	rel   *relPlan

	sharedKey string // non-empty iff eligible for shared-prefix solving
}

// Algo returns the solver the plan compiles to.
func (p *Plan) Algo() Algo { return p.algo }

// M returns the number of items of the plan's reference ranking.
func (p *Plan) M() int { return p.m }

// Sigma returns the reference ranking the plan was compiled against.
// Callers must not mutate it.
func (p *Plan) Sigma() rank.Ranking { return p.sigma }

// SharedKey identifies the plan's shareable walk schedule: plans with the
// same non-empty key (necessarily RelOrder plans over the same reference
// ranking and involved-item schedule) can solve the same session list
// through SolveSessionsShared with a common walk prefix. An empty key means
// the plan is not eligible for prefix sharing.
func (p *Plan) SharedKey() string { return p.sharedKey }

// CompilePlan compiles the union once for the given algorithm, reference
// ranking and labeling. The result is heap-allocated (independent of the
// pooled solve arenas) so it can live in a cache; opts only contributes
// compile-time bounds (MaxInvolved).
func CompilePlan(algo Algo, sigma rank.Ranking, lab *label.Labeling, u pattern.Union, opts Options) (*Plan, error) {
	p := &Plan{algo: algo, m: len(sigma), sigma: sigma}
	if len(u) == 0 {
		p.isConst, p.constVal = true, 0
		return p, nil
	}
	heap := planAlloc{}
	switch algo {
	case AlgoTwoLabel:
		p.two = new(twoLabelPlan)
		if err := compileTwoLabel(p.two, heap, sigma, lab, u); err != nil {
			return nil, err
		}
	case AlgoBipartite:
		p.bip = new(bipPlan)
		if err := compileBipartite(p.bip, heap, sigma, lab, u); err != nil {
			return nil, err
		}
		if p.bip.constOne {
			p.isConst, p.constVal = true, 1
		}
	case AlgoBipartiteBasic:
		p.basic = new(basicPlan)
		if err := compileBipartiteBasic(p.basic, heap, sigma, lab, u); err != nil {
			return nil, err
		}
		if p.basic.constOne {
			p.isConst, p.constVal = true, 1
		}
	case AlgoRelOrder:
		p.rel = new(relPlan)
		if err := compileRelOrder(p.rel, heap, sigma, lab, u, opts.maxInvolved()); err != nil {
			return nil, err
		}
		if p.rel.constOne {
			p.isConst, p.constVal = true, 1
		} else if p.rel.useMasks && p.rel.activation > 0 {
			p.sharedKey = p.rel.scheduleKey(sigma)
		}
	default:
		return nil, fmt.Errorf("solver: unknown algorithm %v", algo)
	}
	return p, nil
}

// check verifies the model is compatible with the plan: same item count and
// the same reference ranking (the plan's insertion-step schedule is a
// function of sigma).
func (p *Plan) check(mdl *rim.Model) error {
	if mdl.M() != p.m {
		return fmt.Errorf("solver: plan compiled for m=%d, model has m=%d", p.m, mdl.M())
	}
	sg := mdl.Sigma()
	for i, it := range p.sigma {
		if sg[i] != it {
			return fmt.Errorf("solver: model reference ranking differs from the plan's at rank %d", i)
		}
	}
	return nil
}

// Solve evaluates the plan against one session's insertion probabilities.
// The result is bit-identical to the corresponding single-shot solver on the
// same inputs.
func (p *Plan) Solve(mdl *rim.Model, opts Options) (float64, error) {
	if err := p.check(mdl); err != nil {
		return 0, err
	}
	if p.isConst {
		return p.constVal, nil
	}
	ar := getArena()
	defer putArena(ar)
	switch p.algo {
	case AlgoTwoLabel:
		return runTwoLabel(ar, p.two, mdl, opts)
	case AlgoBipartite:
		return runBipartite(ar, p.bip, mdl, opts)
	case AlgoBipartiteBasic:
		return runBipartiteBasic(ar, p.basic, mdl, opts)
	default:
		return runRelOrder(ar, p.rel, mdl, opts)
	}
}

// SolveSessions evaluates the plan against many sessions in one layer walk.
// All models must share the plan's reference ranking; they differ only in
// their insertion probabilities (Pi). The walk's layer structure is a
// function of the plan alone — every emission happens for every session, a
// zero insertion probability merely contributes zero mass — so one walk
// serves all sessions, folding a per-lane mass vector at each emission.
// out[l] is bit-identical to p.Solve(models[l], opts): per lane the float
// operations, their order, and the deterministic chunked parallel schedule
// are exactly the single-session solver's.
func SolveSessions(p *Plan, models []*rim.Model, opts Options) ([]float64, error) {
	out := make([]float64, len(models))
	if len(models) == 0 {
		return out, nil
	}
	for _, mdl := range models {
		if err := p.check(mdl); err != nil {
			return nil, err
		}
	}
	if p.isConst {
		for l := range out {
			out[l] = p.constVal
		}
		return out, nil
	}
	ar := getArena()
	defer putArena(ar)
	var err error
	switch p.algo {
	case AlgoTwoLabel:
		err = runTwoLabelVec(ar, p.two, models, opts, out)
	case AlgoBipartite:
		err = runBipartiteVec(ar, p.bip, models, opts, out)
	case AlgoBipartiteBasic:
		err = runBipartiteBasicVec(ar, p.basic, models, opts, out)
	default:
		err = runRelOrderVec(ar, p.rel, models, opts, out)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SolveSessionsShared solves several plans against the same session list,
// sharing work where the plans allow it. Plans with the same non-empty
// SharedKey — RelOrder plans over the same reference ranking whose unions
// differ but walk the same involved-item insertion schedule, e.g. unions
// differing only in a suffix of constraints — run one common batched walk up
// to the earliest step at which any plan's pattern could first match (its
// activation step), snapshot the layer there, and continue separately.
// Before its activation step a plan's walk performs no absorption and its
// expansion does not consult the union at all, so the shared prefix is
// bit-identical to each plan's own walk. Remaining plans are solved
// independently. outs[i] matches SolveSessions(plans[i], models, opts)
// bit-for-bit.
func SolveSessionsShared(plans []*Plan, models []*rim.Model, opts Options) ([][]float64, error) {
	outs := make([][]float64, len(plans))
	byKey := make(map[string][]int)
	for i, p := range plans {
		if k := p.SharedKey(); k != "" {
			byKey[k] = append(byKey[k], i)
		}
	}
	solo := func(i int) error {
		res, err := SolveSessions(plans[i], models, opts)
		outs[i] = res
		return err
	}
	done := make([]bool, len(plans))
	for _, idxs := range byKey {
		if len(idxs) < 2 {
			continue
		}
		group := make([]*relPlan, len(idxs))
		for gi, i := range idxs {
			for _, mdl := range models {
				if err := plans[i].check(mdl); err != nil {
					return nil, err
				}
			}
			group[gi] = plans[i].rel
		}
		groupOuts := make([][]float64, len(idxs))
		for gi := range groupOuts {
			groupOuts[gi] = make([]float64, len(models))
		}
		if err := solveSharedRelOrder(group, models, opts, groupOuts); err != nil {
			return nil, err
		}
		for gi, i := range idxs {
			outs[i] = groupOuts[gi]
			done[i] = true
		}
	}
	for i := range plans {
		if !done[i] {
			if err := solo(i); err != nil {
				return nil, err
			}
		}
	}
	return outs, nil
}

// layerSnapshot captures a layer's full contents (keys in insertion order
// plus per-state value windows) so a shared walk prefix can be restored as
// the starting layer of several continuation walks.
type layerSnapshot struct {
	words  int
	stride int
	packed bool
	keys64 []uint64
	keysW  []int16
	vals   []float64
}

func snapshotLayer(l *layerTable) *layerSnapshot {
	s := &layerSnapshot{words: l.words, stride: l.stride, packed: l.packed}
	s.keys64 = append(s.keys64, l.keys64...)
	s.keysW = append(s.keysW, l.keysW...)
	s.vals = append(s.vals, l.vals...)
	return s
}

// restore rebuilds the snapshot into l: states re-added in their original
// insertion order with their exact values (each key is distinct within a
// layer, so re-adding reproduces both the order and the bits).
func (s *layerSnapshot) restore(l *layerTable) {
	n := len(s.vals) / s.stride
	l.resetStride(s.words, n, s.stride)
	for i := 0; i < n; i++ {
		var idx int
		if s.packed {
			idx = l.slot64(s.keys64[i])
		} else {
			idx = l.slotWords(s.keysW[i*s.words : (i+1)*s.words])
		}
		copy(l.vals[idx*s.stride:(idx+1)*s.stride], s.vals[i*s.stride:(i+1)*s.stride])
	}
}
