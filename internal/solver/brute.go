package solver

import (
	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rank"
	"probpref/internal/rim"
)

// Brute computes Pr(G | sigma, Pi, lambda) by enumerating every ranking
// (Equation 2 verbatim). O(m! * m^2): intended as ground truth in tests and
// for tiny instances (m <= 8).
func Brute(model *rim.Model, lab *label.Labeling, u pattern.Union) float64 {
	total := 0.0
	rank.ForEachPermutation(model.M(), func(tau rank.Ranking) bool {
		if u.Matches(tau, lab) {
			total += model.Prob(tau)
		}
		return true
	})
	return total
}

// BruteConstraints is Brute under min/max constraint semantics
// (MatchesConstraints); ground truth for the upper-bound solver.
func BruteConstraints(model *rim.Model, lab *label.Labeling, u pattern.Union) float64 {
	total := 0.0
	rank.ForEachPermutation(model.M(), func(tau rank.Ranking) bool {
		if u.MatchesConstraints(tau, lab) {
			total += model.Prob(tau)
		}
		return true
	})
	return total
}
