package cluster

import (
	"container/list"
	"strings"
	"sync"
)

// resultCache is the coordinator-level solve cache: an LRU over merged
// query results, keyed like the service's solve cache — model namespace,
// NUL separator, then the compiled request's canonical key — so identical
// (model, union) requests cross shard boundaries once no matter which
// client repeats them. Entries hold the fully merged per-session form; the
// emit layer strips rows the client did not ask for.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	hits, misses uint64
}

type cacheEntry struct {
	key string
	res *ResultJSON
}

// newResultCache returns an LRU holding up to capacity merged results.
func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, entries: make(map[string]*list.Element), order: list.New()}
}

// Get returns the cached merged result for key, or nil.
func (c *resultCache) Get(key string) *ResultJSON {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res
}

// Put stores a merged result, evicting the least recently used entry past
// capacity. The result must not be mutated after Put.
func (c *resultCache) Put(key string, res *ResultJSON) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.entries, el.Value.(*cacheEntry).key)
	}
}

// PurgePrefix drops every entry whose key starts with prefix (the model's
// namespace) and returns the number dropped. Model deletion must call this:
// unlike the service's solve cache, whose keys embed the session-model
// content, these keys are addressed by model *name*, so a model re-created
// under the same name would otherwise serve its predecessor's answers.
func (c *resultCache) PurgePrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*cacheEntry); strings.HasPrefix(e.key, prefix) {
			c.order.Remove(el)
			delete(c.entries, e.key)
			n++
		}
		el = next
	}
	return n
}

// Len returns the number of cached results.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// stats snapshots hit/miss counters and size.
func (c *resultCache) stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len()
}
