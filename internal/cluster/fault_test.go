package cluster

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"probpref/internal/server"
)

// Fault-injection suite: shards die mid-fan-out, respond slowly enough to
// trigger hedges, or reject partitions outright, and the coordinator must
// retry onto replicas, mark degraded answers, exclude unhealthy members and
// recover them — all without leaking goroutines. Run under -race (CI does).

func boolBody() string {
	return fmt.Sprintf(`{"kind":"bool","query":%q}`, demoQuery)
}

// waitGoroutines waits for the goroutine count to drop back to the baseline
// (plus scheduler slack), dumping stacks on timeout.
func waitGoroutines(t *testing.T, base int, what string) {
	t.Helper()
	const slack = 3
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+slack {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("%s leaked goroutines: %d now vs %d baseline\n%s",
		what, runtime.NumGoroutine(), base, buf[:n])
}

// TestClusterOwnerFailureRetriesReplica kills one partition's owner: the
// coordinator must retry the replica immediately and still answer
// byte-identically to the single process.
func TestClusterOwnerFailureRetriesReplica(t *testing.T) {
	db := testDB(t, 6)
	h := newHarness(t, db, 3, 3, Config{CacheSize: -1})
	owner, replica := h.shardURLsFor(0)
	if replica == "" {
		t.Fatal("partition 0 has no replica")
	}
	h.ft.set(owner, fault{err: errors.New("injected: owner down")})
	h.checkEqual(boolBody())
	if stats := h.coord.Stats(); stats.Retries == 0 {
		t.Fatalf("retries = 0, want > 0 after owner failure: %+v", stats)
	}
	if stats := h.coord.Stats(); stats.Degraded != 0 {
		t.Fatalf("degraded = %d, want 0: the replica served every partition", stats.Degraded)
	}
}

// TestClusterSlowOwnerHedgesToReplica slows one shard past the hedge
// trigger: the replica's duplicate attempt must win and the answer stay
// byte-identical.
func TestClusterSlowOwnerHedgesToReplica(t *testing.T) {
	db := testDB(t, 6)
	h := newHarness(t, db, 3, 3, Config{CacheSize: -1, HedgeAfter: time.Millisecond})
	owner, replica := h.shardURLsFor(0)
	if replica == "" {
		t.Fatal("partition 0 has no replica")
	}
	h.ft.set(owner, fault{delay: 400 * time.Millisecond})
	h.checkEqual(boolBody())
	stats := h.coord.Stats()
	if stats.Hedges == 0 || stats.HedgeWins == 0 {
		t.Fatalf("hedges = %d, hedge wins = %d, want both > 0 with a slow owner: %+v",
			stats.Hedges, stats.HedgeWins, stats)
	}
}

// killPartition installs a fault on both copies of one partition of the
// default model and returns the partition's shard model name.
func (h *harness) killPartition(partition int) string {
	h.t.Helper()
	model := PartitionModel(server.DefaultModel, partition)
	owner, replica := h.shardURLsFor(partition)
	h.ft.set(owner, fault{status: http.StatusInternalServerError, bodySubstr: model})
	if replica != "" {
		h.ft.set(replica, fault{status: http.StatusInternalServerError, bodySubstr: model})
	}
	return model
}

// TestClusterDegradedPartialFailure kills one partition on owner and
// replica: the merged answer must arrive with a cluster partial-failure
// marker, count toward the degraded stat, and never be cached — a healthy
// re-query gets the full answer again.
func TestClusterDegradedPartialFailure(t *testing.T) {
	db := testDB(t, 6)
	h := newHarness(t, db, 3, 3, Config{})
	h.killPartition(1)

	status, body := post(t, h.coordSrv.URL, boolBody())
	if status != http.StatusOK {
		t.Fatalf("degraded query status = %d, want 200\n%s", status, body)
	}
	var resp struct {
		Result *ResultJSON `json:"result"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Result == nil || resp.Result.Cluster == nil {
		t.Fatalf("degraded answer carries no cluster marker:\n%s", body)
	}
	diag := resp.Result.Cluster
	if !diag.Partial || len(diag.FailedPartitions) != 1 || diag.FailedPartitions[0] != 1 {
		t.Fatalf("cluster diag = %+v, want partial with failed partition 1", diag)
	}
	if len(diag.Errors) != 1 || !strings.Contains(diag.Errors[0], "injected") {
		t.Fatalf("cluster diag errors = %v, want the injected fault surfaced", diag.Errors)
	}
	if stats := h.coord.Stats(); stats.Degraded == 0 {
		t.Fatalf("degraded stat = 0 after a partial answer: %+v", stats)
	}

	// Heal the cluster: the same request must now produce a full answer over
	// every session — i.e. the degraded one was not cached. (Byte equality
	// with the single process is not checked here because the surviving
	// shards' solve caches are warm from the degraded round.)
	for _, srv := range h.shardSrvs {
		h.ft.set(srv.URL, fault{})
	}
	status, body = post(t, h.coordSrv.URL, boolBody())
	if status != http.StatusOK {
		t.Fatalf("healed query status = %d\n%s", status, body)
	}
	var healed struct {
		Result *ResultJSON `json:"result"`
	}
	if err := json.Unmarshal(body, &healed); err != nil {
		t.Fatal(err)
	}
	if healed.Result == nil || healed.Result.Cluster != nil {
		t.Fatalf("healed answer still degraded — was the degraded result cached?\n%s", body)
	}
	if healed.Result.LiveSessions != 6 {
		t.Fatalf("healed answer covers %d sessions, want 6\n%s", healed.Result.LiveSessions, body)
	}
}

// TestClusterAllPartitionsFail502 kills every shard: the coordinator must
// answer 502 naming the failure, not an empty merge.
func TestClusterAllPartitionsFail502(t *testing.T) {
	db := testDB(t, 4)
	h := newHarness(t, db, 2, 2, Config{})
	for _, srv := range h.shardSrvs {
		h.ft.set(srv.URL, fault{err: errors.New("injected: down")})
	}
	status, body := post(t, h.coordSrv.URL, boolBody())
	if status != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502\n%s", status, body)
	}
	if !strings.Contains(string(body), "partitions failed") {
		t.Fatalf("502 body does not name the fan-out failure: %s", body)
	}
}

// TestClusterSingleShardFailure502 covers the no-replica ring: one shard,
// one failure, no hedge path — the client sees 502.
func TestClusterSingleShardFailure502(t *testing.T) {
	db := testDB(t, 3)
	h := newHarness(t, db, 1, 2, Config{})
	h.ft.set(h.shardSrvs[0].URL, fault{err: errors.New("injected: down")})
	status, body := post(t, h.coordSrv.URL, boolBody())
	if status != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502\n%s", status, body)
	}
}

// TestClusterMidBatchShardFailure kills one partition during a batch: every
// batch result must carry the shared partial-failure marker while the
// healthy partitions' contributions survive.
func TestClusterMidBatchShardFailure(t *testing.T) {
	db := testDB(t, 6)
	h := newHarness(t, db, 3, 3, Config{})
	h.killPartition(2)
	body := fmt.Sprintf(`{"requests":[{"kind":"bool","query":%q},{"kind":"topk","query":%q,"k":2}]}`,
		demoQuery, demoQuery)
	status, raw := post(t, h.coordSrv.URL, body)
	if status != http.StatusOK {
		t.Fatalf("batch status = %d, want 200 degraded\n%s", status, raw)
	}
	var resp struct {
		Results []ResultJSON      `json:"results"`
		Batch   *server.BatchJSON `json:"batch"`
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("results = %d, want 2\n%s", len(resp.Results), raw)
	}
	for i, res := range resp.Results {
		if res.Cluster == nil || !res.Cluster.Partial {
			t.Fatalf("batch result %d missing the partial-failure marker\n%s", i, raw)
		}
	}
	if resp.Batch == nil {
		t.Fatalf("degraded batch dropped the batch accounting\n%s", raw)
	}
}

// TestClusterMidStreamShardFailure kills one partition under a streaming
// request: the NDJSON head must carry the partial-failure marker and the
// rows cover exactly the surviving sessions.
func TestClusterMidStreamShardFailure(t *testing.T) {
	db := testDB(t, 6)
	h := newHarness(t, db, 3, 3, Config{})
	h.killPartition(1)
	body := fmt.Sprintf(`{"kind":"bool","query":%q,"stream":true}`, demoQuery)
	resp, err := http.Post(h.coordSrv.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d, want 200 degraded", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("stream has no head line: %v", sc.Err())
	}
	var head ResultJSON
	if err := json.Unmarshal(sc.Bytes(), &head); err != nil {
		t.Fatalf("head line is not JSON: %v\n%s", err, sc.Text())
	}
	if head.Cluster == nil || !head.Cluster.Partial {
		t.Fatalf("degraded stream head missing the cluster marker: %s", sc.Text())
	}
	rows := 0
	for sc.Scan() {
		if strings.Contains(sc.Text(), `"error"`) {
			t.Fatalf("stream row carries an error: %s", sc.Text())
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// 6 sessions over 3 partitions = 2 per partition; one partition lost.
	if rows != 4 {
		t.Fatalf("stream rows = %d, want 4 surviving sessions", rows)
	}
}

// TestClusterProbeExclusionRecovery drives the health prober directly: a
// failing shard is excluded after FailAfter consecutive probe failures and
// re-admitted on its first healthy probe.
func TestClusterProbeExclusionRecovery(t *testing.T) {
	db := testDB(t, 4)
	h := newHarness(t, db, 2, 2, Config{FailAfter: 2})
	bad := h.shardSrvs[1].URL
	h.ft.set(bad, fault{err: errors.New("injected: unreachable")})

	ctx := t.Context()
	h.coord.ProbeNow(ctx)
	h.coord.ProbeNow(ctx)
	stats := h.coord.Stats()
	var row *ShardStatsJSON
	for i := range stats.Shards {
		if stats.Shards[i].URL == bad {
			row = &stats.Shards[i]
		}
	}
	if row == nil || !row.Excluded || row.ConsecutiveFails < 2 {
		t.Fatalf("shard not excluded after 2 failed probes: %+v", stats.Shards)
	}

	h.ft.set(bad, fault{})
	h.coord.ProbeNow(ctx)
	stats = h.coord.Stats()
	for _, s := range stats.Shards {
		if s.URL == bad && s.Excluded {
			t.Fatalf("shard still excluded after a healthy probe: %+v", s)
		}
	}
	// With the shard healthy again, queries are byte-identical end to end.
	h.checkEqual(boolBody())
}

// TestClusterExcludedOwnerRoutesToReplica excludes one shard via probes and
// checks queries route around it (replica promoted to primary) without
// degradation.
func TestClusterExcludedOwnerRoutesToReplica(t *testing.T) {
	db := testDB(t, 6)
	h := newHarness(t, db, 3, 3, Config{FailAfter: 1, CacheSize: -1})
	owner, replica := h.shardURLsFor(0)
	if replica == "" {
		t.Fatal("partition 0 has no replica")
	}
	h.ft.set(owner, fault{err: errors.New("injected: unreachable")})
	h.coord.ProbeNow(t.Context())
	h.checkEqual(boolBody())
	if stats := h.coord.Stats(); stats.Degraded != 0 {
		t.Fatalf("degraded = %d, want 0 when routing around an excluded owner", stats.Degraded)
	}
}

// TestClusterNoGoroutineLeaks runs hedged, retried and failed queries and
// checks the coordinator's goroutine count settles back to baseline —
// cancelled attempts and timed-out hedges must not linger.
func TestClusterNoGoroutineLeaks(t *testing.T) {
	db := testDB(t, 6)
	h := newHarness(t, db, 3, 3, Config{CacheSize: -1, HedgeAfter: time.Millisecond})
	for i := 0; i < 2; i++ {
		post(t, h.coordSrv.URL, boolBody()) // warm paths and pools
	}
	base := runtime.NumGoroutine()

	h.ft.set(h.shardSrvs[0].URL, fault{delay: 30 * time.Millisecond})
	for i := 0; i < 3; i++ {
		post(t, h.coordSrv.URL, boolBody())
	}
	h.ft.set(h.shardSrvs[0].URL, fault{err: errors.New("injected: down")})
	for i := 0; i < 3; i++ {
		post(t, h.coordSrv.URL, boolBody())
	}
	h.ft.set(h.shardSrvs[0].URL, fault{})
	waitGoroutines(t, base, "hedged and failed fan-outs")
}

// TestClusterDeletePurgesResultCache is the regression test for the stale
// solve-cache bug: deleting a model through the coordinator must purge the
// coordinator's merged-result cache and fan the delete out to every shard,
// so no later query can serve the deleted model from any cache tier.
func TestClusterDeletePurgesResultCache(t *testing.T) {
	db := testDB(t, 6)
	h := newHarness(t, db, 3, 3, Config{})
	body := boolBody()

	if status, _ := post(t, h.coordSrv.URL, body); status != http.StatusOK {
		t.Fatalf("priming query failed with %d", status)
	}
	if stats := h.coord.Stats(); stats.Cache.Size == 0 {
		t.Fatalf("priming query was not cached: %+v", stats.Cache)
	}

	req, err := http.NewRequest(http.MethodDelete, h.coordSrv.URL+"/models/"+server.DefaultModel, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d, want 200", resp.StatusCode)
	}

	// The cached merged result must be gone: the same query now fails with
	// 404 from the shards instead of serving stale bytes from the cache.
	status, raw := post(t, h.coordSrv.URL, body)
	if status != http.StatusNotFound {
		t.Fatalf("query after delete = %d, want 404 (stale cache served?)\n%s", status, raw)
	}
	if stats := h.coord.Stats(); stats.Cache.Size != 0 {
		t.Fatalf("result cache still holds %d entries for the deleted model", stats.Cache.Size)
	}

	// The shards no longer list any partition of the model.
	mresp, err := http.Get(h.coordSrv.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var mr server.ModelsResponse
	if err := json.NewDecoder(mresp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	for _, m := range mr.Models {
		if m.Name == server.DefaultModel {
			t.Fatalf("deleted model still listed: %+v", mr.Models)
		}
	}
}

// TestClusterDeleteUnknownModel404 checks the delete fan-out propagates a
// miss on every shard as one 404.
func TestClusterDeleteUnknownModel404(t *testing.T) {
	db := testDB(t, 4)
	h := newHarness(t, db, 2, 2, Config{})
	req, err := http.NewRequest(http.MethodDelete, h.coordSrv.URL+"/models/nope", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown model = %d, want 404", resp.StatusCode)
	}
}

// TestClusterShardMembership exercises POST /cluster/shards and
// DELETE /cluster/shards/{name}: adds are rejected on duplicate names,
// removal of the last member is refused.
func TestClusterShardMembership(t *testing.T) {
	db := testDB(t, 4)
	h := newHarness(t, db, 2, 2, Config{})

	status := postJSON(t, h.coordSrv.URL+"/cluster/shards", `{"name":"s0","url":"http://x"}`)
	if status != http.StatusConflict && status != http.StatusBadRequest {
		t.Fatalf("duplicate shard add = %d, want a client error", status)
	}

	for _, name := range []string{"s0", "s1"} {
		req, err := http.NewRequest(http.MethodDelete, h.coordSrv.URL+"/cluster/shards/"+name, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if name == "s0" && resp.StatusCode != http.StatusOK {
			t.Fatalf("removing s0 = %d, want 200", resp.StatusCode)
		}
		if name == "s1" && resp.StatusCode == http.StatusOK {
			t.Fatal("removing the last shard must be refused")
		}
	}
}

// TestClusterShedOwnerRetriesReplica injects 503 (an admission-gate shed,
// the overload signal of internal/server) on one partition's owner: the
// coordinator must treat it as retriable and answer from the replica
// byte-identically — and, unlike a real fault, the shed must count in the
// sheds stat without dirtying the owner's health. A transient overload
// burst must never eject a live shard from the ring.
func TestClusterShedOwnerRetriesReplica(t *testing.T) {
	db := testDB(t, 6)
	// FailAfter 1: a single recordFailure would exclude the owner — the
	// sharpest possible check that sheds leave health untouched.
	h := newHarness(t, db, 3, 3, Config{CacheSize: -1, FailAfter: 1})
	owner, replica := h.shardURLsFor(0)
	if replica == "" {
		t.Fatal("partition 0 has no replica")
	}
	h.ft.set(owner, fault{status: http.StatusServiceUnavailable})

	h.checkEqual(boolBody())
	// Repeat traffic straight at the coordinator (checkEqual would warm the
	// single-process cache and skew its solve counters): every round sheds
	// on the owner and lands on the replica.
	for i := 0; i < 2; i++ {
		if status, body := post(t, h.coordSrv.URL, boolBody()); status != http.StatusOK {
			t.Fatalf("query %d during owner sheds: status %d\n%s", i, status, body)
		}
	}
	stats := h.coord.Stats()
	if stats.Sheds == 0 {
		t.Fatalf("sheds = 0 after 503s from the owner: %+v", stats)
	}
	if stats.Retries == 0 {
		t.Fatalf("retries = 0, want replica retries after sheds: %+v", stats)
	}
	if stats.Degraded != 0 {
		t.Fatalf("degraded = %d, want 0: every partition was served", stats.Degraded)
	}
	for _, s := range stats.Shards {
		if s.URL == owner {
			if s.Excluded || s.ConsecutiveFails != 0 {
				t.Fatalf("shed owner's health dirtied (excluded=%v, consecutive_fails=%d): an overload burst must not eject a shard", s.Excluded, s.ConsecutiveFails)
			}
		}
	}

	// Overload over: the owner serves again with clean health.
	h.ft.set(owner, fault{})
	if status, body := post(t, h.coordSrv.URL, boolBody()); status != http.StatusOK {
		t.Fatalf("query after overload cleared: status %d\n%s", status, body)
	}
}

// TestClusterAllCopiesShed502 sheds both copies of a partition: with no
// third copy to try, the client sees the fan-out failure, not a hang or an
// empty merge.
func TestClusterAllCopiesShed502(t *testing.T) {
	db := testDB(t, 4)
	h := newHarness(t, db, 2, 2, Config{})
	for _, srv := range h.shardSrvs {
		h.ft.set(srv.URL, fault{status: http.StatusServiceUnavailable})
	}
	status, body := post(t, h.coordSrv.URL, boolBody())
	if status != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502 when every copy sheds\n%s", status, body)
	}
}

// postJSON posts a JSON body and returns the status code.
func postJSON(t *testing.T, url, body string) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}
