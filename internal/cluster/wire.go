package cluster

import (
	"probpref/internal/server"
)

// ResultJSON is the coordinator's wire form of one merged /v1/query answer:
// the service's V1Result plus an optional cluster diagnostic. On a fully
// healthy fan-out the diagnostic is omitted and the marshaled bytes are
// identical to a single process serving the same model — the property the
// distributed-equivalence suite pins down.
type ResultJSON struct {
	server.V1Result
	// Cluster marks a degraded answer: present only when at least one
	// partition could not be reached on its owner or replica, in which case
	// the merged sections cover the surviving partitions only.
	Cluster *ClusterDiagJSON `json:"cluster,omitempty"`
}

// ClusterDiagJSON is the partial-failure marker of a degraded merged
// answer.
type ClusterDiagJSON struct {
	// Partial reports that one or more partitions are missing from the
	// merge.
	Partial bool `json:"partial"`
	// FailedPartitions lists the missing partition indexes, ascending.
	FailedPartitions []int `json:"failed_partitions"`
	// Errors holds one message per failed partition, aligned with
	// FailedPartitions.
	Errors []string `json:"errors"`
}

// ResponseJSON is the coordinator's response envelope for POST /v1/query,
// mirroring server.V1Response (and byte-identical to it when no result
// carries a cluster diagnostic).
type ResponseJSON struct {
	// Result is the single-request answer.
	Result *ResultJSON `json:"result,omitempty"`
	// Results holds the batch answers, in request order.
	Results []ResultJSON `json:"results,omitempty"`
	// Batch sums the shards' dedup accounting (batch form only).
	Batch *server.BatchJSON `json:"batch,omitempty"`
}

// ShardStatsJSON is one shard's row in GET /cluster/stats.
type ShardStatsJSON struct {
	// Name is the shard's cluster-unique name.
	Name string `json:"name"`
	// URL is the shard's base URL.
	URL string `json:"url"`
	// Excluded reports whether health tracking has routed traffic away from
	// the shard.
	Excluded bool `json:"excluded"`
	// ConsecutiveFails counts failures since the last success.
	ConsecutiveFails int `json:"consecutive_fails"`
	// Requests counts attempts sent to the shard.
	Requests uint64 `json:"requests"`
	// Failures counts attempts that failed (network error or 5xx).
	Failures uint64 `json:"failures"`
	// HedgeDelayMicros is the current hedge trigger for the shard in
	// microseconds (the latency p95 once warmed, the configured default
	// before).
	HedgeDelayMicros int64 `json:"hedge_delay_micros"`
}

// CacheStatsJSON reports the coordinator result cache in
// GET /cluster/stats.
type CacheStatsJSON struct {
	// Hits counts queries answered from the merged-result cache.
	Hits uint64 `json:"hits"`
	// Misses counts queries that had to fan out.
	Misses uint64 `json:"misses"`
	// Size is the current entry count.
	Size int `json:"size"`
}

// StatsJSON is the wire form of GET /cluster/stats.
type StatsJSON struct {
	// Partitions is the fixed partition count models are split into.
	Partitions int `json:"partitions"`
	// Shards lists the cluster members with health and latency state.
	Shards []ShardStatsJSON `json:"shards"`
	// Queries counts client queries (single requests and batch elements).
	Queries uint64 `json:"queries"`
	// Fanouts counts partition fetches issued.
	Fanouts uint64 `json:"fanouts"`
	// Hedges counts hedged (duplicate) attempts fired after the latency
	// trigger.
	Hedges uint64 `json:"hedges"`
	// HedgeWins counts hedged attempts that answered first.
	HedgeWins uint64 `json:"hedge_wins"`
	// Retries counts replica attempts fired because the primary failed
	// outright.
	Retries uint64 `json:"retries"`
	// Degraded counts merged answers that carried a partial-failure marker.
	Degraded uint64 `json:"degraded"`
	// Sheds counts shard attempts answered 503 by a shard's admission gate
	// (overload, retried on the replica without dirtying the owner's
	// health).
	Sheds uint64 `json:"sheds"`
	// Cache reports the merged-result cache.
	Cache CacheStatsJSON `json:"cache"`
}

// PlacementJSON is one partition's routing row in GET /cluster/placement.
type PlacementJSON struct {
	// Partition is the partition index.
	Partition int `json:"partition"`
	// Model is the partition's model name on the shards.
	Model string `json:"model"`
	// Owner is the shard that serves the partition.
	Owner string `json:"owner"`
	// Replica is the shard hedged retries fall back to ("" with a
	// single-shard ring).
	Replica string `json:"replica,omitempty"`
}

// PlacementResponse is the wire form of GET /cluster/placement.
type PlacementResponse struct {
	// Model is the base model name the placement was computed for.
	Model string `json:"model"`
	// Partitions holds one row per partition.
	Partitions []PlacementJSON `json:"partitions"`
}

// ShardRequest is the body of POST /cluster/shards: one shard to add.
type ShardRequest struct {
	// Name is the shard's cluster-unique name.
	Name string `json:"name"`
	// URL is the shard's base URL (e.g. http://host:port).
	URL string `json:"url"`
}

// ShardResponse is the wire form of POST /cluster/shards and
// DELETE /cluster/shards/{name}.
type ShardResponse struct {
	// Shard is the affected shard's name.
	Shard string `json:"shard"`
	// Shards is the resulting member count.
	Shards int `json:"shards"`
}
