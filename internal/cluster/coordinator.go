// Package cluster implements the sharded scale-out serving tier: a
// fan-out/merge coordinator in front of hardqd shard processes. Every model
// is split into a fixed number of contiguous session-range partitions
// (ppd.PartitionRange); each partition is served by a shard as an ordinary
// model named "<base>--p<i>", placed on an owner and a replica by a
// consistent-hash ring. The coordinator fans POST /v1/query out to the
// owning shards with per-session rows forced on, merges the partitions'
// answers per kind by refolding the concatenated rows through the very same
// aggregation code a single process runs — never by combining per-shard
// aggregates, whose float additions would reassociate — and therefore
// returns byte-identical responses to a single process over the unsplit
// model. Slow shards are hedged to the replica after a per-shard latency
// percentile, failed shards are excluded by consecutive-failure health
// tracking, and a coordinator-level result cache keyed like the service's
// solve cache answers repeated (model, union) requests without touching the
// shards.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"probpref/internal/server"
)

// ShardConfig names one shard of the cluster at construction.
type ShardConfig struct {
	// Name is the shard's cluster-unique name.
	Name string `json:"name"`
	// URL is the shard's base URL (e.g. http://host:port).
	URL string `json:"url"`
}

// Config tunes a Coordinator.
type Config struct {
	// Partitions is the number of contiguous session-range partitions every
	// model is split into; 0 means one per initial shard. The count is fixed
	// for the coordinator's lifetime — shards may join or leave, partitions
	// may move, but the data split never changes.
	Partitions int
	// VNodes is the virtual-point count per shard on the consistent-hash
	// ring (default 64).
	VNodes int
	// HedgeAfter is the hedge trigger used until a shard has enough latency
	// samples for a p95 estimate (default 50ms). A negative value disables
	// hedged duplicate attempts entirely — the replica is then used only for
	// retries after the owner fails outright, which keeps solve/cache-hit
	// counters byte-identical to a single process (a hedge that wins on a
	// cold replica reports fresh solves where the warm owner would have
	// reported cache hits).
	HedgeAfter time.Duration
	// FailAfter is how many consecutive failures exclude a shard from
	// routing (default 2; a later success re-admits it).
	FailAfter int
	// CacheSize is the merged-result cache capacity in entries; 0 means the
	// default (1024) and a negative value disables the cache.
	CacheSize int
	// ProbeEvery starts a background health prober hitting each shard's
	// /healthz at this period; 0 disables it (ProbeNow still works).
	ProbeEvery time.Duration
	// Transport overrides the HTTP transport used for shard requests.
	// Fault-injection tests drop connections and inject errors here.
	Transport http.RoundTripper
}

// DefaultCacheSize is the merged-result cache capacity used when
// Config.CacheSize is 0.
const DefaultCacheSize = 1024

// DefaultHedgeAfter is the cold-start hedge trigger used when
// Config.HedgeAfter is 0.
const DefaultHedgeAfter = 50 * time.Millisecond

func (c Config) withDefaults(shards int) Config {
	if c.Partitions <= 0 {
		c.Partitions = shards
	}
	if c.VNodes <= 0 {
		c.VNodes = defaultVNodes
	}
	if c.HedgeAfter == 0 {
		c.HedgeAfter = DefaultHedgeAfter
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.CacheSize == 0 {
		c.CacheSize = DefaultCacheSize
	}
	return c
}

// latWindow is the per-shard latency sample window sizing the hedge
// percentile, and latWarm the sample count below which the configured
// default trigger is used instead.
const (
	latWindow = 64
	latWarm   = 16
)

// minHedgeDelay floors the warmed p95 trigger: on microsecond-latency
// shards a raw p95 would hedge nearly every request that is the least bit
// heavier than the recent window, doubling load for no win.
const minHedgeDelay = time.Millisecond

// shard is one cluster member's runtime state.
type shard struct {
	name string
	url  string

	mu     sync.Mutex
	lat    [latWindow]time.Duration
	latIdx int
	latN   int
	fails  int // consecutive failures; excluded when >= failAfter

	requests atomic.Uint64
	failures atomic.Uint64
}

// recordSuccess stores a latency sample and clears the failure streak.
func (s *shard) recordSuccess(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lat[s.latIdx] = d
	s.latIdx = (s.latIdx + 1) % latWindow
	if s.latN < latWindow {
		s.latN++
	}
	s.fails = 0
}

// recordFailure extends the failure streak.
func (s *shard) recordFailure() {
	s.failures.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fails++
}

// excludedBy reports whether the shard's failure streak has reached the
// exclusion threshold.
func (s *shard) excludedBy(failAfter int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fails >= failAfter
}

// hedgeDelay returns the hedge trigger: the p95 of the recent latency
// window (floored by minHedgeDelay) once warmed, def before. A negative
// def means hedging is disabled and wins over any estimate.
func (s *shard) hedgeDelay(def time.Duration) time.Duration {
	if def < 0 {
		return def
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.latN < latWarm {
		return def
	}
	samples := make([]time.Duration, s.latN)
	copy(samples, s.lat[:s.latN])
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	if p95 := samples[(s.latN-1)*95/100]; p95 > minHedgeDelay {
		return p95
	}
	return minHedgeDelay
}

// Coordinator fans unified queries out over the cluster's shards and merges
// the partition answers. All methods are safe for concurrent use.
type Coordinator struct {
	cfg    Config
	client *http.Client
	cache  *resultCache

	mu     sync.Mutex
	shards []*shard
	ring   *ring

	queries   atomic.Uint64
	fanouts   atomic.Uint64
	hedges    atomic.Uint64
	hedgeWins atomic.Uint64
	retries   atomic.Uint64
	degraded  atomic.Uint64
	sheds     atomic.Uint64

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New builds a coordinator over the initial shard set and starts the
// background health prober when Config.ProbeEvery is set. Callers must
// Close it to stop the prober.
func New(shards []ShardConfig, cfg Config) (*Coordinator, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: no shards")
	}
	cfg = cfg.withDefaults(len(shards))
	c := &Coordinator{
		cfg:    cfg,
		client: &http.Client{Transport: cfg.Transport},
		stop:   make(chan struct{}),
	}
	if cfg.CacheSize > 0 {
		c.cache = newResultCache(cfg.CacheSize)
	}
	seen := make(map[string]bool, len(shards))
	for _, sc := range shards {
		if sc.Name == "" || sc.URL == "" {
			return nil, fmt.Errorf("cluster: shard needs name and url, got %+v", sc)
		}
		if seen[sc.Name] {
			return nil, fmt.Errorf("cluster: duplicate shard name %q", sc.Name)
		}
		seen[sc.Name] = true
		c.shards = append(c.shards, &shard{name: sc.Name, url: strings.TrimRight(sc.URL, "/")})
	}
	c.rebuildRing()
	if cfg.ProbeEvery > 0 {
		c.wg.Add(1)
		go c.probeLoop()
	}
	return c, nil
}

// Close stops the background health prober. It does not wait for in-flight
// queries.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// Partitions returns the fixed partition count.
func (c *Coordinator) Partitions() int { return c.cfg.Partitions }

// rebuildRing recomputes the ring from the current member list; c.mu must
// be held (or the coordinator not yet shared).
func (c *Coordinator) rebuildRing() {
	names := make([]string, len(c.shards))
	for i, s := range c.shards {
		names[i] = s.name
	}
	c.ring = buildRing(names, c.cfg.VNodes)
}

// AddShard adds a member at runtime and rehashes the ring. Partition counts
// never change; only placement does, so newly owned partitions must be
// provisioned on the shard (see Placement) before traffic depends on it.
func (c *Coordinator) AddShard(sc ShardConfig) error {
	if sc.Name == "" || sc.URL == "" {
		return fmt.Errorf("cluster: shard needs name and url")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.shards {
		if s.name == sc.Name {
			return fmt.Errorf("cluster: shard %q already registered", sc.Name)
		}
	}
	c.shards = append(c.shards, &shard{name: sc.Name, url: strings.TrimRight(sc.URL, "/")})
	c.rebuildRing()
	return nil
}

// RemoveShard drops a member and rehashes the ring.
func (c *Coordinator) RemoveShard(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, s := range c.shards {
		if s.name == name {
			if len(c.shards) == 1 {
				return fmt.Errorf("cluster: cannot remove the last shard %q", name)
			}
			c.shards = append(c.shards[:i], c.shards[i+1:]...)
			c.rebuildRing()
			return nil
		}
	}
	return fmt.Errorf("cluster: shard %q not registered", name)
}

// members snapshots the shard list and ring.
func (c *Coordinator) members() ([]*shard, *ring) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shards, c.ring
}

// PartitionModel is the shard-side model name of partition part of base:
// "<base>--p<part>". The "--p" infix cannot collide with a path separator
// or a cache namespace: model names are restricted to URL-safe tokens by
// the registry and namespaces are NUL-separated. Shard provisioning (hardqd
// -shard, ppdgen -partitions) uses the same naming, so placement rows map
// directly to model names and snapshot files.
func PartitionModel(base string, part int) string {
	return base + "--p" + strconv.Itoa(part)
}

// Placement computes where each partition of a base model lives on the
// current ring: the owner serving it and the replica hedged retries fall
// back to. Provisioning follows it — a shard must hold "<base>--p<i>" for
// every partition it owns or replicates.
func (c *Coordinator) Placement(base string) []PlacementJSON {
	if base == "" {
		base = server.DefaultModel
	}
	shards, ring := c.members()
	out := make([]PlacementJSON, c.cfg.Partitions)
	for i := range out {
		model := PartitionModel(base, i)
		owner, replica := ring.pick(model, nil)
		out[i] = PlacementJSON{Partition: i, Model: model}
		if owner >= 0 {
			out[i].Owner = shards[owner].name
		}
		if replica >= 0 {
			out[i].Replica = shards[replica].name
		}
	}
	return out
}

// probeLoop drives the background health prober.
func (c *Coordinator) probeLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.ProbeNow(context.Background())
		}
	}
}

// ProbeNow actively checks every shard's /healthz once, in parallel,
// feeding the same health tracking as query traffic: a probe failure
// extends the shard's failure streak toward exclusion, a success re-admits
// it. The background prober calls this on its ticker; tests call it
// directly to make exclusion and recovery deterministic.
func (c *Coordinator) ProbeNow(ctx context.Context) {
	shards, _ := c.members()
	var wg sync.WaitGroup
	for _, s := range shards {
		wg.Add(1)
		go func(s *shard) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, 5*time.Second)
			defer cancel()
			start := time.Now()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, s.url+"/healthz", nil)
			if err != nil {
				s.recordFailure()
				return
			}
			res, err := c.client.Do(req)
			if err != nil {
				s.recordFailure()
				return
			}
			io.Copy(io.Discard, res.Body)
			res.Body.Close()
			if res.StatusCode != http.StatusOK {
				s.recordFailure()
				return
			}
			s.recordSuccess(time.Since(start))
		}(s)
	}
	wg.Wait()
}

// errShardsDown reports a partition with no reachable owner or replica.
var errShardsDown = errors.New("cluster: no shard available")

// fetch resolves the partition key on the ring and posts body to
// /v1/query on the owning shard, hedging to the replica after the owner's
// latency trigger and retrying on it when the owner fails outright. The
// returned error is fatal (a deterministic 4xx the replica would repeat)
// or exhausted (owner and replica both failed).
func (c *Coordinator) fetch(ctx context.Context, key string, body []byte) (*server.V1Response, error) {
	c.fanouts.Add(1)
	shards, ring := c.members()
	owner, replica := ring.pick(key, nil)
	if owner == -1 {
		return nil, errShardsDown
	}
	// Data lives on the owner and replica only, so routing never walks past
	// them: an excluded owner demotes to the replica, an excluded replica
	// just loses the hedge.
	primary, secondary := owner, replica
	if shards[primary].excludedBy(c.cfg.FailAfter) {
		if secondary == -1 || shards[secondary].excludedBy(c.cfg.FailAfter) {
			return nil, fmt.Errorf("%w: partition %q owner and replica excluded", errShardsDown, key)
		}
		primary, secondary = secondary, -1
	} else if secondary != -1 && shards[secondary].excludedBy(c.cfg.FailAfter) {
		secondary = -1
	}
	return c.hedgedPost(ctx, shards, primary, secondary, body)
}

// attempt is one shard response in flight.
type attempt struct {
	resp  *server.V1Response
	err   error
	fatal bool // deterministic client error; retrying cannot help
	from  int
}

// hedgedPost runs the hedged two-attempt protocol against primary and
// (when >= 0) secondary.
func (c *Coordinator) hedgedPost(ctx context.Context, shards []*shard, primary, secondary int, body []byte) (*server.V1Response, error) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan attempt, 2)
	post := func(idx int) {
		resp, err, fatal := c.post(actx, shards[idx], body)
		ch <- attempt{resp: resp, err: err, fatal: fatal, from: idx}
	}
	go post(primary)
	inflight := 1
	launched := secondary < 0 // nothing left to launch
	var timer *time.Timer
	var timerC <-chan time.Time
	if !launched {
		if d := shards[primary].hedgeDelay(c.cfg.HedgeAfter); d >= 0 {
			timer = time.NewTimer(d)
			defer timer.Stop()
			timerC = timer.C
		}
		// d < 0: hedging disabled — no timer, but launched stays false so a
		// primary failure still retries on the replica immediately.
	}
	var firstErr error
	for {
		select {
		case <-timerC:
			timerC = nil
			launched = true
			inflight++
			c.hedges.Add(1)
			go post(secondary)
		case a := <-ch:
			inflight--
			if a.err == nil {
				if a.from == secondary {
					c.hedgeWins.Add(1)
				}
				cancel()
				return a.resp, nil
			}
			if a.fatal {
				cancel()
				return nil, a.err
			}
			if firstErr == nil {
				firstErr = a.err
			}
			if !launched {
				// The primary failed before the hedge trigger: retry on the
				// replica immediately instead of waiting for a timer that
				// was sized for a healthy primary.
				if timer != nil {
					timer.Stop()
				}
				timerC = nil
				launched = true
				inflight++
				c.retries.Add(1)
				go post(secondary)
				continue
			}
			if inflight == 0 {
				return nil, firstErr
			}
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		}
	}
}

// post sends one /v1/query attempt to a shard, recording health and
// latency. fatal marks deterministic 4xx failures that must propagate
// instead of triggering the replica.
func (c *Coordinator) post(ctx context.Context, s *shard, body []byte) (resp *server.V1Response, err error, fatal bool) {
	s.requests.Add(1)
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.url+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("shard %s: %w", s.name, err), false
	}
	req.Header.Set("Content-Type", "application/json")
	hres, err := c.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// Cancelled because the other attempt won (or the client left):
			// not the shard's fault, keep its health clean.
			return nil, fmt.Errorf("shard %s: %w", s.name, context.Cause(ctx)), false
		}
		s.recordFailure()
		return nil, fmt.Errorf("shard %s: %w", s.name, err), false
	}
	defer hres.Body.Close()
	data, err := io.ReadAll(hres.Body)
	if err != nil {
		if ctx.Err() == nil {
			s.recordFailure()
		}
		return nil, fmt.Errorf("shard %s: reading response: %w", s.name, err), false
	}
	if hres.StatusCode != http.StatusOK {
		msg := shardErrMsg(data, hres.StatusCode)
		if hres.StatusCode >= 400 && hres.StatusCode < 500 {
			// The shard is alive and rejected the request deterministically;
			// mirror its verdict to the client.
			s.recordSuccess(time.Since(start))
			return nil, server.HTTPError(hres.StatusCode, fmt.Errorf("shard %s: %s", s.name, msg)), true
		}
		if hres.StatusCode == http.StatusServiceUnavailable {
			// Overload shed, not a fault: the shard's admission gate said no.
			// Retriable on the replica — which may have capacity — and the
			// owner's health streak stays clean so one burst of load doesn't
			// eject it from the ring.
			c.sheds.Add(1)
			return nil, fmt.Errorf("shard %s: %s", s.name, msg), false
		}
		s.recordFailure()
		return nil, fmt.Errorf("shard %s: %s", s.name, msg), false
	}
	var out server.V1Response
	if err := json.Unmarshal(data, &out); err != nil {
		s.recordFailure()
		return nil, fmt.Errorf("shard %s: decoding response: %w", s.name, err), false
	}
	s.recordSuccess(time.Since(start))
	return &out, nil, false
}

// shardErrMsg extracts the {"error": ...} message of a shard failure.
func shardErrMsg(data []byte, status int) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return fmt.Sprintf("status %d", status)
}

// Stats snapshots the coordinator's counters and shard health.
func (c *Coordinator) Stats() StatsJSON {
	shards, _ := c.members()
	out := StatsJSON{
		Partitions: c.cfg.Partitions,
		Queries:    c.queries.Load(),
		Fanouts:    c.fanouts.Load(),
		Hedges:     c.hedges.Load(),
		HedgeWins:  c.hedgeWins.Load(),
		Retries:    c.retries.Load(),
		Degraded:   c.degraded.Load(),
		Sheds:      c.sheds.Load(),
	}
	for _, s := range shards {
		s.mu.Lock()
		fails := s.fails
		s.mu.Unlock()
		out.Shards = append(out.Shards, ShardStatsJSON{
			Name:             s.name,
			URL:              s.url,
			Excluded:         fails >= c.cfg.FailAfter,
			ConsecutiveFails: fails,
			Requests:         s.requests.Load(),
			Failures:         s.failures.Load(),
			HedgeDelayMicros: s.hedgeDelay(c.cfg.HedgeAfter).Microseconds(),
		})
	}
	if c.cache != nil {
		hits, misses, size := c.cache.stats()
		out.Cache = CacheStatsJSON{Hits: hits, Misses: misses, Size: size}
	}
	return out
}
