package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"probpref/internal/ppd"
	"probpref/internal/rank"
	"probpref/internal/registry"
	"probpref/internal/rim"
	"probpref/internal/server"
)

// Shared harness of the distributed-equivalence and fault-injection suites:
// one single-process service over the unsplit model next to an N-shard
// cluster over its partitions, both behind httptest, with a fault-injection
// transport between coordinator and shards. Run under -race (CI does).

const demoQuery = `P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`
const unionQuery = demoQuery + ` | P(_, _; c1; c2), C(c1, D, _, _, JD, _), C(c2, R, _, _, _, _)`

// testDB builds a synthetic RIM-PPD with n sessions shaped like figure1
// (candidates C, voters V with a numeric age, one poll session per voter).
// Every session gets a distinct Mallows model (distinct phi), so inference
// groups never span sessions and the shard-side solve/cache counters are
// partition-additive — the precondition for byte-identical distributed
// counters.
func testDB(t *testing.T, n int) *ppd.DB {
	t.Helper()
	cands, err := ppd.NewRelation("C",
		[]string{"candidate", "party", "sex", "age", "edu", "reg"},
		[][]string{
			{"Trump", "R", "M", "70", "BS", "NE"},
			{"Clinton", "D", "F", "69", "JD", "NE"},
			{"Sanders", "D", "M", "75", "BS", "NE"},
			{"Rubio", "R", "M", "45", "JD", "S"},
		})
	if err != nil {
		t.Fatal(err)
	}
	db, err := ppd.NewDB(cands)
	if err != nil {
		t.Fatal(err)
	}
	voterTuples := make([][]string, n)
	sessions := make(ppd.SessionSlice, n)
	rankings := []rank.Ranking{{1, 2, 3, 0}, {0, 3, 2, 1}, {2, 1, 0, 3}, {3, 0, 1, 2}}
	sexes := []string{"F", "M"}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("v%02d", i)
		voterTuples[i] = []string{name, sexes[i%2], fmt.Sprintf("%d", 20+i), "BS"}
		phi := 0.15 + 0.7*float64(i)/float64(n)
		sessions[i] = &ppd.Session{
			Key:   []string{name, "5/5"},
			Model: rim.MustMallows(rankings[i%len(rankings)], phi),
		}
	}
	voters, err := ppd.NewRelation("V", []string{"voter", "sex", "age", "edu"}, voterTuples)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddRelation(voters); err != nil {
		t.Fatal(err)
	}
	if err := db.AddPrefRelation(&ppd.PrefRelation{
		Name:         "P",
		SessionAttrs: []string{"voter", "date"},
		Sessions:     sessions,
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

// fault is one injected behavior for a shard host: an optional delay, then
// either a transport error, a synthetic status, or the real round trip.
// A non-empty bodySubstr restricts the fault to requests whose body contains
// it (e.g. one partition's model name), letting a test kill a single
// partition on a shard that also serves healthy ones.
type fault struct {
	delay      time.Duration
	err        error
	status     int
	bodySubstr string
}

// faultTransport injects faults per shard host on the coordinator→shard
// path. The zero rule set passes everything through.
type faultTransport struct {
	base http.RoundTripper

	mu    sync.Mutex
	rules map[string]fault // key: shard URL host
}

func newFaultTransport() *faultTransport {
	return &faultTransport{base: http.DefaultTransport, rules: map[string]fault{}}
}

// set installs (or, with the zero fault, clears) the rule for a shard URL.
func (ft *faultTransport) set(shardURL string, f fault) {
	host := strings.TrimPrefix(strings.TrimPrefix(shardURL, "http://"), "https://")
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if f == (fault{}) {
		delete(ft.rules, host)
		return
	}
	ft.rules[host] = f
}

func (ft *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	ft.mu.Lock()
	f := ft.rules[req.URL.Host]
	ft.mu.Unlock()
	if f.bodySubstr != "" {
		matched := false
		if req.GetBody != nil {
			rc, err := req.GetBody()
			if err != nil {
				return nil, err
			}
			b, err := io.ReadAll(rc)
			rc.Close()
			if err != nil {
				return nil, err
			}
			matched = strings.Contains(string(b), f.bodySubstr)
		}
		if !matched {
			f = fault{}
		}
	}
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if f.err != nil {
		return nil, f.err
	}
	if f.status != 0 {
		return &http.Response{
			StatusCode: f.status,
			Header:     http.Header{"Content-Type": []string{"application/json"}},
			Body:       io.NopCloser(strings.NewReader(`{"error":"injected fault"}`)),
			Request:    req,
		}, nil
	}
	return ft.base.RoundTrip(req)
}

// harness is one single-process/cluster pair over the same database.
type harness struct {
	t         *testing.T
	db        *ppd.DB
	single    *httptest.Server
	singleSvc *server.Service
	coord     *Coordinator
	coordSrv  *httptest.Server
	shardSrvs []*httptest.Server
	shardRegs []*registry.Registry
	ft        *faultTransport
}

// newHarness builds a single-process server over db and a cluster of
// `shards` shard servers behind a coordinator splitting every model into
// `partitions` partitions. Each partition is provisioned (as an in-memory
// session slice of the same db) on its owner and replica per the
// coordinator's placement.
func newHarness(t *testing.T, db *ppd.DB, shards, partitions int, cfg Config) *harness {
	t.Helper()
	h := &harness{t: t, db: db, ft: newFaultTransport()}

	reg := registry.New()
	if err := reg.RegisterDB(server.DefaultModel, db, ""); err != nil {
		t.Fatal(err)
	}
	h.singleSvc = server.NewMulti(reg, server.Config{})
	h.single = httptest.NewServer(h.singleSvc.Handler())
	t.Cleanup(h.single.Close)

	var shardCfgs []ShardConfig
	for i := 0; i < shards; i++ {
		sreg := registry.New()
		svc := server.NewMulti(sreg, server.Config{})
		srv := httptest.NewServer(svc.Handler())
		t.Cleanup(srv.Close)
		h.shardSrvs = append(h.shardSrvs, srv)
		h.shardRegs = append(h.shardRegs, sreg)
		shardCfgs = append(shardCfgs, ShardConfig{Name: fmt.Sprintf("s%d", i), URL: srv.URL})
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = partitions
	}
	if cfg.Transport == nil {
		cfg.Transport = h.ft
	}
	if cfg.HedgeAfter == 0 {
		// Hedging off unless a test opts in: a spurious hedge that wins on a
		// cold replica legitimately changes solve/cache-hit counters, which
		// would break the byte-identity checks nondeterministically.
		cfg.HedgeAfter = -1
	}
	coord, err := New(shardCfgs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.coord = coord
	t.Cleanup(coord.Close)
	h.provision(server.DefaultModel)
	h.coordSrv = httptest.NewServer(coord.Handler())
	t.Cleanup(h.coordSrv.Close)
	return h
}

// provision registers every partition of base on its owner and replica
// shards, per the coordinator's placement.
func (h *harness) provision(base string) {
	h.t.Helper()
	byName := map[string]int{}
	for i := range h.shardRegs {
		byName[fmt.Sprintf("s%d", i)] = i
	}
	for _, row := range h.coord.Placement(base) {
		pdb, err := ppd.PartitionDB(h.db, row.Partition, h.coord.Partitions())
		if err != nil {
			h.t.Fatal(err)
		}
		for _, name := range []string{row.Owner, row.Replica} {
			if name == "" {
				continue
			}
			if err := h.shardRegs[byName[name]].RegisterDB(row.Model, pdb, ""); err != nil {
				h.t.Fatal(err)
			}
		}
	}
}

// shardURLsFor returns the owner and replica URLs of one partition of the
// default model — the targets fault rules aim at.
func (h *harness) shardURLsFor(partition int) (owner, replica string) {
	h.t.Helper()
	rows := h.coord.Placement(server.DefaultModel)
	for _, row := range rows {
		if row.Partition != partition {
			continue
		}
		for i := range h.shardSrvs {
			name := fmt.Sprintf("s%d", i)
			if name == row.Owner {
				owner = h.shardSrvs[i].URL
			}
			if name == row.Replica {
				replica = h.shardSrvs[i].URL
			}
		}
	}
	return owner, replica
}

// newTestServer starts an httptest server over h and closes it with the
// test.
func newTestServer(t *testing.T, h interface{ Handler() http.Handler }) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(h.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// post sends a /v1/query body and returns status and raw response bytes.
func post(t *testing.T, srvURL, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(srvURL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// checkEqual posts body to the single process and the coordinator and
// requires byte-identical responses (status and payload, NDJSON included).
func (h *harness) checkEqual(body string) {
	h.t.Helper()
	ss, sb := post(h.t, h.single.URL, body)
	cs, cb := post(h.t, h.coordSrv.URL, body)
	if ss != cs {
		h.t.Fatalf("status differs for %s:\nsingle = %d:\n%s\ncluster = %d:\n%s", body, ss, sb, cs, cb)
	}
	if !bytes.Equal(sb, cb) {
		h.t.Errorf("response differs for %s:\n-- single --\n%s\n-- cluster --\n%s", body, sb, cb)
	}
}
