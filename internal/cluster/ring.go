package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over shard indexes. Each shard contributes
// vnodes virtual points so partition keys spread evenly; a key is owned by
// the first point clockwise of its hash, and its replica is the next
// distinct shard after the owner. Lookups walk clockwise past excluded
// shards, so shard loss moves only the failed shard's keys (to the shards
// already acting as their replicas) instead of reshuffling the whole map —
// the property that makes hedged retries and health-based exclusion cheap.
type ring struct {
	points []ringPoint // sorted by hash
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// defaultVNodes is the virtual-point count per shard; 64 keeps the maximum
// ownership imbalance under a few percent for small clusters.
const defaultVNodes = 64

// buildRing places vnodes points per shard name on the ring.
func buildRing(names []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &ring{points: make([]ringPoint, 0, len(names)*vnodes), shards: len(names)}
	for i, name := range names {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", name, v)), shard: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].shard < r.points[b].shard
	})
	return r
}

// hash64 is FNV-1a over s.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// pick resolves a partition key to its owner and replica: the first two
// distinct shards clockwise of the key's hash for which excluded returns
// false. A missing replica (single-shard ring, or everything else excluded)
// is -1; a fully excluded ring returns owner -1.
func (r *ring) pick(key string, excluded func(int) bool) (owner, replica int) {
	owner, replica = -1, -1
	if len(r.points) == 0 {
		return
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if excluded != nil && excluded(p.shard) {
			continue
		}
		if owner == -1 {
			owner = p.shard
			continue
		}
		if p.shard != owner {
			replica = p.shard
			return
		}
	}
	return
}
