package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"probpref/internal/ppd"
	"probpref/internal/registry"
	"probpref/internal/server"
)

// nsSep separates the model namespace from the request key in result-cache
// keys, mirroring the service layer's cache namespaces. NUL cannot appear in
// a registry model name, so purging "model\x00" never clips a neighbor.
const nsSep = "\x00"

// Handler returns the coordinator's HTTP front end:
//
//	POST   /v1/query               unified query endpoint, wire-compatible
//	                               with a shard's: single, batch and NDJSON
//	                               streaming forms, answered by fan-out/merge
//	GET    /models                 merged catalog: partition rows regrouped
//	                               under their base model names
//	DELETE /models/{name}          evict a model cluster-wide: fans the
//	                               delete to every shard and purges the
//	                               coordinator's result cache
//	GET    /cluster/stats          coordinator counters, shard health, cache
//	GET    /cluster/placement      partition → owner/replica routing for a
//	                               model (?model=, "" = default)
//	POST   /cluster/shards         add a shard ({"name","url"}) and rehash
//	DELETE /cluster/shards/{name}  drop a shard and rehash
//	GET    /healthz                liveness probe
//
// Query responses are byte-identical to a single process serving the
// unsplit model whenever every partition answers; a partial fan-out answers
// degraded with a "cluster" diagnostic instead of failing.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", c.handleQuery)
	mux.HandleFunc("GET /models", func(w http.ResponseWriter, r *http.Request) {
		server.ServeJSON(w, func() (any, error) { return c.mergedModels(r.Context()) })
	})
	mux.HandleFunc("DELETE /models/{name}", func(w http.ResponseWriter, r *http.Request) {
		server.ServeJSON(w, func() (any, error) { return c.deleteModel(r.Context(), r.PathValue("name")) })
	})
	mux.HandleFunc("GET /cluster/stats", func(w http.ResponseWriter, r *http.Request) {
		server.ServeJSON(w, func() (any, error) { return c.Stats(), nil })
	})
	mux.HandleFunc("GET /cluster/placement", func(w http.ResponseWriter, r *http.Request) {
		server.ServeJSON(w, func() (any, error) {
			base := r.URL.Query().Get("model")
			if base == "" {
				base = server.DefaultModel
			}
			return &PlacementResponse{Model: base, Partitions: c.Placement(base)}, nil
		})
	})
	mux.HandleFunc("POST /cluster/shards", func(w http.ResponseWriter, r *http.Request) {
		server.ServeJSON(w, func() (any, error) {
			dec := json.NewDecoder(r.Body)
			dec.DisallowUnknownFields()
			var req ShardRequest
			if err := dec.Decode(&req); err != nil {
				return nil, fmt.Errorf("decoding body: %w", err)
			}
			if err := c.AddShard(ShardConfig{Name: req.Name, URL: req.URL}); err != nil {
				return nil, err
			}
			shards, _ := c.members()
			return &ShardResponse{Shard: req.Name, Shards: len(shards)}, nil
		})
	})
	mux.HandleFunc("DELETE /cluster/shards/{name}", func(w http.ResponseWriter, r *http.Request) {
		server.ServeJSON(w, func() (any, error) {
			name := r.PathValue("name")
			if err := c.RemoveShard(name); err != nil {
				return nil, err
			}
			shards, _ := c.members()
			return &ShardResponse{Shard: name, Shards: len(shards)}, nil
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// handleQuery serves POST /v1/query: wire-compatible with the shard
// endpoint, answered by fanning the request out per partition and merging.
func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var body server.V1Body
	if err := dec.Decode(&body); err != nil {
		server.ServeJSON(w, func() (any, error) { return nil, fmt.Errorf("decoding body: %w", err) })
		return
	}
	if len(body.Requests) > 0 {
		server.ServeJSON(w, func() (any, error) { return c.doBatch(r.Context(), body) })
		return
	}
	req, err := body.V1Request.ToRequest()
	if err != nil {
		server.ServeJSON(w, func() (any, error) { return nil, err })
		return
	}
	// The stream allowlist is checked before Compile, matching the shard's
	// validation order so both tiers report the same first error.
	if body.Stream {
		switch req.Kind {
		case ppd.KindTopK, ppd.KindBool, ppd.KindCount, ppd.KindCountDist:
		default:
			server.ServeJSON(w, func() (any, error) {
				return nil, fmt.Errorf("stream is not valid for kind %s (topk, bool, count and countdist stream session rows)", req.Kind)
			})
			return
		}
	}
	cr, err := req.Compile()
	if err != nil {
		server.ServeJSON(w, func() (any, error) { return nil, err })
		return
	}
	c.queries.Add(1)
	if body.Stream {
		c.stream(w, r, body.V1Request, cr)
		return
	}
	server.ServeJSON(w, func() (any, error) {
		res, err := c.doSingle(r.Context(), body.V1Request, cr)
		if err != nil {
			return nil, err
		}
		return &ResponseJSON{Result: stripRows(res, body.PerSession)}, nil
	})
}

// cacheable reports whether the request's merged answer may be cached and
// served again: only deterministic exact methods with no per-request seed
// or deadline qualify (a sampled or deadline-shaped answer is not a pure
// function of the request).
func cacheable(cr *ppd.CompiledRequest) bool {
	if cr.Deadline != 0 || cr.Seed != 0 {
		return false
	}
	switch cr.Method {
	case ppd.MethodAuto, ppd.MethodTwoLabel, ppd.MethodBipartite, ppd.MethodGeneral, ppd.MethodRelOrder:
		return true
	}
	return false
}

// doSingle answers one request: result cache, then fan-out/merge. The
// returned result carries the full per-session form.
func (c *Coordinator) doSingle(ctx context.Context, vr server.V1Request, cr *ppd.CompiledRequest) (*ResultJSON, error) {
	base := vr.Model
	if base == "" {
		base = server.DefaultModel
	}
	key := base + nsSep + cr.Key()
	useCache := c.cache != nil && cacheable(cr)
	if useCache {
		if hit := c.cache.Get(key); hit != nil {
			return cachedCopy(hit), nil
		}
	}
	parts, diag, err := c.fanout(ctx, base, func(model string) server.V1Request {
		pvr := vr
		pvr.Model = model
		pvr.PerSession = true
		pvr.Stream = false
		return pvr
	})
	if err != nil {
		return nil, err
	}
	res, err := mergeResults(cr.Kind, cr.K, parts)
	if err != nil {
		return nil, err
	}
	res.Cluster = diag
	if diag != nil {
		c.degraded.Add(1)
	} else if useCache {
		c.cache.Put(key, res)
	}
	return res, nil
}

// fanout posts one rewritten request per partition (rewrite maps the
// partition's model name to the request body) and collects the answers
// indexed by partition. A deterministic shard rejection (4xx) fails the
// whole fan-out with that status; unreachable partitions are reported in
// the degraded-answer diagnostic unless every partition failed, which is a
// gateway error.
func (c *Coordinator) fanout(ctx context.Context, base string, rewrite func(model string) server.V1Request) ([]*server.V1Result, *ClusterDiagJSON, error) {
	n := c.cfg.Partitions
	parts := make([]*server.V1Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			model := PartitionModel(base, p)
			body, err := json.Marshal(rewrite(model))
			if err != nil {
				errs[p] = err
				return
			}
			resp, err := c.fetch(ctx, model, body)
			if err != nil {
				errs[p] = err
				return
			}
			if resp.Result == nil {
				errs[p] = fmt.Errorf("shard answer for %s has no result", model)
				return
			}
			parts[p] = resp.Result
		}(p)
	}
	wg.Wait()
	return collectFanout(parts, errs)
}

// collectFanout classifies per-partition outcomes: fatal rejections and
// total failure become errors, partial failure becomes a diagnostic.
func collectFanout(parts []*server.V1Result, errs []error) ([]*server.V1Result, *ClusterDiagJSON, error) {
	var diag *ClusterDiagJSON
	failed := 0
	for p, err := range errs {
		if err == nil {
			continue
		}
		if status, ok := server.ErrorStatus(err); ok && status >= 400 && status < 500 {
			// The shard rejected the request deterministically (bad query,
			// unknown model): every partition would, so mirror it.
			return nil, nil, err
		}
		failed++
		if diag == nil {
			diag = &ClusterDiagJSON{Partial: true}
		}
		diag.FailedPartitions = append(diag.FailedPartitions, p)
		diag.Errors = append(diag.Errors, err.Error())
	}
	if failed == len(parts) {
		msgs := make([]string, 0, len(errs))
		for _, err := range errs {
			if err != nil {
				msgs = append(msgs, err.Error())
			}
		}
		return nil, nil, server.HTTPError(http.StatusBadGateway,
			fmt.Errorf("all %d partitions failed: %s", len(parts), strings.Join(msgs, "; ")))
	}
	return parts, diag, nil
}

// doBatch answers the batch form. The batch is split per distinct base
// model — requests of one model always share placement, and inference
// groups never span models, so splitting preserves the shard-side dedup
// accounting — and each model's sub-batch fans out per partition.
func (c *Coordinator) doBatch(ctx context.Context, body server.V1Body) (*ResponseJSON, error) {
	if body.V1Request != (server.V1Request{}) {
		return nil, fmt.Errorf("batch body must not mix inline request fields with requests; set fields per request")
	}
	kinds := make([]ppd.Kind, len(body.Requests))
	for i := range body.Requests {
		if body.Requests[i].Stream {
			return nil, fmt.Errorf("query %d: stream is only valid for a single request", i+1)
		}
		req, err := body.Requests[i].ToRequest()
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i+1, err)
		}
		cr, err := req.Compile()
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i+1, err)
		}
		kinds[i] = cr.Kind
	}
	c.queries.Add(uint64(len(body.Requests)))
	// Group request indexes by base model, preserving request order within
	// each group.
	byModel := map[string][]int{}
	var models []string
	for i, vr := range body.Requests {
		base := vr.Model
		if base == "" {
			base = server.DefaultModel
		}
		if _, ok := byModel[base]; !ok {
			models = append(models, base)
		}
		byModel[base] = append(byModel[base], i)
	}
	n := c.cfg.Partitions
	// results[p][i] is partition p's answer to request i (nil on failure).
	results := make([][]*server.V1Result, n)
	for p := range results {
		results[p] = make([]*server.V1Result, len(body.Requests))
	}
	partErrs := make([]error, n)
	batch := &server.BatchJSON{}
	var batchMu sync.Mutex
	var wg sync.WaitGroup
	for _, base := range models {
		idxs := byModel[base]
		for p := 0; p < n; p++ {
			wg.Add(1)
			go func(base string, idxs []int, p int) {
				defer wg.Done()
				model := PartitionModel(base, p)
				sub := server.V1Body{}
				for _, i := range idxs {
					pvr := body.Requests[i]
					pvr.Model = model
					pvr.PerSession = true
					sub.Requests = append(sub.Requests, pvr)
				}
				bodyBytes, err := json.Marshal(sub)
				if err != nil {
					batchMu.Lock()
					partErrs[p] = err
					batchMu.Unlock()
					return
				}
				resp, err := c.fetch(ctx, model, bodyBytes)
				if err != nil {
					batchMu.Lock()
					if partErrs[p] == nil {
						partErrs[p] = err
					}
					batchMu.Unlock()
					return
				}
				batchMu.Lock()
				defer batchMu.Unlock()
				if len(resp.Results) != len(idxs) {
					if partErrs[p] == nil {
						partErrs[p] = fmt.Errorf("partition %d answered %d results for a %d-request sub-batch", p, len(resp.Results), len(idxs))
					}
					return
				}
				for j, i := range idxs {
					results[p][i] = &resp.Results[j]
				}
				if resp.Batch != nil {
					batch.Groups += resp.Batch.Groups
					batch.Instances += resp.Batch.Instances
					batch.Solved += resp.Batch.Solved
					batch.CacheHits += resp.Batch.CacheHits
				}
			}(base, idxs, p)
		}
	}
	wg.Wait()
	// Classify per-partition failures across the whole batch the same way
	// the single path does. (A fatal 4xx from any sub-batch rejects the
	// batch, matching a single process rejecting the whole body.)
	probe := make([]*server.V1Result, n)
	for p := 0; p < n; p++ {
		if partErrs[p] == nil {
			probe[p] = &server.V1Result{}
		}
	}
	_, diag, err := collectFanout(probe, partErrs)
	if err != nil {
		return nil, err
	}
	if diag != nil {
		c.degraded.Add(1)
	}
	out := &ResponseJSON{Batch: batch}
	for i := range body.Requests {
		sub := make([]*server.V1Result, n)
		for p := 0; p < n; p++ {
			sub[p] = results[p][i]
		}
		m, err := mergeResults(kinds[i], body.Requests[i].K, sub)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i+1, err)
		}
		m.Cluster = diag
		out.Results = append(out.Results, *stripRows(m, body.Requests[i].PerSession))
	}
	return out, nil
}

// stream answers one request as NDJSON, byte-compatible with a shard's
// stream: the merged summary line first (session rows elided), then one
// session row per line. The merged answer is computed up front — the
// partitions stream nothing to the coordinator — so the coordinator's
// incremental value is emission, not evaluation; a client disconnect stops
// the stream between rows with a final {"error": ...} line.
func (c *Coordinator) stream(w http.ResponseWriter, r *http.Request, vr server.V1Request, cr *ppd.CompiledRequest) {
	// Mirror the shard: one deadline governs the whole exchange, so the
	// per-request timeout is armed here and not forwarded downstream.
	ctx := r.Context()
	if cr.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cr.Deadline)
		defer cancel()
		vr.TimeoutMS = 0
	}
	res, err := c.doSingle(ctx, vr, cr)
	if err != nil {
		server.ServeJSON(w, func() (any, error) { return nil, err })
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	rows := res.PerSession
	if cr.Kind == ppd.KindTopK {
		rows = res.Top
	}
	head := *res
	head.Top = nil
	head.PerSession = nil
	enc.Encode(&head)
	flush()
	for _, row := range rows {
		if err := ctx.Err(); err != nil {
			enc.Encode(map[string]string{"error": context.Cause(ctx).Error()})
			flush()
			return
		}
		if err := enc.Encode(row); err != nil {
			return // client gone; stop emitting
		}
		flush()
	}
}

// deleteModel evicts a base model cluster-wide: every shard is asked to
// delete every partition (owner and replica copies alike; absent copies
// 404 and are ignored) and the coordinator's result cache drops the
// model's namespace — without the purge, a model re-created under the same
// name could be answered from its predecessor's merged results.
func (c *Coordinator) deleteModel(ctx context.Context, name string) (*server.DeleteModelResponse, error) {
	shards, _ := c.members()
	type del struct {
		shard *shard
		model string
	}
	var dels []del
	for _, s := range shards {
		for p := 0; p < c.cfg.Partitions; p++ {
			dels = append(dels, del{s, PartitionModel(name, p)})
		}
	}
	deleted := make([]bool, len(dels))
	errs := make([]error, len(dels))
	var wg sync.WaitGroup
	for i, d := range dels {
		wg.Add(1)
		go func(i int, d del) {
			defer wg.Done()
			dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(dctx, http.MethodDelete, d.shard.url+"/models/"+d.model, nil)
			if err != nil {
				errs[i] = err
				return
			}
			res, err := c.client.Do(req)
			if err != nil {
				errs[i] = fmt.Errorf("shard %s: %w", d.shard.name, err)
				return
			}
			defer res.Body.Close()
			switch {
			case res.StatusCode == http.StatusOK:
				deleted[i] = true
			case res.StatusCode == http.StatusNotFound:
				// This shard never held the partition; fine.
			default:
				errs[i] = fmt.Errorf("shard %s: delete %s: status %d", d.shard.name, d.model, res.StatusCode)
			}
		}(i, d)
	}
	wg.Wait()
	// The purge happens regardless of shard outcomes: serving stale merged
	// results is worse than purging for a delete that partially failed.
	c.cache.purgeModel(name)
	var firstErr error
	any := false
	for i := range dels {
		if deleted[i] {
			any = true
		}
		if errs[i] != nil && firstErr == nil {
			firstErr = errs[i]
		}
	}
	if firstErr != nil {
		return nil, server.HTTPError(http.StatusBadGateway, firstErr)
	}
	if !any {
		return nil, server.HTTPError(http.StatusNotFound, fmt.Errorf("unknown model %q", name))
	}
	return &server.DeleteModelResponse{Deleted: name}, nil
}

// purgeModel drops the model's cache namespace; nil-safe for a disabled
// cache.
func (c *resultCache) purgeModel(name string) {
	if c == nil {
		return
	}
	c.PurgePrefix(name + nsSep)
}

// mergedModels lists the cluster catalog: every shard's /models rows,
// deduplicated (a partition lives on its owner and replica), with
// partition rows regrouped under their base model names — sessions sum
// across partitions, the item domain is shared.
func (c *Coordinator) mergedModels(ctx context.Context) (*server.ModelsResponse, error) {
	shards, _ := c.members()
	lists := make([]*server.ModelsResponse, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, s := range shards {
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			lctx, cancel := context.WithTimeout(ctx, 30*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(lctx, http.MethodGet, s.url+"/models", nil)
			if err != nil {
				errs[i] = err
				return
			}
			res, err := c.client.Do(req)
			if err != nil {
				errs[i] = fmt.Errorf("shard %s: %w", s.name, err)
				return
			}
			defer res.Body.Close()
			var out server.ModelsResponse
			if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
				errs[i] = fmt.Errorf("shard %s: decoding models: %w", s.name, err)
				return
			}
			lists[i] = &out
		}(i, s)
	}
	wg.Wait()
	ok := false
	var firstErr error
	for i := range shards {
		if errs[i] == nil {
			ok = true
		} else if firstErr == nil {
			firstErr = errs[i]
		}
	}
	if !ok {
		return nil, server.HTTPError(http.StatusBadGateway, fmt.Errorf("no shard answered /models: %v", firstErr))
	}
	return regroupModels(lists), nil
}

// regroupModels deduplicates shard rows by model name and folds partition
// rows ("base--p<i>") into one row per base model.
func regroupModels(lists []*server.ModelsResponse) *server.ModelsResponse {
	seen := map[string]registry.Info{}
	for _, l := range lists {
		if l == nil {
			continue
		}
		for _, m := range l.Models {
			if prev, ok := seen[m.Name]; !ok || (!prev.Loaded && m.Loaded) {
				seen[m.Name] = m
			}
		}
	}
	grouped := map[string]*registry.Info{}
	var names []string
	for name, m := range seen {
		base, ok := splitPartitionModel(name)
		if !ok {
			base = name
		}
		g, have := grouped[base]
		if !have {
			names = append(names, base)
			info := m
			info.Name = base
			if ok {
				info.Sessions = 0
			}
			grouped[base] = &info
			g = grouped[base]
		}
		if ok {
			g.Sessions += m.Sessions
			g.Loaded = g.Loaded && m.Loaded
			if m.Items > g.Items {
				g.Items = m.Items
			}
		}
	}
	sort.Strings(names)
	out := &server.ModelsResponse{}
	for _, name := range names {
		out.Models = append(out.Models, *grouped[name])
	}
	return out
}

// splitPartitionModel splits a partition model name "base--p<i>" into its
// base, reporting ok=false for names without the partition suffix.
func splitPartitionModel(name string) (base string, ok bool) {
	i := strings.LastIndex(name, "--p")
	if i <= 0 {
		return "", false
	}
	suffix := name[i+len("--p"):]
	if suffix == "" {
		return "", false
	}
	for _, r := range suffix {
		if r < '0' || r > '9' {
			return "", false
		}
	}
	return name[:i], true
}
