package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"probpref/internal/registry"
	"probpref/internal/server"
)

// Distributed-equivalence suite: the same request posted to a single-process
// service and to a sharded cluster over the same sessions must yield
// byte-identical responses — aggregates refolded, top-k re-merged, count
// distributions re-convolved, NDJSON streams interleaved in session order.

// equivalenceBodies is the request matrix checked for byte identity: all
// six kinds, per-session variants, union queries, and a batch. Consensus
// covers all three targets; the sampled variant carries a seed, because the
// per-session sampling streams are derived from the request seed and only a
// seeded request is reproducible across tiers at all.
func equivalenceBodies() []string {
	q := demoQuery
	u := unionQuery
	return []string{
		fmt.Sprintf(`{"kind":"bool","query":%q}`, q),
		fmt.Sprintf(`{"kind":"bool","query":%q,"per_session":true}`, q),
		fmt.Sprintf(`{"kind":"count","query":%q,"per_session":true}`, u),
		fmt.Sprintf(`{"kind":"topk","query":%q,"k":3}`, q),
		fmt.Sprintf(`{"kind":"topk","query":%q,"k":5}`, u),
		fmt.Sprintf(`{"kind":"countdist","query":%q,"per_session":true}`, q),
		fmt.Sprintf(`{"kind":"aggregate","query":%q,"agg_rel":"V","agg_attr":"age"}`, q),
		fmt.Sprintf(`{"kind":"aggregate","query":%q,"agg_rel":"V","agg_attr":"age","per_session":true}`, u),
		fmt.Sprintf(`{"kind":"consensus","query":%q,"target":"map"}`, q),
		fmt.Sprintf(`{"kind":"consensus","query":%q,"target":"median","per_session":true}`, q),
		fmt.Sprintf(`{"kind":"consensus","query":%q,"target":"topk","k":2}`, u),
		fmt.Sprintf(`{"kind":"consensus","query":%q,"target":"median","method":"rejection","seed":5}`, q),
		fmt.Sprintf(`{"kind":"consensus","query":%q,"target":"topk","k":2,"method":"rejection","seed":11,"per_session":true}`, q),
		fmt.Sprintf(`{"requests":[{"kind":"bool","query":%q},{"kind":"topk","query":%q,"k":2},{"kind":"count","query":%q},{"kind":"aggregate","query":%q,"agg_rel":"V","agg_attr":"age"},{"kind":"countdist","query":%q},{"kind":"consensus","query":%q,"target":"median"}]}`, q, u, q, q, u, q),
	}
}

// streamBodies is the request matrix for NDJSON byte identity.
func streamBodies() []string {
	return []string{
		fmt.Sprintf(`{"kind":"bool","query":%q,"stream":true}`, demoQuery),
		fmt.Sprintf(`{"kind":"count","query":%q,"stream":true}`, unionQuery),
		fmt.Sprintf(`{"kind":"countdist","query":%q,"stream":true}`, demoQuery),
		fmt.Sprintf(`{"kind":"topk","query":%q,"k":4,"stream":true}`, demoQuery),
	}
}

func TestClusterEquivalence(t *testing.T) {
	db := testDB(t, 7)
	for _, shards := range []int{1, 2, 5} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			h := newHarness(t, db, shards, 3, Config{})
			for _, body := range equivalenceBodies() {
				h.checkEqual(body)
			}
			for _, body := range streamBodies() {
				h.checkEqual(body)
			}
		})
	}
}

// TestClusterEquivalenceMorePartitionsThanSessions covers empty partitions:
// 5 partitions over 3 sessions leaves ranges empty, which must not perturb
// any merged answer.
func TestClusterEquivalenceMorePartitionsThanSessions(t *testing.T) {
	db := testDB(t, 3)
	h := newHarness(t, db, 2, 5, Config{})
	for _, body := range equivalenceBodies() {
		h.checkEqual(body)
	}
}

// TestClusterEquivalenceErrors checks that malformed requests fail with the
// same status and body on both tiers.
func TestClusterEquivalenceErrors(t *testing.T) {
	db := testDB(t, 4)
	h := newHarness(t, db, 2, 2, Config{})
	for _, body := range []string{
		`{"kind":"nope","query":"P(_, _; c1; c2)"}`,
		`{"kind":"bool"}`,
		`{"kind":"bool","query":"P(_, _; c1; c2)","bogus":1}`,
		fmt.Sprintf(`{"kind":"aggregate","query":%q}`, demoQuery),
		fmt.Sprintf(`{"kind":"topk","query":%q,"k":3,"requests":[{"kind":"bool","query":%q}]}`, demoQuery, demoQuery),
		fmt.Sprintf(`{"requests":[{"kind":"bool","query":%q,"stream":true}]}`, demoQuery),
		fmt.Sprintf(`{"kind":"aggregate","query":%q,"agg_rel":"V","agg_attr":"age","stream":true}`, demoQuery),
		fmt.Sprintf(`{"kind":"consensus","query":%q,"stream":true}`, demoQuery),
		fmt.Sprintf(`{"kind":"consensus","query":%q,"target":"kemeny"}`, demoQuery),
		fmt.Sprintf(`{"kind":"consensus","query":%q,"target":"median","stream":true}`, demoQuery),
	} {
		h.checkEqual(body)
	}
}

// TestClusterEquivalenceUnknownModel checks 404 propagation for a model no
// shard holds.
func TestClusterEquivalenceUnknownModel(t *testing.T) {
	db := testDB(t, 4)
	h := newHarness(t, db, 2, 2, Config{})
	body := fmt.Sprintf(`{"kind":"bool","query":%q,"model":"missing"}`, demoQuery)
	ss, sb := post(t, h.single.URL, body)
	cs, cb := post(t, h.coordSrv.URL, body)
	if ss != http.StatusNotFound || cs != http.StatusNotFound {
		t.Fatalf("statuses = %d, %d, want 404 on both\nsingle: %s\ncluster: %s", ss, cs, sb, cb)
	}
	if !strings.Contains(string(cb), "missing") {
		t.Fatalf("cluster 404 body does not name the model: %s", cb)
	}
}

// TestClusterCacheCounterEquivalence repeats a request on both tiers: the
// second single-process response is served from the shard-side solve cache,
// the second cluster response from the coordinator result cache, and the
// rewritten counters must agree byte for byte.
func TestClusterCacheCounterEquivalence(t *testing.T) {
	db := testDB(t, 6)
	h := newHarness(t, db, 3, 3, Config{})
	for _, body := range []string{
		fmt.Sprintf(`{"kind":"bool","query":%q}`, demoQuery),
		fmt.Sprintf(`{"kind":"topk","query":%q,"k":3}`, demoQuery),
		fmt.Sprintf(`{"kind":"aggregate","query":%q,"agg_rel":"V","agg_attr":"age"}`, demoQuery),
	} {
		h.checkEqual(body) // cold
		h.checkEqual(body) // warm: solve cache vs coordinator result cache
	}
	stats := h.coord.Stats()
	if stats.Cache.Hits == 0 {
		t.Fatalf("coordinator cache saw no hits: %+v", stats.Cache)
	}
}

// TestClusterStreamIsNDJSON sanity-checks the coordinator stream framing
// itself (one JSON object per line, head first) rather than just comparing
// with the single process.
func TestClusterStreamIsNDJSON(t *testing.T) {
	db := testDB(t, 5)
	h := newHarness(t, db, 2, 2, Config{})
	body := fmt.Sprintf(`{"kind":"bool","query":%q,"stream":true}`, demoQuery)
	resp, err := http.Post(h.coordSrv.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	lines := 0
	for sc.Scan() {
		var v map[string]any
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", lines, err, sc.Text())
		}
		if lines == 0 {
			if _, ok := v["kind"]; !ok {
				t.Fatalf("head line missing kind: %s", sc.Text())
			}
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != 1+5 {
		t.Fatalf("stream lines = %d, want head + 5 session rows", lines)
	}
}

// TestClusterModelsMerge checks GET /models regroups partition rows under
// the base model with summed session counts.
func TestClusterModelsMerge(t *testing.T) {
	db := testDB(t, 7)
	h := newHarness(t, db, 3, 3, Config{})
	resp, err := http.Get(h.coordSrv.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mr server.ModelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if len(mr.Models) != 1 {
		t.Fatalf("models = %+v, want exactly the regrouped base model", mr.Models)
	}
	got := mr.Models[0]
	if got.Name != server.DefaultModel || got.Sessions != 7 || !got.Loaded {
		t.Fatalf("merged model row = %+v, want name=%s sessions=7 loaded", got, server.DefaultModel)
	}
}

// TestClusterGeneratorSpecProvisioning covers the registry generator-spec
// path: shards provision their partitions from dataset specs (as hardqd
// -shard does) instead of pre-built DB slices, and the cluster still matches
// a single process over the same generated dataset.
func TestClusterGeneratorSpecProvisioning(t *testing.T) {
	const parts = 2
	reg := registry.New()
	if err := reg.Register(registry.Spec{
		Name: server.DefaultModel, Dataset: "figure1", Preload: true,
	}); err != nil {
		t.Fatal(err)
	}
	singleSvc := server.NewMulti(reg, server.Config{})
	single := newTestServer(t, singleSvc)

	shardRegs := make([]*registry.Registry, parts)
	shardCfgs := make([]ShardConfig, parts)
	for i := range shardRegs {
		shardRegs[i] = registry.New()
		srv := newTestServer(t, server.NewMulti(shardRegs[i], server.Config{}))
		shardCfgs[i] = ShardConfig{Name: fmt.Sprintf("s%d", i), URL: srv.URL}
	}
	coord, err := New(shardCfgs, Config{Partitions: parts})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	byName := map[string]int{"s0": 0, "s1": 1}
	for _, row := range coord.Placement(server.DefaultModel) {
		for _, name := range []string{row.Owner, row.Replica} {
			if name == "" {
				continue
			}
			err := shardRegs[byName[name]].Register(registry.Spec{
				Name: row.Model, Dataset: "figure1", Preload: true,
				Partition: row.Partition, Partitions: parts,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	coordSrv := newTestServer(t, coord)

	for _, body := range []string{
		fmt.Sprintf(`{"kind":"bool","query":%q,"per_session":true}`, demoQuery),
		fmt.Sprintf(`{"kind":"topk","query":%q,"k":2}`, demoQuery),
	} {
		ss, sb := post(t, single.URL, body)
		cs, cb := post(t, coordSrv.URL, body)
		if ss != cs || !bytes.Equal(sb, cb) {
			t.Errorf("spec-provisioned cluster differs for %s:\nsingle %d: %s\ncluster %d: %s", body, ss, sb, cs, cb)
		}
	}
}
