package cluster

import (
	"fmt"
	"math"
	"sort"

	"probpref/internal/consensus"
	"probpref/internal/ppd"
	"probpref/internal/server"
)

// This file merges partition answers into the single-process answer. The
// invariant every merge rule preserves: the merged response must be
// byte-identical to one process serving the unsplit model. Because float
// addition is not associative, per-shard aggregates (a partition's Prob, Sum
// or PMF) are never combined directly; instead the coordinator always asks
// shards for per-session rows, concatenates them in partition order — which
// is session order, partitions being contiguous ranges — and refolds the
// concatenation through the exact sequential aggregation code a single
// process runs (ppd.BoolAggregate, ppd.FoldAggregateRows,
// ppd.CountDistFromSessions). encoding/json round-trips float64 exactly, so
// the wire hop does not perturb the rows.

// mergeResults folds the partition answers (indexed by partition, nil =
// failed partition, skipped) of one request into the merged result. The
// result always carries the full per-session form; emit strips rows the
// client did not ask for.
func mergeResults(kind ppd.Kind, k int, parts []*server.V1Result) (*ResultJSON, error) {
	out := &ResultJSON{}
	out.Kind = kind.String()
	for _, p := range parts {
		if p == nil {
			continue
		}
		out.Solves += p.Solves
		out.CacheHits += p.CacheHits
	}
	switch kind {
	case ppd.KindBool, ppd.KindCount, ppd.KindCountDist:
		rows := concatPerSession(parts)
		fold := ppd.BoolAggregate(sessionProbs(rows))
		out.Prob = fold.Prob
		out.Count = fold.Count
		out.LiveSessions = len(rows)
		out.PerSession = rows
		if kind == ppd.KindCountDist {
			n := 0
			for _, p := range parts {
				if p == nil {
					continue
				}
				if p.CountDist == nil {
					return nil, fmt.Errorf("cluster: countdist partition answer missing countdist section")
				}
				n += p.CountDist.N
			}
			dist, err := ppd.CountDistFromSessions(sessionProbs(rows), n)
			if err != nil {
				return nil, fmt.Errorf("cluster: merging count distribution: %w", err)
			}
			out.CountDist = &server.CountDistJSON{
				N:      dist.N(),
				Mean:   dist.Mean(),
				StdDev: dist.StdDev(),
				Mode:   dist.Mode(),
				Median: dist.Quantile(0.5),
				Lo95:   dist.Quantile(0.025),
				Hi95:   dist.Quantile(0.975),
				PMF:    dist.PMF,
			}
		}
		out.Plan = mergePlans(parts)
	case ppd.KindTopK:
		// Concatenating in partition order and re-sorting stably reproduces
		// the single process's stable sort over the same session order, so
		// ties break identically.
		var tops []server.SessionProbJSON
		for _, p := range parts {
			if p == nil {
				continue
			}
			tops = append(tops, p.Top...)
			if p.Diag != nil {
				if out.Diag == nil {
					out.Diag = &server.TopKDiagJSON{}
				}
				out.Diag.BoundSolves += p.Diag.BoundSolves
				out.Diag.ExactSolves += p.Diag.ExactSolves
				out.Diag.SessionsEvaluated += p.Diag.SessionsEvaluated
				out.Diag.CacheHits += p.Diag.CacheHits
			}
			out.LiveSessions += p.LiveSessions
		}
		sort.SliceStable(tops, func(i, j int) bool { return tops[i].Prob > tops[j].Prob })
		if len(tops) > k {
			tops = tops[:k]
		}
		out.Top = tops
		out.Plan = mergePlans(parts)
	case ppd.KindConsensus:
		// Partition rows concatenate in partition order (= session order)
		// and the coordinator re-solves them through the same fold a single
		// process runs; the target and item domain are partition-invariant,
		// so the first surviving partition supplies them.
		var rows []consensus.Row
		var target string
		var domain []string
		found := false
		for _, p := range parts {
			if p == nil {
				continue
			}
			if p.Consensus == nil {
				return nil, fmt.Errorf("cluster: consensus partition answer missing consensus section")
			}
			if !found {
				found = true
				target = p.Consensus.Target
				domain = p.Consensus.Domain
			}
			rows = append(rows, p.Consensus.Rows...)
		}
		if !found {
			return nil, fmt.Errorf("cluster: consensus merge has no partition answers")
		}
		merged, err := server.MergeConsensus(target, domain, k, rows)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		out.Consensus = merged
	case ppd.KindAggregate:
		var rows []ppd.AggRow
		for _, p := range parts {
			if p == nil {
				continue
			}
			if p.Aggregate == nil {
				return nil, fmt.Errorf("cluster: aggregate partition answer missing aggregate section")
			}
			for _, r := range p.Aggregate.Rows {
				rows = append(rows, ppd.AggRow{Prob: r.Prob, Value: r.Value})
			}
		}
		fold := ppd.FoldAggregateRows(rows)
		out.Count = fold.Count
		out.Aggregate = &server.AggregateJSON{Sum: fold.Sum, Count: fold.Count, Sessions: fold.Sessions}
		if !math.IsNaN(fold.Avg) {
			avg := fold.Avg
			out.Aggregate.Avg = &avg
		}
		for _, r := range rows {
			out.Aggregate.Rows = append(out.Aggregate.Rows, server.AggRowJSON{Prob: r.Prob, Value: r.Value})
		}
	default:
		return nil, fmt.Errorf("cluster: unknown kind %v", kind)
	}
	return out, nil
}

// concatPerSession concatenates the partitions' per-session rows in
// partition order (= session order, partitions being contiguous ranges).
func concatPerSession(parts []*server.V1Result) []server.SessionProbJSON {
	var rows []server.SessionProbJSON
	for _, p := range parts {
		if p == nil {
			continue
		}
		rows = append(rows, p.PerSession...)
	}
	return rows
}

// sessionProbs adapts wire rows to ppd.SessionProb for refolding. The
// aggregation code reads only Prob, so the nil Session is safe.
func sessionProbs(rows []server.SessionProbJSON) []ppd.SessionProb {
	sps := make([]ppd.SessionProb, len(rows))
	for i, r := range rows {
		sps[i].Prob = r.Prob
	}
	return sps
}

// mergePlans combines adaptive-planner reports. Unlike the answer sections,
// a distributed plan is advisory, not bit-identical: group counts and
// samples sum exactly, but the merged half-widths are conservative
// combinations (max for the per-group bound, sums for the propagated ones)
// rather than a re-derivation.
func mergePlans(parts []*server.V1Result) *server.PlanJSON {
	var out *server.PlanJSON
	for _, p := range parts {
		if p == nil || p.Plan == nil {
			continue
		}
		if out == nil {
			out = &server.PlanJSON{}
		}
		out.ExactGroups += p.Plan.ExactGroups
		out.SampledGroups += p.Plan.SampledGroups
		out.Samples += p.Plan.Samples
		out.MaxHalfWidth = math.Max(out.MaxHalfWidth, p.Plan.MaxHalfWidth)
		out.ProbHalfWidth += p.Plan.ProbHalfWidth
		out.CountHalfWidth += p.Plan.CountHalfWidth
		for m, n := range p.Plan.Methods {
			if out.Methods == nil {
				out.Methods = map[string]int{}
			}
			out.Methods[m] += n
		}
	}
	return out
}

// stripRows returns res shaped for emission: when the client did not ask
// for per-session rows, the merged form's rows are dropped from a shallow
// copy (the cached entry keeps them for the next caller).
func stripRows(res *ResultJSON, perSession bool) *ResultJSON {
	if perSession {
		return res
	}
	out := *res
	out.PerSession = nil
	if out.Aggregate != nil && out.Aggregate.Rows != nil {
		agg := *out.Aggregate
		agg.Rows = nil
		out.Aggregate = &agg
	}
	if out.Consensus != nil && out.Consensus.Rows != nil {
		cj := *out.Consensus
		cj.Rows = nil
		out.Consensus = &cj
	}
	return &out
}

// cachedCopy returns the cache hit rewritten the way the service layer
// reports its own cache hits: the work the original fan-out performed is
// reclassified as cache hits, and no fresh solves are claimed.
func cachedCopy(res *ResultJSON) *ResultJSON {
	out := *res
	out.CacheHits = out.Solves + out.CacheHits
	out.Solves = 0
	if out.Diag != nil {
		d := *out.Diag
		d.CacheHits += d.BoundSolves + d.ExactSolves
		d.BoundSolves = 0
		d.ExactSolves = 0
		out.Diag = &d
	}
	return &out
}
