package rim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"probpref/internal/rank"
)

func TestGeneralizedMallowsValidation(t *testing.T) {
	sigma := rank.Identity(3)
	cases := []struct {
		name  string
		sigma rank.Ranking
		phis  []float64
	}{
		{"not a permutation", rank.Ranking{0, 0, 2}, []float64{0.5, 0.5, 0.5}},
		{"arity mismatch", sigma, []float64{0.5, 0.5}},
		{"negative phi", sigma, []float64{0.5, -0.1, 0.5}},
		{"phi above one", sigma, []float64{0.5, 1.5, 0.5}},
		{"NaN phi", sigma, []float64{0.5, math.NaN(), 0.5}},
	}
	for _, tc := range cases {
		if _, err := NewGeneralizedMallows(tc.sigma, tc.phis); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
	if _, err := NewGeneralizedMallows(sigma, []float64{0, 0.3, 1}); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
}

func TestGeneralizedMallowsReducesToMallows(t *testing.T) {
	sigma := rank.Ranking{2, 0, 3, 1}
	for _, phi := range []float64{0, 0.1, 0.5, 1} {
		phis := []float64{phi, phi, phi, phi}
		gm := MustGeneralizedMallows(sigma, phis)
		ml := MustMallows(sigma, phi)
		rank.ForEachPermutation(4, func(tau rank.Ranking) bool {
			pg, pm := gm.Prob(tau), ml.Prob(tau)
			if math.Abs(pg-pm) > 1e-12 {
				t.Fatalf("phi=%v tau=%v: GM prob %v != Mallows prob %v", phi, tau, pg, pm)
			}
			return true
		})
	}
}

func TestGeneralizedMallowsProbSumsToOne(t *testing.T) {
	sigma := rank.Identity(5)
	phis := []float64{0.9, 0.1, 0.7, 0.3, 0.5}
	gm := MustGeneralizedMallows(sigma, phis)
	total := 0.0
	rank.ForEachPermutation(5, func(tau rank.Ranking) bool {
		total += gm.Prob(tau)
		return true
	})
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v, want 1", total)
	}
}

func TestGeneralizedMallowsModelEquivalence(t *testing.T) {
	sigma := rank.Ranking{1, 3, 0, 2}
	phis := []float64{1, 0.2, 0.8, 0.4}
	gm := MustGeneralizedMallows(sigma, phis)
	mdl := gm.Model()
	rank.ForEachPermutation(4, func(tau rank.Ranking) bool {
		pg, pm := gm.Prob(tau), mdl.Prob(tau)
		if math.Abs(pg-pm) > 1e-12 {
			t.Fatalf("tau=%v: direct prob %v != RIM prob %v", tau, pg, pm)
		}
		return true
	})
}

func TestGeneralizedMallowsZeroDispersionPins(t *testing.T) {
	// Phis[i] = 0 forces sigma[i] to stay at the bottom of the prefix: with
	// every dispersion zero, only sigma itself has positive probability.
	sigma := rank.Ranking{2, 1, 0}
	gm := MustGeneralizedMallows(sigma, []float64{0, 0, 0})
	if p := gm.Prob(sigma); math.Abs(p-1) > 1e-12 {
		t.Fatalf("Prob(sigma) = %v, want 1", p)
	}
	if p := gm.Prob(rank.Ranking{0, 1, 2}); p != 0 {
		t.Fatalf("Prob(reverse) = %v, want 0", p)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		if tau := gm.Sample(rng); !tau.Equal(sigma) {
			t.Fatalf("sample %v, want sigma %v", tau, sigma)
		}
	}
}

func TestGeneralizedMallowsStageDistances(t *testing.T) {
	sigma := rank.Identity(4)
	gm := MustGeneralizedMallows(sigma, []float64{0.5, 0.5, 0.5, 0.5})
	tau := rank.Ranking{1, 3, 0, 2}
	v, ok := gm.StageDistances(tau)
	if !ok {
		t.Fatal("StageDistances rejected a valid permutation")
	}
	sum := 0
	for _, vi := range v {
		sum += vi
	}
	if want := rank.KendallTau(sigma, tau); sum != want {
		t.Fatalf("sum of stage distances %d != Kendall tau %d", sum, want)
	}
	if _, ok := gm.StageDistances(rank.Ranking{0, 0, 1, 2}); ok {
		t.Fatal("StageDistances accepted a non-permutation")
	}
}

func TestGeneralizedMallowsStageDistancesQuick(t *testing.T) {
	sigma := rank.Ranking{3, 0, 4, 1, 2}
	gm := MustGeneralizedMallows(sigma, []float64{0.3, 0.9, 0.1, 0.6, 0.8})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tau := gm.Sample(rng)
		v, ok := gm.StageDistances(tau)
		if !ok {
			return false
		}
		sum := 0
		for _, vi := range v {
			sum += vi
		}
		return sum == rank.KendallTau(sigma, tau)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneralizedMallowsSamplingFrequencies(t *testing.T) {
	sigma := rank.Identity(3)
	gm := MustGeneralizedMallows(sigma, []float64{1, 0.3, 0.7})
	rng := rand.New(rand.NewSource(42))
	const n = 200000
	counts := make(map[string]int)
	for i := 0; i < n; i++ {
		counts[gm.Sample(rng).Key()]++
	}
	rank.ForEachPermutation(3, func(tau rank.Ranking) bool {
		want := gm.Prob(tau)
		got := float64(counts[tau.Key()]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("tau=%v: empirical %v, exact %v", tau, got, want)
		}
		return true
	})
}

func TestGeneralizedMallowsRehash(t *testing.T) {
	sigma := rank.Identity(3)
	a := MustGeneralizedMallows(sigma, []float64{0.5, 0.5, 0.5})
	b := MustGeneralizedMallows(sigma, []float64{0.5, 0.5, 0.5})
	c := MustGeneralizedMallows(sigma, []float64{0.5, 0.5, 0.6})
	if a.Rehash() != b.Rehash() {
		t.Error("identical models hash differently")
	}
	if a.Rehash() == c.Rehash() {
		t.Error("distinct models hash identically")
	}
	ml := MustMallows(sigma, 0.5)
	if a.Rehash() == ml.Rehash() {
		t.Error("GM and Mallows share a hash")
	}
}
