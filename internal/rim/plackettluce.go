package rim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"probpref/internal/rank"
)

// PlackettLuce is the Plackett-Luce ranking model: every item carries a
// positive worth w, and a ranking is built top-down by repeatedly choosing
// the next item among the remaining ones with probability proportional to
// its worth. Pr(tau) = prod_p w(tau[p]) / sum_{q >= p} w(tau[q]).
//
// Plackett-Luce is not a Repeated Insertion Model, so the paper's exact
// solvers do not apply to it; it is included as a "beyond RIM" preference
// model (the paper's closing future-work direction). Pattern-union
// probabilities over a Plackett-Luce session are computed by rejection
// sampling (sampling.RejectionModel) or, on tiny universes, exactly by
// enumeration (solver.BruteModel).
type PlackettLuce struct {
	// Weights[i] is the worth of item i; strictly positive and finite.
	Weights []float64

	logW []float64
}

// NewPlackettLuce validates and constructs a Plackett-Luce model.
func NewPlackettLuce(weights []float64) (*PlackettLuce, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("rim: Plackett-Luce needs at least one item")
	}
	pl := &PlackettLuce{
		Weights: append([]float64(nil), weights...),
		logW:    make([]float64, len(weights)),
	}
	for i, w := range weights {
		if !(w > 0) || math.IsInf(w, 1) {
			return nil, fmt.Errorf("rim: Plackett-Luce weight %d = %v must be positive and finite", i, w)
		}
		pl.logW[i] = math.Log(w)
	}
	return pl, nil
}

// MustPlackettLuce is NewPlackettLuce but panics on error.
func MustPlackettLuce(weights []float64) *PlackettLuce {
	pl, err := NewPlackettLuce(weights)
	if err != nil {
		panic(err)
	}
	return pl
}

// M returns the number of items.
func (pl *PlackettLuce) M() int { return len(pl.Weights) }

// Sample draws a ranking by sequential selection proportional to worth.
func (pl *PlackettLuce) Sample(rng *rand.Rand) rank.Ranking {
	m := len(pl.Weights)
	remaining := make([]rank.Item, m)
	weights := make([]float64, m)
	total := 0.0
	for i := range remaining {
		remaining[i] = rank.Item(i)
		weights[i] = pl.Weights[i]
		total += pl.Weights[i]
	}
	tau := make(rank.Ranking, 0, m)
	for len(remaining) > 0 {
		u := rng.Float64() * total
		acc := 0.0
		pick := len(remaining) - 1
		for k, w := range weights {
			acc += w
			if u < acc {
				pick = k
				break
			}
		}
		tau = append(tau, remaining[pick])
		total -= weights[pick]
		last := len(remaining) - 1
		remaining[pick], weights[pick] = remaining[last], weights[last]
		remaining, weights = remaining[:last], weights[:last]
	}
	return tau
}

// LogProb returns log Pr(tau), or -Inf when tau is not a permutation of
// 0..M()-1.
func (pl *PlackettLuce) LogProb(tau rank.Ranking) float64 {
	if len(tau) != len(pl.Weights) || !tau.IsPermutation() {
		return math.Inf(-1)
	}
	// Suffix sums of remaining worth.
	rem := 0.0
	suffix := make([]float64, len(tau))
	for p := len(tau) - 1; p >= 0; p-- {
		rem += pl.Weights[tau[p]]
		suffix[p] = rem
	}
	lp := 0.0
	for p, it := range tau {
		lp += pl.logW[it] - math.Log(suffix[p])
	}
	return lp
}

// Prob returns Pr(tau).
func (pl *PlackettLuce) Prob(tau rank.Ranking) float64 {
	return math.Exp(pl.LogProb(tau))
}

// Mode returns the most probable ranking: items by descending worth,
// breaking ties by ascending item id.
func (pl *PlackettLuce) Mode() rank.Ranking {
	tau := rank.Identity(len(pl.Weights))
	sort.SliceStable(tau, func(i, j int) bool {
		return pl.Weights[tau[i]] > pl.Weights[tau[j]]
	})
	return tau
}

// TopProb returns the probability that item x is ranked first:
// w(x) / sum(w).
func (pl *PlackettLuce) TopProb(x rank.Item) float64 {
	if int(x) < 0 || int(x) >= len(pl.Weights) {
		return 0
	}
	total := 0.0
	for _, w := range pl.Weights {
		total += w
	}
	return pl.Weights[x] / total
}

// PairwiseProb returns Pr(a preferred to b) = w(a) / (w(a) + w(b)), the
// Luce choice axiom's closed form for pairwise marginals.
func (pl *PlackettLuce) PairwiseProb(a, b rank.Item) float64 {
	if a == b || int(a) < 0 || int(b) < 0 || int(a) >= len(pl.Weights) || int(b) >= len(pl.Weights) {
		return 0
	}
	return pl.Weights[a] / (pl.Weights[a] + pl.Weights[b])
}

// Rehash returns a deterministic content key for grouping identical models.
func (pl *PlackettLuce) Rehash() string {
	var b strings.Builder
	b.WriteString("pl")
	for _, w := range pl.Weights {
		fmt.Fprintf(&b, "|%.12g", w)
	}
	return b.String()
}
