package rim

import (
	"fmt"
	"math"
	"math/rand"

	"probpref/internal/rank"
)

// Mallows is the Mallows model MAL(sigma, phi) with center ranking sigma and
// dispersion phi in [0, 1]. Pr(tau) is proportional to phi^dist(sigma, tau)
// where dist is the Kendall tau distance. phi = 0 concentrates all mass on
// sigma; phi = 1 is uniform over rankings.
type Mallows struct {
	Sigma rank.Ranking
	Phi   float64

	logZ   float64
	geom   []float64 // geom[k] = 1 + phi + ... + phi^k
	model  *Model
	logPhi float64
}

// NewMallows validates and constructs a Mallows model.
func NewMallows(sigma rank.Ranking, phi float64) (*Mallows, error) {
	if !sigma.IsPermutation() {
		return nil, fmt.Errorf("rim: sigma %v is not a permutation", sigma)
	}
	if phi < 0 || phi > 1 || math.IsNaN(phi) {
		return nil, fmt.Errorf("rim: phi = %v out of [0,1]", phi)
	}
	m := &Mallows{Sigma: sigma.Clone(), Phi: phi}
	m.geom = geometricSums(phi, len(sigma))
	m.logPhi = math.Log(phi)
	for i := 1; i < len(sigma); i++ {
		m.logZ += math.Log(m.geom[i])
	}
	return m, nil
}

// MustMallows is NewMallows but panics on error.
func MustMallows(sigma rank.Ranking, phi float64) *Mallows {
	m, err := NewMallows(sigma, phi)
	if err != nil {
		panic(err)
	}
	return m
}

// geometricSums returns s with s[k] = 1 + phi + ... + phi^k for k < n.
func geometricSums(phi float64, n int) []float64 {
	s := make([]float64, n)
	if n == 0 {
		return s
	}
	s[0] = 1
	pk := 1.0
	for k := 1; k < n; k++ {
		pk *= phi
		s[k] = s[k-1] + pk
	}
	return s
}

// M returns the number of items.
func (ml *Mallows) M() int { return len(ml.Sigma) }

// Model materializes the equivalent RIM(sigma, Pi) with
// Pi[i][j] = phi^(i-j) / (1 + phi + ... + phi^i) (Doignon et al.).
// The result is cached.
func (ml *Mallows) Model() *Model {
	if ml.model != nil {
		return ml.model
	}
	m := len(ml.Sigma)
	pi := make([][]float64, m)
	for i := 0; i < m; i++ {
		row := make([]float64, i+1)
		if ml.Phi == 0 {
			row[i] = 1
		} else {
			norm := ml.geom[i]
			w := 1.0 // phi^(i-j) for j=i
			for j := i; j >= 0; j-- {
				row[j] = w / norm
				w *= ml.Phi
			}
		}
		pi[i] = row
	}
	ml.model = MustNew(ml.Sigma, pi)
	return ml.model
}

// LogZ returns the log of the Mallows normalization constant
// Z = prod_{i=1}^{m-1} (1 + phi + ... + phi^i).
func (ml *Mallows) LogZ() float64 { return ml.logZ }

// LogProb returns log Pr(tau | sigma, phi). For phi = 0 it returns 0 for
// tau = sigma and -Inf otherwise.
func (ml *Mallows) LogProb(tau rank.Ranking) float64 {
	d := rank.KendallTau(ml.Sigma, tau)
	if ml.Phi == 0 {
		if d == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	return float64(d)*ml.logPhi - ml.logZ
}

// Prob returns Pr(tau | sigma, phi) = phi^dist(sigma,tau) / Z.
func (ml *Mallows) Prob(tau rank.Ranking) float64 {
	return math.Exp(ml.LogProb(tau))
}

// Sample draws a ranking via the RIM representation.
func (ml *Mallows) Sample(rng *rand.Rand) rank.Ranking {
	if ml.Phi == 0 {
		return ml.Sigma.Clone()
	}
	return ml.sampleDirect(rng)
}

// sampleDirect draws without materializing the full Pi matrix: at step i the
// insertion offset t = i - j follows the truncated geometric distribution
// with weights phi^t / geom[i].
func (ml *Mallows) sampleDirect(rng *rand.Rand) rank.Ranking {
	m := len(ml.Sigma)
	tau := make(rank.Ranking, 0, m)
	for i, item := range ml.Sigma {
		t := sampleTruncGeom(rng, ml.Phi, i, ml.geom[i])
		j := i - t
		tau = append(tau, 0)
		copy(tau[j+1:], tau[j:])
		tau[j] = item
	}
	return tau
}

// sampleTruncGeom draws t in [0, maxT] with probability phi^t / norm where
// norm = 1 + phi + ... + phi^maxT.
func sampleTruncGeom(rng *rand.Rand, phi float64, maxT int, norm float64) int {
	u := rng.Float64() * norm
	acc := 0.0
	w := 1.0
	for t := 0; t <= maxT; t++ {
		acc += w
		if u < acc {
			return t
		}
		w *= phi
	}
	return maxT
}

// Rehash returns a deterministic content key for grouping identical models
// (same center and dispersion) during query evaluation.
func (ml *Mallows) Rehash() string {
	return fmt.Sprintf("%s|%.12g", ml.Sigma.Key(), ml.Phi)
}

// Reference returns the center ranking (shared; do not modify).
func (ml *Mallows) Reference() rank.Ranking { return ml.Sigma }
