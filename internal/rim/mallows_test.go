package rim

import (
	"math"
	"math/rand"
	"testing"

	"probpref/internal/rank"
)

func TestNewMallowsValidation(t *testing.T) {
	if _, err := NewMallows(rank.Ranking{0, 0}, 0.5); err == nil {
		t.Error("expected error for non-permutation")
	}
	if _, err := NewMallows(rank.Identity(3), -0.1); err == nil {
		t.Error("expected error for phi < 0")
	}
	if _, err := NewMallows(rank.Identity(3), 1.1); err == nil {
		t.Error("expected error for phi > 1")
	}
}

// The Mallows closed form phi^dist/Z must equal the RIM representation with
// Pi(i,j) = phi^(i-j)/(1+phi+...+phi^(i-1)) for every ranking (Doignon et
// al., cited as the basis of Section 2.2).
func TestMallowsEqualsRIM(t *testing.T) {
	for _, phi := range []float64{0.05, 0.3, 0.5, 0.9, 1.0} {
		for m := 1; m <= 5; m++ {
			ml := MustMallows(rank.Identity(m), phi)
			model := ml.Model()
			rank.ForEachPermutation(m, func(tau rank.Ranking) bool {
				a, b := ml.Prob(tau), model.Prob(tau)
				if math.Abs(a-b) > 1e-10 {
					t.Fatalf("phi=%v m=%d tau=%v: closed form %v, RIM %v", phi, m, tau, a, b)
				}
				return true
			})
		}
	}
}

func TestMallowsProbSumsToOne(t *testing.T) {
	for _, phi := range []float64{0.1, 0.5, 1.0} {
		ml := MustMallows(rank.Identity(5), phi)
		sum := 0.0
		rank.ForEachPermutation(5, func(tau rank.Ranking) bool {
			sum += ml.Prob(tau)
			return true
		})
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("phi=%v: sum %v", phi, sum)
		}
	}
}

func TestMallowsPhiZero(t *testing.T) {
	ml := MustMallows(rank.Identity(4), 0)
	if p := ml.Prob(rank.Identity(4)); math.Abs(p-1) > 1e-12 {
		t.Fatalf("Pr(sigma) = %v, want 1", p)
	}
	if p := ml.Prob(rank.Ranking{1, 0, 2, 3}); p != 0 {
		t.Fatalf("Pr(non-sigma) = %v, want 0", p)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		if !ml.Sample(rng).Equal(ml.Sigma) {
			t.Fatal("phi=0 must always sample sigma")
		}
	}
}

func TestMallowsPhiOneUniform(t *testing.T) {
	ml := MustMallows(rank.Identity(4), 1)
	want := 1.0 / 24
	rank.ForEachPermutation(4, func(tau rank.Ranking) bool {
		if p := ml.Prob(tau); math.Abs(p-want) > 1e-12 {
			t.Fatalf("Pr(%v) = %v, want uniform %v", tau, p, want)
		}
		return true
	})
}

// Empirical frequencies of the direct sampler must match the closed form.
func TestMallowsSampleMatchesProb(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ml := MustMallows(rank.Ranking{2, 0, 1, 3}, 0.4)
	const n = 200000
	counts := make(map[string]int)
	for i := 0; i < n; i++ {
		counts[ml.Sample(rng).Key()]++
	}
	rank.ForEachPermutation(4, func(tau rank.Ranking) bool {
		p := ml.Prob(tau)
		emp := float64(counts[tau.Key()]) / n
		if math.Abs(p-emp) > 0.01 {
			t.Fatalf("tau=%v: exact %v, empirical %v", tau, p, emp)
		}
		return true
	})
}

// LogZ must equal log(sum over rankings of phi^dist).
func TestMallowsLogZ(t *testing.T) {
	for _, phi := range []float64{0.2, 0.7, 1.0} {
		ml := MustMallows(rank.Identity(5), phi)
		z := 0.0
		rank.ForEachPermutation(5, func(tau rank.Ranking) bool {
			z += math.Pow(phi, float64(rank.KendallTau(ml.Sigma, tau)))
			return true
		})
		if math.Abs(ml.LogZ()-math.Log(z)) > 1e-9 {
			t.Fatalf("phi=%v: LogZ = %v, want %v", phi, ml.LogZ(), math.Log(z))
		}
	}
}

// Large-m log probabilities must stay finite (no underflow in log space).
func TestMallowsLogProbLargeM(t *testing.T) {
	m := 200
	ml := MustMallows(rank.Identity(m), 0.1)
	rev := make(rank.Ranking, m)
	for i := range rev {
		rev[i] = rank.Item(m - 1 - i)
	}
	lp := ml.LogProb(rev)
	if math.IsInf(lp, 0) || math.IsNaN(lp) {
		t.Fatalf("LogProb overflowed: %v", lp)
	}
	if lp >= 0 {
		t.Fatalf("LogProb = %v, want negative", lp)
	}
}

func TestRehashDistinguishesModels(t *testing.T) {
	a := MustMallows(rank.Identity(3), 0.5)
	b := MustMallows(rank.Identity(3), 0.6)
	c := MustMallows(rank.Ranking{1, 0, 2}, 0.5)
	if a.Rehash() == b.Rehash() || a.Rehash() == c.Rehash() {
		t.Fatal("Rehash collisions")
	}
	if a.Rehash() != MustMallows(rank.Identity(3), 0.5).Rehash() {
		t.Fatal("Rehash must be deterministic")
	}
}
