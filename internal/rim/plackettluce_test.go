package rim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"probpref/internal/rank"
)

func TestPlackettLuceValidation(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
	}{
		{"empty", nil},
		{"zero weight", []float64{1, 0, 2}},
		{"negative weight", []float64{1, -2, 3}},
		{"NaN weight", []float64{1, math.NaN()}},
		{"infinite weight", []float64{1, math.Inf(1)}},
	}
	for _, tc := range cases {
		if _, err := NewPlackettLuce(tc.weights); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
	if _, err := NewPlackettLuce([]float64{0.5, 2, 1e-9}); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
}

func TestPlackettLuceProbSumsToOne(t *testing.T) {
	pl := MustPlackettLuce([]float64{4, 1, 2, 0.5, 3})
	total := 0.0
	rank.ForEachPermutation(5, func(tau rank.Ranking) bool {
		total += pl.Prob(tau)
		return true
	})
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v, want 1", total)
	}
}

func TestPlackettLuceProbHandComputed(t *testing.T) {
	pl := MustPlackettLuce([]float64{3, 2, 1})
	// Pr(<0,1,2>) = 3/6 * 2/3 * 1 = 1/3.
	if p := pl.Prob(rank.Ranking{0, 1, 2}); math.Abs(p-1.0/3) > 1e-12 {
		t.Errorf("Prob(<0,1,2>) = %v, want 1/3", p)
	}
	// Pr(<2,1,0>) = 1/6 * 2/5 * 1 = 1/15.
	if p := pl.Prob(rank.Ranking{2, 1, 0}); math.Abs(p-1.0/15) > 1e-12 {
		t.Errorf("Prob(<2,1,0>) = %v, want 1/15", p)
	}
	if p := pl.Prob(rank.Ranking{0, 1}); p != 0 {
		t.Errorf("Prob of short ranking = %v, want 0", p)
	}
	if p := pl.Prob(rank.Ranking{0, 0, 1}); p != 0 {
		t.Errorf("Prob of non-permutation = %v, want 0", p)
	}
}

func TestPlackettLuceUniform(t *testing.T) {
	pl := MustPlackettLuce([]float64{2, 2, 2, 2})
	want := 1.0 / 24
	rank.ForEachPermutation(4, func(tau rank.Ranking) bool {
		if p := pl.Prob(tau); math.Abs(p-want) > 1e-12 {
			t.Fatalf("uniform PL: Prob(%v) = %v, want %v", tau, p, want)
		}
		return true
	})
}

func TestPlackettLuceMode(t *testing.T) {
	pl := MustPlackettLuce([]float64{1, 5, 3, 5})
	mode := pl.Mode()
	// Descending worth with ties broken by item id: 1, 3, 2, 0.
	want := rank.Ranking{1, 3, 2, 0}
	if !mode.Equal(want) {
		t.Fatalf("Mode() = %v, want %v", mode, want)
	}
	// The mode must be at least as probable as every other ranking.
	pm := pl.Prob(mode)
	rank.ForEachPermutation(4, func(tau rank.Ranking) bool {
		if pl.Prob(tau) > pm+1e-12 {
			t.Fatalf("ranking %v more probable than mode %v", tau, mode)
		}
		return true
	})
}

func TestPlackettLuceTopAndPairwise(t *testing.T) {
	pl := MustPlackettLuce([]float64{1, 3})
	if p := pl.TopProb(1); math.Abs(p-0.75) > 1e-12 {
		t.Errorf("TopProb(1) = %v, want 0.75", p)
	}
	if p := pl.PairwiseProb(1, 0); math.Abs(p-0.75) > 1e-12 {
		t.Errorf("PairwiseProb(1,0) = %v, want 0.75", p)
	}
	if p := pl.PairwiseProb(0, 0); p != 0 {
		t.Errorf("PairwiseProb(0,0) = %v, want 0", p)
	}
	if p := pl.TopProb(5); p != 0 {
		t.Errorf("TopProb out of range = %v, want 0", p)
	}
}

func TestPlackettLucePairwiseMatchesEnumeration(t *testing.T) {
	pl := MustPlackettLuce([]float64{2, 1, 4, 3})
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			if a == b {
				continue
			}
			exact := 0.0
			rank.ForEachPermutation(4, func(tau rank.Ranking) bool {
				if tau.Prefers(rank.Item(a), rank.Item(b)) {
					exact += pl.Prob(tau)
				}
				return true
			})
			got := pl.PairwiseProb(rank.Item(a), rank.Item(b))
			if math.Abs(got-exact) > 1e-10 {
				t.Errorf("PairwiseProb(%d,%d) = %v, enumeration %v", a, b, got, exact)
			}
		}
	}
}

func TestPlackettLuceSamplingFrequencies(t *testing.T) {
	pl := MustPlackettLuce([]float64{5, 1, 2})
	rng := rand.New(rand.NewSource(3))
	const n = 200000
	counts := make(map[string]int)
	for i := 0; i < n; i++ {
		counts[pl.Sample(rng).Key()]++
	}
	rank.ForEachPermutation(3, func(tau rank.Ranking) bool {
		want := pl.Prob(tau)
		got := float64(counts[tau.Key()]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("tau=%v: empirical %v, exact %v", tau, got, want)
		}
		return true
	})
}

func TestPlackettLuceSampleIsPermutationQuick(t *testing.T) {
	pl := MustPlackettLuce([]float64{1, 2, 3, 4, 5, 6})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		return pl.Sample(rng).IsPermutation()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPlackettLuceRehash(t *testing.T) {
	a := MustPlackettLuce([]float64{1, 2})
	b := MustPlackettLuce([]float64{1, 2})
	c := MustPlackettLuce([]float64{2, 1})
	if a.Rehash() != b.Rehash() {
		t.Error("identical models hash differently")
	}
	if a.Rehash() == c.Rehash() {
		t.Error("distinct models hash identically")
	}
}
