package rim

import (
	"fmt"
	"math"
	"math/rand"

	"probpref/internal/rank"
)

// ConditionedRIM generalizes the AMP sampler from Mallows to an arbitrary
// RIM(sigma, Pi): sampling follows the RIM insertion procedure, but each
// item may only be inserted at positions that do not violate the
// conditioning partial order; position j is chosen with probability
// proportional to Pi[i][j] over the feasible range.
//
// For a Mallows Pi this is exactly AMP. For other RIMs — e.g. the
// Generalized Mallows model — it provides the proposal distribution that
// importance sampling over conditioned rankings needs (sampling.ISRIM),
// extending the paper's approximate-inference machinery beyond the plain
// Mallows case. Like AMP, the sampler draws from an approximation of the
// true conditioned posterior; its exact proposal density (LogDensity) is
// what makes re-weighting correct.
type ConditionedRIM struct {
	model *Model

	cons  *rank.PartialOrder // transitively closed constraints
	preds map[rank.Item][]rank.Item
	succs map[rank.Item][]rank.Item
}

// NewConditionedRIM builds the conditioned sampler. cons may be any acyclic
// preference graph; it is transitively closed internally. Every feasible
// range must retain positive probability mass, which holds whenever Pi is
// strictly positive; rows with zeros are accepted but sampling may fail
// with ErrInfeasible if a feasible range has zero mass.
func NewConditionedRIM(model *Model, cons *rank.PartialOrder) (*ConditionedRIM, error) {
	if cons == nil {
		cons = rank.NewPartialOrder()
	}
	if cons.HasCycle() {
		return nil, fmt.Errorf("rim: conditioned RIM constraints contain a cycle")
	}
	tc := cons.TransitiveClosure()
	c := &ConditionedRIM{
		model: model,
		cons:  tc,
		preds: make(map[rank.Item][]rank.Item),
		succs: make(map[rank.Item][]rank.Item),
	}
	for _, e := range tc.Edges() {
		if int(e[0]) >= model.M() || int(e[1]) >= model.M() || e[0] < 0 || e[1] < 0 {
			return nil, fmt.Errorf("rim: conditioned RIM constraint mentions unknown item %v", e)
		}
		c.succs[e[0]] = append(c.succs[e[0]], e[1])
		c.preds[e[1]] = append(c.preds[e[1]], e[0])
	}
	return c, nil
}

// ErrInfeasible reports that a feasible insertion range carries zero
// probability mass under the underlying RIM.
var ErrInfeasible = fmt.Errorf("rim: conditioned RIM feasible range has zero mass")

// Model returns the underlying RIM.
func (c *ConditionedRIM) Model() *Model { return c.model }

// Constraints returns the (transitively closed) conditioning order.
func (c *ConditionedRIM) Constraints() *rank.PartialOrder { return c.cons }

// feasible returns the inclusive feasible insertion range [lo, hi] for item
// x given the positions of already-inserted items.
func (c *ConditionedRIM) feasible(x rank.Item, pos map[rank.Item]int, i int) (int, int) {
	lo, hi := 0, i
	for _, y := range c.preds[x] {
		if p, ok := pos[y]; ok && p+1 > lo {
			lo = p + 1
		}
	}
	for _, z := range c.succs[x] {
		if p, ok := pos[z]; ok && p < hi {
			hi = p
		}
	}
	return lo, hi
}

func (c *ConditionedRIM) constrained(it rank.Item) bool {
	_, a := c.preds[it]
	_, b := c.succs[it]
	return a || b
}

// Sample draws a ranking consistent with the constraints and returns it
// together with the log of its sampling probability. It returns
// ErrInfeasible when a feasible range has zero mass under Pi.
func (c *ConditionedRIM) Sample(rng *rand.Rand) (rank.Ranking, float64, error) {
	m := c.model.M()
	tau := make(rank.Ranking, 0, m)
	pos := make(map[rank.Item]int, len(c.preds)+len(c.succs))
	logq := 0.0
	for i, item := range c.model.Sigma() {
		lo, hi := c.feasible(item, pos, i)
		if lo > hi {
			// Cannot happen for transitively closed consistent constraints.
			panic("rim: conditioned RIM feasible range empty")
		}
		mass := 0.0
		for j := lo; j <= hi; j++ {
			mass += c.model.Pi(i, j)
		}
		if mass <= 0 {
			return nil, 0, ErrInfeasible
		}
		u := rng.Float64() * mass
		j, acc := hi, 0.0
		for jj := lo; jj <= hi; jj++ {
			acc += c.model.Pi(i, jj)
			if u < acc {
				j = jj
				break
			}
		}
		logq += math.Log(c.model.Pi(i, j) / mass)
		tau = append(tau, 0)
		copy(tau[j+1:], tau[j:])
		tau[j] = item
		for it, p := range pos {
			if p >= j {
				pos[it] = p + 1
			}
		}
		if c.constrained(item) {
			pos[item] = j
		}
	}
	return tau, logq, nil
}

// LogDensity returns the log probability that Sample produces tau, and
// ok=false when tau is outside the support (not a permutation of the
// universe, inconsistent with the constraints, or blocked by a zero-mass
// insertion).
func (c *ConditionedRIM) LogDensity(tau rank.Ranking) (float64, bool) {
	js, ok := c.model.InsertionPositions(tau)
	if !ok {
		return 0, false
	}
	pos := make(map[rank.Item]int, len(c.preds)+len(c.succs))
	logq := 0.0
	for i, item := range c.model.Sigma() {
		lo, hi := c.feasible(item, pos, i)
		j := js[i]
		if j < lo || j > hi {
			return 0, false
		}
		mass := 0.0
		for jj := lo; jj <= hi; jj++ {
			mass += c.model.Pi(i, jj)
		}
		pj := c.model.Pi(i, j)
		if mass <= 0 || pj <= 0 {
			return 0, false
		}
		logq += math.Log(pj / mass)
		for it, p := range pos {
			if p >= j {
				pos[it] = p + 1
			}
		}
		if c.constrained(item) {
			pos[item] = j
		}
	}
	return logq, true
}
