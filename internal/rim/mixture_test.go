package rim

import (
	"math"
	"math/rand"
	"testing"

	"probpref/internal/rank"
)

func TestNewMixtureValidation(t *testing.T) {
	a := MustMallows(rank.Identity(3), 0.3)
	b := MustMallows(rank.Identity(3), 0.7)
	if _, err := NewMixture(nil, nil); err == nil {
		t.Error("empty mixture accepted")
	}
	if _, err := NewMixture([]*Mallows{a, b}, []float64{1}); err == nil {
		t.Error("weight arity mismatch accepted")
	}
	if _, err := NewMixture([]*Mallows{a, b}, []float64{0.6, 0.6}); err == nil {
		t.Error("non-normalized weights accepted")
	}
	if _, err := NewMixture([]*Mallows{a, b}, []float64{-0.5, 1.5}); err == nil {
		t.Error("negative weight accepted")
	}
	c := MustMallows(rank.Identity(4), 0.3)
	if _, err := NewMixture([]*Mallows{a, c}, []float64{0.5, 0.5}); err == nil {
		t.Error("mismatched item counts accepted")
	}
	if _, err := NewMixture([]*Mallows{a, b}, []float64{0.4, 0.6}); err != nil {
		t.Errorf("valid mixture rejected: %v", err)
	}
}

// Mixture probability must be the weighted sum of component probabilities
// and sum to 1 over all rankings.
func TestMixtureProb(t *testing.T) {
	a := MustMallows(rank.Identity(4), 0.2)
	b := MustMallows(rank.Ranking{3, 2, 1, 0}, 0.6)
	mx, err := NewMixture([]*Mallows{a, b}, []float64{0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	rank.ForEachPermutation(4, func(tau rank.Ranking) bool {
		p := mx.Prob(tau)
		want := 0.3*a.Prob(tau) + 0.7*b.Prob(tau)
		if math.Abs(p-want) > 1e-12 {
			t.Fatalf("Prob(%v) = %v, want %v", tau, p, want)
		}
		if lp := mx.LogProb(tau); math.Abs(math.Exp(lp)-p) > 1e-12 {
			t.Fatalf("LogProb inconsistent: exp(%v) != %v", lp, p)
		}
		total += p
		return true
	})
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("mixture probabilities sum to %v", total)
	}
}

func TestMixtureSampleMatchesProb(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := MustMallows(rank.Identity(3), 0.2)
	b := MustMallows(rank.Ranking{2, 1, 0}, 0.2)
	mx, err := UniformMixture(a, b)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		counts[mx.Sample(rng).Key()]++
	}
	rank.ForEachPermutation(3, func(tau rank.Ranking) bool {
		emp := float64(counts[tau.Key()]) / n
		if math.Abs(emp-mx.Prob(tau)) > 0.01 {
			t.Fatalf("tau=%v: empirical %v, exact %v", tau, emp, mx.Prob(tau))
		}
		return true
	})
}

// The posterior over components must be a distribution and concentrate on
// the component whose center matches the observation.
func TestMixturePosterior(t *testing.T) {
	a := MustMallows(rank.Identity(5), 0.1)
	rev := rank.Ranking{4, 3, 2, 1, 0}
	b := MustMallows(rev, 0.1)
	mx, err := UniformMixture(a, b)
	if err != nil {
		t.Fatal(err)
	}
	post := mx.Posterior(rank.Identity(5))
	if math.Abs(post[0]+post[1]-1) > 1e-12 {
		t.Fatalf("posterior not normalized: %v", post)
	}
	if post[0] < 0.99 {
		t.Fatalf("posterior should concentrate on component 0: %v", post)
	}
	post = mx.Posterior(rev)
	if post[1] < 0.99 {
		t.Fatalf("posterior should concentrate on component 1: %v", post)
	}
}
