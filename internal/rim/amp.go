package rim

import (
	"fmt"
	"math"
	"math/rand"

	"probpref/internal/rank"
)

// AMP is the Approximate Mallows Posterior sampler of Lu and Boutilier:
// it draws rankings from (an approximation of) the Mallows posterior
// conditioned on a partial order upsilon. Sampling follows the RIM insertion
// procedure of MAL(center, phi), but each item may only be inserted at
// positions that do not violate upsilon; position j is chosen with
// probability proportional to phi^(i-j) over the feasible range.
//
// AMP exposes its exact proposal density, which is what the importance
// samplers of package sampling need for re-weighting.
type AMP struct {
	Center rank.Ranking
	Phi    float64

	cons   *rank.PartialOrder // transitively closed constraints
	preds  map[rank.Item][]rank.Item
	succs  map[rank.Item][]rank.Item
	geom   []float64
	logPhi float64
}

// NewAMP builds an AMP sampler for MAL(center, phi) conditioned on cons.
// cons may be any acyclic preference graph; it is transitively closed
// internally. phi must be in (0, 1].
func NewAMP(center rank.Ranking, phi float64, cons *rank.PartialOrder) (*AMP, error) {
	if !center.IsPermutation() {
		return nil, fmt.Errorf("rim: AMP center %v is not a permutation", center)
	}
	if phi <= 0 || phi > 1 || math.IsNaN(phi) {
		return nil, fmt.Errorf("rim: AMP requires phi in (0,1], got %v", phi)
	}
	if cons == nil {
		cons = rank.NewPartialOrder()
	}
	if cons.HasCycle() {
		return nil, fmt.Errorf("rim: AMP constraints contain a cycle")
	}
	tc := cons.TransitiveClosure()
	a := &AMP{
		Center: center.Clone(),
		Phi:    phi,
		cons:   tc,
		preds:  make(map[rank.Item][]rank.Item),
		succs:  make(map[rank.Item][]rank.Item),
		geom:   geometricSums(phi, len(center)+1),
		logPhi: math.Log(phi),
	}
	for _, e := range tc.Edges() {
		if int(e[0]) >= len(center) || int(e[1]) >= len(center) || e[0] < 0 || e[1] < 0 {
			return nil, fmt.Errorf("rim: AMP constraint mentions unknown item %v", e)
		}
		a.succs[e[0]] = append(a.succs[e[0]], e[1])
		a.preds[e[1]] = append(a.preds[e[1]], e[0])
	}
	return a, nil
}

// MustAMP is NewAMP but panics on error.
func MustAMP(center rank.Ranking, phi float64, cons *rank.PartialOrder) *AMP {
	a, err := NewAMP(center, phi, cons)
	if err != nil {
		panic(err)
	}
	return a
}

// feasible returns the inclusive feasible insertion range [lo, hi] for item
// x given the positions of already-inserted items. pos maps item -> current
// position; i is the number of items already inserted.
func (a *AMP) feasible(x rank.Item, pos map[rank.Item]int, i int) (int, int) {
	lo, hi := 0, i
	for _, y := range a.preds[x] {
		if p, ok := pos[y]; ok && p+1 > lo {
			lo = p + 1
		}
	}
	for _, z := range a.succs[x] {
		if p, ok := pos[z]; ok && p < hi {
			hi = p
		}
	}
	return lo, hi
}

// Sample draws a ranking consistent with the constraints and returns it
// together with the log of its AMP sampling probability.
//
// Only the positions of constrained items are tracked incrementally, so each
// insertion costs O(#constrained + memmove).
func (a *AMP) Sample(rng *rand.Rand) (rank.Ranking, float64) {
	m := len(a.Center)
	tau := make(rank.Ranking, 0, m)
	pos := make(map[rank.Item]int, len(a.preds)+len(a.succs))
	logq := 0.0
	for i, item := range a.Center {
		lo, hi := a.feasible(item, pos, i)
		if lo > hi {
			// Cannot happen for transitively closed consistent constraints:
			// every predecessor precedes every successor in the invariant.
			panic("rim: AMP feasible range empty")
		}
		// Offset t = hi - j in [0, hi-lo]; weight phi^(i-j) prop. to phi^t.
		t := sampleTruncGeom(rng, a.Phi, hi-lo, a.geom[hi-lo])
		j := hi - t
		logq += float64(hi-j)*a.logPhi - math.Log(a.geom[hi-lo])
		tau = append(tau, 0)
		copy(tau[j+1:], tau[j:])
		tau[j] = item
		for it, p := range pos {
			if p >= j {
				pos[it] = p + 1
			}
		}
		if a.constrained(item) {
			pos[item] = j
		}
	}
	return tau, logq
}

func (a *AMP) constrained(it rank.Item) bool {
	if _, ok := a.preds[it]; ok {
		return true
	}
	_, ok := a.succs[it]
	return ok
}

// LogDensity returns the log probability that AMP samples exactly tau, and
// whether tau is reachable (it is not when tau violates the constraints or
// ranks different items). Runs in O(m log m) using a Fenwick tree over final
// positions.
func (a *AMP) LogDensity(tau rank.Ranking) (float64, bool) {
	m := len(a.Center)
	if len(tau) != m {
		return math.Inf(-1), false
	}
	finalPos := make([]int, m)
	for i := range finalPos {
		finalPos[i] = -1
	}
	for p, it := range tau {
		if int(it) < 0 || int(it) >= m || finalPos[it] >= 0 {
			return math.Inf(-1), false
		}
		finalPos[it] = p
	}
	// fen[k] counts inserted items with final position < k; the current
	// position of an inserted item y is fen.query(finalPos[y]).
	fen := newFenwick(m)
	inserted := make([]bool, m)
	logq := 0.0
	for i, item := range a.Center {
		fp := finalPos[item]
		j := fen.query(fp)
		lo, hi := 0, i
		for _, y := range a.preds[item] {
			if inserted[y] {
				if p := fen.query(finalPos[y]) + 1; p > lo {
					lo = p
				}
			}
		}
		for _, z := range a.succs[item] {
			if inserted[z] {
				if p := fen.query(finalPos[z]); p < hi {
					hi = p
				}
			}
		}
		if j < lo || j > hi {
			return math.Inf(-1), false
		}
		logq += float64(hi-j)*a.logPhi - math.Log(a.geom[hi-lo])
		fen.add(fp)
		inserted[item] = true
	}
	return logq, true
}

// fenwick is a binary indexed tree counting marked indices.
type fenwick struct{ t []int }

func newFenwick(n int) *fenwick { return &fenwick{t: make([]int, n+1)} }

// add marks index i.
func (f *fenwick) add(i int) {
	for i++; i < len(f.t); i += i & (-i) {
		f.t[i]++
	}
}

// query returns the number of marked indices strictly less than i.
func (f *fenwick) query(i int) int {
	s := 0
	for ; i > 0; i -= i & (-i) {
		s += f.t[i]
	}
	return s
}

// Constraints returns the transitively closed constraint order.
func (a *AMP) Constraints() *rank.PartialOrder { return a.cons }
