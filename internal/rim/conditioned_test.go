package rim

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"probpref/internal/rank"
)

func TestConditionedRIMMatchesAMPOnMallows(t *testing.T) {
	ml := MustMallows(rank.Ranking{2, 0, 3, 1}, 0.4)
	cons := rank.NewPartialOrder()
	cons.Add(3, 2)
	cons.Add(1, 0)
	amp := MustAMP(ml.Sigma, ml.Phi, cons)
	cond, err := NewConditionedRIM(ml.Model(), cons)
	if err != nil {
		t.Fatal(err)
	}
	rank.ForEachPermutation(4, func(tau rank.Ranking) bool {
		la, oka := amp.LogDensity(tau)
		lc, okc := cond.LogDensity(tau)
		if oka != okc {
			t.Fatalf("tau=%v: AMP ok=%v, conditioned ok=%v", tau, oka, okc)
		}
		if oka && math.Abs(la-lc) > 1e-9 {
			t.Fatalf("tau=%v: AMP log density %v, conditioned %v", tau, la, lc)
		}
		return true
	})
}

func TestConditionedRIMDensitySumsToOne(t *testing.T) {
	gm := MustGeneralizedMallows(rank.Ranking{1, 3, 0, 2}, []float64{1, 0.2, 0.8, 0.5})
	cons := rank.NewPartialOrder()
	cons.Add(2, 1)
	cond, err := NewConditionedRIM(gm.Model(), cons)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	rank.ForEachPermutation(4, func(tau rank.Ranking) bool {
		if lq, ok := cond.LogDensity(tau); ok {
			if !tau.Prefers(2, 1) {
				t.Fatalf("support includes %v which violates the constraint", tau)
			}
			total += math.Exp(lq)
		}
		return true
	})
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("conditioned densities sum to %v, want 1", total)
	}
}

func TestConditionedRIMSampleConsistency(t *testing.T) {
	gm := MustGeneralizedMallows(rank.Identity(5), []float64{0.5, 0.9, 0.1, 0.7, 0.3})
	cons := rank.NewPartialOrder()
	cons.Add(4, 0)
	cons.Add(3, 1)
	cond, err := NewConditionedRIM(gm.Model(), cons)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 200; i++ {
		tau, logq, err := cond.Sample(rng)
		if err != nil {
			t.Fatal(err)
		}
		if !tau.Prefers(4, 0) || !tau.Prefers(3, 1) {
			t.Fatalf("sample %v violates constraints", tau)
		}
		got, ok := cond.LogDensity(tau)
		if !ok || math.Abs(got-logq) > 1e-9 {
			t.Fatalf("LogDensity %v ok=%v, sampling reported %v", got, ok, logq)
		}
	}
}

func TestConditionedRIMValidation(t *testing.T) {
	mdl := MustMallows(rank.Identity(3), 0.5).Model()
	cyc := rank.NewPartialOrder()
	cyc.Add(0, 1)
	cyc.Add(1, 0)
	if _, err := NewConditionedRIM(mdl, cyc); err == nil {
		t.Error("cycle accepted")
	}
	oob := rank.NewPartialOrder()
	oob.Add(0, 7)
	if _, err := NewConditionedRIM(mdl, oob); err == nil {
		t.Error("out-of-range item accepted")
	}
	if _, err := NewConditionedRIM(mdl, nil); err != nil {
		t.Errorf("nil constraints rejected: %v", err)
	}
}

func TestConditionedRIMInfeasible(t *testing.T) {
	// phi = 0 concentrates each insertion at the bottom position; forcing
	// item 2 before item 0 leaves a feasible range with zero mass.
	mdl := MustMallows(rank.Identity(3), 0).Model()
	cons := rank.NewPartialOrder()
	cons.Add(2, 0)
	cond, err := NewConditionedRIM(mdl, cons)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	if _, _, err := cond.Sample(rng); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if _, ok := cond.LogDensity(rank.Ranking{2, 0, 1}); ok {
		t.Error("zero-mass path reported as in-support")
	}
}

func TestModelLogProb(t *testing.T) {
	gm := MustGeneralizedMallows(rank.Identity(4), []float64{1, 0.3, 0.6, 0.9})
	mdl := gm.Model()
	rank.ForEachPermutation(4, func(tau rank.Ranking) bool {
		p := mdl.Prob(tau)
		lp := mdl.LogProb(tau)
		if math.Abs(math.Exp(lp)-p) > 1e-12 {
			t.Fatalf("tau=%v: exp(LogProb)=%v, Prob=%v", tau, math.Exp(lp), p)
		}
		return true
	})
	if lp := mdl.LogProb(rank.Ranking{0, 1}); !math.IsInf(lp, -1) {
		t.Errorf("LogProb of short ranking = %v, want -Inf", lp)
	}
	// Zero-probability path under phi = 0.
	point := MustMallows(rank.Identity(3), 0).Model()
	if lp := point.LogProb(rank.Ranking{1, 0, 2}); !math.IsInf(lp, -1) {
		t.Errorf("LogProb of unreachable ranking = %v, want -Inf", lp)
	}
}
