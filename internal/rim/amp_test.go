package rim

import (
	"math"
	"math/rand"
	"testing"

	"probpref/internal/rank"
)

func TestNewAMPValidation(t *testing.T) {
	if _, err := NewAMP(rank.Identity(3), 0, nil); err == nil {
		t.Error("phi=0 must be rejected")
	}
	cyc := rank.FromPairs([][2]rank.Item{{0, 1}, {1, 0}})
	if _, err := NewAMP(rank.Identity(3), 0.5, cyc); err == nil {
		t.Error("cyclic constraints must be rejected")
	}
	bad := rank.FromPairs([][2]rank.Item{{0, 7}})
	if _, err := NewAMP(rank.Identity(3), 0.5, bad); err == nil {
		t.Error("constraints over unknown items must be rejected")
	}
}

// Example 2.2 of the paper: AMP(<a,b,c>, phi, {c > a}) samples <b,c,a> with
// probability phi/(1+phi)^2.
func TestAMPExample22(t *testing.T) {
	phi := 0.3
	cons := rank.FromPairs([][2]rank.Item{{2, 0}}) // c preferred to a
	amp := MustAMP(rank.Identity(3), phi, cons)
	tau := rank.Ranking{1, 2, 0} // <b, c, a>
	logq, ok := amp.LogDensity(tau)
	if !ok {
		t.Fatal("tau should be reachable")
	}
	want := phi / ((1 + phi) * (1 + phi))
	if got := math.Exp(logq); math.Abs(got-want) > 1e-12 {
		t.Fatalf("density = %v, want %v", got, want)
	}
}

// Every AMP sample must be consistent with the constraints, and empirical
// frequencies must match LogDensity.
func TestAMPSampleMatchesDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cons := rank.FromPairs([][2]rank.Item{{3, 0}, {2, 1}})
	amp := MustAMP(rank.Identity(4), 0.5, cons)
	const n = 200000
	counts := make(map[string]int)
	for i := 0; i < n; i++ {
		tau, logq := amp.Sample(rng)
		if !amp.Constraints().Consistent(tau) {
			t.Fatalf("sample %v violates constraints", tau)
		}
		// The log density returned by Sample must agree with LogDensity.
		ld, ok := amp.LogDensity(tau)
		if !ok || math.Abs(ld-logq) > 1e-9 {
			t.Fatalf("sample logq %v != LogDensity %v (ok=%v)", logq, ld, ok)
		}
		counts[tau.Key()]++
	}
	total := 0.0
	rank.ForEachPermutation(4, func(tau rank.Ranking) bool {
		logq, ok := amp.LogDensity(tau)
		if !ok {
			if counts[tau.Key()] > 0 {
				t.Fatalf("unreachable tau %v was sampled", tau)
			}
			return true
		}
		q := math.Exp(logq)
		total += q
		emp := float64(counts[tau.Key()]) / n
		if math.Abs(q-emp) > 0.01 {
			t.Fatalf("tau=%v: density %v, empirical %v", tau, q, emp)
		}
		return true
	})
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("AMP densities sum to %v over consistent rankings", total)
	}
}

// With no constraints AMP must coincide exactly with the Mallows model.
func TestAMPUnconstrainedEqualsMallows(t *testing.T) {
	for _, phi := range []float64{0.2, 1.0} {
		amp := MustAMP(rank.Identity(4), phi, nil)
		ml := MustMallows(rank.Identity(4), phi)
		rank.ForEachPermutation(4, func(tau rank.Ranking) bool {
			logq, ok := amp.LogDensity(tau)
			if !ok {
				t.Fatalf("tau %v unreachable without constraints", tau)
			}
			if math.Abs(math.Exp(logq)-ml.Prob(tau)) > 1e-10 {
				t.Fatalf("phi=%v tau=%v: AMP %v != Mallows %v", phi, tau, math.Exp(logq), ml.Prob(tau))
			}
			return true
		})
	}
}

// LogDensity must reject rankings that violate the constraints.
func TestAMPLogDensityInconsistent(t *testing.T) {
	cons := rank.FromPairs([][2]rank.Item{{2, 0}})
	amp := MustAMP(rank.Identity(3), 0.5, cons)
	if _, ok := amp.LogDensity(rank.Ranking{0, 1, 2}); ok {
		t.Fatal("inconsistent ranking should be unreachable")
	}
	if _, ok := amp.LogDensity(rank.Ranking{0, 1}); ok {
		t.Fatal("wrong length should be unreachable")
	}
}

// AMP densities over the consistent rankings are proportional to the Mallows
// posterior exactly when the constraint is a chain that is "insertion
// compatible"; in general AMP is approximate. Here we only check they are a
// proper distribution over consistent rankings for random partial orders.
func TestAMPDensityNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		m := 3 + rng.Intn(3)
		cons := rank.NewPartialOrder()
		for a := 0; a < m; a++ {
			for b := 0; b < m; b++ {
				if a != b && rng.Float64() < 0.25 {
					cons.Add(rank.Item(a), rank.Item(b))
				}
			}
		}
		if cons.HasCycle() {
			continue
		}
		amp := MustAMP(rank.Identity(m), 0.3+0.5*rng.Float64(), cons)
		total := 0.0
		rank.ForEachPermutation(m, func(tau rank.Ranking) bool {
			if logq, ok := amp.LogDensity(tau); ok {
				total += math.Exp(logq)
				if !amp.Constraints().Consistent(tau) {
					t.Fatalf("reachable tau %v inconsistent", tau)
				}
			}
			return true
		})
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("trial %d: densities sum to %v", trial, total)
		}
	}
}
