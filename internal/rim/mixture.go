package rim

import (
	"fmt"
	"math"
	"math/rand"

	"probpref/internal/rank"
)

// Mixture is a finite mixture of Mallows models — the model class the paper
// mines from the MovieLens and CrowdRank rating data [26]. Component c is
// drawn with probability Weights[c], then a ranking is drawn from
// Components[c].
type Mixture struct {
	Components []*Mallows
	Weights    []float64
}

// NewMixture validates and constructs a mixture. Weights must be
// non-negative and sum to 1 (within tolerance); all components must rank
// the same number of items.
func NewMixture(components []*Mallows, weights []float64) (*Mixture, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("rim: mixture needs at least one component")
	}
	if len(weights) != len(components) {
		return nil, fmt.Errorf("rim: %d weights for %d components", len(weights), len(components))
	}
	m := components[0].M()
	sum := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("rim: weight %d = %v is invalid", i, w)
		}
		sum += w
		if components[i].M() != m {
			return nil, fmt.Errorf("rim: component %d ranks %d items, component 0 ranks %d",
				i, components[i].M(), m)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("rim: weights sum to %v, want 1", sum)
	}
	return &Mixture{Components: components, Weights: weights}, nil
}

// UniformMixture builds a mixture with equal weights.
func UniformMixture(components ...*Mallows) (*Mixture, error) {
	w := make([]float64, len(components))
	for i := range w {
		w[i] = 1 / float64(len(components))
	}
	return NewMixture(components, w)
}

// M returns the number of items.
func (mx *Mixture) M() int { return mx.Components[0].M() }

// K returns the number of components.
func (mx *Mixture) K() int { return len(mx.Components) }

// Sample draws a component, then a ranking from it.
func (mx *Mixture) Sample(rng *rand.Rand) rank.Ranking {
	return mx.Components[mx.SampleComponent(rng)].Sample(rng)
}

// SampleComponent draws a component index according to the weights.
func (mx *Mixture) SampleComponent(rng *rand.Rand) int {
	u := rng.Float64()
	acc := 0.0
	for c, w := range mx.Weights {
		acc += w
		if u < acc {
			return c
		}
	}
	return len(mx.Weights) - 1
}

// Prob returns the mixture probability of tau.
func (mx *Mixture) Prob(tau rank.Ranking) float64 {
	p := 0.0
	for c, ml := range mx.Components {
		p += mx.Weights[c] * ml.Prob(tau)
	}
	return p
}

// LogProb returns log Prob(tau) stably.
func (mx *Mixture) LogProb(tau rank.Ranking) float64 {
	max := math.Inf(-1)
	logs := make([]float64, len(mx.Components))
	for c, ml := range mx.Components {
		lp := ml.LogProb(tau)
		if mx.Weights[c] > 0 {
			lp += math.Log(mx.Weights[c])
		} else {
			lp = math.Inf(-1)
		}
		logs[c] = lp
		if lp > max {
			max = lp
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	sum := 0.0
	for _, lp := range logs {
		if !math.IsInf(lp, -1) {
			sum += math.Exp(lp - max)
		}
	}
	return max + math.Log(sum)
}

// Posterior returns the posterior distribution over components given an
// observed ranking (responsibilities), used when assigning sessions to
// components as the mixture-mining pipelines of [26] do.
func (mx *Mixture) Posterior(tau rank.Ranking) []float64 {
	post := make([]float64, len(mx.Components))
	total := 0.0
	for c, ml := range mx.Components {
		post[c] = mx.Weights[c] * ml.Prob(tau)
		total += post[c]
	}
	if total > 0 {
		for c := range post {
			post[c] /= total
		}
	}
	return post
}
