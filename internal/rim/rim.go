// Package rim implements the Repeated Insertion Model (RIM) of Doignon,
// Pekec and Regenwetter, the Mallows model as its special case, and the AMP
// sampler of Lu and Boutilier for drawing from a Mallows posterior
// conditioned on a partial order.
//
// A RIM(sigma, Pi) inserts the items of the reference ranking sigma one by
// one: item sigma[i] (0-based) is inserted into the current partial ranking
// at position j in [0, i] with probability Pi[i][j]. The Mallows model
// MAL(sigma, phi) is RIM with Pi[i][j] = phi^(i-j) / (1 + phi + ... + phi^i).
package rim

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"probpref/internal/rank"
)

// Model is a Repeated Insertion Model RIM(sigma, Pi).
type Model struct {
	sigma rank.Ranking
	pi    [][]float64
}

// New validates and constructs a RIM model. pi[i] must have i+1 entries that
// are non-negative and sum to 1 (within tolerance).
func New(sigma rank.Ranking, pi [][]float64) (*Model, error) {
	if !sigma.IsPermutation() {
		return nil, fmt.Errorf("rim: sigma %v is not a permutation of 0..%d", sigma, len(sigma)-1)
	}
	if len(pi) != len(sigma) {
		return nil, fmt.Errorf("rim: Pi has %d rows, want %d", len(pi), len(sigma))
	}
	for i, row := range pi {
		if len(row) != i+1 {
			return nil, fmt.Errorf("rim: Pi row %d has %d entries, want %d", i, len(row), i+1)
		}
		sum := 0.0
		for j, p := range row {
			if p < 0 || math.IsNaN(p) {
				return nil, fmt.Errorf("rim: Pi[%d][%d] = %v is invalid", i, j, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return nil, fmt.Errorf("rim: Pi row %d sums to %v, want 1", i, sum)
		}
	}
	return &Model{sigma: sigma.Clone(), pi: pi}, nil
}

// NewUnchecked constructs a RIM around sigma and pi without validating the
// RIM invariants and without copying sigma: both slices are adopted as-is
// and must not be mutated afterwards. It exists for loaders that have
// already established the invariants out of band — the columnar snapshot
// reader of internal/store, whose checksummed format guarantees row shapes
// and stochasticity at write time — so that opening a large store does not
// re-validate (or copy) every session's insertion matrix. Every other
// caller should use New.
func NewUnchecked(sigma rank.Ranking, pi [][]float64) *Model {
	return &Model{sigma: sigma, pi: pi}
}

// MustNew is New but panics on error; for tests and literals.
func MustNew(sigma rank.Ranking, pi [][]float64) *Model {
	m, err := New(sigma, pi)
	if err != nil {
		panic(err)
	}
	return m
}

// M returns the number of items.
func (m *Model) M() int { return len(m.sigma) }

// Sigma returns the reference ranking (shared; do not modify).
func (m *Model) Sigma() rank.Ranking { return m.sigma }

// Reference returns the reference ranking; it makes *Model usable wherever
// a SessionModel is expected.
func (m *Model) Reference() rank.Ranking { return m.sigma }

// Model returns the model itself: a RIM is its own materialization.
func (m *Model) Model() *Model { return m }

// Rehash returns a deterministic content key over sigma and the full
// insertion matrix, for grouping identical models during query evaluation.
func (m *Model) Rehash() string {
	var b strings.Builder
	b.WriteString("rim|")
	b.WriteString(m.sigma.Key())
	for _, row := range m.pi {
		b.WriteByte('|')
		for j, p := range row {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%.12g", p)
		}
	}
	return b.String()
}

// Pi returns the insertion probability Pi[i][j] (0-based).
func (m *Model) Pi(i, j int) float64 { return m.pi[i][j] }

// PiRow returns insertion row i, Pi[i][0..i]. The solvers hoist it out of
// their inner loops; callers must treat the row as read-only.
func (m *Model) PiRow(i int) []float64 { return m.pi[i] }

// Sample draws a ranking using Algorithm 1 of the paper.
func (m *Model) Sample(rng *rand.Rand) rank.Ranking {
	tau := make(rank.Ranking, 0, len(m.sigma))
	for i, item := range m.sigma {
		j := sampleIndex(rng, m.pi[i])
		// In-place insert.
		tau = append(tau, 0)
		copy(tau[j+1:], tau[j:])
		tau[j] = item
	}
	return tau
}

// Prob returns the probability that the model generates tau. Every ranking
// has exactly one generating insertion sequence: item sigma[i] must be
// inserted at the position it occupies among sigma[0..i] in tau's relative
// order.
func (m *Model) Prob(tau rank.Ranking) float64 {
	js, ok := m.InsertionPositions(tau)
	if !ok {
		return 0
	}
	p := 1.0
	for i, j := range js {
		p *= m.pi[i][j]
	}
	return p
}

// LogProb returns log Prob(tau), or -Inf when tau is outside the support.
// It avoids the underflow of multiplying m per-step probabilities.
func (m *Model) LogProb(tau rank.Ranking) float64 {
	js, ok := m.InsertionPositions(tau)
	if !ok {
		return math.Inf(-1)
	}
	lp := 0.0
	for i, j := range js {
		p := m.pi[i][j]
		if p == 0 {
			return math.Inf(-1)
		}
		lp += math.Log(p)
	}
	return lp
}

// InsertionPositions returns, for each step i, the position at which
// sigma[i] was inserted to produce tau, or ok=false if tau is not a
// permutation of the same items.
func (m *Model) InsertionPositions(tau rank.Ranking) ([]int, bool) {
	if len(tau) != len(m.sigma) {
		return nil, false
	}
	pos := make([]int, len(tau))
	for i := range pos {
		pos[i] = -1
	}
	for p, it := range tau {
		if int(it) < 0 || int(it) >= len(pos) || pos[it] >= 0 {
			return nil, false
		}
		pos[it] = p
	}
	js := make([]int, len(m.sigma))
	for i, item := range m.sigma {
		j := 0
		for k := 0; k < i; k++ {
			if pos[m.sigma[k]] < pos[item] {
				j++
			}
		}
		js[i] = j
	}
	return js, true
}

// sampleIndex draws an index from the distribution given by weights that sum
// to 1.
func sampleIndex(rng *rand.Rand, probs []float64) int {
	u := rng.Float64()
	acc := 0.0
	for j, p := range probs {
		acc += p
		if u < acc {
			return j
		}
	}
	return len(probs) - 1
}
