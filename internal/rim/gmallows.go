package rim

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"probpref/internal/rank"
)

// GeneralizedMallows is the distance-based ranking model of Fligner and
// Verducci ("Distance based ranking models", JRSS-B 1986), reference [9] of
// the paper and its first suggestion for preference models beyond plain
// Mallows. It generalizes MAL(sigma, phi) by giving every insertion step its
// own dispersion: item sigma[i] is inserted at position j in [0, i] with
// probability proportional to Phis[i]^(i-j).
//
// Equivalently, Pr(tau) is proportional to prod_i Phis[i]^(V_i(tau)) where
// V_i counts the items sigma[0..i-1] that tau ranks below sigma[i] — the
// stage-wise decomposition of the Kendall tau distance. All Phis equal to
// phi recovers MAL(sigma, phi) exactly.
//
// GeneralizedMallows is a RIM, so every exact solver of package solver
// applies to it unchanged through Model().
type GeneralizedMallows struct {
	Sigma rank.Ranking
	// Phis[i] is the dispersion of insertion step i (0-based). Phis[0] is
	// accepted for uniformity but has no effect: step 0 has one position.
	Phis []float64

	geoms   []float64 // geoms[i] = 1 + Phis[i] + ... + Phis[i]^i
	logZ    float64
	logPhis []float64
	model   *Model
}

// NewGeneralizedMallows validates and constructs a Generalized Mallows
// model. Phis must have one entry per item, each in [0, 1].
func NewGeneralizedMallows(sigma rank.Ranking, phis []float64) (*GeneralizedMallows, error) {
	if !sigma.IsPermutation() {
		return nil, fmt.Errorf("rim: sigma %v is not a permutation", sigma)
	}
	if len(phis) != len(sigma) {
		return nil, fmt.Errorf("rim: %d dispersions for %d items", len(phis), len(sigma))
	}
	for i, phi := range phis {
		if phi < 0 || phi > 1 || math.IsNaN(phi) {
			return nil, fmt.Errorf("rim: Phis[%d] = %v out of [0,1]", i, phi)
		}
	}
	gm := &GeneralizedMallows{
		Sigma:   sigma.Clone(),
		Phis:    append([]float64(nil), phis...),
		geoms:   make([]float64, len(sigma)),
		logPhis: make([]float64, len(sigma)),
	}
	for i := range sigma {
		g := 1.0
		w := 1.0
		for t := 1; t <= i; t++ {
			w *= phis[i]
			g += w
		}
		gm.geoms[i] = g
		gm.logPhis[i] = math.Log(phis[i])
		gm.logZ += math.Log(g)
	}
	return gm, nil
}

// MustGeneralizedMallows is NewGeneralizedMallows but panics on error.
func MustGeneralizedMallows(sigma rank.Ranking, phis []float64) *GeneralizedMallows {
	gm, err := NewGeneralizedMallows(sigma, phis)
	if err != nil {
		panic(err)
	}
	return gm
}

// M returns the number of items.
func (gm *GeneralizedMallows) M() int { return len(gm.Sigma) }

// Model materializes the equivalent RIM(sigma, Pi) with
// Pi[i][j] = Phis[i]^(i-j) / (1 + Phis[i] + ... + Phis[i]^i). The result is
// cached.
func (gm *GeneralizedMallows) Model() *Model {
	if gm.model != nil {
		return gm.model
	}
	m := len(gm.Sigma)
	pi := make([][]float64, m)
	for i := 0; i < m; i++ {
		row := make([]float64, i+1)
		phi := gm.Phis[i]
		if phi == 0 {
			row[i] = 1
		} else {
			w := 1.0 // phi^(i-j) for j = i
			for j := i; j >= 0; j-- {
				row[j] = w / gm.geoms[i]
				w *= phi
			}
		}
		pi[i] = row
	}
	gm.model = MustNew(gm.Sigma, pi)
	return gm.model
}

// LogZ returns the log normalization constant
// Z = prod_i (1 + Phis[i] + ... + Phis[i]^i).
func (gm *GeneralizedMallows) LogZ() float64 { return gm.logZ }

// StageDistances returns the insertion-offset vector V with
// V[i] = i - j_i, the number of earlier reference items ranked below
// sigma[i] by tau, and ok=false when tau is not a permutation of the same
// items. sum(V) is the Kendall tau distance dist(sigma, tau).
func (gm *GeneralizedMallows) StageDistances(tau rank.Ranking) ([]int, bool) {
	js, ok := gm.Model().InsertionPositions(tau)
	if !ok {
		return nil, false
	}
	v := make([]int, len(js))
	for i, j := range js {
		v[i] = i - j
	}
	return v, true
}

// LogProb returns log Pr(tau | sigma, Phis).
func (gm *GeneralizedMallows) LogProb(tau rank.Ranking) float64 {
	v, ok := gm.StageDistances(tau)
	if !ok {
		return math.Inf(-1)
	}
	lp := -gm.logZ
	for i, vi := range v {
		if vi == 0 {
			continue
		}
		if gm.Phis[i] == 0 {
			return math.Inf(-1)
		}
		lp += float64(vi) * gm.logPhis[i]
	}
	return lp
}

// Prob returns Pr(tau | sigma, Phis).
func (gm *GeneralizedMallows) Prob(tau rank.Ranking) float64 {
	return math.Exp(gm.LogProb(tau))
}

// Sample draws a ranking without materializing the Pi matrix: step i inserts
// sigma[i] at offset t = i - j drawn from the truncated geometric
// distribution with ratio Phis[i].
func (gm *GeneralizedMallows) Sample(rng *rand.Rand) rank.Ranking {
	m := len(gm.Sigma)
	tau := make(rank.Ranking, 0, m)
	for i, item := range gm.Sigma {
		t := 0
		if gm.Phis[i] > 0 {
			t = sampleTruncGeom(rng, gm.Phis[i], i, gm.geoms[i])
		}
		j := i - t
		tau = append(tau, 0)
		copy(tau[j+1:], tau[j:])
		tau[j] = item
	}
	return tau
}

// Reference returns the reference ranking (shared; do not modify).
func (gm *GeneralizedMallows) Reference() rank.Ranking { return gm.Sigma }

// Rehash returns a deterministic content key for grouping identical models
// during query evaluation.
func (gm *GeneralizedMallows) Rehash() string {
	var b strings.Builder
	b.WriteString("gm|")
	b.WriteString(gm.Sigma.Key())
	for _, phi := range gm.Phis {
		fmt.Fprintf(&b, "|%.12g", phi)
	}
	return b.String()
}
