package rim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"probpref/internal/rank"
)

// Property: for phi < 1, Mallows probability is strictly decreasing in
// Kendall tau distance; rankings at equal distance have equal probability.
func TestMallowsMonotoneInDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		m := 3 + rng.Intn(4)
		phi := 0.1 + 0.8*rng.Float64()
		ml := MustMallows(rank.Identity(m), phi)
		perm := func() rank.Ranking {
			r := make(rank.Ranking, m)
			for i, v := range rng.Perm(m) {
				r[i] = rank.Item(v)
			}
			return r
		}
		a, b := perm(), perm()
		da, db := rank.KendallTau(ml.Sigma, a), rank.KendallTau(ml.Sigma, b)
		pa, pb := ml.Prob(a), ml.Prob(b)
		switch {
		case da < db && pa <= pb:
			t.Fatalf("d=%d prob %v vs d=%d prob %v", da, pa, db, pb)
		case da == db && !almostEq(pa, pb):
			t.Fatalf("equal distance, different probs: %v vs %v", pa, pb)
		}
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := a
	if b > a {
		scale = b
	}
	return d <= 1e-12*scale
}

// Property (testing/quick): the insertion-position reconstruction is the
// inverse of replaying insertions, for arbitrary insertion vectors.
func TestInsertionRoundTripQuick(t *testing.T) {
	ml := MustMallows(rank.Identity(6), 0.5)
	model := ml.Model()
	f := func(raw [6]uint8) bool {
		tau := rank.Ranking{}
		for i := 0; i < 6; i++ {
			j := int(raw[i]) % (i + 1)
			tau = tau.Insert(model.Sigma()[i], j)
		}
		js, ok := model.InsertionPositions(tau)
		if !ok {
			return false
		}
		rebuilt := rank.Ranking{}
		for i, j := range js {
			rebuilt = rebuilt.Insert(model.Sigma()[i], j)
		}
		return rebuilt.Equal(tau)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property (testing/quick): AMP density of any consistent ranking is
// positive and at most 1; inconsistent rankings are unreachable.
func TestAMPDensityBoundsQuick(t *testing.T) {
	cons := rank.FromPairs([][2]rank.Item{{3, 1}, {2, 0}})
	amp := MustAMP(rank.Identity(5), 0.4, cons)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		perm := make(rank.Ranking, 5)
		for i, v := range rng.Perm(5) {
			perm[i] = rank.Item(v)
		}
		logq, ok := amp.LogDensity(perm)
		if amp.Constraints().Consistent(perm) != ok {
			return false
		}
		if ok && (logq > 1e-12 || logq != logq) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Mallows sampling never produces rankings outside the item set,
// and the sampled distance distribution has the right mean ordering: lower
// phi concentrates closer to sigma.
func TestMallowsDispersionOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := 8
	meanDist := func(phi float64) float64 {
		ml := MustMallows(rank.Identity(m), phi)
		total := 0
		const n = 3000
		for i := 0; i < n; i++ {
			tau := ml.Sample(rng)
			if !tau.IsPermutation() {
				t.Fatalf("invalid sample %v", tau)
			}
			total += rank.KendallTau(ml.Sigma, tau)
		}
		return float64(total) / n
	}
	d2, d5, d9 := meanDist(0.2), meanDist(0.5), meanDist(0.9)
	if !(d2 < d5 && d5 < d9) {
		t.Fatalf("mean distances not ordered: %v %v %v", d2, d5, d9)
	}
}
