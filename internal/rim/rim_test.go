package rim

import (
	"math"
	"math/rand"
	"testing"

	"probpref/internal/rank"
)

// randomPi builds a random valid insertion matrix for m items.
func randomPi(rng *rand.Rand, m int) [][]float64 {
	pi := make([][]float64, m)
	for i := 0; i < m; i++ {
		row := make([]float64, i+1)
		sum := 0.0
		for j := range row {
			row[j] = rng.Float64() + 0.01
			sum += row[j]
		}
		for j := range row {
			row[j] /= sum
		}
		pi[i] = row
	}
	return pi
}

func TestNewValidation(t *testing.T) {
	if _, err := New(rank.Ranking{0, 0}, nil); err == nil {
		t.Error("expected error for non-permutation sigma")
	}
	if _, err := New(rank.Identity(2), [][]float64{{1}}); err == nil {
		t.Error("expected error for wrong Pi row count")
	}
	if _, err := New(rank.Identity(2), [][]float64{{1}, {0.5, 0.6}}); err == nil {
		t.Error("expected error for non-normalized row")
	}
	if _, err := New(rank.Identity(2), [][]float64{{1}, {-0.5, 1.5}}); err == nil {
		t.Error("expected error for negative probability")
	}
	if _, err := New(rank.Identity(2), [][]float64{{1}, {0.25, 0.75}}); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
}

// Example 2.1 of the paper: RIM(<a,b,c>, Pi) generates <b,c,a> with
// probability Pi(1,1)*Pi(2,1)*Pi(3,2) (1-based).
func TestProbExample21(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pi := randomPi(rng, 3)
	m := MustNew(rank.Identity(3), pi)
	tau := rank.Ranking{1, 2, 0} // <b, c, a>
	want := pi[0][0] * pi[1][0] * pi[2][1]
	if got := m.Prob(tau); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Prob = %v, want %v", got, want)
	}
}

// Probabilities over all m! rankings must sum to 1.
func TestProbSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for m := 1; m <= 6; m++ {
		model := MustNew(rank.Identity(m), randomPi(rng, m))
		sum := 0.0
		rank.ForEachPermutation(m, func(tau rank.Ranking) bool {
			sum += model.Prob(tau)
			return true
		})
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("m=%d: probabilities sum to %v", m, sum)
		}
	}
}

func TestProbInvalidTau(t *testing.T) {
	m := MustNew(rank.Identity(3), [][]float64{{1}, {0.5, 0.5}, {0.2, 0.3, 0.5}})
	if p := m.Prob(rank.Ranking{0, 1}); p != 0 {
		t.Error("wrong-length tau should have probability 0")
	}
	if p := m.Prob(rank.Ranking{0, 1, 1}); p != 0 {
		t.Error("non-permutation tau should have probability 0")
	}
}

// Empirical sampling frequencies must match exact probabilities.
func TestSampleMatchesProb(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	model := MustNew(rank.Identity(4), randomPi(rng, 4))
	const n = 200000
	counts := make(map[string]int)
	for i := 0; i < n; i++ {
		counts[model.Sample(rng).Key()]++
	}
	rank.ForEachPermutation(4, func(tau rank.Ranking) bool {
		p := model.Prob(tau)
		emp := float64(counts[tau.Key()]) / n
		if math.Abs(p-emp) > 0.01 {
			t.Fatalf("tau=%v: exact %v, empirical %v", tau, p, emp)
		}
		return true
	})
}

func TestInsertionPositionsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	model := MustNew(rank.Identity(6), randomPi(rng, 6))
	for trial := 0; trial < 100; trial++ {
		tau := model.Sample(rng)
		js, ok := model.InsertionPositions(tau)
		if !ok {
			t.Fatalf("InsertionPositions failed for %v", tau)
		}
		// Replay the insertions and verify we reconstruct tau.
		rebuilt := rank.Ranking{}
		for i, j := range js {
			rebuilt = rebuilt.Insert(model.Sigma()[i], j)
		}
		if !rebuilt.Equal(tau) {
			t.Fatalf("replay %v != original %v", rebuilt, tau)
		}
	}
}
