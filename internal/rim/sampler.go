package rim

import (
	"math/rand"

	"probpref/internal/rank"
)

// Sampler is the minimal interface shared by the ranking models of this
// package: a probability distribution over the rankings of a fixed item
// universe 0..M()-1 that supports drawing samples and evaluating the
// probability of a given ranking.
//
// Exact pattern-union inference (package solver) is specific to RIM-shaped
// models, but any Sampler can be queried approximately through rejection
// sampling (sampling.RejectionModel) and exactly on tiny universes through
// enumeration (solver.BruteModel). This is the extension point for the
// paper's future-work direction of preference models beyond RIM.
type Sampler interface {
	// M returns the number of items.
	M() int
	// Sample draws a ranking.
	Sample(rng *rand.Rand) rank.Ranking
	// Prob returns the probability of tau, or 0 when tau is not a
	// permutation of 0..M()-1.
	Prob(tau rank.Ranking) float64
}

// SessionModel is the interface a ranking model must satisfy to serve as a
// session distribution in a RIM-PPD: a RIM materialization (so the exact
// solvers apply), a reference ranking (for the top-k ease heuristic), a
// content key (for identical-request grouping), plus the Sampler
// operations. Mallows and GeneralizedMallows satisfy it; models outside
// the RIM family (e.g. PlackettLuce) do not, because exact pattern-union
// inference is not available for them.
type SessionModel interface {
	Sampler
	// Reference returns the model's reference (center) ranking.
	Reference() rank.Ranking
	// Model materializes the equivalent RIM.
	Model() *Model
	// Rehash returns a deterministic content key for grouping identical
	// models during query evaluation.
	Rehash() string
}

// Compile-time interface checks for every model in the package.
var (
	_ Sampler = (*Model)(nil)
	_ Sampler = (*Mallows)(nil)
	_ Sampler = (*Mixture)(nil)
	_ Sampler = (*GeneralizedMallows)(nil)
	_ Sampler = (*PlackettLuce)(nil)

	_ SessionModel = (*Mallows)(nil)
	_ SessionModel = (*GeneralizedMallows)(nil)
	_ SessionModel = (*Model)(nil)
)
