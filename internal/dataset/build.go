package dataset

import (
	"fmt"
	"strings"

	"probpref/internal/ppd"
)

// Figure1Query is the demo query of the Figure 1 database: is a female
// candidate preferred to a male one in any session?
const Figure1Query = `P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`

// PollsQuery is the demo query of the Polls workload: a male candidate
// preferred to a female candidate of the same party.
const PollsQuery = `P(_, _; l; r), C(l, p, M, _, _, _), C(r, p, F, _, _, _)`

// BuildConfig names one of the paper's datasets with its generator
// parameters; fields irrelevant to the chosen dataset are ignored.
type BuildConfig struct {
	Name       string // figure1 | polls | movielens | crowdrank
	Seed       int64  // generator seed
	Candidates int    // polls
	Voters     int    // polls
	Movies     int    // movielens catalog size / crowdrank HIT size
	Workers    int    // crowdrank
}

// builders is the single source of truth for the dataset dispatcher:
// Build, Names and Known all derive from it, so a new dataset registers
// in one place. Order is presentation order.
var builders = []struct {
	name  string
	build func(cfg BuildConfig) (*ppd.DB, string, error)
}{
	{"figure1", func(BuildConfig) (*ppd.DB, string, error) {
		db, err := Figure1()
		return db, Figure1Query, err
	}},
	{"polls", func(cfg BuildConfig) (*ppd.DB, string, error) {
		db, err := Polls(PollsConfig{Candidates: cfg.Candidates, Voters: cfg.Voters, Seed: cfg.Seed})
		return db, PollsQuery, err
	}},
	{"movielens", func(cfg BuildConfig) (*ppd.DB, string, error) {
		db, err := MovieLens(MovieLensConfig{Movies: cfg.Movies, Seed: cfg.Seed})
		return db, MovieLensQueryText(), err
	}},
	{"crowdrank", func(cfg BuildConfig) (*ppd.DB, string, error) {
		db, err := CrowdRank(CrowdRankConfig{Workers: cfg.Workers, Movies: cfg.Movies, Seed: cfg.Seed})
		return db, CrowdRankQuery, err
	}},
}

// Names returns the dataset names Build accepts.
func Names() []string {
	out := make([]string, len(builders))
	for i, b := range builders {
		out[i] = b.name
	}
	return out
}

// Known reports whether name (case-insensitive) is a dataset Build accepts.
func Known(name string) bool {
	name = strings.ToLower(name)
	for _, b := range builders {
		if b.name == name {
			return true
		}
	}
	return false
}

// Build constructs the named dataset and returns it together with its
// dataset-specific demo query; it is the shared dataset dispatcher of the
// cmd binaries and of the model registry's lazy loads.
func Build(cfg BuildConfig) (*ppd.DB, string, error) {
	name := strings.ToLower(cfg.Name)
	for _, b := range builders {
		if b.name == name {
			return b.build(cfg)
		}
	}
	return nil, "", fmt.Errorf("unknown dataset %q", cfg.Name)
}
