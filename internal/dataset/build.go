package dataset

import (
	"fmt"
	"strings"

	"probpref/internal/ppd"
)

// Figure1Query is the demo query of the Figure 1 database: is a female
// candidate preferred to a male one in any session?
const Figure1Query = `P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`

// PollsQuery is the demo query of the Polls workload: a male candidate
// preferred to a female candidate of the same party.
const PollsQuery = `P(_, _; l; r), C(l, p, M, _, _, _), C(r, p, F, _, _, _)`

// BuildConfig names one of the paper's datasets with its generator
// parameters; fields irrelevant to the chosen dataset are ignored.
type BuildConfig struct {
	Name       string // figure1 | polls | movielens | crowdrank
	Seed       int64
	Candidates int // polls
	Voters     int // polls
	Movies     int // movielens
	Workers    int // crowdrank
}

// Build constructs the named dataset and returns it together with its
// dataset-specific demo query; it is the shared dataset dispatcher of the
// cmd binaries.
func Build(cfg BuildConfig) (*ppd.DB, string, error) {
	switch strings.ToLower(cfg.Name) {
	case "figure1":
		db, err := Figure1()
		return db, Figure1Query, err
	case "polls":
		db, err := Polls(PollsConfig{Candidates: cfg.Candidates, Voters: cfg.Voters, Seed: cfg.Seed})
		return db, PollsQuery, err
	case "movielens":
		db, err := MovieLens(MovieLensConfig{Movies: cfg.Movies, Seed: cfg.Seed})
		return db, MovieLensQueryText(), err
	case "crowdrank":
		db, err := CrowdRank(CrowdRankConfig{Workers: cfg.Workers, Seed: cfg.Seed})
		return db, CrowdRankQuery, err
	}
	return nil, "", fmt.Errorf("unknown dataset %q", cfg.Name)
}
