package dataset

import (
	"probpref/internal/ppd"
	"probpref/internal/rank"
	"probpref/internal/rim"
)

// Figure1 builds the running example of the paper (Figure 1): the polling
// RIM-PPD with candidates Trump, Clinton, Sanders, Rubio, voters Ann, Bob,
// Dave, and one Mallows-model poll session per voter. Item ids follow tuple
// order: Trump=0, Clinton=1, Sanders=2, Rubio=3.
func Figure1() (*ppd.DB, error) {
	cands, err := ppd.NewRelation("C",
		[]string{"candidate", "party", "sex", "age", "edu", "reg"},
		[][]string{
			{"Trump", "R", "M", "70", "BS", "NE"},
			{"Clinton", "D", "F", "69", "JD", "NE"},
			{"Sanders", "D", "M", "75", "BS", "NE"},
			{"Rubio", "R", "M", "45", "JD", "S"},
		})
	if err != nil {
		return nil, err
	}
	db, err := ppd.NewDB(cands)
	if err != nil {
		return nil, err
	}
	voters, err := ppd.NewRelation("V",
		[]string{"voter", "sex", "age", "edu"},
		[][]string{
			{"Ann", "F", "20", "BS"},
			{"Bob", "M", "30", "BS"},
			{"Dave", "M", "50", "MS"},
		})
	if err != nil {
		return nil, err
	}
	if err := db.AddRelation(voters); err != nil {
		return nil, err
	}
	err = db.AddPrefRelation(&ppd.PrefRelation{
		Name:         "P",
		SessionAttrs: []string{"voter", "date"},
		Sessions: ppd.SessionSlice{
			// <Clinton, Sanders, Rubio, Trump>, phi = 0.3
			{Key: []string{"Ann", "5/5"}, Model: rim.MustMallows(rank.Ranking{1, 2, 3, 0}, 0.3)},
			// <Trump, Rubio, Sanders, Clinton>, phi = 0.3
			{Key: []string{"Bob", "5/5"}, Model: rim.MustMallows(rank.Ranking{0, 3, 2, 1}, 0.3)},
			// <Clinton, Sanders, Rubio, Trump>, phi = 0.5
			{Key: []string{"Dave", "6/5"}, Model: rim.MustMallows(rank.Ranking{1, 2, 3, 0}, 0.5)},
		},
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}
