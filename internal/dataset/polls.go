package dataset

import (
	"fmt"
	"math/rand"

	"probpref/internal/ppd"
	"probpref/internal/rim"
)

// PollsConfig parameterizes the Polls generator.
type PollsConfig struct {
	// Candidates is the number of candidates (paper: 16-30). Default 20.
	Candidates int
	// Voters is the number of voters (paper: 1000). Default 1000.
	Voters int
	// Seed drives all randomness.
	Seed int64
}

func (c PollsConfig) withDefaults() PollsConfig {
	if c.Candidates == 0 {
		c.Candidates = 20
	}
	if c.Voters == 0 {
		c.Voters = 1000
	}
	return c
}

var (
	pollsParties = []string{"D", "R"}
	pollsSexes   = []string{"F", "M"}
	pollsEdus    = []string{"HS", "BA", "BS", "MS", "JD", "PhD"}
	pollsRegs    = []string{"NE", "S", "MW", "W", "SW", "NW"}
	pollsAges    = []string{"20", "30", "40", "50", "60", "70"}
	pollsDates   = []string{"5/5", "6/5"}
)

// Polls generates the synthetic polling database of Section 6.1, modeled on
// the 2016 US presidential election and the schema of Figure 1: candidates
// with party, sex, age bracket, education and region; voters in 72
// demographic groups (sex x age x edu); per group, 9 Mallows models (3
// random reference rankings x dispersions {0.2, 0.5, 0.8}); each voter is
// assigned a random model from their group and a random poll date.
func Polls(cfg PollsConfig) (*ppd.DB, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	tuples := make([][]string, cfg.Candidates)
	for i := range tuples {
		tuples[i] = []string{
			fmt.Sprintf("cand%02d", i),
			pollsParties[rng.Intn(len(pollsParties))],
			pollsSexes[rng.Intn(len(pollsSexes))],
			pollsAges[rng.Intn(len(pollsAges))],
			pollsEdus[rng.Intn(len(pollsEdus))],
			pollsRegs[rng.Intn(len(pollsRegs))],
		}
	}
	cands, err := ppd.NewRelation("C",
		[]string{"candidate", "party", "sex", "age", "edu", "reg"}, tuples)
	if err != nil {
		return nil, err
	}
	db, err := ppd.NewDB(cands)
	if err != nil {
		return nil, err
	}

	// 72 demographic groups with 9 Mallows models each.
	type group struct{ sex, age, edu string }
	models := make(map[group][]*rim.Mallows)
	for _, sex := range pollsSexes {
		for _, age := range pollsAges {
			for _, edu := range pollsEdus {
				g := group{sex, age, edu}
				for r := 0; r < 3; r++ {
					sigma := randPerm(rng, cfg.Candidates)
					for _, phi := range []float64{0.2, 0.5, 0.8} {
						models[g] = append(models[g], rim.MustMallows(sigma, phi))
					}
				}
			}
		}
	}

	voterTuples := make([][]string, cfg.Voters)
	sessions := make([]*ppd.Session, cfg.Voters)
	for i := 0; i < cfg.Voters; i++ {
		g := group{
			sex: pollsSexes[rng.Intn(len(pollsSexes))],
			age: pollsAges[rng.Intn(len(pollsAges))],
			edu: pollsEdus[rng.Intn(len(pollsEdus))],
		}
		name := fmt.Sprintf("voter%04d", i)
		voterTuples[i] = []string{name, g.sex, g.age, g.edu}
		sessions[i] = &ppd.Session{
			Key:   []string{name, pollsDates[rng.Intn(len(pollsDates))]},
			Model: models[g][rng.Intn(len(models[g]))],
		}
	}
	voters, err := ppd.NewRelation("V", []string{"voter", "sex", "age", "edu"}, voterTuples)
	if err != nil {
		return nil, err
	}
	if err := db.AddRelation(voters); err != nil {
		return nil, err
	}
	if err := db.AddPrefRelation(&ppd.PrefRelation{
		Name:         "P",
		SessionAttrs: []string{"voter", "date"},
		Sessions:     ppd.SessionSlice(sessions),
	}); err != nil {
		return nil, err
	}
	return db, nil
}
