package dataset

import (
	"math"
	"math/rand"
	"testing"

	"probpref/internal/ppd"
	"probpref/internal/rank"
	"probpref/internal/solver"
)

func TestBenchmarkAShape(t *testing.T) {
	insts := BenchmarkA(1)
	if len(insts) != 33 {
		t.Fatalf("got %d instances, want 33", len(insts))
	}
	for _, in := range insts {
		if in.Model.M() != 15 || in.Model.Phi != 0.1 {
			t.Fatalf("model m=%d phi=%v", in.Model.M(), in.Model.Phi)
		}
		if len(in.Union) != 3 {
			t.Fatalf("union size %d", len(in.Union))
		}
		for _, g := range in.Union {
			if !g.IsBipartite() || g.NumNodes() != 4 || len(g.Edges()) != 3 {
				t.Fatalf("bad pattern %v", g)
			}
		}
		// B and D labels shared across patterns: nodes 1 and 3.
		b0 := in.Union[0].Node(1).Labels
		d0 := in.Union[0].Node(3).Labels
		for _, g := range in.Union[1:] {
			if !g.Node(1).Labels.Equal(b0) || !g.Node(3).Labels.Equal(d0) {
				t.Fatal("B/D labels not shared across union")
			}
		}
	}
	// Determinism and seed sensitivity: pattern keys only encode label ids,
	// so compare the items each label selects.
	itemsOfLabel0 := func(ins []Instance) string {
		s := ""
		for _, it := range ins[7].Lab.ItemsWithLabel(0, 15) {
			s += rank.Ranking{it}.Key() + ";"
		}
		return s
	}
	if itemsOfLabel0(BenchmarkA(1)) != itemsOfLabel0(insts) {
		t.Fatal("generator not deterministic")
	}
	if itemsOfLabel0(BenchmarkA(2)) == itemsOfLabel0(insts) {
		t.Fatal("different seeds should differ")
	}
}

// A good share of Benchmark-A unions must be low-probability events (the
// generator biases A/B to low ranks and C/D to high ranks; the paper uses
// these rare events to test approximate-solver accuracy).
func TestBenchmarkALowProbability(t *testing.T) {
	if testing.Short() {
		t.Skip("exact inference over m=30 models takes ~2s; skipped with -short")
	}
	insts := BenchmarkA(3)
	low := 0
	for _, in := range insts[:10] {
		p, err := solver.Bipartite(in.Model.Model(), in.Lab, in.Union, solver.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if p < 0.05 {
			low++
		}
	}
	if low < 3 {
		t.Fatalf("only %d/10 unions are low-probability", low)
	}
}

func TestBenchmarkBShape(t *testing.T) {
	insts := BenchmarkB(1)
	if len(insts) != 1080 {
		t.Fatalf("got %d instances, want 1080", len(insts))
	}
	seenM := map[int]bool{}
	for _, in := range insts {
		seenM[in.Params["m"]] = true
		if in.Model.Phi != 0.1 {
			t.Fatalf("phi = %v", in.Model.Phi)
		}
		if len(in.Union) != in.Params["z"] {
			t.Fatalf("union size %d != z %d", len(in.Union), in.Params["z"])
		}
		e0 := in.Union[0].Edges()
		for _, g := range in.Union[1:] {
			if len(g.Edges()) != len(e0) {
				t.Fatal("edge structure not shared")
			}
		}
	}
	for _, m := range []int{20, 50, 100, 200} {
		if !seenM[m] {
			t.Fatalf("missing m=%d", m)
		}
	}
}

func TestBenchmarkCShape(t *testing.T) {
	insts := BenchmarkC(1)
	if len(insts) != 1080 {
		t.Fatalf("got %d instances, want 1080", len(insts))
	}
	for _, in := range insts {
		for _, g := range in.Union {
			if !g.IsBipartite() {
				t.Fatalf("non-bipartite pattern in Benchmark-C: %v", g)
			}
		}
	}
	// The Figure 10b slice fixes z=q=items=3 and varies m over 4 values.
	slice := BenchmarkCSlice(1, 3, 3, 3)
	if len(slice) != 40 {
		t.Fatalf("slice has %d instances, want 40", len(slice))
	}
	for _, in := range slice {
		if in.Params["z"] != 3 || in.Params["q"] != 3 || in.Params["items"] != 3 {
			t.Fatalf("bad slice params %v", in.Params)
		}
	}
}

func TestBenchmarkDShape(t *testing.T) {
	insts := BenchmarkD(1)
	if len(insts) != 600 {
		t.Fatalf("got %d instances, want 600", len(insts))
	}
	for _, in := range insts {
		if !in.Union.AllTwoLabel() {
			t.Fatal("non two-label pattern in Benchmark-D")
		}
		if in.Model.Phi != 0.5 {
			t.Fatalf("phi = %v", in.Model.Phi)
		}
	}
}

func TestPolls(t *testing.T) {
	db, err := Polls(PollsConfig{Candidates: 16, Voters: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if db.M() != 16 {
		t.Fatalf("M = %d", db.M())
	}
	if got := db.Prefs["P"].Sessions.Len(); got != 200 {
		t.Fatalf("sessions = %d", got)
	}
	// The Figure 4 query must be evaluable and grounded per session.
	q := ppd.MustParse(`P(_, _; l; r), C(l, p, M, _, _, _), C(r, p, F, _, _, _)`)
	g, err := ppd.NewGrounder(db, q)
	if err != nil {
		t.Fatal(err)
	}
	gq, err := g.GroundSession(db.Prefs["P"].Sessions.At(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(gq.Union) != 2 || !gq.Union.AllTwoLabel() {
		t.Fatalf("grounded union: %d members, twoLabel=%v", len(gq.Union), gq.Union.AllTwoLabel())
	}
	// Dates restricted to the two poll dates.
	for _, s := range db.Prefs["P"].Sessions.All() {
		if s.Key[1] != "5/5" && s.Key[1] != "6/5" {
			t.Fatalf("bad date %q", s.Key[1])
		}
	}
}

func TestMovieLens(t *testing.T) {
	db, err := MovieLens(MovieLensConfig{Movies: 120, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := db.ItemID("223"); !ok {
		t.Fatal("movie 223 missing")
	}
	if _, ok := db.ItemID("111"); !ok {
		t.Fatal("movie 111 missing")
	}
	if db.Prefs["P"].Sessions.Len() != 16 {
		t.Fatalf("sessions = %d", db.Prefs["P"].Sessions.Len())
	}
	q := ppd.MustParse(MovieLensQueryText())
	g, err := ppd.NewGrounder(db, q)
	if err != nil {
		t.Fatal(err)
	}
	gq, err := g.GroundSession(db.Prefs["P"].Sessions.At(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(gq.Union) == 0 {
		t.Fatal("Figure 14 query grounded to an empty union")
	}
	// Pattern count grows with the catalog (genre diversity).
	big, err := MovieLens(MovieLensConfig{Movies: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ppd.NewGrounder(big, ppd.MustParse(MovieLensQueryText()))
	if err != nil {
		t.Fatal(err)
	}
	gq2, err := g2.GroundSession(big.Prefs["P"].Sessions.At(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(gq2.Union) <= len(gq.Union) {
		t.Fatalf("pattern count did not grow: %d vs %d", len(gq2.Union), len(gq.Union))
	}
}

func TestCrowdRank(t *testing.T) {
	db, err := CrowdRank(CrowdRankConfig{Workers: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if db.M() != 20 {
		t.Fatalf("M = %d", db.M())
	}
	q := ppd.MustParse(CrowdRankQuery)
	g, err := ppd.NewGrounder(db, q)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[string]bool{}
	for _, s := range db.Prefs["P"].Sessions.All() {
		gq, err := g.GroundSession(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(gq.Union) == 0 {
			t.Fatalf("session %v grounded empty", s.Key)
		}
		// The involved-item set must stay small by design.
		items := patternInvolved(db, gq)
		if items > 6 {
			t.Fatalf("involved items = %d for %v", items, s.Key)
		}
		distinct[s.Model.Rehash()+gq.Union.Key()] = true
	}
	// Groups: at most models x demographics.
	if len(distinct) > 7*4 {
		t.Fatalf("distinct groups = %d", len(distinct))
	}
}

func patternInvolved(db *ppd.DB, gq *ppd.GroundedQuery) int {
	items := make(map[rank.Item]bool)
	for _, g := range gq.Union {
		for v := 0; v < g.NumNodes(); v++ {
			for _, it := range db.Labeling().ItemsWith(g.Node(v).Labels, db.M()) {
				items[it] = true
			}
		}
	}
	return len(items)
}

// The CrowdRank query must be exactly solvable per group via RelOrder in
// reasonable time.
func TestCrowdRankSolvable(t *testing.T) {
	db, err := CrowdRank(CrowdRankConfig{Workers: 20, Movies: 12, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	eng := &ppd.Engine{DB: db, Method: ppd.MethodRelOrder}
	res, err := eng.Eval(ppd.MustParse(CrowdRankQuery))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count <= 0 || math.IsNaN(res.Count) {
		t.Fatalf("count = %v", res.Count)
	}
	if res.Solves >= len(res.PerSession) {
		t.Fatalf("grouping ineffective: %d solves for %d sessions", res.Solves, len(res.PerSession))
	}
}

func TestSampleWeightedItems(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	items := sampleWeightedItems(rng, 10, 4, func(i int) float64 { return float64(i + 1) })
	if len(items) != 4 {
		t.Fatalf("got %d items", len(items))
	}
	seen := map[rank.Item]bool{}
	for _, it := range items {
		if seen[it] {
			t.Fatal("duplicate item")
		}
		seen[it] = true
	}
	// Requesting more items than exist returns all of them.
	all := sampleUniformItems(rng, 3, 7)
	if len(all) != 3 {
		t.Fatalf("got %d items, want 3", len(all))
	}
}
