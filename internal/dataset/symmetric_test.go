package dataset

import (
	"math"
	"testing"

	"probpref/internal/solver"
)

func TestSymmetricUnions(t *testing.T) {
	ins := SymmetricUnions(7, 4, 10, 3, 0.2)
	if len(ins) != 4 {
		t.Fatalf("got %d instances, want 4", len(ins))
	}
	for _, in := range ins {
		if in.Model.M() != 10 {
			t.Fatalf("m = %d, want 10", in.Model.M())
		}
		if len(in.Union) != 3 {
			t.Fatalf("union size %d, want 3", len(in.Union))
		}
		if !in.Union.AllTwoLabel() {
			t.Fatal("symmetric union not two-label")
		}
		// Every component is an adjacent swap of the center: each alone has
		// the same exact probability by symmetry of the Mallows insertion
		// weights.
		var first float64
		for z := range in.Union {
			p, err := solver.TwoLabel(in.Model.Model(), in.Lab, in.Union[z:z+1], solver.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if z == 0 {
				first = p
				continue
			}
			if math.Abs(p-first) > 1e-9 {
				t.Fatalf("component %d probability %v != component 0 %v", z, p, first)
			}
		}
	}
}

func TestSymmetricUnionsPanicsOnTooManyComponents(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for 2z > m")
		}
	}()
	SymmetricUnions(1, 1, 4, 3, 0.5)
}

func TestFigure1Dataset(t *testing.T) {
	db, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if db.M() != 4 {
		t.Fatalf("m = %d, want 4", db.M())
	}
	if db.Prefs["P"].Sessions.Len() != 3 {
		t.Fatalf("sessions = %d, want 3", db.Prefs["P"].Sessions.Len())
	}
	if _, ok := db.Relations["V"]; !ok {
		t.Fatal("voters relation missing")
	}
	if _, ok := db.ItemID("Clinton"); !ok {
		t.Fatal("Clinton not in item catalog")
	}
}
