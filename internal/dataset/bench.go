package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rank"
	"probpref/internal/rim"
)

// BenchmarkA generates the 33 pattern unions of Benchmark-A (Section 6.1):
// model MAL(<s1..s15>, 0.1); each union has the 3 bipartite patterns
// {A>C, A>D, B>D}; the three patterns share the items of labels B and D;
// every label holds 3 items; labels A and B favor low-ranked items
// (p_i ∝ i^1.5), labels C and D favor high-ranked items (p_i ∝ (16-i)^1.5),
// making the unions low-probability.
func BenchmarkA(seed int64) []Instance {
	const (
		m        = 15
		phi      = 0.1
		unions   = 33
		perLabel = 3
	)
	rng := rand.New(rand.NewSource(seed))
	low := func(i int) float64 { return math.Pow(float64(i+1), 1.5) }        // 1-based i^1.5
	high := func(i int) float64 { return math.Pow(float64(m+1-(i+1)), 1.5) } // (16-i)^1.5
	out := make([]Instance, 0, unions)
	for u := 0; u < unions; u++ {
		model := rim.MustMallows(rank.Identity(m), phi)
		lab := label.NewLabeling()
		var next label.Label
		// Shared labels B and D.
		bSet := attach(lab, &next, sampleWeightedItems(rng, m, perLabel, low))
		dSet := attach(lab, &next, sampleWeightedItems(rng, m, perLabel, high))
		var union pattern.Union
		for p := 0; p < 3; p++ {
			aSet := attach(lab, &next, sampleWeightedItems(rng, m, perLabel, low))
			cSet := attach(lab, &next, sampleWeightedItems(rng, m, perLabel, high))
			g := pattern.MustNew(
				[]pattern.Node{nodeOf(aSet), nodeOf(bSet), nodeOf(cSet), nodeOf(dSet)},
				[][2]int{{0, 2}, {0, 3}, {1, 3}}, // A>C, A>D, B>D
			)
			union = append(union, g)
		}
		out = append(out, Instance{
			Name:   fmt.Sprintf("benchA#%d", u),
			Model:  model,
			Lab:    lab,
			Union:  union,
			Params: map[string]int{"m": m, "z": 3, "q": 4, "items": perLabel},
		})
	}
	return out
}

// BenchmarkB generates the 1080 instances of Benchmark-B: m in
// {20,50,100,200}, phi = 0.1, 1-3 patterns per union, 3-5 labels per
// pattern, 3/5/7 items per label, 10 instances per combination. Within a
// union all patterns share the same random partial-order edge structure
// over their labels.
func BenchmarkB(seed int64) []Instance {
	rng := rand.New(rand.NewSource(seed))
	var out []Instance
	for _, m := range []int{20, 50, 100, 200} {
		for _, z := range []int{1, 2, 3} {
			for _, q := range []int{3, 4, 5} {
				for _, items := range []int{3, 5, 7} {
					for i := 0; i < 10; i++ {
						out = append(out, randomUnionInstance(rng, "benchB", m, 0.1, z, q, items, false, len(out)))
					}
				}
			}
		}
	}
	return out
}

// BenchmarkC generates the 1080 instances of Benchmark-C: bipartite pattern
// unions over smaller models, m in {10,12,14,16}, phi = 0.1, 1-3 patterns,
// 2-4 labels per pattern, 1/3/5 items per label, 10 instances per
// combination.
func BenchmarkC(seed int64) []Instance {
	rng := rand.New(rand.NewSource(seed))
	var out []Instance
	for _, m := range []int{10, 12, 14, 16} {
		for _, z := range []int{1, 2, 3} {
			for _, q := range []int{2, 3, 4} {
				for _, items := range []int{1, 3, 5} {
					for i := 0; i < 10; i++ {
						out = append(out, randomUnionInstance(rng, "benchC", m, 0.1, z, q, items, true, len(out)))
					}
				}
			}
		}
	}
	return out
}

// BenchmarkCSlice returns the Benchmark-C instances with the given
// parameters (patterns per union, labels per pattern, items per label),
// mirroring the per-configuration slices plotted in Figures 7, 10b and 12.
func BenchmarkCSlice(seed int64, z, q, items int) []Instance {
	all := BenchmarkC(seed)
	var out []Instance
	for _, in := range all {
		p := in.Params
		if (z == 0 || p["z"] == z) && (q == 0 || p["q"] == q) && (items == 0 || p["items"] == items) {
			out = append(out, in)
		}
	}
	return out
}

// BenchmarkD generates the 600 two-label instances of Benchmark-D: m in
// {20,30,40,50,60}, phi = 0.5, 2-5 patterns per union, 3/5/7 items per
// label, 10 random instances per combination.
func BenchmarkD(seed int64) []Instance {
	rng := rand.New(rand.NewSource(seed))
	var out []Instance
	for _, m := range []int{20, 30, 40, 50, 60} {
		for _, z := range []int{2, 3, 4, 5} {
			for _, items := range []int{3, 5, 7} {
				for i := 0; i < 10; i++ {
					model := rim.MustMallows(randPerm(rng, m), 0.5)
					lab := label.NewLabeling()
					var next label.Label
					var union pattern.Union
					for p := 0; p < z; p++ {
						l := attach(lab, &next, sampleUniformItems(rng, m, items))
						r := attach(lab, &next, sampleUniformItems(rng, m, items))
						union = append(union, pattern.TwoLabel(l, r))
					}
					out = append(out, Instance{
						Name:   fmt.Sprintf("benchD[m=%d,z=%d,items=%d]#%d", m, z, items, len(out)),
						Model:  model,
						Lab:    lab,
						Union:  union,
						Params: map[string]int{"m": m, "z": z, "q": 2, "items": items},
					})
				}
			}
		}
	}
	return out
}

// randomUnionInstance builds one Benchmark-B/C style instance: z patterns
// sharing a random edge structure over q label slots, each pattern with its
// own labels holding `items` uniformly sampled items. With bipartite=true
// the edge structure is a random bipartite DAG; otherwise a random partial
// order.
func randomUnionInstance(rng *rand.Rand, prefix string, m int, phi float64, z, q, items int, bipartite bool, idx int) Instance {
	model := rim.MustMallows(randPerm(rng, m), phi)
	lab := label.NewLabeling()
	var next label.Label
	// Shared edge structure.
	var edges [][2]int
	if bipartite {
		nl := 1 + rng.Intn(q-1) // at least one source and one sink
		for a := 0; a < nl; a++ {
			for b := nl; b < q; b++ {
				if rng.Float64() < 0.6 {
					edges = append(edges, [2]int{a, b})
				}
			}
		}
		if len(edges) == 0 {
			edges = append(edges, [2]int{0, nl})
		}
	} else {
		for a := 0; a < q; a++ {
			for b := a + 1; b < q; b++ {
				if rng.Float64() < 0.5 {
					edges = append(edges, [2]int{a, b})
				}
			}
		}
		if len(edges) == 0 {
			edges = append(edges, [2]int{0, q - 1})
		}
	}
	var union pattern.Union
	for p := 0; p < z; p++ {
		nodes := make([]pattern.Node, q)
		for v := 0; v < q; v++ {
			nodes[v] = nodeOf(attach(lab, &next, sampleUniformItems(rng, m, items)))
		}
		union = append(union, pattern.MustNew(nodes, edges))
	}
	params := map[string]int{"m": m, "z": z, "q": q, "items": items}
	return Instance{
		Name:   nameOf(prefix, params, idx),
		Model:  model,
		Lab:    lab,
		Union:  union,
		Params: params,
	}
}
