package dataset

import (
	"fmt"
	"math/rand"

	"probpref/internal/ppd"
	"probpref/internal/rim"
)

// MovieLensConfig parameterizes the MovieLens-like generator (DESIGN.md,
// substitution S2: the raw MovieLens ratings and the external mixture
// learner are unavailable offline, so the catalog and the 16-component
// Mallows mixture are synthesized with matching shapes).
type MovieLensConfig struct {
	// Movies is the catalog size (paper: the 200 most-rated movies).
	// Default 200.
	Movies int
	// Components is the number of Mallows mixture components (paper: 16).
	Components int
	// Seed drives all randomness.
	Seed int64
}

func (c MovieLensConfig) withDefaults() MovieLensConfig {
	if c.Movies == 0 {
		c.Movies = 200
	}
	if c.Components == 0 {
		c.Components = 16
	}
	return c
}

// movieGenreCount reproduces the genre diversity growth the paper reports
// in Figure 14: as the number of movies m grows, the number of genres — and
// hence of grounded patterns — grows as 1, 3, 11, 12, 14 for m = 40, 80,
// 120, 160, 200.
func movieGenreCount(prefix int) int {
	switch {
	case prefix <= 40:
		return 1
	case prefix <= 80:
		return 3
	case prefix <= 120:
		return 11
	case prefix <= 160:
		return 12
	default:
		return 14
	}
}

// MovieLens generates a movie catalog with year/era/genre attributes and a
// mixture of Mallows models as sessions. Movie ids follow the MovieLens
// convention of sparse numeric keys; ids 223 (Clerks) and 111 (Taxi Driver,
// 1976) are guaranteed to exist, as the Figure 14 query references them.
//
// The era attribute pre-buckets the release year ("post" for >= 1990, "pre"
// otherwise) so that the paper's year comparisons ground to two patterns
// rather than one per year value.
func MovieLens(cfg MovieLensConfig) (*ppd.DB, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	tuples := make([][]string, cfg.Movies)
	for i := range tuples {
		id := fmt.Sprintf("%d", 1000+3*i)
		switch i {
		case 0:
			id = "111" // Taxi Driver
		case 1:
			id = "223" // Clerks
		}
		year := 1950 + rng.Intn(66)
		if i == 0 {
			year = 1976
		}
		if i == 1 {
			year = 1994
		}
		era := "pre"
		if year >= 1990 {
			era = "post"
		}
		genre := fmt.Sprintf("genre%02d", genreOf(i, rng))
		tuples[i] = []string{id, fmt.Sprintf("Movie %s", id), fmt.Sprintf("%d", year), era, genre}
	}
	movies, err := ppd.NewRelation("M",
		[]string{"id", "title", "year", "era", "genre"}, tuples)
	if err != nil {
		return nil, err
	}
	db, err := ppd.NewDB(movies)
	if err != nil {
		return nil, err
	}
	sessions := make([]*ppd.Session, cfg.Components)
	for c := range sessions {
		phi := 0.3 + 0.5*rng.Float64()
		sessions[c] = &ppd.Session{
			Key:   []string{fmt.Sprintf("mix%02d", c)},
			Model: rim.MustMallows(randPerm(rng, cfg.Movies), phi),
		}
	}
	if err := db.AddPrefRelation(&ppd.PrefRelation{
		Name:         "P",
		SessionAttrs: []string{"user"},
		Sessions:     ppd.SessionSlice(sessions),
	}); err != nil {
		return nil, err
	}
	return db, nil
}

// genreOf assigns movie i a genre such that the prefix of the catalog up to
// i spans movieGenreCount(i+1) genres.
func genreOf(i int, rng *rand.Rand) int {
	n := movieGenreCount(i + 1)
	return rng.Intn(n)
}

// MovieLensQuery is the Figure 14 query: is Clerks (223) preferred to Taxi
// Driver (111), and is some post-1990 movie preferred both to a pre-1990
// movie of the same genre and to Taxi Driver?
const MovieLensQuery = `P(_; 223; 111), P(_; x; 111), P(_; x; y), M(x, _, _, Post, g), M(y, _, _, Pre, g)`

// MovieLensQueryText returns the query with era constants matching the
// catalog encoding.
func MovieLensQueryText() string {
	return `P(_; 223; 111), P(_; x; 111), P(_; x; y), M(x, _, _, "post", g), M(y, _, _, "pre", g)`
}
