package dataset

import (
	"fmt"
	"math/rand"

	"probpref/internal/ppd"
	"probpref/internal/rim"
)

// CrowdRankConfig parameterizes the CrowdRank-like generator (DESIGN.md,
// substitution S3: the Mechanical-Turk rankings and the DataSynthesizer
// profile generator are replaced by a seeded synthesizer producing the same
// shape — one HIT of 20 movies, 7 Mallows models, and synthetic worker
// profiles statistically tied to the models).
type CrowdRankConfig struct {
	// Workers is the number of synthetic worker profiles (paper: 200,000).
	// Default 1000.
	Workers int
	// Movies is the HIT size (paper: 20).
	Movies int
	// Models is the number of mined Mallows models (paper: 7).
	Models int
	// Seed drives all randomness.
	Seed int64
}

func (c CrowdRankConfig) withDefaults() CrowdRankConfig {
	if c.Workers == 0 {
		c.Workers = 1000
	}
	if c.Movies == 0 {
		c.Movies = 20
	}
	if c.Models == 0 {
		c.Models = 7
	}
	return c
}

var (
	crowdSexes = []string{"F", "M"}
	crowdAges  = []string{"30", "50"}
)

// CrowdRank generates the HIT catalog, the worker relation and the session
// table. The movie attributes are designed so that the Figure 15 query
// grounds to a small involved-item set per session: four short movies cover
// the (lead sex, lead age) combinations and two long thrillers exist.
func CrowdRank(cfg CrowdRankConfig) (*ppd.DB, error) {
	cfg = cfg.withDefaults()
	if cfg.Movies < 6 {
		return nil, fmt.Errorf("dataset: CrowdRank needs at least 6 movies")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	genres := []string{"Comedy", "Drama", "Action", "Romance"}
	tuples := make([][]string, cfg.Movies)
	for i := range tuples {
		id := fmt.Sprintf("hit%02d", i)
		var genre, sex, age, dur string
		switch i {
		case 0:
			genre, sex, age, dur = "Comedy", "F", "30", "short"
		case 1:
			genre, sex, age, dur = "Drama", "F", "50", "short"
		case 2:
			genre, sex, age, dur = "Comedy", "M", "30", "short"
		case 3:
			genre, sex, age, dur = "Drama", "M", "50", "short"
		case 4, 5:
			genre, sex, age, dur = "Thriller", crowdSexes[i%2], crowdAges[i%2], "long"
		default:
			genre = genres[rng.Intn(len(genres))]
			sex = crowdSexes[rng.Intn(2)]
			age = crowdAges[rng.Intn(2)]
			dur = "long"
		}
		tuples[i] = []string{id, genre, sex, age, dur}
	}
	movies, err := ppd.NewRelation("M",
		[]string{"id", "genre", "leadSex", "leadAge", "duration"}, tuples)
	if err != nil {
		return nil, err
	}
	db, err := ppd.NewDB(movies)
	if err != nil {
		return nil, err
	}

	mixture := make([]*rim.Mallows, cfg.Models)
	for i := range mixture {
		mixture[i] = rim.MustMallows(randPerm(rng, cfg.Movies), 0.2+0.6*rng.Float64())
	}

	workerTuples := make([][]string, cfg.Workers)
	sessions := make([]*ppd.Session, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		name := fmt.Sprintf("w%06d", i)
		workerTuples[i] = []string{
			name,
			crowdSexes[rng.Intn(2)],
			crowdAges[rng.Intn(2)],
		}
		sessions[i] = &ppd.Session{
			Key:   []string{name},
			Model: mixture[rng.Intn(cfg.Models)],
		}
	}
	workers, err := ppd.NewRelation("V", []string{"worker", "sex", "age"}, workerTuples)
	if err != nil {
		return nil, err
	}
	if err := db.AddRelation(workers); err != nil {
		return nil, err
	}
	if err := db.AddPrefRelation(&ppd.PrefRelation{
		Name:         "P",
		SessionAttrs: []string{"worker"},
		Sessions:     ppd.SessionSlice(sessions),
	}); err != nil {
		return nil, err
	}
	return db, nil
}

// CrowdRankQuery is the Figure 15 query: does the worker prefer a short
// movie whose lead actor matches their sex to a short movie whose lead actor
// is around their age, which is in turn preferred to some thriller?
const CrowdRankQuery = `P(v; m1; m2), P(v; m2; m3), V(v, sex, age), ` +
	`M(m1, _, sex, _, "short"), M(m2, _, _, age, "short"), M(m3, "Thriller", _, _, _)`
