// Package dataset generates the experimental workloads of Section 6.1 —
// the Polls synthetic polling database, the pattern-union micro-benchmarks
// A-D, and deterministic offline stand-ins for the MovieLens and CrowdRank
// datasets — plus the Figure 1 running example. All generators are
// deterministic given their seed, which is what lets the model registry
// (internal/registry) rebuild any cataloged model lazily from its Spec:
// Build is the dispatcher the registry, cmd/hardq and cmd/hardqd load
// datasets through.
package dataset

import (
	"fmt"
	"math/rand"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rank"
	"probpref/internal/rim"
)

// Instance is one micro-benchmark unit: a labeled Mallows model and a
// pattern union to infer over it.
type Instance struct {
	// Name identifies the instance and its parameters.
	Name string
	// Model is the Mallows model.
	Model *rim.Mallows
	// Lab labels the model's items.
	Lab *label.Labeling
	// Union is the pattern union whose marginal probability is sought.
	Union pattern.Union
	// Params records generator parameters (m, patterns, labels, items).
	Params map[string]int
}

// randPerm returns a random permutation ranking of m items.
func randPerm(rng *rand.Rand, m int) rank.Ranking {
	r := make(rank.Ranking, m)
	for i, v := range rng.Perm(m) {
		r[i] = rank.Item(v)
	}
	return r
}

// sampleWeightedItems draws k distinct items with probability proportional
// to weight(item).
func sampleWeightedItems(rng *rand.Rand, m, k int, weight func(int) float64) []rank.Item {
	chosen := make(map[int]bool, k)
	out := make([]rank.Item, 0, k)
	for len(out) < k && len(out) < m {
		total := 0.0
		for i := 0; i < m; i++ {
			if !chosen[i] {
				total += weight(i)
			}
		}
		u := rng.Float64() * total
		acc := 0.0
		pick := -1
		for i := 0; i < m; i++ {
			if chosen[i] {
				continue
			}
			acc += weight(i)
			if u < acc {
				pick = i
				break
			}
		}
		if pick < 0 { // numerical fallback
			for i := m - 1; i >= 0; i-- {
				if !chosen[i] {
					pick = i
					break
				}
			}
		}
		chosen[pick] = true
		out = append(out, rank.Item(pick))
	}
	return out
}

// sampleUniformItems draws k distinct items uniformly.
func sampleUniformItems(rng *rand.Rand, m, k int) []rank.Item {
	return sampleWeightedItems(rng, m, k, func(int) float64 { return 1 })
}

// attach registers a fresh label carrying the given items and returns it.
func attach(lab *label.Labeling, next *label.Label, items []rank.Item) label.Set {
	l := *next
	*next++
	for _, it := range items {
		lab.Add(it, l)
	}
	return label.NewSet(l)
}

func nodeOf(s label.Set) pattern.Node { return pattern.Node{Labels: s} }

func nameOf(prefix string, params map[string]int, idx int) string {
	return fmt.Sprintf("%s[m=%d,z=%d,q=%d,i=%d]#%d",
		prefix, params["m"], params["z"], params["q"], params["items"], idx)
}
