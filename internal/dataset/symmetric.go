package dataset

import (
	"fmt"
	"math/rand"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rank"
	"probpref/internal/rim"
)

// SymmetricUnions generates unions of z equally-hard, pairwise-disjoint
// two-label components: component i demands that the item at reference
// position 2i+1 be preferred to the item at position 2i (an adjacent swap,
// which has a unique greedy modal at Kendall distance 1). Because every
// component sits at the same distance from the center and the components
// are disjoint, a single MIS-AMP proposal covers exactly one of them —
// the regime the compensation factors of Section 5.5 are designed for.
func SymmetricUnions(seed int64, count, m, z int, phi float64) []Instance {
	if 2*z > m {
		panic(fmt.Sprintf("dataset: SymmetricUnions needs m >= 2z (m=%d z=%d)", m, z))
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Instance, 0, count)
	for c := 0; c < count; c++ {
		model := rim.MustMallows(randPerm(rng, m), phi)
		lab := label.NewLabeling()
		var next label.Label
		var union pattern.Union
		for i := 0; i < z; i++ {
			lo := model.Sigma[2*i]   // higher-ranked item of the pair
			hi := model.Sigma[2*i+1] // lower-ranked item of the pair
			l := attach(lab, &next, []rank.Item{hi})
			r := attach(lab, &next, []rank.Item{lo})
			union = append(union, pattern.TwoLabel(l, r))
		}
		out = append(out, Instance{
			Name:   fmt.Sprintf("symmetric[m=%d,z=%d]#%d", m, z, c),
			Model:  model,
			Lab:    lab,
			Union:  union,
			Params: map[string]int{"m": m, "z": z, "q": 2, "items": 1},
		})
	}
	return out
}
