package ppd

import (
	"probpref/internal/pattern"
	"probpref/internal/rim"
)

// SolveCache memoizes inference results across Eval/TopK calls. The engine
// consults it with GroupKey-formed keys before solving a distinct
// (model, union) group and stores the result afterwards, so a process-wide
// cache turns the per-call identical-request grouping of Section 6.4 into
// cross-query memoization.
//
// Implementations must be safe for concurrent use: with Engine.Workers > 1
// the engine calls Get and Put from multiple goroutines, and a single cache
// is typically shared by many engines (see internal/server).
//
// Correctness caveats: entries are keyed by the solver method, the model
// parameters and the grounded pattern union — engines with different
// Methods can therefore safely share one cache — but sampler and solver
// tuning (SamplerCfg, LiteD/LiteN, RejectionN, SolverOpts) is NOT part of
// the key, so engines sharing a cache should agree on those. For the exact
// solvers a hit is always exact; for the sampling methods (MIS-AMP,
// rejection) a hit replays an earlier estimate instead of re-sampling, so
// estimates become sticky for the cache lifetime. That is usually desirable
// (stable answers, no re-inference) but means repeated queries no longer
// average over fresh samples. MethodAdaptive keys its entries under
// "adaptive|...": the budget (and hence whether an entry is an exact answer
// or an estimate) is not part of the key, so engines sharing a cache across
// different deadlines replay whichever answer landed first — fix
// Engine.AdaptiveBudget (or skip the cache) when that matters.
type SolveCache interface {
	// Get returns the cached probability for key, if present.
	Get(key string) (float64, bool)
	// Put stores the probability for key, evicting as needed.
	Put(key string, p float64)
}

// GroupKey returns the memoization key of one inference request: the solver
// method joined with the model's parameter hash and the canonical key of
// the grounded union. It is the key used for identical-request grouping
// inside a single evaluation and for SolveCache lookups across evaluations.
func GroupKey(m Method, sm rim.SessionModel, u pattern.Union) string {
	return m.String() + "|" + sm.Rehash() + "||" + u.Key()
}
