package ppd

import (
	"math"
	"strings"
	"testing"

	"probpref/internal/rank"
	"probpref/internal/rim"
	"probpref/internal/solver"
)

func TestParseUnionSplitting(t *testing.T) {
	uq, err := ParseUnion(`P(_, _; c1; c2), C(c1, _, "F", _, _, _) | P(_, _; c1; c2), C(c1, "D", _, _, _, _)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(uq.Disjuncts) != 2 {
		t.Fatalf("got %d disjuncts, want 2", len(uq.Disjuncts))
	}
	if got := uq.String(); !strings.Contains(got, " | ") {
		t.Errorf("String() = %q lacks disjunct separator", got)
	}
}

func TestParseUnionSingleDisjunct(t *testing.T) {
	uq, err := ParseUnion(`P(_, _; c1; c2), C(c1, _, "F", _, _, _)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(uq.Disjuncts) != 1 {
		t.Fatalf("got %d disjuncts, want 1", len(uq.Disjuncts))
	}
}

func TestParseUnionQuotedPipe(t *testing.T) {
	// A "|" inside a quoted constant must not split the query.
	uq, err := ParseUnion(`P(_, _; c1; c2), C(c1, _, "F|M", _, _, _)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(uq.Disjuncts) != 1 {
		t.Fatalf("got %d disjuncts, want 1", len(uq.Disjuncts))
	}
	if v := uq.Disjuncts[0].Rels[0].Args[2].Value; v != "F|M" {
		t.Errorf("constant = %q, want F|M", v)
	}
}

func TestParseUnionErrors(t *testing.T) {
	cases := []string{
		``,                                    // empty
		`P(_, _; a; b) |`,                     // trailing empty disjunct
		`| P(_, _; a; b)`,                     // leading empty disjunct
		`P(_, _; a; b) | C(x, y)`,             // disjunct without preference atom
		`P(_, _; a; b) | R(_, _; a; b)`,       // different p-relations
		`P(_, _; c1; c2), C(c1, _, "F, _, _,`, // unterminated string
	}
	for _, src := range cases {
		if _, err := ParseUnion(src); err == nil {
			t.Errorf("ParseUnion(%q): want error", src)
		}
	}
}

func TestEvalUnionSingleDisjunctMatchesEval(t *testing.T) {
	db := figure1DB(t)
	eng := &Engine{DB: db, Method: MethodAuto}
	src := `P(_, _; c1; c2), C(c1, _, "F", _, _, _), C(c2, _, "M", _, _, _)`
	want, err := eng.Eval(MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.EvalUnion(MustParseUnion(src))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Prob-want.Prob) > 1e-12 || math.Abs(got.Count-want.Count) > 1e-12 {
		t.Fatalf("union eval (%v, %v) != plain eval (%v, %v)", got.Prob, got.Count, want.Prob, want.Count)
	}
}

func TestEvalUnionIdenticalDisjunctsDeduplicate(t *testing.T) {
	db := figure1DB(t)
	eng := &Engine{DB: db, Method: MethodAuto}
	src := `P(_, _; c1; c2), C(c1, _, "F", _, _, _), C(c2, _, "M", _, _, _)`
	single, err := eng.EvalUnion(MustParseUnion(src))
	if err != nil {
		t.Fatal(err)
	}
	doubled, err := eng.EvalUnion(MustParseUnion(src + " | " + src))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(single.Prob-doubled.Prob) > 1e-12 {
		t.Fatalf("duplicated disjunct changed the answer: %v vs %v", single.Prob, doubled.Prob)
	}
}

// bruteUnionSession computes Pr(Q1 or Q2 | s) by enumeration from the
// merged grounded union, the semantic ground truth for EvalUnion.
func bruteUnionSession(t *testing.T, db *DB, uq *UnionQuery, s *Session) float64 {
	t.Helper()
	var unions []*Grounder
	for _, q := range uq.Disjuncts {
		g, err := NewGrounder(db, q)
		if err != nil {
			t.Fatal(err)
		}
		unions = append(unions, g)
	}
	total := 0.0
	lab := db.Labeling()
	rank.ForEachPermutation(db.M(), func(tau rank.Ranking) bool {
		match := false
		for _, g := range unions {
			gq, err := g.GroundSession(s)
			if err != nil {
				t.Fatal(err)
			}
			if gq.Union.Matches(tau, lab) {
				match = true
				break
			}
		}
		if match {
			total += s.Model.Prob(tau)
		}
		return true
	})
	return total
}

func TestEvalUnionMatchesBrute(t *testing.T) {
	db := figure1DB(t)
	eng := &Engine{DB: db, Method: MethodAuto}
	// Disjunction: a female candidate beats a male one, or a Democrat with a
	// BS beats a Republican.
	uq := MustParseUnion(
		`P(_, _; c1; c2), C(c1, _, "F", _, _, _), C(c2, _, "M", _, _, _)` +
			` | P(_, _; c1; c2), C(c1, "D", _, _, "BS", _), C(c2, "R", _, _, _, _)`)
	res, err := eng.EvalUnion(uq)
	if err != nil {
		t.Fatal(err)
	}
	pref := db.Prefs["P"]
	oneMinus := 1.0
	for i, s := range pref.Sessions.All() {
		want := bruteUnionSession(t, db, uq, s)
		got := res.PerSession[i].Prob
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("session %d: union prob %v, brute %v", i, got, want)
		}
		oneMinus *= 1 - want
	}
	if math.Abs(res.Prob-(1-oneMinus)) > 1e-9 {
		t.Fatalf("aggregate %v, want %v", res.Prob, 1-oneMinus)
	}
}

func TestEvalUnionBounds(t *testing.T) {
	db := figure1DB(t)
	eng := &Engine{DB: db, Method: MethodAuto}
	q1 := `P(_, _; c1; c2), C(c1, _, "F", _, _, _), C(c2, _, "M", _, _, _)`
	q2 := `P(_, _; c1; c2), C(c1, "D", _, _, _, _), C(c2, "R", _, _, _, _)`
	r1, err := eng.Eval(MustParse(q1))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := eng.Eval(MustParse(q2))
	if err != nil {
		t.Fatal(err)
	}
	ru, err := eng.EvalUnion(MustParseUnion(q1 + " | " + q2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ru.PerSession {
		pu := ru.PerSession[i].Prob
		p1, p2 := r1.PerSession[i].Prob, r2.PerSession[i].Prob
		lo := math.Max(p1, p2)
		hi := math.Min(1, p1+p2)
		if pu < lo-1e-9 || pu > hi+1e-9 {
			t.Fatalf("session %d: union prob %v outside [max=%v, sum=%v]", i, pu, lo, hi)
		}
	}
}

func TestEvalUnionRejectsMismatchedPrefRelations(t *testing.T) {
	db := figure1DB(t)
	// A second p-relation with a single session.
	second := &PrefRelation{
		Name:         "R",
		SessionAttrs: []string{"voter"},
		Sessions: SessionSlice{
			{Key: []string{"Zoe"}, Model: rim.MustMallows(rank.Identity(4), 0.5)},
		},
	}
	if err := db.AddPrefRelation(second); err != nil {
		t.Fatal(err)
	}
	eng := &Engine{DB: db, Method: MethodAuto}
	uq := &UnionQuery{Disjuncts: []*Query{
		MustParse(`P(_, _; c1; c2), C(c1, _, "F", _, _, _)`),
		MustParse(`R(_; c1; c2), C(c1, _, "F", _, _, _)`),
	}}
	if _, err := eng.EvalUnion(uq); err == nil {
		t.Fatal("want error for disjuncts over different p-relations")
	}
}

func TestCountDistributionUnion(t *testing.T) {
	db := figure1DB(t)
	eng := &Engine{DB: db, Method: MethodAuto}
	uq := MustParseUnion(
		`P(_, _; c1; c2), C(c1, _, "F", _, _, _), C(c2, _, "M", _, _, _)` +
			` | P(_, _; c1; c2), C(c1, "D", _, _, _, _), C(c2, "R", _, _, _, _)`)
	d, err := eng.CountDistributionUnion(uq)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 3 {
		t.Fatalf("support over %d sessions, want 3", d.N())
	}
	res, err := eng.EvalUnion(uq)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Mean()-res.Count) > 1e-9 {
		t.Fatalf("mean %v != Count %v", d.Mean(), res.Count)
	}
	if math.Abs(d.Tail(1)-res.Prob) > 1e-9 {
		t.Fatalf("Tail(1) %v != Prob %v", d.Tail(1), res.Prob)
	}
}

func TestEvalUnionAgreesAcrossSolvers(t *testing.T) {
	db := figure1DB(t)
	uq := MustParseUnion(
		`P(_, _; c1; c2), C(c1, _, "F", _, _, _), C(c2, _, "M", _, _, _)` +
			` | P(_, _; c1; c2), C(c1, "D", _, _, "JD", _), C(c2, "R", _, _, _, _)`)
	var ref *EvalResult
	for _, m := range []Method{MethodAuto, MethodBipartite, MethodGeneral, MethodRelOrder} {
		eng := &Engine{DB: db, Method: m, SolverOpts: solver.Options{}}
		res, err := eng.EvalUnion(uq)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if math.Abs(res.Prob-ref.Prob) > 1e-9 {
			t.Fatalf("%v: prob %v, reference %v", m, res.Prob, ref.Prob)
		}
	}
}
