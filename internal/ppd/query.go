package ppd

import (
	"fmt"
	"strings"
)

// TermKind distinguishes query term types.
type TermKind int

const (
	// Const is a constant value (quoted, numeric, or Capitalized).
	Const TermKind = iota
	// Var is a variable (lowercase identifier).
	Var
	// Wild is the anonymous wildcard "_".
	Wild
)

// Term is a constant, variable or wildcard in a query atom.
type Term struct {
	// Kind distinguishes constant, variable and wildcard terms.
	Kind TermKind
	// Value is the constant value or variable name (empty for wildcards).
	Value string
}

// C builds a constant term.
func C(v string) Term { return Term{Kind: Const, Value: v} }

// V builds a variable term.
func V(name string) Term { return Term{Kind: Var, Value: name} }

// W builds a wildcard term.
func W() Term { return Term{Kind: Wild} }

// String renders the term in the notation Parse reads.
func (t Term) String() string {
	switch t.Kind {
	case Wild:
		return "_"
	case Const:
		// The grammar has no escape sequences, so pick a delimiter absent
		// from the value. A value parsed from source never contains its own
		// delimiter, hence one of the two always round-trips; a value with
		// both quote characters is only constructible programmatically and
		// falls back to Go quoting (not re-parseable).
		if !strings.Contains(t.Value, `"`) {
			return `"` + t.Value + `"`
		}
		if !strings.Contains(t.Value, "'") {
			return "'" + t.Value + "'"
		}
		return fmt.Sprintf("%q", t.Value)
	default:
		return t.Value
	}
}

// PrefAtom is a preference atom P(session...; left; right): in the order of
// the given session, the left item is preferred to the right item.
type PrefAtom struct {
	// Rel names the preference relation.
	Rel string
	// Session holds the session attribute terms.
	Session []Term
	// Left is the preferred item term.
	Left Term
	// Right is the less-preferred item term.
	Right Term
}

// String renders the atom in the notation Parse reads.
func (a PrefAtom) String() string {
	parts := make([]string, len(a.Session))
	for i, t := range a.Session {
		parts[i] = t.String()
	}
	return fmt.Sprintf("%s(%s; %s; %s)", a.Rel, strings.Join(parts, ", "), a.Left, a.Right)
}

// RelAtom is an ordinary relation atom R(t1, ..., tn).
type RelAtom struct {
	// Rel names the ordinary relation.
	Rel string
	// Args holds one term per attribute.
	Args []Term
}

// String renders the atom in the notation Parse reads.
func (a RelAtom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return fmt.Sprintf("%s(%s)", a.Rel, strings.Join(parts, ", "))
}

// Compare is a comparison predicate between a variable and a constant,
// e.g. age >= 50 or date = "5/5".
type Compare struct {
	// Left is the compared variable.
	Left Term
	// Op is the comparison operator: =, !=, <, <=, >, >=.
	Op string
	// Right is the constant compared against.
	Right Term
}

// String renders the comparison in the notation Parse reads.
func (c Compare) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// Query is a Boolean conjunctive query over a RIM-PPD.
type Query struct {
	// Prefs holds the preference atoms (all over one p-relation).
	Prefs []PrefAtom
	// Rels holds the ordinary relation atoms.
	Rels []RelAtom
	// Comps holds the comparison predicates.
	Comps []Compare
}

// String renders the query in the notation Parse reads.
func (q *Query) String() string {
	var parts []string
	for _, a := range q.Prefs {
		parts = append(parts, a.String())
	}
	for _, a := range q.Rels {
		parts = append(parts, a.String())
	}
	for _, c := range q.Comps {
		parts = append(parts, c.String())
	}
	return "Q() <- " + strings.Join(parts, ", ")
}

// Validate performs structural checks: at least one preference atom, all
// preference atoms over the same relation with identical session terms
// (sessionwise CQ), and comparisons of supported shape.
func (q *Query) Validate() error {
	if len(q.Prefs) == 0 {
		return fmt.Errorf("ppd: query has no preference atom")
	}
	first := q.Prefs[0]
	for _, a := range q.Prefs[1:] {
		if a.Rel != first.Rel {
			return fmt.Errorf("ppd: preference atoms over different relations %q and %q", first.Rel, a.Rel)
		}
		if len(a.Session) != len(first.Session) {
			return fmt.Errorf("ppd: preference atoms with different session arity")
		}
		for i := range a.Session {
			if a.Session[i] != first.Session[i] {
				return fmt.Errorf("ppd: non-sessionwise query: session terms %v vs %v", a.Session, first.Session)
			}
		}
	}
	for _, a := range q.Prefs {
		if a.Left == a.Right && a.Left.Kind != Wild {
			return fmt.Errorf("ppd: preference atom %s compares an item with itself", a)
		}
	}
	for _, c := range q.Comps {
		if c.Left.Kind != Var || c.Right.Kind != Const {
			return fmt.Errorf("ppd: comparison %s must be variable OP constant", c)
		}
		switch c.Op {
		case "=", "!=", "<", "<=", ">", ">=":
		default:
			return fmt.Errorf("ppd: unsupported comparison operator %q", c.Op)
		}
	}
	return nil
}
