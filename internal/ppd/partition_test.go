package ppd

import (
	"testing"
)

// TestPartitionRangeCoversExactly checks the defining property of the
// partitioning: for every (n, parts), concatenating the ranges of
// partitions 0..parts-1 covers [0, n) exactly, in order, with window sizes
// differing by at most one.
func TestPartitionRangeCoversExactly(t *testing.T) {
	for n := 0; n <= 40; n++ {
		for parts := 1; parts <= 12; parts++ {
			next, minW, maxW := 0, n+1, -1
			for p := 0; p < parts; p++ {
				lo, hi := PartitionRange(n, p, parts)
				if lo != next {
					t.Fatalf("n=%d parts=%d: partition %d starts at %d, want %d", n, parts, p, lo, next)
				}
				if hi < lo {
					t.Fatalf("n=%d parts=%d: partition %d range [%d,%d) inverted", n, parts, p, lo, hi)
				}
				w := hi - lo
				if w < minW {
					minW = w
				}
				if w > maxW {
					maxW = w
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d parts=%d: partitions cover [0,%d), want [0,%d)", n, parts, next, n)
			}
			if maxW-minW > 1 {
				t.Fatalf("n=%d parts=%d: window sizes range %d..%d, want spread <= 1", n, parts, minW, maxW)
			}
		}
	}
}

// TestRangeSessionsView checks rebasing, clamping and the empty view.
func TestRangeSessionsView(t *testing.T) {
	base := make(SessionSlice, 5)
	for i := range base {
		base[i] = &Session{Key: []string{string(rune('a' + i))}}
	}

	v := RangeSessions(base, 1, 4)
	if v.Len() != 3 {
		t.Fatalf("Len = %d, want 3", v.Len())
	}
	for i := 0; i < 3; i++ {
		if v.At(i) != base[i+1] {
			t.Fatalf("At(%d) not rebased to base[%d]", i, i+1)
		}
	}
	got := 0
	for i, s := range v.All() {
		if s != base[i+1] {
			t.Fatalf("All() index %d not rebased", i)
		}
		got++
	}
	if got != 3 {
		t.Fatalf("All() yielded %d sessions, want 3", got)
	}

	if v := RangeSessions(base, -3, 99); v.Len() != 5 {
		t.Fatalf("clamped view Len = %d, want 5", v.Len())
	}
	if v := RangeSessions(base, 4, 2); v.Len() != 0 {
		t.Fatalf("inverted range Len = %d, want 0", v.Len())
	}
	if v := RangeSessions(base, 0, 5); v.Len() != 5 {
		t.Fatalf("full range Len = %d, want 5", v.Len())
	}
}

// TestPartitionDBValidation checks argument validation and that the view
// shares (not copies) the catalog while slicing every p-relation.
func TestPartitionDBValidation(t *testing.T) {
	db := figure1DB(t)
	if _, err := PartitionDB(db, 0, 0); err == nil {
		t.Error("parts=0 accepted")
	}
	if _, err := PartitionDB(db, -1, 2); err == nil {
		t.Error("negative partition accepted")
	}
	if _, err := PartitionDB(db, 2, 2); err == nil {
		t.Error("partition == parts accepted")
	}

	const parts = 2
	total := 0
	for p := 0; p < parts; p++ {
		pdb, err := PartitionDB(db, p, parts)
		if err != nil {
			t.Fatal(err)
		}
		if pdb.ItemRelation != db.ItemRelation {
			t.Error("item relation copied, want shared")
		}
		for name, want := range db.Prefs {
			pp := pdb.Prefs[name]
			lo, hi := PartitionRange(want.Sessions.Len(), p, parts)
			if pp.Sessions.Len() != hi-lo {
				t.Fatalf("partition %d of %q holds %d sessions, want %d", p, name, pp.Sessions.Len(), hi-lo)
			}
			for i := 0; i < pp.Sessions.Len(); i++ {
				if pp.Sessions.At(i) != want.Sessions.At(lo+i) {
					t.Fatalf("partition %d of %q session %d is not base session %d", p, name, i, lo+i)
				}
			}
			total += pp.Sessions.Len()
		}
	}
	want := 0
	for _, p := range db.Prefs {
		want += p.Sessions.Len()
	}
	if total != want {
		t.Fatalf("partitions hold %d sessions, model has %d", total, want)
	}
}
