package ppd

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"testing"
)

// Equivalence suite for the unified query API: every legacy entry point of
// the engine must return byte-identical results to the corresponding Do
// call on the same seeded database. The wrappers in compat.go delegate to
// Do, so this suite is the contract that keeps them honest: any drift in
// how a wrapper builds its Request (wrong kind, dropped field, changed
// grounding path) shows up as a serialization mismatch here.

// canon serializes a result to canonical JSON; SessionProb rows project to
// (key, prob) pairs so pointer identity does not leak into the comparison.
func canon(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(canonValue(v))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func canonValue(v any) any {
	switch x := v.(type) {
	case []SessionProb:
		out := make([]map[string]any, len(x))
		for i, sp := range x {
			out[i] = map[string]any{"key": sp.Session.Key, "prob": sp.Prob}
		}
		return out
	case *EvalResult:
		return map[string]any{
			"prob": x.Prob, "count": x.Count, "per": canonValue(x.PerSession),
			"solves": x.Solves, "cacheHits": x.CacheHits, "plan": x.Plan,
		}
	case *TopKDiag:
		if x == nil {
			return nil
		}
		return map[string]any{
			"bound": x.BoundSolves, "exact": x.ExactSolves,
			"sessions": x.SessionsEvaluated, "cacheHits": x.CacheHits, "plan": x.Plan,
		}
	case *CountDistribution:
		return map[string]any{"pmf": x.PMF, "probs": x.Probs}
	default:
		return v
	}
}

// equal asserts two canonical serializations match byte for byte.
func equal(t *testing.T, what string, legacy, unified []byte) {
	t.Helper()
	if !bytes.Equal(legacy, unified) {
		t.Errorf("%s: legacy and Do results differ\n-- legacy --\n%s\n-- do --\n%s", what, legacy, unified)
	}
}

// equivEngine builds a fresh engine per call so RNG streams start identical
// on both sides of a comparison.
func equivEngine(db *DB, m Method) *Engine {
	return &Engine{DB: db, Method: m, Rng: rand.New(rand.NewSource(1)), RejectionN: 512, LiteD: 3, LiteN: 100}
}

func TestLegacyEntryPointsMatchDo(t *testing.T) {
	db := figure1DB(t)
	ctx := context.Background()
	const src = `P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`
	const unionSrc = src + ` | P(_, _; c1; c2), C(c1, D, _, _, JD, _), C(c2, R, _, _, _, _)`
	q := MustParseUnion(src).Disjuncts[0]
	uq := MustParseUnion(unionSrc)

	// Exact and sampling methods both: the sampling side checks that the
	// wrappers leave the RNG stream untouched (same draws, same estimates).
	for _, m := range []Method{MethodAuto, MethodGeneral, MethodRejection, MethodAdaptive} {
		t.Run(m.String(), func(t *testing.T) {
			boolReq := &Request{Kind: KindBool, Queries: []*Query{q}}

			res, err := equivEngine(db, m).Eval(q)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := equivEngine(db, m).Do(ctx, boolReq)
			if err != nil {
				t.Fatal(err)
			}
			equal(t, "Eval", canon(t, res), canon(t, resp.EvalResult()))

			res, err = equivEngine(db, m).EvalCtx(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			equal(t, "EvalCtx", canon(t, res), canon(t, resp.EvalResult()))

			unionResp, err := equivEngine(db, m).Do(ctx, &Request{Kind: KindBool, Queries: uq.Disjuncts})
			if err != nil {
				t.Fatal(err)
			}
			res, err = equivEngine(db, m).EvalUnion(uq)
			if err != nil {
				t.Fatal(err)
			}
			equal(t, "EvalUnion", canon(t, res), canon(t, unionResp.EvalResult()))

			count, err := equivEngine(db, m).CountSession(q)
			if err != nil {
				t.Fatal(err)
			}
			countResp, err := equivEngine(db, m).Do(ctx, &Request{Kind: KindCount, Queries: []*Query{q}})
			if err != nil {
				t.Fatal(err)
			}
			if count != countResp.Count {
				t.Errorf("CountSession: %v != %v", count, countResp.Count)
			}

			for _, bound := range []int{0, 1} {
				top, diag, err := equivEngine(db, m).TopK(q, 2, bound)
				if err != nil {
					t.Fatal(err)
				}
				topResp, err := equivEngine(db, m).Do(ctx, &Request{Kind: KindTopK, Queries: []*Query{q}, K: 2, BoundEdges: bound})
				if err != nil {
					t.Fatal(err)
				}
				equal(t, "TopK.top", canon(t, top), canon(t, topResp.Top))
				equal(t, "TopK.diag", canon(t, diag), canon(t, topResp.Diag))
			}

			top, diag, err := equivEngine(db, m).TopKUnion(uq, 2, 1)
			if err != nil {
				t.Fatal(err)
			}
			topResp, err := equivEngine(db, m).Do(ctx, &Request{Kind: KindTopK, Queries: uq.Disjuncts, K: 2, BoundEdges: 1})
			if err != nil {
				t.Fatal(err)
			}
			equal(t, "TopKUnion.top", canon(t, top), canon(t, topResp.Top))
			equal(t, "TopKUnion.diag", canon(t, diag), canon(t, topResp.Diag))

			mps, err := equivEngine(db, m).MostProbableSession(q, 2)
			if err != nil {
				t.Fatal(err)
			}
			mpsResp, err := equivEngine(db, m).Do(ctx, &Request{Kind: KindTopK, Queries: []*Query{q}, K: 2, BoundEdges: 1})
			if err != nil {
				t.Fatal(err)
			}
			equal(t, "MostProbableSession", canon(t, mps), canon(t, mpsResp.Top))

			agg, err := equivEngine(db, m).Aggregate(q, "V", "age")
			if err != nil {
				t.Fatal(err)
			}
			aggResp, err := equivEngine(db, m).Do(ctx, &Request{Kind: KindAggregate, Queries: []*Query{q}, AggRel: "V", AggAttr: "age"})
			if err != nil {
				t.Fatal(err)
			}
			equal(t, "Aggregate", canon(t, agg), canon(t, aggResp.Agg))

			dist, err := equivEngine(db, m).CountDistribution(q)
			if err != nil {
				t.Fatal(err)
			}
			distResp, err := equivEngine(db, m).Do(ctx, &Request{Kind: KindCountDist, Queries: []*Query{q}})
			if err != nil {
				t.Fatal(err)
			}
			equal(t, "CountDistribution", canon(t, dist), canon(t, distResp.Dist))

			dist, err = equivEngine(db, m).CountDistributionUnion(uq)
			if err != nil {
				t.Fatal(err)
			}
			distResp, err = equivEngine(db, m).Do(ctx, &Request{Kind: KindCountDist, Queries: uq.Disjuncts})
			if err != nil {
				t.Fatal(err)
			}
			equal(t, "CountDistributionUnion", canon(t, dist), canon(t, distResp.Dist))
		})
	}
}

// TestDoTextualQueryMatchesPreParsed: a Request carrying the query text
// must answer identically to one carrying the pre-parsed disjuncts.
func TestDoTextualQueryMatchesPreParsed(t *testing.T) {
	db := figure1DB(t)
	ctx := context.Background()
	const src = `P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`
	uq := MustParseUnion(src)
	textual, err := equivEngine(db, MethodAuto).Do(ctx, &Request{Kind: KindBool, Query: src})
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := equivEngine(db, MethodAuto).Do(ctx, &Request{Kind: KindBool, Queries: uq.Disjuncts})
	if err != nil {
		t.Fatal(err)
	}
	equal(t, "textual vs pre-parsed", canon(t, textual.EvalResult()), canon(t, parsed.EvalResult()))
}
