// Package ppd implements the RIM-PPD: a probabilistic preference database
// combining ordinary relations (o-relations) with preference relations
// (p-relations) whose sessions carry Mallows/RIM models, as introduced by
// Kenig et al. and extended by the paper to hard queries.
//
// The package provides the data model, a datalog-style conjunctive query
// parser, the query classifier and grounding procedure (Algorithm 2,
// DecomposeQuery), and the evaluator for Boolean CQs, Count-Session and
// Most-Probable-Session queries, including the top-k upper-bound
// optimization and identical-request session grouping.
package ppd

import (
	"fmt"

	"probpref/internal/label"
	"probpref/internal/rank"
	"probpref/internal/rim"
)

// Relation is an ordinary relation with named attributes and string-valued
// tuples. The first attribute is the key.
type Relation struct {
	// Name is the relation name used in query atoms.
	Name string
	// Attrs names the attributes; the first is the key.
	Attrs []string
	// Tuples holds the rows, one string value per attribute.
	Tuples [][]string
}

// NewRelation validates attribute/tuple arity.
func NewRelation(name string, attrs []string, tuples [][]string) (*Relation, error) {
	for i, t := range tuples {
		if len(t) != len(attrs) {
			return nil, fmt.Errorf("ppd: relation %s tuple %d has %d values, want %d", name, i, len(t), len(attrs))
		}
	}
	return &Relation{Name: name, Attrs: attrs, Tuples: tuples}, nil
}

// AttrIndex returns the position of attribute a, or -1.
func (r *Relation) AttrIndex(a string) int {
	for i, x := range r.Attrs {
		if x == a {
			return i
		}
	}
	return -1
}

// Session is one preference session: a key (the values of the p-relation's
// session attributes) and its ranking distribution. Any RIM-backed model
// (Mallows, Generalized Mallows) can serve as the distribution; the exact
// solvers apply through its RIM materialization.
type Session struct {
	// Key holds the values of the p-relation's session attributes.
	Key []string
	// Model is the session's ranking distribution.
	Model rim.SessionModel
}

// PrefRelation is a preference relation: logically a set of tuples
// (session; left item; right item), represented intensionally by one ranking
// model per session.
type PrefRelation struct {
	// Name is the p-relation name used in preference atoms.
	Name string
	// SessionAttrs names the session attributes of the relation.
	SessionAttrs []string
	// Sessions holds the preference sessions. RAM-built relations use a
	// SessionSlice; snapshot-backed relations an mmap store
	// (internal/store); ingested relations a ConcatSessions of the two.
	Sessions SessionStore
}

// DB is a RIM-PPD instance.
type DB struct {
	// ItemRelation is the o-relation cataloguing the ranked items; its key
	// values identify items in preference models.
	ItemRelation *Relation
	// Relations holds every o-relation by name (including the item
	// relation).
	Relations map[string]*Relation
	// Prefs holds every p-relation by name.
	Prefs map[string]*PrefRelation

	vocab    *label.Vocab
	labeling *label.Labeling
	itemIDs  map[string]rank.Item
	itemKeys []string
}

// NewDB builds a database around an item relation. Each item receives one
// label per attribute, of the form "attr=value"; the key attribute doubles
// as the item's identity label.
func NewDB(items *Relation) (*DB, error) {
	if items == nil || len(items.Attrs) == 0 {
		return nil, fmt.Errorf("ppd: item relation must have attributes")
	}
	db := &DB{
		ItemRelation: items,
		Relations:    map[string]*Relation{items.Name: items},
		Prefs:        make(map[string]*PrefRelation),
		vocab:        label.NewVocab(),
		labeling:     label.NewLabeling(),
		itemIDs:      make(map[string]rank.Item),
	}
	for _, t := range items.Tuples {
		key := t[0]
		if _, dup := db.itemIDs[key]; dup {
			return nil, fmt.Errorf("ppd: duplicate item key %q", key)
		}
		id := rank.Item(len(db.itemKeys))
		db.itemIDs[key] = id
		db.itemKeys = append(db.itemKeys, key)
		for ai, v := range t {
			db.labeling.Add(id, db.vocab.Intern(items.Attrs[ai]+"="+v))
		}
	}
	return db, nil
}

// AddRelation registers an additional o-relation.
func (db *DB) AddRelation(r *Relation) error {
	if _, dup := db.Relations[r.Name]; dup {
		return fmt.Errorf("ppd: relation %q already exists", r.Name)
	}
	db.Relations[r.Name] = r
	return nil
}

// AddPrefRelation registers a p-relation. Every session model must range
// over exactly the items of the item relation.
func (db *DB) AddPrefRelation(p *PrefRelation) error {
	if p.Sessions == nil {
		p.Sessions = SessionSlice(nil)
	}
	for _, s := range p.Sessions.All() {
		if len(s.Key) != len(p.SessionAttrs) {
			return fmt.Errorf("ppd: session key %v arity mismatch in %q", s.Key, p.Name)
		}
		if s.Model.M() != db.M() {
			return fmt.Errorf("ppd: session model over %d items, catalog has %d", s.Model.M(), db.M())
		}
	}
	return db.AddPrefRelationUnchecked(p)
}

// AddPrefRelationUnchecked registers a p-relation without iterating its
// sessions for validation. It exists for snapshot loaders (internal/store)
// whose checksummed on-disk format already guarantees the per-session
// invariants — key arity and model item count — so that opening a large
// out-of-core store does not materialize every session up front.
func (db *DB) AddPrefRelationUnchecked(p *PrefRelation) error {
	if _, dup := db.Prefs[p.Name]; dup {
		return fmt.Errorf("ppd: p-relation %q already exists", p.Name)
	}
	if p.Sessions == nil {
		p.Sessions = SessionSlice(nil)
	}
	db.Prefs[p.Name] = p
	return nil
}

// M returns the number of items.
func (db *DB) M() int { return len(db.itemKeys) }

// Labeling returns the item labeling derived from the item relation.
func (db *DB) Labeling() *label.Labeling { return db.labeling }

// Vocab returns the label vocabulary.
func (db *DB) Vocab() *label.Vocab { return db.vocab }

// ItemID resolves an item key value.
func (db *DB) ItemID(key string) (rank.Item, bool) {
	id, ok := db.itemIDs[key]
	return id, ok
}

// ItemKey returns the key value of an item id.
func (db *DB) ItemKey(id rank.Item) string { return db.itemKeys[id] }

// LabelFor interns the label "attr=value".
func (db *DB) LabelFor(attr, value string) label.Label {
	return db.vocab.Intern(attr + "=" + value)
}
