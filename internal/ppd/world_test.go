package ppd

import (
	"math"
	"math/rand"
	"testing"
)

// End-to-end statistical validation of the whole engine: Monte Carlo over
// sampled possible worlds must converge to the exact Boolean and
// Count-Session answers. This exercises grounding, pattern matching, the
// session-independence semantics and the exact solvers together.
func TestPossibleWorldSemantics(t *testing.T) {
	db := figure1DB(t)
	for _, src := range []string{
		`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`,
		`P(_, _; c1; c2), C(c1, D, _, _, e, _), C(c2, R, _, _, e, _)`,
		`P(Ann, "5/5"; Trump; Clinton), P(Ann, "5/5"; Trump; Rubio)`,
	} {
		q := MustParse(src)
		eng := &Engine{DB: db, Method: MethodAuto}
		res, err := eng.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewGrounder(db, q)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(77))
		const n = 20000
		holds, countSum := 0, 0
		for i := 0; i < n; i++ {
			w := db.SampleWorld(rng)
			h, err := g.HoldsIn(w)
			if err != nil {
				t.Fatal(err)
			}
			if h {
				holds++
			}
			c, err := g.CountIn(w)
			if err != nil {
				t.Fatal(err)
			}
			countSum += c
		}
		empProb := float64(holds) / n
		empCount := float64(countSum) / n
		if math.Abs(empProb-res.Prob) > 0.015 {
			t.Fatalf("%s: empirical Pr %v, exact %v", src, empProb, res.Prob)
		}
		if math.Abs(empCount-res.Count) > 0.03 {
			t.Fatalf("%s: empirical count %v, exact %v", src, empCount, res.Count)
		}
	}
}

func TestSampleWorldShape(t *testing.T) {
	db := figure1DB(t)
	w := db.SampleWorld(rand.New(rand.NewSource(1)))
	rs := w.Rankings["P"]
	if len(rs) != 3 {
		t.Fatalf("rankings = %d", len(rs))
	}
	for _, r := range rs {
		if len(r) != 4 || !r.IsPermutation() {
			t.Fatalf("invalid world ranking %v", r)
		}
	}
}
