package ppd

import (
	"fmt"
	"strings"

	"probpref/internal/pattern"
)

// UnionExplanation reports how a union query will be evaluated: one
// explanation per disjunct, plus the statistics of the merged per-session
// unions the evaluator actually solves.
type UnionExplanation struct {
	// Disjuncts holds the per-disjunct explanations.
	Disjuncts []*Explanation
	// Sessions is the total number of sessions of the shared p-relation.
	Sessions int
	// LiveSessions counts sessions whose merged union is non-empty.
	LiveSessions int
	// MinUnion and MaxUnion are the smallest and largest merged
	// per-session union sizes.
	MinUnion, MaxUnion int
	// DistinctGroups is the number of distinct (model, merged union)
	// requests after grouping.
	DistinctGroups int
	// AllTwoLabel and AllBipartite classify the merged unions.
	AllTwoLabel, AllBipartite bool
	// Recommended is the suggested evaluation method for the merged
	// unions.
	Recommended Method
}

// ExplainUnion analyzes a union query without solving any inference
// problem.
func (e *Engine) ExplainUnion(uq *UnionQuery) (*UnionExplanation, error) {
	if err := uq.Validate(); err != nil {
		return nil, err
	}
	ex := &UnionExplanation{AllTwoLabel: true, AllBipartite: true}
	grounders := make([]*Grounder, len(uq.Disjuncts))
	for i, q := range uq.Disjuncts {
		sub, err := e.Explain(q)
		if err != nil {
			return nil, fmt.Errorf("ppd: disjunct %d: %w", i+1, err)
		}
		ex.Disjuncts = append(ex.Disjuncts, sub)
		g, err := NewGrounder(e.DB, q)
		if err != nil {
			return nil, fmt.Errorf("ppd: disjunct %d: %w", i+1, err)
		}
		grounders[i] = g
		if g.Pref() != grounders[0].Pref() {
			return nil, fmt.Errorf("ppd: disjuncts ground over different p-relations")
		}
	}
	sessions := grounders[0].Pref().Sessions
	ex.Sessions = sessions.Len()
	groups := map[string]bool{}
	sampling := false
	for _, s := range sessions.All() {
		unions := make([]pattern.Union, 0, len(grounders))
		for _, g := range grounders {
			gq, err := g.GroundSession(s)
			if err != nil {
				return nil, err
			}
			unions = append(unions, gq.Union)
		}
		merged := pattern.Merge(unions...)
		if len(merged) == 0 {
			continue
		}
		ex.LiveSessions++
		if ex.MinUnion == 0 || len(merged) < ex.MinUnion {
			ex.MinUnion = len(merged)
		}
		if len(merged) > ex.MaxUnion {
			ex.MaxUnion = len(merged)
		}
		if !merged.AllTwoLabel() {
			ex.AllTwoLabel = false
		}
		if !merged.AllBipartite() {
			ex.AllBipartite = false
		}
		if !sampling && len(pattern.InvolvedItems(merged, e.DB.Labeling(), e.DB.M())) > 10 {
			sampling = true
		}
		groups[s.Model.Rehash()+"||"+merged.Key()] = true
	}
	ex.DistinctGroups = len(groups)
	switch {
	case ex.AllTwoLabel:
		ex.Recommended = MethodTwoLabel
	case ex.AllBipartite:
		ex.Recommended = MethodBipartite
	case sampling:
		ex.Recommended = MethodMISAdaptive
	default:
		ex.Recommended = MethodRelOrder
	}
	return ex, nil
}

// String renders the union explanation.
func (ex *UnionExplanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "union of %d disjuncts over %d sessions (%d live after merging)\n",
		len(ex.Disjuncts), ex.Sessions, ex.LiveSessions)
	for i, sub := range ex.Disjuncts {
		fmt.Fprintf(&b, "-- disjunct %d --\n%s", i+1, sub)
	}
	shape := "general"
	if ex.AllTwoLabel {
		shape = "two-label"
	} else if ex.AllBipartite {
		shape = "bipartite"
	}
	fmt.Fprintf(&b, "-- merged --\n")
	fmt.Fprintf(&b, "union sizes  : %d..%d patterns/session\n", ex.MinUnion, ex.MaxUnion)
	fmt.Fprintf(&b, "shape        : %s\n", shape)
	fmt.Fprintf(&b, "groups       : %d distinct (model, union) requests\n", ex.DistinctGroups)
	fmt.Fprintf(&b, "recommended  : %s\n", ex.Recommended)
	return b.String()
}
