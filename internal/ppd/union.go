package ppd

import (
	"fmt"
	"strings"

	"probpref/internal/pattern"
)

// UnionQuery is a union of conjunctive queries (UCQ): it holds in a possible
// world when at least one disjunct holds. Per session, grounding each
// disjunct yields a pattern union, and the UCQ is equivalent to the merged
// union, so evaluation reuses the pattern-union inference machinery
// unchanged — the disjuncts are neither disjoint nor independent, exactly as
// for the pattern unions produced by DecomposeQuery.
//
// All disjuncts must range over the same preference relation; unions across
// p-relations would require joint inference over distinct session spaces,
// which the framework (and the paper) does not define.
type UnionQuery struct {
	// Disjuncts holds the conjunctive queries of the union.
	Disjuncts []*Query
}

// ParseUnion reads a union of conjunctive queries: disjunct bodies in the
// notation of Parse, separated by top-level "|" characters:
//
//	P(_, _; c1; c2), C(c1, _, F, _, _, _) | P(_, _; c1; c2), C(c1, D, _, _, _, _)
//
// "|" inside quoted strings does not split. A source with no "|" yields a
// single-disjunct union.
func ParseUnion(src string) (*UnionQuery, error) {
	parts, err := splitDisjuncts(src)
	if err != nil {
		return nil, err
	}
	uq := &UnionQuery{}
	for i, part := range parts {
		q, err := Parse(part)
		if err != nil {
			return nil, fmt.Errorf("ppd: disjunct %d: %w", i+1, err)
		}
		uq.Disjuncts = append(uq.Disjuncts, q)
	}
	if err := uq.Validate(); err != nil {
		return nil, err
	}
	return uq, nil
}

// MustParseUnion is ParseUnion but panics on error.
func MustParseUnion(src string) *UnionQuery {
	uq, err := ParseUnion(src)
	if err != nil {
		panic(err)
	}
	return uq
}

// splitDisjuncts splits src on "|" outside quoted strings.
func splitDisjuncts(src string) ([]string, error) {
	var parts []string
	var quote byte
	start := 0
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '"' || c == '\'':
			quote = c
		case c == '|':
			parts = append(parts, src[start:i])
			start = i + 1
		}
	}
	if quote != 0 {
		return nil, fmt.Errorf("ppd: unterminated string in union query")
	}
	parts = append(parts, src[start:])
	for i, p := range parts {
		if strings.TrimSpace(p) == "" {
			return nil, fmt.Errorf("ppd: empty disjunct %d in union query", i+1)
		}
	}
	return parts, nil
}

// Validate checks that the union has at least one disjunct, that every
// disjunct is itself valid, and that all disjuncts query the same
// p-relation.
func (uq *UnionQuery) Validate() error {
	if len(uq.Disjuncts) == 0 {
		return fmt.Errorf("ppd: union query has no disjuncts")
	}
	for i, q := range uq.Disjuncts {
		if err := q.Validate(); err != nil {
			return fmt.Errorf("ppd: disjunct %d: %w", i+1, err)
		}
	}
	rel := uq.Disjuncts[0].Prefs[0].Rel
	for i, q := range uq.Disjuncts[1:] {
		if q.Prefs[0].Rel != rel {
			return fmt.Errorf("ppd: disjunct %d queries p-relation %q, disjunct 1 queries %q",
				i+2, q.Prefs[0].Rel, rel)
		}
	}
	return nil
}

// String renders the union in the notation ParseUnion reads.
func (uq *UnionQuery) String() string {
	parts := make([]string, len(uq.Disjuncts))
	for i, q := range uq.Disjuncts {
		parts[i] = strings.TrimPrefix(q.String(), "Q() <- ")
	}
	return "Q() <- " + strings.Join(parts, " | ")
}

// UnionGrounders validates the union and builds one grounder per disjunct,
// checking that every disjunct grounds over the same p-relation. It is the
// shared grounding front end of EvalUnion, TopKUnion and the service
// layer's batch planner.
func UnionGrounders(db *DB, uq *UnionQuery) ([]*Grounder, error) {
	if err := uq.Validate(); err != nil {
		return nil, err
	}
	grounders := make([]*Grounder, len(uq.Disjuncts))
	for i, q := range uq.Disjuncts {
		g, err := NewGrounder(db, q)
		if err != nil {
			return nil, fmt.Errorf("ppd: disjunct %d: %w", i+1, err)
		}
		grounders[i] = g
		if g.Pref() != grounders[0].Pref() {
			return nil, fmt.Errorf("ppd: disjuncts ground over different p-relations")
		}
	}
	return grounders, nil
}

// GroundMerged grounds one session under every grounder and merges the
// disjuncts' unions into the single equivalent inference request.
func GroundMerged(grounders []*Grounder, s *Session) (pattern.Union, error) {
	unions := make([]pattern.Union, 0, len(grounders))
	for _, g := range grounders {
		gq, err := g.GroundSession(s)
		if err != nil {
			return nil, err
		}
		unions = append(unions, gq.Union)
	}
	return pattern.Merge(unions...), nil
}

