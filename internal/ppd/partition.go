package ppd

import (
	"fmt"
	"iter"
)

// PartitionRange returns the half-open session index range [lo, hi) owned by
// partition part of parts over n sessions. Ranges are contiguous, cover
// [0, n) exactly, and differ in size by at most one session; concatenating
// the ranges for part = 0..parts-1 reproduces the original index order,
// which is what lets a coordinator merge per-partition answers back into
// the single-process session order.
func PartitionRange(n, part, parts int) (lo, hi int) {
	return part * n / parts, (part + 1) * n / parts
}

// RangeSessions returns a read-only view of base restricted to sessions
// [lo, hi). The view shares base's storage (no sessions are copied), so it
// works equally over RAM slices and mmap-backed snapshot stores; indexes are
// rebased to start at 0. The bounds are clamped to [0, base.Len()].
func RangeSessions(base SessionStore, lo, hi int) SessionStore {
	n := base.Len()
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if lo >= hi {
		return SessionSlice(nil)
	}
	if lo == 0 && hi == n {
		return base
	}
	return &rangeStore{base: base, lo: lo, n: hi - lo}
}

// rangeStore is the contiguous-slice view built by RangeSessions.
type rangeStore struct {
	base SessionStore
	lo   int
	n    int
}

func (r *rangeStore) Len() int          { return r.n }
func (r *rangeStore) At(i int) *Session { return r.base.At(r.lo + i) }

func (r *rangeStore) All() iter.Seq2[int, *Session] {
	return func(yield func(int, *Session) bool) {
		for i := 0; i < r.n; i++ {
			if !yield(i, r.base.At(r.lo+i)) {
				return
			}
		}
	}
}

// PartitionDB returns a database that shares db's relations, item catalog
// and labeling but restricts every p-relation to partition part of parts
// (per-relation ranges computed by PartitionRange). This is the in-memory
// shard source: a shard serving partition p of a model evaluates queries
// against PartitionDB(db, p, parts) exactly as a single process would
// against db, and because each partition is a contiguous session range the
// coordinator can reassemble per-session answers in global order by
// concatenating partitions 0..parts-1. The receiver is not modified.
func PartitionDB(db *DB, part, parts int) (*DB, error) {
	if parts < 1 {
		return nil, fmt.Errorf("ppd: partition count %d < 1", parts)
	}
	if part < 0 || part >= parts {
		return nil, fmt.Errorf("ppd: partition %d out of range [0,%d)", part, parts)
	}
	ndb := &DB{
		ItemRelation: db.ItemRelation,
		Relations:    db.Relations,
		Prefs:        make(map[string]*PrefRelation, len(db.Prefs)),
		vocab:        db.vocab,
		labeling:     db.labeling,
		itemIDs:      db.itemIDs,
		itemKeys:     db.itemKeys,
	}
	for name, p := range db.Prefs {
		lo, hi := PartitionRange(p.Sessions.Len(), part, parts)
		ndb.Prefs[name] = &PrefRelation{
			Name:         p.Name,
			SessionAttrs: p.SessionAttrs,
			Sessions:     RangeSessions(p.Sessions, lo, hi),
		}
	}
	return ndb, nil
}
