package ppd

import (
	"math"
	"testing"
)

// Aggregate must equal the hand-computed expectation: sum over sessions of
// Pr(Q|s) * attr(voter).
func TestAggregate(t *testing.T) {
	db := figure1DB(t)
	q := MustParse(`P(_, _; c1; c2), C(c1, R, _, _, _, _), C(c2, D, _, _, _, _)`)
	eng := &Engine{DB: db, Method: MethodAuto}
	res, err := eng.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	// Ann is 20, Bob 30, Dave 50.
	ages := map[string]float64{"Ann": 20, "Bob": 30, "Dave": 50}
	wantSum, wantCount := 0.0, 0.0
	for _, sp := range res.PerSession {
		wantSum += sp.Prob * ages[sp.Session.Key[0]]
		wantCount += sp.Prob
	}
	agg, err := eng.Aggregate(q, "V", "age")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(agg.Sum-wantSum) > tol || math.Abs(agg.Count-wantCount) > tol {
		t.Fatalf("sum=%v count=%v, want %v %v", agg.Sum, agg.Count, wantSum, wantCount)
	}
	if math.Abs(agg.Avg-wantSum/wantCount) > tol {
		t.Fatalf("avg=%v, want %v", agg.Avg, wantSum/wantCount)
	}
	if agg.Sessions != 3 {
		t.Fatalf("sessions=%d", agg.Sessions)
	}
}

func TestAggregateErrors(t *testing.T) {
	db := figure1DB(t)
	eng := &Engine{DB: db, Method: MethodAuto}
	q := MustParse(`P(_, _; Trump; Clinton)`)
	if _, err := eng.Aggregate(q, "Z", "age"); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if _, err := eng.Aggregate(q, "V", "bogus"); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

// Aggregate over a query no session can match yields a NaN average.
func TestAggregateEmpty(t *testing.T) {
	db := figure1DB(t)
	eng := &Engine{DB: db, Method: MethodAuto}
	// Session constants that match no session: every session is filtered
	// out during grounding.
	q := MustParse(`P(Zed, "9/9"; Trump; Clinton)`)
	agg, err := eng.Aggregate(q, "V", "age")
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != 0 || !math.IsNaN(agg.Avg) {
		t.Fatalf("count=%v avg=%v", agg.Count, agg.Avg)
	}
}

// Parallel evaluation must match sequential exactly for exact solvers.
func TestEvalParallelMatchesSequential(t *testing.T) {
	db := figure1DB(t)
	q := MustParse(`P(_, _; c1; c2), C(c1, D, _, _, e, _), C(c2, R, _, _, e, _)`)
	seq := &Engine{DB: db, Method: MethodAuto}
	sres, err := seq.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	par := &Engine{DB: db, Method: MethodAuto, Workers: 4}
	pres, err := par.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sres.Prob-pres.Prob) > tol || math.Abs(sres.Count-pres.Count) > tol {
		t.Fatalf("parallel %v/%v vs sequential %v/%v", pres.Prob, pres.Count, sres.Prob, sres.Count)
	}
	if len(pres.PerSession) != len(sres.PerSession) {
		t.Fatalf("session counts differ")
	}
	for i := range pres.PerSession {
		if math.Abs(pres.PerSession[i].Prob-sres.PerSession[i].Prob) > tol {
			t.Fatalf("session %d differs", i)
		}
	}
	if pres.Solves != sres.Solves {
		t.Fatalf("solves differ: %d vs %d", pres.Solves, sres.Solves)
	}
}

// Parallel evaluation with an approximate method must be deterministic for
// a fixed seed and close to the exact answer.
func TestEvalParallelSampler(t *testing.T) {
	db := figure1DB(t)
	q := MustParse(`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	exact, err := (&Engine{DB: db, Method: MethodAuto}).Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *EvalResult {
		eng := &Engine{DB: db, Method: MethodMISLite, Workers: 3, LiteD: 6, LiteN: 1500}
		res, err := eng.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if math.Abs(a.Count-b.Count) > tol {
		t.Fatalf("parallel sampling not deterministic: %v vs %v", a.Count, b.Count)
	}
	if math.Abs(a.Count-exact.Count) > 0.15 {
		t.Fatalf("parallel sampler count %v, exact %v", a.Count, exact.Count)
	}
}

func TestConvenienceWrappers(t *testing.T) {
	db := figure1DB(t)
	eng := &Engine{DB: db, Method: MethodAuto}
	q := MustParse(`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	res, err := eng.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	count, err := eng.CountSession(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(count-res.Count) > tol {
		t.Fatalf("CountSession = %v, Eval.Count = %v", count, res.Count)
	}
	top, err := eng.MostProbableSession(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0].Prob < top[1].Prob {
		t.Fatalf("MostProbableSession = %v", top)
	}
}
