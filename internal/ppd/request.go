package ppd

import (
	"context"
	"fmt"
	"iter"
	"strings"
	"time"

	"probpref/internal/consensus"
)

// This file defines the unified request/response pair of the query API:
// every query class of the paper — Boolean, Count-Session,
// Most-Probable-Session, plus the aggregation and count-distribution
// extensions — is one Request, validated by Compile and answered by
// Engine.Do (or, with model routing, batching and caching, by
// internal/server's Service.Do / Service.DoBatch and the daemon's
// POST /v1/query). The per-kind entry points that predate it (Eval, TopK,
// CountSession, ...) survive as one-line wrappers in compat.go.

// Kind selects the query class of a Request.
type Kind int

const (
	// KindBool asks for the Boolean confidence Pr(Q | D).
	KindBool Kind = iota
	// KindCount asks for the Count-Session expectation count(Q).
	KindCount
	// KindTopK asks for the Most-Probable-Session answer top(Q, k).
	KindTopK
	// KindAggregate asks for sum/avg of a numeric attribute over the
	// satisfying sessions (Request.AggRel / Request.AggAttr).
	KindAggregate
	// KindCountDist asks for the exact Poisson-binomial distribution of
	// count(Q).
	KindCountDist
	// KindConsensus asks for a consensus answer over the union-conditioned
	// session population — a MAP ranking, an expected-Kendall-tau median
	// ranking, or consensus top-k membership with certainty bands —
	// selected by Request.ConsensusTarget (internal/consensus).
	KindConsensus
)

// String returns the canonical kind name (the form ParseKind accepts and
// the HTTP API serves).
func (k Kind) String() string {
	switch k {
	case KindBool:
		return "bool"
	case KindCount:
		return "count"
	case KindTopK:
		return "topk"
	case KindAggregate:
		return "aggregate"
	case KindCountDist:
		return "countdist"
	case KindConsensus:
		return "consensus"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// KindNames lists the canonical kind names ParseKind accepts, in the order
// the CLIs and the HTTP API document them.
func KindNames() []string {
	return []string{"bool", "count", "topk", "aggregate", "countdist", "consensus"}
}

// ParseKind resolves a kind name (as printed by Kind.String) to its Kind;
// it is the shared parser of the CLI -mode flag and the HTTP "kind" field.
// The error of an unknown name enumerates the valid names, mirroring
// ParseMethod.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(s) {
	case "bool", "boolean":
		return KindBool, nil
	case "count":
		return KindCount, nil
	case "topk", "top-k":
		return KindTopK, nil
	case "aggregate", "agg":
		return KindAggregate, nil
	case "countdist", "count-dist":
		return KindCountDist, nil
	case "consensus":
		return KindConsensus, nil
	}
	return 0, fmt.Errorf("unknown kind %q (valid: %s)", s, strings.Join(KindNames(), " | "))
}

// Request is the single typed request shape of the query API: one value
// describes any query the engine can answer, and every layer — Engine.Do,
// the service layer's Do/DoBatch, the daemon's POST /v1/query — speaks it.
// Compile validates the field combination and produces the executable form.
type Request struct {
	// Kind selects the query class.
	Kind Kind
	// Query is the textual query: a conjunctive query in the paper's
	// datalog notation, or a "|"-separated union of CQs (see ParseUnion).
	// Exactly one of Query and Queries must be set.
	Query string
	// Queries is the pre-parsed alternative to Query: the disjuncts of the
	// union (a single-element slice for a plain CQ).
	Queries []*Query
	// Model names the registry model to run against; "" selects the
	// service's default. Engine.Do serves whatever database the engine
	// holds — model routing happens in the service layer.
	Model string
	// Method forces the per-session inference solver. The zero value
	// (MethodAuto) keeps the engine's (or service's) configured method,
	// which dispatches to the most specific exact solver by default.
	Method Method
	// K is how many sessions a topk request returns (required, >= 1, for
	// KindTopK; must stay zero for every other kind).
	K int
	// BoundEdges is the number of upper-bound edges of the topk
	// optimization (0 = the naive strategy; only valid for KindTopK).
	BoundEdges int
	// Deadline arms a per-request deadline: with MethodAdaptive the planner
	// budgets each inference group from it (degrading to sampling with
	// error bars); with every other method the evaluation aborts when it
	// expires. 0 means the caller's context governs alone.
	Deadline time.Duration
	// Seed reseeds the sampling methods for this request; 0 keeps the
	// engine's (or service's) configured seed.
	Seed int64
	// AggRel names the o-relation providing the aggregated attribute
	// (required for KindAggregate, rejected otherwise).
	AggRel string
	// AggAttr names the numeric attribute of AggRel to aggregate
	// (required for KindAggregate, rejected otherwise).
	AggAttr string
	// ConsensusTarget selects the consensus answer of a KindConsensus
	// request — consensus.TargetMAP, TargetMedian or TargetTopK (required
	// for KindConsensus, rejected otherwise; TargetTopK also requires K).
	ConsensusTarget consensus.Target
}

// Compile validates the request and resolves it into its executable form.
// Contradictory field combinations — an unknown Kind, both or neither of
// Query/Queries, K on a non-topk request, aggregation fields on a
// non-aggregate request, negative K/BoundEdges/Deadline — are rejected with
// errors that enumerate the valid values where a closed set exists.
func (r *Request) Compile() (*CompiledRequest, error) {
	if r.Kind < KindBool || r.Kind > KindConsensus {
		return nil, fmt.Errorf("ppd: unknown kind %d (valid: %s)", int(r.Kind), strings.Join(KindNames(), " | "))
	}
	if r.Method < MethodAuto || r.Method > MethodAdaptive {
		return nil, fmt.Errorf("ppd: unknown method %d (valid: %s)", int(r.Method), strings.Join(MethodNames(), " | "))
	}
	var uq *UnionQuery
	switch {
	case r.Query != "" && len(r.Queries) > 0:
		return nil, fmt.Errorf("ppd: request sets both Query and Queries; pick one")
	case r.Query != "":
		var err error
		if uq, err = ParseUnion(r.Query); err != nil {
			return nil, err
		}
	case len(r.Queries) == 1:
		// Validate the lone query directly so single-query errors keep the
		// exact text of the per-kind entry points (no "disjunct 1" prefix).
		if err := r.Queries[0].Validate(); err != nil {
			return nil, err
		}
		uq = &UnionQuery{Disjuncts: r.Queries}
	case len(r.Queries) > 1:
		uq = &UnionQuery{Disjuncts: r.Queries}
		if err := uq.Validate(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("ppd: request has no query (set Query or Queries)")
	}
	if r.Kind == KindConsensus {
		if r.ConsensusTarget == consensus.TargetNone {
			return nil, fmt.Errorf("ppd: kind consensus requires a consensus target (valid: %s)", strings.Join(consensus.TargetNames(), " | "))
		}
		if r.ConsensusTarget < consensus.TargetMAP || r.ConsensusTarget > consensus.TargetTopK {
			return nil, fmt.Errorf("ppd: unknown consensus target %d (valid: %s)", int(r.ConsensusTarget), strings.Join(consensus.TargetNames(), " | "))
		}
	} else if r.ConsensusTarget != consensus.TargetNone {
		return nil, fmt.Errorf("ppd: ConsensusTarget is only valid for kind consensus, not %s", r.Kind)
	}
	switch {
	case r.Kind == KindTopK:
		if r.K < 1 {
			return nil, fmt.Errorf("ppd: kind topk requires K >= 1, got %d", r.K)
		}
		if r.BoundEdges < 0 {
			return nil, fmt.Errorf("ppd: BoundEdges must be non-negative, got %d", r.BoundEdges)
		}
	case r.Kind == KindConsensus && r.ConsensusTarget == consensus.TargetTopK:
		if r.K < 1 {
			return nil, fmt.Errorf("ppd: consensus target topk requires K >= 1, got %d", r.K)
		}
		if r.BoundEdges != 0 {
			return nil, fmt.Errorf("ppd: BoundEdges is only valid for kind topk, not %s", r.Kind)
		}
	default:
		if r.K != 0 {
			if r.Kind == KindConsensus {
				return nil, fmt.Errorf("ppd: K is only valid for consensus target topk, not %s", r.ConsensusTarget)
			}
			return nil, fmt.Errorf("ppd: K is only valid for kind topk, not %s", r.Kind)
		}
		if r.BoundEdges != 0 {
			return nil, fmt.Errorf("ppd: BoundEdges is only valid for kind topk, not %s", r.Kind)
		}
	}
	if r.Kind == KindAggregate {
		if r.AggRel == "" || r.AggAttr == "" {
			return nil, fmt.Errorf("ppd: kind aggregate requires AggRel and AggAttr")
		}
		if len(uq.Disjuncts) > 1 {
			return nil, fmt.Errorf("ppd: kind aggregate does not support union queries (%d disjuncts)", len(uq.Disjuncts))
		}
	} else if r.AggRel != "" || r.AggAttr != "" {
		return nil, fmt.Errorf("ppd: AggRel/AggAttr are only valid for kind aggregate, not %s", r.Kind)
	}
	if r.Deadline < 0 {
		return nil, fmt.Errorf("ppd: Deadline must be non-negative, got %v", r.Deadline)
	}
	return &CompiledRequest{
		Kind:       r.Kind,
		Union:      uq,
		Model:      r.Model,
		Method:     r.Method,
		K:          r.K,
		BoundEdges: r.BoundEdges,
		Deadline:   r.Deadline,
		Seed:       r.Seed,
		AggRel:     r.AggRel,
		AggAttr:    r.AggAttr,
		Target:     r.ConsensusTarget,
	}, nil
}

// MustCompile is Compile but panics on error; it is a convenience for tests
// and examples with literal requests.
func (r *Request) MustCompile() *CompiledRequest {
	cr, err := r.Compile()
	if err != nil {
		panic(err)
	}
	return cr
}

// CompiledRequest is the validated, executable form of a Request: the query
// text is parsed into its union, the field combination is known to be
// consistent, and Key gives a canonical identity for request-level caching
// and deduplication. Build one with Request.Compile.
type CompiledRequest struct {
	// Kind is the validated query class.
	Kind Kind
	// Union holds the parsed disjuncts (one for a plain CQ).
	Union *UnionQuery
	// Model is the registry model name ("" = default); routing happens in
	// the service layer.
	Model string
	// Method is the forced solver (MethodAuto = keep the configured one).
	Method Method
	// K and BoundEdges carry the topk parameters (zero otherwise).
	K, BoundEdges int
	// Deadline is the per-request latency budget (0 = none).
	Deadline time.Duration
	// Seed reseeds the samplers (0 = keep the configured seed).
	Seed int64
	// AggRel and AggAttr carry the aggregation target (empty otherwise).
	AggRel, AggAttr string
	// Target carries the consensus target (TargetNone otherwise).
	Target consensus.Target
}

// Key returns the canonical identity of the compiled request: two requests
// with equal keys ask for the same computation against the same model, so
// batch planners deduplicate on it and caches may key response entries off
// it. The query part uses the union's canonical printed form.
func (cr *CompiledRequest) Key() string {
	return fmt.Sprintf("%s|%s|%s|k=%d|b=%d|d=%d|s=%d|t=%s|%s.%s|%s",
		cr.Kind, cr.Model, cr.Method, cr.K, cr.BoundEdges, cr.Deadline, cr.Seed,
		cr.Target, cr.AggRel, cr.AggAttr, cr.Union)
}

// Response is the unified answer of the query API: one struct carries the
// result of any Kind, with the unused sections left zero. It replaces the
// per-kind result types (EvalResult, TopKDiag pairs, AggregateResult,
// CountDistribution), which remain available as projections for the
// compatibility surface.
type Response struct {
	// Kind echoes the request's query class.
	Kind Kind
	// Prob is the Boolean confidence Pr(Q | D) (bool, count and countdist
	// kinds).
	Prob float64
	// Count is the Count-Session expectation (bool, count, countdist and
	// aggregate kinds).
	Count float64
	// PerSession holds the per-session probabilities in p-relation order
	// (bool, count and countdist kinds; empty-union sessions are omitted).
	PerSession []SessionProb
	// Top lists the k most probable sessions, best first (topk kind).
	Top []SessionProb
	// Agg is the aggregation answer (aggregate kind).
	Agg *AggregateResult
	// Dist is the exact count distribution (countdist kind).
	Dist *CountDistribution
	// Solves counts fresh solver invocations behind the answer.
	Solves int
	// CacheHits counts inference groups answered from a solve cache.
	CacheHits int
	// Plan reports MethodAdaptive's routing decisions and confidence
	// half-widths; nil for every other method.
	Plan *PlanStats
	// Diag reports the work of a topk evaluation (topk kind).
	Diag *TopKDiag
	// Consensus is the consensus answer (consensus kind).
	Consensus *ConsensusResult
}

// Sessions streams the response's per-session rows — the top-k answers for
// a topk response, the per-session probabilities otherwise — as a pull
// iterator. Consumers that forward rows one at a time (the daemon's NDJSON
// streaming, pagination layers) iterate instead of materializing; a done
// ctx stops the stream between rows, yielding the context's cause as the
// final error.
func (r *Response) Sessions(ctx context.Context) iter.Seq2[SessionProb, error] {
	rows := r.PerSession
	if r.Kind == KindTopK {
		rows = r.Top
	}
	return func(yield func(SessionProb, error) bool) {
		for _, sp := range rows {
			if err := ctx.Err(); err != nil {
				yield(SessionProb{}, context.Cause(ctx))
				return
			}
			if !yield(sp, nil) {
				return
			}
		}
	}
}

// EvalResult projects the response onto the legacy evaluation result; it is
// the bridge the compatibility wrappers (Eval, EvalUnion, ...) return
// through.
func (r *Response) EvalResult() *EvalResult {
	return &EvalResult{
		Prob:       r.Prob,
		Count:      r.Count,
		PerSession: r.PerSession,
		Solves:     r.Solves,
		CacheHits:  r.CacheHits,
		Plan:       r.Plan,
	}
}
