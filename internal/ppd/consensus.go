package ppd

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"

	"probpref/internal/consensus"
	"probpref/internal/pattern"
	"probpref/internal/rank"
)

// This file is the engine side of the consensus query kind (Kind:
// consensus, internal/consensus): it reduces the union-conditioned session
// population to one consensus.Row of sufficient statistics per live
// session — exact permutation enumeration when the item count (or an
// adaptive budget) allows, per-session-seeded rejection sampling otherwise
// — and folds the rows with consensus.Solve. Because rows are per-session
// and the fold is sequential in session order, the cluster coordinator
// reproduces this path byte-identically by concatenating per-partition
// rows and re-solving centrally (internal/cluster's merge).

// DefaultConsensusDraws is the per-session Monte Carlo draw count of a
// sampled consensus evaluation when Engine.RejectionN is unset.
const DefaultConsensusDraws = 2000

// ConsensusResult is the consensus section of a Response: the folded
// answer plus the item-key domain (decoding the model-internal item ids of
// rankings and mode keys) and the per-session rows behind it. The rows
// make the answer mergeable: a coordinator concatenates partition rows in
// session order and re-solves, matching a single process bit for bit.
type ConsensusResult struct {
	// Result is the folded consensus answer.
	consensus.Result
	// Domain maps item ids to their catalog keys (Domain[i] names item i).
	Domain []string
	// Rows holds the per-session sufficient statistics in session order.
	Rows []consensus.Row
}

// consensusUnion answers a consensus request: route exact or sampled,
// build per-session rows, fold them. Sessions whose grounded union is
// empty (structurally unsatisfiable) or whose conditioned mass/accept
// count is zero are omitted — the population is "sessions that can
// satisfy the query", mirroring the PerSession semantics of the
// evaluation kinds.
func (e *Engine) consensusUnion(ctx context.Context, cr *CompiledRequest) (*Response, error) {
	sessions, ground, err := e.unionGround(cr.Union)
	if err != nil {
		return nil, err
	}
	m := e.DB.M()
	exact, err := e.consensusRoute(ctx, m, sessions.Len())
	if err != nil {
		return nil, err
	}
	var rows []consensus.Row
	if exact {
		rows, err = e.consensusExactRows(ctx, sessions, ground, cr)
	} else {
		rows, err = e.consensusSampledRows(ctx, sessions, ground, cr)
	}
	if err != nil {
		return nil, err
	}
	res, err := consensus.Solve(rows, consensus.Params{Target: cr.Target, M: m, K: cr.K})
	if err != nil {
		return nil, err
	}
	domain := make([]string, m)
	for i := range domain {
		domain[i] = e.DB.ItemKey(rank.Item(i))
	}
	return &Response{
		Kind:      KindConsensus,
		Consensus: &ConsensusResult{Result: *res, Domain: domain, Rows: rows},
	}, nil
}

// consensusRoute decides exact enumeration vs rejection sampling. Exact
// consensus evaluates all m! rankings per session, so it is capped at
// consensus.MaxExactM items: an explicitly exact method beyond the cap is
// an error, MethodAuto degrades to sampling, and MethodAdaptive
// additionally compares EstimateConsensusCost against its budget.
func (e *Engine) consensusRoute(ctx context.Context, m, sessions int) (bool, error) {
	switch e.Method {
	case MethodTwoLabel, MethodBipartite, MethodGeneral, MethodRelOrder:
		if m > consensus.MaxExactM {
			return false, fmt.Errorf("ppd: exact consensus enumerates m! rankings and m = %d exceeds the exact limit %d; use a sampling method or adaptive", m, consensus.MaxExactM)
		}
		return true, nil
	case MethodMISAdaptive, MethodMISLite, MethodRejection:
		return false, nil
	case MethodAdaptive:
		if m > consensus.MaxExactM {
			return false, nil
		}
		return EstimateConsensusCost(m, sessions).States <= e.adaptiveBudget(ctx), nil
	}
	// MethodAuto (and anything Compile would have rejected).
	return m <= consensus.MaxExactM, nil
}

// consensusExactRows enumerates every ranking of every live session,
// accumulating the requested target's probability-mass numerators over
// the rankings matching the session's grounded union.
func (e *Engine) consensusExactRows(ctx context.Context, sessions SessionStore, ground func(*Session) (pattern.Union, error), cr *CompiledRequest) ([]consensus.Row, error) {
	m := e.DB.M()
	lab := e.DB.Labeling()
	var rows []consensus.Row
	for si, s := range sessions.All() {
		if si&7 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		u, err := ground(s)
		if err != nil {
			return nil, err
		}
		if len(u) == 0 {
			continue
		}
		row := consensus.Row{Session: s.Key}
		switch cr.Target {
		case consensus.TargetMedian:
			row.Pair = make([]float64, m*m)
		case consensus.TargetTopK:
			row.Top = make([]float64, m)
		case consensus.TargetMAP:
			row.Mode = make(map[string]float64)
		}
		var stop error
		count := 0
		rank.ForEachPermutation(m, func(tau rank.Ranking) bool {
			if count&1023 == 0 {
				if err := ctx.Err(); err != nil {
					stop = err
					return false
				}
			}
			count++
			if !u.Matches(tau, lab) {
				return true
			}
			p := s.Model.Prob(tau)
			if p == 0 {
				return true
			}
			row.Weight += p
			switch cr.Target {
			case consensus.TargetMedian:
				for i := 0; i < m; i++ {
					for j := i + 1; j < m; j++ {
						row.Pair[int(tau[i])*m+int(tau[j])] += p
					}
				}
			case consensus.TargetTopK:
				for pos := 0; pos < cr.K && pos < m; pos++ {
					row.Top[tau[pos]] += p
				}
			case consensus.TargetMAP:
				row.Mode[tau.Key()] += p
			}
			return true
		})
		if stop != nil {
			return nil, stop
		}
		if row.Weight > 0 {
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// consensusSampledRows estimates each live session's statistics by
// rejection sampling: fixed draws per session (Engine.RejectionN, default
// DefaultConsensusDraws) from the session's model, accepting rankings
// that match its grounded union. Each session's RNG is seeded from a hash
// of its key XORed with one base draw from the engine RNG, so the
// counters depend only on (engine seed, session key) — not on which
// process, partition or iteration order evaluates the session. That is
// what makes sampled consensus answers byte-identical between a single
// process and the sharded coordinator.
func (e *Engine) consensusSampledRows(ctx context.Context, sessions SessionStore, ground func(*Session) (pattern.Union, error), cr *CompiledRequest) ([]consensus.Row, error) {
	m := e.DB.M()
	lab := e.DB.Labeling()
	draws := e.RejectionN
	if draws <= 0 {
		draws = DefaultConsensusDraws
	}
	baseSeed := e.rng().Int63()
	var rows []consensus.Row
	for _, s := range sessions.All() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		u, err := ground(s)
		if err != nil {
			return nil, err
		}
		if len(u) == 0 {
			continue
		}
		rng := rand.New(rand.NewSource(sessionSeed(baseSeed, s.Key)))
		row := consensus.Row{Session: s.Key, Sampled: true, Draws: int64(draws)}
		switch cr.Target {
		case consensus.TargetMedian:
			row.PairN = make([]int64, m*m)
		case consensus.TargetTopK:
			row.TopN = make([]int64, m)
		case consensus.TargetMAP:
			row.ModeN = make(map[string]int64)
		}
		for d := 0; d < draws; d++ {
			if d&511 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			tau := s.Model.Sample(rng)
			if !u.Matches(tau, lab) {
				continue
			}
			row.Accepts++
			switch cr.Target {
			case consensus.TargetMedian:
				for i := 0; i < m; i++ {
					for j := i + 1; j < m; j++ {
						row.PairN[int(tau[i])*m+int(tau[j])]++
					}
				}
			case consensus.TargetTopK:
				for pos := 0; pos < cr.K && pos < m; pos++ {
					row.TopN[tau[pos]]++
				}
			case consensus.TargetMAP:
				row.ModeN[tau.Key()]++
			}
		}
		if row.Accepts > 0 {
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// sessionSeed derives a session's sampling seed from the request-level
// base seed and the session key (FNV-1a over the NUL-joined key parts):
// position-independent, so partitioned evaluation reproduces the
// single-process draw streams exactly.
func sessionSeed(baseSeed int64, key []string) int64 {
	h := fnv.New64a()
	for _, part := range key {
		h.Write([]byte(part))
		h.Write([]byte{0})
	}
	return baseSeed ^ int64(h.Sum64())
}
