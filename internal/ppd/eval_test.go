package ppd

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"probpref/internal/pattern"
	"probpref/internal/solver"
)

const tol = 1e-9

// evalBySession computes the reference answer with brute force: ground each
// session, enumerate all rankings.
func bruteEval(t *testing.T, db *DB, q *Query) (prob, count float64, perSession []float64) {
	t.Helper()
	g, err := NewGrounder(db, q)
	if err != nil {
		t.Fatal(err)
	}
	oneMinus := 1.0
	for _, s := range g.Pref().Sessions.All() {
		gq, err := g.GroundSession(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(gq.Union) == 0 {
			continue
		}
		p := solver.Brute(s.Model.Model(), db.Labeling(), gq.Union)
		perSession = append(perSession, p)
		count += p
		oneMinus *= 1 - p
	}
	return 1 - oneMinus, count, perSession
}

func TestEvalQ0(t *testing.T) {
	db := figure1DB(t)
	q := MustParse(`P(Ann, "5/5"; Trump; Clinton), P(Ann, "5/5"; Trump; Rubio)`)
	wantProb, wantCount, per := bruteEval(t, db, q)
	if len(per) != 1 {
		t.Fatalf("expected exactly one live session, got %d", len(per))
	}
	eng := &Engine{DB: db, Method: MethodAuto}
	res, err := eng.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Prob-wantProb) > tol || math.Abs(res.Count-wantCount) > tol {
		t.Fatalf("prob=%v count=%v, want %v %v", res.Prob, res.Count, wantProb, wantCount)
	}
	if len(res.PerSession) != 1 || res.Solves != 1 {
		t.Fatalf("sessions=%d solves=%d", len(res.PerSession), res.Solves)
	}
}

// All solver methods must agree with brute force on the Figure 1 instance.
func TestEvalMethodsAgree(t *testing.T) {
	db := figure1DB(t)
	queries := []string{
		`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`,
		`P(_, _; c1; c2), C(c1, D, _, _, e, _), C(c2, R, _, _, e, _)`,
		`P(_, _; Trump; Clinton)`,
	}
	for _, src := range queries {
		q := MustParse(src)
		wantProb, wantCount, _ := bruteEval(t, db, q)
		for _, m := range []Method{MethodAuto, MethodTwoLabel, MethodBipartite, MethodGeneral, MethodRelOrder} {
			if m == MethodTwoLabel && src == queries[0] {
				// Q1 is itemwise two-label, fine; all are two-label here.
				_ = m
			}
			eng := &Engine{DB: db, Method: m}
			res, err := eng.Eval(q)
			if err != nil {
				t.Fatalf("%s method %v: %v", src, m, err)
			}
			if math.Abs(res.Prob-wantProb) > tol {
				t.Fatalf("%s method %v: prob=%v, want %v", src, m, res.Prob, wantProb)
			}
			if math.Abs(res.Count-wantCount) > tol {
				t.Fatalf("%s method %v: count=%v, want %v", src, m, res.Count, wantCount)
			}
		}
	}
}

// Approximate methods must land close to the exact answer.
func TestEvalApproximateMethods(t *testing.T) {
	db := figure1DB(t)
	q := MustParse(`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	wantProb, _, _ := bruteEval(t, db, q)
	for _, m := range []Method{MethodMISAdaptive, MethodMISLite, MethodRejection} {
		eng := &Engine{DB: db, Method: m, Rng: rand.New(rand.NewSource(9)), RejectionN: 50000, LiteD: 8, LiteN: 2000}
		res, err := eng.Eval(q)
		if err != nil {
			t.Fatalf("method %v: %v", m, err)
		}
		if math.Abs(res.Prob-wantProb) > 0.05 {
			t.Fatalf("method %v: prob=%v, want ~%v", m, res.Prob, wantProb)
		}
	}
}

// Grouping identical (model, union) pairs must reduce solver invocations
// without changing results.
func TestEvalGrouping(t *testing.T) {
	db := figure1DB(t)
	// Eve shares Ann's Mallows model exactly; the query grounds to the same
	// pattern for every session, so Ann's and Eve's requests are identical.
	// Dave shares Ann's center but not phi, so his request is distinct.
	polls := db.Prefs["P"]
	polls.Sessions = ConcatSessions(polls.Sessions, SessionSlice{{
		Key:   []string{"Eve", "5/5"},
		Model: polls.Sessions.At(0).Model,
	}})
	q := MustParse(`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	grouped := &Engine{DB: db, Method: MethodAuto}
	res1, err := grouped.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	ungrouped := &Engine{DB: db, Method: MethodAuto, DisableGrouping: true}
	res2, err := ungrouped.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res1.Prob-res2.Prob) > tol || math.Abs(res1.Count-res2.Count) > tol {
		t.Fatalf("grouping changed results: %v vs %v", res1, res2)
	}
	if res2.Solves != 4 {
		t.Fatalf("ungrouped solves = %d, want 4", res2.Solves)
	}
	if res1.Solves != 3 {
		t.Fatalf("grouped solves = %d, want 3", res1.Solves)
	}
}

func TestTopKNaiveMatchesOptimized(t *testing.T) {
	db := figure1DB(t)
	q := MustParse(`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	eng := &Engine{DB: db, Method: MethodAuto}
	for _, k := range []int{1, 2, 3, 5} {
		naive, _, err := eng.TopK(q, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, edges := range []int{1, 2} {
			opt, diag, err := eng.TopK(q, k, edges)
			if err != nil {
				t.Fatal(err)
			}
			if len(opt) != len(naive) {
				t.Fatalf("k=%d edges=%d: %d results vs %d", k, edges, len(opt), len(naive))
			}
			for i := range opt {
				if math.Abs(opt[i].Prob-naive[i].Prob) > tol {
					t.Fatalf("k=%d edges=%d pos=%d: prob %v vs %v", k, edges, i, opt[i].Prob, naive[i].Prob)
				}
			}
			if diag.BoundSolves == 0 {
				t.Fatal("optimized run did not compute bounds")
			}
		}
	}
}

// On a larger instance with distinctly ranked sessions, the optimization
// must skip exact evaluation of some sessions.
func TestTopKSkipsSessions(t *testing.T) {
	db := figure1DB(t)
	q := MustParse(`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, R, _, _, _, _)`)
	eng := &Engine{DB: db, Method: MethodAuto}
	opt, diag, err := eng.TopK(q, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt) != 1 {
		t.Fatalf("results = %d", len(opt))
	}
	naive, _, err := eng.TopK(q, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt[0].Prob-naive[0].Prob) > tol {
		t.Fatalf("optimized top-1 %v != naive %v", opt[0].Prob, naive[0].Prob)
	}
	if diag.SessionsEvaluated > 3 {
		t.Fatalf("evaluated %d sessions", diag.SessionsEvaluated)
	}
}

// Upper bounds must dominate exact probabilities on every session.
func TestTopKBoundsDominate(t *testing.T) {
	db := figure1DB(t)
	q := MustParse(`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	g, err := NewGrounder(db, q)
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{DB: db, Method: MethodAuto}
	for _, s := range g.Pref().Sessions.All() {
		gq, err := g.GroundSession(s)
		if err != nil {
			t.Fatal(err)
		}
		exact, _, err := eng.solve(context.Background(), s.Model, gq.Union)
		if err != nil {
			t.Fatal(err)
		}
		for _, edges := range []int{1, 2, 3} {
			bu := pattern.BoundUnion(gq.Union, s.Model.Reference(), db.Labeling(), edges)
			bound, err := solver.Bipartite(s.Model.Model(), db.Labeling(), bu, eng.SolverOpts)
			if err != nil {
				t.Fatal(err)
			}
			if bound < exact-tol {
				t.Fatalf("bound %v below exact %v (edges=%d)", bound, exact, edges)
			}
		}
	}
}

func TestEvalUnknownMethod(t *testing.T) {
	db := figure1DB(t)
	eng := &Engine{DB: db, Method: Method(99)}
	if _, err := eng.Eval(MustParse(`P(_, _; Trump; Clinton)`)); err == nil {
		t.Fatal("expected error for unknown method")
	}
}
