package ppd

import (
	"context"
	"errors"
	"math"
	"time"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rank"
	"probpref/internal/rim"
	"probpref/internal/sampling"
	"probpref/internal/solver"
)

// This file implements the deadline-aware adaptive planner behind
// MethodAdaptive: a per-(session-model, union) cost estimator routes each
// inference group to the cheapest adequate exact solver when its predicted
// work fits the remaining budget, and to Monte Carlo sampling with a
// reported confidence half-width otherwise. The budget derives from the
// caller's context deadline, so a request that cannot afford exact
// inference degrades to an estimate with error bars instead of timing out
// with nothing.

// AdaptiveStatesPerSecond converts wall-clock budget into predicted solver
// work: the exact DP solvers process state-transitions at very roughly this
// rate on commodity hardware. The constant only needs order-of-magnitude
// accuracy — it decides which side of exact-vs-sampling a group lands on,
// not a precise schedule.
//
// Re-calibrated for the packed-state DP core (PR 5): replacing the
// string-keyed layer maps with packed integer keys, pooled arenas and
// gap-merged expansion made every exact solver ~3.5-4x faster per unit of
// predicted work (BENCH_PR4.json vs BENCH_PR5.json, same machine), so the
// same deadline now buys proportionally more exact solving and the
// adaptive method routes correspondingly more groups to exact answers.
const AdaptiveStatesPerSecond = 80e6

// DefaultAdaptiveBudget is the per-group work budget used by MethodAdaptive
// when neither Engine.AdaptiveBudget nor a context deadline supplies one:
// about one second of exact solving per group.
const DefaultAdaptiveBudget = AdaptiveStatesPerSecond

// adaptiveSampleFloor is the minimum number of Monte Carlo draws for a
// sampled group: even a fully exhausted budget reports an estimate with a
// meaningful (non-zero) confidence half-width.
const adaptiveSampleFloor = 512

// adaptiveSampleCeil caps the draws spent on one sampled group.
const adaptiveSampleCeil = 20000

// methodNone marks "no exact solver applies" in a CostEstimate.
const methodNone = Method(-1)

// CostEstimate predicts the exact-inference work of one (model, union)
// group.
type CostEstimate struct {
	// Solver is the cheapest adequate exact solver, or -1 when none applies
	// within the engine's structural limits.
	Solver Method
	// States is the predicted work of that solver in DP state-transitions
	// (+Inf when no exact solver applies). The prediction is a deliberately
	// simple upper-bound shape — layer width times insertion steps — not a
	// tight count; it only has to order groups and compare against a budget.
	States float64
}

// EstimateCost predicts the cheapest exact route for a group. The features
// are the ones the solvers' complexity bounds depend on: the model size m,
// the number of patterns z, the number of distinct (label set, role)
// trackers (TwoLabel/Bipartite layer width), and the number of involved
// items (RelOrder layer width).
func EstimateCost(sm rim.SessionModel, lab *label.Labeling, u pattern.Union, maxInvolved int) CostEstimate {
	best := CostEstimate{Solver: methodNone, States: math.Inf(1)}
	if len(u) == 0 {
		return CostEstimate{Solver: MethodAuto, States: 0}
	}
	m := float64(sm.M())
	consider := func(s Method, states float64) {
		if states < best.States {
			best = CostEstimate{Solver: s, States: states}
		}
	}
	// TwoLabel and Bipartite: layers hold one position (or "absent") per
	// tracker, so width <= (m+2)^trackers; each of the m insertion steps
	// expands every state into up to m slots.
	if u.AllTwoLabel() {
		consider(MethodTwoLabel, layerCost(m, trackerCount(u)))
	}
	if u.AllBipartite() {
		consider(MethodBipartite, layerCost(m, trackerCount(u)))
	}
	// RelOrder: layers hold the positions of the involved items, width
	// <= C(m, t)*t! <= m^t.
	if t := len(pattern.InvolvedItems(u, lab, sm.M())); t <= maxInvolved {
		consider(MethodRelOrder, layerCost(m, t))
	}
	return best
}

// layerCost returns m^2 * (m+2)^width clamped to avoid overflow: predicted
// layer width times insertion steps times per-state expansion.
func layerCost(m float64, width int) float64 {
	logCost := 2*math.Log(m+1) + float64(width)*math.Log(m+2)
	if logCost > 600 { // beyond any budget; avoid Inf arithmetic surprises
		return math.MaxFloat64
	}
	return math.Exp(logCost)
}

// BatchedWalkFraction and BatchedLaneFraction model the throughput of the
// compiled-plan batched executors (solver.SolveSessions): a batched solve
// pays the structural layer walk — state hashing, successor construction,
// matching — once for all lanes, and only the per-lane multiply-accumulate
// scales with the session count. The fractions are calibrated against the
// solver/batched-* benchmarks: walk bookkeeping is roughly 60% of a
// single-session solve and the per-lane fold the remaining 40%, so per
// session the batched cost approaches 40% of a solo solve as the batch
// grows (and degenerates to exactly one solo solve at one lane).
const (
	BatchedWalkFraction = 0.6
	BatchedLaneFraction = 0.4
)

// EstimateBatchedCost predicts the total exact work of solving one union
// shape against lanes sessions in a single batched walk. The planner uses
// it to compare "one batched walk over the class" against "lanes
// independent solves" (est.States * lanes) when budgeting grouped requests.
func EstimateBatchedCost(est CostEstimate, lanes int) CostEstimate {
	if lanes <= 1 || est.Solver == methodNone {
		return est
	}
	est.States = est.States * (BatchedWalkFraction + BatchedLaneFraction*float64(lanes))
	return est
}

// EstimateConsensusCost predicts the exact-enumeration work of a
// consensus request alongside EstimateCost/EstimateBatchedCost: every
// live session scores all m! rankings at O(m) insertion probabilities
// each, so the predicted work is sessions * m! * m — comparable against
// the same budgets (AdaptiveStatesPerSecond) the solver estimates use.
// Solver is MethodAuto as a stand-in: exact consensus is enumeration, not
// one of the DP solvers.
func EstimateConsensusCost(m, sessions int) CostEstimate {
	if m > 20 { // rank.Factorial's range; far beyond any budget anyway
		return CostEstimate{Solver: methodNone, States: math.Inf(1)}
	}
	states := float64(sessions) * float64(rank.Factorial(m)) * float64(m)
	return CostEstimate{Solver: MethodAuto, States: states}
}

// trackerCount counts the distinct (label set, role) slots the
// TwoLabel/Bipartite DP would track for the union, mirroring their slot
// deduplication.
func trackerCount(u pattern.Union) int {
	seen := make(map[string]bool)
	for _, g := range u {
		for _, e := range g.Edges() {
			seen["min|"+g.Node(e[0]).Labels.Key()] = true
			seen["max|"+g.Node(e[1]).Labels.Key()] = true
		}
	}
	return len(seen)
}

// SolveReport describes how one inference group was answered.
type SolveReport struct {
	// Method is the solver that produced the answer (for MethodAdaptive,
	// the routed solver, not "adaptive" itself).
	Method Method
	// Sampled reports whether a Monte Carlo estimate answered the group.
	Sampled bool
	// Samples counts the Monte Carlo draws behind a sampled answer.
	Samples int
	// HalfWidth is the 95% confidence half-width of a sampled answer
	// (0 for exact answers).
	HalfWidth float64
	// Cost is the planner's predicted exact work for the group
	// (MethodAdaptive only).
	Cost float64
}

// adaptiveBudget resolves the work budget for one group: the explicit
// Engine.AdaptiveBudget when set, otherwise the remaining time before the
// context deadline converted at AdaptiveStatesPerSecond, otherwise
// DefaultAdaptiveBudget. An already-expired deadline yields 0 (everything
// routes to the sampling floor).
func (e *Engine) adaptiveBudget(ctx context.Context) float64 {
	if e.AdaptiveBudget > 0 {
		return e.AdaptiveBudget
	}
	if deadline, ok := ctx.Deadline(); ok {
		remaining := time.Until(deadline).Seconds()
		if remaining <= 0 {
			return 0
		}
		return remaining * AdaptiveStatesPerSecond
	}
	return DefaultAdaptiveBudget
}

// solveAdaptive routes one group. Exact routes run under the caller's
// context, so a mis-predicted solve aborts at the deadline; the fallback
// sampling pass then runs with the deadline detached — the whole point of
// the planner is to return an estimate instead of nothing — while an
// outright cancellation (client disconnect) still aborts it.
func (e *Engine) solveAdaptive(ctx context.Context, sm rim.SessionModel, u pattern.Union) (float64, SolveReport, error) {
	lab := e.DB.Labeling()
	est := EstimateCost(sm, lab, u, e.SolverOpts.MaxInvolvedLimit())
	budget := e.adaptiveBudget(ctx)
	rep := SolveReport{Method: est.Solver, Cost: est.States}
	if est.Solver != methodNone && est.States <= budget {
		opts := e.SolverOpts
		opts.Ctx = ctx
		var (
			p   float64
			err error
		)
		switch est.Solver {
		case MethodTwoLabel:
			p, err = solver.TwoLabel(sm.Model(), lab, u, opts)
		case MethodBipartite:
			p, err = solver.Bipartite(sm.Model(), lab, u, opts)
		default:
			p, err = solver.RelOrder(sm.Model(), lab, u, opts)
		}
		if err == nil {
			return p, rep, nil
		}
		// A blown deadline or a structural rejection (state-space bound,
		// pattern-shape cap the cost model cannot see) degrades to sampling
		// below; anything else (including a true cancellation) propagates.
		if !errors.Is(err, context.DeadlineExceeded) &&
			!errors.Is(err, solver.ErrTooLarge) && !errors.Is(err, solver.ErrShape) {
			return 0, rep, err
		}
	}
	sctx, cancel := DetachDeadline(ctx)
	defer cancel()
	return e.sampleAdaptive(sctx, sm, u, budget)
}

// sampleAdaptive answers a group by Monte Carlo with a reported 95%
// half-width: a rejection pass sized to the budget first and, when the
// event is so rare that rejection saw no hits on a Mallows model, an
// MIS-AMP pass whose proposals concentrate on the satisfying set.
func (e *Engine) sampleAdaptive(ctx context.Context, sm rim.SessionModel, u pattern.Union, budget float64) (float64, SolveReport, error) {
	lab := e.DB.Labeling()
	m := float64(sm.M())
	// A rejection draw costs about one model sample plus a union match:
	// O(m) work, charged here at 4m transitions-equivalent.
	n := int(budget / (4 * m))
	if n < adaptiveSampleFloor {
		n = adaptiveSampleFloor
	}
	if max := e.RejectionN; max > 0 && n > max {
		n = max
	} else if n > adaptiveSampleCeil {
		n = adaptiveSampleCeil
	}
	rep := SolveReport{Method: MethodRejection, Sampled: true, Samples: n}
	p, hw, err := sampling.RejectionModelCICtx(ctx, sm, lab, u, n, 1.96, e.rng())
	if err != nil {
		return 0, rep, err
	}
	rep.HalfWidth = hw
	if ml, ok := sm.(*rim.Mallows); ok && p == 0 {
		// Zero hits: the event is likely rare and the rejection interval
		// says little. MIS-AMP proposals sample the satisfying set
		// directly, so a bounded pass resolves rare probabilities the
		// rejection pass cannot.
		cfg := e.SamplerCfg
		if cfg.Limits.MaxSubRankings == 0 {
			cfg.Limits.MaxSubRankings = 256 // keep proposal construction bounded
		}
		mis, err := sampling.NewEstimator(ml, lab, u, cfg)
		if err == nil {
			misN := n / 8
			if misN < adaptiveSampleFloor/2 {
				misN = adaptiveSampleFloor / 2
			}
			const misD = 4
			mp, mhw, drawn, merr := mis.EstimateCI(ctx, misD, misN, e.rng(), true, 1.96)
			if merr != nil {
				return 0, rep, merr
			}
			rep.Method = MethodMISLite
			rep.Samples = n + drawn
			rep.HalfWidth = mhw
			return clamp01(mp), rep, nil
		}
	}
	return p, rep, nil
}

// DetachDeadline returns a context that drops the parent's deadline but
// keeps true cancellation: Done fires when the parent was cancelled
// outright, not when its deadline expired. MethodAdaptive's degraded
// sampling pass and its surrounding evaluation loop run under it so an
// evaluation can finish past the deadline (returning estimates with error
// bars instead of nothing) while a client disconnect still aborts it; the
// service batch planner uses it the same way. (If the parent is already done
// from its deadline, later cancellations are unobservable — acceptable for
// the short, bounded sampling pass this guards.)
func DetachDeadline(parent context.Context) (context.Context, context.CancelFunc) {
	if parent.Done() == nil {
		return parent, func() {}
	}
	ctx, cancel := context.WithCancel(context.WithoutCancel(parent))
	stop := context.AfterFunc(parent, func() {
		// Anything but a deadline expiry — plain Canceled or a custom
		// WithCancelCause cause — is an outright cancellation and must
		// propagate.
		if !errors.Is(context.Cause(parent), context.DeadlineExceeded) {
			cancel()
		}
	})
	return ctx, func() { stop(); cancel() }
}

// PlanStats reports MethodAdaptive's routing decisions across one
// evaluation. It is attached to EvalResult.Plan (nil for other methods).
type PlanStats struct {
	// ExactGroups counts the solved groups routed to exact solvers.
	ExactGroups int
	// SampledGroups counts the solved groups routed to sampling.
	SampledGroups int
	// Samples is the total Monte Carlo draws across sampled groups.
	Samples int
	// MaxHalfWidth is the largest per-group 95% half-width.
	MaxHalfWidth float64
	// ProbHalfWidth propagates the per-group half-widths to the
	// evaluation's Boolean confidence (first-order error propagation;
	// 0 when every group went exact).
	ProbHalfWidth float64
	// CountHalfWidth likewise propagates to the Count-Session expectation.
	CountHalfWidth float64
	// Methods counts solved groups per routed solver name.
	Methods map[string]int
}

// Note records one solved group's report into the plan counters; the
// service batch planner calls it when attributing group solves to queries.
func (ps *PlanStats) Note(rep SolveReport) {
	if ps.Methods == nil {
		ps.Methods = make(map[string]int)
	}
	ps.Methods[rep.Method.String()]++
	if rep.Sampled {
		ps.SampledGroups++
		ps.Samples += rep.Samples
		if rep.HalfWidth > ps.MaxHalfWidth {
			ps.MaxHalfWidth = rep.HalfWidth
		}
	} else {
		ps.ExactGroups++
	}
}

// propagate computes the half-widths on Prob and Count from the per-session
// probabilities and their group half-widths: Count = sum p_s, so its
// half-width is the sum of the per-session ones; Prob = 1 - prod(1 - p_s),
// whose partial derivative in p_s is prod_{t != s}(1 - p_t).
func (ps *PlanStats) propagate(per []SessionProb, hw []float64) {
	ps.ProbHalfWidth, ps.CountHalfWidth = 0, 0
	// prod_{t != s}(1 - p_t) via prefix/suffix products: O(n), and no
	// division-by-zero hazard from a running product over (1 - p_t) == 0.
	n := len(per)
	suffix := make([]float64, n+1)
	suffix[n] = 1
	for t := n - 1; t >= 0; t-- {
		suffix[t] = suffix[t+1] * (1 - per[t].Prob)
	}
	prefix := 1.0
	for s := 0; s < n; s++ {
		if hw[s] != 0 {
			ps.CountHalfWidth += hw[s]
			ps.ProbHalfWidth += prefix * suffix[s+1] * hw[s]
		}
		prefix *= 1 - per[s].Prob
	}
}

// BatchPlan builds a PlanStats carrying the propagated half-widths for a
// query whose groups were solved by an external batch planner (see
// internal/server): per-session probabilities and the matching group
// half-widths go in, routing counters are attributed separately via Note.
func BatchPlan(per []SessionProb, hw []float64) *PlanStats {
	ps := &PlanStats{}
	ps.propagate(per, hw)
	return ps
}
