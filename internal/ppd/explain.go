package ppd

import (
	"fmt"
	"sort"
	"strings"

	"probpref/internal/pattern"
)

// Explanation reports how a query will be evaluated: its classification
// (itemwise vs. hard), the variables that force grounding, per-session
// pattern-union sizes, and the distinct request groups the solvers will
// actually process.
type Explanation struct {
	// Query is the parsed query text.
	Query string
	// PrefRelation is the queried p-relation.
	PrefRelation string
	// Sessions is the total number of sessions.
	Sessions int
	// LiveSessions is the number of sessions passing session filters.
	LiveSessions int
	// Itemwise reports whether every live session reduced to a single
	// pattern without grounding (the tractable class).
	Itemwise bool
	// GroundVars lists the variables instantiated by Algorithm 2 (V+),
	// unioned over sessions.
	GroundVars []string
	// MinUnion and MaxUnion are the smallest and largest per-session
	// pattern-union sizes.
	MinUnion, MaxUnion int
	// DistinctGroups is the number of distinct (model, union) requests
	// after grouping.
	DistinctGroups int
	// AllTwoLabel and AllBipartite classify the grounded unions.
	AllTwoLabel, AllBipartite bool
	// Recommended is the suggested evaluation method.
	Recommended Method
}

// Explain analyzes the query against the database without solving any
// inference problem.
func (e *Engine) Explain(q *Query) (*Explanation, error) {
	g, err := NewGrounder(e.DB, q)
	if err != nil {
		return nil, err
	}
	ex := &Explanation{
		Query:        q.String(),
		PrefRelation: g.Pref().Name,
		Sessions:     g.Pref().Sessions.Len(),
		Itemwise:     true,
		AllTwoLabel:  true,
		AllBipartite: true,
	}
	groundVars := map[string]bool{}
	groups := map[string]bool{}
	for _, s := range g.Pref().Sessions.All() {
		gq, err := g.GroundSession(s)
		if err != nil {
			return nil, err
		}
		if len(gq.Union) == 0 {
			continue
		}
		ex.LiveSessions++
		if !gq.Itemwise {
			ex.Itemwise = false
		}
		if ex.MinUnion == 0 || len(gq.Union) < ex.MinUnion {
			ex.MinUnion = len(gq.Union)
		}
		if len(gq.Union) > ex.MaxUnion {
			ex.MaxUnion = len(gq.Union)
		}
		if !gq.Union.AllTwoLabel() {
			ex.AllTwoLabel = false
		}
		if !gq.Union.AllBipartite() {
			ex.AllBipartite = false
		}
		groups[s.Model.Rehash()+"||"+gq.Union.Key()] = true
		for v := range g.varComps {
			groundVars[v] = true
		}
		env := map[string]string{}
		vplus, _, err := g.domains(env)
		if err == nil {
			for _, v := range vplus {
				groundVars[v] = true
			}
		}
	}
	ex.DistinctGroups = len(groups)
	for v := range groundVars {
		ex.GroundVars = append(ex.GroundVars, v)
	}
	sort.Strings(ex.GroundVars)
	switch {
	case ex.AllTwoLabel:
		ex.Recommended = MethodTwoLabel
	case ex.AllBipartite:
		ex.Recommended = MethodBipartite
	default:
		ex.Recommended = MethodRelOrder
		// Large involved-item sets make exact relative-order inference
		// infeasible; recommend sampling instead.
		for _, s := range g.Pref().Sessions.All() {
			gq, err := g.GroundSession(s)
			if err != nil || len(gq.Union) == 0 {
				continue
			}
			if len(pattern.InvolvedItems(gq.Union, e.DB.Labeling(), e.DB.M())) > 10 {
				ex.Recommended = MethodMISAdaptive
			}
			break
		}
	}
	return ex, nil
}

// String renders the explanation.
func (ex *Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query        : %s\n", ex.Query)
	fmt.Fprintf(&b, "p-relation   : %s (%d sessions, %d live)\n", ex.PrefRelation, ex.Sessions, ex.LiveSessions)
	class := "hard (non-itemwise)"
	if ex.Itemwise {
		class = "itemwise (tractable)"
	}
	fmt.Fprintf(&b, "class        : %s\n", class)
	if len(ex.GroundVars) > 0 {
		fmt.Fprintf(&b, "grounded vars: %s\n", strings.Join(ex.GroundVars, ", "))
	}
	fmt.Fprintf(&b, "union sizes  : %d..%d patterns/session\n", ex.MinUnion, ex.MaxUnion)
	shape := "general"
	if ex.AllTwoLabel {
		shape = "two-label"
	} else if ex.AllBipartite {
		shape = "bipartite"
	}
	fmt.Fprintf(&b, "shape        : %s\n", shape)
	fmt.Fprintf(&b, "groups       : %d distinct (model, union) requests\n", ex.DistinctGroups)
	fmt.Fprintf(&b, "recommended  : %s\n", ex.Recommended)
	return b.String()
}
