package ppd

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"probpref/internal/pattern"
	"probpref/internal/pool"
	"probpref/internal/rim"
	"probpref/internal/sampling"
	"probpref/internal/solver"
)

// Method selects the inference solver used per session.
type Method int

const (
	// MethodAuto dispatches to the most specific exact solver.
	MethodAuto Method = iota
	// MethodTwoLabel forces Algorithm 3 (two-label unions only).
	MethodTwoLabel
	// MethodBipartite forces Algorithm 4.
	MethodBipartite
	// MethodGeneral forces the inclusion-exclusion baseline.
	MethodGeneral
	// MethodRelOrder forces the relative-order solver.
	MethodRelOrder
	// MethodMISAdaptive uses MIS-AMP-adaptive.
	MethodMISAdaptive
	// MethodMISLite uses MIS-AMP-lite with Engine.LiteD proposals.
	MethodMISLite
	// MethodRejection uses rejection sampling with Engine.RejectionN samples.
	MethodRejection
	// MethodAdaptive is the deadline-aware cost-based planner: per group it
	// routes to the cheapest adequate exact solver when the predicted work
	// fits the budget (Engine.AdaptiveBudget or the context deadline), and
	// to sampling with a reported confidence half-width otherwise (see
	// planner.go).
	MethodAdaptive
)

// String returns the canonical method name (the form ParseMethod accepts
// and the CLIs print).
func (m Method) String() string {
	switch m {
	case MethodAuto:
		return "auto"
	case MethodTwoLabel:
		return "two-label"
	case MethodBipartite:
		return "bipartite"
	case MethodGeneral:
		return "general"
	case MethodRelOrder:
		return "relorder"
	case MethodMISAdaptive:
		return "mis-amp-adaptive"
	case MethodMISLite:
		return "mis-amp-lite"
	case MethodRejection:
		return "rejection"
	case MethodAdaptive:
		return "adaptive"
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// MethodNames lists the canonical method names ParseMethod accepts, in the
// order the CLIs document them. (ParseMethod also accepts a few aliases and
// the exact Method.String forms.)
func MethodNames() []string {
	return []string{"auto", "twolabel", "bipartite", "general", "relorder",
		"adaptive", "mis-adaptive", "mis-lite", "rejection"}
}

// ParseMethod resolves a method name (as printed by Method.String, plus the
// CLI short forms) to its Method; it is the shared flag parser of the cmd
// binaries.
func ParseMethod(s string) (Method, error) {
	switch strings.ToLower(s) {
	case "auto":
		return MethodAuto, nil
	case "twolabel", "two-label":
		return MethodTwoLabel, nil
	case "bipartite":
		return MethodBipartite, nil
	case "general":
		return MethodGeneral, nil
	case "relorder":
		return MethodRelOrder, nil
	case "mis-adaptive", "mis-amp-adaptive":
		return MethodMISAdaptive, nil
	case "mis-lite", "lite", "mis-amp-lite":
		return MethodMISLite, nil
	case "rejection", "rs":
		return MethodRejection, nil
	case "adaptive", "planner":
		return MethodAdaptive, nil
	}
	return 0, fmt.Errorf("unknown method %q (valid: %s)", s, strings.Join(MethodNames(), " | "))
}

// Engine evaluates queries over a RIM-PPD.
type Engine struct {
	// DB is the queried database.
	DB *DB
	// Method selects the per-session inference solver.
	Method Method

	// SolverOpts applies to exact solvers.
	SolverOpts solver.Options
	// SamplerCfg applies to MIS estimators.
	SamplerCfg sampling.Config
	// Adaptive configures MethodMISAdaptive.
	Adaptive sampling.AdaptiveConfig
	// LiteD and LiteN configure MethodMISLite (proposals, samples/proposal).
	LiteD, LiteN int
	// RejectionN configures MethodRejection.
	RejectionN int
	// Rng seeds the samplers; nil uses a fixed seed.
	Rng *rand.Rand
	// DisableGrouping turns off identical-request grouping (Section 6.4).
	DisableGrouping bool
	// Workers > 1 solves distinct session groups concurrently. Sampler
	// methods derive an independent seeded RNG per group so results stay
	// deterministic for a fixed worker-independent seed.
	Workers int
	// Cache, when non-nil, memoizes solved (model, union) groups across
	// Eval/TopK calls (and across engines sharing the cache). It is
	// consulted with GroupKey keys before each solve and updated after;
	// see SolveCache for the concurrency and sampling caveats. Ignored
	// when DisableGrouping is set, since per-session keys are synthetic
	// then.
	Cache SolveCache
	// AdaptiveBudget is MethodAdaptive's per-group work budget in predicted
	// solver state-transitions. 0 derives the budget from the context
	// deadline (remaining time at AdaptiveStatesPerSecond) and falls back
	// to DefaultAdaptiveBudget when the context has none.
	AdaptiveBudget float64
	// Plans, when non-nil, caches compiled union plans across evaluations
	// (see PlanCache); exact-method groups sharing a union shape then skip
	// recompilation and solve through one batched layer walk. Must not be
	// shared between engines with different databases.
	Plans PlanCache
}

func (e *Engine) rng() *rand.Rand {
	if e.Rng == nil {
		e.Rng = rand.New(rand.NewSource(1))
	}
	return e.Rng
}

// SessionProb pairs a session with the probability that the query holds on
// it.
type SessionProb struct {
	// Session is the session the probability refers to.
	Session *Session
	// Prob is Pr(Q | session).
	Prob float64
}

// EvalResult reports a full evaluation.
type EvalResult struct {
	// Prob is Pr(Q | D) = 1 - prod_s (1 - Pr(Q | s)) over the independent
	// sessions (Boolean semantics).
	Prob float64
	// Count is the Count-Session expectation sum_s Pr(Q | s).
	Count float64
	// PerSession holds the per-session probabilities in p-relation order.
	PerSession []SessionProb
	// Solves counts actual inference invocations: live sessions, minus
	// identical-request grouping, minus Cache hits.
	Solves int
	// CacheHits counts groups answered from Engine.Cache without solving
	// (always 0 when no cache is configured).
	CacheHits int
	// Plan reports MethodAdaptive's routing decisions and confidence
	// half-widths; nil for every other method.
	Plan *PlanStats
}

// evalGrounded runs the shared per-session evaluation loop — grounding,
// identical-request grouping, optional parallel solving, and the Boolean /
// Count-Session aggregation — for any grounding function (a plain CQ's
// grounder, or the merged grounders of a union query).
func (e *Engine) evalGrounded(ctx context.Context, sessions SessionStore, ground func(*Session) (pattern.Union, error)) (*EvalResult, error) {
	type liveSession struct {
		s     *Session
		u     pattern.Union
		group int
	}
	var live []liveSession
	groupOf := make(map[string]int)
	type group struct {
		s   *Session
		u   pattern.Union
		key string
	}
	// With the adaptive planner an expired deadline must not abort the
	// evaluation — the planner's contract is to degrade remaining groups to
	// sampling — so the loop and fan-out run under a deadline-detached
	// context (cancellation still aborts); each solve still sees the
	// original ctx for budgeting and mid-solve deadline checks.
	loopCtx := ctx
	if e.Method == MethodAdaptive {
		var cancel context.CancelFunc
		loopCtx, cancel = DetachDeadline(ctx)
		defer cancel()
	}
	var groups []group
	for si, s := range sessions.All() {
		if si&63 == 0 {
			if err := loopCtx.Err(); err != nil {
				return nil, context.Cause(loopCtx)
			}
		}
		u, err := ground(s)
		if err != nil {
			return nil, err
		}
		if len(u) == 0 {
			continue
		}
		key := GroupKey(e.Method, s.Model, u)
		if e.DisableGrouping {
			key = fmt.Sprintf("#%d", si)
		}
		gi, ok := groupOf[key]
		if !ok {
			gi = len(groups)
			groupOf[key] = gi
			groups = append(groups, group{s: s, u: u, key: key})
		}
		live = append(live, liveSession{s: s, u: u, group: gi})
	}

	// Resolve groups against the shared cache first; only misses are solved.
	// With Workers > 1, pending keeps the original group indices and the
	// parallel branch is entered whenever a cold run would enter it, so
	// per-group sampler seeds do not depend on which groups happened to hit
	// and a warm parallel run reproduces the cold one exactly. The serial
	// path draws from the engine's single RNG stream, so there sampling
	// estimates for the solved groups do depend on how many groups hit.
	probs := make([]float64, len(groups))
	reports := make([]SolveReport, len(groups))
	cacheHits := 0
	useCache := e.Cache != nil && !e.DisableGrouping
	var pending []int
	for gi := range groups {
		if useCache {
			if p, ok := e.Cache.Get(groups[gi].key); ok {
				probs[gi] = p
				cacheHits++
				continue
			}
		}
		pending = append(pending, gi)
	}
	finish := func(gi int, p float64, rep SolveReport) {
		probs[gi] = p
		reports[gi] = rep
		if useCache {
			e.Cache.Put(groups[gi].key, p)
		}
	}

	if len(pending) > 1 && e.Plans != nil && e.batchableMethod() && !e.DisableGrouping {
		// Exact compiled-plan methods: pending groups sharing a union shape
		// solve through one batched layer walk, bit-identical to per-group
		// solves, so this path changes only the work done, never the answer.
		// Gated on a configured PlanCache: without one every evaluation
		// would recompile its plans from scratch, which costs more than
		// batching saves on small groups (engines built by the service layer
		// always carry the shared cache).
		bg := make([]BatchGroup, len(pending))
		for pi, gi := range pending {
			bg[pi] = BatchGroup{SM: groups[gi].s.Model, U: groups[gi].u}
		}
		bprobs, breps, err := e.BatchSolveGroups(ctx, bg)
		if err != nil {
			return nil, err
		}
		for pi, gi := range pending {
			finish(gi, bprobs[pi], breps[pi])
		}
	} else if workers := e.Workers; workers > 1 && len(groups) > 1 && len(pending) > 0 {
		baseSeed := int64(1)
		if e.Rng != nil {
			baseSeed = e.Rng.Int63()
		}
		err := pool.RunCtx(loopCtx, len(pending), workers, func(pi int) error {
			gi := pending[pi]
			sub := e.withRng(rand.New(rand.NewSource(baseSeed + int64(gi))))
			p, rep, err := sub.solve(ctx, groups[gi].s.Model, groups[gi].u)
			if err != nil {
				return err
			}
			finish(gi, p, rep)
			return nil
		})
		if err != nil {
			return nil, err
		}
	} else {
		for _, gi := range pending {
			if err := loopCtx.Err(); err != nil {
				return nil, context.Cause(loopCtx)
			}
			p, rep, err := e.solve(ctx, groups[gi].s.Model, groups[gi].u)
			if err != nil {
				return nil, err
			}
			finish(gi, p, rep)
		}
	}

	per := make([]SessionProb, len(live))
	for i, ls := range live {
		per[i] = SessionProb{Session: ls.s, Prob: probs[ls.group]}
	}
	res := BoolAggregate(per)
	res.Solves, res.CacheHits = len(pending), cacheHits
	if e.Method == MethodAdaptive {
		plan := &PlanStats{}
		solved := make([]bool, len(groups))
		for _, gi := range pending {
			solved[gi] = true
			plan.Note(reports[gi])
		}
		// Per-session half-widths for error propagation; cache hits replay
		// earlier answers and contribute no width.
		hw := make([]float64, len(live))
		for i, ls := range live {
			if solved[ls.group] {
				hw[i] = reports[ls.group].HalfWidth
			}
		}
		plan.propagate(per, hw)
		res.Plan = plan
	}
	return res, nil
}

// BoolAggregate builds an EvalResult from per-session probabilities: the
// Boolean confidence 1 - prod(1 - p) over the independent sessions and the
// Count-Session expectation sum(p). It is the shared aggregation of
// evalGrounded and the service layer's batch planner.
func BoolAggregate(per []SessionProb) *EvalResult {
	res := &EvalResult{PerSession: per}
	oneMinus := 1.0
	for _, sp := range per {
		res.Count += sp.Prob
		oneMinus *= 1 - sp.Prob
	}
	res.Prob = 1 - oneMinus
	return res
}

// withRng returns a shallow copy of the engine using the given RNG; used by
// parallel workers so sampler and statistics state is not shared.
func (e *Engine) withRng(rng *rand.Rand) *Engine {
	clone := *e
	clone.Rng = rng
	clone.SolverOpts.Stats = nil // not aggregated across workers
	return &clone
}

// sessionProb computes Pr(Q | s) for a grounded union, consulting the
// per-call identical-request cache and then the engine's shared SolveCache,
// both keyed by (model, union).
func (e *Engine) sessionProb(ctx context.Context, s *Session, u pattern.Union, cache map[string]float64, res *EvalResult) (float64, error) {
	var key string
	if !e.DisableGrouping {
		key = GroupKey(e.Method, s.Model, u)
		if cache != nil {
			if p, ok := cache[key]; ok {
				return p, nil
			}
		}
		if e.Cache != nil {
			if p, ok := e.Cache.Get(key); ok {
				if res != nil {
					res.CacheHits++
				}
				if cache != nil {
					cache[key] = p
				}
				return p, nil
			}
		}
	}
	p, rep, err := e.solve(ctx, s.Model, u)
	if err != nil {
		return 0, err
	}
	if res != nil {
		res.Solves++
		if e.Method == MethodAdaptive {
			if res.Plan == nil {
				res.Plan = &PlanStats{}
			}
			res.Plan.Note(rep)
		}
	}
	if key != "" {
		if cache != nil {
			cache[key] = p
		}
		if e.Cache != nil {
			e.Cache.Put(key, p)
		}
	}
	return p, nil
}

// SolveUnion computes Pr(union | model) with the engine's configured method,
// bypassing grounding, grouping and Engine.Cache. It is the single-group
// primitive used by batch planners (see internal/server) that deduplicate
// groups themselves before fanning out.
func (e *Engine) SolveUnion(sm rim.SessionModel, u pattern.Union) (float64, error) {
	p, _, err := e.solve(context.Background(), sm, u)
	return p, err
}

// SolveUnionCtx is SolveUnion with cancellation and deadline awareness,
// reporting how the group was answered (routed solver, sample count,
// confidence half-width) alongside the probability.
func (e *Engine) SolveUnionCtx(ctx context.Context, sm rim.SessionModel, u pattern.Union) (float64, SolveReport, error) {
	return e.solve(ctx, sm, u)
}

// solve runs the configured inference method. Exact methods apply to any
// RIM-backed session model through its materialization; the MIS-AMP
// estimators are Mallows-specific and fall back to the model-generic MISRIM
// estimator for other session models (e.g. Generalized Mallows).
func (e *Engine) solve(ctx context.Context, sm rim.SessionModel, u pattern.Union) (float64, SolveReport, error) {
	lab := e.DB.Labeling()
	rep := SolveReport{Method: e.Method}
	opts := e.SolverOpts
	if opts.Ctx == nil {
		opts.Ctx = ctx
	}
	exact := func(p float64, err error) (float64, SolveReport, error) {
		return p, rep, err
	}
	switch e.Method {
	case MethodAuto:
		return exact(solver.Auto(sm.Model(), lab, u, opts))
	case MethodTwoLabel:
		return exact(solver.TwoLabel(sm.Model(), lab, u, opts))
	case MethodBipartite:
		return exact(solver.Bipartite(sm.Model(), lab, u, opts))
	case MethodGeneral:
		return exact(solver.General(sm.Model(), lab, u, opts))
	case MethodRelOrder:
		return exact(solver.RelOrder(sm.Model(), lab, u, opts))
	case MethodAdaptive:
		return e.solveAdaptive(ctx, sm, u)
	case MethodMISAdaptive:
		rep.Sampled = true
		ml, ok := sm.(*rim.Mallows)
		if !ok {
			return e.solveMISRIM(ctx, sm, u, rep)
		}
		est, err := sampling.NewEstimator(ml, lab, u, e.SamplerCfg)
		if err != nil {
			return 0, rep, err
		}
		cfg := e.Adaptive
		cfg.Compensate = true
		r, err := est.EstimateAdaptiveCtx(ctx, cfg, e.rng())
		if err != nil {
			return 0, rep, err
		}
		return clamp01(r.Estimate), rep, nil
	case MethodMISLite:
		rep.Sampled = true
		ml, ok := sm.(*rim.Mallows)
		if !ok {
			return e.solveMISRIM(ctx, sm, u, rep)
		}
		est, err := sampling.NewEstimator(ml, lab, u, e.SamplerCfg)
		if err != nil {
			return 0, rep, err
		}
		d, n := e.LiteD, e.LiteN
		if d == 0 {
			d = 5
		}
		if n == 0 {
			n = 500
		}
		p, hw, drawn, err := est.EstimateCI(ctx, d, n, e.rng(), true, 1.96)
		if err != nil {
			return 0, rep, err
		}
		rep.Samples, rep.HalfWidth = drawn, hw
		return clamp01(p), rep, nil
	case MethodRejection:
		rep.Sampled = true
		n := e.RejectionN
		if n == 0 {
			n = 10000
		}
		rep.Samples = n
		p, hw, err := sampling.RejectionModelCICtx(ctx, sm, lab, u, n, 1.96, e.rng())
		if err != nil {
			return 0, rep, err
		}
		rep.HalfWidth = hw
		return p, rep, nil
	}
	return 0, rep, fmt.Errorf("ppd: unknown method %v", e.Method)
}

// solveMISRIM is the sampling fallback for non-Mallows session models.
func (e *Engine) solveMISRIM(ctx context.Context, sm rim.SessionModel, u pattern.Union, rep SolveReport) (float64, SolveReport, error) {
	n := e.LiteN
	if n == 0 {
		n = 500
	}
	p, _, err := sampling.MISRIMCtx(ctx, sm.Model(), e.DB.Labeling(), u, n, e.rng(), e.SamplerCfg.Limits)
	if err != nil {
		return 0, rep, err
	}
	return clamp01(p), rep, nil
}

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// TopKDiag reports the work done by a Most-Probable-Session evaluation.
type TopKDiag struct {
	// BoundSolves counts upper-bound inference calls (0 for the naive
	// strategy).
	BoundSolves int
	// ExactSolves counts exact per-session inference calls (after
	// grouping).
	ExactSolves int
	// SessionsEvaluated counts sessions whose exact probability was
	// computed.
	SessionsEvaluated int
	// CacheHits counts exact evaluations answered from Engine.Cache.
	CacheHits int
	// Plan reports MethodAdaptive's routing decisions for the per-session
	// solves; nil for every other method.
	Plan *PlanStats
}

// topKGrounded is the shared Most-Probable-Session loop for any grounding
// function.
func (e *Engine) topKGrounded(ctx context.Context, sessions SessionStore, ground func(*Session) (pattern.Union, error), k, boundEdges int) ([]SessionProb, *TopKDiag, error) {
	if k <= 0 {
		return nil, nil, fmt.Errorf("ppd: top-k requires k >= 1, got %d", k)
	}
	diag := &TopKDiag{}
	type cand struct {
		s  *Session
		u  pattern.Union
		ub float64
	}
	// As in evalGrounded: the adaptive planner degrades past the deadline
	// instead of aborting, so the candidate loop (and the cheap bound
	// solves) run deadline-detached while each exact solve still sees the
	// original ctx.
	loopCtx := ctx
	if e.Method == MethodAdaptive {
		var cancel context.CancelFunc
		loopCtx, cancel = DetachDeadline(ctx)
		defer cancel()
	}
	var cands []cand
	boundCache := make(map[string]float64)
	boundOpts := e.SolverOpts
	if boundOpts.Ctx == nil {
		boundOpts.Ctx = loopCtx
	}
	for _, s := range sessions.All() {
		u, err := ground(s)
		if err != nil {
			return nil, nil, err
		}
		if len(u) == 0 {
			continue
		}
		c := cand{s: s, u: u, ub: 1}
		if boundEdges > 0 {
			bu := pattern.BoundUnion(u, s.Model.Reference(), e.DB.Labeling(), boundEdges)
			key := GroupKey(MethodBipartite, s.Model, bu)
			ub, ok := boundCache[key]
			if !ok {
				// Bound patterns are constraint sets; the bipartite solver
				// evaluates them directly and its satisfied-state pruning
				// makes it the cheapest choice for the (easy-to-satisfy)
				// relaxations, including the two-label case.
				ub, err = solver.Bipartite(s.Model.Model(), e.DB.Labeling(), bu, boundOpts)
				if err != nil {
					return nil, nil, err
				}
				boundCache[key] = ub
				diag.BoundSolves++
			}
			c.ub = ub
		}
		cands = append(cands, c)
	}
	// Highest upper bound first.
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].ub > cands[j].ub })

	exactCache := make(map[string]float64)
	var out []SessionProb
	kth := func() float64 {
		if len(out) < k {
			return -1
		}
		return out[len(out)-1].Prob // out kept sorted descending, trimmed to k
	}
	res := &EvalResult{}
	for _, c := range cands {
		if err := loopCtx.Err(); err != nil {
			return nil, nil, context.Cause(loopCtx)
		}
		if len(out) >= k && kth() >= c.ub {
			break // every remaining bound is dominated
		}
		p, err := e.sessionProb(ctx, c.s, c.u, exactCache, res)
		if err != nil {
			return nil, nil, err
		}
		diag.SessionsEvaluated++
		out = append(out, SessionProb{Session: c.s, Prob: p})
		sort.SliceStable(out, func(a, b int) bool { return out[a].Prob > out[b].Prob })
		if len(out) > k {
			out = out[:k]
		}
	}
	diag.ExactSolves = res.Solves
	diag.CacheHits = res.CacheHits
	diag.Plan = res.Plan
	return out, diag, nil
}
