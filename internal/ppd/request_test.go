package ppd

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"probpref/internal/consensus"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestParseKindRoundTrip(t *testing.T) {
	for _, name := range KindNames() {
		k, err := ParseKind(name)
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", name, err)
		}
		if k.String() != name {
			t.Errorf("ParseKind(%q).String() = %q", name, k.String())
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("ParseKind(nope): want error")
	}
}

func TestKindStringUnknown(t *testing.T) {
	if got := Kind(42).String(); got != "kind(42)" {
		t.Errorf("Kind(42).String() = %q", got)
	}
}

// TestCompileErrorGolden pins the exact error text of every contradictory
// Request shape: the errors are part of the API (CLI users and HTTP clients
// read them verbatim), and the enumerated-value ones must keep listing the
// full closed set, mirroring ParseMethod.
func TestCompileErrorGolden(t *testing.T) {
	q := MustParseUnion(`P(_, _; a; b), C(a, _, F, _, _, _)`).Disjuncts[0]
	cases := []struct {
		name string
		req  Request
	}{
		{"unknown kind", Request{Kind: Kind(7), Query: "x"}},
		{"negative kind", Request{Kind: Kind(-1), Query: "x"}},
		{"unknown method", Request{Kind: KindBool, Method: Method(99), Query: "x"}},
		{"no query", Request{Kind: KindBool}},
		{"both query forms", Request{Kind: KindBool, Query: "x", Queries: []*Query{q}}},
		{"k without topk", Request{Kind: KindBool, Queries: []*Query{q}, K: 3}},
		{"bound without topk", Request{Kind: KindCount, Queries: []*Query{q}, BoundEdges: 1}},
		{"topk without k", Request{Kind: KindTopK, Queries: []*Query{q}}},
		{"topk negative bound", Request{Kind: KindTopK, Queries: []*Query{q}, K: 2, BoundEdges: -1}},
		{"aggregate without target", Request{Kind: KindAggregate, Queries: []*Query{q}}},
		{"aggregate union", Request{Kind: KindAggregate, AggRel: "V", AggAttr: "age",
			Queries: MustParseUnion(`P(_, _; a; b), C(a, _, F, _, _, _) | P(_, _; a; b), C(a, D, _, _, _, _)`).Disjuncts}},
		{"agg fields without aggregate", Request{Kind: KindBool, Queries: []*Query{q}, AggRel: "V", AggAttr: "age"}},
		{"consensus without target", Request{Kind: KindConsensus, Queries: []*Query{q}}},
		{"consensus unknown target", Request{Kind: KindConsensus, Queries: []*Query{q}, ConsensusTarget: consensus.Target(9)}},
		{"target without consensus", Request{Kind: KindBool, Queries: []*Query{q}, ConsensusTarget: consensus.TargetMedian}},
		{"consensus topk without k", Request{Kind: KindConsensus, Queries: []*Query{q}, ConsensusTarget: consensus.TargetTopK}},
		{"consensus k without topk", Request{Kind: KindConsensus, Queries: []*Query{q}, ConsensusTarget: consensus.TargetMedian, K: 3}},
		{"consensus bound", Request{Kind: KindConsensus, Queries: []*Query{q}, ConsensusTarget: consensus.TargetTopK, K: 2, BoundEdges: 1}},
		{"negative deadline", Request{Kind: KindBool, Queries: []*Query{q}, Deadline: -time.Second}},
		{"parse error passthrough", Request{Kind: KindBool, Query: "not a query("}},
		{"invalid single query", Request{Kind: KindBool, Queries: []*Query{{}}}},
	}
	var buf bytes.Buffer
	for _, tc := range cases {
		_, err := tc.req.Compile()
		if err == nil {
			t.Errorf("%s: want error", tc.name)
			continue
		}
		fmt.Fprintf(&buf, "%-28s %s\n", tc.name+":", err)
	}
	path := filepath.Join("testdata", "compile_errors.golden")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run TestCompileErrorGolden -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("error text differs from %s:\n-- got --\n%s\n-- want --\n%s", path, buf.Bytes(), want)
	}
}

func TestCompileValidRequests(t *testing.T) {
	valid := []Request{
		{Kind: KindBool, Query: `P(_, _; a; b), C(a, _, F, _, _, _)`},
		{Kind: KindCount, Query: `P(_, _; a; b), C(a, _, F, _, _, _)`, Method: MethodBipartite, Seed: 7},
		{Kind: KindTopK, Query: `P(_, _; a; b), C(a, _, F, _, _, _)`, K: 2},
		{Kind: KindTopK, Query: `P(_, _; a; b), C(a, _, F, _, _, _)`, K: 1, BoundEdges: 2, Deadline: time.Second},
		{Kind: KindAggregate, Query: `P(_, _; a; b), C(a, _, F, _, _, _)`, AggRel: "V", AggAttr: "age"},
		{Kind: KindCountDist, Query: `P(_, _; a; b), C(a, _, F, _, _, _) | P(_, _; a; b), C(a, D, _, _, _, _)`},
		{Kind: KindConsensus, Query: `P(_, _; a; b), C(a, _, F, _, _, _)`, ConsensusTarget: consensus.TargetMAP},
		{Kind: KindConsensus, Query: `P(_, _; a; b), C(a, _, F, _, _, _)`, ConsensusTarget: consensus.TargetMedian, Seed: 5},
		{Kind: KindConsensus, Query: `P(_, _; a; b), C(a, _, F, _, _, _)`, ConsensusTarget: consensus.TargetTopK, K: 2},
	}
	for i, req := range valid {
		cr, err := req.Compile()
		if err != nil {
			t.Errorf("request %d: %v", i, err)
			continue
		}
		if cr.Kind != req.Kind || cr.Union == nil || len(cr.Union.Disjuncts) == 0 {
			t.Errorf("request %d: bad compiled form %+v", i, cr)
		}
		if cr.Key() == "" {
			t.Errorf("request %d: empty key", i)
		}
	}
}

// TestCompiledRequestKey: the key must separate requests that differ in any
// load-bearing field and agree for equal requests.
func TestCompiledRequestKey(t *testing.T) {
	base := Request{Kind: KindTopK, Query: `P(_, _; a; b), C(a, _, F, _, _, _)`, K: 2}
	same := base
	variants := []Request{
		{Kind: KindBool, Query: base.Query},
		{Kind: KindTopK, Query: base.Query, K: 3},
		{Kind: KindTopK, Query: base.Query, K: 2, BoundEdges: 1},
		{Kind: KindTopK, Query: base.Query, K: 2, Model: "other"},
		{Kind: KindTopK, Query: base.Query, K: 2, Method: MethodGeneral},
		{Kind: KindTopK, Query: base.Query, K: 2, Seed: 9},
		{Kind: KindTopK, Query: `P(_, _; a; b), C(a, D, _, _, _, _)`, K: 2},
		{Kind: KindConsensus, Query: base.Query, ConsensusTarget: consensus.TargetTopK, K: 2},
	}
	baseKey := base.MustCompile().Key()
	if got := same.MustCompile().Key(); got != baseKey {
		t.Errorf("equal requests disagree: %q vs %q", got, baseKey)
	}
	for i, v := range variants {
		if got := v.MustCompile().Key(); got == baseKey {
			t.Errorf("variant %d collides with base key %q", i, baseKey)
		}
	}
	med := Request{Kind: KindConsensus, Query: base.Query, ConsensusTarget: consensus.TargetMedian}
	mp := Request{Kind: KindConsensus, Query: base.Query, ConsensusTarget: consensus.TargetMAP}
	if med.MustCompile().Key() == mp.MustCompile().Key() {
		t.Error("consensus requests differing only in target share a key")
	}
}

// TestResponseSessionsStreams: the iterator yields the rows in order, stops
// when the consumer stops, and surfaces a cancelled context as the final
// error instead of yielding further rows.
func TestResponseSessionsStreams(t *testing.T) {
	db := figure1DB(t)
	eng := &Engine{DB: db}
	resp, err := eng.Do(context.Background(), &Request{
		Kind:  KindTopK,
		Query: `P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`,
		K:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Top) == 0 {
		t.Fatal("no topk rows")
	}

	var rows []SessionProb
	for sp, err := range resp.Sessions(context.Background()) {
		if err != nil {
			t.Fatalf("unexpected stream error: %v", err)
		}
		rows = append(rows, sp)
	}
	if len(rows) != len(resp.Top) {
		t.Fatalf("streamed %d rows, want %d", len(rows), len(resp.Top))
	}

	// Cancel mid-stream: the iterator must stop emitting rows and yield the
	// cancellation as its final error.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var got int
	var streamErr error
	for _, err := range resp.Sessions(ctx) {
		if err != nil {
			streamErr = err
			break
		}
		got++
		cancel()
	}
	if got != 1 {
		t.Fatalf("cancelled stream emitted %d rows, want 1", got)
	}
	if !errors.Is(streamErr, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", streamErr)
	}
}

// TestEngineDoDeadline: Request.Deadline arms a real deadline — an
// un-meetable one aborts exact evaluation with DeadlineExceeded.
func TestEngineDoDeadline(t *testing.T) {
	db := figure1DB(t)
	eng := &Engine{DB: db}
	req := &Request{
		Kind:     KindBool,
		Query:    `P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`,
		Deadline: time.Nanosecond,
	}
	time.Sleep(time.Millisecond)
	if _, err := eng.Do(context.Background(), req); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

// TestEngineDoSeedAndMethodOverride: per-request Seed/Method must not
// mutate the engine, and a seeded sampling request must be reproducible.
func TestEngineDoSeedAndMethodOverride(t *testing.T) {
	db := figure1DB(t)
	eng := &Engine{DB: db, Method: MethodAuto, RejectionN: 256}
	req := &Request{
		Kind:   KindBool,
		Query:  `P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`,
		Method: MethodRejection,
		Seed:   42,
	}
	a, err := eng.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Method != MethodAuto {
		t.Fatalf("engine method mutated to %v", eng.Method)
	}
	b, err := eng.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if a.Prob != b.Prob {
		t.Fatalf("seeded request not reproducible: %v vs %v", a.Prob, b.Prob)
	}
	exact, err := eng.Do(context.Background(), &Request{Kind: KindBool, Query: req.Query})
	if err != nil {
		t.Fatal(err)
	}
	if a.Prob == exact.Prob {
		t.Logf("rejection estimate happens to equal the exact answer (%v); harmless", a.Prob)
	}
}
