package ppd

import (
	"context"
	"fmt"
	"math"
	"strconv"
)

// AggregateResult reports an aggregation query over the sessions satisfying
// a Boolean CQ (the paper's future-work extension of Section 7, e.g. "the
// average age of voters who prefer a Republican to a Democrat").
//
// Under possible-world semantics the set of satisfying sessions is random.
// Sum and Count are exact expectations (by linearity); Avg is the ratio
// Sum/Count, the standard first-order estimate of the expected average.
type AggregateResult struct {
	// Sum is E[sum of the attribute over satisfying sessions].
	Sum float64
	// Count is E[number of satisfying sessions] (the Count-Session answer).
	Count float64
	// Avg is Sum / Count (NaN when Count is 0).
	Avg float64
	// Sessions is the number of sessions with a defined attribute value.
	Sessions int
	// Rows lists the per-session (probability, attribute value) terms the
	// aggregates fold over, in session order. A distributed coordinator
	// refolds concatenated partition rows through FoldAggregateRows to
	// reproduce the single-process Sum/Count/Avg bit-for-bit — summing
	// per-partition aggregates instead would reorder the float additions.
	Rows []AggRow
}

// AggRow is one session's contribution to an aggregation: the probability
// the session satisfies the query and the session's attribute value.
type AggRow struct {
	// Prob is the session's satisfaction probability.
	Prob float64
	// Value is the session's numeric attribute value.
	Value float64
}

// FoldAggregateRows folds per-session aggregation rows (in session order)
// into an AggregateResult using the exact accumulation order of the
// single-process evaluator, so the same rows always produce bit-identical
// Sum, Count and Avg regardless of how they were partitioned for transport.
func FoldAggregateRows(rows []AggRow) *AggregateResult {
	res := &AggregateResult{Rows: rows}
	for _, r := range rows {
		res.Sessions++
		res.Sum += r.Prob * r.Value
		res.Count += r.Prob
	}
	if res.Count > 0 {
		res.Avg = res.Sum / res.Count
	} else {
		res.Avg = math.NaN()
	}
	return res
}

// aggregateQuery is the aggregation core behind KindAggregate (and the
// Aggregate compatibility wrappers): sum/avg of a numeric attribute of rel
// over the sessions satisfying q; see Engine.Aggregate for the lookup
// semantics.
func (e *Engine) aggregateQuery(ctx context.Context, q *Query, rel, attr string) (*AggregateResult, error) {
	r, ok := e.DB.Relations[rel]
	if !ok {
		return nil, fmt.Errorf("ppd: unknown relation %q", rel)
	}
	col := r.AttrIndex(attr)
	if col < 0 {
		return nil, fmt.Errorf("ppd: relation %q has no attribute %q", rel, attr)
	}
	byKey := make(map[string]float64)
	for _, row := range r.Tuples {
		if v, err := strconv.ParseFloat(row[col], 64); err == nil {
			byKey[row[0]] = v
		}
	}
	g, err := NewGrounder(e.DB, q)
	if err != nil {
		return nil, err
	}
	var rows []AggRow
	cache := make(map[string]float64)
	for _, s := range g.Pref().Sessions.All() {
		if len(s.Key) == 0 {
			continue
		}
		v, ok := byKey[s.Key[0]]
		if !ok {
			continue
		}
		gq, err := g.GroundSession(s)
		if err != nil {
			return nil, err
		}
		if len(gq.Union) == 0 {
			continue
		}
		p, err := e.sessionProb(ctx, s, gq.Union, cache, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AggRow{Prob: p, Value: v})
	}
	return FoldAggregateRows(rows), nil
}
