package ppd

import (
	"context"
	"fmt"
	"math"
	"strconv"
)

// AggregateResult reports an aggregation query over the sessions satisfying
// a Boolean CQ (the paper's future-work extension of Section 7, e.g. "the
// average age of voters who prefer a Republican to a Democrat").
//
// Under possible-world semantics the set of satisfying sessions is random.
// Sum and Count are exact expectations (by linearity); Avg is the ratio
// Sum/Count, the standard first-order estimate of the expected average.
type AggregateResult struct {
	// Sum is E[sum of the attribute over satisfying sessions].
	Sum float64
	// Count is E[number of satisfying sessions] (the Count-Session answer).
	Count float64
	// Avg is Sum / Count (NaN when Count is 0).
	Avg float64
	// Sessions is the number of sessions with a defined attribute value.
	Sessions int
}

// aggregateQuery is the aggregation core behind KindAggregate (and the
// Aggregate compatibility wrappers): sum/avg of a numeric attribute of rel
// over the sessions satisfying q; see Engine.Aggregate for the lookup
// semantics.
func (e *Engine) aggregateQuery(ctx context.Context, q *Query, rel, attr string) (*AggregateResult, error) {
	r, ok := e.DB.Relations[rel]
	if !ok {
		return nil, fmt.Errorf("ppd: unknown relation %q", rel)
	}
	col := r.AttrIndex(attr)
	if col < 0 {
		return nil, fmt.Errorf("ppd: relation %q has no attribute %q", rel, attr)
	}
	byKey := make(map[string]float64)
	for _, row := range r.Tuples {
		if v, err := strconv.ParseFloat(row[col], 64); err == nil {
			byKey[row[0]] = v
		}
	}
	g, err := NewGrounder(e.DB, q)
	if err != nil {
		return nil, err
	}
	res := &AggregateResult{}
	cache := make(map[string]float64)
	for _, s := range g.Pref().Sessions.All() {
		if len(s.Key) == 0 {
			continue
		}
		v, ok := byKey[s.Key[0]]
		if !ok {
			continue
		}
		gq, err := g.GroundSession(s)
		if err != nil {
			return nil, err
		}
		if len(gq.Union) == 0 {
			continue
		}
		p, err := e.sessionProb(ctx, s, gq.Union, cache, nil)
		if err != nil {
			return nil, err
		}
		res.Sessions++
		res.Sum += p * v
		res.Count += p
	}
	if res.Count > 0 {
		res.Avg = res.Sum / res.Count
	} else {
		res.Avg = math.NaN()
	}
	return res, nil
}
