package ppd

import (
	"testing"

	"probpref/internal/label"
)

func TestGroundQ0Itemwise(t *testing.T) {
	db := figure1DB(t)
	q := MustParse(`P(Ann, "5/5"; Trump; Clinton), P(Ann, "5/5"; Trump; Rubio)`)
	g, err := NewGrounder(db, q)
	if err != nil {
		t.Fatal(err)
	}
	ann := db.Prefs["P"].Sessions.At(0)
	gq, err := g.GroundSession(ann)
	if err != nil {
		t.Fatal(err)
	}
	if len(gq.Union) != 1 || !gq.Itemwise {
		t.Fatalf("union=%d itemwise=%v", len(gq.Union), gq.Itemwise)
	}
	pat := gq.Union[0]
	if pat.NumNodes() != 3 || len(pat.Edges()) != 2 {
		t.Fatalf("pattern = %v", pat)
	}
	// Node 0 must carry the Trump identity label.
	l, ok := db.Vocab().Lookup("candidate=Trump")
	if !ok || !pat.Node(0).Labels.Contains(l) {
		t.Fatalf("node 0 labels = %v", pat.Node(0).Labels)
	}
	// Other sessions are filtered out by the session constants.
	bob := db.Prefs["P"].Sessions.At(1)
	gq, err = g.GroundSession(bob)
	if err != nil {
		t.Fatal(err)
	}
	if len(gq.Union) != 0 {
		t.Fatal("Bob's session should not match session constants (Ann)")
	}
}

func TestGroundQ1Labels(t *testing.T) {
	db := figure1DB(t)
	q := MustParse(`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	g, err := NewGrounder(db, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range db.Prefs["P"].Sessions.All() {
		gq, err := g.GroundSession(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(gq.Union) != 1 || !gq.Itemwise {
			t.Fatalf("union=%d itemwise=%v", len(gq.Union), gq.Itemwise)
		}
		pat := gq.Union[0]
		f, _ := db.Vocab().Lookup("sex=F")
		m, _ := db.Vocab().Lookup("sex=M")
		if !pat.Node(0).Labels.Equal(label.NewSet(f)) {
			t.Fatalf("node 0 labels = %v", pat.Node(0).Labels)
		}
		if !pat.Node(1).Labels.Equal(label.NewSet(m)) {
			t.Fatalf("node 1 labels = %v", pat.Node(1).Labels)
		}
	}
}

// Q2 of the paper: the shared education variable e is non-itemwise; it is
// grounded over the active domain {BS, JD}, yielding a union of two
// two-label patterns.
func TestGroundQ2NonItemwise(t *testing.T) {
	db := figure1DB(t)
	q := MustParse(`P(_, _; c1; c2), C(c1, D, _, _, e, _), C(c2, R, _, _, e, _)`)
	g, err := NewGrounder(db, q)
	if err != nil {
		t.Fatal(err)
	}
	gq, err := g.GroundSession(db.Prefs["P"].Sessions.At(0))
	if err != nil {
		t.Fatal(err)
	}
	if gq.Itemwise {
		t.Fatal("Q2 must not be itemwise")
	}
	if len(gq.Union) != 2 || gq.Groundings != 2 {
		t.Fatalf("union=%d groundings=%d, want 2 and 2", len(gq.Union), gq.Groundings)
	}
	// Each member is a two-label pattern {D,e} > {R,e}.
	for _, pat := range gq.Union {
		if !pat.IsTwoLabel() {
			t.Fatalf("pattern %v is not two-label", pat)
		}
		d, _ := db.Vocab().Lookup("party=D")
		if !pat.Node(0).Labels.Contains(d) {
			t.Fatalf("left node misses party=D: %v", pat.Node(0).Labels)
		}
		if len(pat.Node(0).Labels) != 2 {
			t.Fatalf("left node should have party and edu labels: %v", pat.Node(0).Labels)
		}
	}
}

// Comparisons on grounded variables restrict the domain.
func TestGroundComparisonRestrictsDomain(t *testing.T) {
	db := figure1DB(t)
	q := MustParse(`P(_, _; c1; c2), C(c1, D, _, _, e, _), C(c2, R, _, _, e, _), e = BS`)
	g, err := NewGrounder(db, q)
	if err != nil {
		t.Fatal(err)
	}
	gq, err := g.GroundSession(db.Prefs["P"].Sessions.At(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(gq.Union) != 1 {
		t.Fatalf("union=%d, want 1 (only e=BS)", len(gq.Union))
	}
}

// Session comparisons filter sessions.
func TestGroundSessionComparison(t *testing.T) {
	db := figure1DB(t)
	q := MustParse(`P(v, date; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _), date = "6/5"`)
	g, err := NewGrounder(db, q)
	if err != nil {
		t.Fatal(err)
	}
	var live int
	for _, s := range db.Prefs["P"].Sessions.All() {
		gq, err := g.GroundSession(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(gq.Union) > 0 {
			live++
			if s.Key[1] != "6/5" {
				t.Fatalf("session %v passed the date filter", s.Key)
			}
		}
	}
	if live != 1 {
		t.Fatalf("live sessions = %d, want 1", live)
	}
}

// Context atoms join per session: the voter's own attributes parameterize
// the item constraints (the Figure 15 query shape).
func TestGroundContextJoin(t *testing.T) {
	db := figure1DB(t)
	// "Voter v prefers a candidate of v's sex to a candidate of different
	// sex with v's education."
	q := MustParse(`P(v, _; c1; c2), V(v, s, _, _), C(c1, _, s, _, _, _), C(c2, D, _, _, _, _)`)
	g, err := NewGrounder(db, q)
	if err != nil {
		t.Fatal(err)
	}
	ann := db.Prefs["P"].Sessions.At(0) // Ann is female
	gq, err := g.GroundSession(ann)
	if err != nil {
		t.Fatal(err)
	}
	if len(gq.Union) != 1 {
		t.Fatalf("union=%d", len(gq.Union))
	}
	f, _ := db.Vocab().Lookup("sex=F")
	if !gq.Union[0].Node(0).Labels.Contains(f) {
		t.Fatalf("Ann's pattern should require sex=F, got %v", gq.Union[0].Node(0).Labels)
	}
	bob := db.Prefs["P"].Sessions.At(1) // Bob is male
	gq, err = g.GroundSession(bob)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := db.Vocab().Lookup("sex=M")
	if !gq.Union[0].Node(0).Labels.Contains(m) {
		t.Fatalf("Bob's pattern should require sex=M, got %v", gq.Union[0].Node(0).Labels)
	}
}

// Existence-only item atoms become isolated pattern nodes.
func TestGroundExistenceAtom(t *testing.T) {
	db := figure1DB(t)
	q := MustParse(`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _), C(x, _, _, _, MS, _)`)
	g, err := NewGrounder(db, q)
	if err != nil {
		t.Fatal(err)
	}
	gq, err := g.GroundSession(db.Prefs["P"].Sessions.At(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(gq.Union) != 1 {
		t.Fatalf("union=%d", len(gq.Union))
	}
	if gq.Union[0].NumNodes() != 3 {
		t.Fatalf("nodes=%d, want 3 (c1, c2 and the existence node)", gq.Union[0].NumNodes())
	}
}

func TestGrounderErrors(t *testing.T) {
	db := figure1DB(t)
	cases := []string{
		`X(_, _; c1; c2)`,           // unknown p-relation
		`P(_; c1; c2)`,              // wrong session arity
		`P(_, _; c1; c2), Z(c1)`,    // unknown relation
		`P(_, _; c1; c2), C(c1, _)`, // wrong atom arity
		`P(_, _; c1; c2), C(c1, p, _, _, _, _), c1 = Trump`, // comparison on item var
		`P(v, _; v; c2)`, // session var as item
	}
	for _, src := range cases {
		q, err := Parse(src)
		if err != nil {
			continue // parse-level rejection also acceptable
		}
		if _, err := NewGrounder(db, q); err == nil {
			t.Errorf("NewGrounder(%q) succeeded, want error", src)
		}
	}
}

// A singleton unbound variable acts as a wildcard (projected out), not a
// grounding variable.
func TestGroundSingletonVarIsWildcard(t *testing.T) {
	db := figure1DB(t)
	q := MustParse(`P(_, _; c1; c2), C(c1, p1, F, _, _, _), C(c2, _, M, _, _, _)`)
	g, err := NewGrounder(db, q)
	if err != nil {
		t.Fatal(err)
	}
	gq, err := g.GroundSession(db.Prefs["P"].Sessions.At(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(gq.Union) != 1 || gq.Groundings != 1 {
		t.Fatalf("union=%d groundings=%d, want 1 and 1", len(gq.Union), gq.Groundings)
	}
}
