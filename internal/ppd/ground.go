package ppd

import (
	"fmt"
	"sort"
	"strconv"

	"probpref/internal/label"
	"probpref/internal/pattern"
)

// Grounder analyzes a query against a database and produces, per session,
// the union of label patterns equivalent to the query (Algorithm 2,
// DecomposeQuery): variables that prevent label-pattern reduction (V+) are
// instantiated over their active domains, rewriting the query into a union
// of itemwise CQs, each of which reduces to one label pattern.
type Grounder struct {
	db   *DB
	q    *Query
	pref *PrefRelation

	sessionVars  map[string]int // var name -> session attr index
	sessionComps []Compare
	itemTerms    []Term         // item nodes in pattern order
	itemIdx      map[string]int // item var name -> node index
	edges        [][2]int       // pattern edges from preference atoms
	itemAtoms    []RelAtom      // atoms over the item relation
	contextAtoms []RelAtom      // atoms over other relations
	varComps     map[string][]Compare
	keyIndexes   map[string]map[string][]int // relation -> first-attr value -> tuple rows
}

// NewGrounder validates the query against the database and prepares the
// static analysis.
func NewGrounder(db *DB, q *Query) (*Grounder, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	pref, ok := db.Prefs[q.Prefs[0].Rel]
	if !ok {
		return nil, fmt.Errorf("ppd: unknown p-relation %q", q.Prefs[0].Rel)
	}
	if len(q.Prefs[0].Session) != len(pref.SessionAttrs) {
		return nil, fmt.Errorf("ppd: p-relation %q has %d session attributes, query uses %d",
			pref.Name, len(pref.SessionAttrs), len(q.Prefs[0].Session))
	}
	g := &Grounder{
		db:          db,
		q:           q,
		pref:        pref,
		sessionVars: make(map[string]int),
		itemIdx:     make(map[string]int),
		varComps:    make(map[string][]Compare),
		keyIndexes:  make(map[string]map[string][]int),
	}
	for i, t := range q.Prefs[0].Session {
		if t.Kind == Var {
			if _, dup := g.sessionVars[t.Value]; !dup {
				g.sessionVars[t.Value] = i
			}
		}
	}
	// Item terms from preference atoms. Variables and constants are shared
	// across occurrences; each wildcard is a distinct anonymous node.
	constIdx := make(map[string]int)
	termNode := func(t Term) (int, error) {
		switch t.Kind {
		case Var:
			if _, isSession := g.sessionVars[t.Value]; isSession {
				return 0, fmt.Errorf("ppd: session variable %q used as item", t.Value)
			}
			if idx, ok := g.itemIdx[t.Value]; ok {
				return idx, nil
			}
			g.itemIdx[t.Value] = len(g.itemTerms)
		case Const:
			if idx, ok := constIdx[t.Value]; ok {
				return idx, nil
			}
			constIdx[t.Value] = len(g.itemTerms)
		}
		g.itemTerms = append(g.itemTerms, t)
		return len(g.itemTerms) - 1, nil
	}
	for _, a := range q.Prefs {
		l, err := termNode(a.Left)
		if err != nil {
			return nil, err
		}
		r, err := termNode(a.Right)
		if err != nil {
			return nil, err
		}
		if l == r {
			return nil, fmt.Errorf("ppd: preference atom %s compares an item with itself", a)
		}
		g.edges = append(g.edges, [2]int{l, r})
	}
	// Partition ordinary atoms.
	for _, a := range q.Rels {
		rel, ok := db.Relations[a.Rel]
		if !ok {
			return nil, fmt.Errorf("ppd: unknown relation %q", a.Rel)
		}
		if len(a.Args) != len(rel.Attrs) {
			return nil, fmt.Errorf("ppd: atom %s has %d arguments, relation has %d", a, len(a.Args), len(rel.Attrs))
		}
		if a.Rel == db.ItemRelation.Name {
			// Item atom: the first argument identifies the item node. A
			// wildcard becomes a fresh existence-only variable so the
			// atom's labels attach to an isolated node.
			if a.Args[0].Kind == Wild {
				fresh := fmt.Sprintf("_anon%d", len(g.itemTerms))
				a.Args = append([]Term(nil), a.Args...)
				a.Args[0] = V(fresh)
			}
			first := a.Args[0]
			if first.Kind == Var {
				if _, isSession := g.sessionVars[first.Value]; isSession {
					return nil, fmt.Errorf("ppd: session variable %q used as item", first.Value)
				}
				if _, ok := g.itemIdx[first.Value]; !ok {
					// Existence-only item variable: isolated pattern node.
					g.itemIdx[first.Value] = len(g.itemTerms)
					g.itemTerms = append(g.itemTerms, first)
				}
			}
			g.itemAtoms = append(g.itemAtoms, a)
			continue
		}
		g.contextAtoms = append(g.contextAtoms, a)
	}
	// Comparisons by variable; session comparisons kept separately.
	for _, c := range q.Comps {
		if _, isSession := g.sessionVars[c.Left.Value]; isSession {
			g.sessionComps = append(g.sessionComps, c)
			continue
		}
		if _, isItem := g.itemIdx[c.Left.Value]; isItem {
			return nil, fmt.Errorf("ppd: comparison on item variable %q unsupported", c.Left.Value)
		}
		g.varComps[c.Left.Value] = append(g.varComps[c.Left.Value], c)
	}
	return g, nil
}

// Pref returns the queried p-relation.
func (g *Grounder) Pref() *PrefRelation { return g.pref }

// GroundedQuery is the per-session reduction of the query.
type GroundedQuery struct {
	// Union is the union of label patterns equivalent to the query on this
	// session. Empty when the session is filtered out or no grounding
	// exists.
	Union pattern.Union
	// Groundings counts the (environment, V+ instantiation) pairs.
	Groundings int
	// Itemwise reports whether the query reduced to a single pattern with
	// no grounded variables (the tractable class of Kenig et al.).
	Itemwise bool
}

// GroundSession reduces the query on one session.
func (g *Grounder) GroundSession(s *Session) (*GroundedQuery, error) {
	env := make(map[string]string)
	// Bind session terms.
	for i, t := range g.q.Prefs[0].Session {
		switch t.Kind {
		case Const:
			if s.Key[i] != t.Value {
				return &GroundedQuery{}, nil
			}
		case Var:
			if prev, ok := env[t.Value]; ok {
				if prev != s.Key[i] {
					return &GroundedQuery{}, nil
				}
			} else {
				env[t.Value] = s.Key[i]
			}
		}
	}
	for _, c := range g.sessionComps {
		if !evalCompare(env[c.Left.Value], c.Op, c.Right.Value) {
			return &GroundedQuery{}, nil
		}
	}
	// Join context atoms.
	envs := []map[string]string{env}
	for _, a := range g.contextAtoms {
		rel := g.db.Relations[a.Rel]
		var next []map[string]string
		for _, e := range envs {
			for _, row := range g.matchRows(rel, a, e) {
				ne := cloneEnv(e)
				ok := true
				for ai, t := range a.Args {
					if t.Kind != Var {
						continue
					}
					if prev, bound := ne[t.Value]; bound {
						if prev != row[ai] {
							ok = false
							break
						}
					} else {
						ne[t.Value] = row[ai]
					}
				}
				if ok && g.compsHold(ne) {
					next = append(next, ne)
				}
			}
		}
		envs = next
		if len(envs) == 0 {
			return &GroundedQuery{}, nil
		}
	}

	res := &GroundedQuery{}
	seen := make(map[string]bool)
	totalGroundVars := 0
	for _, e := range envs {
		vplus, doms, err := g.domains(e)
		if err != nil {
			return nil, err
		}
		totalGroundVars += len(vplus)
		g.cartesian(e, vplus, doms, 0, func(full map[string]string) {
			res.Groundings++
			pat := g.buildPattern(full)
			k := pat.Key()
			if !seen[k] {
				seen[k] = true
				res.Union = append(res.Union, pat)
			}
		})
	}
	res.Itemwise = len(envs) == 1 && totalGroundVars == 0 && len(res.Union) <= 1
	return res, nil
}

// matchRows returns the tuples of rel compatible with atom a under env,
// using a first-attribute hash index when the first argument is bound.
func (g *Grounder) matchRows(rel *Relation, a RelAtom, env map[string]string) [][]string {
	bound := func(t Term) (string, bool) {
		switch t.Kind {
		case Const:
			return t.Value, true
		case Var:
			v, ok := env[t.Value]
			return v, ok
		default:
			return "", false
		}
	}
	candidates := rel.Tuples
	if v, ok := bound(a.Args[0]); ok {
		idx := g.keyIndexes[rel.Name]
		if idx == nil {
			idx = make(map[string][]int, len(rel.Tuples))
			for ri, row := range rel.Tuples {
				idx[row[0]] = append(idx[row[0]], ri)
			}
			g.keyIndexes[rel.Name] = idx
		}
		candidates = nil
		for _, ri := range idx[v] {
			candidates = append(candidates, rel.Tuples[ri])
		}
	}
	var out [][]string
	for _, row := range candidates {
		ok := true
		for ai, t := range a.Args {
			if v, isBound := bound(t); isBound && row[ai] != v {
				ok = false
				break
			}
			// Repeated unbound variables within the atom must agree.
			if t.Kind == Var {
				if _, isBound := env[t.Value]; !isBound {
					for aj := ai + 1; aj < len(a.Args); aj++ {
						if a.Args[aj].Kind == Var && a.Args[aj].Value == t.Value && row[aj] != row[ai] {
							ok = false
							break
						}
					}
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			out = append(out, row)
		}
	}
	return out
}

// compsHold checks every comparison whose variable is bound in env.
func (g *Grounder) compsHold(env map[string]string) bool {
	for v, comps := range g.varComps {
		val, bound := env[v]
		if !bound {
			continue
		}
		for _, c := range comps {
			if !evalCompare(val, c.Op, c.Right.Value) {
				return false
			}
		}
	}
	return true
}

// domains computes V+ — the unbound attribute variables of item atoms that
// appear more than once or in comparisons — and their active domains.
func (g *Grounder) domains(env map[string]string) ([]string, map[string][]string, error) {
	occurrences := make(map[string]int)
	positions := make(map[string][][2]int) // var -> (itemAtom idx, arg idx)
	for i, a := range g.itemAtoms {
		for ai, t := range a.Args {
			if ai == 0 || t.Kind != Var {
				continue
			}
			if _, bound := env[t.Value]; bound {
				continue
			}
			if _, isItem := g.itemIdx[t.Value]; isItem {
				continue
			}
			occurrences[t.Value]++
			positions[t.Value] = append(positions[t.Value], [2]int{i, ai})
		}
	}
	var vplus []string
	doms := make(map[string][]string)
	for v, n := range occurrences {
		if n == 1 && len(g.varComps[v]) == 0 {
			continue // projected out: acts as a wildcard
		}
		vplus = append(vplus, v)
		// Active domain: values of the attribute column at the first
		// occurrence, filtered by the variable's comparisons.
		pos := positions[v][0]
		col := pos[1]
		set := make(map[string]bool)
		for _, row := range g.db.ItemRelation.Tuples {
			set[row[col]] = true
		}
		var vals []string
		for val := range set {
			ok := true
			for _, c := range g.varComps[v] {
				if !evalCompare(val, c.Op, c.Right.Value) {
					ok = false
					break
				}
			}
			if ok {
				vals = append(vals, val)
			}
		}
		sort.Strings(vals)
		doms[v] = vals
	}
	sort.Strings(vplus)
	return vplus, doms, nil
}

// cartesian enumerates the Cartesian product of the V+ domains (the loop of
// Algorithm 2), invoking fn with env extended by each instantiation.
func (g *Grounder) cartesian(env map[string]string, vplus []string, doms map[string][]string, i int, fn func(map[string]string)) {
	if i == len(vplus) {
		fn(env)
		return
	}
	v := vplus[i]
	for _, val := range doms[v] {
		env[v] = val
		g.cartesian(env, vplus, doms, i+1, fn)
	}
	delete(env, v)
}

// buildPattern assembles the label pattern of one fully grounded itemwise
// query: one node per item term, labeled by the attribute constraints of its
// item atoms, with the preference atoms as edges.
func (g *Grounder) buildPattern(env map[string]string) *pattern.Pattern {
	nodes := make([]pattern.Node, len(g.itemTerms))
	var collect func(node int) []label.Label
	collect = func(node int) []label.Label {
		var ls []label.Label
		t := g.itemTerms[node]
		if t.Kind == Const {
			ls = append(ls, g.db.LabelFor(g.db.ItemRelation.Attrs[0], t.Value))
		}
		for _, a := range g.itemAtoms {
			first := a.Args[0]
			switch {
			case first.Kind == Var && t.Kind == Var && first.Value == t.Value:
			case first.Kind == Const && t.Kind == Const && first.Value == t.Value:
			default:
				continue
			}
			for ai := 1; ai < len(a.Args); ai++ {
				arg := a.Args[ai]
				var val string
				switch arg.Kind {
				case Const:
					val = arg.Value
				case Var:
					v, bound := env[arg.Value]
					if !bound {
						continue
					}
					val = v
				default:
					continue
				}
				ls = append(ls, g.db.LabelFor(g.db.ItemRelation.Attrs[ai], val))
			}
		}
		return ls
	}
	for i := range g.itemTerms {
		nodes[i].Labels = label.NewSet(collect(i)...)
	}
	return pattern.MustNew(nodes, g.edges)
}

func cloneEnv(e map[string]string) map[string]string {
	ne := make(map[string]string, len(e)+2)
	for k, v := range e {
		ne[k] = v
	}
	return ne
}

// evalCompare applies a comparison between two values, numerically when both
// parse as numbers, lexicographically otherwise.
func evalCompare(a, op, b string) bool {
	af, aerr := strconv.ParseFloat(a, 64)
	bf, berr := strconv.ParseFloat(b, 64)
	if aerr == nil && berr == nil {
		switch op {
		case "=":
			return af == bf
		case "!=":
			return af != bf
		case "<":
			return af < bf
		case "<=":
			return af <= bf
		case ">":
			return af > bf
		case ">=":
			return af >= bf
		}
		return false
	}
	switch op {
	case "=":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}
