package ppd

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"probpref/internal/rank"
	"probpref/internal/rim"
)

// gmDB builds the Figure 1 database with a Generalized Mallows session
// alongside the Mallows ones: sessions carrying any RIM-backed model are
// first-class in the PPD.
func gmDB(t *testing.T) *DB {
	t.Helper()
	db := figure1DB(t)
	gm := rim.MustGeneralizedMallows(rank.Ranking{1, 2, 3, 0}, []float64{1, 0.1, 0.9, 0.4})
	pref := db.Prefs["P"]
	pref.Sessions = ConcatSessions(pref.Sessions, SessionSlice{{Key: []string{"Eve", "6/5"}, Model: gm}})
	return db
}

func TestGeneralizedMallowsSessionExactEval(t *testing.T) {
	db := gmDB(t)
	eng := &Engine{DB: db, Method: MethodAuto}
	q := MustParse(`P(_, _; c1; c2), C(c1, _, "F", _, _, _), C(c2, _, "M", _, _, _)`)
	res, err := eng.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerSession) != 4 {
		t.Fatalf("sessions = %d, want 4", len(res.PerSession))
	}
	// The GM session's probability must match brute-force enumeration of
	// its grounded union.
	g, err := NewGrounder(db, q)
	if err != nil {
		t.Fatal(err)
	}
	eve := db.Prefs["P"].Sessions.At(3)
	gq, err := g.GroundSession(eve)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	rank.ForEachPermutation(db.M(), func(tau rank.Ranking) bool {
		if gq.Union.Matches(tau, db.Labeling()) {
			want += eve.Model.Prob(tau)
		}
		return true
	})
	got := res.PerSession[3].Prob
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("GM session prob %v, brute %v", got, want)
	}
}

func TestGeneralizedMallowsSessionAllExactMethods(t *testing.T) {
	db := gmDB(t)
	q := MustParse(`P(_, _; c1; c2), C(c1, "D", _, _, e, _), C(c2, "R", _, _, e, _)`)
	var ref *EvalResult
	for _, m := range []Method{MethodAuto, MethodTwoLabel, MethodBipartite, MethodGeneral, MethodRelOrder} {
		eng := &Engine{DB: db, Method: m}
		res, err := eng.Eval(q)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if math.Abs(res.Prob-ref.Prob) > 1e-9 {
			t.Fatalf("%v: prob %v, reference %v", m, res.Prob, ref.Prob)
		}
	}
}

func TestGeneralizedMallowsSessionSamplerFallback(t *testing.T) {
	db := gmDB(t)
	exact, err := (&Engine{DB: db, Method: MethodAuto}).Eval(
		MustParse(`P(_, _; c1; c2), C(c1, _, "F", _, _, _), C(c2, _, "M", _, _, _)`))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodMISAdaptive, MethodMISLite, MethodRejection} {
		eng := &Engine{
			DB: db, Method: m,
			Rng:   rand.New(rand.NewSource(61)),
			LiteN: 2000, RejectionN: 30000,
		}
		res, err := eng.Eval(
			MustParse(`P(_, _; c1; c2), C(c1, _, "F", _, _, _), C(c2, _, "M", _, _, _)`))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		// The GM session must be estimated (not erroring, not zero) and be
		// close to the exact value.
		got := res.PerSession[3].Prob
		want := exact.PerSession[3].Prob
		if math.Abs(got-want) > 0.1*want+0.01 {
			t.Fatalf("%v: GM session est %v, exact %v", m, got, want)
		}
	}
}

func TestGeneralizedMallowsSessionJSONRoundTrip(t *testing.T) {
	db := gmDB(t)
	pref := db.Prefs["P"]
	var buf bytes.Buffer
	if err := pref.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPrefJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Sessions.Len() != 4 {
		t.Fatalf("sessions = %d, want 4", back.Sessions.Len())
	}
	for i := range back.Sessions.All() {
		if back.Sessions.At(i).Model.Rehash() != pref.Sessions.At(i).Model.Rehash() {
			t.Fatalf("session %d model mismatch after round trip", i)
		}
	}
	if _, ok := back.Sessions.At(3).Model.(*rim.GeneralizedMallows); !ok {
		t.Fatalf("session 3 deserialized as %T, want GeneralizedMallows", back.Sessions.At(3).Model)
	}
}

func TestUnsupportedSessionModelJSON(t *testing.T) {
	// Arbitrary RIM insertion matrices are valid session models but are not
	// serializable; WriteJSON must say so rather than corrupt the output.
	mdl := rim.MustNew(rank.Identity(3), [][]float64{{1}, {0.25, 0.75}, {0.2, 0.3, 0.5}})
	pref := &PrefRelation{
		Name:         "R",
		SessionAttrs: []string{"k"},
		Sessions:     SessionSlice{{Key: []string{"x"}, Model: mdl}},
	}
	var buf bytes.Buffer
	if err := pref.WriteJSON(&buf); err == nil {
		t.Fatal("want serialization error for raw RIM session")
	}
}

func TestGeneralizedMallowsSessionGrouping(t *testing.T) {
	// Two sessions sharing one GM instance must be solved once.
	db := figure1DB(t)
	gm := rim.MustGeneralizedMallows(rank.Ranking{1, 2, 3, 0}, []float64{1, 0.2, 0.2, 0.2})
	pref := db.Prefs["P"]
	pref.Sessions = ConcatSessions(pref.Sessions, SessionSlice{
		{Key: []string{"Eve", "6/5"}, Model: gm},
		{Key: []string{"Finn", "6/5"}, Model: gm},
	})
	eng := &Engine{DB: db, Method: MethodAuto}
	res, err := eng.Eval(MustParse(`P(_, _; c1; c2), C(c1, _, "F", _, _, _), C(c2, _, "M", _, _, _)`))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerSession) != 5 {
		t.Fatalf("sessions = %d, want 5", len(res.PerSession))
	}
	// 3 distinct Mallows groups (Ann/Dave differ in phi, Bob in center) + 1
	// shared GM group.
	if res.Solves != 4 {
		t.Fatalf("solves = %d, want 4", res.Solves)
	}
	if math.Abs(res.PerSession[3].Prob-res.PerSession[4].Prob) > 1e-15 {
		t.Fatal("shared-model sessions got different probabilities")
	}
}
