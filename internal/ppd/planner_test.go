package ppd

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"probpref/internal/solver"
)

// TestAdaptiveMatchesExactBitIdentical is the planner's core correctness
// contract: on groups it routes to an exact solver, MethodAdaptive must
// return the exact solver's answer bit-for-bit (same solver function, same
// options — no drift through the planner layer).
func TestAdaptiveMatchesExactBitIdentical(t *testing.T) {
	db := figure1DB(t)
	q := MustParse(`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	g, err := NewGrounder(db, q)
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{DB: db, Method: MethodAdaptive} // default budget: exact routes
	for _, s := range g.Pref().Sessions.All() {
		gq, err := g.GroundSession(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(gq.Union) == 0 {
			continue
		}
		got, rep, err := eng.SolveUnionCtx(context.Background(), s.Model, gq.Union)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Sampled {
			t.Fatalf("default budget routed session %v to sampling (cost %g)", s.Key, rep.Cost)
		}
		var want float64
		switch rep.Method {
		case MethodTwoLabel:
			want, err = solver.TwoLabel(s.Model.Model(), db.Labeling(), gq.Union, eng.SolverOpts)
		case MethodBipartite:
			want, err = solver.Bipartite(s.Model.Model(), db.Labeling(), gq.Union, eng.SolverOpts)
		case MethodRelOrder:
			want, err = solver.RelOrder(s.Model.Model(), db.Labeling(), gq.Union, eng.SolverOpts)
		default:
			t.Fatalf("unexpected routed method %v", rep.Method)
		}
		if err != nil {
			t.Fatal(err)
		}
		if got != want { // bit-identical, not approximately equal
			t.Fatalf("session %v: adaptive %v != %v (%v)", s.Key, got, want, rep.Method)
		}
	}
}

// TestAdaptiveZeroBudgetSamples: with an exhausted budget every group is
// sampled and carries a positive confidence half-width, and the evaluation
// still answers (degrade, don't die).
func TestAdaptiveZeroBudgetSamples(t *testing.T) {
	db := figure1DB(t)
	q := MustParse(`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	eng := &Engine{DB: db, Method: MethodAdaptive}

	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // deadline certainly expired
	res, err := eng.EvalCtx(ctx, q)
	if err != nil {
		t.Fatalf("adaptive eval under expired deadline: %v", err)
	}
	if res.Plan == nil {
		t.Fatal("no plan attached")
	}
	if res.Plan.ExactGroups != 0 || res.Plan.SampledGroups != res.Solves {
		t.Fatalf("expired budget should sample every group: %+v (solves %d)", res.Plan, res.Solves)
	}
	if res.Plan.MaxHalfWidth <= 0 || res.Plan.Samples == 0 {
		t.Fatalf("sampled plan missing half-width/samples: %+v", res.Plan)
	}
	if res.Plan.CountHalfWidth <= 0 {
		t.Fatalf("count half-width not propagated: %+v", res.Plan)
	}
	// The estimates must still be near the exact answer (figure1 groups are
	// high-probability events; the sample floor resolves them well).
	exact, err := (&Engine{DB: db, Method: MethodAuto}).Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Count-exact.Count) > 3*res.Plan.CountHalfWidth+0.05 {
		t.Fatalf("sampled count %v too far from exact %v (hw %v)", res.Count, exact.Count, res.Plan.CountHalfWidth)
	}
}

// TestAdaptiveExplicitBudgetRouting: AdaptiveBudget overrides the context
// budget; a budget below the predicted cost samples, one above goes exact.
func TestAdaptiveExplicitBudgetRouting(t *testing.T) {
	db := figure1DB(t)
	q := MustParse(`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)

	tiny := &Engine{DB: db, Method: MethodAdaptive, AdaptiveBudget: 1}
	res, err := tiny.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.SampledGroups == 0 {
		t.Fatalf("budget 1 should sample, plan %+v", res.Plan)
	}

	big := &Engine{DB: db, Method: MethodAdaptive, AdaptiveBudget: 1e12}
	res, err = big.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.SampledGroups != 0 || res.Plan.ExactGroups == 0 {
		t.Fatalf("budget 1e12 should go exact, plan %+v", res.Plan)
	}
	exact, err := (&Engine{DB: db, Method: MethodAuto}).Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Prob != exact.Prob {
		t.Fatalf("exact-routed adaptive prob %v != auto %v", res.Prob, exact.Prob)
	}
}

// TestAdaptiveCancelAborts: outright cancellation must abort an adaptive
// evaluation (only deadlines degrade).
func TestAdaptiveCancelAborts(t *testing.T) {
	db := figure1DB(t)
	q := MustParse(`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	eng := &Engine{DB: db, Method: MethodAdaptive}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.EvalCtx(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestEvalCtxCancelExactMethods: cancellation aborts the exact methods too,
// through the solver DP layers.
func TestEvalCtxCancelExactMethods(t *testing.T) {
	db := figure1DB(t)
	q := MustParse(`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	for _, m := range []Method{MethodAuto, MethodTwoLabel, MethodBipartite, MethodGeneral, MethodRelOrder} {
		eng := &Engine{DB: db, Method: m}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := eng.EvalCtx(ctx, q); !errors.Is(err, context.Canceled) {
			t.Fatalf("method %v: want context.Canceled, got %v", m, err)
		}
	}
}

// TestEstimateCostShapes checks the estimator's routing features: two-label
// unions get a finite two-label/bipartite cost, wider patterns cost more,
// and the cost grows with the model size.
func TestEstimateCostShapes(t *testing.T) {
	db := figure1DB(t)
	q := MustParse(`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	g, err := NewGrounder(db, q)
	if err != nil {
		t.Fatal(err)
	}
	s := g.Pref().Sessions.At(0)
	gq, err := g.GroundSession(s)
	if err != nil {
		t.Fatal(err)
	}
	est := EstimateCost(s.Model, db.Labeling(), gq.Union, 12)
	if est.Solver != MethodTwoLabel && est.Solver != MethodBipartite && est.Solver != MethodRelOrder {
		t.Fatalf("unexpected solver %v", est.Solver)
	}
	if math.IsInf(est.States, 1) || est.States <= 0 {
		t.Fatalf("unusable cost %v", est.States)
	}
	// A zero-involved-items limit leaves the tracker-based solvers only.
	est2 := EstimateCost(s.Model, db.Labeling(), gq.Union, 0)
	if est2.Solver == MethodRelOrder {
		t.Fatalf("relorder chosen despite zero involved-item limit")
	}
}

// TestDetachDeadline checks the two DetachDeadline behaviors the planner
// relies on: an expired deadline does not propagate, a cancellation does.
func TestDetachDeadline(t *testing.T) {
	parent, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	d, stop := DetachDeadline(parent)
	defer stop()
	if d.Err() != nil {
		t.Fatalf("deadline leaked through: %v", d.Err())
	}
	if _, ok := d.Deadline(); ok {
		t.Fatal("detached context still has a deadline")
	}

	parent2, cancel2 := context.WithCancel(context.Background())
	d2, stop2 := DetachDeadline(parent2)
	defer stop2()
	cancel2()
	select {
	case <-d2.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation did not propagate through DetachDeadline")
	}

	// A custom cancellation cause is still an outright cancellation, not a
	// deadline expiry.
	parent3, cancel3 := context.WithCancelCause(context.Background())
	d3, stop3 := DetachDeadline(parent3)
	defer stop3()
	cancel3(errors.New("client went away"))
	select {
	case <-d3.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("cause-cancellation did not propagate through DetachDeadline")
	}
}

// TestParseMethodAdaptiveAndErrors: the new method name parses, and the
// error of an unknown name enumerates the valid ones.
func TestParseMethodAdaptiveAndErrors(t *testing.T) {
	m, err := ParseMethod("adaptive")
	if err != nil || m != MethodAdaptive {
		t.Fatalf("ParseMethod(adaptive) = %v, %v", m, err)
	}
	if m.String() != "adaptive" {
		t.Fatalf("MethodAdaptive.String() = %q", m.String())
	}
	if m, err := ParseMethod("mis-adaptive"); err != nil || m != MethodMISAdaptive {
		t.Fatalf("ParseMethod(mis-adaptive) = %v, %v", m, err)
	}
	_, err = ParseMethod("bogus")
	if err == nil {
		t.Fatal("want error for bogus method")
	}
	for _, name := range MethodNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not enumerate %q", err.Error(), name)
		}
		if _, perr := ParseMethod(name); perr != nil {
			t.Fatalf("listed name %q does not parse: %v", name, perr)
		}
	}
}
