package ppd

import (
	"fmt"
	"iter"
)

// SessionStore is the session-source seam between the query engine and
// storage: a read-only, indexable collection of preference sessions. The
// engine, the explain/analytics paths and the batched solver lanes iterate
// sessions exclusively through this interface, so a p-relation can be
// served equally by the RAM-built slices of the dataset generators
// (SessionSlice), by an mmap-backed columnar snapshot (internal/store),
// or by a snapshot with an ingested in-memory tail (ConcatSessions) —
// and, later, by a shard holding only a partition of the sessions.
//
// Implementations must be safe for concurrent readers and must return
// sessions that stay valid for the lifetime of the store (callers retain
// *Session values in results, e.g. SessionProb).
type SessionStore interface {
	// Len returns the number of sessions.
	Len() int
	// At returns session i (0 <= i < Len). Implementations may construct
	// the session lazily; two calls with the same index return equal (not
	// necessarily identical) sessions.
	At(i int) *Session
	// All iterates the sessions in index order.
	All() iter.Seq2[int, *Session]
}

// SessionSlice is the RAM-backed SessionStore: a plain slice of sessions.
// It is the store type the dataset generators and the JSON loaders build.
type SessionSlice []*Session

// Len returns the number of sessions.
func (ss SessionSlice) Len() int { return len(ss) }

// At returns session i.
func (ss SessionSlice) At(i int) *Session { return ss[i] }

// All iterates the sessions in index order.
func (ss SessionSlice) All() iter.Seq2[int, *Session] {
	return func(yield func(int, *Session) bool) {
		for i, s := range ss {
			if !yield(i, s) {
				return
			}
		}
	}
}

// ConcatSessions returns a store listing base's sessions followed by tail's.
// It is the representation of streaming ingest over an immutable snapshot:
// the (possibly mmap-backed) base stays untouched while appended sessions
// live in a RAM tail, and the combined store is itself immutable — a second
// append wraps again, so handles on the old store never observe the new
// sessions.
func ConcatSessions(base SessionStore, tail SessionStore) SessionStore {
	if base == nil || base.Len() == 0 {
		if tail == nil {
			return SessionSlice(nil)
		}
		return tail
	}
	if tail == nil || tail.Len() == 0 {
		return base
	}
	return &concatStore{base: base, tail: tail, split: base.Len()}
}

// concatStore is the immutable two-part store built by ConcatSessions.
type concatStore struct {
	base, tail SessionStore
	split      int
}

func (c *concatStore) Len() int { return c.split + c.tail.Len() }

func (c *concatStore) At(i int) *Session {
	if i < c.split {
		return c.base.At(i)
	}
	return c.tail.At(i - c.split)
}

func (c *concatStore) All() iter.Seq2[int, *Session] {
	return func(yield func(int, *Session) bool) {
		for i, s := range c.base.All() {
			if !yield(i, s) {
				return
			}
		}
		for i, s := range c.tail.All() {
			if !yield(c.split+i, s) {
				return
			}
		}
	}
}

// AppendSessions returns a new database that shares db's relations, item
// catalog and labeling but has sessions appended to the p-relation named
// prefName. The receiver is not modified: in-flight queries holding db keep
// evaluating against the old session set while new queries open the
// returned database — this is the swap the registry performs under
// streaming ingest. Each appended session is validated like AddPrefRelation
// validates (key arity, model item count).
func (db *DB) AppendSessions(prefName string, sessions []*Session) (*DB, error) {
	p, ok := db.Prefs[prefName]
	if !ok {
		return nil, fmt.Errorf("ppd: unknown p-relation %q", prefName)
	}
	for i, s := range sessions {
		if len(s.Key) != len(p.SessionAttrs) {
			return nil, fmt.Errorf("ppd: appended session %d key %v arity mismatch in %q", i, s.Key, prefName)
		}
		if s.Model == nil {
			return nil, fmt.Errorf("ppd: appended session %d has no model", i)
		}
		if s.Model.M() != db.M() {
			return nil, fmt.Errorf("ppd: appended session %d model over %d items, catalog has %d", i, s.Model.M(), db.M())
		}
	}
	np := &PrefRelation{
		Name:         p.Name,
		SessionAttrs: p.SessionAttrs,
		Sessions:     ConcatSessions(p.Sessions, SessionSlice(sessions)),
	}
	ndb := &DB{
		ItemRelation: db.ItemRelation,
		Relations:    db.Relations,
		Prefs:        make(map[string]*PrefRelation, len(db.Prefs)),
		vocab:        db.vocab,
		labeling:     db.labeling,
		itemIDs:      db.itemIDs,
		itemKeys:     db.itemKeys,
	}
	for name, pr := range db.Prefs {
		ndb.Prefs[name] = pr
	}
	ndb.Prefs[prefName] = np
	return ndb, nil
}
