package ppd

import (
	"fmt"

	"probpref/internal/analytics"
)

// PopulationPairwise returns the pairwise preference matrix of the named
// p-relation averaged over its sessions: out[a][b] is the probability that
// a session drawn uniformly at random prefers item a to item b in its
// random ranking. It is the population-level "who is ahead" summary the
// paper's introduction motivates, computed exactly (no sampling) in
// O(n m^3) for n sessions over m items, with identical models shared.
func (db *DB) PopulationPairwise(prefName string) ([][]float64, error) {
	pref, ok := db.Prefs[prefName]
	if !ok {
		return nil, fmt.Errorf("ppd: unknown p-relation %q", prefName)
	}
	if pref.Sessions.Len() == 0 {
		return nil, fmt.Errorf("ppd: p-relation %q has no sessions", prefName)
	}
	m := db.M()
	out := make([][]float64, m)
	for i := range out {
		out[i] = make([]float64, m)
	}
	// Identical models produce identical matrices; compute each once.
	byModel := make(map[string][][]float64)
	w := 1 / float64(pref.Sessions.Len())
	for _, s := range pref.Sessions.All() {
		key := s.Model.Rehash()
		pm, ok := byModel[key]
		if !ok {
			pm = analytics.PairwiseMatrix(s.Model.Model())
			byModel[key] = pm
		}
		for a := 0; a < m; a++ {
			for b := 0; b < m; b++ {
				out[a][b] += w * pm[a][b]
			}
		}
	}
	return out, nil
}

// PopulationRankMarginals returns the rank-marginal matrix of the named
// p-relation averaged over its sessions: out[x][p] is the probability that
// a uniformly random session ranks item x at position p.
func (db *DB) PopulationRankMarginals(prefName string) ([][]float64, error) {
	pref, ok := db.Prefs[prefName]
	if !ok {
		return nil, fmt.Errorf("ppd: unknown p-relation %q", prefName)
	}
	if pref.Sessions.Len() == 0 {
		return nil, fmt.Errorf("ppd: p-relation %q has no sessions", prefName)
	}
	m := db.M()
	out := make([][]float64, m)
	for i := range out {
		out[i] = make([]float64, m)
	}
	byModel := make(map[string][][]float64)
	w := 1 / float64(pref.Sessions.Len())
	for _, s := range pref.Sessions.All() {
		key := s.Model.Rehash()
		rm, ok := byModel[key]
		if !ok {
			rm = analytics.RankMarginals(s.Model.Model())
			byModel[key] = rm
		}
		for x := 0; x < m; x++ {
			for p := 0; p < m; p++ {
				out[x][p] += w * rm[x][p]
			}
		}
	}
	return out, nil
}
