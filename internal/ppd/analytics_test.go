package ppd

import (
	"math"
	"testing"

	"probpref/internal/analytics"
	"probpref/internal/rank"
)

func TestPopulationPairwise(t *testing.T) {
	db := figure1DB(t)
	pm, err := db.PopulationPairwise("P")
	if err != nil {
		t.Fatal(err)
	}
	m := db.M()
	// Antisymmetry and range.
	for a := 0; a < m; a++ {
		if pm[a][a] != 0 {
			t.Errorf("diagonal pm[%d][%d] = %v", a, a, pm[a][a])
		}
		for b := 0; b < m; b++ {
			if a == b {
				continue
			}
			if pm[a][b] < 0 || pm[a][b] > 1 {
				t.Errorf("pm[%d][%d] = %v out of range", a, b, pm[a][b])
			}
			if math.Abs(pm[a][b]+pm[b][a]-1) > 1e-9 {
				t.Errorf("pm[%d][%d]+pm[%d][%d] = %v, want 1", a, b, b, a, pm[a][b]+pm[b][a])
			}
		}
	}
	// Hand-average the three session matrices.
	pref := db.Prefs["P"]
	want := 0.0
	for _, s := range pref.Sessions.All() {
		spm := analytics.PairwiseMatrix(s.Model.Model())
		want += spm[1][0] / 3
	}
	if math.Abs(pm[1][0]-want) > 1e-12 {
		t.Errorf("pm[1][0] = %v, hand average %v", pm[1][0], want)
	}
	// Two of three centers put Clinton(1) over Trump(0) with phi < 1, so the
	// population must favor Clinton.
	if pm[1][0] <= 0.5 {
		t.Errorf("population Pr(Clinton > Trump) = %v, want > 0.5", pm[1][0])
	}
}

func TestPopulationPairwiseErrors(t *testing.T) {
	db := figure1DB(t)
	if _, err := db.PopulationPairwise("missing"); err == nil {
		t.Error("want error for unknown p-relation")
	}
	empty := &PrefRelation{Name: "E", SessionAttrs: []string{"k"}}
	if err := db.AddPrefRelation(empty); err != nil {
		t.Fatal(err)
	}
	if _, err := db.PopulationPairwise("E"); err == nil {
		t.Error("want error for empty p-relation")
	}
	if _, err := db.PopulationRankMarginals("missing"); err == nil {
		t.Error("want error for unknown p-relation (marginals)")
	}
	if _, err := db.PopulationRankMarginals("E"); err == nil {
		t.Error("want error for empty p-relation (marginals)")
	}
}

func TestPopulationRankMarginals(t *testing.T) {
	db := figure1DB(t)
	rm, err := db.PopulationRankMarginals("P")
	if err != nil {
		t.Fatal(err)
	}
	m := db.M()
	for x := 0; x < m; x++ {
		row := 0.0
		for p := 0; p < m; p++ {
			row += rm[x][p]
		}
		if math.Abs(row-1) > 1e-9 {
			t.Errorf("row %d sums to %v", x, row)
		}
	}
	// The population expected rank of Clinton must beat Trump's (two of
	// three centers rank Clinton first).
	er := func(x int) float64 {
		e := 0.0
		for p := 0; p < m; p++ {
			e += float64(p) * rm[x][p]
		}
		return e
	}
	if er(1) >= er(0) {
		t.Errorf("expected rank Clinton %v >= Trump %v", er(1), er(0))
	}
}

func TestTopKUnionMatchesEvalUnion(t *testing.T) {
	db := figure1DB(t)
	eng := &Engine{DB: db, Method: MethodAuto}
	uq := MustParseUnion(
		`P(_, _; c1; c2), C(c1, _, "F", _, _, _), C(c2, _, "M", _, _, _)` +
			` | P(_, _; c1; c2), C(c1, "D", _, _, "JD", _), C(c2, "R", _, _, _, _)`)
	res, err := eng.EvalUnion(uq)
	if err != nil {
		t.Fatal(err)
	}
	for _, bound := range []int{0, 1, 2} {
		top, diag, err := eng.TopKUnion(uq, 2, bound)
		if err != nil {
			t.Fatalf("bound %d: %v", bound, err)
		}
		if len(top) != 2 {
			t.Fatalf("bound %d: got %d sessions, want 2", bound, len(top))
		}
		if top[0].Prob < top[1].Prob {
			t.Fatalf("bound %d: results not sorted", bound)
		}
		// The winner's probability must match the full evaluation.
		best := 0.0
		for _, sp := range res.PerSession {
			if sp.Prob > best {
				best = sp.Prob
			}
		}
		if math.Abs(top[0].Prob-best) > 1e-9 {
			t.Fatalf("bound %d: top prob %v, eval best %v", bound, top[0].Prob, best)
		}
		if bound > 0 && diag.BoundSolves == 0 {
			t.Fatalf("bound %d: no bound solves recorded", bound)
		}
	}
}

func TestTopKUnionRejectsMismatchedPrefRelations(t *testing.T) {
	db := figure1DB(t)
	second := &PrefRelation{
		Name:         "R",
		SessionAttrs: []string{"voter", "date"},
		Sessions:     SessionSlice{db.Prefs["P"].Sessions.At(0)},
	}
	if err := db.AddPrefRelation(second); err != nil {
		t.Fatal(err)
	}
	eng := &Engine{DB: db, Method: MethodAuto}
	uq := &UnionQuery{Disjuncts: []*Query{
		MustParse(`P(_, _; c1; c2), C(c1, _, "F", _, _, _)`),
		MustParse(`R(_, _; c1; c2), C(c1, _, "F", _, _, _)`),
	}}
	if _, _, err := eng.TopKUnion(uq, 1, 1); err == nil {
		t.Fatal("want error for disjuncts over different p-relations")
	}
}

func TestPopulationPairwiseCondorcet(t *testing.T) {
	db := figure1DB(t)
	pm, err := db.PopulationPairwise("P")
	if err != nil {
		t.Fatal(err)
	}
	w, ok := analytics.CondorcetWinner(pm)
	if !ok {
		t.Fatal("expected a Condorcet winner in the Figure 1 population")
	}
	if db.ItemKey(rank.Item(w)) != "Clinton" {
		t.Fatalf("Condorcet winner = %s, want Clinton", db.ItemKey(rank.Item(w)))
	}
}
