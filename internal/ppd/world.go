package ppd

import (
	"math/rand"

	"probpref/internal/rank"
)

// World is one possible world of a RIM-PPD: a deterministic ranking per
// session, drawn from the stored models. Under possible-world semantics the
// probability of a Boolean query is the probability that it holds in a
// random world (Section 1).
type World struct {
	// Rankings holds one ranking per session, in p-relation order, keyed by
	// p-relation name.
	Rankings map[string][]rank.Ranking
}

// SampleWorld draws a possible world: one ranking per session of every
// p-relation.
func (db *DB) SampleWorld(rng *rand.Rand) *World {
	w := &World{Rankings: make(map[string][]rank.Ranking, len(db.Prefs))}
	for name, p := range db.Prefs {
		rs := make([]rank.Ranking, p.Sessions.Len())
		for i, s := range p.Sessions.All() {
			rs[i] = s.Model.Sample(rng)
		}
		w.Rankings[name] = rs
	}
	return w
}

// HoldsIn reports whether the query holds in the given world: some session
// whose grounded pattern union matches the session's ranking. It evaluates
// the same grounding the probabilistic evaluator uses, so Monte Carlo over
// worlds converges to Engine.Eval's Boolean answer.
func (g *Grounder) HoldsIn(w *World) (bool, error) {
	rs := w.Rankings[g.pref.Name]
	for si, s := range g.pref.Sessions.All() {
		gq, err := g.GroundSession(s)
		if err != nil {
			return false, err
		}
		if len(gq.Union) == 0 {
			continue
		}
		if gq.Union.Matches(rs[si], g.db.Labeling()) {
			return true, nil
		}
	}
	return false, nil
}

// CountIn returns the number of sessions satisfying the query in the world
// (the deterministic count whose expectation Count-Session computes).
func (g *Grounder) CountIn(w *World) (int, error) {
	rs := w.Rankings[g.pref.Name]
	count := 0
	for si, s := range g.pref.Sessions.All() {
		gq, err := g.GroundSession(s)
		if err != nil {
			return 0, err
		}
		if len(gq.Union) == 0 {
			continue
		}
		if gq.Union.Matches(rs[si], g.db.Labeling()) {
			count++
		}
	}
	return count, nil
}
