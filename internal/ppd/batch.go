package ppd

import (
	"context"
	"strings"

	"probpref/internal/pattern"
	"probpref/internal/rim"
	"probpref/internal/solver"
)

// This file wires the solver's compile-once / solve-many layer (see
// internal/solver/plan.go) into query evaluation. Grounded (model, union)
// groups that share a canonical union shape — the same solver algorithm,
// reference ranking and union — differ only in their sessions' insertion
// probabilities, so one compiled Plan serves all of them and one batched
// layer walk solves them together. Compiled plans optionally persist in a
// PlanCache across evaluations; the service layer namespaces cache keys per
// registry model so deleting a model invalidates its plans.

// PlanCache caches compiled union plans across evaluations. Implementations
// must be safe for concurrent use; the service layer's sharded LRU is the
// canonical one. Plans are immutable, so a cache may hand the same *Plan to
// any number of concurrent solves. A PlanCache must not be shared between
// engines whose databases differ: plan keys do not encode the labeling, the
// per-database (service-layer: per-model-namespace) cache identity does.
type PlanCache interface {
	// Get returns the plan compiled under key, if cached.
	Get(key string) (*solver.Plan, bool)
	// Put stores a compiled plan under key.
	Put(key string, p *solver.Plan)
}

// PlanAlgo maps an evaluation method to the DP algorithm its exact solves
// compile to, or reports that the method does not solve through compiled
// plans (the inclusion-exclusion baseline, the samplers, and the adaptive
// planner, whose routing is budget- and deadline-dependent).
func PlanAlgo(m Method, u pattern.Union) (solver.Algo, bool) {
	switch m {
	case MethodAuto:
		return solver.AlgoFor(u), true
	case MethodTwoLabel:
		return solver.AlgoTwoLabel, true
	case MethodBipartite:
		return solver.AlgoBipartite, true
	case MethodRelOrder:
		return solver.AlgoRelOrder, true
	}
	return 0, false
}

// PlanKey is the canonical cache key of a compiled union shape: algorithm,
// reference ranking and union. Everything else a Plan depends on — the
// labeling — is pinned by the cache's own identity (see PlanCache).
func PlanKey(algo solver.Algo, sigma interface{ Key() string }, u pattern.Union) string {
	return algo.String() + "|" + sigma.Key() + "|" + u.Key()
}

// plan returns the compiled plan for the union shape, consulting the
// engine's PlanCache when configured. ok is false when the method does not
// use compiled plans.
func (e *Engine) plan(sm rim.SessionModel, u pattern.Union) (*solver.Plan, bool, error) {
	algo, ok := PlanAlgo(e.Method, u)
	if !ok {
		return nil, false, nil
	}
	sigma := sm.Reference()
	key := PlanKey(algo, sigma, u)
	if e.Plans != nil {
		if p, ok := e.Plans.Get(key); ok {
			return p, true, nil
		}
	}
	p, err := solver.CompilePlan(algo, sigma, e.DB.Labeling(), u, e.SolverOpts)
	if err != nil {
		return nil, false, err
	}
	if e.Plans != nil {
		e.Plans.Put(key, p)
	}
	return p, true, nil
}

// BatchGroup is one deduplicated (session model, grounded union) group of a
// batched solve.
type BatchGroup struct {
	// SM is the group's session model (its Pi rows drive one lane of the
	// batched walk).
	SM rim.SessionModel
	// U is the grounded union the group evaluates.
	U pattern.Union
}

// BatchSolveGroups solves many groups with the engine's configured method,
// batching where the compiled-plan layer allows it: groups sharing a union
// shape (same algorithm, reference ranking and union, differing only in
// insertion probabilities) solve through one SolveSessions walk, and shapes
// over the same session list whose plans share a walk schedule additionally
// share their walk prefix (SolveSessionsShared). Groups outside the
// compiled-plan methods fall back to per-group solves. Results are
// positionally aligned with groups and bit-identical to solving each group
// alone with SolveUnionCtx.
func (e *Engine) BatchSolveGroups(ctx context.Context, groups []BatchGroup) ([]float64, []SolveReport, error) {
	probs := make([]float64, len(groups))
	reports := make([]SolveReport, len(groups))
	opts := e.SolverOpts
	if opts.Ctx == nil {
		opts.Ctx = ctx
	}

	// Partition into plan classes: one compiled plan (and one batched walk)
	// per canonical union shape.
	type class struct {
		plan    *solver.Plan
		members []int // indices into groups
	}
	var classes []class
	classOf := make(map[string]int)
	for gi, g := range groups {
		algo, ok := PlanAlgo(e.Method, g.U)
		if !ok {
			// Method outside the compiled-plan layer: solve the group alone.
			p, rep, err := e.solve(ctx, g.SM, g.U)
			if err != nil {
				return nil, nil, err
			}
			probs[gi], reports[gi] = p, rep
			continue
		}
		key := PlanKey(algo, g.SM.Reference(), g.U)
		ci, seen := classOf[key]
		if !seen {
			pl, ok, err := e.plan(g.SM, g.U)
			if err != nil {
				return nil, nil, err
			}
			if !ok { // unreachable: PlanAlgo succeeded above
				continue
			}
			ci = len(classes)
			classOf[key] = ci
			classes = append(classes, class{plan: pl})
		}
		classes[ci].members = append(classes[ci].members, gi)
		reports[gi] = SolveReport{Method: e.Method}
	}

	// Classes over the same session list whose plans share a walk schedule
	// run through SolveSessionsShared; sessionsKey identifies the lane list.
	sessionsKey := func(members []int) string {
		var b strings.Builder
		for _, gi := range members {
			b.WriteString(groups[gi].SM.Rehash())
			b.WriteByte('\x00')
		}
		return b.String()
	}
	type sharedGroup struct {
		plans   []*solver.Plan
		classes []int
	}
	shared := make(map[string]*sharedGroup)
	var soloClasses []int
	for ci := range classes {
		p := classes[ci].plan
		if k := p.SharedKey(); k != "" {
			sk := k + "\x00" + sessionsKey(classes[ci].members)
			sg, ok := shared[sk]
			if !ok {
				sg = &sharedGroup{}
				shared[sk] = sg
			}
			sg.plans = append(sg.plans, p)
			sg.classes = append(sg.classes, ci)
			continue
		}
		soloClasses = append(soloClasses, ci)
	}

	// Class results write disjoint probs entries and no class's result
	// depends on another's, so the order classes solve in is immaterial
	// (the shared map's iteration order included).
	solveClass := func(ci int, out []float64) {
		for mi, gi := range classes[ci].members {
			probs[gi] = out[mi]
		}
	}
	models := func(ci int) []*rim.Model {
		ms := make([]*rim.Model, len(classes[ci].members))
		for mi, gi := range classes[ci].members {
			ms[mi] = groups[gi].SM.Model()
		}
		return ms
	}
	for _, sg := range shared {
		if len(sg.plans) < 2 {
			soloClasses = append(soloClasses, sg.classes...)
			continue
		}
		outs, err := solver.SolveSessionsShared(sg.plans, models(sg.classes[0]), opts)
		if err != nil {
			return nil, nil, err
		}
		for i, ci := range sg.classes {
			solveClass(ci, outs[i])
		}
	}
	for _, ci := range soloClasses {
		cl := &classes[ci]
		if len(cl.members) == 1 {
			p, err := cl.plan.Solve(groups[cl.members[0]].SM.Model(), opts)
			if err != nil {
				return nil, nil, err
			}
			probs[cl.members[0]] = p
			continue
		}
		out, err := solver.SolveSessions(cl.plan, models(ci), opts)
		if err != nil {
			return nil, nil, err
		}
		solveClass(ci, out)
	}
	return probs, reports, nil
}

// BatchableMethod reports whether a method's grounded groups may route
// through BatchSolveGroups: exact compiled-plan methods give bit-identical
// results batched or alone, so batching is purely a performance decision
// there. Sampler methods consume RNG streams per group and the adaptive
// planner budgets per group, so they keep the per-group path.
func BatchableMethod(m Method) bool {
	switch m {
	case MethodAuto, MethodTwoLabel, MethodBipartite, MethodRelOrder:
		return true
	}
	return false
}

func (e *Engine) batchableMethod() bool { return BatchableMethod(e.Method) }
