package ppd

import (
	"fmt"
	"math"
)

// CountDistribution is the exact distribution of the Count-Session query
// count(Q) under possible-world semantics: sessions satisfy Q independently,
// each with its own probability, so the number of satisfying sessions
// follows a Poisson-binomial distribution. The paper evaluates count(Q) as
// the expectation (Section 3.2); the full distribution extends that answer
// with variance, tails and quantiles at negligible extra cost.
type CountDistribution struct {
	// PMF[k] = Pr(exactly k sessions satisfy Q), k in [0, N].
	PMF []float64
	// Probs holds the per-session satisfaction probabilities (including the
	// structurally-zero sessions whose grounded union is empty).
	Probs []float64
}

// NewCountDistribution builds the Poisson-binomial distribution of the
// number of successes among independent trials with the given
// probabilities. O(n^2) convolution.
func NewCountDistribution(probs []float64) (*CountDistribution, error) {
	pmf := make([]float64, 1, len(probs)+1)
	pmf[0] = 1
	for i, p := range probs {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("ppd: session probability %d = %v out of [0,1]", i, p)
		}
		pmf = append(pmf, 0)
		for k := len(pmf) - 1; k >= 1; k-- {
			pmf[k] = pmf[k]*(1-p) + pmf[k-1]*p
		}
		pmf[0] *= 1 - p
	}
	return &CountDistribution{PMF: pmf, Probs: append([]float64(nil), probs...)}, nil
}

// N returns the number of sessions (trials).
func (d *CountDistribution) N() int { return len(d.PMF) - 1 }

// Mean returns E[count(Q)] — the paper's Count-Session answer.
func (d *CountDistribution) Mean() float64 {
	e := 0.0
	for _, p := range d.Probs {
		e += p
	}
	return e
}

// Variance returns Var[count(Q)] = sum_i p_i (1 - p_i).
func (d *CountDistribution) Variance() float64 {
	v := 0.0
	for _, p := range d.Probs {
		v += p * (1 - p)
	}
	return v
}

// StdDev returns the standard deviation of count(Q).
func (d *CountDistribution) StdDev() float64 { return math.Sqrt(d.Variance()) }

// CDF returns Pr(count(Q) <= k). k below 0 gives 0; k at or above N gives 1.
func (d *CountDistribution) CDF(k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= d.N() {
		return 1
	}
	c := 0.0
	for i := 0; i <= k; i++ {
		c += d.PMF[i]
	}
	if c > 1 {
		c = 1
	}
	return c
}

// Tail returns Pr(count(Q) >= k).
func (d *CountDistribution) Tail(k int) float64 {
	if k <= 0 {
		return 1
	}
	return 1 - d.CDF(k-1)
}

// Quantile returns the smallest k with CDF(k) >= alpha. alpha outside (0, 1]
// is clamped.
func (d *CountDistribution) Quantile(alpha float64) int {
	if alpha <= 0 {
		return 0
	}
	if alpha > 1 {
		alpha = 1
	}
	c := 0.0
	for k, p := range d.PMF {
		c += p
		if c >= alpha-1e-12 {
			return k
		}
	}
	return d.N()
}

// Mode returns the most probable count, breaking ties toward the smaller
// count.
func (d *CountDistribution) Mode() int {
	best, bestP := 0, -1.0
	for k, p := range d.PMF {
		if p > bestP {
			best, bestP = k, p
		}
	}
	return best
}

